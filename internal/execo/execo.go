// Package execo is the experiment-orchestration engine driving the
// evaluation campaign, in the spirit of the Execo tool the paper used for
// "powerful scripting of the experiments" (§V-A): composable actions
// (sequential, parallel, bounded-parallel, retried, time-limited) executed
// with real concurrency, producing a structured report tree with per-
// action timing and outcome.
package execo

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Status is the outcome of one action.
type Status int

// Action outcomes.
const (
	Pending Status = iota
	OK
	Failed
	Skipped
)

// String returns a short label.
func (s Status) String() string {
	switch s {
	case Pending:
		return "pending"
	case OK:
		return "ok"
	case Failed:
		return "failed"
	case Skipped:
		return "skipped"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Report is the outcome tree of an action run.
type Report struct {
	Name     string
	Status   Status
	Err      error
	Start    time.Time
	Duration time.Duration
	Attempts int
	Children []*Report
}

// Failed returns all failed leaf reports under r.
func (r *Report) FailedLeaves() []*Report {
	var out []*Report
	var walk func(*Report)
	walk = func(n *Report) {
		if len(n.Children) == 0 {
			if n.Status == Failed {
				out = append(out, n)
			}
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(r)
	return out
}

// String renders the report tree with indentation.
func (r *Report) String() string {
	var b strings.Builder
	var walk func(*Report, int)
	walk = func(n *Report, depth int) {
		fmt.Fprintf(&b, "%s%s: %s (%.3fs", strings.Repeat("  ", depth), n.Name, n.Status,
			n.Duration.Seconds())
		if n.Attempts > 1 {
			fmt.Fprintf(&b, ", %d attempts", n.Attempts)
		}
		if n.Err != nil {
			fmt.Fprintf(&b, ", err: %v", n.Err)
		}
		b.WriteString(")\n")
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(r, 0)
	return b.String()
}

// Action is a unit of orchestrated work.
type Action interface {
	// Name labels the action in reports.
	Name() string
	// Execute runs the action, filling in the report (children, error).
	Execute(ctx context.Context, rep *Report) error
}

// funcAction wraps a function as a leaf action.
type funcAction struct {
	name string
	fn   func(ctx context.Context) error
}

// Func wraps a function as a leaf action.
func Func(name string, fn func(ctx context.Context) error) Action {
	return &funcAction{name: name, fn: fn}
}

func (a *funcAction) Name() string { return a.name }
func (a *funcAction) Execute(ctx context.Context, _ *Report) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return a.fn(ctx)
}

// sequential runs children in order, stopping at the first failure.
type sequential struct {
	name    string
	actions []Action
}

// Sequential composes actions that run one after another; a failure
// stops the sequence and marks the remainder Skipped.
func Sequential(name string, actions ...Action) Action {
	return &sequential{name: name, actions: actions}
}

func (a *sequential) Name() string { return a.name }
func (a *sequential) Execute(ctx context.Context, rep *Report) error {
	var firstErr error
	for _, child := range a.actions {
		cr := newReport(child)
		rep.Children = append(rep.Children, cr)
		if firstErr != nil {
			cr.Status = Skipped
			continue
		}
		runInto(ctx, child, cr)
		if cr.Status == Failed {
			firstErr = cr.Err
		}
	}
	return firstErr
}

// parallel runs children concurrently with an optional limit.
type parallel struct {
	name    string
	limit   int
	actions []Action
}

// Parallel composes actions that run concurrently (unbounded).
func Parallel(name string, actions ...Action) Action {
	return &parallel{name: name, actions: actions}
}

// ParallelN composes actions that run concurrently, at most limit at a
// time (limit <= 0 means unbounded).
func ParallelN(name string, limit int, actions ...Action) Action {
	return &parallel{name: name, limit: limit, actions: actions}
}

func (a *parallel) Name() string { return a.name }
func (a *parallel) Execute(ctx context.Context, rep *Report) error {
	reports := make([]*Report, len(a.actions))
	for i, child := range a.actions {
		reports[i] = newReport(child)
	}
	rep.Children = reports

	var sem chan struct{}
	if a.limit > 0 {
		sem = make(chan struct{}, a.limit)
	}
	var wg sync.WaitGroup
	for i, child := range a.actions {
		wg.Add(1)
		go func(child Action, cr *Report) {
			defer wg.Done()
			if sem != nil {
				sem <- struct{}{}
				defer func() { <-sem }()
			}
			runInto(ctx, child, cr)
		}(child, reports[i])
	}
	wg.Wait()

	var errs []error
	for _, cr := range reports {
		if cr.Status == Failed {
			errs = append(errs, fmt.Errorf("%s: %w", cr.Name, cr.Err))
		}
	}
	return errors.Join(errs...)
}

// retry re-runs an action until it succeeds or attempts are exhausted.
type retry struct {
	inner    Action
	attempts int
	backoff  time.Duration
}

// Retry wraps an action to be attempted up to attempts times, sleeping
// backoff between attempts. attempts must be >= 1.
func Retry(inner Action, attempts int, backoff time.Duration) Action {
	if attempts < 1 {
		attempts = 1
	}
	return &retry{inner: inner, attempts: attempts, backoff: backoff}
}

func (a *retry) Name() string { return a.inner.Name() }
func (a *retry) Execute(ctx context.Context, rep *Report) error {
	var err error
	for i := 0; i < a.attempts; i++ {
		rep.Attempts = i + 1
		// Each attempt gets a fresh child-report area.
		rep.Children = nil
		err = a.inner.Execute(ctx, rep)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return err
		}
		if i < a.attempts-1 && a.backoff > 0 {
			select {
			case <-time.After(a.backoff):
			case <-ctx.Done():
				return err
			}
		}
	}
	return err
}

// timeout bounds an action's wall-clock run time.
type timeLimit struct {
	inner Action
	d     time.Duration
}

// Timeout wraps an action with a wall-clock limit.
func Timeout(inner Action, d time.Duration) Action {
	return &timeLimit{inner: inner, d: d}
}

func (a *timeLimit) Name() string { return a.inner.Name() }
func (a *timeLimit) Execute(ctx context.Context, rep *Report) error {
	tctx, cancel := context.WithTimeout(ctx, a.d)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- a.inner.Execute(tctx, rep) }()
	select {
	case err := <-done:
		return err
	case <-tctx.Done():
		return fmt.Errorf("execo: %s: %w", a.inner.Name(), tctx.Err())
	}
}

func newReport(a Action) *Report {
	return &Report{Name: a.Name(), Status: Pending}
}

// runInto executes an action, recording timing and status in rep.
func runInto(ctx context.Context, a Action, rep *Report) {
	rep.Start = time.Now()
	if rep.Attempts == 0 {
		rep.Attempts = 1
	}
	err := a.Execute(ctx, rep)
	rep.Duration = time.Since(rep.Start)
	if err != nil {
		rep.Status = Failed
		rep.Err = err
		return
	}
	rep.Status = OK
}

// Run executes an action tree and returns its report. The returned
// report's Err holds the overall failure, if any.
func Run(ctx context.Context, a Action) *Report {
	rep := newReport(a)
	runInto(ctx, a, rep)
	return rep
}
