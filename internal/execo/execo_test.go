package execo

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func ok(name string) Action {
	return Func(name, func(context.Context) error { return nil })
}

func fail(name string, err error) Action {
	return Func(name, func(context.Context) error { return err })
}

func TestFuncAction(t *testing.T) {
	rep := Run(context.Background(), ok("leaf"))
	if rep.Status != OK || rep.Err != nil {
		t.Errorf("report = %+v", rep)
	}
	boom := errors.New("boom")
	rep = Run(context.Background(), fail("leaf", boom))
	if rep.Status != Failed || !errors.Is(rep.Err, boom) {
		t.Errorf("report = %+v", rep)
	}
}

func TestSequentialStopsAtFailure(t *testing.T) {
	var ran []string
	var mu sync.Mutex
	step := func(name string, err error) Action {
		return Func(name, func(context.Context) error {
			mu.Lock()
			ran = append(ran, name)
			mu.Unlock()
			return err
		})
	}
	boom := errors.New("boom")
	rep := Run(context.Background(),
		Sequential("seq", step("a", nil), step("b", boom), step("c", nil)))
	if rep.Status != Failed {
		t.Fatalf("status = %v", rep.Status)
	}
	if len(ran) != 2 || ran[0] != "a" || ran[1] != "b" {
		t.Errorf("ran = %v", ran)
	}
	if len(rep.Children) != 3 {
		t.Fatalf("children = %d", len(rep.Children))
	}
	if rep.Children[2].Status != Skipped {
		t.Errorf("c status = %v, want Skipped", rep.Children[2].Status)
	}
}

func TestParallelRunsAll(t *testing.T) {
	var count int64
	mk := func(name string) Action {
		return Func(name, func(context.Context) error {
			atomic.AddInt64(&count, 1)
			return nil
		})
	}
	rep := Run(context.Background(), Parallel("par", mk("a"), mk("b"), mk("c")))
	if rep.Status != OK {
		t.Fatalf("status = %v (%v)", rep.Status, rep.Err)
	}
	if count != 3 {
		t.Errorf("count = %d", count)
	}
}

func TestParallelCollectsAllErrors(t *testing.T) {
	e1, e2 := errors.New("e1"), errors.New("e2")
	rep := Run(context.Background(),
		Parallel("par", fail("a", e1), ok("b"), fail("c", e2)))
	if rep.Status != Failed {
		t.Fatalf("status = %v", rep.Status)
	}
	if !errors.Is(rep.Err, e1) || !errors.Is(rep.Err, e2) {
		t.Errorf("err = %v", rep.Err)
	}
	if got := len(rep.FailedLeaves()); got != 2 {
		t.Errorf("failed leaves = %d", got)
	}
}

func TestParallelNBoundsConcurrency(t *testing.T) {
	const limit = 3
	var cur, peak int64
	mk := func() Action {
		return Func("w", func(context.Context) error {
			n := atomic.AddInt64(&cur, 1)
			for {
				p := atomic.LoadInt64(&peak)
				if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			atomic.AddInt64(&cur, -1)
			return nil
		})
	}
	var actions []Action
	for i := 0; i < 12; i++ {
		actions = append(actions, mk())
	}
	rep := Run(context.Background(), ParallelN("bounded", limit, actions...))
	if rep.Status != OK {
		t.Fatalf("status = %v", rep.Status)
	}
	if peak > limit {
		t.Errorf("peak concurrency = %d, limit %d", peak, limit)
	}
}

func TestRetryEventuallySucceeds(t *testing.T) {
	var tries int
	a := Retry(Func("flaky", func(context.Context) error {
		tries++
		if tries < 3 {
			return errors.New("transient")
		}
		return nil
	}), 5, 0)
	rep := Run(context.Background(), a)
	if rep.Status != OK {
		t.Fatalf("status = %v", rep.Status)
	}
	if tries != 3 {
		t.Errorf("tries = %d", tries)
	}
	if rep.Attempts != 3 {
		t.Errorf("reported attempts = %d", rep.Attempts)
	}
}

func TestRetryExhausts(t *testing.T) {
	boom := errors.New("boom")
	var tries int
	a := Retry(Func("hopeless", func(context.Context) error {
		tries++
		return boom
	}), 3, 0)
	rep := Run(context.Background(), a)
	if rep.Status != Failed || !errors.Is(rep.Err, boom) {
		t.Fatalf("report = %+v", rep)
	}
	if tries != 3 {
		t.Errorf("tries = %d", tries)
	}
}

func TestTimeout(t *testing.T) {
	a := Timeout(Func("slow", func(ctx context.Context) error {
		select {
		case <-time.After(5 * time.Second):
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}), 10*time.Millisecond)
	start := time.Now()
	rep := Run(context.Background(), a)
	if rep.Status != Failed {
		t.Fatalf("status = %v", rep.Status)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("timeout did not trigger promptly")
	}
}

func TestContextCancellationSkipsWork(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran bool
	rep := Run(ctx, Func("never", func(context.Context) error {
		ran = true
		return nil
	}))
	if ran {
		t.Error("action ran under cancelled context")
	}
	if rep.Status != Failed {
		t.Errorf("status = %v", rep.Status)
	}
}

func TestNestedComposition(t *testing.T) {
	// A campaign-shaped tree: sequential figures, each a bounded
	// parallel of cells.
	var cells int64
	cell := func() Action {
		return Func("cell", func(context.Context) error {
			atomic.AddInt64(&cells, 1)
			return nil
		})
	}
	fig := func(name string) Action {
		return ParallelN(name, 2, cell(), cell(), cell(), cell())
	}
	rep := Run(context.Background(), Sequential("campaign", fig("fig3"), fig("fig4")))
	if rep.Status != OK {
		t.Fatalf("status = %v (%v)", rep.Status, rep.Err)
	}
	if cells != 8 {
		t.Errorf("cells = %d", cells)
	}
	s := rep.String()
	for _, want := range []string{"campaign", "fig3", "fig4", "cell"} {
		if !strings.Contains(s, want) {
			t.Errorf("report rendering misses %q:\n%s", want, s)
		}
	}
}

func TestReportString(t *testing.T) {
	rep := Run(context.Background(), Sequential("top", ok("a"), fail("b", errors.New("boom"))))
	s := rep.String()
	if !strings.Contains(s, "failed") || !strings.Contains(s, "boom") {
		t.Errorf("report = %s", s)
	}
}
