package gateway

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pilgrim/internal/g5k"
	"pilgrim/internal/pilgrim"
	"pilgrim/internal/platgen"
	"pilgrim/internal/scenario"
	"pilgrim/internal/shard"
	"pilgrim/internal/sim"
)

// fastRetry keeps down-shard tests quick: one retry, millisecond
// backoff.
var fastRetry = pilgrim.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}

// newWorkerServer builds a pilgrimd-equivalent server with the named
// platforms registered on the compact mini reference.
func newWorkerServer(t testing.TB, platforms ...string) *pilgrim.Server {
	t.Helper()
	reg := pilgrim.NewRegistry()
	for _, name := range platforms {
		plat, err := platgen.Generate(g5k.Mini(), platgen.Options{Variant: platgen.G5KTest})
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.Add(name, pilgrim.PlatformEntry{Platform: plat, Config: sim.DefaultConfig()}); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() { reg.Close() })
	return pilgrim.NewServer(reg, nil)
}

// fleet is an in-process worker fleet behind a gateway.
type fleet struct {
	gw      *Gateway
	front   *httptest.Server // the gateway's listener
	workers map[string]*httptest.Server
	servers map[string]*pilgrim.Server
	m       *shard.Map
}

// newFleet starts n workers named w1..wn, each registering platforms
// and enforcing shard ownership (requests for platforms owned elsewhere
// answer 421 — so any routing mistake by the gateway fails loudly).
func newFleet(t testing.TB, n int, platforms ...string) *fleet {
	t.Helper()
	f := &fleet{
		workers: make(map[string]*httptest.Server),
		servers: make(map[string]*pilgrim.Server),
		m:       &shard.Map{},
	}
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("w%d", i)
		srv := newWorkerServer(t, platforms...)
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		f.workers[name] = ts
		f.servers[name] = srv
		f.m.Workers = append(f.m.Workers, shard.Worker{Name: name, URL: ts.URL})
	}
	ring, err := shard.NewRing(f.m)
	if err != nil {
		t.Fatal(err)
	}
	for name, srv := range f.servers {
		srv.SetShardIdentity(name, shard.NewTable(ring))
	}
	var parts []string
	for _, w := range f.m.Workers {
		parts = append(parts, w.Name+"="+w.URL)
	}
	gw, err := New(Options{
		Source: shard.Source{Flag: strings.Join(parts, ",")},
		Retry:  fastRetry,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.gw = gw
	t.Cleanup(gw.Close)
	f.front = httptest.NewServer(gw)
	t.Cleanup(f.front.Close)
	return f
}

var miniTransfers = []pilgrim.TransferRequest{
	{Src: "sagittaire-1.lyon.grid5000.fr", Dst: "graphene-1.nancy.grid5000.fr", Size: 1e8},
}

// TestProxyRoutesByOwnership drives every platform through the gateway
// with the stock pilgrim.Client. The workers enforce ownership with
// 421, so a successful prediction proves the gateway and the workers
// agree on the ring; the X-Pilgrim-Shard header pins the route to the
// expected owner.
func TestProxyRoutesByOwnership(t *testing.T) {
	plats := []string{"g5k_mini", "alpha", "beta", "gamma", "delta"}
	f := newFleet(t, 3, plats...)
	c := pilgrim.NewClient(f.front.URL)
	for _, p := range plats {
		preds, err := c.PredictTransfers(p, miniTransfers)
		if err != nil {
			t.Fatalf("predict through gateway on %s: %v", p, err)
		}
		if len(preds) != 1 || preds[0].Duration <= 0 {
			t.Fatalf("platform %s: bad predictions %+v", p, preds)
		}
		resp, err := http.Get(f.front.URL + "/pilgrim/timeline_stats/" + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		want := f.gw.Ring().Owner(p).Name
		if got := resp.Header.Get("X-Pilgrim-Shard"); got != want {
			t.Errorf("platform %s proxied to shard %q, ring owner is %q", p, got, want)
		}
	}
}

// TestWorkerRejectsMisdirected hits a non-owner worker directly: the
// worker must answer 421 with the owner's name and URL, not silently
// compute against its own (wrong) timeline.
func TestWorkerRejectsMisdirected(t *testing.T) {
	f := newFleet(t, 3, "g5k_mini", "alpha", "beta", "gamma")
	ring := f.gw.Ring()
	for _, p := range []string{"g5k_mini", "alpha", "beta", "gamma"} {
		owner := ring.Owner(p).Name
		for name, ts := range f.workers {
			resp, err := http.Get(ts.URL + "/pilgrim/timeline_stats/" + p)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if name == owner {
				if resp.StatusCode != http.StatusOK {
					t.Errorf("owner %s answered %d for %s: %s", name, resp.StatusCode, p, body)
				}
				continue
			}
			if resp.StatusCode != http.StatusMisdirectedRequest {
				t.Errorf("non-owner %s answered %d for %s, want 421", name, resp.StatusCode, p)
				continue
			}
			var me pilgrim.MisdirectedError
			if err := json.Unmarshal(body, &me); err != nil {
				t.Fatalf("421 body is not a MisdirectedError: %v: %s", err, body)
			}
			if me.Owner != owner || me.Platform != p || me.Shard != name {
				t.Errorf("421 envelope %+v, want owner %s platform %s shard %s", me, owner, p, name)
			}
			if me.OwnerURL != f.workers[owner].URL {
				t.Errorf("421 owner_url = %s, want %s", me.OwnerURL, f.workers[owner].URL)
			}
		}
	}
}

// TestScatterGatherDegradesPartial stops one worker and checks every
// fleet-wide read degrades instead of failing: platforms still answers
// the union with the down shard named in X-Pilgrim-Partial, cache_stats
// carries a structured per-shard error, and /pilgrim/shards reports the
// outage.
func TestScatterGatherDegradesPartial(t *testing.T) {
	f := newFleet(t, 3, "g5k_mini")
	f.workers["w2"].Close()

	resp, err := http.Get(f.front.URL + "/pilgrim/platforms")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	if err := json.NewDecoder(resp.Body).Decode(&names); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("platforms with a down shard answered %d, want 200 (partial)", resp.StatusCode)
	}
	if len(names) != 1 || names[0] != "g5k_mini" {
		t.Fatalf("platform union = %v, want [g5k_mini]", names)
	}
	if got := resp.Header.Get("X-Pilgrim-Partial"); got != "w2" {
		t.Fatalf("X-Pilgrim-Partial = %q, want w2", got)
	}

	// cache_stats: down shard gets ok=false + error, sums come from the
	// two live shards, and the stock client still decodes the answer.
	var fleetStats FleetCacheStats
	resp, err = http.Get(f.front.URL + "/pilgrim/cache_stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&fleetStats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(fleetStats.Shards) != 3 {
		t.Fatalf("cache_stats envelope has %d shards, want 3", len(fleetStats.Shards))
	}
	for _, sc := range fleetStats.Shards {
		switch sc.Shard {
		case "w2":
			if sc.OK || sc.Error == "" || sc.Stats != nil {
				t.Errorf("down shard row = %+v, want ok=false with error and no stats", sc)
			}
		default:
			if !sc.OK || len(sc.Stats) == 0 {
				t.Errorf("live shard row = %+v, want ok=true with stats", sc)
			}
		}
	}
	if _, err := pilgrim.NewClient(f.front.URL).CacheStats(); err != nil {
		t.Fatalf("stock client CacheStats through degraded gateway: %v", err)
	}

	var shardsDoc struct {
		Shards []ShardStatus `json:"shards"`
	}
	resp, err = http.Get(f.front.URL + "/pilgrim/shards")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&shardsDoc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ok := 0
	for _, st := range shardsDoc.Shards {
		if st.OK {
			ok++
		} else if st.Shard != "w2" {
			t.Errorf("shard %s reported down: %+v", st.Shard, st)
		}
	}
	if ok != 2 {
		t.Fatalf("%d shards healthy, want 2", ok)
	}
}

// TestProxyDownShardAnswers502 routes a platform whose owner is down:
// the gateway must answer 502 with a structured error naming the shard.
func TestProxyDownShardAnswers502(t *testing.T) {
	f := newFleet(t, 3, "g5k_mini")
	owner := f.gw.Ring().Owner("g5k_mini").Name
	f.workers[owner].Close()

	resp, err := http.Get(f.front.URL + "/pilgrim/timeline_stats/g5k_mini")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502", resp.StatusCode)
	}
	var se shardError
	if err := json.NewDecoder(resp.Body).Decode(&se); err != nil {
		t.Fatal(err)
	}
	if se.Shard != owner || !strings.Contains(se.Error, owner) {
		t.Fatalf("502 envelope %+v, want shard %s", se, owner)
	}
}

// TestRetryForwardsFinalUpstreamAnswer fronts a permanently-shedding
// upstream: the gateway must retry (honoring the policy) and then
// forward the upstream's own 429 + Retry-After — not synthesize a
// gateway error.
func TestRetryForwardsFinalUpstreamAnswer(t *testing.T) {
	var hits atomic.Int64
	up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "shed", http.StatusTooManyRequests)
	}))
	defer up.Close()

	gw, err := New(Options{
		Source: shard.Source{Flag: "solo=" + up.URL},
		Retry:  pilgrim.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	front := httptest.NewServer(gw)
	defer front.Close()

	resp, err := http.Get(front.URL + "/pilgrim/timeline_stats/any")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want the upstream's 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After %q not forwarded", got)
	}
	if n := hits.Load(); n != 3 {
		t.Fatalf("upstream saw %d attempts, want 3 (policy retries)", n)
	}
}

// TestReloadRehomes grows the fleet through the shard-map file — the
// SIGHUP path — and checks membership actually swaps, no-op reloads are
// not counted, and a broken map keeps the current ring.
func TestReloadRehomes(t *testing.T) {
	w3 := newWorkerServer(t, "g5k_mini")
	ts3 := httptest.NewServer(w3)
	defer ts3.Close()

	dir := t.TempDir()
	path := filepath.Join(dir, "shards.json")
	two := `{"shards":[{"name":"w1","url":"http://10.0.0.1:1"},{"name":"w2","url":"http://10.0.0.2:1"}]}`
	if err := os.WriteFile(path, []byte(two), 0o644); err != nil {
		t.Fatal(err)
	}
	gw, err := New(Options{Source: shard.Source{File: path}, Retry: fastRetry})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	if gw.Ring().Len() != 2 {
		t.Fatalf("initial ring has %d workers, want 2", gw.Ring().Len())
	}

	if err := gw.Reload(); err != nil {
		t.Fatal(err)
	}
	if n := gw.reloads.Load(); n != 0 {
		t.Fatalf("no-op reload counted (%d)", n)
	}

	three := fmt.Sprintf(`{"shards":[{"name":"w1","url":"http://10.0.0.1:1"},{"name":"w2","url":"http://10.0.0.2:1"},{"name":"w3","url":%q}]}`, ts3.URL)
	if err := os.WriteFile(path, []byte(three), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := gw.Reload(); err != nil {
		t.Fatal(err)
	}
	if gw.Ring().Len() != 3 || gw.reloads.Load() != 1 {
		t.Fatalf("after growth: ring %d workers, %d reloads; want 3 and 1", gw.Ring().Len(), gw.reloads.Load())
	}

	if err := os.WriteFile(path, []byte(`{"shards":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := gw.Reload(); err == nil {
		t.Fatal("empty shard map accepted on reload")
	}
	if gw.Ring().Len() != 3 {
		t.Fatal("failed reload replaced the ring")
	}
}

// promLine matches one exposition sample: name{labels} value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9.e+-]+|NaN)$`)

// checkExposition validates Prometheus text format 0.0.4: content type,
// HELP+TYPE per family before its samples, well-formed sample lines.
// Returns the set of family names.
func checkExposition(t *testing.T, resp *http.Response) map[string]bool {
	t.Helper()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q, want text/plain; version=0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	families := map[string]bool{}
	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 {
				t.Errorf("malformed HELP line: %q", line)
				continue
			}
			families[parts[2]] = true
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.SplitN(line, " ", 4)
			if len(parts) != 4 || (parts[3] != "counter" && parts[3] != "gauge") {
				t.Errorf("malformed TYPE line: %q", line)
				continue
			}
			typed[parts[2]] = true
		default:
			if !promLine.MatchString(line) {
				t.Errorf("malformed sample line: %q", line)
				continue
			}
			name := line
			if i := strings.IndexAny(line, "{ "); i >= 0 {
				name = line[:i]
			}
			if !families[name] || !typed[name] {
				t.Errorf("sample %q before its HELP/TYPE headers", name)
			}
		}
	}
	return families
}

// TestGatewayMetricsContract scrapes the gateway's /metrics after some
// traffic and validates both the format and the control-plane families.
func TestGatewayMetricsContract(t *testing.T) {
	f := newFleet(t, 2, "g5k_mini")
	c := pilgrim.NewClient(f.front.URL)
	if _, err := c.PredictTransfers("g5k_mini", miniTransfers); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CacheStats(); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(f.front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	families := checkExposition(t, resp)
	for _, want := range []string{
		"pilgrim_gateway_shards",
		"pilgrim_gateway_reloads_total",
		"pilgrim_gateway_fanouts_total",
		"pilgrim_gateway_fan_shard_errors_total",
		"pilgrim_gateway_proxy_errors_total",
		"pilgrim_gateway_proxied_total",
	} {
		if !families[want] {
			t.Errorf("gateway /metrics missing family %s", want)
		}
	}
}

// TestEvaluateThroughGateway sends a scenario×query evaluate batch
// through the proxy — the body-carrying POST path with retry-replayable
// buffering — and checks the grid comes back intact.
func TestEvaluateThroughGateway(t *testing.T) {
	f := newFleet(t, 2, "g5k_mini")
	c := pilgrim.NewClient(f.front.URL)
	resp, err := c.Evaluate("g5k_mini", pilgrim.EvaluateRequest{
		Scenarios: []scenario.Scenario{{Name: "baseline"}},
		Queries: []pilgrim.EvalQuery{{
			Kind:      pilgrim.QueryPredictTransfers,
			Transfers: miniTransfers,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Scenarios) != 1 || len(resp.Scenarios[0].Results) != 1 {
		t.Fatalf("evaluate grid %+v, want 1x1", resp.Scenarios)
	}
	if e := resp.Scenarios[0].Results[0].Error; e != "" {
		t.Fatalf("cell error: %s", e)
	}
}
