// Package gateway implements the pilgrimgw control plane: a stateless
// HTTP front for a fleet of pilgrimd workers. Platform-scoped requests
// are proxied to the shard that owns the platform on the rendezvous
// ring (internal/shard); fleet-wide reads (platform listings,
// cache_stats) scatter-gather across every shard with bounded fan-out
// and per-shard deadlines, degrading to partial results when a shard is
// down instead of failing the whole request.
//
// The gateway holds no routing state beyond the shard map itself —
// ownership is a pure function of (membership, platform name) — so any
// number of gateways can front the same fleet without coordination, and
// a gateway restart loses nothing.
package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pilgrim/internal/pilgrim"
	"pilgrim/internal/shard"
)

// Defaults for Options zero values.
const (
	DefaultFanTimeout   = 10 * time.Second
	DefaultMaxFanOut    = 8
	DefaultMaxBodyBytes = 8 << 20
)

// Options configures a Gateway.
type Options struct {
	// Source is the shard-map membership source; Reload re-reads it.
	Source shard.Source
	// FanTimeout bounds each shard's leg of a scatter-gather read
	// (0: DefaultFanTimeout). Proxied platform requests are NOT bounded
	// by it — evaluate batches legitimately run long — they inherit the
	// caller's context.
	FanTimeout time.Duration
	// MaxFanOut bounds how many shards a scatter-gather queries
	// concurrently (0: DefaultMaxFanOut).
	MaxFanOut int
	// MaxBodyBytes caps a proxied request body; bodies are buffered so
	// retries can replay them (0: DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// Retry is applied to every upstream call; zero value selects the
	// pilgrim client defaults.
	Retry pilgrim.RetryPolicy
	// Transport overrides the upstream transport (nil: a
	// pilgrim.NewFleetTransport sized for the fan-out).
	Transport *http.Transport
}

// Gateway routes Pilgrim API traffic across a sharded pilgrimd fleet.
type Gateway struct {
	mux       *http.ServeMux
	table     *shard.Table
	source    shard.Source
	transport *http.Transport
	hc        *http.Client
	retry     pilgrim.RetryPolicy

	fanTimeout time.Duration
	maxFan     int
	maxBody    int64

	reloads     atomic.Uint64
	fanouts     atomic.Uint64
	fanErrors   atomic.Uint64
	proxyErrors atomic.Uint64
	coalesced   atomic.Uint64

	mu      sync.Mutex
	proxied map[string]uint64 // per-shard proxied request count

	// flightMu guards flights, the in-flight scatter-gather table:
	// concurrent reads of the same path share one fan-out instead of
	// multiplying load on every shard (mirrors the workers' forecast
	// coalescing layer, internal/pilgrim/flight.go).
	flightMu sync.Mutex
	flights  map[string]*gatherFlight
}

// gatherFlight is one in-flight scatter-gather other requests wait on;
// legs is valid once done closes.
type gatherFlight struct {
	done chan struct{}
	legs []leg
}

// New builds a gateway over the membership in opts.Source.
func New(opts Options) (*Gateway, error) {
	m, err := opts.Source.Load()
	if err != nil {
		return nil, fmt.Errorf("gateway: loading shard map: %w", err)
	}
	ring, err := shard.NewRing(m)
	if err != nil {
		return nil, fmt.Errorf("gateway: %w", err)
	}
	g := &Gateway{
		mux:        http.NewServeMux(),
		table:      shard.NewTable(ring),
		source:     opts.Source,
		retry:      opts.Retry,
		fanTimeout: opts.FanTimeout,
		maxFan:     opts.MaxFanOut,
		maxBody:    opts.MaxBodyBytes,
		proxied:    make(map[string]uint64),
		flights:    make(map[string]*gatherFlight),
	}
	if g.fanTimeout <= 0 {
		g.fanTimeout = DefaultFanTimeout
	}
	if g.maxFan <= 0 {
		g.maxFan = DefaultMaxFanOut
	}
	if g.maxBody <= 0 {
		g.maxBody = DefaultMaxBodyBytes
	}
	g.transport = opts.Transport
	if g.transport == nil {
		g.transport = pilgrim.NewFleetTransport(4 * g.maxFan)
	}
	// No client-level timeout: proxied evaluates inherit the caller's
	// context, scatter-gather legs carry their own deadline.
	g.hc = &http.Client{Transport: g.transport}

	g.mux.HandleFunc("GET /pilgrim/platforms", g.handlePlatforms)
	g.mux.HandleFunc("GET /pilgrim/cache_stats", g.handleCacheStats)
	g.mux.HandleFunc("GET /pilgrim/shards", g.handleShards)
	g.mux.HandleFunc("GET /metrics", g.handleMetrics)
	for _, route := range []string{
		"GET /pilgrim/predict_transfers/{platform}",
		"GET /pilgrim/select_fastest/{platform}",
		"POST /pilgrim/predict_workflow/{platform}",
		"POST /pilgrim/evaluate/{platform}",
		"GET /pilgrim/bg_estimate/{platform}",
		"POST /pilgrim/bg_estimate/{platform}",
		"POST /pilgrim/update_links/{platform}",
		"GET /pilgrim/timeline_stats/{platform}",
	} {
		g.mux.HandleFunc(route, g.handleProxy)
	}
	return g, nil
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.mux.ServeHTTP(w, r) }

// Ring is the current routing ring (for tests and tooling).
func (g *Gateway) Ring() *shard.Ring { return g.table.Ring() }

// Reload re-reads the membership source and swaps the ring if it
// changed — the SIGHUP path. In-flight requests keep the ring they
// started with.
func (g *Gateway) Reload() error {
	m, err := g.source.Load()
	if err != nil {
		return fmt.Errorf("gateway: reloading shard map: %w", err)
	}
	cur := g.table.Ring()
	old := &shard.Map{Workers: cur.Workers()}
	if m.Equal(old) {
		return nil
	}
	ring, err := shard.NewRing(m)
	if err != nil {
		return fmt.Errorf("gateway: %w", err)
	}
	g.table.Store(ring)
	g.reloads.Add(1)
	return nil
}

// Close releases pooled upstream connections. Call it after the HTTP
// server has drained so in-flight proxied responses are not cut.
func (g *Gateway) Close() {
	g.transport.CloseIdleConnections()
}

// shardError is the structured per-shard failure the gateway returns
// instead of failing a whole scatter-gather, and the body of a 502 when
// the owning shard of a proxied request is unreachable.
type shardError struct {
	Error string `json:"error"`
	Shard string `json:"shard"`
	URL   string `json:"url"`
}

// handleProxy forwards a platform-scoped request to the owning shard.
// The body is buffered so the retry policy can replay it; the upstream
// answer — whatever its status — is streamed back with its headers, so
// admission shedding (429 + Retry-After) and ownership rejections (421)
// reach the client intact.
func (g *Gateway) handleProxy(w http.ResponseWriter, r *http.Request) {
	owner := g.table.Owner(r.PathValue("platform"))
	var body []byte
	if r.Body != nil {
		var err error
		body, err = io.ReadAll(io.LimitReader(r.Body, g.maxBody+1))
		if err != nil {
			http.Error(w, "reading request body: "+err.Error(), http.StatusBadRequest)
			return
		}
		if int64(len(body)) > g.maxBody {
			http.Error(w, fmt.Sprintf("request body exceeds %d bytes", g.maxBody), http.StatusRequestEntityTooLarge)
			return
		}
	}
	ctype := r.Header.Get("Content-Type")
	u := owner.URL + r.URL.RequestURI()
	resp, err := g.retry.Do(g.hc, func() (*http.Request, error) {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method, u, rd)
		if err != nil {
			return nil, err
		}
		if ctype != "" {
			req.Header.Set("Content-Type", ctype)
		}
		return req, nil
	})
	g.countProxied(owner.Name)
	if err != nil {
		g.proxyErrors.Add(1)
		writeJSONStatus(w, http.StatusBadGateway, shardError{
			Error: fmt.Sprintf("shard %q unreachable: %v", owner.Name, err),
			Shard: owner.Name, URL: owner.URL,
		})
		return
	}
	defer resp.Body.Close()
	copyHeaders(w.Header(), resp.Header)
	w.Header().Set("X-Pilgrim-Shard", owner.Name)
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

func (g *Gateway) countProxied(name string) {
	g.mu.Lock()
	g.proxied[name]++
	g.mu.Unlock()
}

// hopByHop are connection-level headers that must not be forwarded.
var hopByHop = map[string]bool{
	"Connection": true, "Keep-Alive": true, "Proxy-Authenticate": true,
	"Proxy-Authorization": true, "Te": true, "Trailer": true,
	"Transfer-Encoding": true, "Upgrade": true,
}

func copyHeaders(dst, src http.Header) {
	for k, vs := range src {
		if hopByHop[http.CanonicalHeaderKey(k)] {
			continue
		}
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// leg is one shard's answer to a scatter-gather read.
type leg struct {
	worker shard.Worker
	body   []byte
	err    error
}

// gather answers a fleet-wide read, coalescing concurrent requests for
// the same path onto one in-flight fan-out: the first requester
// scatters (detached from its own cancellation, so a leader hanging up
// doesn't poison the shared answer — each leg still carries the
// per-shard deadline), duplicates wait for its legs but honor their own
// deadlines. Stats endpoints are read-only and shard-local, so a
// coalesced answer is exactly as fresh as the racing reads it replaces.
func (g *Gateway) gather(ctx context.Context, path string) []leg {
	g.flightMu.Lock()
	if f := g.flights[path]; f != nil {
		g.flightMu.Unlock()
		g.coalesced.Add(1)
		select {
		case <-f.done:
			return f.legs
		case <-ctx.Done():
			workers := g.table.Ring().Workers()
			legs := make([]leg, len(workers))
			for i, wk := range workers {
				legs[i] = leg{worker: wk, err: ctx.Err()}
			}
			return legs
		}
	}
	f := &gatherFlight{done: make(chan struct{})}
	g.flights[path] = f
	g.flightMu.Unlock()
	defer func() {
		g.flightMu.Lock()
		delete(g.flights, path)
		g.flightMu.Unlock()
		close(f.done)
	}()
	f.legs = g.scatter(context.WithoutCancel(ctx), path)
	return f.legs
}

// scatter queries path on every shard with bounded parallelism and a
// per-shard deadline, returning one leg per worker in ring order. A
// down shard yields a leg with err set — degradation, not failure.
func (g *Gateway) scatter(ctx context.Context, path string) []leg {
	g.fanouts.Add(1)
	workers := g.table.Ring().Workers()
	legs := make([]leg, len(workers))
	sem := make(chan struct{}, g.maxFan)
	var wg sync.WaitGroup
	for i, wk := range workers {
		wg.Add(1)
		go func(i int, wk shard.Worker) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			legCtx, cancel := context.WithTimeout(ctx, g.fanTimeout)
			defer cancel()
			body, err := g.getShard(legCtx, wk, path)
			if err != nil {
				g.fanErrors.Add(1)
			}
			legs[i] = leg{worker: wk, body: body, err: err}
		}(i, wk)
	}
	wg.Wait()
	return legs
}

// getShard performs one GET against a shard under the retry policy and
// returns the 200 body.
func (g *Gateway) getShard(ctx context.Context, wk shard.Worker, path string) ([]byte, error) {
	resp, err := g.retry.Do(g.hc, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, wk.URL+path, nil)
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, g.maxBody))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return body, nil
}

// handlePlatforms unions platform listings across the fleet:
//
//	GET /pilgrim/platforms
//
// The answer stays a plain sorted JSON array — exactly what a single
// pilgrimd serves, so pilgrim.Client.Platforms works unchanged through
// the gateway. Shards that failed are named in the X-Pilgrim-Partial
// header; /pilgrim/shards has the detail.
func (g *Gateway) handlePlatforms(w http.ResponseWriter, r *http.Request) {
	legs := g.gather(r.Context(), "/pilgrim/platforms")
	seen := map[string]bool{}
	var failed []string
	for _, l := range legs {
		if l.err != nil {
			failed = append(failed, l.worker.Name)
			continue
		}
		var names []string
		if err := json.Unmarshal(l.body, &names); err != nil {
			failed = append(failed, l.worker.Name)
			continue
		}
		for _, n := range names {
			seen[n] = true
		}
	}
	union := make([]string, 0, len(seen))
	for n := range seen {
		union = append(union, n)
	}
	sort.Strings(union)
	if len(failed) > 0 {
		w.Header().Set("X-Pilgrim-Partial", strings.Join(failed, ","))
	}
	writeJSON(w, union)
}

// ShardCacheStats is one shard's leg of the fleet cache_stats answer.
type ShardCacheStats struct {
	Shard string `json:"shard"`
	URL   string `json:"url"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Stats is the shard's own cache_stats document, verbatim.
	Stats json.RawMessage `json:"stats,omitempty"`
}

// FleetCacheStats is the gateway's cache_stats answer: the fleet-summed
// forecast-cache counters inline (so pilgrim.Client.CacheStats decodes
// it unchanged) plus a per-shard envelope.
type FleetCacheStats struct {
	pilgrim.CacheStats
	Shards []ShardCacheStats `json:"shards"`
}

// handleCacheStats sums forecast-cache counters across the fleet:
//
//	GET /pilgrim/cache_stats
//
// Down shards appear in the envelope with ok=false and are excluded
// from the sums.
func (g *Gateway) handleCacheStats(w http.ResponseWriter, r *http.Request) {
	legs := g.gather(r.Context(), "/pilgrim/cache_stats")
	out := FleetCacheStats{Shards: make([]ShardCacheStats, 0, len(legs))}
	for _, l := range legs {
		sc := ShardCacheStats{Shard: l.worker.Name, URL: l.worker.URL}
		if l.err != nil {
			sc.Error = l.err.Error()
			out.Shards = append(out.Shards, sc)
			continue
		}
		var cs pilgrim.CacheStats
		if err := json.Unmarshal(l.body, &cs); err != nil {
			sc.Error = "decoding cache_stats: " + err.Error()
			out.Shards = append(out.Shards, sc)
			continue
		}
		sc.OK = true
		sc.Stats = json.RawMessage(l.body)
		out.Shards = append(out.Shards, sc)
		out.Hits += cs.Hits
		out.Misses += cs.Misses
		out.CoalescedHits += cs.CoalescedHits
		out.Size += cs.Size
		out.Capacity += cs.Capacity
	}
	writeJSON(w, out)
}

// ShardStatus is one worker's row in the membership/health listing.
type ShardStatus struct {
	Shard     string   `json:"shard"`
	URL       string   `json:"url"`
	OK        bool     `json:"ok"`
	Error     string   `json:"error,omitempty"`
	Platforms []string `json:"platforms,omitempty"`
}

// handleShards reports fleet membership and per-shard health:
//
//	GET /pilgrim/shards
//
// Health is a live platforms probe, so the listing doubles as the
// degradation report for partial scatter-gather answers.
func (g *Gateway) handleShards(w http.ResponseWriter, r *http.Request) {
	legs := g.gather(r.Context(), "/pilgrim/platforms")
	out := struct {
		Shards []ShardStatus `json:"shards"`
	}{Shards: make([]ShardStatus, 0, len(legs))}
	for _, l := range legs {
		st := ShardStatus{Shard: l.worker.Name, URL: l.worker.URL}
		if l.err != nil {
			st.Error = l.err.Error()
		} else if err := json.Unmarshal(l.body, &st.Platforms); err != nil {
			st.Error = "decoding platforms: " + err.Error()
		} else {
			st.OK = true
		}
		out.Shards = append(out.Shards, st)
	}
	writeJSON(w, out)
}

// handleMetrics is the gateway's own Prometheus scrape endpoint:
//
//	GET /metrics
//
// Worker metrics are scraped from each pilgrimd directly; the gateway
// exports only its control-plane counters.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	e := pilgrim.NewExposition()
	e.Add("pilgrim_gateway_shards", "Workers in the current shard map.", pilgrim.Gauge, float64(g.table.Ring().Len()))
	e.Add("pilgrim_gateway_reloads_total", "Shard-map reloads that changed membership.", pilgrim.Counter, float64(g.reloads.Load()))
	e.Add("pilgrim_gateway_fanouts_total", "Scatter-gather reads served.", pilgrim.Counter, float64(g.fanouts.Load()))
	e.Add("pilgrim_gateway_coalesced_fanouts_total", "Fleet-wide reads answered by another request's in-flight fan-out.", pilgrim.Counter, float64(g.coalesced.Load()))
	e.Add("pilgrim_gateway_fan_shard_errors_total", "Scatter-gather legs that failed (partial answers).", pilgrim.Counter, float64(g.fanErrors.Load()))
	e.Add("pilgrim_gateway_proxy_errors_total", "Proxied requests whose owning shard was unreachable (502).", pilgrim.Counter, float64(g.proxyErrors.Load()))
	g.mu.Lock()
	for name, n := range g.proxied {
		e.Add("pilgrim_gateway_proxied_total", "Platform requests proxied, by owning shard.", pilgrim.Counter, float64(n), pilgrim.Label{Name: "shard", Value: name})
	}
	g.mu.Unlock()
	e.SortFamily("pilgrim_gateway_proxied_total")
	e.WriteTo(w)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	writeJSONStatus(w, http.StatusOK, v)
}

func writeJSONStatus(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
