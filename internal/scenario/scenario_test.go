package scenario

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"pilgrim/internal/bgtraffic"
	"pilgrim/internal/platform"
)

func f64(v float64) *float64 { return &v }

func testSnapshot(t testing.TB) *platform.Snapshot {
	t.Helper()
	p := platform.New("sc", platform.RoutingFull)
	as := p.Root()
	for _, h := range []string{"a", "b"} {
		if _, err := as.AddHost(h, 1e9); err != nil {
			t.Fatal(err)
		}
		if _, err := as.AddLink(h+"_nic", 1e8, 1e-4, platform.Shared); err != nil {
			t.Fatal(err)
		}
	}
	links := []platform.LinkUse{
		{Link: p.Link("a_nic"), Direction: platform.Up},
		{Link: p.Link("b_nic"), Direction: platform.Down},
	}
	if err := as.AddRoute("a", "b", links, true); err != nil {
		t.Fatal(err)
	}
	return p.Snapshot()
}

func TestResolveComposesInOrder(t *testing.T) {
	base := testSnapshot(t)
	sc := Scenario{Name: "degrade", Mutations: []Mutation{
		{Op: OpScaleLink, Link: "a_nic", BandwidthFactor: 0.5},
		{Op: OpScaleLink, Link: "a_nic", BandwidthFactor: 0.5}, // composes: 0.25x
		{Op: OpSetLink, Link: "b_nic", Latency: f64(5e-3)},
	}}
	snap, r, err := sc.Compile(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	ai, _ := base.LinkIndex("a_nic")
	bi, _ := base.LinkIndex("b_nic")
	if got := snap.LinkBandwidth(ai); got != 0.25e8 {
		t.Errorf("a_nic bandwidth = %v, want 2.5e7", got)
	}
	if got := snap.LinkLatency(bi); got != 5e-3 {
		t.Errorf("b_nic latency = %v, want 5e-3", got)
	}
	if got := snap.LinkBandwidth(bi); got != 1e8 {
		t.Errorf("b_nic bandwidth changed: %v", got)
	}
	if snap.Epoch() == base.Epoch() {
		t.Error("non-empty overlay must derive a new epoch")
	}
	if !strings.Contains(snap.Provenance(), "a_nic") || !strings.Contains(snap.Provenance(), "b_nic") {
		t.Errorf("provenance = %q", snap.Provenance())
	}
	if r.Empty() {
		t.Error("resolved overlay reported empty")
	}
}

func TestSetThenScaleComposes(t *testing.T) {
	base := testSnapshot(t)
	sc := Scenario{Mutations: []Mutation{
		{Op: OpSetLink, Link: "a_nic", Bandwidth: f64(2e8)},
		{Op: OpScaleLink, Link: "a_nic", BandwidthFactor: 0.5},
	}}
	snap, _, err := sc.Compile(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	ai, _ := base.LinkIndex("a_nic")
	if got := snap.LinkBandwidth(ai); got != 1e8 {
		t.Errorf("set-then-scale = %v, want 1e8", got)
	}
}

func TestEquivalentScenariosShareKey(t *testing.T) {
	base := testSnapshot(t)
	scale := Scenario{Name: "x", Mutations: []Mutation{
		{Op: OpScaleLink, Link: "a_nic", BandwidthFactor: 0.5},
	}}
	set := Scenario{Name: "y", Mutations: []Mutation{
		{Op: OpSetLink, Link: "a_nic", Bandwidth: f64(5e7)},
	}}
	other := Scenario{Name: "z", Mutations: []Mutation{
		{Op: OpSetLink, Link: "a_nic", Bandwidth: f64(6e7)},
	}}
	r1, err := scale.Resolve(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := set.Resolve(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := other.Resolve(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Key() != r2.Key() {
		t.Errorf("equivalent scenarios keyed differently:\n%q\n%q", r1.Key(), r2.Key())
	}
	if r1.Key() == r3.Key() {
		t.Error("different scenarios share a key")
	}
}

func TestEmptyOverlayKeepsBaseEpoch(t *testing.T) {
	base := testSnapshot(t)
	sc := Scenario{Name: "baseline-plus-bg", Mutations: []Mutation{
		{Op: OpBgTraffic, Src: "a", Dst: "b", Flows: 2},
		{Op: OpAtTime, Time: 12345},
	}}
	snap, r, err := sc.Compile(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if snap != base {
		t.Error("traffic-only scenario must reuse the base epoch")
	}
	if len(r.Background) != 2 {
		t.Errorf("background = %v", r.Background)
	}
	if at, ok := sc.At(); !ok || at != 12345 {
		t.Errorf("At() = %v, %v", at, ok)
	}
}

func TestFailuresResolveToZeros(t *testing.T) {
	base := testSnapshot(t)
	sc := Scenario{Mutations: []Mutation{
		{Op: OpFailLink, Link: "b_nic"},
		{Op: OpFailHost, Host: "a"},
	}}
	snap, _, err := sc.Compile(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	bi, _ := base.LinkIndex("b_nic")
	hi, _ := base.HostIndex("a")
	if !snap.LinkDown(bi) {
		t.Error("link not down")
	}
	if !snap.HostDown(hi) {
		t.Error("host not down")
	}
	if !strings.Contains(snap.Provenance(), "fail link b_nic") ||
		!strings.Contains(snap.Provenance(), "fail host a") {
		t.Errorf("provenance = %q", snap.Provenance())
	}
}

func TestBgEstimateExpansion(t *testing.T) {
	base := testSnapshot(t)
	sc := Scenario{Mutations: []Mutation{{Op: OpBgEstimate}}}
	if _, _, err := sc.Compile(base, nil); err == nil {
		t.Fatal("bg_estimate without a registered estimate accepted")
	}
	est := [][2]string{{"a", "b"}, {"b", "a"}}
	_, r, err := sc.Compile(base, est)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Background) != 2 || r.Background[0] != est[0] {
		t.Errorf("background = %v", r.Background)
	}
}

func TestFromBgFlows(t *testing.T) {
	muts := FromBgFlows([]bgtraffic.Flow{{Src: "a", Dst: "b"}})
	if len(muts) != 1 || muts[0].Op != OpBgTraffic || muts[0].Src != "a" || muts[0].Dst != "b" {
		t.Errorf("FromBgFlows = %+v", muts)
	}
}

func TestValidateRejectsBadMutations(t *testing.T) {
	cases := map[string]Mutation{
		"unknown op":         {Op: "teleport"},
		"scale missing link": {Op: OpScaleLink, BandwidthFactor: 0.5},
		"scale no factor":    {Op: OpScaleLink, Link: "l"},
		"scale neg factor":   {Op: OpScaleLink, Link: "l", BandwidthFactor: -1},
		"scale inf factor":   {Op: OpScaleLink, Link: "l", BandwidthFactor: math.Inf(1)},
		"set missing values": {Op: OpSetLink, Link: "l"},
		"set zero bandwidth": {Op: OpSetLink, Link: "l", Bandwidth: f64(0)},
		"set neg latency":    {Op: OpSetLink, Link: "l", Latency: f64(-1)},
		"fail missing link":  {Op: OpFailLink},
		"fail missing host":  {Op: OpFailHost},
		"bg missing dst":     {Op: OpBgTraffic, Src: "a"},
		"bg self flow":       {Op: OpBgTraffic, Src: "a", Dst: "a"},
		"bg negative flows":  {Op: OpBgTraffic, Src: "a", Dst: "b", Flows: -1},
		"at_time missing":    {Op: OpAtTime},
	}
	for name, m := range cases {
		sc := Scenario{Name: name, Mutations: []Mutation{m}}
		if err := sc.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	base := testSnapshot(t)
	unknown := Scenario{Mutations: []Mutation{{Op: OpFailLink, Link: "ghost"}}}
	if _, _, err := unknown.Compile(base, nil); err == nil {
		t.Error("unknown link accepted at resolve time")
	}
	unknownHost := Scenario{Mutations: []Mutation{{Op: OpFailHost, Host: "ghost"}}}
	if _, _, err := unknownHost.Compile(base, nil); err == nil {
		t.Error("unknown host accepted at resolve time")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	sc := Scenario{Name: "wire", Mutations: []Mutation{
		{Op: OpScaleLink, Link: "a_nic", BandwidthFactor: 0.4},
		{Op: OpSetLink, Link: "b_nic", Bandwidth: f64(9e7), Latency: f64(2e-4)},
		{Op: OpFailHost, Host: "a"},
		{Op: OpBgTraffic, Src: "a", Dst: "b", Flows: 3},
		{Op: OpAtTime, Time: 1336111200},
	}}
	data, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	var back Scenario
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	base := testSnapshot(t)
	r1, err := sc.Resolve(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := back.Resolve(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Key() != r2.Key() || len(r1.Background) != len(r2.Background) {
		t.Error("scenario changed across JSON round trip")
	}
}
