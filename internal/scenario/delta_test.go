package scenario

import (
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"pilgrim/internal/platform"
)

// TestResolvedDeltaMatchesDiffSnapshots: the O(mutations) classification
// Delta computes without deriving an epoch must agree exactly with
// platform.DiffSnapshots over the actually derived epoch, for random
// scenarios mixing scales, sets, failures, and no-op re-assertions.
func TestResolvedDeltaMatchesDiffSnapshots(t *testing.T) {
	base := testSnapshot(t)
	linkNames := []string{"a_nic", "b_nic"}
	hostNames := []string{"a", "b"}

	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var muts []Mutation
		for i := 0; i < 1+rng.Intn(5); i++ {
			link := linkNames[rng.Intn(len(linkNames))]
			switch rng.Intn(5) {
			case 0:
				muts = append(muts, Mutation{Op: OpScaleLink, Link: link, BandwidthFactor: 0.25 + rng.Float64()})
			case 1:
				// Scale by exactly 1: resolves to the current value, so the
				// delta must report nothing for it.
				muts = append(muts, Mutation{Op: OpScaleLink, Link: link, BandwidthFactor: 1})
			case 2:
				muts = append(muts, Mutation{Op: OpSetLink, Link: link, Latency: f64(rng.Float64() * 1e-2)})
			case 3:
				muts = append(muts, Mutation{Op: OpFailLink, Link: link})
			case 4:
				muts = append(muts, Mutation{Op: OpFailHost, Host: hostNames[rng.Intn(len(hostNames))]})
			}
		}
		sc := Scenario{Name: fmt.Sprintf("rand-%d", seed), Mutations: muts}
		r, err := sc.Resolve(base, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		derived, err := r.Apply(base)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, ok := platform.DiffSnapshots(base, derived)
		if !ok {
			t.Fatalf("seed %d: derived epoch not same-topology", seed)
		}
		got := r.Delta(base)
		for _, c := range []struct {
			name      string
			got, want []int32
		}{
			{"BwLinks", got.BwLinks, want.BwLinks},
			{"LatLinks", got.LatLinks, want.LatLinks},
			{"AvailLinks", got.AvailLinks, want.AvailLinks},
			{"SpeedHosts", got.SpeedHosts, want.SpeedHosts},
			{"AvailHosts", got.AvailHosts, want.AvailHosts},
		} {
			if !slices.Equal(c.got, c.want) {
				t.Fatalf("seed %d: %s = %v, want %v (scenario %+v)", seed, c.name, c.got, c.want, muts)
			}
		}
		if got.Empty() != want.Empty() {
			t.Fatalf("seed %d: Empty() mismatch", seed)
		}
	}
}
