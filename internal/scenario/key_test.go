package scenario

import "testing"

// TestKeyCanonicalization pins the dedup contract table-wise: mutation
// lists that describe the same hypothetical network resolve to one
// canonical Key (sharing a derived epoch in the evaluate layer), and
// lists that differ in any epoch-affecting way never collide.
func TestKeyCanonicalization(t *testing.T) {
	base := testSnapshot(t)
	key := func(t *testing.T, muts []Mutation) string {
		t.Helper()
		r, err := (&Scenario{Name: "k", Mutations: muts}).Resolve(base, nil)
		if err != nil {
			t.Fatal(err)
		}
		return r.Key()
	}

	equivalent := []struct {
		name string
		a, b []Mutation
	}{
		{
			name: "scale vs set to the same value",
			a:    []Mutation{{Op: OpScaleLink, Link: "a_nic", BandwidthFactor: 0.5}},
			b:    []Mutation{{Op: OpSetLink, Link: "a_nic", Bandwidth: f64(5e7)}},
		},
		{
			name: "two composed scalings vs one",
			a: []Mutation{
				{Op: OpScaleLink, Link: "a_nic", BandwidthFactor: 0.5},
				{Op: OpScaleLink, Link: "a_nic", BandwidthFactor: 0.5},
			},
			b: []Mutation{{Op: OpScaleLink, Link: "a_nic", BandwidthFactor: 0.25}},
		},
		{
			name: "set then scale vs direct set",
			a: []Mutation{
				{Op: OpSetLink, Link: "a_nic", Bandwidth: f64(2e8)},
				{Op: OpScaleLink, Link: "a_nic", BandwidthFactor: 0.5},
			},
			b: []Mutation{{Op: OpSetLink, Link: "a_nic", Bandwidth: f64(1e8)}},
		},
		{
			name: "touch order across distinct links",
			a: []Mutation{
				{Op: OpScaleLink, Link: "a_nic", BandwidthFactor: 0.5},
				{Op: OpSetLink, Link: "b_nic", Latency: f64(5e-3)},
			},
			b: []Mutation{
				{Op: OpSetLink, Link: "b_nic", Latency: f64(5e-3)},
				{Op: OpScaleLink, Link: "a_nic", BandwidthFactor: 0.5},
			},
		},
		{
			name: "repeated fail_link is idempotent",
			a:    []Mutation{{Op: OpFailLink, Link: "a_nic"}, {Op: OpFailLink, Link: "a_nic"}},
			b:    []Mutation{{Op: OpFailLink, Link: "a_nic"}},
		},
		{
			name: "degrade then fail collapses to fail",
			a: []Mutation{
				{Op: OpScaleLink, Link: "a_nic", BandwidthFactor: 0.5},
				{Op: OpFailLink, Link: "a_nic"},
			},
			b: []Mutation{{Op: OpFailLink, Link: "a_nic"}},
		},
		{
			name: "repeated fail_host is idempotent",
			a:    []Mutation{{Op: OpFailHost, Host: "a"}, {Op: OpFailHost, Host: "a"}},
			b:    []Mutation{{Op: OpFailHost, Host: "a"}},
		},
		{
			name: "overwritten intermediate state is invisible",
			a: []Mutation{
				{Op: OpSetLink, Link: "a_nic", Bandwidth: f64(3e7)},
				{Op: OpSetLink, Link: "a_nic", Bandwidth: f64(7e7)},
			},
			b: []Mutation{{Op: OpSetLink, Link: "a_nic", Bandwidth: f64(7e7)}},
		},
		{
			name: "background traffic does not reach the key",
			a: []Mutation{
				{Op: OpFailLink, Link: "b_nic"},
				{Op: OpBgTraffic, Src: "a", Dst: "b", Flows: 3},
			},
			b: []Mutation{{Op: OpFailLink, Link: "b_nic"}},
		},
		{
			name: "at_time does not reach the key",
			a: []Mutation{
				{Op: OpFailLink, Link: "b_nic"},
				{Op: OpAtTime, Time: 99999},
			},
			b: []Mutation{{Op: OpFailLink, Link: "b_nic"}},
		},
	}
	for _, tc := range equivalent {
		t.Run("equivalent/"+tc.name, func(t *testing.T) {
			ka, kb := key(t, tc.a), key(t, tc.b)
			if ka != kb {
				t.Errorf("equivalent phrasings keyed differently:\n a=%q\n b=%q", ka, kb)
			}
		})
	}

	distinct := []struct {
		name string
		a, b []Mutation
	}{
		{
			name: "different values",
			a:    []Mutation{{Op: OpSetLink, Link: "a_nic", Bandwidth: f64(5e7)}},
			b:    []Mutation{{Op: OpSetLink, Link: "a_nic", Bandwidth: f64(6e7)}},
		},
		{
			name: "different links, same value",
			a:    []Mutation{{Op: OpSetLink, Link: "a_nic", Bandwidth: f64(5e7)}},
			b:    []Mutation{{Op: OpSetLink, Link: "b_nic", Bandwidth: f64(5e7)}},
		},
		{
			name: "bandwidth vs latency on one link",
			a:    []Mutation{{Op: OpScaleLink, Link: "a_nic", BandwidthFactor: 2}},
			b:    []Mutation{{Op: OpScaleLink, Link: "a_nic", LatencyFactor: 2}},
		},
		{
			name: "link failure vs host failure",
			a:    []Mutation{{Op: OpFailLink, Link: "a_nic"}},
			b:    []Mutation{{Op: OpFailHost, Host: "a"}},
		},
		{
			name: "overlay vs empty",
			a:    []Mutation{{Op: OpScaleLink, Link: "a_nic", BandwidthFactor: 0.5}},
			b:    nil,
		},
	}
	for _, tc := range distinct {
		t.Run("distinct/"+tc.name, func(t *testing.T) {
			ka, kb := key(t, tc.a), key(t, tc.b)
			if ka == kb {
				t.Errorf("distinct hypotheticals share key %q", ka)
			}
		})
	}
}

// TestKeyStableAcrossResolves: resolving the same scenario twice (even
// through fresh Resolved values) yields the identical key — the overlay
// cache's correctness hinges on it.
func TestKeyStableAcrossResolves(t *testing.T) {
	base := testSnapshot(t)
	sc := Scenario{Name: "s", Mutations: []Mutation{
		{Op: OpScaleLink, Link: "a_nic", BandwidthFactor: 1.0 / 3.0},
		{Op: OpSetLink, Link: "b_nic", Latency: f64(7e-3)},
		{Op: OpFailHost, Host: "b"},
	}}
	r1, err := sc.Resolve(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sc.Resolve(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Key() != r2.Key() {
		t.Errorf("same scenario resolved to different keys:\n%q\n%q", r1.Key(), r2.Key())
	}
	if r1.Key() == "" {
		t.Error("non-empty overlay produced an empty key")
	}
}
