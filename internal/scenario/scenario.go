// Package scenario implements first-class what-if scenarios over compiled
// platform epochs: a Scenario is a named, ordered, composable list of
// mutations — degrade or set a link, fail a link or a host, inject
// background traffic, shift the evaluation time — that resolves against a
// platform.Snapshot into one derived epoch (Snapshot.ApplyOverlay: batch
// copy-on-write, one epoch id per scenario) plus a set of background
// flows to contend with every query.
//
// The paper's forecasting loop asks the simulator one question against
// one network picture; real forecasting workloads (failure sweeps,
// degradation studies, capacity planning) ask bundles of hypotheticals at
// once. Scenarios make each hypothetical an O(changed resources)
// derivation of the live picture, cheap enough to evaluate by the dozen
// per request — the pilgrim evaluate endpoint fans N scenarios × M
// queries over its worker pool and deduplicates identical (epoch, config,
// query) sub-simulations through the forecast cache.
package scenario

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"pilgrim/internal/bgtraffic"
	"pilgrim/internal/platform"
)

// Op names one mutation kind. The string values are the JSON wire form.
type Op string

// Mutation operations.
const (
	// OpScaleLink multiplies a link's bandwidth and/or latency by a
	// factor relative to the value already accumulated for the scenario
	// (mutations compose in order): {"op":"scale_link","link":L,
	// "bandwidth_factor":0.6} models a 40% degradation.
	OpScaleLink Op = "scale_link"
	// OpSetLink states absolute values: {"op":"set_link","link":L,
	// "bandwidth":9.1e7,"latency":2e-4}. Omitted fields keep the current
	// value.
	OpSetLink Op = "set_link"
	// OpFailLink takes a link down entirely; transfers routed across it
	// are rejected with an explicit error.
	OpFailLink Op = "fail_link"
	// OpFailHost takes a host down: computations on it and transfers
	// from/to it are rejected.
	OpFailHost Op = "fail_host"
	// OpBgTraffic injects persistent background flows src->dst (Flows
	// parallel streams, default 1) into every query of the scenario.
	OpBgTraffic Op = "bg_traffic"
	// OpBgEstimate injects the platform's registered background-traffic
	// estimate (bgtraffic.FromMetrology wired into the pilgrim registry)
	// instead of hand-written flows. Resolved by the evaluate layer.
	OpBgEstimate Op = "bg_estimate"
	// OpAtTime evaluates the scenario against the platform's epoch at
	// Time (Unix seconds) — past through the timeline, future through the
	// NWS forecast epoch — instead of the newest observation. Resolved by
	// the evaluate layer before the overlay applies.
	OpAtTime Op = "at_time"
)

// Mutation is one step of a scenario. Which fields apply depends on Op;
// Validate rejects contradictory combinations.
type Mutation struct {
	Op Op `json:"op"`

	// Link and Host name the mutated resource (scale_link, set_link,
	// fail_link / fail_host).
	Link string `json:"link,omitempty"`
	Host string `json:"host,omitempty"`

	// BandwidthFactor and LatencyFactor scale the accumulated value
	// (scale_link; 0 means "leave this dimension alone").
	BandwidthFactor float64 `json:"bandwidth_factor,omitempty"`
	LatencyFactor   float64 `json:"latency_factor,omitempty"`

	// Bandwidth and Latency state absolute values (set_link).
	Bandwidth *float64 `json:"bandwidth,omitempty"`
	Latency   *float64 `json:"latency,omitempty"`

	// Src, Dst and Flows describe injected background traffic
	// (bg_traffic).
	Src   string `json:"src,omitempty"`
	Dst   string `json:"dst,omitempty"`
	Flows int    `json:"flows,omitempty"`

	// Time is the at_time evaluation instant (Unix seconds).
	Time int64 `json:"time,omitempty"`
}

// Scenario is a named, ordered list of mutations. The zero Scenario (no
// mutations) is the baseline: it resolves to the base epoch itself, so
// its queries share cache entries with plain predict_transfers traffic.
type Scenario struct {
	Name      string     `json:"name,omitempty"`
	Mutations []Mutation `json:"mutations,omitempty"`
}

// Validate checks every mutation's shape (resource names are resolved
// later, against the snapshot the scenario is applied to).
func (sc *Scenario) Validate() error {
	for i, m := range sc.Mutations {
		bad := func(format string, args ...interface{}) error {
			return fmt.Errorf("scenario %q mutation %d (%s): %s", sc.Name, i, m.Op, fmt.Sprintf(format, args...))
		}
		switch m.Op {
		case OpScaleLink:
			if m.Link == "" {
				return bad("missing link")
			}
			if m.BandwidthFactor == 0 && m.LatencyFactor == 0 {
				return bad("needs bandwidth_factor and/or latency_factor")
			}
			if m.BandwidthFactor < 0 || math.IsNaN(m.BandwidthFactor) || math.IsInf(m.BandwidthFactor, 0) {
				return bad("invalid bandwidth_factor %v", m.BandwidthFactor)
			}
			if m.LatencyFactor < 0 || math.IsNaN(m.LatencyFactor) || math.IsInf(m.LatencyFactor, 0) {
				return bad("invalid latency_factor %v", m.LatencyFactor)
			}
		case OpSetLink:
			if m.Link == "" {
				return bad("missing link")
			}
			if m.Bandwidth == nil && m.Latency == nil {
				return bad("needs bandwidth and/or latency")
			}
			if m.Bandwidth != nil && (*m.Bandwidth <= 0 || math.IsNaN(*m.Bandwidth) || math.IsInf(*m.Bandwidth, 0)) {
				return bad("invalid bandwidth %v (use fail_link to take a link down)", *m.Bandwidth)
			}
			if m.Latency != nil && (*m.Latency < 0 || math.IsNaN(*m.Latency) || math.IsInf(*m.Latency, 0)) {
				return bad("invalid latency %v", *m.Latency)
			}
		case OpFailLink:
			if m.Link == "" {
				return bad("missing link")
			}
		case OpFailHost:
			if m.Host == "" {
				return bad("missing host")
			}
		case OpBgTraffic:
			if m.Src == "" || m.Dst == "" {
				return bad("needs src and dst")
			}
			if m.Src == m.Dst {
				return bad("src equals dst")
			}
			if m.Flows < 0 {
				return bad("invalid flows %d", m.Flows)
			}
		case OpBgEstimate:
			// No parameters: the estimate is registered per platform.
		case OpAtTime:
			if m.Time <= 0 {
				return bad("needs a positive Unix time")
			}
		default:
			return fmt.Errorf("scenario %q mutation %d: unknown op %q", sc.Name, i, m.Op)
		}
	}
	return nil
}

// At returns the scenario's at_time instant, if any (the last one wins,
// consistent with mutations composing in order).
func (sc *Scenario) At() (int64, bool) {
	var t int64
	found := false
	for _, m := range sc.Mutations {
		if m.Op == OpAtTime {
			t, found = m.Time, true
		}
	}
	return t, found
}

// WantsBgEstimate reports whether any mutation asks for the platform's
// registered background-traffic estimate.
func (sc *Scenario) WantsBgEstimate() bool {
	for _, m := range sc.Mutations {
		if m.Op == OpBgEstimate {
			return true
		}
	}
	return false
}

// FromBgFlows converts synthesized background flows (bgtraffic.Estimate)
// into injectable mutations — the bridge from the coarse traffic model to
// a scenario.
func FromBgFlows(flows []bgtraffic.Flow) []Mutation {
	out := make([]Mutation, len(flows))
	for i, f := range flows {
		out[i] = Mutation{Op: OpBgTraffic, Src: f.Src, Dst: f.Dst}
	}
	return out
}

// Resolved is a scenario lowered against one base snapshot: the dense
// overlay ApplyOverlay consumes, the background flows every query of the
// scenario contends with, and the canonical provenance text recorded on
// the derived epoch. Two scenarios that state the same hypothetical
// network — however their mutation lists are phrased — resolve to equal
// overlays and share one derived epoch through Key.
type Resolved struct {
	Links      []platform.OverlayLink
	Hosts      []platform.OverlayHost
	Background [][2]string
	Provenance string
}

// Resolve validates the scenario and lowers its mutations against the
// base snapshot: names become dense indices, scale factors multiply into
// absolute values (composing in mutation order), failures become explicit
// zeros, and background injections accumulate. bgEstimate supplies the
// flows OpBgEstimate expands to (nil when the platform has none
// registered — then OpBgEstimate is an error).
func (sc *Scenario) Resolve(base *platform.Snapshot, bgEstimate [][2]string) (*Resolved, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	type linkState struct {
		bw, lat float64 // NaN = untouched
	}
	links := make(map[int32]*linkState)
	hosts := make(map[int32]float64)
	var bg [][2]string

	linkOf := func(name string) (int32, *linkState, error) {
		li, ok := base.LinkIndex(name)
		if !ok {
			return 0, nil, fmt.Errorf("scenario %q: unknown link %q", sc.Name, name)
		}
		st := links[li]
		if st == nil {
			st = &linkState{bw: math.NaN(), lat: math.NaN()}
			links[li] = st
		}
		return li, st, nil
	}

	for _, m := range sc.Mutations {
		switch m.Op {
		case OpScaleLink:
			li, st, err := linkOf(m.Link)
			if err != nil {
				return nil, err
			}
			if m.BandwidthFactor > 0 {
				cur := st.bw
				if math.IsNaN(cur) {
					cur = base.LinkBandwidth(li)
				}
				st.bw = cur * m.BandwidthFactor
			}
			if m.LatencyFactor > 0 {
				cur := st.lat
				if math.IsNaN(cur) {
					cur = base.LinkLatency(li)
				}
				st.lat = cur * m.LatencyFactor
			}
		case OpSetLink:
			_, st, err := linkOf(m.Link)
			if err != nil {
				return nil, err
			}
			if m.Bandwidth != nil {
				st.bw = *m.Bandwidth
			}
			if m.Latency != nil {
				st.lat = *m.Latency
			}
		case OpFailLink:
			_, st, err := linkOf(m.Link)
			if err != nil {
				return nil, err
			}
			st.bw = 0
		case OpFailHost:
			hi, ok := base.HostIndex(m.Host)
			if !ok {
				return nil, fmt.Errorf("scenario %q: unknown host %q", sc.Name, m.Host)
			}
			hosts[hi] = 0
		case OpBgTraffic:
			n := m.Flows
			if n == 0 {
				n = 1
			}
			for i := 0; i < n; i++ {
				bg = append(bg, [2]string{m.Src, m.Dst})
			}
		case OpBgEstimate:
			if bgEstimate == nil {
				return nil, fmt.Errorf("scenario %q: no background-traffic estimate registered for this platform", sc.Name)
			}
			bg = append(bg, bgEstimate...)
		case OpAtTime:
			// Resolved by the caller before choosing the base snapshot.
		}
	}

	r := &Resolved{}
	linkIdx := make([]int32, 0, len(links))
	for li := range links {
		linkIdx = append(linkIdx, li)
	}
	sort.Slice(linkIdx, func(i, j int) bool { return linkIdx[i] < linkIdx[j] })
	for _, li := range linkIdx {
		st := links[li]
		r.Links = append(r.Links, platform.OverlayLink{Link: li, Bandwidth: st.bw, Latency: st.lat})
	}
	hostIdx := make([]int32, 0, len(hosts))
	for hi := range hosts {
		hostIdx = append(hostIdx, hi)
	}
	sort.Slice(hostIdx, func(i, j int) bool { return hostIdx[i] < hostIdx[j] })
	for _, hi := range hostIdx {
		r.Hosts = append(r.Hosts, platform.OverlayHost{Host: hi, Speed: hosts[hi]})
	}
	r.Background = bg
	r.Provenance = r.provenance(base)
	return r, nil
}

// provenance renders the resolved overlay as canonical text: one clause
// per touched resource, index order, exact values. Recorded on the
// derived epoch (Snapshot.Provenance) so a forecast answer can always be
// traced back to the hypothetical that produced it.
func (r *Resolved) provenance(base *platform.Snapshot) string {
	var b strings.Builder
	for _, u := range r.Links {
		if b.Len() > 0 {
			b.WriteString("; ")
		}
		name := base.LinkName(u.Link)
		switch {
		case u.Bandwidth == 0:
			fmt.Fprintf(&b, "fail link %s", name)
		default:
			fmt.Fprintf(&b, "link %s", name)
			if !math.IsNaN(u.Bandwidth) {
				fmt.Fprintf(&b, " bw=%s", strconv.FormatFloat(u.Bandwidth, 'g', -1, 64))
			}
			if !math.IsNaN(u.Latency) {
				fmt.Fprintf(&b, " lat=%s", strconv.FormatFloat(u.Latency, 'g', -1, 64))
			}
		}
	}
	for _, u := range r.Hosts {
		if b.Len() > 0 {
			b.WriteString("; ")
		}
		if u.Speed == 0 {
			fmt.Fprintf(&b, "fail host %s", base.HostName(u.Host))
		} else {
			fmt.Fprintf(&b, "host %s speed=%s", base.HostName(u.Host),
				strconv.FormatFloat(u.Speed, 'g', -1, 64))
		}
	}
	return b.String()
}

// Empty reports whether the overlay touches no resource — the scenario
// only injects traffic and/or shifts time, so it evaluates against the
// base epoch itself and shares its cache keys.
func (r *Resolved) Empty() bool { return len(r.Links) == 0 && len(r.Hosts) == 0 }

// Key is the canonical digest of the overlay's epoch-affecting state
// (links and hosts; background flows contend per query and are keyed by
// the forecast cache instead). Two scenarios with equal keys applied to
// the same base epoch describe the same hypothetical network and may
// share one derived snapshot — the dedup handle of the evaluate layer.
func (r *Resolved) Key() string {
	var b strings.Builder
	for _, u := range r.Links {
		fmt.Fprintf(&b, "l%d:%x:%x;", u.Link, math.Float64bits(u.Bandwidth), math.Float64bits(u.Latency))
	}
	for _, u := range r.Hosts {
		fmt.Fprintf(&b, "h%d:%x;", u.Host, math.Float64bits(u.Speed))
	}
	return b.String()
}

// Delta reports the dense touched-resource delta this overlay would make
// when applied to base, classified exactly like platform.DiffSnapshots on
// (base, Apply(base)): overlay values equal to the base value (and NaN
// "keep" markers) are not changes. Costs O(mutations) and never derives
// an epoch — the differential evaluation path uses it to classify queries
// before deciding whether a derived snapshot is worth simulating cold.
func (r *Resolved) Delta(base *platform.Snapshot) *platform.EpochDelta {
	d := &platform.EpochDelta{}
	for _, u := range r.Links {
		if !math.IsNaN(u.Bandwidth) {
			if cur := base.LinkBandwidth(u.Link); cur != u.Bandwidth {
				if cur == 0 || u.Bandwidth == 0 {
					d.AvailLinks = append(d.AvailLinks, u.Link)
				} else {
					d.BwLinks = append(d.BwLinks, u.Link)
				}
			}
		}
		if !math.IsNaN(u.Latency) {
			if base.LinkLatency(u.Link) != u.Latency {
				d.LatLinks = append(d.LatLinks, u.Link)
			}
		}
	}
	for _, u := range r.Hosts {
		if !math.IsNaN(u.Speed) {
			if cur := base.HostSpeed(u.Host); cur != u.Speed {
				if cur == 0 || u.Speed == 0 {
					d.AvailHosts = append(d.AvailHosts, u.Host)
				} else {
					d.SpeedHosts = append(d.SpeedHosts, u.Host)
				}
			}
		}
	}
	return d
}

// Apply derives the scenario's epoch from base: the base snapshot itself
// when the overlay is empty (so baseline scenarios share cache entries
// with plain queries), otherwise one ApplyOverlay batch.
func (r *Resolved) Apply(base *platform.Snapshot) (*platform.Snapshot, error) {
	if r.Empty() {
		return base, nil
	}
	return base.ApplyOverlay(r.Links, r.Hosts, r.Provenance)
}

// Compile is Resolve followed by Apply — the one-call form for callers
// that don't pool derived epochs.
func (sc *Scenario) Compile(base *platform.Snapshot, bgEstimate [][2]string) (*platform.Snapshot, *Resolved, error) {
	r, err := sc.Resolve(base, bgEstimate)
	if err != nil {
		return nil, nil, err
	}
	snap, err := r.Apply(base)
	if err != nil {
		return nil, nil, err
	}
	return snap, r, nil
}
