// Package sim implements the SimGrid-style flow-level network simulator
// that powers Pilgrim's forecasts (paper §IV-A).
//
// The simulation kernel is discrete-event: events are resource state
// changes (a transfer starts, leaves its latency phase, or completes).
// Bandwidth sharing lives in one long-lived max-min system (package
// flow) owned by the Engine: an event inserts or removes just the flows
// it concerns, and the incremental solver re-evaluates only the network
// components those flows touch — everything else keeps its allocation.
// The date of the next event is then computed and simulated time
// fast-forwards to it. SharingStats reports how much solver work each
// simulation actually did.
//
// The TCP model is the RTT-aware max-min fluid model of Casanova & Marchal
// (INRIA RR-4596) with the corrective factors of Velho & Legrand
// (SIMUTools'09): link capacities are scaled by BandwidthFactor, path
// latencies by LatencyFactor, each flow's share weight is 1/RTT, and each
// flow is rate-bounded by the TCP maximum-window bound
// TCPGamma / (2 × RTT) — SimGrid's network/TCP_gamma option, which the
// paper sets to 4194304 to match the senders' kernel configuration.
//
// Three layers are exposed:
//
//   - Engine: the event kernel (communications, computations, background
//     flows) — add activities, step events, read completions;
//   - Simulation: the batch façade used by the forecast service — declare
//     transfers, Run, read per-transfer durations;
//   - Kernel/Process (msg.go): a small MSG-style process API (send,
//     receive, execute, sleep) for simulating distributed applications,
//     which is how the paper's forecast service actually instantiates its
//     simulations (one sender and one receiver process per transfer).
package sim

// Config carries the parameters of the fluid TCP model.
type Config struct {
	// BandwidthFactor scales nominal link bandwidths to usable payload
	// rates, accounting for protocol overheads (Velho & Legrand: 0.92).
	BandwidthFactor float64
	// LatencyFactor scales physical path latencies to effective fluid
	// latencies, accounting for slow-start ramp (Velho & Legrand: 10.4).
	LatencyFactor float64
	// TCPGamma is the maximum TCP window size in bytes
	// (network/TCP_gamma). A flow's rate never exceeds
	// TCPGamma / (2 × RTT). Zero disables the bound.
	TCPGamma float64
	// GammaUsesLatencyFactor selects the RTT used in the window bound:
	// false (default) uses the raw physical RTT, true applies
	// LatencyFactor to it as well. The paper's worked example (§IV-C2,
	// the 16.0044 s cross-site prediction) is only reproduced with true;
	// see EXPERIMENTS.md for why the campaign runs with false.
	GammaUsesLatencyFactor bool
	// MinRTT floors the RTT used for weights and bounds, guarding
	// against zero-latency platforms.
	MinRTT float64
}

// DefaultConfig returns the model parameters used by the paper: Velho &
// Legrand factors and TCP_gamma = 4194304.
func DefaultConfig() Config {
	return Config{
		BandwidthFactor: 0.92,
		LatencyFactor:   10.4,
		TCPGamma:        4194304,
		MinRTT:          1e-9,
	}
}

// rttWeight returns the effective RTT used for share weights: twice the
// one-way path latency scaled by LatencyFactor, floored at MinRTT.
func (c Config) rttWeight(pathLatency float64) float64 {
	rtt := 2 * c.LatencyFactor * pathLatency
	if rtt < c.MinRTT {
		rtt = c.MinRTT
	}
	return rtt
}

// windowBound returns the per-flow rate bound from the TCP maximum window,
// or 0 (unbounded) when disabled.
func (c Config) windowBound(pathLatency float64) float64 {
	if c.TCPGamma <= 0 {
		return 0
	}
	rtt := 2 * pathLatency
	if c.GammaUsesLatencyFactor {
		rtt = 2 * c.LatencyFactor * pathLatency
	}
	if rtt < c.MinRTT {
		rtt = c.MinRTT
	}
	return c.TCPGamma / (2 * rtt)
}
