package sim

import (
	"errors"
	"fmt"
	"sort"

	"pilgrim/internal/platform"
)

// This file implements the MSG-style process API (paper §IV-A: "In MSG,
// applications are modeled as a set of processes, running on a set of
// hosts, executing tasks or exchanging data through the network").
//
// Processes are goroutines scheduled cooperatively by the Kernel: exactly
// one process runs at a time, and it yields whenever it performs a
// blocking simulated action (Send, Recv, Execute, Sleep). The kernel then
// advances simulated time with the fluid engine until the action
// completes. Scheduling is deterministic: runnable processes execute in
// spawn order at each simulated instant.

// ErrDeadlock is returned by Kernel.Run when every live process is blocked
// and no simulated event can unblock any of them.
var ErrDeadlock = errors.New("sim: deadlock: all processes blocked")

// Process is a simulated process, created with Kernel.Spawn. Its methods
// may only be called from within its own body function.
type Process struct {
	name   string
	host   *platform.Host
	kernel *Kernel

	resume chan struct{}
	yield  chan struct{}

	finished bool
	err      error
	commErr  error // outcome of the last rendezvous communication

	// wait state
	waitAct  ActivityID
	inActBox bool // true while blocked on an activity
}

// Name returns the process name.
func (p *Process) Name() string { return p.name }

// Host returns the host the process runs on.
func (p *Process) Host() *platform.Host { return p.host }

// Now returns the current simulated time.
func (p *Process) Now() float64 { return p.kernel.engine.Now() }

// Message is what Recv returns: the payload and transfer metadata.
type Message struct {
	Payload interface{}
	Size    float64
	Source  string // sender host name
}

// pendingSend is a sender parked in a mailbox waiting for a receiver.
type pendingSend struct {
	proc    *Process
	payload interface{}
	size    float64
}

// pendingRecv is a receiver parked in a mailbox waiting for a sender.
type pendingRecv struct {
	proc *Process
	out  *Message
}

type mailbox struct {
	sends []*pendingSend
	recvs []*pendingRecv
}

// Kernel runs MSG-style processes over a fluid engine.
type Kernel struct {
	engine    *Engine
	procs     []*Process
	runnable  []*Process
	waiters   map[ActivityID][]*Process
	mailboxes map[string]*mailbox
	running   bool
}

// NewKernel creates a kernel over the given platform and model
// configuration.
func NewKernel(plat *platform.Platform, cfg Config) *Kernel {
	return &Kernel{
		engine:    NewEngine(plat, cfg),
		waiters:   make(map[ActivityID][]*Process),
		mailboxes: make(map[string]*mailbox),
	}
}

// Engine exposes the underlying fluid engine.
func (k *Kernel) Engine() *Engine { return k.engine }

// Now returns the current simulated time.
func (k *Kernel) Now() float64 { return k.engine.Now() }

// Spawn creates a process named name on the given host, running body.
// The process starts at the current simulated time. Spawn may be called
// before Run or from inside a running process.
func (k *Kernel) Spawn(name, host string, body func(p *Process) error) error {
	h := k.engine.Platform().Host(host)
	if h == nil {
		return fmt.Errorf("sim: unknown host %q for process %q", host, name)
	}
	p := &Process{
		name:   name,
		host:   h,
		kernel: k,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	k.procs = append(k.procs, p)
	k.runnable = append(k.runnable, p)
	go func() {
		<-p.resume
		p.err = safeRun(body, p)
		p.finished = true
		p.yield <- struct{}{}
	}()
	return nil
}

func safeRun(body func(*Process) error, p *Process) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sim: process %q panicked: %v", p.name, r)
		}
	}()
	return body(p)
}

// step lets one process run until it blocks or finishes.
func (k *Kernel) stepProcess(p *Process) {
	p.resume <- struct{}{}
	<-p.yield
}

// block parks the calling process until the kernel resumes it.
// Must be called from inside the process goroutine.
func (p *Process) block() {
	p.yield <- struct{}{}
	<-p.resume
}

// waitActivity parks the process until the engine completes the activity.
func (p *Process) waitActivity(id ActivityID) {
	if done, _ := p.kernel.engine.Done(id); done {
		return
	}
	p.waitAct = id
	p.inActBox = true
	p.kernel.waiters[id] = append(p.kernel.waiters[id], p)
	p.block()
}

// Execute simulates flops floating-point operations on the process's
// host. Concurrent executions on one host share its speed.
func (p *Process) Execute(flops float64) error {
	id, err := p.kernel.engine.AddExec(p.host.ID, flops, p.Now(), nil)
	if err != nil {
		return err
	}
	p.waitActivity(id)
	return nil
}

// Sleep suspends the process for d simulated seconds.
func (p *Process) Sleep(d float64) error {
	if d == 0 {
		return nil
	}
	id, err := p.kernel.engine.AddTimer(d, p.Now(), nil)
	if err != nil {
		return err
	}
	p.waitActivity(id)
	return nil
}

// Send transmits size bytes carrying payload to the named mailbox. It
// blocks until a receiver has taken the message and the simulated
// transfer has completed (MSG rendezvous semantics).
func (p *Process) Send(mbox string, payload interface{}, size float64) error {
	k := p.kernel
	mb := k.mbox(mbox)
	if len(mb.recvs) > 0 {
		r := mb.recvs[0]
		mb.recvs = mb.recvs[1:]
		return k.pair(p, r, payload, size)
	}
	ps := &pendingSend{proc: p, payload: payload, size: size}
	mb.sends = append(mb.sends, ps)
	p.block() // woken by a matching Recv via pair(), after comm completes
	return p.commErr
}

// Recv waits for a message on the named mailbox.
func (p *Process) Recv(mbox string) (Message, error) {
	k := p.kernel
	mb := k.mbox(mbox)
	var msg Message
	if len(mb.sends) > 0 {
		s := mb.sends[0]
		mb.sends = mb.sends[1:]
		pr := &pendingRecv{proc: p, out: &msg}
		if err := k.startComm(s, pr); err != nil {
			// The sender is parked; propagate the error to both sides.
			s.proc.commErr = err
			k.runnable = append(k.runnable, s.proc)
			return msg, err
		}
		p.block() // woken when the comm completes
		return msg, p.commErr
	}
	pr := &pendingRecv{proc: p, out: &msg}
	mb.recvs = append(mb.recvs, pr)
	p.block() // woken by a matching Send via pair(), after comm completes
	return msg, p.commErr
}

// pair is called from the sender side when a receiver is already waiting.
func (k *Kernel) pair(sender *Process, r *pendingRecv, payload interface{}, size float64) error {
	s := &pendingSend{proc: sender, payload: payload, size: size}
	if err := k.startComm(s, r); err != nil {
		r.proc.commErr = err
		k.runnable = append(k.runnable, r.proc)
		return err
	}
	sender.block()
	return sender.commErr
}

// startComm creates the engine communication for a matched send/recv and
// registers both processes as waiters.
func (k *Kernel) startComm(s *pendingSend, r *pendingRecv) error {
	srcHost := s.proc.host.ID
	dstHost := r.proc.host.ID
	payload, size := s.payload, s.size
	out := r.out
	var id ActivityID
	var err error
	if srcHost == dstHost {
		// Local delivery: MSG models same-host messaging as immediate.
		id, err = k.engine.AddTimer(0, k.engine.Now(), nil)
	} else {
		id, err = k.engine.AddComm(srcHost, dstHost, size, k.engine.Now(), nil)
	}
	if err != nil {
		return err
	}
	*out = Message{Payload: payload, Size: size, Source: srcHost}
	s.proc.commErr = nil
	r.proc.commErr = nil
	k.waiters[id] = append(k.waiters[id], s.proc, r.proc)
	s.proc.inActBox = true
	r.proc.inActBox = true
	return nil
}

func (k *Kernel) mbox(name string) *mailbox {
	mb, ok := k.mailboxes[name]
	if !ok {
		mb = &mailbox{}
		k.mailboxes[name] = mb
	}
	return mb
}

// Run executes all spawned processes to completion, advancing simulated
// time as needed. It returns ErrDeadlock if processes remain blocked with
// no pending event, or the first process error encountered.
func (k *Kernel) Run() error {
	if k.running {
		return errors.New("sim: Kernel.Run called reentrantly")
	}
	k.running = true
	defer func() { k.running = false }()

	for {
		// Drain the runnable queue (processes may spawn more).
		for len(k.runnable) > 0 {
			p := k.runnable[0]
			k.runnable = k.runnable[1:]
			if p.finished {
				continue
			}
			k.stepProcess(p)
			if p.finished && p.err != nil {
				return p.err
			}
		}

		live := 0
		for _, p := range k.procs {
			if !p.finished {
				live++
			}
		}
		if live == 0 {
			return nil
		}

		completed, ok, err := k.engine.Step()
		if err != nil {
			return err
		}
		woke := false
		for _, id := range completed {
			for _, p := range k.waiters[id] {
				p.inActBox = false
				k.runnable = append(k.runnable, p)
				woke = true
			}
			delete(k.waiters, id)
		}
		if !ok && !woke {
			var blocked []string
			for _, p := range k.procs {
				if !p.finished {
					blocked = append(blocked, p.name)
				}
			}
			sort.Strings(blocked)
			return fmt.Errorf("%w: %v", ErrDeadlock, blocked)
		}
	}
}
