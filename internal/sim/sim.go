package sim

import (
	"fmt"

	"pilgrim/internal/platform"
)

// Transfer is one TCP transfer to simulate: size bytes from Src to Dst,
// departing at Start (simulated seconds).
type Transfer struct {
	Src   string
	Dst   string
	Size  float64
	Start float64
}

// TransferResult reports the simulated outcome of one Transfer.
type TransferResult struct {
	Transfer
	// Completion is the absolute simulated date the last byte arrived.
	Completion float64
	// Duration is Completion - Start: the predicted transfer completion
	// time PNFS returns.
	Duration float64
}

// Simulation is the batch façade used by the forecast service: declare a
// set of concurrent transfers, Run, and read the predicted completion
// times. It mirrors the paper's use of SimGrid — "a simulation is
// instantiated, containing one send and one receive process for each
// requested transfer" (§IV-C2) — without the process-API overhead.
type Simulation struct {
	engine    *Engine
	transfers []Transfer
	bg        []Transfer
	ran       bool
}

// NewSimulation creates a simulation over the platform's current base
// snapshot with the given model configuration.
func NewSimulation(plat *platform.Platform, cfg Config) *Simulation {
	return &Simulation{engine: NewEngine(plat, cfg)}
}

// NewSnapshotSimulation creates a simulation over one compiled platform
// epoch — the entry point of the measure→update→forecast loop, where each
// forecast must be answered against a specific link-state picture.
func NewSnapshotSimulation(snap *platform.Snapshot, cfg Config) *Simulation {
	return &Simulation{engine: NewEngineSnapshot(snap, cfg)}
}

// NewPooledSimulation is NewSimulation over a recycled engine from the
// process-wide pool (see AcquireEngine). The behaviour is identical; the
// caller must call Release once the results have been read.
func NewPooledSimulation(plat *platform.Platform, cfg Config) *Simulation {
	return &Simulation{engine: AcquireEngine(plat, cfg)}
}

// NewPooledSnapshotSimulation is NewSnapshotSimulation over a recycled
// engine from the process-wide pool.
func NewPooledSnapshotSimulation(snap *platform.Snapshot, cfg Config) *Simulation {
	return &Simulation{engine: AcquireEngineSnapshot(snap, cfg)}
}

// Release returns a pooled simulation's engine to the pool. The
// simulation (and any result indices into its engine) must not be used
// afterwards. Safe to call on non-pooled simulations and more than once.
func (s *Simulation) Release() {
	e := s.engine
	s.engine = nil
	ReleaseEngine(e)
}

// AddTransfer declares a transfer starting at simulated time 0.
func (s *Simulation) AddTransfer(src, dst string, size float64) {
	s.AddTransferAt(src, dst, size, 0)
}

// AddTransferAt declares a transfer with an explicit start date.
func (s *Simulation) AddTransferAt(src, dst string, size, start float64) {
	s.transfers = append(s.transfers, Transfer{Src: src, Dst: dst, Size: size, Start: start})
}

// AddBackgroundFlow declares a persistent contending flow (cross-traffic)
// present from simulated time 0.
func (s *Simulation) AddBackgroundFlow(src, dst string) {
	s.bg = append(s.bg, Transfer{Src: src, Dst: dst})
}

// Run simulates all declared transfers and returns their results in
// declaration order. Run may only be called once per Simulation.
func (s *Simulation) Run() ([]TransferResult, error) {
	if s.ran {
		return nil, fmt.Errorf("sim: Run called twice")
	}
	s.ran = true
	results := make([]TransferResult, len(s.transfers))
	for _, t := range s.bg {
		if _, err := s.engine.AddBackgroundFlow(t.Src, t.Dst, 0); err != nil {
			return nil, fmt.Errorf("sim: background flow %s->%s: %w", t.Src, t.Dst, err)
		}
	}
	for i, t := range s.transfers {
		i, t := i, t
		_, err := s.engine.AddComm(t.Src, t.Dst, t.Size, t.Start, func(now float64) {
			results[i] = TransferResult{
				Transfer:   t,
				Completion: now,
				Duration:   now - t.Start,
			}
		})
		if err != nil {
			return nil, fmt.Errorf("sim: transfer %s->%s: %w", t.Src, t.Dst, err)
		}
	}
	n, err := s.engine.RunToCompletion()
	if err != nil {
		return nil, err
	}
	if n != len(s.transfers) {
		return nil, fmt.Errorf("sim: %d of %d transfers completed", n, len(s.transfers))
	}
	return results, nil
}

// Engine exposes the underlying engine (benchmarks read Resharings).
func (s *Simulation) Engine() *Engine { return s.engine }

// Predict is a convenience one-shot: simulate the given concurrent
// transfers (all starting at time 0) on plat and return their durations.
// The engine comes from (and returns to) the process-wide pool.
func Predict(plat *platform.Platform, cfg Config, transfers []Transfer) ([]TransferResult, error) {
	s := NewPooledSimulation(plat, cfg)
	defer s.Release()
	for _, t := range transfers {
		s.AddTransferAt(t.Src, t.Dst, t.Size, t.Start)
	}
	return s.Run()
}
