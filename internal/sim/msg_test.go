package sim

import (
	"errors"
	"math"
	"testing"

	"pilgrim/internal/platform"
)

func kernelOnPair(t *testing.T) *Kernel {
	t.Helper()
	p := buildPair(t, 100e6, 0)
	cfg := DefaultConfig()
	cfg.TCPGamma = 0
	cfg.LatencyFactor = 1
	return NewKernel(p, cfg)
}

func TestMSGSendRecv(t *testing.T) {
	k := kernelOnPair(t)
	var got Message
	var recvTime float64
	if err := k.Spawn("sender", "a", func(p *Process) error {
		return p.Send("box", "hello", 92e6)
	}); err != nil {
		t.Fatal(err)
	}
	if err := k.Spawn("receiver", "b", func(p *Process) error {
		m, err := p.Recv("box")
		got = m
		recvTime = p.Now()
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got.Payload != "hello" || got.Size != 92e6 || got.Source != "a" {
		t.Errorf("message = %+v", got)
	}
	// 92e6 bytes at 0.92*100e6 B/s = 1s.
	if math.Abs(recvTime-1) > 1e-6 {
		t.Errorf("receive time = %v, want 1", recvTime)
	}
}

func TestMSGRecvBeforeSend(t *testing.T) {
	k := kernelOnPair(t)
	var order []string
	if err := k.Spawn("receiver", "b", func(p *Process) error {
		_, err := p.Recv("box")
		order = append(order, "recv")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := k.Spawn("sender", "a", func(p *Process) error {
		if err := p.Sleep(2); err != nil {
			return err
		}
		err := p.Send("box", 42, 92e6)
		order = append(order, "send")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 {
		t.Fatalf("order = %v", order)
	}
	if k.Now() < 3-1e-6 {
		t.Errorf("end time = %v, want >= 3 (2s sleep + 1s transfer)", k.Now())
	}
}

func TestMSGPingPong(t *testing.T) {
	k := kernelOnPair(t)
	const rounds = 5
	if err := k.Spawn("ping", "a", func(p *Process) error {
		for i := 0; i < rounds; i++ {
			if err := p.Send("to-b", i, 1e6); err != nil {
				return err
			}
			if _, err := p.Recv("to-a"); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var seen []int
	if err := k.Spawn("pong", "b", func(p *Process) error {
		for i := 0; i < rounds; i++ {
			m, err := p.Recv("to-b")
			if err != nil {
				return err
			}
			seen = append(seen, m.Payload.(int))
			if err := p.Send("to-a", nil, 1e6); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != rounds {
		t.Fatalf("rounds = %d, want %d", len(seen), rounds)
	}
	for i, v := range seen {
		if v != i {
			t.Errorf("message %d = %d", i, v)
		}
	}
}

func TestMSGExecute(t *testing.T) {
	k := kernelOnPair(t) // hosts at 1e9 flops
	var end float64
	if err := k.Spawn("worker", "a", func(p *Process) error {
		if err := p.Execute(3e9); err != nil {
			return err
		}
		end = p.Now()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(end-3) > 1e-9 {
		t.Errorf("execute end = %v, want 3", end)
	}
}

func TestMSGSleep(t *testing.T) {
	k := kernelOnPair(t)
	var end float64
	if err := k.Spawn("sleeper", "a", func(p *Process) error {
		if err := p.Sleep(1.5); err != nil {
			return err
		}
		if err := p.Sleep(0); err != nil { // no-op
			return err
		}
		end = p.Now()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(end-1.5) > 1e-9 {
		t.Errorf("end = %v, want 1.5", end)
	}
}

func TestMSGDeadlockDetected(t *testing.T) {
	k := kernelOnPair(t)
	if err := k.Spawn("stuck", "a", func(p *Process) error {
		_, err := p.Recv("never")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	err := k.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestMSGProcessErrorPropagates(t *testing.T) {
	k := kernelOnPair(t)
	boom := errors.New("boom")
	if err := k.Spawn("failing", "a", func(p *Process) error {
		return boom
	}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestMSGPanicRecovered(t *testing.T) {
	k := kernelOnPair(t)
	if err := k.Spawn("panicky", "a", func(p *Process) error {
		panic("argh")
	}); err != nil {
		t.Fatal(err)
	}
	err := k.Run()
	if err == nil {
		t.Fatal("panic not reported")
	}
}

func TestMSGSpawnUnknownHost(t *testing.T) {
	k := kernelOnPair(t)
	if err := k.Spawn("ghost", "nowhere", func(p *Process) error { return nil }); err == nil {
		t.Fatal("unknown host accepted")
	}
}

func TestMSGSameHostMessaging(t *testing.T) {
	k := kernelOnPair(t)
	var at float64
	if err := k.Spawn("s", "a", func(p *Process) error {
		return p.Send("local", "x", 1e9)
	}); err != nil {
		t.Fatal(err)
	}
	if err := k.Spawn("r", "a", func(p *Process) error {
		_, err := p.Recv("local")
		at = p.Now()
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 0 {
		t.Errorf("same-host delivery at %v, want 0", at)
	}
}

// TestMSGTransferScenario mirrors how PNFS instantiates simulations
// (§IV-C2): one sender and one receiver process per requested transfer,
// tracking completion in simulated time. The result must equal the batch
// Simulation's prediction.
func TestMSGMatchesBatchSimulation(t *testing.T) {
	build := func() *platform.Platform { return nil } // silence unused helper pattern
	_ = build
	mk := func(t *testing.T) *platform.Platform {
		return buildPair(t, 125e6, 1e-4)
	}
	cfg := DefaultConfig()

	batch, err := Predict(mk(t), cfg, []Transfer{
		{Src: "a", Dst: "b", Size: 7e8},
		{Src: "a", Dst: "b", Size: 3e8},
	})
	if err != nil {
		t.Fatal(err)
	}

	k := NewKernel(mk(t), cfg)
	durations := make([]float64, 2)
	for i, size := range []float64{7e8, 3e8} {
		i, size := i, size
		box := "t" + string(rune('0'+i))
		if err := k.Spawn("send"+box, "a", func(p *Process) error {
			return p.Send(box, nil, size)
		}); err != nil {
			t.Fatal(err)
		}
		if err := k.Spawn("recv"+box, "b", func(p *Process) error {
			_, err := p.Recv(box)
			durations[i] = p.Now()
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range durations {
		if math.Abs(durations[i]-batch[i].Duration)/batch[i].Duration > 1e-9 {
			t.Errorf("transfer %d: MSG %v vs batch %v", i, durations[i], batch[i].Duration)
		}
	}
}

func TestMSGMasterWorkers(t *testing.T) {
	// A master dispatches compute tasks to two workers and collects acks:
	// the classic MSG example, exercising spawn-from-process and mixed
	// comm/exec activities.
	p := platform.New("root", platform.RoutingFull)
	as := p.Root()
	as.AddHost("master", 1e9)
	for _, w := range []string{"w1", "w2"} {
		as.AddHost(w, 2e9)
		l, _ := as.AddLink(w+"_l", 125e6, 1e-4, platform.Shared)
		as.AddRoute("master", w, []platform.LinkUse{{Link: l, Direction: platform.None}}, true)
	}
	cfg := DefaultConfig()
	k := NewKernel(p, cfg)

	// Rendezvous semantics (send blocks until receipt) mean the master
	// must not wait for acks it can only get after further sends; it
	// dispatches everything, then collects one completion report per
	// worker.
	const tasks = 6
	results := 0
	if err := k.Spawn("master", "master", func(proc *Process) error {
		for i := 0; i < tasks; i++ {
			box := []string{"w1", "w2"}[i%2]
			if err := proc.Send("work:"+box, 1e9 /*flops*/, 1e6); err != nil {
				return err
			}
		}
		for i := 0; i < 2; i++ {
			m, err := proc.Recv("done")
			if err != nil {
				return err
			}
			results += m.Payload.(int)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"w1", "w2"} {
		w := w
		if err := k.Spawn(w, w, func(proc *Process) error {
			for i := 0; i < tasks/2; i++ {
				m, err := proc.Recv("work:" + w)
				if err != nil {
					return err
				}
				if err := proc.Execute(m.Payload.(float64)); err != nil {
					return err
				}
			}
			return proc.Send("done", tasks/2, 1e3)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if results != tasks {
		t.Errorf("results = %d, want %d", results, tasks)
	}
	if k.Now() <= 0 {
		t.Error("no simulated time elapsed")
	}
}
