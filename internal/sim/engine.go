package sim

import (
	"fmt"
	"math"
	"sort"

	"pilgrim/internal/flow"
	"pilgrim/internal/platform"
)

// ActivityID identifies an activity within an Engine.
type ActivityID int

// activityKind discriminates engine activities.
type activityKind int

const (
	commActivity activityKind = iota
	execActivity
	timerActivity
)

// activityPhase tracks the lifecycle of an activity.
type activityPhase int

const (
	phaseScheduled activityPhase = iota // waiting for its start date
	phaseLatency                        // communication in latency phase
	phaseActive                         // consuming bandwidth / flops
	phaseDone
)

// activity is one simulated resource consumer: a communication or a
// computation.
type activity struct {
	id    ActivityID
	kind  activityKind
	phase activityPhase

	start     float64 // requested start date
	latLeft   float64 // remaining latency phase (comm)
	remaining float64 // bytes (comm) or flops (exec)
	rate      float64 // current allocation

	// comm fields
	links  []platform.LinkUse
	weight float64
	bound  float64
	// persistent flows model background traffic: they share bandwidth but
	// never complete and generate no events.
	persistent bool

	// exec fields
	host *platform.Host

	// fv is the live flow-system variable while the activity is in
	// phaseActive (nil for timers). It is inserted on activation and
	// removed on completion, so the max-min system mutates incrementally
	// instead of being rebuilt per event.
	fv *flow.Variable

	finished float64 // completion date, valid when phase == phaseDone
	onDone   func(now float64)
}

// Engine is the discrete-event kernel. It is not safe for concurrent use;
// the MSG layer serializes access.
type Engine struct {
	cfg  Config
	plat *platform.Platform

	now         float64
	nextID      ActivityID
	acts        map[ActivityID]*activity
	order       []ActivityID // deterministic iteration order over live activities
	dirty       bool         // sharing must be recomputed
	needCompact bool         // done activities await removal from order

	// sys is the single long-lived max-min system of the simulation.
	// Constraints (link directions, host CPUs) are created lazily on
	// first use and kept forever; activity variables come and go as
	// activities start and complete, and each resharing re-solves only
	// the components those changes disturbed.
	sys    *flow.System
	cnsts  map[constraintKey]*flow.Constraint
	varAct map[*flow.Variable]*activity // live variable -> owning activity

	events int // sharing recomputations, for benchmarks
}

// NewEngine creates an engine over the given platform with the given
// model configuration.
func NewEngine(plat *platform.Platform, cfg Config) *Engine {
	return &Engine{
		cfg:    cfg,
		plat:   plat,
		acts:   make(map[ActivityID]*activity),
		sys:    flow.NewSystem(),
		cnsts:  make(map[constraintKey]*flow.Constraint),
		varAct: make(map[*flow.Variable]*activity),
	}
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Resharings returns how many times bandwidth sharing was recomputed —
// the cost driver of a simulation, reported by benchmarks.
func (e *Engine) Resharings() int { return e.events }

// SharingStats quantifies the solver work behind Resharings.
type SharingStats struct {
	// Resharings is the number of sharing recomputations (same as the
	// Resharings method).
	Resharings int
	// VariablesTouched is the cumulative number of flow variables
	// re-solved across all resharings. A rebuild-the-world solver would
	// touch every active flow at every resharing; the ratio
	// VariablesTouched / (Resharings × live flows) measures how much the
	// incremental solver saves.
	VariablesTouched int
	// LastTouched is the number of variables re-solved by the most
	// recent resharing — the size of the components the last event
	// disturbed.
	LastTouched int
}

// SharingStats returns the solver work statistics of the simulation so
// far.
func (e *Engine) SharingStats() SharingStats {
	return SharingStats{
		Resharings:       e.events,
		VariablesTouched: e.sys.TotalTouched(),
		LastTouched:      e.sys.LastTouched(),
	}
}

// Platform returns the simulated platform.
func (e *Engine) Platform() *platform.Platform { return e.plat }

func (e *Engine) add(a *activity) ActivityID {
	a.id = e.nextID
	e.nextID++
	e.acts[a.id] = a
	e.order = append(e.order, a.id)
	e.dirty = true
	return a.id
}

// AddComm schedules a communication of size bytes from src to dst starting
// at date start (>= Now). onDone, if non-nil, runs when it completes.
func (e *Engine) AddComm(src, dst string, size, start float64, onDone func(now float64)) (ActivityID, error) {
	if size <= 0 || math.IsNaN(size) || math.IsInf(size, 0) {
		return 0, fmt.Errorf("sim: invalid transfer size %v", size)
	}
	if start < e.now {
		return 0, fmt.Errorf("sim: start date %v is in the past (now %v)", start, e.now)
	}
	route, err := e.plat.RouteBetween(src, dst)
	if err != nil {
		return 0, err
	}
	a := &activity{
		kind:      commActivity,
		phase:     phaseScheduled,
		start:     start,
		latLeft:   e.cfg.LatencyFactor * route.Latency,
		remaining: size,
		links:     route.Links,
		weight:    1 / e.cfg.rttWeight(route.Latency),
		bound:     e.cfg.windowBound(route.Latency),
		onDone:    onDone,
	}
	return e.add(a), nil
}

// AddBackgroundFlow installs a persistent flow from src to dst that
// competes for bandwidth like a regular TCP stream but never terminates.
// This implements the paper's "model the background traffic of Grid'5000"
// future work: metrology-observed cross-traffic can be injected into each
// forecast simulation.
func (e *Engine) AddBackgroundFlow(src, dst string, start float64) (ActivityID, error) {
	id, err := e.AddComm(src, dst, math.MaxFloat64/4, start, nil)
	if err != nil {
		return 0, err
	}
	e.acts[id].persistent = true
	return id, nil
}

// RemoveBackgroundFlow withdraws a persistent flow.
func (e *Engine) RemoveBackgroundFlow(id ActivityID) error {
	a, ok := e.acts[id]
	if !ok || !a.persistent || a.phase == phaseDone {
		return fmt.Errorf("sim: no background flow %d", id)
	}
	a.phase = phaseDone
	a.finished = e.now
	e.deactivate(a)
	// Background flows never appear in Step's completed list, so request
	// compaction — otherwise repeated add/remove churn would grow the
	// scan list without bound. The compaction itself is deferred to the
	// end of the next Step: this method may be called from an onDone
	// callback while Step is ranging over e.order, and rewriting the
	// backing array mid-iteration would corrupt that loop.
	e.needCompact = true
	return nil
}

// AddExec schedules a computation of the given flops on host, starting at
// date start. Concurrent computations on one host share its speed equally.
func (e *Engine) AddExec(host string, flops, start float64, onDone func(now float64)) (ActivityID, error) {
	if flops <= 0 || math.IsNaN(flops) || math.IsInf(flops, 0) {
		return 0, fmt.Errorf("sim: invalid flops %v", flops)
	}
	if start < e.now {
		return 0, fmt.Errorf("sim: start date %v is in the past (now %v)", start, e.now)
	}
	h := e.plat.Host(host)
	if h == nil {
		return 0, fmt.Errorf("sim: unknown host %q", host)
	}
	a := &activity{
		kind:      execActivity,
		phase:     phaseScheduled,
		start:     start,
		remaining: flops,
		host:      h,
		onDone:    onDone,
	}
	return e.add(a), nil
}

// AddTimer schedules a pure time event firing duration seconds after
// start. Timers consume no resources; the MSG layer uses them for Sleep.
func (e *Engine) AddTimer(duration, start float64, onDone func(now float64)) (ActivityID, error) {
	if duration < 0 || math.IsNaN(duration) {
		return 0, fmt.Errorf("sim: invalid timer duration %v", duration)
	}
	if start < e.now {
		return 0, fmt.Errorf("sim: start date %v is in the past (now %v)", start, e.now)
	}
	a := &activity{
		kind:      timerActivity,
		phase:     phaseScheduled,
		start:     start,
		remaining: duration,
		rate:      1,
		onDone:    onDone,
	}
	return e.add(a), nil
}

// Done reports whether the activity has completed, and at what date.
func (e *Engine) Done(id ActivityID) (bool, float64) {
	a, ok := e.acts[id]
	if !ok {
		return false, 0
	}
	return a.phase == phaseDone, a.finished
}

// constraintKey identifies one shared resource in the LMM system.
type constraintKey struct {
	link *platform.Link
	dir  platform.Direction
	host *platform.Host
}

// constraintFor returns the persistent flow constraint for a shared
// resource, creating it on first use.
func (e *Engine) constraintFor(k constraintKey, capacity float64) *flow.Constraint {
	if c, ok := e.cnsts[k]; ok {
		return c
	}
	id := "cpu:"
	if k.host == nil {
		id = k.link.ID + ":" + k.dir.String()
	} else {
		id += k.host.ID
	}
	c := e.sys.NewConstraint(id, capacity)
	e.cnsts[k] = c
	return c
}

// activate inserts the activity's flow variable into the max-min system
// (timers consume no resources and get none).
func (e *Engine) activate(a *activity) {
	switch a.kind {
	case commActivity:
		bound := a.bound
		// Fatpipe links bound the flow without sharing.
		for _, u := range a.links {
			if u.Link.Policy == platform.Fatpipe {
				cap := u.Link.Bandwidth * e.cfg.BandwidthFactor
				if bound == 0 || cap < bound {
					bound = cap
				}
			}
		}
		v := e.sys.NewVariable(fmt.Sprintf("comm%d", a.id), a.weight, bound)
		a.fv = v
		e.varAct[v] = a
		for _, u := range a.links {
			switch u.Link.Policy {
			case platform.Shared:
				c := e.constraintFor(constraintKey{link: u.Link, dir: platform.None},
					u.Link.Bandwidth*e.cfg.BandwidthFactor)
				if err := e.sys.Attach(v, c); err != nil {
					// A route may legitimately traverse the same
					// shared link twice only in pathological
					// platforms; treat as single attachment.
					continue
				}
			case platform.FullDuplex:
				dir := u.Direction
				if dir == platform.None {
					dir = platform.Up
				}
				c := e.constraintFor(constraintKey{link: u.Link, dir: dir},
					u.Link.Bandwidth*e.cfg.BandwidthFactor)
				if err := e.sys.Attach(v, c); err != nil {
					continue
				}
			case platform.Fatpipe:
				// handled via bound above
			}
		}
	case execActivity:
		v := e.sys.NewVariable(fmt.Sprintf("exec%d", a.id), 1, 0)
		a.fv = v
		e.varAct[v] = a
		c := e.constraintFor(constraintKey{host: a.host}, a.host.Speed)
		e.sys.MustAttach(v, c)
	}
	e.dirty = true
}

// deactivate withdraws the activity's flow variable, releasing its
// bandwidth to the components it crossed.
func (e *Engine) deactivate(a *activity) {
	if a.fv != nil {
		delete(e.varAct, a.fv)
		e.sys.RemoveVariable(a.fv)
		a.fv = nil
	}
	e.dirty = true
}

// reshare re-solves bandwidth sharing after membership changes. Only the
// flow components disturbed since the previous resharing are recomputed,
// and only their rates are copied back; every other activity keeps its
// allocation untouched.
func (e *Engine) reshare() error {
	e.events++
	if err := e.sys.Solve(); err != nil {
		return fmt.Errorf("sim: sharing: %w", err)
	}
	for _, v := range e.sys.Touched() {
		if a, ok := e.varAct[v]; ok {
			a.rate = v.Rate()
		}
	}
	e.dirty = false
	return nil
}

// completionEps is the byte/flop tolerance below which an activity is
// considered finished, guarding against floating-point residue.
const completionEps = 1e-6

// nextEventTime returns the earliest upcoming event date, or +Inf when no
// event is pending.
func (e *Engine) nextEventTime() float64 {
	t := math.Inf(1)
	for _, id := range e.order {
		a := e.acts[id]
		switch a.phase {
		case phaseScheduled:
			if a.start < t {
				t = a.start
			}
		case phaseLatency:
			if et := e.now + a.latLeft; et < t {
				t = et
			}
		case phaseActive:
			if a.persistent {
				continue
			}
			if a.rate > 0 {
				if et := e.now + a.remaining/a.rate; et < t {
					t = et
				}
			}
		}
	}
	return t
}

// Step advances simulated time to the next event and processes it.
// It returns the activities completed at the new time, and ok=false when
// no event remains (simulation finished or stalled).
func (e *Engine) Step() (completed []ActivityID, ok bool, err error) {
	if e.dirty {
		if err := e.reshare(); err != nil {
			return nil, false, err
		}
	}
	t := e.nextEventTime()
	if math.IsInf(t, 1) {
		// Detect stalls: an active non-persistent activity with zero rate
		// can never finish (e.g. a zero-capacity link).
		for _, id := range e.order {
			a := e.acts[id]
			if a.phase == phaseActive && !a.persistent && a.rate <= 0 {
				return nil, false, fmt.Errorf("sim: activity %d stalled with zero rate", a.id)
			}
		}
		return nil, false, nil
	}
	dt := t - e.now
	if dt < 0 {
		return nil, false, fmt.Errorf("sim: time went backwards (%v -> %v)", e.now, t)
	}

	// Advance all in-flight activities by dt.
	for _, id := range e.order {
		a := e.acts[id]
		switch a.phase {
		case phaseLatency:
			a.latLeft -= dt
		case phaseActive:
			if !a.persistent {
				a.remaining -= a.rate * dt
			}
		}
	}
	e.now = t

	// Process state changes due now.
	for _, id := range e.order {
		a := e.acts[id]
		switch a.phase {
		case phaseScheduled:
			if a.start <= e.now+1e-15 {
				if a.kind == commActivity && a.latLeft > 0 {
					a.phase = phaseLatency
				} else {
					a.phase = phaseActive
					e.activate(a)
				}
			}
		case phaseLatency:
			// The residue comparison is relative to the current date:
			// once latLeft falls below the floating-point resolution of
			// now, time can no longer advance by it (now + latLeft ==
			// now) and the phase must be considered over.
			if a.latLeft <= 1e-15+e.now*1e-12 {
				a.latLeft = 0
				a.phase = phaseActive
				e.activate(a)
			}
		case phaseActive:
			// Completion when the residue is below the absolute epsilon
			// or too small to advance simulated time (the remaining
			// duration is under the floating-point resolution of now) —
			// the second clause prevents a zero-dt stall near the end of
			// long simulations.
			if !a.persistent && (a.remaining <= completionEps || a.remaining <= a.rate*e.now*1e-12) {
				a.remaining = 0
				a.phase = phaseDone
				a.finished = e.now
				e.deactivate(a)
				completed = append(completed, a.id)
				if a.onDone != nil {
					a.onDone(e.now)
				}
			}
		}
	}
	if len(completed) > 0 || e.needCompact {
		e.compactOrder()
		e.needCompact = false
	}
	sort.Slice(completed, func(i, j int) bool { return completed[i] < completed[j] })
	return completed, true, nil
}

// compactOrder drops completed activities from the iteration order so the
// per-event scans stay proportional to the live activity count. The
// activities themselves remain in the map for Done queries.
func (e *Engine) compactOrder() {
	live := e.order[:0]
	for _, id := range e.order {
		if e.acts[id].phase != phaseDone {
			live = append(live, id)
		}
	}
	e.order = live
}

// RunToCompletion steps the engine until no event remains. The returned
// count is the number of activities that completed.
//
// A defensive event budget turns scheduling bugs (stalled zero-dt loops)
// into diagnosable errors instead of hangs: activities generate a bounded
// number of events each (arrival, latency end, completion), so exceeding
// a generous multiple of the activity count is a bug by construction.
func (e *Engine) RunToCompletion() (int, error) {
	total := 0
	steps := 0
	for {
		done, ok, err := e.Step()
		if err != nil {
			return total, err
		}
		total += len(done)
		if !ok {
			return total, nil
		}
		steps++
		if steps > 100*(len(e.acts)+10) {
			return total, fmt.Errorf("sim: event budget exhausted at t=%v: %s", e.now, e.dumpLive())
		}
	}
}

// dumpLive renders non-done activities for stall diagnostics.
func (e *Engine) dumpLive() string {
	out := ""
	for _, id := range e.order {
		a := e.acts[id]
		if a.phase == phaseDone {
			continue
		}
		out += fmt.Sprintf("\n  act %d kind=%d phase=%d start=%v latLeft=%v remaining=%v rate=%v",
			a.id, a.kind, a.phase, a.start, a.latLeft, a.remaining, a.rate)
	}
	return out
}
