package sim

import (
	"fmt"
	"math"

	"pilgrim/internal/flow"
	"pilgrim/internal/platform"
)

// ActivityID identifies an activity within an Engine.
type ActivityID int

// activityKind discriminates engine activities.
type activityKind int

const (
	commActivity activityKind = iota
	execActivity
	timerActivity
)

// activityPhase tracks the lifecycle of an activity.
type activityPhase int

const (
	phaseScheduled activityPhase = iota // waiting for its start date
	phaseLatency                        // communication in latency phase
	phaseActive                         // consuming bandwidth / flops
	phaseDone
)

// activity is one simulated resource consumer: a communication or a
// computation. Activities live in the Engine's slot arena; completed
// activities release their slot for reuse, so the arena size tracks the
// peak live count, not the historical total.
type activity struct {
	id   ActivityID
	slot int32 // arena index, stable for the activity's lifetime
	kind activityKind

	phase      activityPhase
	persistent bool // background flow: shares bandwidth, never completes

	start   float64 // requested start date
	latLeft float64 // remaining latency phase (comm)

	// Lazy progress accounting: remaining is authoritative as of
	// lastUpdate only. While the rate is constant the activity's progress
	// is implied by its projected completion date (its event-heap key);
	// remaining is settled — advanced to the current date under the
	// outgoing rate — exactly when the rate changes or the activity
	// fires. A resharing therefore costs O(touched · log n), not O(n).
	remaining  float64 // bytes (comm) or flops (exec) left at lastUpdate
	lastUpdate float64 // date remaining was last settled
	rate       float64 // current allocation

	// comm fields. links is the compiled index route (shared with the
	// platform snapshot; never mutated).
	links  []platform.LinkRef
	weight float64
	bound  float64

	// exec fields
	host int32 // dense host index, -1 when not an exec

	// fv is the live flow-system variable while the activity is in
	// phaseActive (nil for timers). It is inserted on activation and
	// removed on completion, so the max-min system mutates incrementally
	// instead of being rebuilt per event. The variable's Data backref
	// points here.
	fv *flow.Variable

	onDone func(now float64)
}

// dueEvent is one popped heap entry awaiting processing. The id guards
// against a slot being retired and reused by an onDone callback while the
// rest of the batch is still being processed.
type dueEvent struct {
	slot int32
	id   ActivityID
}

// Engine is the discrete-event kernel. It is not safe for concurrent use;
// the MSG layer serializes access.
//
// The kernel is built around an indexed min-heap of per-activity
// next-event dates: a scheduled activity is keyed by its start date, a
// communication in latency phase by its latency-end date, and an active
// activity by its projected completion date under its current rate. A
// Step pops the due events in O(log n) each, and a resharing re-keys only
// the activities whose rate the incremental solver actually changed
// (flow.System.Touched) — so the per-event cost is proportional to the
// disturbed component, never to the total live-activity count.
//
// The engine runs entirely against one compiled platform Snapshot: routes
// are index slices, link state is read from the snapshot's epoch arrays
// (lock-free), and shared-resource constraints are addressed by dense
// link/host index — flat arrays where the previous kernel hashed a
// (pointer, direction) map key per traversal.
type Engine struct {
	cfg  Config
	snap *platform.Snapshot

	now    float64
	nextID ActivityID

	// Dense activity arena. arena is indexed by slot; completed slots go
	// through pendingFree (callbacks may retire activities while Step is
	// iterating a batch) into freeSlots and are reused by the next add,
	// struct and all.
	arena       []*activity
	freeSlots   []int32
	pendingFree []int32
	live        int

	// Per-ActivityID bookkeeping (ids are never reused): the owning slot
	// while live (-1 once retired), and the completion date (NaN while
	// live) answering Done queries after the slot is recycled.
	slotOf []int32
	doneAt []float64

	// Indexed min-heap of next-event dates, keyed (date, id) so ties pop
	// in activity-id order — the deterministic processing order the
	// scan-based kernel had. heapPos maps slot -> heap index (-1 absent).
	heapKey  []float64
	heapSlot []int32
	heapPos  []int32

	due []dueEvent // scratch batch of popped events, reused across Steps

	dirty bool // sharing must be recomputed

	// sys is the single long-lived max-min system of the simulation.
	// Constraints (link directions, host CPUs) are created lazily on
	// first use and kept forever; activity variables come and go as
	// activities start and complete, and each resharing re-solves only
	// the components those changes disturbed.
	//
	// linkCnst is indexed by LinkRef (dense link index packed with the
	// traversal direction) and hostCnst by dense host index, replacing the
	// previous map[constraintKey] hashing on the activation hot path.
	sys      *flow.System
	linkCnst []*flow.Constraint
	hostCnst []*flow.Constraint

	events int // sharing recomputations, for benchmarks

	pooled bool // eligible for the engine pool (created by AcquireEngine)
	inPool bool // currently sitting in the pool's free list
}

// NewEngine creates an engine over the given platform's current base
// snapshot with the given model configuration.
func NewEngine(plat *platform.Platform, cfg Config) *Engine {
	return NewEngineSnapshot(plat.Snapshot(), cfg)
}

// NewEngineSnapshot creates an engine over one compiled platform epoch.
// The engine reads only the snapshot, so concurrent engines on different
// epochs of the same platform never interfere.
func NewEngineSnapshot(snap *platform.Snapshot, cfg Config) *Engine {
	return &Engine{
		cfg:      cfg,
		snap:     snap,
		sys:      flow.NewSystem(),
		linkCnst: make([]*flow.Constraint, snap.NumLinks()<<2),
		hostCnst: make([]*flow.Constraint, snap.NumHosts()),
	}
}

// Reset returns the engine to its initial state — simulated time zero, no
// activities, no constraints, activity ids restarting from zero — while
// keeping every internal buffer: the arena structs, the event heap's
// storage, the flow system's recycled variables and constraints, and the
// constraint map's buckets. A reset engine is observably identical to a
// fresh NewEngine (same ids, same solver serials, bit-identical results)
// but re-running a same-shaped workload allocates almost nothing. Callers
// must drop any ActivityID obtained before the reset.
func (e *Engine) Reset() {
	e.now = 0
	e.nextID = 0
	e.live = 0
	// Rebuild the free list in descending slot order so reuse hands out
	// slots 0, 1, 2, ... exactly like a fresh engine's appends. Stale
	// structs from the previous run (live ones, if it was abandoned
	// mid-flight) are neutralized: the arena-wide cold scans (stall
	// detection, dumpLive) skip phaseDone entries, and a stale id must
	// never index the truncated slotOf slice.
	e.freeSlots = e.freeSlots[:0]
	for i := len(e.arena) - 1; i >= 0; i-- {
		e.freeSlots = append(e.freeSlots, int32(i))
		e.heapPos[i] = -1
		a := e.arena[i]
		a.phase = phaseDone
		a.fv = nil
		a.onDone = nil
		a.links = nil
		a.host = -1
	}
	e.pendingFree = e.pendingFree[:0]
	e.slotOf = e.slotOf[:0]
	e.doneAt = e.doneAt[:0]
	e.heapKey = e.heapKey[:0]
	e.heapSlot = e.heapSlot[:0]
	e.due = e.due[:0]
	e.dirty = false
	e.events = 0
	e.sys.Reset()
	clear(e.linkCnst)
	clear(e.hostCnst)
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Live returns the number of live (not yet completed) activities.
func (e *Engine) Live() int { return e.live }

// Resharings returns how many times bandwidth sharing was recomputed —
// the cost driver of a simulation, reported by benchmarks.
func (e *Engine) Resharings() int { return e.events }

// SharingStats quantifies the solver work behind Resharings.
type SharingStats struct {
	// Resharings is the number of sharing recomputations (same as the
	// Resharings method).
	Resharings int
	// VariablesTouched is the cumulative number of flow variables
	// re-solved across all resharings. A rebuild-the-world solver would
	// touch every active flow at every resharing; the ratio
	// VariablesTouched / (Resharings × live flows) measures how much the
	// incremental solver saves.
	VariablesTouched int
	// LastTouched is the number of variables re-solved by the most
	// recent resharing — the size of the components the last event
	// disturbed.
	LastTouched int
}

// SharingStats returns the solver work statistics of the simulation so
// far.
func (e *Engine) SharingStats() SharingStats {
	return SharingStats{
		Resharings:       e.events,
		VariablesTouched: e.sys.TotalTouched(),
		LastTouched:      e.sys.LastTouched(),
	}
}

// Platform returns the builder platform behind the engine's snapshot.
func (e *Engine) Platform() *platform.Platform { return e.snap.Platform() }

// Snapshot returns the compiled platform epoch the engine simulates.
func (e *Engine) Snapshot() *platform.Snapshot { return e.snap }

// heap primitives ----------------------------------------------------------

func (e *Engine) heapLess(i, j int) bool {
	if e.heapKey[i] != e.heapKey[j] {
		return e.heapKey[i] < e.heapKey[j]
	}
	return e.arena[e.heapSlot[i]].id < e.arena[e.heapSlot[j]].id
}

func (e *Engine) heapSwap(i, j int) {
	e.heapKey[i], e.heapKey[j] = e.heapKey[j], e.heapKey[i]
	e.heapSlot[i], e.heapSlot[j] = e.heapSlot[j], e.heapSlot[i]
	e.heapPos[e.heapSlot[i]] = int32(i)
	e.heapPos[e.heapSlot[j]] = int32(j)
}

func (e *Engine) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !e.heapLess(i, p) {
			return
		}
		e.heapSwap(i, p)
		i = p
	}
}

func (e *Engine) siftDown(i int) {
	n := len(e.heapKey)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && e.heapLess(r, l) {
			m = r
		}
		if !e.heapLess(m, i) {
			return
		}
		e.heapSwap(i, m)
		i = m
	}
}

func (e *Engine) heapPush(slot int32, key float64) {
	i := len(e.heapKey)
	e.heapKey = append(e.heapKey, key)
	e.heapSlot = append(e.heapSlot, slot)
	e.heapPos[slot] = int32(i)
	e.siftUp(i)
}

// heapFix updates slot's key in place, inserting the slot if absent.
func (e *Engine) heapFix(slot int32, key float64) {
	i := int(e.heapPos[slot])
	if i < 0 {
		e.heapPush(slot, key)
		return
	}
	old := e.heapKey[i]
	if key == old {
		return
	}
	e.heapKey[i] = key
	if key < old {
		e.siftUp(i)
	} else {
		e.siftDown(i)
	}
}

func (e *Engine) heapRemove(slot int32) {
	i := int(e.heapPos[slot])
	if i < 0 {
		return
	}
	n := len(e.heapKey) - 1
	if i != n {
		e.heapSwap(i, n)
	}
	e.heapPos[slot] = -1
	e.heapKey = e.heapKey[:n]
	e.heapSlot = e.heapSlot[:n]
	if i != n {
		e.siftDown(i)
		e.siftUp(i)
	}
}

// arena primitives ---------------------------------------------------------

// add installs the template in a (possibly recycled) arena slot, registers
// its start event, and returns the new activity id.
func (e *Engine) add(tmpl activity) ActivityID {
	id := e.nextID
	e.nextID++
	var slot int32
	if n := len(e.freeSlots); n > 0 {
		slot = e.freeSlots[n-1]
		e.freeSlots = e.freeSlots[:n-1]
		*e.arena[slot] = tmpl
	} else {
		slot = int32(len(e.arena))
		a := new(activity)
		*a = tmpl
		e.arena = append(e.arena, a)
		e.heapPos = append(e.heapPos, -1)
	}
	a := e.arena[slot]
	a.id = id
	a.slot = slot
	e.slotOf = append(e.slotOf, slot)
	e.doneAt = append(e.doneAt, math.NaN())
	e.live++
	e.heapPush(slot, a.start)
	e.dirty = true
	return id
}

// lookup returns the live activity with the given id, or nil.
func (e *Engine) lookup(id ActivityID) *activity {
	if id < 0 || int(id) >= len(e.slotOf) {
		return nil
	}
	slot := e.slotOf[id]
	if slot < 0 {
		return nil
	}
	return e.arena[slot]
}

// retire releases a finished activity's slot for reuse. The release is
// deferred to the next Step boundary because retire runs inside Step's
// batch loop (and from onDone callbacks), where an immediate reuse could
// alias an entry of the batch being processed.
func (e *Engine) retire(a *activity) {
	e.slotOf[a.id] = -1
	e.live--
	a.onDone = nil
	a.links = nil
	a.host = -1
	e.pendingFree = append(e.pendingFree, a.slot)
}

func (e *Engine) drainFree() {
	if len(e.pendingFree) == 0 {
		return
	}
	e.freeSlots = append(e.freeSlots, e.pendingFree...)
	e.pendingFree = e.pendingFree[:0]
}

// public scheduling API ----------------------------------------------------

// AddComm schedules a communication of size bytes from src to dst starting
// at date start (>= Now). onDone, if non-nil, runs when it completes.
func (e *Engine) AddComm(src, dst string, size, start float64, onDone func(now float64)) (ActivityID, error) {
	if size <= 0 || math.IsNaN(size) || math.IsInf(size, 0) {
		return 0, fmt.Errorf("sim: invalid transfer size %v", size)
	}
	if start < e.now {
		return 0, fmt.Errorf("sim: start date %v is in the past (now %v)", start, e.now)
	}
	route, err := e.snap.Route(src, dst)
	if err != nil {
		return 0, err
	}
	// Failed resources (scenario overlays set their bandwidth/speed to an
	// exact 0) reject the communication up front with a precise error
	// instead of stalling the whole simulation at run time.
	if hi, ok := e.snap.HostIndex(src); ok && e.snap.HostDown(hi) {
		return 0, fmt.Errorf("sim: host %q is down", src)
	}
	if hi, ok := e.snap.HostIndex(dst); ok && e.snap.HostDown(hi) {
		return 0, fmt.Errorf("sim: host %q is down", dst)
	}
	for _, ref := range route.Refs {
		if li := ref.LinkIndex(); e.snap.LinkDown(li) {
			return 0, fmt.Errorf("sim: link %q on route %s->%s is down",
				e.snap.LinkName(li), src, dst)
		}
	}
	lat := e.snap.RouteLatency(route)
	return e.add(activity{
		kind:      commActivity,
		phase:     phaseScheduled,
		start:     start,
		latLeft:   e.cfg.LatencyFactor * lat,
		remaining: size,
		links:     route.Refs,
		host:      -1,
		weight:    1 / e.cfg.rttWeight(lat),
		bound:     e.cfg.windowBound(lat),
		onDone:    onDone,
	}), nil
}

// AddBackgroundFlow installs a persistent flow from src to dst that
// competes for bandwidth like a regular TCP stream but never terminates.
// This implements the paper's "model the background traffic of Grid'5000"
// future work: metrology-observed cross-traffic can be injected into each
// forecast simulation.
func (e *Engine) AddBackgroundFlow(src, dst string, start float64) (ActivityID, error) {
	id, err := e.AddComm(src, dst, math.MaxFloat64/4, start, nil)
	if err != nil {
		return 0, err
	}
	e.lookup(id).persistent = true
	return id, nil
}

// RemoveBackgroundFlow withdraws a persistent flow.
func (e *Engine) RemoveBackgroundFlow(id ActivityID) error {
	a := e.lookup(id)
	if a == nil || !a.persistent || a.phase == phaseDone {
		return fmt.Errorf("sim: no background flow %d", id)
	}
	a.phase = phaseDone
	e.doneAt[id] = e.now
	e.deactivate(a) // also drops the start event when removed before activation
	e.retire(a)
	return nil
}

// AddExec schedules a computation of the given flops on host, starting at
// date start. Concurrent computations on one host share its speed equally.
func (e *Engine) AddExec(host string, flops, start float64, onDone func(now float64)) (ActivityID, error) {
	if flops <= 0 || math.IsNaN(flops) || math.IsInf(flops, 0) {
		return 0, fmt.Errorf("sim: invalid flops %v", flops)
	}
	if start < e.now {
		return 0, fmt.Errorf("sim: start date %v is in the past (now %v)", start, e.now)
	}
	hi, ok := e.snap.HostIndex(host)
	if !ok {
		return 0, fmt.Errorf("sim: unknown host %q", host)
	}
	if e.snap.HostDown(hi) {
		return 0, fmt.Errorf("sim: host %q is down", host)
	}
	return e.add(activity{
		kind:      execActivity,
		phase:     phaseScheduled,
		start:     start,
		remaining: flops,
		host:      hi,
		onDone:    onDone,
	}), nil
}

// AddTimer schedules a pure time event firing duration seconds after
// start. Timers consume no resources; the MSG layer uses them for Sleep.
func (e *Engine) AddTimer(duration, start float64, onDone func(now float64)) (ActivityID, error) {
	if duration < 0 || math.IsNaN(duration) {
		return 0, fmt.Errorf("sim: invalid timer duration %v", duration)
	}
	if start < e.now {
		return 0, fmt.Errorf("sim: start date %v is in the past (now %v)", start, e.now)
	}
	return e.add(activity{
		kind:      timerActivity,
		phase:     phaseScheduled,
		start:     start,
		remaining: duration,
		rate:      1,
		host:      -1,
		onDone:    onDone,
	}), nil
}

// Done reports whether the activity has completed, and at what date.
func (e *Engine) Done(id ActivityID) (bool, float64) {
	if id < 0 || int(id) >= len(e.slotOf) {
		return false, 0
	}
	if e.slotOf[id] >= 0 {
		return false, 0
	}
	if at := e.doneAt[id]; !math.IsNaN(at) {
		return true, at
	}
	return false, 0
}

// linkConstraint returns the persistent flow constraint for one link
// direction, creating it on first use. ref is the dense address: Shared
// links use the canonical None direction, FullDuplex links Up or Down.
// Constraints are identified by index alone (lazy flow ids) — pooled
// engines recreate every constraint per run, and formatting
// "<link>:<dir>" names for each was measurable allocator churn.
func (e *Engine) linkConstraint(ref platform.LinkRef, capacity float64) *flow.Constraint {
	if c := e.linkCnst[ref]; c != nil {
		return c
	}
	c := e.sys.NewConstraint("", capacity)
	e.linkCnst[ref] = c
	return c
}

// hostConstraint returns the persistent CPU constraint of one host,
// creating it on first use.
func (e *Engine) hostConstraint(hi int32) *flow.Constraint {
	if c := e.hostCnst[hi]; c != nil {
		return c
	}
	c := e.sys.NewConstraint("", e.snap.HostSpeed(hi))
	e.hostCnst[hi] = c
	return c
}

// activate moves the activity to its consuming phase: comms and execs get
// a flow variable in the max-min system (their event key is assigned by
// the resharing at the next Step, once a rate is known); timers get their
// fixed expiry key directly.
func (e *Engine) activate(a *activity) {
	a.phase = phaseActive
	a.lastUpdate = e.now
	switch a.kind {
	case commActivity:
		bound := a.bound
		// Fatpipe links bound the flow without sharing.
		for _, u := range a.links {
			li := u.LinkIndex()
			if e.snap.LinkPolicy(li) == platform.Fatpipe {
				cap := e.snap.LinkBandwidth(li) * e.cfg.BandwidthFactor
				if bound == 0 || cap < bound {
					bound = cap
				}
			}
		}
		v := e.sys.NewVariable("", a.weight, bound)
		v.SetData(a)
		a.fv = v
		a.rate = 0
		for _, u := range a.links {
			li := u.LinkIndex()
			switch e.snap.LinkPolicy(li) {
			case platform.Shared:
				c := e.linkConstraint(platform.MakeLinkRef(li, platform.None),
					e.snap.LinkBandwidth(li)*e.cfg.BandwidthFactor)
				if err := e.sys.Attach(v, c); err != nil {
					// A route may legitimately traverse the same
					// shared link twice only in pathological
					// platforms; treat as single attachment.
					continue
				}
			case platform.FullDuplex:
				dir := u.Direction()
				if dir == platform.None {
					dir = platform.Up
				}
				c := e.linkConstraint(platform.MakeLinkRef(li, dir),
					e.snap.LinkBandwidth(li)*e.cfg.BandwidthFactor)
				if err := e.sys.Attach(v, c); err != nil {
					continue
				}
			case platform.Fatpipe:
				// handled via bound above
			}
		}
	case execActivity:
		v := e.sys.NewVariable("", 1, 0)
		v.SetData(a)
		a.fv = v
		a.rate = 0
		e.sys.MustAttach(v, e.hostConstraint(a.host))
	case timerActivity:
		e.heapPush(a.slot, e.now+a.remaining)
	}
	e.dirty = true
}

// deactivate withdraws the activity's flow variable, releasing its
// bandwidth to the components it crossed, and drops any pending heap
// entry.
func (e *Engine) deactivate(a *activity) {
	if a.fv != nil {
		a.fv.SetData(nil)
		e.sys.RemoveVariable(a.fv)
		a.fv = nil
	}
	e.heapRemove(a.slot)
	e.dirty = true
}

// reshare re-solves bandwidth sharing after membership changes. Only the
// flow components disturbed since the previous resharing are recomputed;
// for each variable whose rate actually changed, the owning activity's
// remaining work is settled under the outgoing rate and its completion
// projection is re-keyed in the event heap — everything else keeps both
// its allocation and its heap key untouched.
func (e *Engine) reshare() error {
	e.events++
	if err := e.sys.Solve(); err != nil {
		return fmt.Errorf("sim: sharing: %w", err)
	}
	for _, v := range e.sys.Touched() {
		a, _ := v.Data().(*activity)
		if a == nil {
			continue
		}
		r := v.Rate()
		if r == a.rate {
			continue // projection unchanged; keep the existing key
		}
		if a.phase != phaseActive || a.persistent {
			a.rate = r
			continue
		}
		// Lazy progress accounting: settle remaining under the rate that
		// held since lastUpdate, then project the completion date under
		// the new rate.
		if e.now > a.lastUpdate {
			a.remaining -= a.rate * (e.now - a.lastUpdate)
			if a.remaining < 0 {
				a.remaining = 0
			}
		}
		a.lastUpdate = e.now
		a.rate = r
		key := math.Inf(1)
		if r > 0 {
			key = e.now + a.remaining/r
		}
		e.heapFix(a.slot, key)
	}
	e.dirty = false
	return nil
}

// Step advances simulated time to the next event and processes it.
// It returns the activities completed at the new time, and ok=false when
// no event remains (simulation finished or stalled).
func (e *Engine) Step() (completed []ActivityID, ok bool, err error) {
	e.drainFree()
	if e.dirty {
		if err := e.reshare(); err != nil {
			return nil, false, err
		}
	}
	if len(e.heapKey) == 0 || math.IsInf(e.heapKey[0], 1) {
		// No reachable event. Detect stalls: an active non-persistent
		// activity with zero rate can never finish (e.g. a zero-capacity
		// link).
		for _, a := range e.arena {
			if a.phase == phaseActive && !a.persistent && a.rate <= 0 &&
				e.slotOf[a.id] == a.slot {
				return nil, false, fmt.Errorf("sim: activity %d stalled with zero rate", a.id)
			}
		}
		return nil, false, nil
	}
	t := e.heapKey[0]
	if t < e.now {
		return nil, false, fmt.Errorf("sim: time went backwards (%v -> %v)", e.now, t)
	}
	e.now = t

	// Pop the batch due now. Entries tie-break on (date, id), so the
	// batch — and therefore the completed list — comes out in activity-id
	// order, the processing order of the scan-based kernel.
	e.due = e.due[:0]
	for len(e.heapKey) > 0 && e.heapKey[0] <= t {
		slot := e.heapSlot[0]
		e.due = append(e.due, dueEvent{slot: slot, id: e.arena[slot].id})
		e.heapRemove(slot)
	}

	for _, ev := range e.due {
		a := e.arena[ev.slot]
		if a.id != ev.id || a.phase == phaseDone {
			// Retired (and possibly recycled) by a callback earlier in
			// this batch.
			continue
		}
		switch a.phase {
		case phaseScheduled:
			if a.kind == commActivity && a.latLeft > 0 {
				a.phase = phaseLatency
				e.heapPush(ev.slot, e.now+a.latLeft)
			} else {
				e.activate(a)
			}
		case phaseLatency:
			a.latLeft = 0
			e.activate(a)
		case phaseActive:
			if a.persistent {
				continue
			}
			a.remaining = 0
			a.phase = phaseDone
			e.doneAt[a.id] = e.now
			e.deactivate(a)
			completed = append(completed, a.id)
			if a.onDone != nil {
				a.onDone(e.now)
			}
			e.retire(a)
		}
	}
	return completed, true, nil
}

// RunToCompletion steps the engine until no event remains. The returned
// count is the number of activities that completed.
//
// A defensive event budget turns scheduling bugs (stalled zero-dt loops)
// into diagnosable errors instead of hangs: each activity generates a
// bounded number of events (arrival, latency end, completion), so a run
// exceeding a generous multiple of the activities that can produce events
// in THIS run — those live at entry plus those spawned since — is a bug
// by construction. Scaling with that figure rather than the engine's
// historical total keeps the budget meaningful for long-lived engines
// (background-flow churn in testbed sessions no longer inflates it), and
// still grows with mid-run spawning so workflow chains never trip it
// spuriously.
func (e *Engine) RunToCompletion() (int, error) {
	total := 0
	steps := 0
	base := e.live
	spawned0 := int(e.nextID)
	for {
		done, ok, err := e.Step()
		if err != nil {
			return total, err
		}
		total += len(done)
		if !ok {
			return total, nil
		}
		steps++
		if steps > 100*(base+int(e.nextID)-spawned0+10) {
			return total, fmt.Errorf("sim: event budget exhausted at t=%v: %s", e.now, e.dumpLive())
		}
	}
}

// dumpLive renders non-done activities for stall diagnostics.
func (e *Engine) dumpLive() string {
	out := ""
	for _, a := range e.arena {
		if a.phase == phaseDone || e.slotOf[a.id] != a.slot {
			continue
		}
		out += fmt.Sprintf("\n  act %d kind=%d phase=%d start=%v latLeft=%v remaining=%v rate=%v",
			a.id, a.kind, a.phase, a.start, a.latLeft, a.remaining, a.rate)
	}
	return out
}
