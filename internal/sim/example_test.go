package sim_test

import (
	"fmt"

	"pilgrim/internal/platform"
	"pilgrim/internal/sim"
)

// Predict simulates a batch of concurrent transfers on a platform — the
// operation behind every PNFS request.
func ExamplePredict() {
	p := platform.New("demo", platform.RoutingFull)
	as := p.Root()
	as.AddHost("a", 1e9)
	as.AddHost("b", 1e9)
	l, _ := as.AddLink("wire", 100e6, 0, platform.Shared)
	as.AddRoute("a", "b", []platform.LinkUse{{Link: l, Direction: platform.None}}, true)

	cfg := sim.DefaultConfig()
	cfg.TCPGamma = 0 // disable the window bound for a clean closed form
	results, err := sim.Predict(p, cfg, []sim.Transfer{
		{Src: "a", Dst: "b", Size: 46e6},
		{Src: "a", Dst: "b", Size: 46e6},
	})
	if err != nil {
		fmt.Println("predict:", err)
		return
	}
	// Two equal flows share 92 MB/s usable: 1 s each.
	for i, r := range results {
		fmt.Printf("transfer %d: %.2f s\n", i, r.Duration)
	}
	// Output:
	// transfer 0: 1.00 s
	// transfer 1: 1.00 s
}

// The MSG-style process API simulates distributed applications: here a
// one-message rendezvous between two hosts.
func ExampleKernel() {
	p := platform.New("demo", platform.RoutingFull)
	as := p.Root()
	as.AddHost("client", 1e9)
	as.AddHost("server", 1e9)
	l, _ := as.AddLink("wire", 100e6, 0, platform.Shared)
	as.AddRoute("client", "server", []platform.LinkUse{{Link: l, Direction: platform.None}}, true)

	cfg := sim.DefaultConfig()
	cfg.TCPGamma = 0
	k := sim.NewKernel(p, cfg)
	k.Spawn("sender", "client", func(proc *sim.Process) error {
		return proc.Send("inbox", "payload", 92e6)
	})
	k.Spawn("receiver", "server", func(proc *sim.Process) error {
		m, err := proc.Recv("inbox")
		if err != nil {
			return err
		}
		fmt.Printf("got %q at t=%.2f s\n", m.Payload, proc.Now())
		return nil
	})
	if err := k.Run(); err != nil {
		fmt.Println("run:", err)
	}
	// Output:
	// got "payload" at t=1.00 s
}
