package sim

import (
	"pilgrim/internal/platform"
)

// Differential plan evaluation: one base run + N cheap deltas. Scenario
// sweeps ask the same queries against many epochs that differ from a
// shared base by a handful of mutations. Instead of simulating every
// (epoch, query) cell cold, the runner computes each query's resource
// footprint once, classifies it against each epoch's delta, and answers:
//
//   - ClassReuse — the footprint misses the delta entirely: the base
//     result is provably bit-identical, no simulation at all;
//   - ClassFork  — only bandwidths of footprint links changed: restore
//     the base engine's pre-run checkpoint into an engine bound to the
//     derived epoch and replay (activations read capacities lazily from
//     the new epoch, so only the disturbed flow components re-solve);
//   - ClassCold  — a latency or availability change touches the
//     footprint (schedule-time state the checkpoint already baked in),
//     or the epochs don't share a topology: full cold simulation.
//
// All three produce bit-identical results to a cold run; they differ only
// in cost.

// DeltaClass is the answer strategy chosen for one (query, epoch) cell.
type DeltaClass uint8

const (
	// ClassReuse reuses the base result outright.
	ClassReuse DeltaClass = iota
	// ClassFork replays from the base engine's pre-run checkpoint.
	ClassFork
	// ClassCold runs a full cold simulation.
	ClassCold
)

// Footprint is the set of platform resources one plan query touches: the
// links of every transfer and background-flow route, and the endpoint
// hosts. Footprints are computed against the base epoch; routes are
// topology-level, so the same footprint is valid on every derived epoch.
type Footprint struct {
	links []bool
	hosts []bool
	ok    bool
}

// PlanFootprint resolves the query's routes against snap and marks every
// touched resource. A query whose routes cannot be resolved (unknown host,
// unroutable pair) yields an invalid footprint that classifies as cold.
func PlanFootprint(snap *platform.Snapshot, q *PlanQuery) Footprint {
	f := Footprint{
		links: make([]bool, snap.NumLinks()),
		hosts: make([]bool, snap.NumHosts()),
		ok:    true,
	}
	mark := func(src, dst string) bool {
		if hi, ok := snap.HostIndex(src); ok {
			f.hosts[hi] = true
		}
		if hi, ok := snap.HostIndex(dst); ok {
			f.hosts[hi] = true
		}
		route, err := snap.Route(src, dst)
		if err != nil {
			return false
		}
		for _, ref := range route.Refs {
			f.links[ref.LinkIndex()] = true
		}
		return true
	}
	for _, bg := range q.Background {
		if !mark(bg[0], bg[1]) {
			f.ok = false
			return f
		}
	}
	for _, t := range q.Transfers {
		if !mark(t.Src, t.Dst) {
			f.ok = false
			return f
		}
	}
	return f
}

// Classify chooses the answer strategy for this footprint against one
// epoch delta (nil means "unknown delta" and classifies cold).
//
// Latency and availability changes on footprint resources force a cold
// run: latencies are baked into scheduled activities (latency phase,
// RTT weight, window bound) and availability gates schedule-time
// admission, so a checkpoint captured on the base epoch is stale for
// them. Host speed changes never matter to transfer plans — plan queries
// schedule no computation. Bandwidth is read lazily at activation, so
// bandwidth-only overlap forks; no overlap at all reuses.
func (f *Footprint) Classify(d *platform.EpochDelta) DeltaClass {
	if !f.ok || d == nil {
		return ClassCold
	}
	for _, li := range d.AvailLinks {
		if f.links[li] {
			return ClassCold
		}
	}
	for _, li := range d.LatLinks {
		if f.links[li] {
			return ClassCold
		}
	}
	for _, hi := range d.AvailHosts {
		if f.hosts[hi] {
			return ClassCold
		}
	}
	for _, li := range d.BwLinks {
		if f.links[li] {
			return ClassFork
		}
	}
	return ClassReuse
}

// TouchedBw counts the delta's bandwidth-changed links the footprint
// crosses — the constraints a fork will re-price.
func (f *Footprint) TouchedBw(d *platform.EpochDelta) int {
	if !f.ok || d == nil {
		return 0
	}
	n := 0
	for _, li := range d.BwLinks {
		if f.links[li] {
			n++
		}
	}
	return n
}

// PlanCheckpoint is a C0 capture of one plan query: the workload scheduled
// on its base epoch, the event loop not yet started, no constraint
// materialized. It is the warm-start handle of differential evaluation:
// Fork replays the captured plan on any sibling epoch of the same
// topology, skipping route resolution and activity scheduling, and the
// lazily-created constraints read the sibling's capacities directly.
type PlanCheckpoint struct {
	ck  *EngineCheckpoint
	q   PlanQuery
	ids []ActivityID
}

// CheckpointPlan schedules the query on a pooled engine bound to snap and
// captures its C0 checkpoint without running the event loop — the cheap
// way to obtain a fork handle when the base answer itself is already known
// (e.g. cached). Returns nil when the query cannot be scheduled on snap.
func CheckpointPlan(snap *platform.Snapshot, cfg Config, q PlanQuery) *PlanCheckpoint {
	e := AcquireEngineSnapshot(snap, cfg)
	defer ReleaseEngine(e)
	ids, err := setupPlanQuery(e, &q)
	if err != nil {
		return nil
	}
	ck, err := e.Checkpoint()
	if err != nil {
		return nil
	}
	return &PlanCheckpoint{ck: ck, q: q, ids: ids}
}

// RunPlanCheckpoints is RunPlan with fork handles: queries whose want flag
// is set additionally capture a C0 checkpoint before running (nil handle
// when the query's setup failed). A nil want degenerates to RunPlan.
func RunPlanCheckpoints(snap *platform.Snapshot, cfg Config, queries []PlanQuery, want []bool) ([]PlanResult, []*PlanCheckpoint) {
	out := make([]PlanResult, len(queries))
	cks := make([]*PlanCheckpoint, len(queries))
	if len(queries) == 0 {
		return out, cks
	}
	e := AcquireEngineSnapshot(snap, cfg)
	defer ReleaseEngine(e)
	for qi := range queries {
		if qi > 0 {
			e.Reset()
		}
		q := &queries[qi]
		ids, err := setupPlanQuery(e, q)
		if err != nil {
			out[qi] = PlanResult{Err: err}
			continue
		}
		if want != nil && want[qi] {
			// setupPlanQuery schedules with nil callbacks, so Checkpoint
			// cannot fail here.
			if ck, err := e.Checkpoint(); err == nil {
				cks[qi] = &PlanCheckpoint{ck: ck, q: *q, ids: ids}
			}
		}
		out[qi] = finishPlanQuery(e, q, ids)
	}
	return out, cks
}

// Fork replays the captured plan on snap (an epoch of the checkpoint's
// topology) and returns the result. ok is false when the fork machinery
// itself cannot run here (incompatible epoch) — the caller should fall
// back to a cold run. Query-level failures surface inside the PlanResult.
func (pc *PlanCheckpoint) Fork(snap *platform.Snapshot) (PlanResult, bool) {
	fe, err := ForkFrom(pc.ck, snap)
	if err != nil {
		return PlanResult{}, false
	}
	res := finishPlanQuery(fe, &pc.q, pc.ids)
	ReleaseEngine(fe)
	return res, true
}

// DiffStats summarizes how a differential plan run answered its cells.
type DiffStats struct {
	// Reused cells took the base answer with no simulation.
	Reused int
	// Forked cells replayed from the base checkpoint.
	Forked int
	// Cold cells ran a full simulation.
	Cold int
	// ResolvedConstraints is the total number of bandwidth-changed
	// constraints re-priced across all forked cells.
	ResolvedConstraints int
}

// RunPlanDiff answers every query of the plan against the base epoch and
// against each member epoch, using the cheapest sound strategy per
// (member, query) cell. Results are bit-identical to RunPlan on each
// epoch separately. Reused cells share the base PlanResult value
// (including its Results slice) — treat results as read-only.
func RunPlanDiff(base *platform.Snapshot, cfg Config, queries []PlanQuery, members []*platform.Snapshot) (baseOut []PlanResult, memberOut [][]PlanResult, stats DiffStats) {
	baseOut = make([]PlanResult, len(queries))
	memberOut = make([][]PlanResult, len(members))
	for mi := range memberOut {
		memberOut[mi] = make([]PlanResult, len(queries))
	}
	if len(queries) == 0 {
		return baseOut, memberOut, stats
	}
	deltas := make([]*platform.EpochDelta, len(members))
	for mi, m := range members {
		deltas[mi], _ = platform.DiffSnapshots(base, m) // nil on topology mismatch -> cold
	}

	coldIdx := make([][]int, len(members))
	classes := make([]DeltaClass, len(members))
	e := AcquireEngineSnapshot(base, cfg)
	defer ReleaseEngine(e)
	for qi := range queries {
		q := &queries[qi]
		if qi > 0 {
			e.Reset()
		}
		f := PlanFootprint(base, q)
		needFork := false
		for mi := range members {
			classes[mi] = f.Classify(deltas[mi])
			if classes[mi] == ClassFork {
				needFork = true
			}
		}
		ids, err := setupPlanQuery(e, q)
		var ck *EngineCheckpoint
		if err != nil {
			baseOut[qi] = PlanResult{Err: err}
		} else {
			if needFork {
				// Capture at C0: activities scheduled, event loop not yet
				// started, no constraint materialized. setupPlanQuery
				// schedules with nil callbacks, so Checkpoint cannot fail.
				ck, _ = e.Checkpoint()
			}
			baseOut[qi] = finishPlanQuery(e, q, ids)
		}
		for mi := range members {
			switch classes[mi] {
			case ClassReuse:
				// Footprint misses the delta: identical schedule-time
				// admission, identical capacities, identical latencies —
				// the base answer (or base setup error) is the member's.
				memberOut[mi][qi] = baseOut[qi]
				stats.Reused++
			case ClassFork:
				if ck == nil {
					// Base setup failed before a checkpoint existed; the
					// member's bandwidths differ so the base error cannot
					// be soundly reused. Run it cold.
					coldIdx[mi] = append(coldIdx[mi], qi)
					continue
				}
				fe, ferr := ForkFrom(ck, members[mi])
				if ferr != nil {
					coldIdx[mi] = append(coldIdx[mi], qi)
					continue
				}
				memberOut[mi][qi] = finishPlanQuery(fe, q, ids)
				ReleaseEngine(fe)
				stats.Forked++
				stats.ResolvedConstraints += f.TouchedBw(deltas[mi])
			case ClassCold:
				coldIdx[mi] = append(coldIdx[mi], qi)
			}
		}
	}

	// Cold backlogs run batched per member, one pooled engine each.
	for mi, idxs := range coldIdx {
		if len(idxs) == 0 {
			continue
		}
		qs := make([]PlanQuery, len(idxs))
		for j, qi := range idxs {
			qs[j] = queries[qi]
		}
		res := RunPlan(members[mi], cfg, qs)
		for j, qi := range idxs {
			memberOut[mi][qi] = res[j]
		}
		stats.Cold += len(idxs)
	}
	return baseOut, memberOut, stats
}
