package sim

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"pilgrim/internal/platform"
)

func requireSamePlanResults(t *testing.T, ctx string, got, want []PlanResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", ctx, len(got), len(want))
	}
	for qi := range want {
		g, w := got[qi], want[qi]
		if (g.Err != nil) != (w.Err != nil) {
			t.Fatalf("%s: query %d: err %v, want %v", ctx, qi, g.Err, w.Err)
		}
		if w.Err != nil {
			if g.Err.Error() != w.Err.Error() {
				t.Fatalf("%s: query %d: err %q, want %q", ctx, qi, g.Err, w.Err)
			}
			continue
		}
		if len(g.Results) != len(w.Results) {
			t.Fatalf("%s: query %d: %d transfers, want %d", ctx, qi, len(g.Results), len(w.Results))
		}
		for i := range w.Results {
			if math.Float64bits(g.Results[i].Completion) != math.Float64bits(w.Results[i].Completion) ||
				math.Float64bits(g.Results[i].Duration) != math.Float64bits(w.Results[i].Duration) {
				t.Fatalf("%s: query %d transfer %d: %v/%v, want %v/%v", ctx, qi, i,
					g.Results[i].Completion, g.Results[i].Duration,
					w.Results[i].Completion, w.Results[i].Duration)
			}
		}
	}
}

// randomPlanQueries builds 1-3 plan queries of concurrent transfers and
// occasional background flows over h hosts named h0..h{h-1}.
func randomPlanQueries(rng *rand.Rand, h int) []PlanQuery {
	name := func(i int) string { return fmt.Sprintf("h%d", i) }
	pair := func() (string, string) {
		a := rng.Intn(h)
		b := rng.Intn(h - 1)
		if b >= a {
			b++
		}
		return name(a), name(b)
	}
	queries := make([]PlanQuery, 1+rng.Intn(3))
	for qi := range queries {
		n := 1 + rng.Intn(6)
		for i := 0; i < n; i++ {
			src, dst := pair()
			queries[qi].Transfers = append(queries[qi].Transfers, Transfer{
				Src: src, Dst: dst,
				Size:  math.Exp(rng.Float64()*9) * 1e4,
				Start: float64(rng.Intn(2)) * rng.Float64(),
			})
		}
		for i := 0; i < rng.Intn(3); i++ {
			src, dst := pair()
			queries[qi].Background = append(queries[qi].Background, [2]string{src, dst})
		}
	}
	return queries
}

// TestRunPlanDiffMatchesCold is the differential-vs-cold bit-identity
// property test of the fork tentpole: for random platforms, workloads,
// and overlay members (bandwidth scales on used and unused links,
// latency changes, link and host failures, even foreign topologies),
// every cell RunPlanDiff answers — by reuse, fork, or cold fallback —
// must be bit-identical to a cold RunPlan on that member epoch.
func TestRunPlanDiffMatchesCold(t *testing.T) {
	var totals DiffStats
	for seed := int64(1); seed <= 45; seed++ {
		rng := rand.New(rand.NewSource(seed))
		hosts := 4 + rng.Intn(4)
		plat := buildRandomPlatform(t, rng, hosts)
		base := plat.Snapshot()
		cfg := DefaultConfig()
		queries := randomPlanQueries(rng, hosts)

		members := make([]*platform.Snapshot, 1+rng.Intn(4))
		for mi := range members {
			if rng.Float64() < 0.08 {
				// Foreign topology: same host names, different compile.
				members[mi] = buildRandomPlatform(t, rng, hosts).Snapshot()
				continue
			}
			var links []platform.OverlayLink
			var hostsOv []platform.OverlayHost
			seen := map[int32]bool{}
			for i := 0; i < 1+rng.Intn(4); i++ {
				li := int32(rng.Intn(base.NumLinks()))
				if seen[li] {
					continue
				}
				seen[li] = true
				u := platform.OverlayLink{Link: li, Bandwidth: math.NaN(), Latency: math.NaN()}
				switch rng.Intn(6) {
				case 0:
					u.Bandwidth = 0 // fail the link
				case 1, 2, 3:
					u.Bandwidth = base.LinkBandwidth(li) * (0.3 + rng.Float64())
				case 4:
					u.Latency = rng.Float64() * 1e-3
				default:
					u.Bandwidth = base.LinkBandwidth(li) * (0.3 + rng.Float64())
					u.Latency = rng.Float64() * 1e-3
				}
				links = append(links, u)
			}
			if rng.Float64() < 0.15 {
				hostsOv = append(hostsOv, platform.OverlayHost{Host: int32(rng.Intn(hosts)), Speed: 0})
			}
			m, err := base.ApplyOverlay(links, hostsOv, "fork member")
			if err != nil {
				t.Fatalf("seed %d: overlay: %v", seed, err)
			}
			members[mi] = m
		}

		baseOut, memberOut, stats := RunPlanDiff(base, cfg, queries, members)
		requireSamePlanResults(t, fmt.Sprintf("seed %d base", seed),
			baseOut, RunPlan(base, cfg, queries))
		for mi, m := range members {
			requireSamePlanResults(t, fmt.Sprintf("seed %d member %d", seed, mi),
				memberOut[mi], RunPlan(m, cfg, queries))
		}
		if got, want := stats.Reused+stats.Forked+stats.Cold, len(members)*len(queries); got != want {
			t.Fatalf("seed %d: stats cover %d cells, want %d (%+v)", seed, got, want, stats)
		}
		totals.Reused += stats.Reused
		totals.Forked += stats.Forked
		totals.Cold += stats.Cold
		totals.ResolvedConstraints += stats.ResolvedConstraints
	}
	// The sweep must exercise all three strategies, or the test proves
	// less than it claims.
	if totals.Reused == 0 || totals.Forked == 0 || totals.Cold == 0 {
		t.Fatalf("strategy coverage hole: %+v", totals)
	}
	if totals.Forked > 0 && totals.ResolvedConstraints == 0 {
		t.Fatalf("forks re-priced no constraints: %+v", totals)
	}
}

// TestCheckpointMidRunContinuation checkpoints an engine in the middle of
// its event loop and verifies the original and a restored copy finish
// bit-identically — the full-state-capture property (arena, heap, lazy
// progress accounting, flow rates, completion ledger).
func TestCheckpointMidRunContinuation(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		rng := rand.New(rand.NewSource(seed * 7))
		hosts := 4 + rng.Intn(3)
		plat := buildRandomPlatform(t, rng, hosts)
		snap := plat.Snapshot()
		cfg := DefaultConfig()
		q := randomPlanQueries(rng, hosts)[0]

		e := NewEngineSnapshot(snap, cfg)
		ids, err := setupPlanQuery(e, &q)
		if err != nil {
			continue // routed over nothing usable; other seeds cover this
		}
		steps := rng.Intn(6)
		for s := 0; s < steps; s++ {
			if _, ok, err := e.Step(); err != nil || !ok {
				break
			}
		}
		ck, err := e.Checkpoint()
		if err != nil {
			t.Fatalf("seed %d: checkpoint: %v", seed, err)
		}
		want := finishPlanQuery(e, &q, ids)

		r := NewEngineSnapshot(snap, cfg)
		if err := r.RestoreCheckpoint(ck); err != nil {
			t.Fatalf("seed %d: restore: %v", seed, err)
		}
		got := finishPlanQuery(r, &q, ids)
		requireSamePlanResults(t, fmt.Sprintf("seed %d fresh-restore", seed),
			[]PlanResult{got}, []PlanResult{want})

		// Restoring into a pooled, previously used engine must behave the
		// same (arena resizing, recycled struct neutralization).
		p := AcquireEngineSnapshot(snap, cfg)
		if err := p.RestoreCheckpoint(ck); err != nil {
			t.Fatalf("seed %d: pooled restore: %v", seed, err)
		}
		got2 := finishPlanQuery(p, &q, ids)
		ReleaseEngine(p)
		requireSamePlanResults(t, fmt.Sprintf("seed %d pooled-restore", seed),
			[]PlanResult{got2}, []PlanResult{want})
	}
}

func TestCheckpointRejectsCallbacks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	plat := buildRandomPlatform(t, rng, 3)
	e := NewEngineSnapshot(plat.Snapshot(), DefaultConfig())
	if _, err := e.AddComm("h0", "h1", 1e6, 0, func(float64) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Checkpoint(); err == nil {
		t.Fatal("checkpoint with live callback accepted")
	}
}

func TestRestoreRejectsIncompatible(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	plat := buildRandomPlatform(t, rng, 3)
	e := NewEngineSnapshot(plat.Snapshot(), DefaultConfig())
	ck, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	other := NewEngineSnapshot(buildRandomPlatform(t, rng, 3).Snapshot(), DefaultConfig())
	if err := other.RestoreCheckpoint(ck); err == nil {
		t.Fatal("cross-topology restore accepted")
	}
	cfg2 := DefaultConfig()
	cfg2.TCPGamma = 0
	diffCfg := NewEngineSnapshot(plat.Snapshot(), cfg2)
	if err := diffCfg.RestoreCheckpoint(ck); err == nil {
		t.Fatal("cross-config restore accepted")
	}
}
