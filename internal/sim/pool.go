package sim

import (
	"runtime"
	"sync"

	"pilgrim/internal/platform"
)

// This file implements process-wide engine pooling. A forecast service
// answers every request by building a simulation, running it for a few
// hundred events and throwing it away; at production request rates the
// engine, its event heap, its flow system and all their internal slices
// become pure allocator churn. The pool recycles complete engines per
// (platform, configuration): Engine.Reset restarts ids and solver serials
// from zero, so a recycled engine produces bit-identical results to a
// fresh one — pooling is invisible except to the allocator.

// poolKey identifies one engine flavour. Config is a comparable value
// type, so the pair is usable as a map key directly.
type poolKey struct {
	plat *platform.Platform
	cfg  Config
}

type enginePool struct {
	mu   sync.Mutex
	free []*Engine
}

// The pool is bounded in both dimensions so it can never pin memory
// without limit: at most maxPoolKeys (platform, config) flavours are
// retained — a flavour's map key holds the Platform alive, so dropping
// stale flavours lets rebuilt platforms (e.g. a periodic reference
// refresh) be collected — and each flavour parks at most maxFreePerPool
// idle engines (a burst's concurrency high-water mark, not its total).
// Evicted or surplus engines are simply garbage; Acquire falls back to
// NewEngine.
const maxPoolKeys = 64

var maxFreePerPool = 4 * runtime.GOMAXPROCS(0)

var (
	poolsMu sync.Mutex
	pools   = make(map[poolKey]*enginePool)
)

// AcquireEngine returns a ready-to-use engine for the given platform and
// configuration, recycled from the process-wide pool when one is
// available. Pass it back with ReleaseEngine when the simulation's
// results have been read.
func AcquireEngine(plat *platform.Platform, cfg Config) *Engine {
	key := poolKey{plat: plat, cfg: cfg}
	poolsMu.Lock()
	p, ok := pools[key]
	if !ok {
		if len(pools) >= maxPoolKeys {
			// Evict an arbitrary stale flavour; its parked engines (and,
			// if nothing else references it, its platform) become
			// collectable. In-flight engines of that flavour are simply
			// dropped on release (pools[key] == nil there).
			for k := range pools {
				delete(pools, k)
				break
			}
		}
		p = &enginePool{}
		pools[key] = p
	}
	poolsMu.Unlock()

	p.mu.Lock()
	if n := len(p.free); n > 0 {
		e := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		e.inPool = false
		return e
	}
	p.mu.Unlock()
	e := NewEngine(plat, cfg)
	e.pooled = true
	return e
}

// ReleaseEngine resets the engine and returns it to its pool. The caller
// must not use the engine — or any ActivityID it handed out — afterwards.
// Engines that did not come from AcquireEngine, and engines already
// released, are ignored, so Release is always safe to call.
func ReleaseEngine(e *Engine) {
	if e == nil || !e.pooled || e.inPool {
		return
	}
	e.Reset()
	key := poolKey{plat: e.plat, cfg: e.cfg}
	poolsMu.Lock()
	p := pools[key]
	poolsMu.Unlock()
	if p == nil {
		return
	}
	p.mu.Lock()
	if len(p.free) < maxFreePerPool {
		e.inPool = true
		p.free = append(p.free, e)
	}
	p.mu.Unlock()
}
