package sim

import (
	"runtime"
	"sync"

	"pilgrim/internal/platform"
)

// This file implements process-wide engine pooling. A forecast service
// answers every request by building a simulation, running it for a few
// hundred events and throwing it away; at production request rates the
// engine, its event heap, its flow system and all their internal slices
// become pure allocator churn. The pool recycles complete engines per
// (snapshot, configuration): Engine.Reset restarts ids and solver serials
// from zero, so a recycled engine produces bit-identical results to a
// fresh one — pooling is invisible except to the allocator.

// poolKey identifies one engine flavour: one compiled platform epoch plus
// one model configuration. Keying by snapshot (not platform) means a
// link-state update naturally starts a fresh flavour — engines never mix
// constraint capacities from different epochs — and stale epochs age out
// through the flavour-eviction path below.
type poolKey struct {
	snap *platform.Snapshot
	cfg  Config
}

type enginePool struct {
	mu   sync.Mutex
	free []*Engine
}

// The pool is bounded in both dimensions so it can never pin memory
// without limit: at most maxPoolKeys (snapshot, config) flavours are
// retained — a flavour's map key holds the Snapshot alive, so dropping
// stale flavours lets superseded epochs (e.g. a stream of measurement
// updates) be collected — and each flavour parks at most maxFreePerPool
// idle engines (a burst's concurrency high-water mark, not its total).
// Evicted or surplus engines are simply garbage; Acquire falls back to
// NewEngineSnapshot.
const maxPoolKeys = 64

var maxFreePerPool = 4 * runtime.GOMAXPROCS(0)

var (
	poolsMu sync.Mutex
	pools   = make(map[poolKey]*enginePool)
)

// AcquireEngine returns a ready-to-use engine for the given platform's
// current base snapshot, recycled from the process-wide pool when one is
// available. Pass it back with ReleaseEngine when the simulation's
// results have been read.
func AcquireEngine(plat *platform.Platform, cfg Config) *Engine {
	return AcquireEngineSnapshot(plat.Snapshot(), cfg)
}

// AcquireEngineSnapshot is AcquireEngine for one compiled platform epoch.
func AcquireEngineSnapshot(snap *platform.Snapshot, cfg Config) *Engine {
	key := poolKey{snap: snap, cfg: cfg}
	poolsMu.Lock()
	p, ok := pools[key]
	if !ok {
		if len(pools) >= maxPoolKeys {
			// Evict an arbitrary stale flavour; its parked engines (and,
			// if nothing else references it, its platform) become
			// collectable. In-flight engines of that flavour are simply
			// dropped on release (pools[key] == nil there).
			for k := range pools {
				delete(pools, k)
				break
			}
		}
		p = &enginePool{}
		pools[key] = p
	}
	poolsMu.Unlock()

	p.mu.Lock()
	if n := len(p.free); n > 0 {
		e := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		e.inPool = false
		return e
	}
	p.mu.Unlock()
	e := NewEngineSnapshot(snap, cfg)
	e.pooled = true
	return e
}

// ReleaseEngine resets the engine and returns it to its pool. The caller
// must not use the engine — or any ActivityID it handed out — afterwards.
// Engines that did not come from AcquireEngine, and engines already
// released, are ignored, so Release is always safe to call.
func ReleaseEngine(e *Engine) {
	if e == nil || !e.pooled || e.inPool {
		return
	}
	e.Reset()
	key := poolKey{snap: e.snap, cfg: e.cfg}
	poolsMu.Lock()
	p := pools[key]
	poolsMu.Unlock()
	if p == nil {
		return
	}
	p.mu.Lock()
	if len(p.free) < maxFreePerPool {
		e.inPool = true
		p.free = append(p.free, e)
	}
	p.mu.Unlock()
}
