package sim

import (
	"fmt"

	"pilgrim/internal/platform"
)

// This file implements the batch plan runner behind scenario evaluation:
// a plan is a list of independent queries — each a set of concurrent
// transfers plus persistent background flows — all answered against ONE
// compiled platform epoch. Running them as a plan acquires a single
// pooled engine for the whole batch and Resets it between queries, so an
// N-query scenario pays one engine acquisition and allocates like a
// single warm simulation instead of N cold ones. Reset restores the
// engine to an observably fresh state (ids, solver serials), so plan
// results are bit-identical to running each query on its own engine.

// PlanQuery is one query of a batch plan.
type PlanQuery struct {
	// Transfers all depart at simulated time 0 and contend with each
	// other (and the background flows) for the whole simulation.
	Transfers []Transfer
	// Background flows are persistent cross-traffic streams present from
	// time 0.
	Background [][2]string
}

// PlanResult is the outcome of one plan query: the per-transfer results
// in declaration order, or the error that stopped this query. A failing
// query never aborts the rest of the plan — scenario sweeps routinely
// contain hypotheses that cannot run (a transfer routed over a failed
// link), and the caller wants the other cells answered.
type PlanResult struct {
	Results []TransferResult
	Err     error
}

// RunPlan evaluates every query of the plan against the given snapshot,
// reusing one pooled engine across the whole batch. Results are in query
// order and bit-identical to running each query through its own
// Simulation.
func RunPlan(snap *platform.Snapshot, cfg Config, queries []PlanQuery) []PlanResult {
	out := make([]PlanResult, len(queries))
	if len(queries) == 0 {
		return out
	}
	e := AcquireEngineSnapshot(snap, cfg)
	defer ReleaseEngine(e)
	for qi := range queries {
		if qi > 0 {
			e.Reset()
		}
		out[qi] = runPlanQuery(e, &queries[qi])
	}
	return out
}

// runPlanQuery mirrors Simulation.Run on a caller-owned engine:
// background flows first, then transfers, then run to completion.
func runPlanQuery(e *Engine, q *PlanQuery) PlanResult {
	ids, err := setupPlanQuery(e, q)
	if err != nil {
		return PlanResult{Err: err}
	}
	return finishPlanQuery(e, q, ids)
}

// setupPlanQuery installs the query's background flows and transfers with
// no completion callbacks — the engine stays checkpointable — and returns
// the transfer activity ids in declaration order.
func setupPlanQuery(e *Engine, q *PlanQuery) ([]ActivityID, error) {
	if len(q.Transfers) == 0 {
		return nil, fmt.Errorf("sim: plan query has no transfers")
	}
	for _, bg := range q.Background {
		if _, err := e.AddBackgroundFlow(bg[0], bg[1], 0); err != nil {
			return nil, fmt.Errorf("sim: background flow %s->%s: %w", bg[0], bg[1], err)
		}
	}
	ids := make([]ActivityID, len(q.Transfers))
	for i, t := range q.Transfers {
		id, err := e.AddComm(t.Src, t.Dst, t.Size, t.Start, nil)
		if err != nil {
			return nil, fmt.Errorf("sim: transfer %s->%s: %w", t.Src, t.Dst, err)
		}
		ids[i] = id
	}
	return ids, nil
}

// finishPlanQuery runs the prepared engine to completion and collects the
// per-transfer results through the Done ledger. Activity ids survive a
// checkpoint restore, so the same ids collect from a forked engine too.
func finishPlanQuery(e *Engine, q *PlanQuery, ids []ActivityID) PlanResult {
	n, err := e.RunToCompletion()
	if err != nil {
		return PlanResult{Err: err}
	}
	if n != len(q.Transfers) {
		return PlanResult{Err: fmt.Errorf("sim: %d of %d transfers completed", n, len(q.Transfers))}
	}
	results := make([]TransferResult, len(q.Transfers))
	for i, t := range q.Transfers {
		done, at := e.Done(ids[i])
		if !done {
			return PlanResult{Err: fmt.Errorf("sim: transfer %s->%s did not complete", t.Src, t.Dst)}
		}
		results[i] = TransferResult{Transfer: t, Completion: at, Duration: at - t.Start}
	}
	return PlanResult{Results: results}
}
