package sim

import (
	"math"
	"testing"

	"pilgrim/internal/platform"
)

func TestResharingsCounted(t *testing.T) {
	p := buildPair(t, 100e6, 0)
	e := NewEngine(p, DefaultConfig())
	if _, err := e.AddComm("a", "b", 1e6, 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if e.Resharings() == 0 {
		t.Error("no sharing recomputation recorded")
	}
}

func TestSharingStatsIncremental(t *testing.T) {
	// Two transfers on disjoint host pairs are independent components:
	// when one completes, re-solving must touch only its own component,
	// not the survivor.
	p := platform.New("root", platform.RoutingFull)
	as := p.Root()
	for _, h := range []string{"a", "b", "c", "d"} {
		as.AddHost(h, 1e9)
	}
	l1, _ := as.AddLink("l1", 100e6, 0, platform.Shared)
	l2, _ := as.AddLink("l2", 50e6, 0, platform.Shared)
	as.AddRoute("a", "b", []platform.LinkUse{{Link: l1, Direction: platform.None}}, true)
	as.AddRoute("c", "d", []platform.LinkUse{{Link: l2, Direction: platform.None}}, true)
	cfg := DefaultConfig()
	cfg.TCPGamma = 0
	e := NewEngine(p, cfg)
	// Same size, but the c->d link is half as fast: a->b finishes first.
	if _, err := e.AddComm("a", "b", 92e6, 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddComm("c", "d", 92e6, 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	st := e.SharingStats()
	if st.Resharings != e.Resharings() {
		t.Errorf("Resharings mismatch: %d vs %d", st.Resharings, e.Resharings())
	}
	// Initial solve touches both flows (2); the a->b completion re-solves
	// only the empty remainder of its component plus nothing of c->d's.
	if st.VariablesTouched >= st.Resharings*2 {
		t.Errorf("VariablesTouched = %d over %d resharings: not incremental",
			st.VariablesTouched, st.Resharings)
	}
	if st.VariablesTouched < 2 {
		t.Errorf("VariablesTouched = %d, want >= 2", st.VariablesTouched)
	}
}

func TestEngineNowAdvances(t *testing.T) {
	p := buildPair(t, 100e6, 0)
	cfg := DefaultConfig()
	cfg.TCPGamma = 0
	e := NewEngine(p, cfg)
	if e.Now() != 0 {
		t.Fatalf("initial now = %v", e.Now())
	}
	if _, err := e.AddComm("a", "b", 92e6, 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Now()-1) > 1e-9 {
		t.Errorf("final now = %v, want 1", e.Now())
	}
}

func TestLatencyPhaseDelaysSharing(t *testing.T) {
	// Flow A starts at t=0 with zero latency; flow B has a long latency
	// phase. While B is in latency, A must run at full capacity.
	p := platform.New("root", platform.RoutingFull)
	as := p.Root()
	as.AddHost("a", 1e9)
	as.AddHost("b", 1e9)
	as.AddHost("c", 1e9)
	fast, _ := as.AddLink("fast", 100e6, 0, platform.Shared)
	slow, _ := as.AddLink("slow", 100e6, 10e-3, platform.Shared)
	as.AddRoute("a", "b", []platform.LinkUse{{Link: fast, Direction: platform.None}}, true)
	as.AddRoute("c", "b", []platform.LinkUse{{Link: slow, Direction: platform.None}, {Link: fast, Direction: platform.None}}, true)
	cfg := DefaultConfig()
	cfg.TCPGamma = 0
	cfg.LatencyFactor = 10 // slow path latency phase = 0.1s

	// A transfers 9.2e6 bytes: exactly 0.1s at full 92e6 B/s — it must
	// finish just as B's latency phase ends, never sharing.
	res, err := Predict(p, cfg, []Transfer{
		{Src: "a", Dst: "b", Size: 9.2e6},
		{Src: "c", Dst: "b", Size: 9.2e6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res[0].Duration-0.1) > 1e-9 {
		t.Errorf("A duration = %v, want 0.1 (no contention during B's latency)", res[0].Duration)
	}
	// B: 0.1s latency + 0.1s data at full rate (A already done).
	if math.Abs(res[1].Duration-0.2) > 1e-9 {
		t.Errorf("B duration = %v, want 0.2", res[1].Duration)
	}
}

func TestEngineMixedCommExec(t *testing.T) {
	// A computation and a communication share nothing: both take their
	// standalone durations concurrently.
	p := buildPair(t, 100e6, 0)
	cfg := DefaultConfig()
	cfg.TCPGamma = 0
	e := NewEngine(p, cfg)
	var commEnd, execEnd float64
	if _, err := e.AddComm("a", "b", 92e6, 0, func(now float64) { commEnd = now }); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddExec("a", 2e9, 0, func(now float64) { execEnd = now }); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(commEnd-1) > 1e-9 {
		t.Errorf("comm end = %v, want 1", commEnd)
	}
	if math.Abs(execEnd-2) > 1e-9 {
		t.Errorf("exec end = %v, want 2", execEnd)
	}
}

func TestActivityAddedMidRun(t *testing.T) {
	// An onDone callback schedules a follow-up activity (the workflow
	// pattern); the engine must pick it up and complete it.
	p := buildPair(t, 100e6, 0)
	cfg := DefaultConfig()
	cfg.TCPGamma = 0
	cfg.LatencyFactor = 1
	e := NewEngine(p, cfg)
	var secondEnd float64
	if _, err := e.AddComm("a", "b", 92e6, 0, func(now float64) {
		if _, err := e.AddComm("b", "a", 92e6, now, func(n2 float64) { secondEnd = n2 }); err != nil {
			t.Errorf("mid-run AddComm: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(secondEnd-2) > 1e-9 {
		t.Errorf("chained completion = %v, want 2", secondEnd)
	}
}

func TestDoneQueries(t *testing.T) {
	p := buildPair(t, 100e6, 0)
	e := NewEngine(p, DefaultConfig())
	id, err := e.AddComm("a", "b", 1e6, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if done, _ := e.Done(id); done {
		t.Error("done before running")
	}
	if _, err := e.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	done, at := e.Done(id)
	if !done || at <= 0 {
		t.Errorf("done = %v at %v", done, at)
	}
	if done, _ := e.Done(9999); done {
		t.Error("unknown activity reported done")
	}
}

func TestTimerValidation(t *testing.T) {
	p := buildPair(t, 100e6, 0)
	e := NewEngine(p, DefaultConfig())
	if _, err := e.AddTimer(-1, 0, nil); err == nil {
		t.Error("negative duration accepted")
	}
	if _, err := e.AddTimer(1, -1, nil); err == nil {
		t.Error("past start accepted")
	}
}

func TestZeroCapacityStallDetected(t *testing.T) {
	// A transfer over a link that exists but was modeled with ~zero
	// usable bandwidth must fail loudly, not hang.
	p := platform.New("root", platform.RoutingFull)
	as := p.Root()
	as.AddHost("a", 1e9)
	as.AddHost("b", 1e9)
	l, err := as.AddLink("dead", 1e-30, 0, platform.Shared)
	if err != nil {
		t.Fatal(err)
	}
	as.AddRoute("a", "b", []platform.LinkUse{{Link: l, Direction: platform.None}}, true)
	cfg := DefaultConfig()
	cfg.TCPGamma = 0
	_, err = Predict(p, cfg, []Transfer{{Src: "a", Dst: "b", Size: 1e9}})
	// Either an explicit stall error or an astronomically long duration
	// is acceptable; silence/hang is not. Predict returning is the test.
	_ = err
}
