package sim

import (
	"math"
	"strings"
	"testing"

	"pilgrim/internal/platform"
)

// batchPlatform: three hosts behind shared NIC links on a common router.
func batchPlatform(t testing.TB) *platform.Platform {
	t.Helper()
	p := platform.New("batch", platform.RoutingFull)
	as := p.Root()
	if _, err := as.AddRouter("gw"); err != nil {
		t.Fatal(err)
	}
	for _, h := range []string{"a", "b", "c"} {
		if _, err := as.AddHost(h, 1e9); err != nil {
			t.Fatal(err)
		}
		l, err := as.AddLink(h+"_nic", 1e8, 1e-4, platform.Shared)
		if err != nil {
			t.Fatal(err)
		}
		if err := as.AddRoute(h, "gw", []platform.LinkUse{{Link: l, Direction: platform.Up}}, true); err != nil {
			t.Fatal(err)
		}
	}
	for _, pair := range [][2]string{{"a", "b"}, {"a", "c"}, {"b", "c"}} {
		links := []platform.LinkUse{
			{Link: p.Link(pair[0] + "_nic"), Direction: platform.Up},
			{Link: p.Link(pair[1] + "_nic"), Direction: platform.Down},
		}
		if err := as.AddRoute(pair[0], pair[1], links, true); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

// TestRunPlanMatchesIndividualSimulations pins the plan runner's
// determinism: a plan's results must be bit-identical to running each
// query through its own Simulation.
func TestRunPlanMatchesIndividualSimulations(t *testing.T) {
	p := batchPlatform(t)
	snap := p.Snapshot()
	cfg := DefaultConfig()
	queries := []PlanQuery{
		{Transfers: []Transfer{{Src: "a", Dst: "b", Size: 5e8}}},
		{Transfers: []Transfer{
			{Src: "a", Dst: "b", Size: 5e8},
			{Src: "a", Dst: "c", Size: 2e8},
		}},
		{Transfers: []Transfer{{Src: "b", Dst: "c", Size: 1e8}},
			Background: [][2]string{{"a", "c"}}},
	}
	plan := RunPlan(snap, cfg, queries)
	for qi, q := range queries {
		s := NewSnapshotSimulation(snap, cfg)
		for _, bg := range q.Background {
			s.AddBackgroundFlow(bg[0], bg[1])
		}
		for _, tr := range q.Transfers {
			s.AddTransferAt(tr.Src, tr.Dst, tr.Size, tr.Start)
		}
		want, err := s.Run()
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		if plan[qi].Err != nil {
			t.Fatalf("query %d: plan error %v", qi, plan[qi].Err)
		}
		if len(plan[qi].Results) != len(want) {
			t.Fatalf("query %d: %d results, want %d", qi, len(plan[qi].Results), len(want))
		}
		for i := range want {
			if math.Float64bits(plan[qi].Results[i].Duration) != math.Float64bits(want[i].Duration) {
				t.Errorf("query %d transfer %d: plan %v != solo %v",
					qi, i, plan[qi].Results[i].Duration, want[i].Duration)
			}
		}
	}
}

// TestRunPlanIsolatesFailures: a query over a failed link reports its own
// error; the queries before and after it still answer.
func TestRunPlanIsolatesFailures(t *testing.T) {
	p := batchPlatform(t)
	base := p.Snapshot()
	li, ok := base.LinkIndex("b_nic")
	if !ok {
		t.Fatal("missing link")
	}
	snap, err := base.ApplyOverlay([]platform.OverlayLink{{Link: li, Bandwidth: 0, Latency: math.NaN()}}, nil, "fail b_nic")
	if err != nil {
		t.Fatal(err)
	}
	plan := RunPlan(snap, DefaultConfig(), []PlanQuery{
		{Transfers: []Transfer{{Src: "a", Dst: "c", Size: 1e8}}},
		{Transfers: []Transfer{{Src: "a", Dst: "b", Size: 1e8}}}, // crosses the failed link
		{Transfers: []Transfer{{Src: "a", Dst: "c", Size: 1e8}}},
	})
	if plan[0].Err != nil || plan[2].Err != nil {
		t.Fatalf("healthy queries failed: %v / %v", plan[0].Err, plan[2].Err)
	}
	if plan[1].Err == nil || !strings.Contains(plan[1].Err.Error(), "is down") {
		t.Fatalf("failed-link query error = %v", plan[1].Err)
	}
	if math.Float64bits(plan[0].Results[0].Duration) != math.Float64bits(plan[2].Results[0].Duration) {
		t.Error("identical queries around a failure diverged")
	}
}

// TestDownResourcesRejectActivities: failed hosts reject comms and execs
// with precise errors.
func TestDownResourcesRejectActivities(t *testing.T) {
	p := batchPlatform(t)
	base := p.Snapshot()
	hi, ok := base.HostIndex("c")
	if !ok {
		t.Fatal("missing host")
	}
	snap, err := base.ApplyOverlay(nil, []platform.OverlayHost{{Host: hi, Speed: 0}}, "fail host c")
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngineSnapshot(snap, DefaultConfig())
	if _, err := e.AddExec("c", 1e9, 0, nil); err == nil || !strings.Contains(err.Error(), "down") {
		t.Errorf("exec on failed host: err = %v", err)
	}
	if _, err := e.AddComm("a", "c", 1e8, 0, nil); err == nil || !strings.Contains(err.Error(), "down") {
		t.Errorf("comm to failed host: err = %v", err)
	}
	if _, err := e.AddComm("c", "a", 1e8, 0, nil); err == nil || !strings.Contains(err.Error(), "down") {
		t.Errorf("comm from failed host: err = %v", err)
	}
	// Healthy pairs still work on the same epoch.
	if _, err := e.AddComm("a", "b", 1e8, 0, nil); err != nil {
		t.Errorf("healthy comm rejected: %v", err)
	}
}
