package sim

import (
	"fmt"

	"pilgrim/internal/flow"
	"pilgrim/internal/platform"
)

// Engine checkpoint/fork — the warm-start half of differential scenario
// evaluation. A checkpoint is a complete value copy of the engine's
// dynamic state: simulated clock, activity arena, event heap, free lists,
// completion ledger, and the flow system (via flow.Checkpoint). Restoring
// it into another engine reproduces the captured simulation exactly; the
// receiving engine keeps its own snapshot binding, which is the fork
// lever: an engine checkpointed before its event loop starts (activities
// scheduled, no constraint materialized yet) and restored into an engine
// bound to a DERIVED epoch of the same topology replays bit-identically
// to a cold run on that epoch, provided the derived epoch differs from
// the capture epoch only in ways the captured activities never read at
// schedule time — in practice: bandwidth changes only, no latency or
// availability changes on any link/host the activities touch (package
// pilgrim's classifier enforces exactly that, falling back to a cold run
// otherwise). Bandwidths are read lazily per activation from the bound
// snapshot, so the fork re-prices the changed links for free and the
// incremental solver re-solves only the components they disturb.
//
// Checkpoints cannot capture completion callbacks: Checkpoint errors if
// any live activity carries an onDone closure. The plan runner collects
// results through Done instead.

// EngineCheckpoint is an immutable copy of an Engine's dynamic state.
// It is independent of the source engine: the source may keep running,
// be Reset, or be released to the pool, and any number of engines can
// restore from one checkpoint.
type EngineCheckpoint struct {
	cfg  Config
	snap *platform.Snapshot // capture-time epoch (topology anchor)

	now    float64
	nextID ActivityID
	live   int
	dirty  bool
	events int

	arena       []activity // value copies; fv/onDone stripped
	fvOf        []int32    // per slot: flow-checkpoint variable index, -1
	freeSlots   []int32
	pendingFree []int32
	slotOf      []int32
	doneAt      []float64
	heapKey     []float64
	heapSlot    []int32
	heapPos     []int32

	flow     *flow.Checkpoint
	cnstLink []int32 // per flow-constraint: backing LinkRef, -1
	cnstHost []int32 // per flow-constraint: backing host index, -1
}

// Snapshot returns the platform epoch the checkpoint was captured on.
func (ck *EngineCheckpoint) Snapshot() *platform.Snapshot { return ck.snap }

// Config returns the model configuration of the captured engine.
func (ck *EngineCheckpoint) Config() Config { return ck.cfg }

// Checkpoint captures the engine's complete dynamic state. It fails if a
// live activity carries a completion callback (closures cannot be
// captured); schedule with nil onDone and read completions through Done
// when checkpointing is intended.
func (e *Engine) Checkpoint() (*EngineCheckpoint, error) {
	for id, slot := range e.slotOf {
		if slot >= 0 && e.arena[slot].onDone != nil {
			return nil, fmt.Errorf("sim: cannot checkpoint: activity %d has a completion callback", id)
		}
	}
	ck := &EngineCheckpoint{
		cfg:    e.cfg,
		snap:   e.snap,
		now:    e.now,
		nextID: e.nextID,
		live:   e.live,
		dirty:  e.dirty,
		events: e.events,

		arena:       make([]activity, len(e.arena)),
		fvOf:        make([]int32, len(e.arena)),
		freeSlots:   append([]int32(nil), e.freeSlots...),
		pendingFree: append([]int32(nil), e.pendingFree...),
		slotOf:      append([]int32(nil), e.slotOf...),
		doneAt:      append([]float64(nil), e.doneAt...),
		heapKey:     append([]float64(nil), e.heapKey...),
		heapSlot:    append([]int32(nil), e.heapSlot...),
		heapPos:     append([]int32(nil), e.heapPos...),

		flow: e.sys.Checkpoint(),
	}
	vidx := make(map[*flow.Variable]int32, len(e.sys.Variables()))
	for i, v := range e.sys.Variables() {
		vidx[v] = int32(i)
	}
	for i, a := range e.arena {
		ck.arena[i] = *a
		ck.arena[i].fv = nil
		ck.arena[i].onDone = nil
		ck.fvOf[i] = -1
		if a.fv != nil {
			ck.fvOf[i] = vidx[a.fv]
		}
	}
	nc := len(e.sys.Constraints())
	ck.cnstLink = make([]int32, nc)
	ck.cnstHost = make([]int32, nc)
	for i := range ck.cnstLink {
		ck.cnstLink[i], ck.cnstHost[i] = -1, -1
	}
	cidx := make(map[*flow.Constraint]int32, nc)
	for i, c := range e.sys.Constraints() {
		cidx[c] = int32(i)
	}
	for ref, c := range e.linkCnst {
		if c != nil {
			ck.cnstLink[cidx[c]] = int32(ref)
		}
	}
	for hi, c := range e.hostCnst {
		if c != nil {
			ck.cnstHost[cidx[c]] = int32(hi)
		}
	}
	return ck, nil
}

// RestoreCheckpoint replaces the engine's dynamic state with the
// checkpoint's. The engine keeps its own snapshot binding — restoring
// into an engine bound to a different epoch of the same compiled topology
// is the fork path (see ForkFrom); restoring into one bound to the
// capture epoch resumes the captured simulation exactly. The engine's
// configuration must equal the captured one, and its snapshot must share
// the checkpoint's topology.
func (e *Engine) RestoreCheckpoint(ck *EngineCheckpoint) error {
	if e.cfg != ck.cfg {
		return fmt.Errorf("sim: restore into engine with different model configuration")
	}
	if !platform.SameTopology(e.snap, ck.snap) {
		return fmt.Errorf("sim: restore across incompatible topologies")
	}
	vars, cnsts := e.sys.Restore(ck.flow)
	clear(e.linkCnst)
	clear(e.hostCnst)
	for i, c := range cnsts {
		if ref := ck.cnstLink[i]; ref >= 0 {
			e.linkCnst[ref] = c
		}
		if hi := ck.cnstHost[i]; hi >= 0 {
			e.hostCnst[hi] = c
		}
	}
	n := len(ck.arena)
	for len(e.arena) < n {
		e.arena = append(e.arena, new(activity))
		e.heapPos = append(e.heapPos, -1)
	}
	e.arena = e.arena[:n]
	e.heapPos = append(e.heapPos[:0], ck.heapPos...)
	for i := 0; i < n; i++ {
		a := e.arena[i]
		*a = ck.arena[i]
		if vi := ck.fvOf[i]; vi >= 0 {
			a.fv = vars[vi]
			a.fv.SetData(a)
		}
	}
	e.freeSlots = append(e.freeSlots[:0], ck.freeSlots...)
	e.pendingFree = append(e.pendingFree[:0], ck.pendingFree...)
	e.slotOf = append(e.slotOf[:0], ck.slotOf...)
	e.doneAt = append(e.doneAt[:0], ck.doneAt...)
	e.heapKey = append(e.heapKey[:0], ck.heapKey...)
	e.heapSlot = append(e.heapSlot[:0], ck.heapSlot...)
	e.due = e.due[:0]
	e.now = ck.now
	e.nextID = ck.nextID
	e.live = ck.live
	e.dirty = ck.dirty
	e.events = ck.events
	return nil
}

// ReconcileCapacities re-asserts every materialized flow constraint's
// capacity from the engine's bound snapshot and returns how many actually
// changed (SetCapacity no-ops on equal values, so unchanged resources
// dirty nothing). After a cross-epoch restore this re-prices the restored
// constraints against the new epoch; the next resharing then re-solves
// only the components the changed capacities disturb. Note that a C0
// checkpoint (taken before the event loop) has no materialized
// constraints — they are created lazily at activation, already reading
// the new snapshot — so reconciliation there is a no-op.
func (e *Engine) ReconcileCapacities() int {
	changed := 0
	for ref, c := range e.linkCnst {
		if c == nil {
			continue
		}
		li := platform.LinkRef(ref).LinkIndex()
		if e.sys.SetCapacity(c, e.snap.LinkBandwidth(li)*e.cfg.BandwidthFactor) {
			changed++
		}
	}
	for hi, c := range e.hostCnst {
		if c == nil {
			continue
		}
		if e.sys.SetCapacity(c, e.snap.HostSpeed(int32(hi))) {
			changed++
		}
	}
	if changed > 0 {
		e.dirty = true
	}
	return changed
}

// ForkFrom acquires a pooled engine bound to snap, restores the base
// checkpoint into it, and reconciles constraint capacities against snap.
// snap must be an epoch of the checkpoint's compiled topology. The caller
// owns the returned engine and must ReleaseEngine it.
//
// Forking is bit-identical to a cold run on snap only when the checkpoint
// was captured before the event loop (no activity past phaseScheduled)
// and snap differs from the capture epoch solely in link bandwidths of
// up-in-both links — the conditions package pilgrim's delta classifier
// checks before choosing this path. Forks outside those conditions still
// run, but are approximations (rate history is not replayed).
func ForkFrom(ck *EngineCheckpoint, snap *platform.Snapshot) (*Engine, error) {
	e := AcquireEngineSnapshot(snap, ck.cfg)
	if err := e.RestoreCheckpoint(ck); err != nil {
		ReleaseEngine(e)
		return nil, err
	}
	e.ReconcileCapacities()
	return e, nil
}
