package sim

// This file retains a scan-based reference implementation of the event
// kernel and pits the production indexed-heap engine against it on
// randomized workloads. The reference uses the same lazy-progress
// arithmetic (remaining settled only on rate changes, absolute projected
// event dates) but finds and processes events by scanning every live
// activity — the O(n) structure the heap replaced. Completion dates and
// SharingStats must match the heap engine bit for bit: any divergence
// means the heap indexing, tie-breaking or re-keying machinery changed
// the simulation, not just its complexity.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"pilgrim/internal/flow"
	"pilgrim/internal/platform"
)

// refActivity mirrors activity for the scan-based reference kernel.
type refActivity struct {
	id         ActivityID
	kind       activityKind
	phase      activityPhase
	persistent bool

	start      float64
	latLeft    float64
	remaining  float64
	lastUpdate float64
	rate       float64
	eventAt    float64 // absolute next-event date (latency end / completion)

	links  []platform.LinkUse
	weight float64
	bound  float64
	host   *platform.Host

	fv       *flow.Variable
	finished float64
	onDone   func(now float64)
}

// refConstraintKey is the historical map key addressing shared resources
// by pointer — the representation the production engine's dense
// link/host-index arrays replaced.
type refConstraintKey struct {
	link *platform.Link
	dir  platform.Direction
	host *platform.Host
}

// refEngine is the scan-based kernel: same model, same arithmetic, O(n)
// event search and O(n) event processing per step.
type refEngine struct {
	cfg   Config
	plat  *platform.Platform
	now   float64
	acts  []*refActivity // id order
	dirty bool
	sys   *flow.System
	cnsts map[refConstraintKey]*flow.Constraint

	events int
}

func newRefEngine(plat *platform.Platform, cfg Config) *refEngine {
	return &refEngine{
		cfg:   cfg,
		plat:  plat,
		sys:   flow.NewSystem(),
		cnsts: make(map[refConstraintKey]*flow.Constraint),
	}
}

func (e *refEngine) addComm(src, dst string, size, start float64, onDone func(float64)) (ActivityID, error) {
	route, err := e.plat.RouteBetween(src, dst)
	if err != nil {
		return 0, err
	}
	a := &refActivity{
		id:        ActivityID(len(e.acts)),
		kind:      commActivity,
		phase:     phaseScheduled,
		start:     start,
		latLeft:   e.cfg.LatencyFactor * route.Latency,
		remaining: size,
		links:     route.Links,
		weight:    1 / e.cfg.rttWeight(route.Latency),
		bound:     e.cfg.windowBound(route.Latency),
		onDone:    onDone,
	}
	e.acts = append(e.acts, a)
	e.dirty = true
	return a.id, nil
}

func (e *refEngine) addBackgroundFlow(src, dst string, start float64) (ActivityID, error) {
	id, err := e.addComm(src, dst, math.MaxFloat64/4, start, nil)
	if err != nil {
		return 0, err
	}
	e.acts[id].persistent = true
	return id, nil
}

func (e *refEngine) removeBackgroundFlow(id ActivityID) {
	a := e.acts[id]
	a.phase = phaseDone
	a.finished = e.now
	e.deactivate(a)
}

func (e *refEngine) addExec(host string, flops, start float64, onDone func(float64)) (ActivityID, error) {
	h := e.plat.Host(host)
	if h == nil {
		return 0, fmt.Errorf("ref: unknown host %q", host)
	}
	a := &refActivity{
		id:        ActivityID(len(e.acts)),
		kind:      execActivity,
		phase:     phaseScheduled,
		start:     start,
		remaining: flops,
		host:      h,
		onDone:    onDone,
	}
	e.acts = append(e.acts, a)
	e.dirty = true
	return a.id, nil
}

func (e *refEngine) addTimer(duration, start float64, onDone func(float64)) ActivityID {
	a := &refActivity{
		id:        ActivityID(len(e.acts)),
		kind:      timerActivity,
		phase:     phaseScheduled,
		start:     start,
		remaining: duration,
		rate:      1,
		onDone:    onDone,
	}
	e.acts = append(e.acts, a)
	e.dirty = true
	return a.id
}

func (e *refEngine) constraintFor(k refConstraintKey, capacity float64) *flow.Constraint {
	if c, ok := e.cnsts[k]; ok {
		return c
	}
	id := "cpu:"
	if k.host == nil {
		id = k.link.ID + ":" + k.dir.String()
	} else {
		id += k.host.ID
	}
	c := e.sys.NewConstraint(id, capacity)
	e.cnsts[k] = c
	return c
}

func (e *refEngine) activate(a *refActivity) {
	a.phase = phaseActive
	a.lastUpdate = e.now
	switch a.kind {
	case commActivity:
		bound := a.bound
		for _, u := range a.links {
			if u.Link.Policy == platform.Fatpipe {
				cap := u.Link.Bandwidth * e.cfg.BandwidthFactor
				if bound == 0 || cap < bound {
					bound = cap
				}
			}
		}
		v := e.sys.NewVariable("", a.weight, bound)
		v.SetData(a)
		a.fv = v
		a.rate = 0
		a.eventAt = math.Inf(1)
		for _, u := range a.links {
			switch u.Link.Policy {
			case platform.Shared:
				c := e.constraintFor(refConstraintKey{link: u.Link, dir: platform.None},
					u.Link.Bandwidth*e.cfg.BandwidthFactor)
				if err := e.sys.Attach(v, c); err != nil {
					continue
				}
			case platform.FullDuplex:
				dir := u.Direction
				if dir == platform.None {
					dir = platform.Up
				}
				c := e.constraintFor(refConstraintKey{link: u.Link, dir: dir},
					u.Link.Bandwidth*e.cfg.BandwidthFactor)
				if err := e.sys.Attach(v, c); err != nil {
					continue
				}
			}
		}
	case execActivity:
		v := e.sys.NewVariable("", 1, 0)
		v.SetData(a)
		a.fv = v
		a.rate = 0
		a.eventAt = math.Inf(1)
		c := e.constraintFor(refConstraintKey{host: a.host}, a.host.Speed)
		e.sys.MustAttach(v, c)
	case timerActivity:
		a.eventAt = e.now + a.remaining
	}
	e.dirty = true
}

func (e *refEngine) deactivate(a *refActivity) {
	if a.fv != nil {
		e.sys.RemoveVariable(a.fv)
		a.fv = nil
	}
	e.dirty = true
}

func (e *refEngine) reshare() error {
	e.events++
	if err := e.sys.Solve(); err != nil {
		return err
	}
	for _, v := range e.sys.Touched() {
		a, _ := v.Data().(*refActivity)
		if a == nil {
			continue
		}
		r := v.Rate()
		if r == a.rate {
			continue
		}
		if a.phase != phaseActive || a.persistent {
			a.rate = r
			continue
		}
		if e.now > a.lastUpdate {
			a.remaining -= a.rate * (e.now - a.lastUpdate)
			if a.remaining < 0 {
				a.remaining = 0
			}
		}
		a.lastUpdate = e.now
		a.rate = r
		a.eventAt = math.Inf(1)
		if r > 0 {
			a.eventAt = e.now + a.remaining/r
		}
	}
	e.dirty = false
	return nil
}

// key returns the activity's next-event date, +Inf when none.
func (a *refActivity) key() float64 {
	switch a.phase {
	case phaseScheduled:
		return a.start
	case phaseLatency:
		return a.eventAt
	case phaseActive:
		if a.persistent {
			return math.Inf(1)
		}
		return a.eventAt
	}
	return math.Inf(1)
}

func (e *refEngine) step() (completed []ActivityID, ok bool, err error) {
	if e.dirty {
		if err := e.reshare(); err != nil {
			return nil, false, err
		}
	}
	t := math.Inf(1)
	for _, a := range e.acts {
		if k := a.key(); k < t {
			t = k
		}
	}
	if math.IsInf(t, 1) {
		for _, a := range e.acts {
			if a.phase == phaseActive && !a.persistent && a.rate <= 0 {
				return nil, false, fmt.Errorf("ref: activity %d stalled", a.id)
			}
		}
		return nil, false, nil
	}
	e.now = t
	for _, a := range e.acts {
		if a.key() != t {
			continue
		}
		switch a.phase {
		case phaseScheduled:
			if a.kind == commActivity && a.latLeft > 0 {
				a.phase = phaseLatency
				a.eventAt = e.now + a.latLeft
			} else {
				e.activate(a)
			}
		case phaseLatency:
			a.latLeft = 0
			e.activate(a)
		case phaseActive:
			a.remaining = 0
			a.phase = phaseDone
			a.finished = e.now
			e.deactivate(a)
			completed = append(completed, a.id)
			if a.onDone != nil {
				a.onDone(e.now)
			}
		}
	}
	return completed, true, nil
}

func (e *refEngine) runToCompletion() (int, error) {
	total, steps := 0, 0
	for {
		done, ok, err := e.step()
		if err != nil {
			return total, err
		}
		total += len(done)
		if !ok {
			return total, nil
		}
		if steps++; steps > 100*(len(e.acts)+10) {
			return total, fmt.Errorf("ref: event budget exhausted at t=%v", e.now)
		}
	}
}

// buildRandomPlatform creates a star topology: every host owns an up and
// a down private link to a shared backbone, with randomized capacities,
// latencies and sharing policies.
func buildRandomPlatform(t *testing.T, rng *rand.Rand, hosts int) *platform.Platform {
	t.Helper()
	p := platform.New("root", platform.RoutingFull)
	as := p.Root()
	policies := []platform.SharingPolicy{platform.Shared, platform.FullDuplex, platform.Fatpipe}
	bb, err := as.AddLink("bb", 1e9*(0.5+rng.Float64()), 1e-4*rng.Float64(), platform.Shared)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, hosts)
	ups := make([]*platform.Link, hosts)
	downs := make([]*platform.Link, hosts)
	for i := 0; i < hosts; i++ {
		names[i] = fmt.Sprintf("h%d", i)
		if _, err := as.AddHost(names[i], 1e9*(0.5+rng.Float64())); err != nil {
			t.Fatal(err)
		}
		ups[i], err = as.AddLink(fmt.Sprintf("up%d", i),
			1e8*(0.2+rng.Float64()), 1e-3*rng.Float64(), policies[rng.Intn(len(policies))])
		if err != nil {
			t.Fatal(err)
		}
		downs[i], err = as.AddLink(fmt.Sprintf("down%d", i),
			1e8*(0.2+rng.Float64()), 1e-3*rng.Float64(), policies[rng.Intn(len(policies))])
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < hosts; i++ {
		for j := 0; j < hosts; j++ {
			if i == j {
				continue
			}
			route := []platform.LinkUse{
				{Link: ups[i], Direction: platform.Up},
				{Link: bb, Direction: platform.None},
				{Link: downs[j], Direction: platform.Down},
			}
			if err := as.AddRoute(names[i], names[j], route, false); err != nil {
				t.Fatal(err)
			}
		}
	}
	return p
}

// refWorkload drives both engines identically: concurrent transfers with
// random sizes and starts, execs, sleeping timers, background flows that
// appear and are withdrawn mid-run, and completion-chained follow-ups.
type refWorkload struct {
	comms  []Transfer
	execs  []Transfer // Src = host, Size = flops
	bgOff  float64    // date the background flow is withdrawn
	bgPair [2]string
	chain  Transfer // extra transfer launched when comms[0] completes
}

func randomWorkload(rng *rand.Rand, hosts int) refWorkload {
	name := func(i int) string { return fmt.Sprintf("h%d", i) }
	pair := func() (string, string) {
		a := rng.Intn(hosts)
		b := rng.Intn(hosts - 1)
		if b >= a {
			b++
		}
		return name(a), name(b)
	}
	var w refWorkload
	n := 3 + rng.Intn(10)
	for i := 0; i < n; i++ {
		src, dst := pair()
		w.comms = append(w.comms, Transfer{
			Src: src, Dst: dst,
			Size:  math.Exp(rng.Float64()*9) * 1e4,
			Start: float64(rng.Intn(3)) * rng.Float64(),
		})
	}
	for i := 0; i < 1+rng.Intn(3); i++ {
		w.execs = append(w.execs, Transfer{Src: name(rng.Intn(hosts)), Size: 1e8 * (0.5 + rng.Float64())})
	}
	w.bgPair[0], w.bgPair[1] = pair()
	w.bgOff = 0.5 + rng.Float64()
	src, dst := pair()
	w.chain = Transfer{Src: src, Dst: dst, Size: 1e6 * (1 + rng.Float64())}
	return w
}

// runWorkload drives one kernel through the workload using the closures
// the caller wires to it, returning per-comm completion dates.
type kernelOps struct {
	addComm  func(src, dst string, size, start float64, onDone func(float64)) (ActivityID, error)
	addExec  func(host string, flops, start float64, onDone func(float64)) (ActivityID, error)
	addTimer func(duration, start float64, onDone func(float64)) (ActivityID, error)
	addBG    func(src, dst string, start float64) (ActivityID, error)
	removeBG func(ActivityID) error
	run      func() (int, error)
}

func runWorkload(t *testing.T, w refWorkload, ops kernelOps) (dates []float64, chainDate float64) {
	t.Helper()
	dates = make([]float64, len(w.comms))
	bgID, err := ops.addBG(w.bgPair[0], w.bgPair[1], 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ops.addTimer(w.bgOff, 0, func(now float64) {
		if err := ops.removeBG(bgID); err != nil {
			t.Errorf("removeBG: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	for i, c := range w.comms {
		i, c := i, c
		onDone := func(now float64) { dates[i] = now }
		if i == 0 {
			onDone = func(now float64) {
				dates[0] = now
				if _, err := ops.addComm(w.chain.Src, w.chain.Dst, w.chain.Size, now,
					func(n2 float64) { chainDate = n2 }); err != nil {
					t.Errorf("chain: %v", err)
				}
			}
		}
		if _, err := ops.addComm(c.Src, c.Dst, c.Size, c.Start, onDone); err != nil {
			t.Fatal(err)
		}
	}
	for _, x := range w.execs {
		if _, err := ops.addExec(x.Src, x.Size, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ops.run(); err != nil {
		t.Fatal(err)
	}
	return dates, chainDate
}

// TestHeapKernelMatchesScanReference is the differential property test:
// on randomized platforms and workloads, the indexed-heap kernel must
// reproduce the scan-based reference's completion dates and SharingStats
// exactly (bit-for-bit), including background-flow churn and mid-run
// activity chaining.
func TestHeapKernelMatchesScanReference(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			hosts := 3 + rng.Intn(6)
			plat := buildRandomPlatform(t, rng, hosts)
			w := randomWorkload(rng, hosts)
			cfg := DefaultConfig()
			if rng.Intn(2) == 0 {
				cfg.TCPGamma = 0 // exercise the unbounded-variable path too
			}

			eng := NewEngine(plat, cfg)
			engDates, engChain := runWorkload(t, w, kernelOps{
				addComm:  eng.AddComm,
				addExec:  eng.AddExec,
				addTimer: eng.AddTimer,
				addBG:    eng.AddBackgroundFlow,
				removeBG: eng.RemoveBackgroundFlow,
				run:      eng.RunToCompletion,
			})

			ref := newRefEngine(plat, cfg)
			refDates, refChain := runWorkload(t, w, kernelOps{
				addComm: ref.addComm,
				addExec: ref.addExec,
				addTimer: func(d, s float64, f func(float64)) (ActivityID, error) {
					return ref.addTimer(d, s, f), nil
				},
				addBG: ref.addBackgroundFlow,
				removeBG: func(id ActivityID) error {
					ref.removeBackgroundFlow(id)
					return nil
				},
				run: ref.runToCompletion,
			})

			for i := range engDates {
				if engDates[i] != refDates[i] {
					t.Errorf("comm %d: heap=%v (bits %x) ref=%v (bits %x)",
						i, engDates[i], math.Float64bits(engDates[i]),
						refDates[i], math.Float64bits(refDates[i]))
				}
			}
			if engChain != refChain {
				t.Errorf("chained comm: heap=%v ref=%v", engChain, refChain)
			}
			if eng.Resharings() != ref.events {
				t.Errorf("resharings: heap=%d ref=%d", eng.Resharings(), ref.events)
			}
			es, rs := eng.SharingStats(), ref.sys
			if es.VariablesTouched != rs.TotalTouched() || es.LastTouched != rs.LastTouched() {
				t.Errorf("sharing stats: heap=%+v ref total=%d last=%d",
					es, rs.TotalTouched(), rs.LastTouched())
			}
		})
	}
}

// TestEnginePoolReuseAfterAbandonedRun is a regression test: releasing
// an engine mid-run (live activities still in flight, as PredictTransfers
// does on error paths) must leave no stale arena state behind — the next,
// smaller run on the recycled engine used to panic in the empty-heap
// stall scan when a stale activity id indexed the truncated slotOf slice.
func TestEnginePoolReuseAfterAbandonedRun(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	plat := buildRandomPlatform(t, rng, 7)
	cfg := DefaultConfig()

	e := AcquireEngine(plat, cfg)
	for i := 0; i < 6; i++ {
		if _, err := e.AddComm(fmt.Sprintf("h%d", i), fmt.Sprintf("h%d", i+1), 1e8, 0, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Step until a flow with id >= 1 sits freshly activated (rate still
	// 0, its resharing pending) — the stale state whose id would index
	// past run 2's shorter slotOf — then abandon the run mid-flight.
	staleActive := false
	for i := 0; i < 20 && !staleActive; i++ {
		if _, _, err := e.Step(); err != nil {
			t.Fatal(err)
		}
		for _, a := range e.arena {
			if a.id >= 1 && a.phase == phaseActive && a.rate <= 0 {
				staleActive = true
			}
		}
	}
	if !staleActive {
		t.Fatal("precondition not reached: no freshly-activated high-id flow to leave behind")
	}
	ReleaseEngine(e)

	e = AcquireEngine(plat, cfg)
	defer ReleaseEngine(e)
	if _, err := e.AddComm("h0", "h1", 1e6, 0, nil); err != nil {
		t.Fatal(err)
	}
	n, err := e.RunToCompletion()
	if err != nil || n != 1 {
		t.Fatalf("recycled run: n=%d err=%v", n, err)
	}
}

// TestEnginePoolBitIdentical checks that a recycled engine reproduces a
// fresh engine's results exactly: the pool must be invisible except to
// the allocator.
func TestEnginePoolBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	plat := buildRandomPlatform(t, rng, 6)
	w := randomWorkload(rng, 6)
	cfg := DefaultConfig()

	run := func(e *Engine) ([]float64, float64, int) {
		dates, chain := runWorkload(t, w, kernelOps{
			addComm:  e.AddComm,
			addExec:  e.AddExec,
			addTimer: e.AddTimer,
			addBG:    e.AddBackgroundFlow,
			removeBG: e.RemoveBackgroundFlow,
			run:      e.RunToCompletion,
		})
		return dates, chain, e.Resharings()
	}

	fresh := NewEngine(plat, cfg)
	fd, fc, fr := run(fresh)

	// Churn the pool: acquire, run, release, then run the real comparison
	// on a recycled engine.
	warm := AcquireEngine(plat, cfg)
	run(warm)
	ReleaseEngine(warm)
	recycled := AcquireEngine(plat, cfg)
	defer ReleaseEngine(recycled)
	rd, rc, rr := run(recycled)

	for i := range fd {
		if fd[i] != rd[i] {
			t.Errorf("comm %d: fresh=%v recycled=%v", i, fd[i], rd[i])
		}
	}
	if fc != rc || fr != rr {
		t.Errorf("fresh (chain=%v resharings=%d) vs recycled (chain=%v resharings=%d)", fc, fr, rc, rr)
	}
}
