package sim

import (
	"math"
	"testing"
	"testing/quick"

	"pilgrim/internal/platform"
	"pilgrim/internal/stats"
)

// buildPair builds two hosts joined by a single shared link.
func buildPair(t testing.TB, bw, lat float64) *platform.Platform {
	t.Helper()
	p := platform.New("root", platform.RoutingFull)
	as := p.Root()
	if _, err := as.AddHost("a", 1e9); err != nil {
		t.Fatal(err)
	}
	if _, err := as.AddHost("b", 1e9); err != nil {
		t.Fatal(err)
	}
	l, err := as.AddLink("l", bw, lat, platform.Shared)
	if err != nil {
		t.Fatal(err)
	}
	if err := as.AddRoute("a", "b", []platform.LinkUse{{Link: l, Direction: platform.None}}, true); err != nil {
		t.Fatal(err)
	}
	return p
}

// buildLyonNancy reproduces the paper's worked-example topology (§IV-C2):
// two Lyon nodes and one Nancy node, 1 Gb/s shared access links with
// 1e-4 s latency, a 10 Gb/s full-duplex backbone with 2.25e-3 s latency.
func buildLyonNancy(t testing.TB) *platform.Platform {
	t.Helper()
	p := platform.New("AS_g5k", platform.RoutingFull)
	root := p.Root()
	lyon, err := root.AddAS("AS_lyon", platform.RoutingFull)
	if err != nil {
		t.Fatal(err)
	}
	nancy, err := root.AddAS("AS_nancy", platform.RoutingFull)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lyon.AddRouter("gw.lyon"); err != nil {
		t.Fatal(err)
	}
	if _, err := nancy.AddRouter("gw.nancy"); err != nil {
		t.Fatal(err)
	}
	addNode := func(as *platform.AS, name, gw string) {
		if _, err := as.AddHost(name, 1e9); err != nil {
			t.Fatal(err)
		}
		l, err := as.AddLink(name+"_nic", 125e6, 1e-4, platform.Shared)
		if err != nil {
			t.Fatal(err)
		}
		if err := as.AddRoute(name, gw, []platform.LinkUse{{Link: l, Direction: platform.Up}}, true); err != nil {
			t.Fatal(err)
		}
	}
	addNode(lyon, "capricorne-36", "gw.lyon")
	addNode(lyon, "capricorne-1", "gw.lyon")
	addNode(nancy, "griffon-50", "gw.nancy")
	// Intra-Lyon host-to-host route via the two NICs.
	c36 := p.Link("capricorne-36_nic")
	c1 := p.Link("capricorne-1_nic")
	if err := lyon.AddRoute("capricorne-36", "capricorne-1",
		[]platform.LinkUse{{Link: c36, Direction: platform.Up}, {Link: c1, Direction: platform.Down}}, true); err != nil {
		t.Fatal(err)
	}
	bb, err := root.AddLink("bb", 1.25e9, 2.25e-3, platform.FullDuplex)
	if err != nil {
		t.Fatal(err)
	}
	if err := root.AddASRoute("AS_lyon", "gw.lyon", "AS_nancy", "gw.nancy",
		[]platform.LinkUse{{Link: bb, Direction: platform.Up}}, true); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSingleTransferDuration(t *testing.T) {
	// One flow on an idle 125 MB/s link, latency 1e-4:
	// duration = 10.4*1e-4 + size/(0.92*125e6).
	p := buildPair(t, 125e6, 1e-4)
	cfg := DefaultConfig()
	res, err := Predict(p, cfg, []Transfer{{Src: "a", Dst: "b", Size: 1e9}})
	if err != nil {
		t.Fatal(err)
	}
	want := 10.4*1e-4 + 1e9/(0.92*125e6)
	if math.Abs(res[0].Duration-want)/want > 1e-6 {
		t.Errorf("duration = %v, want %v", res[0].Duration, want)
	}
}

func TestWindowBoundLimitsLongPath(t *testing.T) {
	// High-latency path: rate capped at gamma/(2*RTT_raw).
	p := buildPair(t, 1.25e9, 10e-3) // 10 Gb/s, 10 ms
	cfg := DefaultConfig()
	res, err := Predict(p, cfg, []Transfer{{Src: "a", Dst: "b", Size: 1e9}})
	if err != nil {
		t.Fatal(err)
	}
	bound := 4194304 / (2 * 2 * 10e-3) // 104.9 MB/s
	want := 10.4*10e-3 + 1e9/bound
	if math.Abs(res[0].Duration-want)/want > 1e-6 {
		t.Errorf("duration = %v, want %v", res[0].Duration, want)
	}
}

func TestTwoFlowsShareEvenly(t *testing.T) {
	// Same RTT -> equal shares; both finish together at 2x solo time
	// (plus latency).
	p := buildPair(t, 100e6, 1e-4)
	cfg := DefaultConfig()
	cfg.TCPGamma = 0 // isolate sharing behaviour
	res, err := Predict(p, cfg, []Transfer{
		{Src: "a", Dst: "b", Size: 4.6e8},
		{Src: "a", Dst: "b", Size: 4.6e8},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 10.4*1e-4 + 4.6e8/(0.92*100e6/2)
	for i, r := range res {
		if math.Abs(r.Duration-want)/want > 1e-6 {
			t.Errorf("flow %d duration = %v, want %v", i, r.Duration, want)
		}
	}
}

func TestShorterFlowReleasesBandwidth(t *testing.T) {
	// A short and a long flow: after the short one finishes the long one
	// speeds up. Closed form (ignoring latency, gamma off):
	// cap C=92e6; both at 46e6 until short (46e6 bytes) is done at t1=1s;
	// long transferred 46e6 of 138e6, remaining 92e6 at 92e6 -> 1s more.
	p := buildPair(t, 100e6, 0)
	cfg := DefaultConfig()
	cfg.TCPGamma = 0
	res, err := Predict(p, cfg, []Transfer{
		{Src: "a", Dst: "b", Size: 46e6},
		{Src: "a", Dst: "b", Size: 138e6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res[0].Duration-1) > 1e-6 {
		t.Errorf("short = %v, want 1", res[0].Duration)
	}
	if math.Abs(res[1].Duration-2) > 1e-6 {
		t.Errorf("long = %v, want 2", res[1].Duration)
	}
}

func TestRTTAwareSharing(t *testing.T) {
	// Two flows from a through the same NIC: one to a nearby host, one
	// far. Shares must be proportional to 1/RTT.
	p := platform.New("root", platform.RoutingFull)
	as := p.Root()
	for _, h := range []string{"src", "near", "far"} {
		if _, err := as.AddHost(h, 1e9); err != nil {
			t.Fatal(err)
		}
	}
	nic, _ := as.AddLink("nic", 125e6, 1e-4, platform.Shared)
	farlink, _ := as.AddLink("farlink", 1.25e9, 9e-4, platform.Shared)
	if err := as.AddRoute("src", "near", []platform.LinkUse{{Link: nic, Direction: platform.None}}, true); err != nil {
		t.Fatal(err)
	}
	if err := as.AddRoute("src", "far",
		[]platform.LinkUse{{Link: nic, Direction: platform.None}, {Link: farlink, Direction: platform.None}}, true); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.TCPGamma = 0

	// Measure instantaneous shares via a long simulation where both stay
	// active: give both huge equal sizes; the near flow (RTT 2*10.4*1e-4)
	// must finish ~10x faster than the far flow (RTT 2*10.4*1e-3).
	res, err := Predict(p, cfg, []Transfer{
		{Src: "src", Dst: "near", Size: 1e9},
		{Src: "src", Dst: "far", Size: 1e9},
	})
	if err != nil {
		t.Fatal(err)
	}
	// near weight 10x far weight -> near gets 10/11 of NIC.
	nearRate := 0.92 * 125e6 * 10 / 11
	wantNear := 10.4*1e-4 + 1e9/nearRate
	if math.Abs(res[0].Duration-wantNear)/wantNear > 0.02 {
		t.Errorf("near duration = %v, want ~%v", res[0].Duration, wantNear)
	}
	// While sharing, the far flow got 1/11 of the NIC; after the near
	// flow finishes it ramps to full rate: closed form ~17.4 s vs 9.57.
	if ratio := res[1].Duration / res[0].Duration; ratio < 1.5 || ratio > 2.2 {
		t.Errorf("far/near ratio = %v, want ~1.8 (RTT-aware sharing)", ratio)
	}
}

// TestPaperWorkedExample reproduces the PNFS example of §IV-C2: two
// concurrent 500 MB transfers from capricorne-36 (Lyon), one to
// griffon-50 (Nancy), one to capricorne-1 (Lyon). The paper's SimGrid
// predicted 16.0044 s and 4.76841 s. With GammaUsesLatencyFactor (the
// configuration the paper's numbers imply) our fluid model must land
// within 2.5% of both.
func TestPaperWorkedExample(t *testing.T) {
	p := buildLyonNancy(t)
	cfg := DefaultConfig()
	cfg.GammaUsesLatencyFactor = true
	res, err := Predict(p, cfg, []Transfer{
		{Src: "capricorne-36", Dst: "griffon-50", Size: 5e8},
		{Src: "capricorne-36", Dst: "capricorne-1", Size: 5e8},
	})
	if err != nil {
		t.Fatal(err)
	}
	cross, intra := res[0].Duration, res[1].Duration
	if math.Abs(cross-16.0044)/16.0044 > 0.025 {
		t.Errorf("cross-site duration = %.4f s, paper 16.0044 s (>2.5%% off)", cross)
	}
	if math.Abs(intra-4.76841)/4.76841 > 0.025 {
		t.Errorf("intra-site duration = %.4f s, paper 4.76841 s (>2.5%% off)", intra)
	}
	// Order sanity: the intra transfer must win by a wide margin.
	if intra > cross/2 {
		t.Errorf("intra %.2f should be well under half of cross %.2f", intra, cross)
	}
}

func TestStaggeredStarts(t *testing.T) {
	// Second flow starts after the first finished: no interaction.
	p := buildPair(t, 100e6, 0)
	cfg := DefaultConfig()
	cfg.TCPGamma = 0
	s := NewSimulation(p, cfg)
	s.AddTransferAt("a", "b", 92e6, 0)  // takes 1s alone
	s.AddTransferAt("a", "b", 92e6, 10) // starts at 10, takes 1s
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res[0].Duration-1) > 1e-6 {
		t.Errorf("first = %v", res[0].Duration)
	}
	if math.Abs(res[1].Duration-1) > 1e-6 {
		t.Errorf("second = %v (should be unaffected)", res[1].Duration)
	}
	if math.Abs(res[1].Completion-11) > 1e-6 {
		t.Errorf("second completion = %v, want 11", res[1].Completion)
	}
}

func TestBackgroundFlowSlowsTransfer(t *testing.T) {
	p := buildPair(t, 100e6, 1e-4)
	cfg := DefaultConfig()
	cfg.TCPGamma = 0

	solo, err := Predict(p, cfg, []Transfer{{Src: "a", Dst: "b", Size: 92e6}})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSimulation(p, cfg)
	s.AddTransfer("a", "b", 92e6)
	s.AddBackgroundFlow("b", "a")
	loaded, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Shared link: the background flow halves the share (equal RTT).
	ratio := loaded[0].Duration / solo[0].Duration
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("background flow ratio = %v, want ~2", ratio)
	}
}

func TestFullDuplexIndependence(t *testing.T) {
	// Opposite flows on a full-duplex link must not contend; on a shared
	// link they must.
	build := func(pol platform.SharingPolicy) *platform.Platform {
		p := platform.New("root", platform.RoutingFull)
		as := p.Root()
		as.AddHost("a", 1e9)
		as.AddHost("b", 1e9)
		l, _ := as.AddLink("l", 100e6, 0, pol)
		as.AddRoute("a", "b", []platform.LinkUse{{Link: l, Direction: platform.Up}}, true)
		return p
	}
	cfg := DefaultConfig()
	cfg.TCPGamma = 0
	transfers := []Transfer{
		{Src: "a", Dst: "b", Size: 92e6},
		{Src: "b", Dst: "a", Size: 92e6},
	}

	full, err := Predict(build(platform.FullDuplex), cfg, transfers)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full[0].Duration-1) > 1e-6 || math.Abs(full[1].Duration-1) > 1e-6 {
		t.Errorf("full duplex durations = %v, %v, want 1, 1", full[0].Duration, full[1].Duration)
	}

	shared, err := Predict(build(platform.Shared), cfg, transfers)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(shared[0].Duration-2) > 1e-6 || math.Abs(shared[1].Duration-2) > 1e-6 {
		t.Errorf("shared durations = %v, %v, want 2, 2", shared[0].Duration, shared[1].Duration)
	}
}

func TestFatpipeNoContention(t *testing.T) {
	p := platform.New("root", platform.RoutingFull)
	as := p.Root()
	as.AddHost("a", 1e9)
	as.AddHost("b", 1e9)
	l, _ := as.AddLink("fat", 100e6, 0, platform.Fatpipe)
	as.AddRoute("a", "b", []platform.LinkUse{{Link: l, Direction: platform.None}}, true)
	cfg := DefaultConfig()
	cfg.TCPGamma = 0
	res, err := Predict(p, cfg, []Transfer{
		{Src: "a", Dst: "b", Size: 92e6},
		{Src: "a", Dst: "b", Size: 92e6},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each flow individually bounded at 92e6 B/s, no sharing: both 1s.
	for i, r := range res {
		if math.Abs(r.Duration-1) > 1e-6 {
			t.Errorf("fatpipe flow %d = %v, want 1", i, r.Duration)
		}
	}
}

func TestInvalidTransfers(t *testing.T) {
	p := buildPair(t, 1e8, 0)
	if _, err := Predict(p, DefaultConfig(), []Transfer{{Src: "a", Dst: "nope", Size: 1}}); err == nil {
		t.Error("unknown destination accepted")
	}
	if _, err := Predict(p, DefaultConfig(), []Transfer{{Src: "a", Dst: "b", Size: -5}}); err == nil {
		t.Error("negative size accepted")
	}
	if _, err := Predict(p, DefaultConfig(), []Transfer{{Src: "a", Dst: "a", Size: 5}}); err == nil {
		t.Error("self transfer accepted")
	}
}

func TestRunTwiceFails(t *testing.T) {
	p := buildPair(t, 1e8, 0)
	s := NewSimulation(p, DefaultConfig())
	s.AddTransfer("a", "b", 1e6)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Error("second Run accepted")
	}
}

func TestEngineExecSharing(t *testing.T) {
	p := buildPair(t, 1e8, 0)
	e := NewEngine(p, DefaultConfig())
	var t1, t2 float64
	if _, err := e.AddExec("a", 1e9, 0, func(now float64) { t1 = now }); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddExec("a", 1e9, 0, func(now float64) { t2 = now }); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	// Two 1 Gflop tasks sharing a 1 Gflop/s host: both end at t=2.
	if math.Abs(t1-2) > 1e-9 || math.Abs(t2-2) > 1e-9 {
		t.Errorf("exec completions = %v, %v, want 2, 2", t1, t2)
	}
}

func TestEngineTimer(t *testing.T) {
	p := buildPair(t, 1e8, 0)
	e := NewEngine(p, DefaultConfig())
	var fired float64
	if _, err := e.AddTimer(3.5, 1.0, func(now float64) { fired = now }); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(fired-4.5) > 1e-9 {
		t.Errorf("timer fired at %v, want 4.5", fired)
	}
}

func TestEngineRejectsPastStart(t *testing.T) {
	p := buildPair(t, 1e8, 0)
	e := NewEngine(p, DefaultConfig())
	if _, err := e.AddComm("a", "b", 1e6, 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddComm("a", "b", 1e6, 0, nil); err == nil {
		t.Error("past start date accepted")
	}
}

func TestRemoveBackgroundFlow(t *testing.T) {
	p := buildPair(t, 100e6, 0)
	cfg := DefaultConfig()
	cfg.TCPGamma = 0
	e := NewEngine(p, cfg)
	id, err := e.AddBackgroundFlow("b", "a", 0)
	if err != nil {
		t.Fatal(err)
	}
	var done float64
	if _, err := e.AddComm("a", "b", 92e6, 0, func(now float64) { done = now }); err != nil {
		t.Fatal(err)
	}
	// Run a few steps then drop the background flow; expect duration
	// between 1s (no contention) and 2s (full contention).
	if _, _, err := e.Step(); err != nil {
		t.Fatal(err)
	}
	if err := e.RemoveBackgroundFlow(id); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(done-1) > 1e-6 {
		t.Errorf("duration with removed background = %v, want ~1", done)
	}
	if err := e.RemoveBackgroundFlow(id); err == nil {
		t.Error("double removal accepted")
	}
	if err := e.RemoveBackgroundFlow(9999); err == nil {
		t.Error("bogus id accepted")
	}
}

// Property: on a single shared link with gamma off and zero latency,
// total transferred bytes equal capacity * makespan (work conservation).
func TestWorkConservation(t *testing.T) {
	f := func(seed int64) bool {
		g := stats.NewRNG(seed)
		n := 1 + g.Intn(8)
		p := platform.New("root", platform.RoutingFull)
		as := p.Root()
		as.AddHost("a", 1e9)
		as.AddHost("b", 1e9)
		l, _ := as.AddLink("l", 100e6, 0, platform.Shared)
		as.AddRoute("a", "b", []platform.LinkUse{{Link: l, Direction: platform.None}}, true)
		cfg := DefaultConfig()
		cfg.TCPGamma = 0
		var transfers []Transfer
		total := 0.0
		for i := 0; i < n; i++ {
			size := 1e6 + g.Float64()*1e8
			total += size
			transfers = append(transfers, Transfer{Src: "a", Dst: "b", Size: size})
		}
		res, err := Predict(p, cfg, transfers)
		if err != nil {
			return false
		}
		makespan := 0.0
		for _, r := range res {
			if r.Completion > makespan {
				makespan = r.Completion
			}
		}
		want := total / (0.92 * 100e6)
		return math.Abs(makespan-want)/want < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: adding a concurrent transfer never speeds up existing ones.
func TestContentionNeverHelps(t *testing.T) {
	f := func(seed int64) bool {
		g := stats.NewRNG(seed)
		p := buildPair(t, 100e6, 1e-4)
		cfg := DefaultConfig()
		base := []Transfer{{Src: "a", Dst: "b", Size: 1e6 + g.Float64()*1e8}}
		solo, err := Predict(p, cfg, base)
		if err != nil {
			return false
		}
		crowd := append(base, Transfer{Src: "a", Dst: "b", Size: 1e6 + g.Float64()*1e8})
		both, err := Predict(p, cfg, crowd)
		if err != nil {
			return false
		}
		return both[0].Duration >= solo[0].Duration-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPredictSingleTransfer(b *testing.B) {
	p := buildPair(b, 125e6, 1e-4)
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Predict(p, cfg, []Transfer{{Src: "a", Dst: "b", Size: 1e9}}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredictWorkedExample(b *testing.B) {
	p := buildLyonNancy(b)
	cfg := DefaultConfig()
	cfg.GammaUsesLatencyFactor = true
	transfers := []Transfer{
		{Src: "capricorne-36", Dst: "griffon-50", Size: 5e8},
		{Src: "capricorne-36", Dst: "capricorne-1", Size: 5e8},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Predict(p, cfg, transfers); err != nil {
			b.Fatal(err)
		}
	}
}
