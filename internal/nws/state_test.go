package nws

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// TestSelectorStateRoundTrip drives a selector through a noisy series,
// exports mid-stream, restores into a fresh selector, and checks the two
// stay bit-identical through further observations — including a JSON
// round trip, the form the WAL snapshot stores.
func TestSelectorStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	orig := NewSelector()
	for i := 0; i < 137; i++ {
		orig.Update(1e8 + 3e7*rng.Float64())
	}

	raw, err := json.Marshal(orig.ExportState())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var st SelectorState
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	restored := NewSelector()
	if err := restored.ImportState(st); err != nil {
		t.Fatalf("import: %v", err)
	}

	if restored.N() != orig.N() {
		t.Fatalf("restored N=%d, want %d", restored.N(), orig.N())
	}
	for i := 0; i < 200; i++ {
		check := func(tag string) {
			pv, pok := orig.Predict()
			rv, rok := restored.Predict()
			if pok != rok || pv != rv {
				t.Fatalf("step %d %s: restored predicts (%v, %v), original (%v, %v)", i, tag, rv, rok, pv, pok)
			}
			if orig.Best() != restored.Best() {
				t.Fatalf("step %d %s: restored best %q, original %q", i, tag, restored.Best(), orig.Best())
			}
		}
		check("pre")
		v := 9e7 + 5e7*rng.Float64()
		orig.Update(v)
		restored.Update(v)
		check("post")
	}
}

func TestSelectorImportRejectsMismatchedBattery(t *testing.T) {
	small := NewSelector(NewLast(), NewRunningMean())
	full := NewSelector()
	if err := full.ImportState(small.ExportState()); err == nil {
		t.Fatal("import of a 2-predictor state into the 8-predictor battery succeeded")
	}
	// Same length, different predictor: names must match positionally.
	a := NewSelector(NewLast(), NewSlidingMean(5))
	b := NewSelector(NewLast(), NewSlidingMean(7))
	if err := b.ImportState(a.ExportState()); err == nil {
		t.Fatal("import across different window widths succeeded")
	}
}

func TestBankStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	orig := NewBank(32)
	links := []int32{3, 17, 4, 29}
	for i := 0; i < 90; i++ {
		li := links[i%len(links)]
		orig.ObserveBandwidth(li, 5e7+4e7*rng.Float64())
		if i%3 == 0 {
			orig.ObserveLatency(li, 1e-3*rng.Float64())
		}
	}

	raw, err := json.Marshal(orig.ExportState())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var st BankState
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	restored, err := NewBankFromState(st)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}

	if got, want := restored.Observed(), orig.Observed(); len(got) != len(want) {
		t.Fatalf("restored %d observed links, want %d", len(got), len(want))
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("observed order diverges at %d: %d vs %d", i, got[i], want[i])
			}
		}
	}
	for _, li := range orig.Observed() {
		ov, ook := orig.ForecastBandwidth(li)
		rv, rok := restored.ForecastBandwidth(li)
		if ov != rv || ook != rok {
			t.Fatalf("link %d bandwidth forecast (%v,%v), want (%v,%v)", li, rv, rok, ov, ook)
		}
		ov, ook = orig.ForecastLatency(li)
		rv, rok = restored.ForecastLatency(li)
		if ov != rv || ook != rok {
			t.Fatalf("link %d latency forecast (%v,%v), want (%v,%v)", li, rv, rok, ov, ook)
		}
		if orig.BestBandwidthPredictor(li) != restored.BestBandwidthPredictor(li) {
			t.Fatalf("link %d best predictor diverges", li)
		}
	}

	// Further observations keep the banks in lockstep.
	for i := 0; i < 40; i++ {
		li := links[i%len(links)]
		v := 6e7 + 3e7*rng.Float64()
		orig.ObserveBandwidth(li, v)
		restored.ObserveBandwidth(li, v)
		ov, _ := orig.ForecastBandwidth(li)
		rv, _ := restored.ForecastBandwidth(li)
		if ov != rv {
			t.Fatalf("post-restore step %d: forecasts diverge (%v vs %v)", i, rv, ov)
		}
	}
}

func TestBankStateRejectsInvalid(t *testing.T) {
	cases := []BankState{
		{Links: -1},
		{Links: 4, Observed: []BankLinkState{{Link: 9}}},
		{Links: 4, Observed: []BankLinkState{{Link: 1}, {Link: 1}}},
	}
	for i, st := range cases {
		if _, err := NewBankFromState(st); err == nil {
			t.Errorf("case %d: invalid bank state accepted", i)
		}
	}
}
