package nws_test

import (
	"fmt"

	"pilgrim/internal/nws"
)

// The NWS selector watches every predictor's cumulative error and
// forecasts with the best one so far.
func ExampleSelector() {
	s := nws.NewSelector()
	for i := 0; i < 40; i++ {
		s.Update(100) // a perfectly stable bandwidth series
	}
	v, ok := s.Predict()
	fmt.Printf("forecast: %.0f (ok=%v)\n", v, ok)
	// Output:
	// forecast: 100 (ok=true)
}

// A path forecaster combines bandwidth and latency series into transfer
// completion times — per path, blind to batch contention.
func ExamplePathForecaster() {
	pf := nws.NewPathForecaster()
	for i := 0; i < 20; i++ {
		pf.Observe(117e6, 3e-4) // probes: 117 MB/s, 0.3 ms
	}
	d, _ := pf.PredictTransfer(1.17e9)
	fmt.Printf("1.17 GB forecast: %.1f s\n", d)
	// Output:
	// 1.17 GB forecast: 10.0 s
}
