// Package nws implements the statistical forecasting baseline the paper
// positions Pilgrim against: the Network Weather Service (Wolski, Spring
// & Hayes, FGCS 1999; paper §III-B).
//
// NWS records time series of resource measurements (bandwidth, latency)
// taken by active probes, runs a battery of simple predictors over each
// series, and continuously selects whichever predictor has been most
// accurate so far (the "dynamic predictor selection" that made NWS the
// reference forecaster of the scheduling community).
//
// The key structural difference from Pilgrim: NWS extrapolates each
// path's history independently and therefore cannot anticipate the
// contention between the very transfers being scheduled — a batch of 30
// concurrent transfers is predicted as 30 solo transfers. The
// TestNWSContentionBlindness test and BenchmarkBaselineNWS bench
// demonstrate exactly this failure mode against the simulation-driven
// forecast.
package nws

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Forecaster predicts the next value of a univariate series.
type Forecaster interface {
	// Name identifies the predictor in reports.
	Name() string
	// Update feeds one observation.
	Update(v float64)
	// Predict returns the forecast for the next observation; ok is false
	// until the predictor has enough history.
	Predict() (value float64, ok bool)
}

// lastValue predicts the previous observation (NWS "LAST").
type lastValue struct {
	v  float64
	ok bool
}

// NewLast returns the last-value predictor.
func NewLast() Forecaster { return &lastValue{} }

func (l *lastValue) Name() string { return "LAST" }
func (l *lastValue) Update(v float64) {
	l.v, l.ok = v, true
}
func (l *lastValue) Predict() (float64, bool) { return l.v, l.ok }

// runningMean predicts the mean of all history (NWS "RUN_AVG").
type runningMean struct {
	sum float64
	n   int
}

// NewRunningMean returns the running-mean predictor.
func NewRunningMean() Forecaster { return &runningMean{} }

func (r *runningMean) Name() string { return "RUN_AVG" }
func (r *runningMean) Update(v float64) {
	r.sum += v
	r.n++
}
func (r *runningMean) Predict() (float64, bool) {
	if r.n == 0 {
		return 0, false
	}
	return r.sum / float64(r.n), true
}

// window holds the last k observations.
type window struct {
	buf  []float64
	head int
	full bool
}

func newWindow(k int) *window { return &window{buf: make([]float64, k)} }

func (w *window) push(v float64) {
	w.buf[w.head] = v
	w.head++
	if w.head == len(w.buf) {
		w.head = 0
		w.full = true
	}
}

// valuesInto copies the window contents into dst (which must have
// capacity for the full window) and returns the filled prefix. The copy
// order matches the historical values() layout — raw buffer order — so
// downstream arithmetic is bit-identical, while the pre-sized dst keeps
// Predict allocation-free (forecasts run once per link per horizon query;
// a garbage-free battery is what lets the bank extrapolate a 1k-link
// platform in O(1) allocations).
func (w *window) valuesInto(dst []float64) []float64 {
	if w.full {
		return dst[:copy(dst[:len(w.buf)], w.buf)]
	}
	return dst[:copy(dst[:w.head], w.buf[:w.head])]
}

// slidingMean predicts the mean of the last k observations (NWS
// "SW_AVG").
type slidingMean struct {
	w       *window
	k       int
	scratch []float64
}

// NewSlidingMean returns the k-sample sliding-window mean predictor.
func NewSlidingMean(k int) Forecaster {
	if k < 1 {
		panic(errors.New("nws: window must be >= 1"))
	}
	return &slidingMean{w: newWindow(k), k: k, scratch: make([]float64, k)}
}

func (s *slidingMean) Name() string { return fmt.Sprintf("SW_AVG(%d)", s.k) }
func (s *slidingMean) Update(v float64) {
	s.w.push(v)
}
func (s *slidingMean) Predict() (float64, bool) {
	vs := s.w.valuesInto(s.scratch)
	if len(vs) == 0 {
		return 0, false
	}
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs)), true
}

// slidingMedian predicts the median of the last k observations (NWS
// "MEDIAN").
type slidingMedian struct {
	w       *window
	k       int
	scratch []float64
}

// NewSlidingMedian returns the k-sample sliding-window median predictor.
func NewSlidingMedian(k int) Forecaster {
	if k < 1 {
		panic(errors.New("nws: window must be >= 1"))
	}
	return &slidingMedian{w: newWindow(k), k: k, scratch: make([]float64, k)}
}

func (s *slidingMedian) Name() string { return fmt.Sprintf("MEDIAN(%d)", s.k) }
func (s *slidingMedian) Update(v float64) {
	s.w.push(v)
}
func (s *slidingMedian) Predict() (float64, bool) {
	vs := s.w.valuesInto(s.scratch)
	if len(vs) == 0 {
		return 0, false
	}
	sort.Float64s(vs)
	n := len(vs)
	if n%2 == 1 {
		return vs[n/2], true
	}
	return (vs[n/2-1] + vs[n/2]) / 2, true
}

// expSmoothing predicts an exponentially smoothed value (NWS adaptive
// mean family).
type expSmoothing struct {
	gain float64
	v    float64
	ok   bool
}

// NewExpSmoothing returns an exponential-smoothing predictor with the
// given gain in (0, 1].
func NewExpSmoothing(gain float64) Forecaster {
	if gain <= 0 || gain > 1 {
		panic(errors.New("nws: gain must be in (0, 1]"))
	}
	return &expSmoothing{gain: gain}
}

func (e *expSmoothing) Name() string { return fmt.Sprintf("EXP(%.2g)", e.gain) }
func (e *expSmoothing) Update(v float64) {
	if !e.ok {
		e.v, e.ok = v, true
		return
	}
	e.v = e.gain*v + (1-e.gain)*e.v
}
func (e *expSmoothing) Predict() (float64, bool) { return e.v, e.ok }

// Selector runs a battery of predictors and forecasts with whichever has
// the lowest cumulative absolute error so far — NWS's dynamic predictor
// selection.
type Selector struct {
	fs  []Forecaster
	mae []float64
	n   int
}

// NewSelector builds a selector over the given predictors. With no
// arguments it uses the standard NWS battery.
func NewSelector(fs ...Forecaster) *Selector {
	if len(fs) == 0 {
		fs = []Forecaster{
			NewLast(),
			NewRunningMean(),
			NewSlidingMean(5),
			NewSlidingMean(20),
			NewSlidingMedian(5),
			NewSlidingMedian(21),
			NewExpSmoothing(0.05),
			NewExpSmoothing(0.3),
		}
	}
	return &Selector{fs: fs, mae: make([]float64, len(fs))}
}

// Update scores every predictor against the new observation, then feeds
// it to all of them.
func (s *Selector) Update(v float64) {
	for i, f := range s.fs {
		if p, ok := f.Predict(); ok {
			s.mae[i] += math.Abs(p - v)
		}
		f.Update(v)
	}
	s.n++
}

// Predict returns the forecast of the currently best predictor.
func (s *Selector) Predict() (float64, bool) {
	best, ok := s.best()
	if !ok {
		return 0, false
	}
	return best.Predict()
}

// Best returns the name of the currently best predictor (lowest
// cumulative MAE; ties resolve to battery order).
func (s *Selector) Best() string {
	best, ok := s.best()
	if !ok {
		return ""
	}
	return best.Name()
}

func (s *Selector) best() (Forecaster, bool) {
	if s.n == 0 {
		return nil, false
	}
	bi := -1
	for i, f := range s.fs {
		if _, ok := f.Predict(); !ok {
			continue
		}
		if bi == -1 || s.mae[i] < s.mae[bi] {
			bi = i
		}
	}
	if bi == -1 {
		return nil, false
	}
	return s.fs[bi], true
}

// N returns the number of observations seen.
func (s *Selector) N() int { return s.n }

// PathForecaster forecasts TCP transfer completion times for one network
// path the NWS way: separate forecast series for available bandwidth
// (bytes/s, from periodic probes) and latency (seconds), combined as
//
//	duration = latency + size / bandwidth.
//
// It has no notion of the other transfers in a request batch — the
// contention blindness the simulation-driven approach removes.
type PathForecaster struct {
	Bandwidth *Selector
	Latency   *Selector
}

// NewPathForecaster returns an empty path forecaster.
func NewPathForecaster() *PathForecaster {
	return &PathForecaster{Bandwidth: NewSelector(), Latency: NewSelector()}
}

// Observe records one probe: measured bandwidth and round-trip latency.
func (p *PathForecaster) Observe(bandwidth, latency float64) {
	p.Bandwidth.Update(bandwidth)
	p.Latency.Update(latency)
}

// PredictTransfer forecasts the completion time of size bytes on this
// path. ok is false until at least one probe was observed.
func (p *PathForecaster) PredictTransfer(size float64) (float64, bool) {
	bw, ok1 := p.Bandwidth.Predict()
	lat, ok2 := p.Latency.Predict()
	if !ok1 || !ok2 || bw <= 0 {
		return 0, false
	}
	return lat + size/bw, true
}
