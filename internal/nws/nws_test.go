package nws

import (
	"math"
	"testing"
	"testing/quick"

	"pilgrim/internal/stats"
)

func TestLastValue(t *testing.T) {
	f := NewLast()
	if _, ok := f.Predict(); ok {
		t.Error("prediction before data")
	}
	f.Update(3)
	f.Update(7)
	if v, ok := f.Predict(); !ok || v != 7 {
		t.Errorf("Predict = %v, %v", v, ok)
	}
}

func TestRunningMean(t *testing.T) {
	f := NewRunningMean()
	for _, v := range []float64{2, 4, 6} {
		f.Update(v)
	}
	if v, _ := f.Predict(); v != 4 {
		t.Errorf("Predict = %v, want 4", v)
	}
}

func TestSlidingMean(t *testing.T) {
	f := NewSlidingMean(3)
	for _, v := range []float64{100, 1, 2, 3} {
		f.Update(v)
	}
	if v, _ := f.Predict(); v != 2 {
		t.Errorf("Predict = %v, want 2 (window dropped 100)", v)
	}
}

func TestSlidingMedianOddEven(t *testing.T) {
	f := NewSlidingMedian(4)
	f.Update(1)
	f.Update(9)
	f.Update(5)
	if v, _ := f.Predict(); v != 5 {
		t.Errorf("odd median = %v, want 5", v)
	}
	f.Update(7)
	if v, _ := f.Predict(); v != 6 {
		t.Errorf("even median = %v, want 6", v)
	}
}

func TestExpSmoothing(t *testing.T) {
	f := NewExpSmoothing(0.5)
	f.Update(0)
	f.Update(10)
	if v, _ := f.Predict(); v != 5 {
		t.Errorf("Predict = %v, want 5", v)
	}
}

func TestConstructorsPanicOnBadArgs(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero window mean":   func() { NewSlidingMean(0) },
		"zero window median": func() { NewSlidingMedian(0) },
		"zero gain":          func() { NewExpSmoothing(0) },
		"gain above one":     func() { NewExpSmoothing(1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSelectorPrefersBestPredictor(t *testing.T) {
	// Constant series: every predictor converges; selector must predict
	// the constant.
	s := NewSelector()
	for i := 0; i < 50; i++ {
		s.Update(42)
	}
	if v, ok := s.Predict(); !ok || math.Abs(v-42) > 1e-9 {
		t.Errorf("constant prediction = %v, %v", v, ok)
	}

	// Alternating series 0,10,0,10...: LAST is the worst possible
	// predictor (always wrong by 10); means hover at 5. The selector
	// must not pick LAST.
	s2 := NewSelector()
	for i := 0; i < 100; i++ {
		s2.Update(float64((i % 2) * 10))
	}
	if s2.Best() == "LAST" {
		t.Error("selector chose LAST on an alternating series")
	}

	// Trending series: LAST beats long-window means.
	s3 := NewSelector()
	for i := 0; i < 100; i++ {
		s3.Update(float64(i))
	}
	best := s3.Best()
	if best == "RUN_AVG" || best == "MEDIAN(21)" {
		t.Errorf("selector chose %s on a strong trend", best)
	}
}

func TestSelectorEmpty(t *testing.T) {
	s := NewSelector()
	if _, ok := s.Predict(); ok {
		t.Error("prediction from empty selector")
	}
	if s.Best() != "" {
		t.Error("best name from empty selector")
	}
}

// Property: the selector's cumulative error is never worse than the worst
// single predictor and the prediction is always within the range of
// observed values for bounded series.
func TestSelectorPredictsWithinRange(t *testing.T) {
	f := func(seed int64) bool {
		g := stats.NewRNG(seed)
		s := NewSelector()
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < 60; i++ {
			v := 10 + g.Float64()*90
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			s.Update(v)
		}
		p, ok := s.Predict()
		return ok && p >= lo-1e-9 && p <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPathForecaster(t *testing.T) {
	pf := NewPathForecaster()
	if _, ok := pf.PredictTransfer(1e6); ok {
		t.Error("prediction before any probe")
	}
	// Stable path: 100 MB/s, 1 ms RTT.
	for i := 0; i < 30; i++ {
		pf.Observe(100e6, 1e-3)
	}
	d, ok := pf.PredictTransfer(1e9)
	if !ok {
		t.Fatal("no prediction")
	}
	want := 1e-3 + 1e9/100e6
	if math.Abs(d-want)/want > 0.01 {
		t.Errorf("duration = %v, want ~%v", d, want)
	}
}

// TestNWSContentionBlindness captures the structural weakness the paper
// exploits (§III-B): NWS extrapolates per-path history, so a batch of N
// concurrent transfers over a shared bottleneck is predicted as N solo
// transfers — a factor-N underestimate that the simulation-driven
// forecast does not suffer from.
func TestNWSContentionBlindness(t *testing.T) {
	pf := NewPathForecaster()
	for i := 0; i < 30; i++ {
		pf.Observe(117e6, 3e-4) // solo probes at line rate
	}
	soloPrediction, ok := pf.PredictTransfer(1e9)
	if !ok {
		t.Fatal("no prediction")
	}
	// Ten concurrent transfers on one gigabit NIC actually take ~10x a
	// solo transfer; NWS predicts all ten at the solo duration.
	actualShared := 1e9 / (117e6 / 10)
	if soloPrediction > actualShared/5 {
		t.Errorf("expected NWS to underestimate shared duration by ~10x: predicted %v, actual %v",
			soloPrediction, actualShared)
	}
}

func BenchmarkSelectorUpdate(b *testing.B) {
	s := NewSelector()
	g := stats.NewRNG(1)
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = g.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(vals[i%len(vals)])
	}
}
