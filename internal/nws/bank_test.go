package nws

import (
	"math"
	"testing"
)

// TestBankMatchesStandaloneSelectors checks the vectorized bank is
// bit-identical to independent Selectors fed the same series: same
// forecasts, same winning predictor, per link and per quantity.
func TestBankMatchesStandaloneSelectors(t *testing.T) {
	const links = 7
	bank := NewBank(links)
	refBW := make([]*Selector, links)
	refLat := make([]*Selector, links)
	for i := range refBW {
		refBW[i] = NewSelector()
		refLat[i] = NewSelector()
	}

	// Deterministic per-link series with different shapes (trend, noise,
	// step) so different predictors win on different links.
	v := func(link, step int) float64 {
		x := float64(step)
		switch link % 3 {
		case 0:
			return 1e8 + 1e5*x
		case 1:
			return 1e8 + 3e6*math.Sin(x/3)
		default:
			if step > 20 {
				return 5e7
			}
			return 1.2e8
		}
	}
	for step := 0; step < 40; step++ {
		for link := 0; link < links; link++ {
			bw := v(link, step)
			lat := 1e-3 + 1e-5*float64(link) + 1e-6*float64(step%5)
			bank.ObserveBandwidth(int32(link), bw)
			bank.ObserveLatency(int32(link), lat)
			refBW[link].Update(bw)
			refLat[link].Update(lat)
		}
	}

	if got := len(bank.Observed()); got != links {
		t.Fatalf("observed %d links, want %d", got, links)
	}
	for link := 0; link < links; link++ {
		gotBW, ok1 := bank.ForecastBandwidth(int32(link))
		wantBW, ok2 := refBW[link].Predict()
		if ok1 != ok2 || math.Float64bits(gotBW) != math.Float64bits(wantBW) {
			t.Errorf("link %d: bank bandwidth %v (%v) != selector %v (%v)", link, gotBW, ok1, wantBW, ok2)
		}
		gotLat, ok1 := bank.ForecastLatency(int32(link))
		wantLat, ok2 := refLat[link].Predict()
		if ok1 != ok2 || math.Float64bits(gotLat) != math.Float64bits(wantLat) {
			t.Errorf("link %d: bank latency %v != selector %v", link, gotLat, wantLat)
		}
		if got, want := bank.BestBandwidthPredictor(int32(link)), refBW[link].Best(); got != want {
			t.Errorf("link %d: best predictor %q != %q", link, got, want)
		}
	}
}

// TestBankEmpty checks the no-history paths.
func TestBankEmpty(t *testing.T) {
	bank := NewBank(4)
	if n := len(bank.Observed()); n != 0 {
		t.Fatalf("fresh bank observed %d links", n)
	}
	if _, ok := bank.ForecastBandwidth(2); ok {
		t.Fatal("forecast without history must fail")
	}
	if _, ok := bank.ForecastLatency(2); ok {
		t.Fatal("forecast without history must fail")
	}
	if bank.BestBandwidthPredictor(2) != "" {
		t.Fatal("best predictor without history must be empty")
	}
	// Bandwidth-only observation: latency still has no forecast.
	bank.ObserveBandwidth(1, 1e8)
	if _, ok := bank.ForecastLatency(1); ok {
		t.Fatal("latency forecast without latency history must fail")
	}
	if len(bank.Observed()) != 1 || bank.Observed()[0] != 1 {
		t.Fatalf("observed = %v", bank.Observed())
	}
}

// TestBankForecastAllocFree pins the O(1)-allocations claim: once the
// batteries exist, a full observe+forecast cycle over every link
// allocates nothing.
func TestBankForecastAllocFree(t *testing.T) {
	const links = 256
	bank := NewBank(links)
	for step := 0; step < 30; step++ {
		for link := int32(0); link < links; link++ {
			bank.ObserveBandwidth(link, 1e8+float64(step*int(link)))
			bank.ObserveLatency(link, 1e-3)
		}
	}
	var sink float64
	allocs := testing.AllocsPerRun(50, func() {
		for _, link := range bank.Observed() {
			bank.ObserveBandwidth(link, 1.01e8)
			if v, ok := bank.ForecastBandwidth(link); ok {
				sink += v
			}
			if v, ok := bank.ForecastLatency(link); ok {
				sink += v
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("warm observe+forecast cycle allocates %.1f times per run, want 0", allocs)
	}
	_ = sink
}

// BenchmarkBankForecast1k measures draining forecasts for a 1000-link
// platform — the per-horizon-query extrapolation cost. allocs/op must
// stay at 0.
func BenchmarkBankForecast1k(b *testing.B) {
	const links = 1000
	bank := NewBank(links)
	for step := 0; step < 50; step++ {
		for link := int32(0); link < links; link++ {
			bank.ObserveBandwidth(link, 1e8+1e4*float64(step))
			bank.ObserveLatency(link, 1e-3+1e-7*float64(step%7))
		}
	}
	var sink float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, link := range bank.Observed() {
			if v, ok := bank.ForecastBandwidth(link); ok {
				sink += v
			}
			if v, ok := bank.ForecastLatency(link); ok {
				sink += v
			}
		}
	}
	_ = sink
}
