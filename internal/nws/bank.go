package nws

import "errors"

// Bank is a per-link forecaster bank vectorized over dense link indices:
// one bandwidth Selector and one latency Selector per observed link, with
// NWS dynamic predictor selection running independently on every series.
// It is the bridge between the metrology timeline (which records what the
// network did) and horizon forecasting (which extrapolates what it will
// do): each observation batch folded into a platform.Timeline also feeds
// the bank, and a future-horizon query drains the bank's forecasts into a
// synthetic link-state epoch.
//
// The per-link arrays are pre-sized at construction and the predictor
// batteries are allocated once, on a link's first observation — after
// warm-up, an Observe/Forecast cycle over the whole bank allocates
// nothing (BenchmarkBankForecast pins this), so horizon extrapolation
// over a 1k-link platform is O(1) allocations per forecast.
//
// A Bank is not safe for concurrent use; callers (the pilgrim registry)
// serialize observations and forecasts per platform.
type Bank struct {
	bw  []*Selector
	lat []*Selector
	// observed lists link indices with at least one observation, in first
	// observation order; it is the iteration domain for forecast drains.
	observed []int32
	seen     []bool
}

// NewBank returns a bank for a platform of n dense link indices.
func NewBank(n int) *Bank {
	if n < 0 {
		panic(errors.New("nws: negative link count"))
	}
	return &Bank{
		bw:   make([]*Selector, n),
		lat:  make([]*Selector, n),
		seen: make([]bool, n),
	}
}

// NumLinks returns the dense index space size.
func (b *Bank) NumLinks() int { return len(b.seen) }

// note marks a link observed, registering it in the iteration domain.
func (b *Bank) note(link int32) {
	if !b.seen[link] {
		b.seen[link] = true
		b.observed = append(b.observed, link)
	}
}

// ObserveBandwidth feeds one measured bandwidth (bytes/s) for a link.
func (b *Bank) ObserveBandwidth(link int32, v float64) {
	b.note(link)
	if b.bw[link] == nil {
		b.bw[link] = NewSelector()
	}
	b.bw[link].Update(v)
}

// ObserveLatency feeds one measured one-way latency (seconds) for a link.
func (b *Bank) ObserveLatency(link int32, v float64) {
	b.note(link)
	if b.lat[link] == nil {
		b.lat[link] = NewSelector()
	}
	b.lat[link].Update(v)
}

// Observed returns the links with at least one observation, in first
// observation order. The slice is owned by the bank; do not mutate.
func (b *Bank) Observed() []int32 { return b.observed }

// ForecastBandwidth extrapolates the link's bandwidth with the currently
// best predictor; ok is false without bandwidth history.
func (b *Bank) ForecastBandwidth(link int32) (float64, bool) {
	if s := b.bw[link]; s != nil {
		return s.Predict()
	}
	return 0, false
}

// ForecastLatency extrapolates the link's latency with the currently best
// predictor; ok is false without latency history.
func (b *Bank) ForecastLatency(link int32) (float64, bool) {
	if s := b.lat[link]; s != nil {
		return s.Predict()
	}
	return 0, false
}

// BestBandwidthPredictor reports the name of the predictor currently
// winning the link's bandwidth series ("" without history) — the NWS
// dynamic-selection telemetry.
func (b *Bank) BestBandwidthPredictor(link int32) string {
	if s := b.bw[link]; s != nil {
		return s.Best()
	}
	return ""
}
