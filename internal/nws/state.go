package nws

// This file implements predictor state serialization for durable
// restarts. A Selector's forecast is a deterministic function of the
// full observation history — including observations long evicted from
// the platform timeline — so a crash-recovered pilgrimd can only answer
// byte-identical forecasts if the predictor internals (sliding windows,
// smoothed values, cumulative per-predictor error) are captured exactly.
// The WAL's snapshot compaction exports the bank state here; recovery
// imports it and replays only the log tail.
//
// State is carried in JSON-friendly structures. Go's encoding/json
// round-trips finite float64 values exactly (shortest-representation
// encoding), and every value the battery holds is finite — observation
// ingest rejects NaN/Inf — so export→encode→decode→import reproduces
// bit-identical forecasts.

import (
	"errors"
	"fmt"
)

// ForecasterState is the serializable state of one battery predictor.
// Which fields are used depends on the predictor; Name pins the layout
// so an import into a mismatched battery fails loudly instead of
// silently skewing forecasts.
type ForecasterState struct {
	Name string `json:"name"`
	// Vals holds scalar state words (meaning per predictor kind).
	Vals []float64 `json:"vals,omitempty"`
	// Win/Head/Full capture a sliding window's raw ring buffer.
	Win  []float64 `json:"win,omitempty"`
	Head int       `json:"head,omitempty"`
	Full bool      `json:"full,omitempty"`
}

// SelectorState is the serializable state of a Selector: the observation
// count, the cumulative absolute error per predictor, and each
// predictor's internals, in battery order.
type SelectorState struct {
	N           int               `json:"n"`
	MAE         []float64         `json:"mae"`
	Forecasters []ForecasterState `json:"forecasters"`
}

// stateful is implemented by every battery predictor that can export and
// restore its internals.
type stateful interface {
	exportState() ForecasterState
	importState(ForecasterState) error
}

func boolWord(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func (l *lastValue) exportState() ForecasterState {
	return ForecasterState{Name: l.Name(), Vals: []float64{l.v, boolWord(l.ok)}}
}

func (l *lastValue) importState(st ForecasterState) error {
	if len(st.Vals) != 2 {
		return fmt.Errorf("nws: %s state wants 2 vals, got %d", l.Name(), len(st.Vals))
	}
	l.v, l.ok = st.Vals[0], st.Vals[1] != 0
	return nil
}

func (r *runningMean) exportState() ForecasterState {
	return ForecasterState{Name: r.Name(), Vals: []float64{r.sum, float64(r.n)}}
}

func (r *runningMean) importState(st ForecasterState) error {
	if len(st.Vals) != 2 {
		return fmt.Errorf("nws: %s state wants 2 vals, got %d", r.Name(), len(st.Vals))
	}
	r.sum, r.n = st.Vals[0], int(st.Vals[1])
	return nil
}

func (w *window) exportInto(st *ForecasterState) {
	st.Win = append([]float64(nil), w.buf...)
	st.Head = w.head
	st.Full = w.full
}

func (w *window) importFrom(st ForecasterState, name string) error {
	if len(st.Win) != len(w.buf) {
		return fmt.Errorf("nws: %s window wants %d samples, got %d", name, len(w.buf), len(st.Win))
	}
	if st.Head < 0 || st.Head >= len(w.buf) {
		return fmt.Errorf("nws: %s window head %d out of range", name, st.Head)
	}
	copy(w.buf, st.Win)
	w.head = st.Head
	w.full = st.Full
	return nil
}

func (s *slidingMean) exportState() ForecasterState {
	st := ForecasterState{Name: s.Name()}
	s.w.exportInto(&st)
	return st
}

func (s *slidingMean) importState(st ForecasterState) error {
	return s.w.importFrom(st, s.Name())
}

func (s *slidingMedian) exportState() ForecasterState {
	st := ForecasterState{Name: s.Name()}
	s.w.exportInto(&st)
	return st
}

func (s *slidingMedian) importState(st ForecasterState) error {
	return s.w.importFrom(st, s.Name())
}

func (e *expSmoothing) exportState() ForecasterState {
	return ForecasterState{Name: e.Name(), Vals: []float64{e.v, boolWord(e.ok)}}
}

func (e *expSmoothing) importState(st ForecasterState) error {
	if len(st.Vals) != 2 {
		return fmt.Errorf("nws: %s state wants 2 vals, got %d", e.Name(), len(st.Vals))
	}
	e.v, e.ok = st.Vals[0], st.Vals[1] != 0
	return nil
}

// ExportState captures the selector's full internals.
func (s *Selector) ExportState() SelectorState {
	st := SelectorState{
		N:           s.n,
		MAE:         append([]float64(nil), s.mae...),
		Forecasters: make([]ForecasterState, len(s.fs)),
	}
	for i, f := range s.fs {
		sf, ok := f.(stateful)
		if !ok {
			// Custom predictors without state support export empty state and
			// restore cold; the standard battery is fully covered.
			st.Forecasters[i] = ForecasterState{Name: f.Name()}
			continue
		}
		st.Forecasters[i] = sf.exportState()
	}
	return st
}

// ImportState restores a previously exported state into this selector.
// The battery must match the exporting selector's predictor-for-predictor
// (names are compared); a mismatch fails without partial mutation of the
// error accounting.
func (s *Selector) ImportState(st SelectorState) error {
	if len(st.Forecasters) != len(s.fs) || len(st.MAE) != len(s.mae) {
		return fmt.Errorf("nws: selector state has %d predictors, battery has %d",
			len(st.Forecasters), len(s.fs))
	}
	for i, f := range s.fs {
		if st.Forecasters[i].Name != f.Name() {
			return fmt.Errorf("nws: selector state predictor %d is %q, battery has %q",
				i, st.Forecasters[i].Name, f.Name())
		}
	}
	for i, f := range s.fs {
		if sf, ok := f.(stateful); ok {
			if err := sf.importState(st.Forecasters[i]); err != nil {
				return err
			}
		}
	}
	s.n = st.N
	copy(s.mae, st.MAE)
	return nil
}

// BankLinkState is one observed link's predictor state: the dense link
// index and the bandwidth/latency selectors (nil when that series has no
// observations).
type BankLinkState struct {
	Link      int32          `json:"link"`
	Bandwidth *SelectorState `json:"bandwidth,omitempty"`
	Latency   *SelectorState `json:"latency,omitempty"`
}

// BankState is the serializable state of a whole forecaster bank, links
// in first-observation order (the bank's forecast-drain iteration order,
// preserved so restored forecast epochs list updates identically).
type BankState struct {
	Links    int             `json:"links"`
	Observed []BankLinkState `json:"observed,omitempty"`
}

// ExportState captures the bank's full predictor state.
func (b *Bank) ExportState() BankState {
	st := BankState{Links: b.NumLinks(), Observed: make([]BankLinkState, 0, len(b.observed))}
	for _, li := range b.observed {
		ls := BankLinkState{Link: li}
		if s := b.bw[li]; s != nil {
			es := s.ExportState()
			ls.Bandwidth = &es
		}
		if s := b.lat[li]; s != nil {
			es := s.ExportState()
			ls.Latency = &es
		}
		st.Observed = append(st.Observed, ls)
	}
	return st
}

// NewBankFromState rebuilds a bank from exported state. The restored bank
// observes, selects, and forecasts exactly as the exporting bank did at
// capture time.
func NewBankFromState(st BankState) (*Bank, error) {
	if st.Links < 0 {
		return nil, errors.New("nws: negative link count in bank state")
	}
	b := NewBank(st.Links)
	for _, ls := range st.Observed {
		if ls.Link < 0 || int(ls.Link) >= st.Links {
			return nil, fmt.Errorf("nws: bank state link %d out of range [0, %d)", ls.Link, st.Links)
		}
		if b.seen[ls.Link] {
			return nil, fmt.Errorf("nws: bank state lists link %d twice", ls.Link)
		}
		b.note(ls.Link)
		if ls.Bandwidth != nil {
			s := NewSelector()
			if err := s.ImportState(*ls.Bandwidth); err != nil {
				return nil, fmt.Errorf("nws: link %d bandwidth: %w", ls.Link, err)
			}
			b.bw[ls.Link] = s
		}
		if ls.Latency != nil {
			s := NewSelector()
			if err := s.ImportState(*ls.Latency); err != nil {
				return nil, fmt.Errorf("nws: link %d latency: %w", ls.Link, err)
			}
			b.lat[ls.Link] = s
		}
	}
	return b, nil
}
