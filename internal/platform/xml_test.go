package platform

import (
	"bytes"
	"strings"
	"testing"
)

const sampleXML = `<?xml version='1.0'?>
<platform version="3">
  <AS id="AS_g5k" routing="Full">
    <link id="bb" bandwidth="1.25e9" latency="2.25e-3" sharing_policy="FULLDUPLEX"/>
    <AS id="AS_lyon" routing="Full">
      <host id="n1" power="4.8e9">
        <prop id="cluster" value="sagittaire"/>
        <prop id="site" value="lyon"/>
      </host>
      <host id="n2" power="4.8e9"/>
      <router id="gw.lyon"/>
      <link id="n1_nic" bandwidth="125000000" latency="1e-4" sharing_policy="SHARED"/>
      <link id="n2_nic" bandwidth="125000000" latency="1e-4" sharing_policy="SHARED"/>
      <route src="n1" dst="gw.lyon" symmetrical="YES"><link_ctn id="n1_nic"/></route>
      <route src="n2" dst="gw.lyon" symmetrical="YES"><link_ctn id="n2_nic"/></route>
      <route src="n1" dst="n2" symmetrical="YES">
        <link_ctn id="n1_nic"/><link_ctn id="n2_nic"/>
      </route>
    </AS>
    <AS id="AS_nancy" routing="Cluster">
      <host id="m1" power="1e10"/>
      <host id="m2" power="1e10"/>
      <router id="gw.nancy"/>
      <cluster_topology router="gw.nancy" private_bw="125000000" private_lat="1e-4" sharing_policy="SHARED"/>
    </AS>
    <ASroute src="AS_lyon" dst="AS_nancy" gw_src="gw.lyon" gw_dst="gw.nancy" symmetrical="YES">
      <link_ctn id="bb" direction="UP"/>
    </ASroute>
  </AS>
</platform>
`

func TestParseSample(t *testing.T) {
	p, err := Parse(strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	if p.NumHosts() != 4 {
		t.Errorf("hosts = %d, want 4", p.NumHosts())
	}
	h := p.Host("n1")
	if h == nil || h.Speed != 4.8e9 {
		t.Fatalf("host n1 wrong: %+v", h)
	}
	if h.Prop("cluster") != "sagittaire" {
		t.Errorf("prop missing: %v", h.Props)
	}
	r, err := p.RouteBetween("n1", "m2")
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{}
	for _, u := range r.Links {
		ids = append(ids, u.Link.ID)
	}
	want := "n1_nic,bb,m2_link"
	if strings.Join(ids, ",") != want {
		t.Errorf("cross route = %v, want %v", ids, want)
	}
	// Reverse must flip the full-duplex backbone direction.
	rev, err := p.RouteBetween("m2", "n1")
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range rev.Links {
		if u.Link.ID == "bb" && u.Direction != Down {
			t.Errorf("backbone reverse direction = %v, want Down", u.Direction)
		}
	}
}

func TestParseRejectsUnknownLink(t *testing.T) {
	bad := `<?xml version='1.0'?>
<platform version="3">
  <AS id="root" routing="Full">
    <host id="a" power="1e9"/>
    <host id="b" power="1e9"/>
    <route src="a" dst="b"><link_ctn id="ghost"/></route>
  </AS>
</platform>`
	if _, err := Parse(strings.NewReader(bad)); err == nil {
		t.Fatal("unknown link accepted")
	}
}

func TestParseRejectsMalformedXML(t *testing.T) {
	if _, err := Parse(strings.NewReader("<platform><AS id=")); err == nil {
		t.Fatal("malformed XML accepted")
	}
}

func TestParseRejectsBadNumbers(t *testing.T) {
	bad := `<?xml version='1.0'?>
<platform version="3">
  <AS id="root" routing="Full">
    <link id="l" bandwidth="fast" latency="1e-4"/>
  </AS>
</platform>`
	if _, err := Parse(strings.NewReader(bad)); err == nil {
		t.Fatal("bad bandwidth accepted")
	}
}

// Round-trip property: parse(write(p)) preserves hosts, links, and all
// pairwise routes.
func TestXMLRoundTrip(t *testing.T) {
	p1, err := Parse(strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p1.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	p2, err := Parse(&buf)
	if err != nil {
		t.Fatalf("re-parsing serialized platform: %v\n%s", err, buf.String())
	}
	if p1.NumHosts() != p2.NumHosts() {
		t.Fatalf("host count changed: %d vs %d", p1.NumHosts(), p2.NumHosts())
	}
	if p1.NumLinks() != p2.NumLinks() {
		t.Fatalf("link count changed: %d vs %d", p1.NumLinks(), p2.NumLinks())
	}
	for _, a := range p1.Hosts() {
		for _, b := range p1.Hosts() {
			if a == b {
				continue
			}
			r1, err := p1.RouteBetween(a.ID, b.ID)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := p2.RouteBetween(a.ID, b.ID)
			if err != nil {
				t.Fatalf("route %s->%s lost after round trip: %v", a.ID, b.ID, err)
			}
			if len(r1.Links) != len(r2.Links) {
				t.Errorf("route %s->%s length changed: %d vs %d", a.ID, b.ID, len(r1.Links), len(r2.Links))
				continue
			}
			for i := range r1.Links {
				if r1.Links[i].Link.ID != r2.Links[i].Link.ID {
					t.Errorf("route %s->%s link %d: %s vs %s", a.ID, b.ID, i,
						r1.Links[i].Link.ID, r2.Links[i].Link.ID)
				}
				if r1.Links[i].Direction != r2.Links[i].Direction {
					t.Errorf("route %s->%s dir %d changed", a.ID, b.ID, i)
				}
			}
		}
	}
}

func TestWriteDeterministic(t *testing.T) {
	p, err := Parse(strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := p.WriteXML(&a); err != nil {
		t.Fatal(err)
	}
	if err := p.WriteXML(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("serialization not deterministic")
	}
}
