package platform

// This file implements the temporal layer over compiled snapshots: a
// Timeline is a bounded, timestamped, ordered history of link-state
// epochs. Where a bare Snapshot answers "what does the network look like
// right now", a Timeline answers "what did it look like at time T" — the
// substrate for forecasting at arbitrary horizons (past T: an O(log n)
// lookup; future T: NWS extrapolation materialized by the caller on top
// of Latest()).
//
// Appending an observation batch derives the new epoch by copy-on-write
// from the head (Snapshot.WithLinkState), so the cost per observation is
// O(changed links) — never O(platform), never O(history). The history is
// a ring buffer of at most `depth` entries: when full, the oldest entry
// is dropped in O(1) and its snapshot becomes collectable (epochs share
// unchanged pages, so retired history costs only its own changed pages).
//
// Concurrency: Append takes the write lock; AtTime/Entries/Stats take the
// read lock; Latest is a lock-free atomic load so the forecast hot path
// never contends with history readers.

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// ErrOutOfOrder is returned by Timeline.Append for an observation older
// than the timeline head: history is append-only and strictly ordered
// (equal timestamps are allowed; the latest append wins lookups).
var ErrOutOfOrder = errors.New("platform: observation precedes timeline head")

// DefaultTimelineDepth is the history bound NewTimeline applies when
// given a non-positive depth.
const DefaultTimelineDepth = 128

// TimelineEntry describes one retained observation: when it was taken,
// the epoch it produced, who reported it, and how many links it revised.
type TimelineEntry struct {
	Time    int64  `json:"time"`
	Epoch   uint64 `json:"epoch"`
	Source  string `json:"source,omitempty"`
	Changed int    `json:"links_changed"`
}

// TimelineStats is the accounting surfaced by the pilgrim timeline_stats
// endpoint.
type TimelineStats struct {
	// Depth and Capacity are the retained and maximum history lengths.
	Depth    int `json:"depth"`
	Capacity int `json:"capacity"`
	// BaseEpoch identifies the platform picture before any observation;
	// lookups earlier than the first retained entry answer against it.
	BaseEpoch uint64 `json:"base_epoch"`
	// FirstTime/LastTime bound the retained history (zero when empty).
	FirstTime int64 `json:"first_time"`
	LastTime  int64 `json:"last_time"`
	// Appends counts observations ever folded in; Evictions counts the
	// entries the depth bound has retired.
	Appends   uint64 `json:"appends"`
	Evictions uint64 `json:"evictions"`
	// Entries lists the retained history, oldest first.
	Entries []TimelineEntry `json:"entries"`
}

// Timeline is a bounded, timestamped, ordered history of link-state
// epochs of one compiled platform. All methods are safe for concurrent
// use.
type Timeline struct {
	mu   sync.RWMutex
	base *Snapshot

	// Ring buffer of the retained history, oldest at index head. updates
	// keeps each entry's observation batch so the retained history can be
	// re-serialized verbatim (WAL snapshot compaction).
	snaps   []*Snapshot
	times   []int64
	sources []string
	changed []int
	updates [][]LinkUpdate
	head    int
	count   int

	appends   uint64
	evictions uint64

	// latest mirrors the newest snapshot (base while empty) for lock-free
	// reads on the forecast hot path.
	latest atomic.Pointer[Snapshot]
}

// NewTimeline starts a timeline on the given base epoch, retaining at
// most depth observations (depth <= 0 selects DefaultTimelineDepth).
func NewTimeline(base *Snapshot, depth int) *Timeline {
	if base == nil {
		panic(errors.New("platform: nil base snapshot for timeline"))
	}
	if depth <= 0 {
		depth = DefaultTimelineDepth
	}
	tl := &Timeline{
		base:    base,
		snaps:   make([]*Snapshot, depth),
		times:   make([]int64, depth),
		sources: make([]string, depth),
		changed: make([]int, depth),
		updates: make([][]LinkUpdate, depth),
	}
	tl.latest.Store(base)
	return tl
}

// Base returns the epoch before any observation.
func (tl *Timeline) Base() *Snapshot { return tl.base }

// Latest returns the newest epoch (the base while the history is empty).
// It is a single atomic load.
func (tl *Timeline) Latest() *Snapshot { return tl.latest.Load() }

// LatestTime returns the timestamp of the newest observation; ok is false
// while the history is empty.
func (tl *Timeline) LatestTime() (t int64, ok bool) {
	tl.mu.RLock()
	defer tl.mu.RUnlock()
	if tl.count == 0 {
		return 0, false
	}
	return tl.times[tl.at(tl.count-1)], true
}

// at maps a logical history index (0 = oldest) to a ring index.
func (tl *Timeline) at(i int) int { return (tl.head + i) % len(tl.snaps) }

// Append folds one timestamped observation batch into the timeline: a new
// epoch is derived by copy-on-write from the head and becomes Latest().
// t must be >= the head's timestamp (history is ordered); source is free
// provenance text recorded with the entry. When the history is at
// capacity the oldest entry is dropped. Returns the new epoch.
func (tl *Timeline) Append(t int64, source string, updates []LinkUpdate) (*Snapshot, error) {
	return tl.append(t, source, updates, 0)
}

// AppendPinned is Append with a caller-supplied epoch id — the WAL
// recovery path, which replays logged observations and must reproduce
// the exact epoch ids the original process assigned. epoch must come
// from a recovered log (see Snapshot.CloneWithEpoch on id aliasing).
func (tl *Timeline) AppendPinned(t int64, source string, updates []LinkUpdate, epoch uint64) (*Snapshot, error) {
	return tl.append(t, source, updates, epoch)
}

// append folds one observation in; epoch 0 allocates a fresh id, any
// other value pins it (0 is never a valid allocated id — the counter
// starts at 1).
func (tl *Timeline) append(t int64, source string, updates []LinkUpdate, epoch uint64) (*Snapshot, error) {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	if tl.count > 0 && t < tl.times[tl.at(tl.count-1)] {
		return nil, fmt.Errorf("%w: observation at %d, head at %d",
			ErrOutOfOrder, t, tl.times[tl.at(tl.count-1)])
	}
	var next *Snapshot
	var err error
	if epoch == 0 {
		next, err = tl.latest.Load().WithLinkState(updates)
	} else {
		next, err = tl.latest.Load().withLinkStateEpoch(updates, epoch)
	}
	if err != nil {
		return nil, err
	}
	if tl.count == len(tl.snaps) {
		tl.snaps[tl.head] = nil
		tl.updates[tl.head] = nil
		tl.head = (tl.head + 1) % len(tl.snaps)
		tl.count--
		tl.evictions++
	}
	i := tl.at(tl.count)
	tl.snaps[i] = next
	tl.times[i] = t
	tl.sources[i] = source
	tl.changed[i] = len(updates)
	tl.updates[i] = append([]LinkUpdate(nil), updates...)
	tl.count++
	tl.appends++
	tl.latest.Store(next)
	return next, nil
}

// RestoreCounters overwrites the append/eviction accounting — recovery
// only, after the retained history has been replayed, so a warm restart
// reports the same lifetime totals its predecessor did.
func (tl *Timeline) RestoreCounters(appends, evictions uint64) {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	tl.appends = appends
	tl.evictions = evictions
}

// TimelineRecord is one retained observation in replayable form: the
// entry metadata plus the full update batch that produced it. WAL
// snapshot compaction serializes these; recovery replays them through
// AppendPinned.
type TimelineRecord struct {
	Time    int64        `json:"time"`
	Epoch   uint64       `json:"epoch"`
	Source  string       `json:"source,omitempty"`
	Updates []LinkUpdate `json:"updates"`
}

// Records returns the retained history with full update batches, oldest
// first. The update slices are copies; mutating them does not affect the
// timeline.
func (tl *Timeline) Records() []TimelineRecord {
	tl.mu.RLock()
	defer tl.mu.RUnlock()
	out := make([]TimelineRecord, tl.count)
	for i := range out {
		ri := tl.at(i)
		out[i] = TimelineRecord{
			Time:    tl.times[ri],
			Epoch:   tl.snaps[ri].Epoch(),
			Source:  tl.sources[ri],
			Updates: append([]LinkUpdate(nil), tl.updates[ri]...),
		}
	}
	return out
}

// AtTime returns the epoch in effect at time t: the newest observation
// with timestamp <= t, found by O(log n) binary search over the retained
// history. Times earlier than the first retained observation (including
// all times while the history is empty) answer the base epoch — the
// platform as described before any measurement.
func (tl *Timeline) AtTime(t int64) *Snapshot {
	tl.mu.RLock()
	defer tl.mu.RUnlock()
	// First logical index with times > t; the entry before it governs t.
	n := sort.Search(tl.count, func(i int) bool { return tl.times[tl.at(i)] > t })
	if n == 0 {
		return tl.base
	}
	return tl.snaps[tl.at(n-1)]
}

// Depth returns the number of retained observations.
func (tl *Timeline) Depth() int {
	tl.mu.RLock()
	defer tl.mu.RUnlock()
	return tl.count
}

// Capacity returns the history bound.
func (tl *Timeline) Capacity() int { return len(tl.snaps) }

// entriesLocked builds the retained history, oldest first. Callers hold
// tl.mu.
func (tl *Timeline) entriesLocked() []TimelineEntry {
	out := make([]TimelineEntry, tl.count)
	for i := range out {
		ri := tl.at(i)
		out[i] = TimelineEntry{
			Time:    tl.times[ri],
			Epoch:   tl.snaps[ri].Epoch(),
			Source:  tl.sources[ri],
			Changed: tl.changed[ri],
		}
	}
	return out
}

// Entries returns the retained history, oldest first.
func (tl *Timeline) Entries() []TimelineEntry {
	tl.mu.RLock()
	defer tl.mu.RUnlock()
	return tl.entriesLocked()
}

// Stats returns a consistent snapshot of the timeline accounting.
func (tl *Timeline) Stats() TimelineStats {
	tl.mu.RLock()
	defer tl.mu.RUnlock()
	st := TimelineStats{
		Depth:     tl.count,
		Capacity:  len(tl.snaps),
		BaseEpoch: tl.base.Epoch(),
		Appends:   tl.appends,
		Evictions: tl.evictions,
		Entries:   tl.entriesLocked(),
	}
	if tl.count > 0 {
		st.FirstTime = tl.times[tl.at(0)]
		st.LastTime = tl.times[tl.at(tl.count-1)]
	}
	return st
}
