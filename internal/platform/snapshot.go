package platform

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// This file implements the compiled platform layer: Compile lowers the
// builder-friendly, string-keyed Platform into an immutable Snapshot in
// which hosts, routers and links carry dense int32 indices, resolved
// routes are index slices, and link state (bandwidth/latency) lives in
// flat arrays separate from the topology.
//
// The split mirrors what SimGrid itself converged on to stay scalable
// (Casanova et al., arXiv:1309.1630): a mutable description you build
// once, compiled into a compact read-only routing representation you
// query millions of times. Here the compiled form additionally carries an
// *epoch*: Snapshot.WithLinkState derives a new snapshot by copy-on-write
// of only the link-state pages — topology and resolved routes are shared
// between epochs — so folding a batch of live measurements (NWS/iperf)
// into the forecast picture costs O(changed links), not O(platform).
//
// Concurrency: a Snapshot is immutable after Compile; every read — index
// lookups, link state, route resolution — is lock-free. Cold route
// resolutions race benignly on an atomic publish (both compute the same
// immutable value; the first wins). This is what lets concurrent forecast
// workers resolve warm routes without serializing on the RWMutex that
// guards the builder Platform's route memo.

// LinkRef packs one link traversal of a compiled route into an int32: the
// link's dense index shifted left by two bits, or-ed with the traversal
// Direction. Routes held by simulation activities are []LinkRef — three
// words per route instead of a pointer-chasing []LinkUse.
type LinkRef int32

// MakeLinkRef packs a link index and a direction.
func MakeLinkRef(link int32, d Direction) LinkRef {
	return LinkRef(link<<2) | LinkRef(d)
}

// LinkIndex returns the dense link index of the traversal.
func (r LinkRef) LinkIndex() int32 { return int32(r) >> 2 }

// Direction returns the traversal direction.
func (r LinkRef) Direction() Direction { return Direction(r & 3) }

// CompiledRoute is a resolved end-to-end path in index form: the ordered
// link traversals and the sum of their latencies at the base epoch.
// Callers needing the latency under the *current* epoch (after link-state
// updates) go through Snapshot.RouteLatency.
type CompiledRoute struct {
	Refs    []LinkRef
	Latency float64
}

// Link-state pages. Bandwidth and latency are stored in fixed-size pages
// behind a page table; WithLinkState copies the page table (a slice of
// pointers, ~len(links)/64 words) and duplicates only the pages holding
// changed entries, so a measurement batch allocates proportionally to the
// links it touches, never to the platform.
const (
	statePageShift = 6
	statePageSize  = 1 << statePageShift
	statePageMask  = statePageSize - 1
)

type statePage [statePageSize]float64

// snapshotEpochs hands out process-unique epoch numbers. Epochs are never
// reused — across platforms, recompiles and link-state updates — so an
// epoch number identifies one exact network picture forever. The forecast
// cache keys entries by it instead of pinning platform pointers.
//
// WAL recovery is the one exception to pure counter allocation: a
// restarted pilgrimd restores the epoch ids its predecessor logged (so
// timelines and their accounting come back byte-identical), then raises
// the counter past every restored id with EnsureEpochAtLeast, preserving
// the never-reused invariant for all future allocations. Restored epochs
// must only be served alongside caches built after the restore — the
// standard shape of a process restart.
var snapshotEpochs atomic.Uint64

// AllocateEpoch reserves one process-unique epoch id without building a
// snapshot. Write-ahead logging uses it to know an observation's epoch id
// before the observation is applied (log first, then derive the epoch
// with the pinned id).
func AllocateEpoch() uint64 { return snapshotEpochs.Add(1) }

// EnsureEpochAtLeast raises the process epoch counter so every future
// allocation is strictly greater than n. WAL recovery calls it after
// restoring logged epoch ids.
func EnsureEpochAtLeast(n uint64) {
	for {
		cur := snapshotEpochs.Load()
		if cur >= n || snapshotEpochs.CompareAndSwap(cur, n) {
			return
		}
	}
}

// LinkUpdate revises one link's state in a new epoch, typically from a
// live measurement. Bandwidth is in bytes per second; a value <= 0 (or
// NaN) keeps the current bandwidth. Latency is in seconds; a value < 0
// (or NaN) keeps the current latency.
type LinkUpdate struct {
	Link      string
	Bandwidth float64
	Latency   float64
}

// Snapshot is one epoch of a compiled platform: shared immutable topology
// plus this epoch's link-state pages. All methods are safe for concurrent
// use and lock-free.
type Snapshot struct {
	topo  *topology
	epoch uint64

	// Current link and host state, paged copy-on-write across epochs.
	bw    []*statePage
	lat   []*statePage
	speed []*statePage

	// latDirty records that some epoch in this snapshot's history revised
	// a latency; when false, route latencies are served straight from the
	// compiled base sums.
	latDirty bool

	// provenance describes how this epoch was derived (a scenario
	// overlay's mutation list); empty for base and observation epochs,
	// whose provenance lives in the Timeline.
	provenance string
}

// topology is the immutable compiled structure shared by all epochs of a
// platform: dense indices, per-AS route tables, the eager route arena and
// the published route memo.
type topology struct {
	src *Platform // the builder this snapshot was compiled from

	hostNames []string
	hostSpeed []float64

	// Endpoints (route sources/destinations): hosts first (endpoint id ==
	// host index), then routers, both in sorted name order.
	pointNames []string
	pointIdx   map[string]int32
	pointAS    []int32 // endpoint id -> owning AS index

	linkNames  []string
	linkIdx    map[string]int32
	linkPolicy []SharingPolicy
	linkBW0    []float64 // base-epoch bandwidth
	linkLat0   []float64 // base-epoch latency

	ases  []snapAS
	arena []LinkRef // shared storage for all eagerly compiled routes

	// routes publishes end-to-end resolutions on demand through a
	// two-level table of atomic pointers: one row per source endpoint,
	// allocated on the source's first resolution, with one slot per
	// destination. A warm read is two atomic loads and an array index —
	// no lock, no hashing — so concurrent forecast workers never touch a
	// shared cache line outside the routes themselves. Cold resolutions
	// race benignly: both compute the identical immutable route and the
	// first CompareAndSwap wins. Memory: one row costs 8·numPoints bytes,
	// paid only for endpoints that actually source traffic.
	routes []atomic.Pointer[routeRow]
}

// routeRow holds the published routes out of one source endpoint.
type routeRow struct {
	slots []atomic.Pointer[CompiledRoute]
}

// routeRef is a slice of the shared arena plus the route's base latency.
type routeRef struct {
	off, n int32
	lat    float64
}

// snapASRoute is a compiled AS-level route: gateways as endpoint ids and
// the connecting links in the arena.
type snapASRoute struct {
	gwSrc, gwDst     int32
	gwSrcAS, gwDstAS int32
	links            routeRef
}

// snapAS is the compiled form of one AS. Netpoints are addressed by
// *codes*: endpoints (hosts/routers) use their endpoint id, child ASes
// use numPoints + their AS index — globally unique, so per-AS tables can
// be keyed by packed code pairs without string hashing.
type snapAS struct {
	id      string
	routing RoutingKind
	code    int32   // this AS's own point code (in its parent's tables)
	chain   []int32 // ancestry as AS indices, root-first, self included

	// Full routing: explicit local routes keyed by packed codes.
	full map[uint64]routeRef

	// Floyd routing, compiled eagerly on dense local indices: fCode maps a
	// point code to its local index, fNext is the flattened n×n next-hop
	// matrix (-1 when unreachable), fEdge holds the declared one-hop
	// routes keyed by packed local index pairs.
	fN    int32
	fCode map[int32]int32
	fNext []int32
	fEdge map[uint64]routeRef

	// Cluster routing: per-host private link index, optional backbone
	// link index (-1 none) and gateway router endpoint id (-1 none).
	clPrivate map[int32]int32
	clBB      int32
	clRouter  int32

	// AS-level routes between child points, keyed by packed codes.
	asRoutes map[uint64]snapASRoute
}

func packPair(a, b int32) uint64 { return uint64(uint32(a))<<32 | uint64(uint32(b)) }

// Compile lowers the platform into a fresh base-epoch snapshot. The
// platform must not be mutated concurrently (the builder API is already
// documented as single-threaded); the result is immutable and safe to
// share. Most callers want Snapshot, which memoizes the compilation until
// the next mutation.
func (p *Platform) Compile() *Snapshot {
	// Floyd tables are built lazily by the query path under p.mu; take the
	// same lock so compiling during live traffic is safe.
	p.mu.Lock()
	defer p.mu.Unlock()

	t := &topology{src: p}

	// Dense host/link indices in sorted-name order (matching Hosts/Links).
	hostNames := make([]string, 0, len(p.hosts))
	for n := range p.hosts {
		hostNames = append(hostNames, n)
	}
	sort.Strings(hostNames)
	routerNames := make([]string, 0, len(p.routers))
	for n := range p.routers {
		routerNames = append(routerNames, n)
	}
	sort.Strings(routerNames)
	t.hostNames = hostNames
	t.hostSpeed = make([]float64, len(hostNames))
	t.pointNames = make([]string, 0, len(hostNames)+len(routerNames))
	t.pointNames = append(t.pointNames, hostNames...)
	t.pointNames = append(t.pointNames, routerNames...)
	t.pointIdx = make(map[string]int32, len(t.pointNames))
	for i, n := range t.pointNames {
		t.pointIdx[n] = int32(i)
	}
	for i, n := range hostNames {
		t.hostSpeed[i] = p.hosts[n].Speed
	}

	linkNames := make([]string, 0, len(p.links))
	for n := range p.links {
		linkNames = append(linkNames, n)
	}
	sort.Strings(linkNames)
	t.linkNames = linkNames
	t.linkIdx = make(map[string]int32, len(linkNames))
	t.linkPolicy = make([]SharingPolicy, len(linkNames))
	t.linkBW0 = make([]float64, len(linkNames))
	t.linkLat0 = make([]float64, len(linkNames))
	for i, n := range linkNames {
		l := p.links[n]
		t.linkIdx[n] = int32(i)
		t.linkPolicy[i] = l.Policy
		t.linkBW0[i] = l.Bandwidth
		t.linkLat0[i] = l.Latency
	}

	// Enumerate ASes depth-first and compile each.
	asIdx := make(map[*AS]int32)
	var collect func(as *AS)
	collect = func(as *AS) {
		asIdx[as] = int32(len(t.ases))
		t.ases = append(t.ases, snapAS{})
		for _, c := range as.Children() {
			collect(c)
		}
	}
	collect(p.root)

	t.pointAS = make([]int32, len(t.pointNames))
	for i, n := range t.pointNames {
		if h, ok := p.hosts[n]; ok {
			t.pointAS[i] = asIdx[h.AS]
		} else {
			t.pointAS[i] = asIdx[p.routers[n].AS]
		}
	}

	numPoints := int32(len(t.pointNames))
	codeOf := func(as *AS, name string) int32 {
		switch as.points[name] {
		case ASPoint:
			return numPoints + asIdx[as.children[name]]
		default:
			return t.pointIdx[name]
		}
	}

	var compileAS func(as *AS)
	compileAS = func(as *AS) {
		idx := asIdx[as]
		sa := &t.ases[idx]
		sa.id = as.ID
		sa.routing = as.Routing
		sa.code = numPoints + idx
		var chain []int32
		for _, anc := range as.ancestry() {
			chain = append(chain, asIdx[anc])
		}
		sa.chain = chain
		sa.clBB, sa.clRouter = -1, -1

		pushLinks := func(links []LinkUse, lat float64) routeRef {
			off := int32(len(t.arena))
			for _, u := range links {
				t.arena = append(t.arena, MakeLinkRef(t.linkIdx[u.Link.ID], u.Direction))
			}
			return routeRef{off: off, n: int32(len(links)), lat: lat}
		}

		switch as.Routing {
		case RoutingFull:
			sa.full = make(map[uint64]routeRef, len(as.routes))
			for k, r := range as.routes {
				sa.full[packPair(codeOf(as, k.src), codeOf(as, k.dst))] = pushLinks(r.Links, r.Latency)
			}
		case RoutingFloyd:
			if !as.floydBuilt {
				as.buildFloyd()
			}
			n := int32(len(as.floydNames))
			sa.fN = n
			sa.fCode = make(map[int32]int32, n)
			for li, name := range as.floydNames {
				sa.fCode[codeOf(as, name)] = int32(li)
			}
			sa.fNext = append([]int32(nil), as.floydNext...)
			sa.fEdge = make(map[uint64]routeRef, len(as.edges))
			for k, e := range as.edges {
				li, lj := as.floydIdx[k.src], as.floydIdx[k.dst]
				sa.fEdge[packPair(li, lj)] = pushLinks(e.Links, e.Latency)
			}
		case RoutingCluster:
			sa.clPrivate = make(map[int32]int32, len(as.clusterPrivate))
			for host, l := range as.clusterPrivate {
				sa.clPrivate[t.pointIdx[host]] = t.linkIdx[l.ID]
			}
			if as.clusterBB != nil {
				sa.clBB = t.linkIdx[as.clusterBB.ID]
			}
			if as.clusterRouter != "" {
				sa.clRouter = t.pointIdx[as.clusterRouter]
			}
		}

		sa.asRoutes = make(map[uint64]snapASRoute, len(as.asRoutes))
		for k, ar := range as.asRoutes {
			car := snapASRoute{gwSrc: -1, gwDst: -1, links: pushLinks(ar.links, ar.latency)}
			if gi, ok := t.pointIdx[ar.gwSrc]; ok {
				car.gwSrc, car.gwSrcAS = gi, t.pointAS[gi]
			}
			if gi, ok := t.pointIdx[ar.gwDst]; ok {
				car.gwDst, car.gwDstAS = gi, t.pointAS[gi]
			}
			sa.asRoutes[packPair(codeOf(as, k.src), codeOf(as, k.dst))] = car
		}

		for _, c := range as.Children() {
			compileAS(c)
		}
	}
	compileAS(p.root)

	t.routes = make([]atomic.Pointer[routeRow], len(t.pointNames))

	s := &Snapshot{
		topo:  t,
		epoch: snapshotEpochs.Add(1),
		bw:    buildPages(t.linkBW0),
		lat:   buildPages(t.linkLat0),
		speed: buildPages(t.hostSpeed),
	}
	return s
}

// buildPages packs a flat array into state pages.
func buildPages(vals []float64) []*statePage {
	pages := make([]*statePage, (len(vals)+statePageMask)>>statePageShift)
	for pi := range pages {
		pg := new(statePage)
		copy(pg[:], vals[pi<<statePageShift:min((pi+1)<<statePageShift, len(vals))])
		pages[pi] = pg
	}
	return pages
}

// Snapshot returns the platform's memoized base-epoch snapshot, compiling
// it on first use. Builder mutations invalidate the memo (via
// InvalidateRouteCache), so the returned snapshot always reflects the
// current structure — but once handed out it never changes: callers that
// must answer a coherent batch of queries hold on to one Snapshot.
func (p *Platform) Snapshot() *Snapshot {
	if s := p.snap.Load(); s != nil {
		return s
	}
	s := p.Compile()
	if p.snap.CompareAndSwap(nil, s) {
		return s
	}
	return p.snap.Load()
}

// Epoch returns the process-unique epoch number of this snapshot's
// network picture.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Provenance describes how this epoch was derived: the canonical mutation
// list of the scenario overlay that produced it, or "" for base and
// observation epochs (observation provenance is recorded per Timeline
// entry instead).
func (s *Snapshot) Provenance() string { return s.provenance }

// Platform returns the builder platform this snapshot was compiled from.
func (s *Snapshot) Platform() *Platform { return s.topo.src }

// NumHosts returns the number of hosts.
func (s *Snapshot) NumHosts() int { return len(s.topo.hostNames) }

// NumLinks returns the number of links.
func (s *Snapshot) NumLinks() int { return len(s.topo.linkNames) }

// HostIndex returns the dense index of the named host.
func (s *Snapshot) HostIndex(name string) (int32, bool) {
	i, ok := s.topo.pointIdx[name]
	if !ok || int(i) >= len(s.topo.hostNames) {
		return -1, false
	}
	return i, true
}

// HostName returns the name of host i.
func (s *Snapshot) HostName(i int32) string { return s.topo.hostNames[i] }

// HostSpeed returns the speed (flops) of host i at this epoch. A speed of
// exactly 0 marks the host as failed (see OverlayHost); base epochs carry
// the builder-declared speeds.
func (s *Snapshot) HostSpeed(i int32) float64 {
	return s.speed[i>>statePageShift][i&statePageMask]
}

// HostDown reports whether host i is failed at this epoch (overlay speed
// of exactly 0).
func (s *Snapshot) HostDown(i int32) bool { return s.HostSpeed(i) == 0 }

// LinkDown reports whether link i is failed at this epoch (overlay
// bandwidth of exactly 0; observation epochs can never produce one).
func (s *Snapshot) LinkDown(i int32) bool { return s.LinkBandwidth(i) == 0 }

// LinkIndex returns the dense index of the named link.
func (s *Snapshot) LinkIndex(name string) (int32, bool) {
	i, ok := s.topo.linkIdx[name]
	return i, ok
}

// LinkName returns the name of link i.
func (s *Snapshot) LinkName(i int32) string { return s.topo.linkNames[i] }

// LinkPolicy returns the sharing policy of link i (topology-level: shared
// across epochs).
func (s *Snapshot) LinkPolicy(i int32) SharingPolicy { return s.topo.linkPolicy[i] }

// LinkBandwidth returns link i's bandwidth (bytes/s) at this epoch.
func (s *Snapshot) LinkBandwidth(i int32) float64 {
	return s.bw[i>>statePageShift][i&statePageMask]
}

// LinkLatency returns link i's one-way latency (seconds) at this epoch.
func (s *Snapshot) LinkLatency(i int32) float64 {
	return s.lat[i>>statePageShift][i&statePageMask]
}

// LinkUpdateIdx is LinkUpdate addressed by dense link index — the form
// the forecaster bank emits, skipping the name lookup on the hot path.
// The keep-current sentinels are the same: Bandwidth <= 0 (or NaN) keeps
// the bandwidth, Latency < 0 (or NaN) keeps the latency.
type LinkUpdateIdx struct {
	Link      int32
	Bandwidth float64
	Latency   float64
}

// newEpochFrom starts a derived epoch sharing all state pages with the
// receiver.
func (s *Snapshot) newEpochFrom() *Snapshot {
	return &Snapshot{
		topo:     s.topo,
		epoch:    snapshotEpochs.Add(1),
		bw:       append([]*statePage(nil), s.bw...),
		lat:      append([]*statePage(nil), s.lat...),
		speed:    append([]*statePage(nil), s.speed...),
		latDirty: s.latDirty,
	}
}

// cowSet writes val into its page, duplicating the page the first time a
// derivation touches it: a page still shared with the parent is
// recognized by pointer equality against the parent's table.
func cowSet(pages, parent []*statePage, i int32, val float64) {
	pi := i >> statePageShift
	if pages[pi] == parent[pi] {
		pg := *pages[pi]
		pages[pi] = &pg
	}
	pages[pi][i&statePageMask] = val
}

// applyLinkUpdate folds one link revision into the derived epoch ns.
func (ns *Snapshot) applyLinkUpdate(parent *Snapshot, i int32, bandwidth, latency float64) {
	if bandwidth > 0 && !math.IsNaN(bandwidth) && !math.IsInf(bandwidth, 0) {
		cowSet(ns.bw, parent.bw, i, bandwidth)
	}
	if latency >= 0 && !math.IsNaN(latency) && !math.IsInf(latency, 0) {
		if latency != ns.LinkLatency(i) {
			ns.latDirty = true
		}
		cowSet(ns.lat, parent.lat, i, latency)
	}
}

// WithLinkState derives a new epoch with the given link revisions applied.
// Topology, compiled routes and unchanged link-state pages are shared with
// the receiver; only the page table and the pages holding changed entries
// are copied, so the cost is O(changed links) regardless of platform
// size. The receiver is unaffected.
func (s *Snapshot) WithLinkState(updates []LinkUpdate) (*Snapshot, error) {
	ns := s.newEpochFrom()
	for _, u := range updates {
		i, ok := s.topo.linkIdx[u.Link]
		if !ok {
			return nil, fmt.Errorf("platform: unknown link %q in link-state update", u.Link)
		}
		ns.applyLinkUpdate(s, i, u.Bandwidth, u.Latency)
	}
	return ns, nil
}

// WithLinkStateIdx is WithLinkState over dense link indices: the same
// copy-on-write derivation without the name lookups. State semantics are
// identical — an index-addressed batch and its name-addressed equivalent
// produce bit-identical link state.
func (s *Snapshot) WithLinkStateIdx(updates []LinkUpdateIdx) (*Snapshot, error) {
	ns := s.newEpochFrom()
	n := int32(len(s.topo.linkNames))
	for _, u := range updates {
		if u.Link < 0 || u.Link >= n {
			return nil, fmt.Errorf("platform: link index %d out of range in link-state update", u.Link)
		}
		ns.applyLinkUpdate(s, u.Link, u.Bandwidth, u.Latency)
	}
	return ns, nil
}

// CloneWithEpoch derives a zero-change copy of this snapshot carrying
// the given epoch id: identical link/host state (all pages shared),
// identical topology, the requested identity. WAL recovery uses it to
// pin a freshly compiled base snapshot to the epoch id its predecessor
// process logged. The id must come from a recovered log — reusing a live
// epoch id would alias two pictures in epoch-keyed caches.
func (s *Snapshot) CloneWithEpoch(epoch uint64) *Snapshot {
	ns := s.newEpochFrom()
	ns.epoch = epoch
	return ns
}

// withLinkStateEpoch is WithLinkState with a caller-supplied epoch id —
// the timeline recovery path, which must reproduce the exact ids its
// write-ahead log recorded.
func (s *Snapshot) withLinkStateEpoch(updates []LinkUpdate, epoch uint64) (*Snapshot, error) {
	ns, err := s.WithLinkState(updates)
	if err != nil {
		return nil, err
	}
	ns.epoch = epoch
	return ns, nil
}

// OverlayLink is one link revision of a scenario overlay, addressed by
// dense link index. Unlike LinkUpdate (whose keep-current sentinels
// mirror what a measurement can report), an overlay states hypothetical
// values explicitly: NaN keeps the current value, any other value — zero
// included, marking the link failed — is set verbatim. Negative and
// infinite values are rejected.
type OverlayLink struct {
	Link      int32
	Bandwidth float64 // bytes/s; NaN keeps, 0 fails the link
	Latency   float64 // seconds; NaN keeps
}

// OverlayHost is one host revision of a scenario overlay: NaN keeps the
// current speed, 0 fails the host, any other positive value is set
// verbatim.
type OverlayHost struct {
	Host  int32
	Speed float64 // flops; NaN keeps, 0 fails the host
}

// ApplyOverlay derives one new epoch with a whole scenario's mutations
// applied in a single batch: every touched bandwidth/latency/host-speed
// page is copied exactly once (copy-on-write against the receiver), the
// derivation allocates one epoch id regardless of how many mutations the
// scenario composed, and the provenance text — the scenario's canonical
// mutation list — is recorded on the epoch for later inspection. The
// receiver is unaffected. Link revisions with values a measurement could
// report produce bit-identical state to chaining the equivalent
// WithLinkStateIdx calls by hand; what ApplyOverlay adds is explicit
// failure (zero bandwidth / zero speed), host mutations, and the
// one-epoch batch semantics scenarios need.
func (s *Snapshot) ApplyOverlay(links []OverlayLink, hosts []OverlayHost, provenance string) (*Snapshot, error) {
	ns := s.newEpochFrom()
	ns.provenance = provenance
	nl := int32(len(s.topo.linkNames))
	for _, u := range links {
		if u.Link < 0 || u.Link >= nl {
			return nil, fmt.Errorf("platform: link index %d out of range in overlay", u.Link)
		}
		if !math.IsNaN(u.Bandwidth) {
			if u.Bandwidth < 0 || math.IsInf(u.Bandwidth, 0) {
				return nil, fmt.Errorf("platform: invalid overlay bandwidth %v for link %q",
					u.Bandwidth, s.topo.linkNames[u.Link])
			}
			cowSet(ns.bw, s.bw, u.Link, u.Bandwidth)
		}
		if !math.IsNaN(u.Latency) {
			if u.Latency < 0 || math.IsInf(u.Latency, 0) {
				return nil, fmt.Errorf("platform: invalid overlay latency %v for link %q",
					u.Latency, s.topo.linkNames[u.Link])
			}
			if u.Latency != ns.LinkLatency(u.Link) {
				ns.latDirty = true
			}
			cowSet(ns.lat, s.lat, u.Link, u.Latency)
		}
	}
	nh := int32(len(s.topo.hostNames))
	for _, u := range hosts {
		if u.Host < 0 || u.Host >= nh {
			return nil, fmt.Errorf("platform: host index %d out of range in overlay", u.Host)
		}
		if !math.IsNaN(u.Speed) {
			if u.Speed < 0 || math.IsInf(u.Speed, 0) {
				return nil, fmt.Errorf("platform: invalid overlay speed %v for host %q",
					u.Speed, s.topo.hostNames[u.Host])
			}
			cowSet(ns.speed, s.speed, u.Host, u.Speed)
		}
	}
	return ns, nil
}

// RouteLatency returns the route's one-way latency under this epoch's
// link state. While no epoch in the snapshot's history revised a latency
// this is the compiled base sum verbatim; afterwards the per-link deltas
// against the base state are folded in (links back at their base value
// contribute an exact 0), so a round-trip of updates restores the
// original bits.
func (s *Snapshot) RouteLatency(r *CompiledRoute) float64 {
	if !s.latDirty {
		return r.Latency
	}
	lat := r.Latency
	for _, ref := range r.Refs {
		i := ref.LinkIndex()
		lat += s.LinkLatency(i) - s.topo.linkLat0[i]
	}
	return lat
}

// Route resolves the end-to-end route between two hosts (or routers) in
// compiled form. Resolution mirrors Platform.RouteBetween — same AS walk,
// same tables, bit-identical link order and latency sums — but reads only
// immutable compiled state: warm routes are a lock-free map load, cold
// ones a pure computation published for the next caller. The returned
// route is shared and must not be mutated.
func (s *Snapshot) Route(src, dst string) (*CompiledRoute, error) {
	if src == dst {
		return nil, fmt.Errorf("platform: route from %q to itself", src)
	}
	t := s.topo
	si, ok := t.pointIdx[src]
	if !ok {
		return nil, fmt.Errorf("platform: unknown endpoint %q", src)
	}
	di, ok := t.pointIdx[dst]
	if !ok {
		return nil, fmt.Errorf("platform: unknown endpoint %q", dst)
	}
	return t.route(si, di)
}

// RouteIdx is Route addressed by endpoint indices (a host's endpoint id
// is its host index).
func (s *Snapshot) RouteIdx(src, dst int32) (*CompiledRoute, error) {
	if src == dst {
		return nil, fmt.Errorf("platform: route from %q to itself", s.topo.pointNames[src])
	}
	return s.topo.route(src, dst)
}

func (t *topology) route(src, dst int32) (*CompiledRoute, error) {
	row := t.routes[src].Load()
	if row == nil {
		fresh := &routeRow{slots: make([]atomic.Pointer[CompiledRoute], len(t.pointNames))}
		if t.routes[src].CompareAndSwap(nil, fresh) {
			row = fresh
		} else {
			row = t.routes[src].Load()
		}
	}
	if r := row.slots[dst].Load(); r != nil {
		return r, nil
	}
	r := &CompiledRoute{Refs: make([]LinkRef, 0, 8)}
	lat, err := t.resolve(src, t.pointAS[src], dst, t.pointAS[dst], &r.Refs)
	if err != nil {
		return nil, err
	}
	r.Latency = lat
	if !row.slots[dst].CompareAndSwap(nil, r) {
		return row.slots[dst].Load(), nil // lost a benign resolution race
	}
	return r, nil
}

// resolve mirrors Platform.resolve on compiled state: find the deepest
// common ancestor AS, look up the AS-level route between the branches,
// recurse to the gateways and splice. Latencies are summed bottom-up in
// the exact association Platform.resolve uses (sub-route totals first,
// then concatenation), so the result is bit-identical.
func (t *topology) resolve(src, srcAS int32, dst, dstAS int32, refs *[]LinkRef) (float64, error) {
	if srcAS == dstAS {
		return t.localRoute(srcAS, src, dst, refs)
	}
	sChain := t.ases[srcAS].chain
	dChain := t.ases[dstAS].chain
	common := 0
	for common < len(sChain) && common < len(dChain) && sChain[common] == dChain[common] {
		common++
	}
	if common == 0 {
		return 0, fmt.Errorf("platform: %q and %q share no ancestor AS", t.pointNames[src], t.pointNames[dst])
	}
	ancestor := &t.ases[sChain[common-1]]

	srcPoint, dstPoint := src, dst
	haveSrcChild, haveDstChild := false, false
	if common < len(sChain) {
		srcPoint = t.ases[sChain[common]].code
		haveSrcChild = true
	}
	if common < len(dChain) {
		dstPoint = t.ases[dChain[common]].code
		haveDstChild = true
	}
	if !haveSrcChild && !haveDstChild {
		return t.localRoute(sChain[common-1], src, dst, refs)
	}

	ar, ok := ancestor.asRoutes[packPair(srcPoint, dstPoint)]
	if !ok {
		return 0, fmt.Errorf("platform: no ASroute %s->%s in AS %q (for %s->%s)",
			t.codeName(srcPoint), t.codeName(dstPoint), ancestor.id,
			t.pointNames[src], t.pointNames[dst])
	}

	var lat float64
	if haveSrcChild && src != ar.gwSrc {
		if ar.gwSrc < 0 {
			return 0, fmt.Errorf("platform: unresolvable gateway of ASroute %s->%s in AS %q",
				t.codeName(srcPoint), t.codeName(dstPoint), ancestor.id)
		}
		hl, err := t.resolve(src, srcAS, ar.gwSrc, ar.gwSrcAS, refs)
		if err != nil {
			return 0, err
		}
		lat += hl
	}
	*refs = append(*refs, t.arena[ar.links.off:ar.links.off+ar.links.n]...)
	lat += ar.links.lat
	if haveDstChild && dst != ar.gwDst {
		if ar.gwDst < 0 {
			return 0, fmt.Errorf("platform: unresolvable gateway of ASroute %s->%s in AS %q",
				t.codeName(srcPoint), t.codeName(dstPoint), ancestor.id)
		}
		tl, err := t.resolve(ar.gwDst, ar.gwDstAS, dst, dstAS, refs)
		if err != nil {
			return 0, err
		}
		lat += tl
	}
	return lat, nil
}

// codeName renders a point code for error messages.
func (t *topology) codeName(code int32) string {
	if int(code) < len(t.pointNames) {
		return t.pointNames[code]
	}
	return t.ases[code-int32(len(t.pointNames))].id
}

// localRoute resolves a route inside one compiled AS.
func (t *topology) localRoute(asI int32, src, dst int32, refs *[]LinkRef) (float64, error) {
	sa := &t.ases[asI]
	switch sa.routing {
	case RoutingFull:
		rr, ok := sa.full[packPair(src, dst)]
		if !ok {
			return 0, fmt.Errorf("platform: no route %s->%s in Full AS %q",
				t.codeName(src), t.codeName(dst), sa.id)
		}
		*refs = append(*refs, t.arena[rr.off:rr.off+rr.n]...)
		return rr.lat, nil
	case RoutingFloyd:
		return t.floydRoute(sa, src, dst, refs)
	case RoutingCluster:
		return t.clusterRoute(sa, src, dst, refs)
	default:
		return 0, fmt.Errorf("platform: AS %q has unsupported routing", sa.id)
	}
}

// clusterRoute synthesizes the implicit route of a Cluster AS, adding
// latencies in the same order as AS.clusterRoute.
func (t *topology) clusterRoute(sa *snapAS, src, dst int32, refs *[]LinkRef) (float64, error) {
	var lat float64
	if up, ok := sa.clPrivate[src]; ok {
		*refs = append(*refs, MakeLinkRef(up, Up))
		lat += t.linkLat0[up]
	} else if src != sa.clRouter {
		return 0, fmt.Errorf("platform: %q not in cluster AS %q", t.codeName(src), sa.id)
	}
	if sa.clBB >= 0 {
		*refs = append(*refs, MakeLinkRef(sa.clBB, None))
		lat += t.linkLat0[sa.clBB]
	}
	if down, ok := sa.clPrivate[dst]; ok {
		*refs = append(*refs, MakeLinkRef(down, Down))
		lat += t.linkLat0[down]
	} else if dst != sa.clRouter {
		return 0, fmt.Errorf("platform: %q not in cluster AS %q", t.codeName(dst), sa.id)
	}
	return lat, nil
}

// floydRoute reconstructs the shortest path from the compiled next-hop
// matrix, splicing the declared edge routes.
func (t *topology) floydRoute(sa *snapAS, src, dst int32, refs *[]LinkRef) (float64, error) {
	li, ok := sa.fCode[src]
	if !ok {
		return 0, fmt.Errorf("platform: %q unknown in Floyd AS %q", t.codeName(src), sa.id)
	}
	lj, ok := sa.fCode[dst]
	if !ok {
		return 0, fmt.Errorf("platform: %q unknown in Floyd AS %q", t.codeName(dst), sa.id)
	}
	var lat float64
	for cur := li; cur != lj; {
		next := sa.fNext[cur*sa.fN+lj]
		if next < 0 {
			return 0, fmt.Errorf("platform: no Floyd path %s->%s in AS %q",
				t.codeName(src), t.codeName(dst), sa.id)
		}
		edge := sa.fEdge[packPair(cur, next)]
		*refs = append(*refs, t.arena[edge.off:edge.off+edge.n]...)
		lat += edge.lat
		cur = next
	}
	return lat, nil
}

// ExpandRoute converts a compiled route back to the builder-level link
// representation (for tooling, diffing and tests; the hot path stays in
// index form).
func (s *Snapshot) ExpandRoute(r *CompiledRoute) []LinkUse {
	out := make([]LinkUse, len(r.Refs))
	for i, ref := range r.Refs {
		out[i] = LinkUse{
			Link:      s.topo.src.links[s.topo.linkNames[ref.LinkIndex()]],
			Direction: ref.Direction(),
		}
	}
	return out
}
