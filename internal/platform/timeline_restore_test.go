package platform

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestTimelineRestoreRoundTrip is the recovery contract at the platform
// layer: a timeline rebuilt from a fresh compile of the same platform —
// base pinned with CloneWithEpoch, history replayed with AppendPinned,
// counters restored — reports byte-identical stats and answers identical
// link state at every instant.
func TestTimelineRestoreRoundTrip(t *testing.T) {
	p := buildMixedPlatform(t, 4)
	orig := NewTimeline(p.Snapshot(), 3)
	link := "lyon-0_nic"
	li, _ := p.Snapshot().LinkIndex(link)

	// Overflow the depth bound so evictions are exercised too.
	for i, bw := range []float64{1e6, 2e6, 3e6, 4e6, 5e6} {
		if _, err := orig.Append(int64(100+10*i), "probe", []LinkUpdate{{Link: link, Bandwidth: bw, Latency: -1}}); err != nil {
			t.Fatal(err)
		}
	}
	records := orig.Records()
	if len(records) != 3 {
		t.Fatalf("retained %d records, want 3", len(records))
	}
	origStats := orig.Stats()

	// "Restart": an independent compile of the same platform gets fresh
	// epoch ids; recovery pins them back.
	p2 := buildMixedPlatform(t, 4)
	base2 := p2.Snapshot().CloneWithEpoch(origStats.BaseEpoch)
	if base2.Epoch() != origStats.BaseEpoch {
		t.Fatalf("CloneWithEpoch kept epoch %d, want %d", base2.Epoch(), origStats.BaseEpoch)
	}
	if base2.LinkBandwidth(li) != p2.Snapshot().LinkBandwidth(li) {
		t.Fatal("CloneWithEpoch must not change link state")
	}
	restored := NewTimeline(base2, 3)
	for _, rec := range records {
		snap, err := restored.AppendPinned(rec.Time, rec.Source, rec.Updates, rec.Epoch)
		if err != nil {
			t.Fatalf("replaying record at t=%d: %v", rec.Time, err)
		}
		if snap.Epoch() != rec.Epoch {
			t.Fatalf("replayed epoch %d, want pinned %d", snap.Epoch(), rec.Epoch)
		}
	}
	restored.RestoreCounters(origStats.Appends, origStats.Evictions)

	a, _ := json.Marshal(origStats)
	b, _ := json.Marshal(restored.Stats())
	if string(a) != string(b) {
		t.Fatalf("restored stats diverge:\n  orig:     %s\n  restored: %s", a, b)
	}
	for _, at := range []int64{0, 100, 115, 130, 140, 1 << 40} {
		if got, want := restored.AtTime(at).LinkBandwidth(li), orig.AtTime(at).LinkBandwidth(li); got != want {
			t.Errorf("AtTime(%d): bandwidth %v, want %v", at, got, want)
		}
		if got, want := restored.AtTime(at).Epoch(), orig.AtTime(at).Epoch(); got != want {
			t.Errorf("AtTime(%d): epoch %d, want %d", at, got, want)
		}
	}
	if !reflect.DeepEqual(restored.Records(), records) {
		t.Fatal("restored Records() diverge from the original")
	}
}

// TestEnsureEpochAtLeast checks the counter floor recovery relies on for
// the never-reused epoch invariant.
func TestEnsureEpochAtLeast(t *testing.T) {
	cur := AllocateEpoch()
	EnsureEpochAtLeast(cur + 1000)
	if next := AllocateEpoch(); next <= cur+1000 {
		t.Fatalf("allocated %d after flooring at %d", next, cur+1000)
	}
	// A floor below the counter is a no-op.
	before := AllocateEpoch()
	EnsureEpochAtLeast(1)
	if next := AllocateEpoch(); next <= before {
		t.Fatalf("flooring below the counter moved it backwards (%d -> %d)", before, next)
	}
}
