package platform

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

// buildMixedPlatform constructs a platform exercising every routing kind:
// two Full sites of nHosts hosts each, a Cluster site with a backbone, and
// a Floyd backbone AS is emulated by declaring the root's AS routes over a
// small router mesh.
func buildMixedPlatform(t testing.TB, nHosts int) *Platform {
	t.Helper()
	p := New("root", RoutingFull)
	root := p.Root()

	mkSite := func(name string) {
		as, err := root.AddAS("AS_"+name, RoutingFull)
		if err != nil {
			t.Fatal(err)
		}
		gw := name + "-gw"
		if _, err := as.AddRouter(gw); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < nHosts; i++ {
			h := fmt.Sprintf("%s-%d", name, i)
			if _, err := as.AddHost(h, 1e9); err != nil {
				t.Fatal(err)
			}
			l, err := as.AddLink(h+"_nic", 125e6+float64(i)*1e4, 1e-4, Shared)
			if err != nil {
				t.Fatal(err)
			}
			if err := as.AddRoute(h, gw, []LinkUse{{Link: l, Direction: Up}}, true); err != nil {
				t.Fatal(err)
			}
		}
		// Host-to-host routes through both NICs.
		for i := 0; i < nHosts; i++ {
			for j := i + 1; j < nHosts; j++ {
				a := fmt.Sprintf("%s-%d", name, i)
				b := fmt.Sprintf("%s-%d", name, j)
				links := []LinkUse{
					{Link: p.Link(a + "_nic"), Direction: Up},
					{Link: p.Link(b + "_nic"), Direction: Down},
				}
				if err := as.AddRoute(a, b, links, true); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	mkSite("lyon")
	mkSite("nancy")

	// Cluster site.
	cas, err := root.AddAS("AS_cl", RoutingCluster)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cas.AddRouter("cl-gw"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nHosts; i++ {
		if _, err := cas.AddHost(fmt.Sprintf("cl-%d", i), 1e9); err != nil {
			t.Fatal(err)
		}
	}
	bb, err := cas.AddLink("cl_bb", 1.25e9, 5e-5, Shared)
	if err != nil {
		t.Fatal(err)
	}
	if err := cas.SetClusterTopology("cl-gw", 125e6, 1e-4, Shared, bb); err != nil {
		t.Fatal(err)
	}

	// Floyd mesh AS holding a relay router chain between two more hosts.
	fas, err := root.AddAS("AS_mesh", RoutingFloyd)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []string{"m-in", "m-mid", "m-out"} {
		if _, err := fas.AddRouter(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fas.AddHost("mesh-0", 1e9); err != nil {
		t.Fatal(err)
	}
	e1, _ := fas.AddLink("m_e1", 1e9, 2e-4, FullDuplex)
	e2, _ := fas.AddLink("m_e2", 1e9, 1e-4, FullDuplex)
	e3, _ := fas.AddLink("m_e3", 1e9, 1e-4, FullDuplex)
	e4, _ := fas.AddLink("m_e4", 1e9, 5e-4, FullDuplex)
	if err := fas.AddRoute("m-in", "m-mid", []LinkUse{{Link: e1, Direction: Up}}, true); err != nil {
		t.Fatal(err)
	}
	if err := fas.AddRoute("m-mid", "m-out", []LinkUse{{Link: e2, Direction: Up}}, true); err != nil {
		t.Fatal(err)
	}
	if err := fas.AddRoute("mesh-0", "m-in", []LinkUse{{Link: e3, Direction: Up}}, true); err != nil {
		t.Fatal(err)
	}
	if err := fas.AddRoute("m-in", "m-out", []LinkUse{{Link: e4, Direction: Up}}, true); err != nil {
		t.Fatal(err)
	}

	// Backbone links joining the ASes at the root.
	join := func(a, gwA, b, gwB, link string, lat float64) {
		l, err := root.AddLink(link, 1.25e9, lat, FullDuplex)
		if err != nil {
			t.Fatal(err)
		}
		if err := root.AddASRoute(a, gwA, b, gwB, []LinkUse{{Link: l, Direction: Up}}, true); err != nil {
			t.Fatal(err)
		}
	}
	join("AS_lyon", "lyon-gw", "AS_nancy", "nancy-gw", "bb_ln", 2.25e-3)
	join("AS_lyon", "lyon-gw", "AS_cl", "cl-gw", "bb_lc", 2.25e-3)
	join("AS_nancy", "nancy-gw", "AS_cl", "cl-gw", "bb_nc", 2.5e-3)
	join("AS_lyon", "lyon-gw", "AS_mesh", "m-in", "bb_lm", 3e-3)
	join("AS_nancy", "nancy-gw", "AS_mesh", "m-out", "bb_nm", 3e-3)
	join("AS_cl", "cl-gw", "AS_mesh", "m-in", "bb_cm", 3.5e-3)
	return p
}

// requireSameRoute asserts a compiled route is bit-identical to a builder
// route: same links in the same order, same directions, same latency bits.
func requireSameRoute(t *testing.T, s *Snapshot, want Route, got *CompiledRoute, whoA, whoB string) {
	t.Helper()
	if len(want.Links) != len(got.Refs) {
		t.Fatalf("%s->%s: %d links vs %d refs", whoA, whoB, len(want.Links), len(got.Refs))
	}
	for i, u := range want.Links {
		ref := got.Refs[i]
		if s.LinkName(ref.LinkIndex()) != u.Link.ID || ref.Direction() != u.Direction {
			t.Fatalf("%s->%s hop %d: want %s:%v got %s:%v", whoA, whoB, i,
				u.Link.ID, u.Direction, s.LinkName(ref.LinkIndex()), ref.Direction())
		}
	}
	if math.Float64bits(want.Latency) != math.Float64bits(s.RouteLatency(got)) {
		t.Fatalf("%s->%s: latency %v vs %v (bits differ)", whoA, whoB, want.Latency, s.RouteLatency(got))
	}
}

// TestSnapshotRouteEquivalence checks Snapshot.Route against RouteBetween
// for every endpoint pair of a platform mixing Full, Floyd and Cluster
// routing.
func TestSnapshotRouteEquivalence(t *testing.T) {
	p := buildMixedPlatform(t, 4)
	s := p.Snapshot()

	var points []string
	for _, h := range p.Hosts() {
		points = append(points, h.ID)
	}
	points = append(points, "lyon-gw", "nancy-gw", "cl-gw", "m-in", "m-mid", "m-out")

	for _, a := range points {
		for _, b := range points {
			if a == b {
				continue
			}
			want, errW := p.RouteBetween(a, b)
			got, errG := s.Route(a, b)
			if (errW == nil) != (errG == nil) {
				t.Fatalf("%s->%s: RouteBetween err=%v, Snapshot err=%v", a, b, errW, errG)
			}
			if errW != nil {
				continue
			}
			requireSameRoute(t, s, want, got, a, b)
		}
	}
}

// TestSnapshotRouteErrors checks the error paths mirror the builder's.
func TestSnapshotRouteErrors(t *testing.T) {
	p := buildMixedPlatform(t, 2)
	s := p.Snapshot()
	if _, err := s.Route("lyon-0", "lyon-0"); err == nil {
		t.Fatal("self route should fail")
	}
	if _, err := s.Route("lyon-0", "nonexistent"); err == nil {
		t.Fatal("unknown endpoint should fail")
	}
	if _, err := s.Route("nonexistent", "lyon-0"); err == nil {
		t.Fatal("unknown endpoint should fail")
	}
}

// TestSnapshotMemoInvalidation checks that builder mutations recompile.
func TestSnapshotMemoInvalidation(t *testing.T) {
	p := buildMixedPlatform(t, 2)
	s1 := p.Snapshot()
	if s2 := p.Snapshot(); s1 != s2 {
		t.Fatal("snapshot memo not reused")
	}
	if _, err := p.Root().AddLink("late", 1e9, 1e-3, Shared); err != nil {
		t.Fatal(err)
	}
	s3 := p.Snapshot()
	if s3 == s1 {
		t.Fatal("mutation did not invalidate the snapshot memo")
	}
	if s3.Epoch() <= s1.Epoch() {
		t.Fatalf("epochs must be strictly increasing: %d then %d", s1.Epoch(), s3.Epoch())
	}
	if _, ok := s3.LinkIndex("late"); !ok {
		t.Fatal("recompiled snapshot misses the new link")
	}
	if _, ok := s1.LinkIndex("late"); ok {
		t.Fatal("old snapshot must not see the new link")
	}
}

// TestWithLinkState checks copy-on-write epoch derivation: updates land in
// the new epoch only, unrelated links share state, and a round trip back
// to the original values restores bit-identical route latencies.
func TestWithLinkState(t *testing.T) {
	p := buildMixedPlatform(t, 4)
	s0 := p.Snapshot()
	li, ok := s0.LinkIndex("lyon-0_nic")
	if !ok {
		t.Fatal("missing link")
	}
	origBW, origLat := s0.LinkBandwidth(li), s0.LinkLatency(li)

	s1, err := s0.WithLinkState([]LinkUpdate{{Link: "lyon-0_nic", Bandwidth: 9e6, Latency: 3e-3}})
	if err != nil {
		t.Fatal(err)
	}
	if s1.Epoch() <= s0.Epoch() {
		t.Fatal("derived epoch must be newer")
	}
	if got := s1.LinkBandwidth(li); got != 9e6 {
		t.Fatalf("bandwidth not updated: %v", got)
	}
	if got := s1.LinkLatency(li); got != 3e-3 {
		t.Fatalf("latency not updated: %v", got)
	}
	if s0.LinkBandwidth(li) != origBW || s0.LinkLatency(li) != origLat {
		t.Fatal("parent epoch mutated")
	}

	// Keep-current sentinels.
	s2, err := s1.WithLinkState([]LinkUpdate{{Link: "lyon-0_nic", Bandwidth: -1, Latency: -1}})
	if err != nil {
		t.Fatal(err)
	}
	if s2.LinkBandwidth(li) != 9e6 || s2.LinkLatency(li) != 3e-3 {
		t.Fatal("negative update values must keep current state")
	}

	if _, err := s0.WithLinkState([]LinkUpdate{{Link: "ghost", Bandwidth: 1}}); err == nil {
		t.Fatal("unknown link must fail")
	}

	// Routes crossing the updated link see the revised latency; others are
	// untouched bit-for-bit.
	r, err := s1.Route("lyon-0", "lyon-1")
	if err != nil {
		t.Fatal(err)
	}
	base, _ := s0.Route("lyon-0", "lyon-1")
	wantLat := base.Latency + (3e-3 - origLat)
	if got := s1.RouteLatency(r); got != wantLat {
		t.Fatalf("updated route latency: got %v want %v", got, wantLat)
	}
	other, err := s1.Route("nancy-0", "nancy-1")
	if err != nil {
		t.Fatal(err)
	}
	otherBase, _ := s0.Route("nancy-0", "nancy-1")
	if math.Float64bits(s1.RouteLatency(other)) != math.Float64bits(s0.RouteLatency(otherBase)) {
		t.Fatal("unrelated route latency changed")
	}

	// Round trip: revert to the original values; every route latency must
	// come back bit-identical to the base epoch even though the epoch is
	// marked latency-dirty.
	s3, err := s1.WithLinkState([]LinkUpdate{{Link: "lyon-0_nic", Bandwidth: origBW, Latency: origLat}})
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]string{{"lyon-0", "lyon-1"}, {"lyon-0", "nancy-3"}, {"cl-0", "cl-1"}, {"mesh-0", "lyon-2"}} {
		rr, err := s3.Route(pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		want, err := p.RouteBetween(pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(s3.RouteLatency(rr)) != math.Float64bits(want.Latency) {
			t.Fatalf("%v: round-trip latency %v != original %v", pair, s3.RouteLatency(rr), want.Latency)
		}
		if s3.LinkBandwidth(li) != origBW {
			t.Fatal("round-trip bandwidth mismatch")
		}
	}
}

// TestWithLinkStateAllocBound pins the copy-on-write claim: deriving an
// epoch with one changed link allocates a few state pages and the page
// tables — not the O(platform) arrays a naive copy would. The bound is
// asserted on a platform ~4x larger than the first to show the cost does
// not scale with the link count.
func TestWithLinkStateAllocBound(t *testing.T) {
	small := buildMixedPlatform(t, 8).Snapshot()
	big := buildMixedPlatform(t, 32).Snapshot()
	upd := []LinkUpdate{{Link: "lyon-0_nic", Bandwidth: 1e6, Latency: 1e-3}}

	allocs := func(s *Snapshot) float64 {
		return testing.AllocsPerRun(100, func() {
			if _, err := s.WithLinkState(upd); err != nil {
				t.Fatal(err)
			}
		})
	}
	aSmall, aBig := allocs(small), allocs(big)
	if aBig > aSmall+2 {
		t.Fatalf("allocation count grew with platform size: %v (small) vs %v (big)", aSmall, aBig)
	}
	if aBig > 12 {
		t.Fatalf("WithLinkState allocates too much: %v allocs for a 1-link update", aBig)
	}
}

// TestSnapshotConcurrentAccess hammers the lock-free structures from many
// goroutines — cold and warm route resolutions racing with epoch
// derivations — and checks (under -race in CI) that every answer matches
// the sequentially resolved truth.
func TestSnapshotConcurrentAccess(t *testing.T) {
	p := buildMixedPlatform(t, 6)
	s := p.Snapshot()
	hosts := p.Hosts()
	truth := make(map[[2]string]float64)
	for _, a := range hosts {
		for _, b := range hosts {
			if a == b {
				continue
			}
			r, err := p.RouteBetween(a.ID, b.ID)
			if err != nil {
				t.Fatal(err)
			}
			truth[[2]string{a.ID, b.ID}] = r.Latency
		}
	}
	// Fresh snapshot so every pair starts cold and resolutions race.
	p.InvalidateRouteCache()
	s = p.Snapshot()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 200; iter++ {
				a := hosts[(g*7+iter)%len(hosts)].ID
				b := hosts[(g*13+iter*3+1)%len(hosts)].ID
				if a == b {
					continue
				}
				r, err := s.Route(a, b)
				if err != nil {
					t.Error(err)
					return
				}
				if got := s.RouteLatency(r); got != truth[[2]string{a, b}] {
					t.Errorf("%s->%s: %v != %v", a, b, got, truth[[2]string{a, b}])
					return
				}
				if iter%17 == 0 {
					if _, err := s.WithLinkState([]LinkUpdate{{Link: "cl_bb", Bandwidth: 1e9 + float64(iter), Latency: -1}}); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestValidateSamplesAcrossClusters checks that Validate's host sampling
// strides across the whole (sorted) host list instead of taking the first
// N names, which on multi-cluster platforms all come from one cluster.
func TestValidateSamplesAcrossClusters(t *testing.T) {
	p := buildMixedPlatform(t, 10) // clusters: cl-*, lyon-*, mesh-0, nancy-*
	if err := p.Validate(6); err != nil {
		t.Fatal(err)
	}
	// Break a route of the *last* cluster in sorted host order (nancy): a
	// first-N sample (all cl-* hosts) would never notice. nancy-4 is the
	// host a 6-of-31 stride lands on; dropping its gateway route breaks
	// every cross-AS path that ends there.
	as := p.Root().Children()[1] // AS_nancy
	if as.ID != "AS_nancy" {
		t.Fatalf("unexpected AS order: %s", as.ID)
	}
	delete(as.routes, pairKey{"nancy-gw", "nancy-4"})
	p.InvalidateRouteCache()
	if err := p.Validate(0); err == nil {
		t.Fatal("sanity: full validation should fail on the broken route")
	}
	p.InvalidateRouteCache()
	if err := p.Validate(6); err == nil {
		t.Fatal("stride sampling (6 of 31 hosts) should reach the nancy cluster and fail")
	}
}
