package platform

import (
	"errors"
	"math"
	"testing"
)

// TestTimelineAtTime checks the temporal lookup semantics: AtTime answers
// the newest observation at or before t, earlier times answer the base
// epoch, and equal-timestamp appends resolve to the latest one.
func TestTimelineAtTime(t *testing.T) {
	p := buildMixedPlatform(t, 4)
	base := p.Snapshot()
	tl := NewTimeline(base, 8)

	if tl.Latest() != base || tl.AtTime(12345) != base {
		t.Fatal("empty timeline must answer the base epoch everywhere")
	}
	if _, ok := tl.LatestTime(); ok {
		t.Fatal("empty timeline has no latest time")
	}

	link := "lyon-0_nic"
	li, _ := base.LinkIndex(link)
	steps := []struct {
		t  int64
		bw float64
	}{{100, 1e6}, {200, 2e6}, {200, 3e6}, {500, 4e6}}
	for _, s := range steps {
		if _, err := tl.Append(s.t, "test", []LinkUpdate{{Link: link, Bandwidth: s.bw, Latency: -1}}); err != nil {
			t.Fatal(err)
		}
	}

	for _, c := range []struct {
		at   int64
		want float64
	}{
		{99, base.LinkBandwidth(li)},
		{100, 1e6},
		{150, 1e6},
		{200, 3e6}, // equal timestamps: latest append wins
		{499, 3e6},
		{500, 4e6},
		{1 << 40, 4e6},
	} {
		if got := tl.AtTime(c.at).LinkBandwidth(li); got != c.want {
			t.Errorf("AtTime(%d): bandwidth %v, want %v", c.at, got, c.want)
		}
	}
	if lt, ok := tl.LatestTime(); !ok || lt != 500 {
		t.Fatalf("LatestTime = %d, %v; want 500, true", lt, ok)
	}
	if tl.Latest() != tl.AtTime(500) {
		t.Fatal("Latest must be the newest retained epoch")
	}

	// Ordering: older-than-head observations are rejected.
	if _, err := tl.Append(499, "late", nil); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("out-of-order append: err = %v, want ErrOutOfOrder", err)
	}
	// Unknown links are rejected without touching the history.
	if _, err := tl.Append(600, "bad", []LinkUpdate{{Link: "ghost", Bandwidth: 1}}); err == nil {
		t.Fatal("unknown link must fail")
	}
	if st := tl.Stats(); st.Appends != 4 || st.Depth != 4 {
		t.Fatalf("failed appends must not count: %+v", st)
	}
}

// TestTimelineEviction checks the depth bound: the ring drops oldest
// entries, lookups before the retained window fall back to the base
// epoch, and the stats record the churn.
func TestTimelineEviction(t *testing.T) {
	p := buildMixedPlatform(t, 4)
	base := p.Snapshot()
	tl := NewTimeline(base, 4)
	link := "nancy-1_nic"
	li, _ := base.LinkIndex(link)

	for i := 1; i <= 10; i++ {
		if _, err := tl.Append(int64(i*100), "probe", []LinkUpdate{{Link: link, Bandwidth: float64(i) * 1e6, Latency: -1}}); err != nil {
			t.Fatal(err)
		}
	}
	if tl.Depth() != 4 || tl.Capacity() != 4 {
		t.Fatalf("depth/capacity = %d/%d, want 4/4", tl.Depth(), tl.Capacity())
	}
	st := tl.Stats()
	if st.Appends != 10 || st.Evictions != 6 {
		t.Fatalf("stats = %+v, want 10 appends, 6 evictions", st)
	}
	if st.FirstTime != 700 || st.LastTime != 1000 {
		t.Fatalf("retained window [%d, %d], want [700, 1000]", st.FirstTime, st.LastTime)
	}
	if len(st.Entries) != 4 || st.Entries[0].Source != "probe" || st.Entries[0].Changed != 1 {
		t.Fatalf("entries = %+v", st.Entries)
	}
	for i := 1; i < len(st.Entries); i++ {
		if st.Entries[i].Time < st.Entries[i-1].Time || st.Entries[i].Epoch <= st.Entries[i-1].Epoch {
			t.Fatalf("entries not ordered: %+v", st.Entries)
		}
	}
	// Retained times still answer their epochs; evicted times answer base.
	if got := tl.AtTime(800).LinkBandwidth(li); got != 8e6 {
		t.Fatalf("AtTime(800) = %v, want 8e6", got)
	}
	if got := tl.AtTime(650).LinkBandwidth(li); got != base.LinkBandwidth(li) {
		t.Fatalf("evicted range must answer base, got %v", got)
	}
}

// TestWithLinkStateIdxEquivalence checks the dense-index derivation is
// bit-identical to the name-addressed one across every link, including
// keep-current sentinels and latency revisions.
func TestWithLinkStateIdxEquivalence(t *testing.T) {
	p := buildMixedPlatform(t, 4)
	s := p.Snapshot()

	var byName []LinkUpdate
	var byIdx []LinkUpdateIdx
	for i := int32(0); i < int32(s.NumLinks()); i++ {
		bw, lat := -1.0, -1.0
		switch i % 3 {
		case 0:
			bw = 1e7 + float64(i)*1e3
		case 1:
			lat = 1e-3 + float64(i)*1e-6
		default:
			bw, lat = 2e7+float64(i)*1e3, 2e-3
		}
		byName = append(byName, LinkUpdate{Link: s.LinkName(i), Bandwidth: bw, Latency: lat})
		byIdx = append(byIdx, LinkUpdateIdx{Link: i, Bandwidth: bw, Latency: lat})
	}
	a, err := s.WithLinkState(byName)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.WithLinkStateIdx(byIdx)
	if err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < int32(s.NumLinks()); i++ {
		if math.Float64bits(a.LinkBandwidth(i)) != math.Float64bits(b.LinkBandwidth(i)) ||
			math.Float64bits(a.LinkLatency(i)) != math.Float64bits(b.LinkLatency(i)) {
			t.Fatalf("link %s: state diverges between name and index derivation", s.LinkName(i))
		}
	}
	if a.latDirty != b.latDirty {
		t.Fatal("latDirty diverges between name and index derivation")
	}
	if _, err := s.WithLinkStateIdx([]LinkUpdateIdx{{Link: int32(s.NumLinks()), Bandwidth: 1}}); err == nil {
		t.Fatal("out-of-range index must fail")
	}
}
