package platform

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// TestApplyOverlayMatchesChainedWithLinkStateIdx is the differential
// property test of the scenario-overlay tentpole: for random batches of
// link revisions whose values a measurement could report (positive
// bandwidth, non-negative latency), ApplyOverlay in one batch must be
// bit-identical — every link's bandwidth and latency bits, latDirty
// behaviour included via RouteLatency — to chaining the equivalent
// WithLinkStateIdx calls one revision at a time.
func TestApplyOverlayMatchesChainedWithLinkStateIdx(t *testing.T) {
	p := buildMixedPlatform(t, 4)
	base := p.Snapshot()
	n := int32(base.NumLinks())
	if n < 4 {
		t.Fatalf("platform too small: %d links", n)
	}

	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		count := 1 + rng.Intn(int(n))
		overlay := make([]OverlayLink, count)
		chain := make([]LinkUpdateIdx, count)
		for i := range overlay {
			li := int32(rng.Intn(int(n)))
			ou := OverlayLink{Link: li, Bandwidth: math.NaN(), Latency: math.NaN()}
			cu := LinkUpdateIdx{Link: li, Bandwidth: -1, Latency: -1}
			if rng.Intn(3) > 0 { // revise bandwidth
				bw := 1e6 + rng.Float64()*2e8
				ou.Bandwidth, cu.Bandwidth = bw, bw
			}
			if rng.Intn(3) == 0 { // revise latency
				lat := rng.Float64() * 1e-2
				ou.Latency, cu.Latency = lat, lat
			}
			overlay[i] = ou
			chain[i] = cu
		}

		got, err := base.ApplyOverlay(overlay, nil, "test")
		if err != nil {
			t.Fatalf("seed %d: ApplyOverlay: %v", seed, err)
		}
		want := base
		for _, cu := range chain {
			want, err = want.WithLinkStateIdx([]LinkUpdateIdx{cu})
			if err != nil {
				t.Fatalf("seed %d: WithLinkStateIdx: %v", seed, err)
			}
		}

		for li := int32(0); li < n; li++ {
			gb, wb := got.LinkBandwidth(li), want.LinkBandwidth(li)
			gl, wl := got.LinkLatency(li), want.LinkLatency(li)
			if math.Float64bits(gb) != math.Float64bits(wb) {
				t.Fatalf("seed %d: link %d bandwidth %v != chained %v", seed, li, gb, wb)
			}
			if math.Float64bits(gl) != math.Float64bits(wl) {
				t.Fatalf("seed %d: link %d latency %v != chained %v", seed, li, gl, wl)
			}
		}

		// Route latencies must match bit-for-bit too (latDirty parity).
		hosts := []string{"lyon-0", "nancy-3", "cl-0", "cl-2"}
		for i, a := range hosts {
			for _, b := range hosts[i+1:] {
				gr, err := got.Route(a, b)
				if err != nil {
					t.Fatalf("route %s->%s: %v", a, b, err)
				}
				wr, err := want.Route(a, b)
				if err != nil {
					t.Fatalf("route %s->%s: %v", a, b, err)
				}
				if math.Float64bits(got.RouteLatency(gr)) != math.Float64bits(want.RouteLatency(wr)) {
					t.Fatalf("seed %d: route %s->%s latency %v != chained %v",
						seed, a, b, got.RouteLatency(gr), want.RouteLatency(wr))
				}
			}
		}

		// The overlay spent exactly one epoch id; the chain spent count.
		if got.Epoch() <= base.Epoch() {
			t.Fatalf("seed %d: overlay epoch %d not newer than base %d", seed, got.Epoch(), base.Epoch())
		}
	}
}

func TestApplyOverlayFailuresAndHosts(t *testing.T) {
	p := buildMixedPlatform(t, 2)
	base := p.Snapshot()
	li, ok := base.LinkIndex("lyon-0_nic")
	if !ok {
		t.Fatal("missing link")
	}
	hi, ok := base.HostIndex("nancy-1")
	if !ok {
		t.Fatal("missing host")
	}

	ns, err := base.ApplyOverlay(
		[]OverlayLink{{Link: li, Bandwidth: 0, Latency: math.NaN()}},
		[]OverlayHost{{Host: hi, Speed: 0}},
		"fail_link lyon-0_nic; fail_host nancy-1")
	if err != nil {
		t.Fatal(err)
	}
	if !ns.LinkDown(li) || ns.LinkBandwidth(li) != 0 {
		t.Errorf("link not failed: bw=%v", ns.LinkBandwidth(li))
	}
	if !ns.HostDown(hi) || ns.HostSpeed(hi) != 0 {
		t.Errorf("host not failed: speed=%v", ns.HostSpeed(hi))
	}
	if ns.Provenance() != "fail_link lyon-0_nic; fail_host nancy-1" {
		t.Errorf("provenance = %q", ns.Provenance())
	}
	// The base epoch is unaffected (copy-on-write).
	if base.LinkDown(li) || base.HostDown(hi) || base.Provenance() != "" {
		t.Error("base epoch mutated by overlay")
	}
	// Untouched state is shared bit-for-bit.
	for i := int32(0); i < int32(base.NumLinks()); i++ {
		if i == li {
			continue
		}
		if ns.LinkBandwidth(i) != base.LinkBandwidth(i) {
			t.Fatalf("untouched link %d changed", i)
		}
	}
	for i := int32(0); i < int32(base.NumHosts()); i++ {
		if i == hi {
			continue
		}
		if ns.HostSpeed(i) != base.HostSpeed(i) {
			t.Fatalf("untouched host %d changed", i)
		}
	}
}

func TestApplyOverlayRejectsInvalid(t *testing.T) {
	p := buildMixedPlatform(t, 2)
	base := p.Snapshot()
	cases := []struct {
		links []OverlayLink
		hosts []OverlayHost
	}{
		{links: []OverlayLink{{Link: -1, Bandwidth: 1e6, Latency: math.NaN()}}},
		{links: []OverlayLink{{Link: int32(base.NumLinks()), Bandwidth: 1e6, Latency: math.NaN()}}},
		{links: []OverlayLink{{Link: 0, Bandwidth: -5, Latency: math.NaN()}}},
		{links: []OverlayLink{{Link: 0, Bandwidth: math.Inf(1), Latency: math.NaN()}}},
		{links: []OverlayLink{{Link: 0, Bandwidth: math.NaN(), Latency: -1}}},
		{hosts: []OverlayHost{{Host: -1, Speed: 1e9}}},
		{hosts: []OverlayHost{{Host: int32(base.NumHosts()), Speed: 1e9}}},
		{hosts: []OverlayHost{{Host: 0, Speed: -1}}},
	}
	for i, c := range cases {
		if _, err := base.ApplyOverlay(c.links, c.hosts, ""); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// TestApplyOverlayOneCopyPerPage pins the batch-COW claim: a scenario
// touching many links on the same state page must copy that page once,
// not once per mutation.
func TestApplyOverlayOneCopyPerPage(t *testing.T) {
	p := New("flat", RoutingFull)
	as := p.Root()
	for i := 0; i < 2; i++ {
		if _, err := as.AddHost(fmt.Sprintf("h%d", i), 1e9); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < statePageSize; i++ {
		if _, err := as.AddLink(fmt.Sprintf("l%03d", i), 1e8, 1e-4, Shared); err != nil {
			t.Fatal(err)
		}
	}
	base := p.Snapshot()
	overlay := make([]OverlayLink, statePageSize)
	for i := range overlay {
		overlay[i] = OverlayLink{Link: int32(i), Bandwidth: 5e7, Latency: math.NaN()}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := base.ApplyOverlay(overlay, nil, "scale all"); err != nil {
			t.Fatal(err)
		}
	})
	// One snapshot struct, three page tables, one copied bandwidth page:
	// well under one alloc per touched link.
	if allocs > 8 {
		t.Errorf("ApplyOverlay of %d same-page links allocated %.0f times", statePageSize, allocs)
	}
}

// TestAddHostRejectsSentinelSpeeds: 0 is the overlay failure sentinel and
// must never enter through the builder.
func TestAddHostRejectsSentinelSpeeds(t *testing.T) {
	p := New("v", RoutingFull)
	for _, speed := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := p.Root().AddHost("h", speed); err == nil {
			t.Errorf("speed %v accepted", speed)
		}
	}
}
