package platform

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// This file implements reading and writing of SimGrid-flavoured platform
// XML. The dialect is the version-3 format the paper's generators emitted:
//
//	<?xml version='1.0'?>
//	<platform version="3">
//	  <AS id="AS_grid5000" routing="Full">
//	    <AS id="AS_lyon" routing="Full">
//	      <host id="sagittaire-1.lyon.grid5000.fr" power="4.8e9">
//	        <prop id="cluster" value="sagittaire"/>
//	      </host>
//	      <router id="gw.lyon"/>
//	      <link id="sagittaire-1-nic" bandwidth="125000000" latency="1e-4"
//	            sharing_policy="SHARED"/>
//	      <route src="sagittaire-1.lyon.grid5000.fr" dst="gw.lyon"
//	             symmetrical="YES"><link_ctn id="sagittaire-1-nic"/></route>
//	    </AS>
//	    <ASroute src="AS_lyon" dst="AS_nancy" gw_src="gw.lyon"
//	             gw_dst="gw.nancy"><link_ctn id="bb_lyon_nancy"/></ASroute>
//	  </AS>
//	</platform>
//
// Cluster-routing ASes serialize their implicit structure with a
// <cluster_topology> element so that a written platform parses back to an
// equivalent one (round-trip property, tested in xml_test.go).

type xmlPlatform struct {
	XMLName xml.Name `xml:"platform"`
	Version string   `xml:"version,attr"`
	AS      xmlAS    `xml:"AS"`
}

type xmlAS struct {
	ID       string        `xml:"id,attr"`
	Routing  string        `xml:"routing,attr"`
	Hosts    []xmlHost     `xml:"host"`
	Routers  []xmlRouter   `xml:"router"`
	Links    []xmlLink     `xml:"link"`
	Routes   []xmlRoute    `xml:"route"`
	ASRoutes []xmlASRoute  `xml:"ASroute"`
	Children []xmlAS       `xml:"AS"`
	Cluster  *xmlClusterTp `xml:"cluster_topology"`
}

type xmlHost struct {
	ID    string    `xml:"id,attr"`
	Power string    `xml:"power,attr"`
	Props []xmlProp `xml:"prop"`
}

type xmlProp struct {
	ID    string `xml:"id,attr"`
	Value string `xml:"value,attr"`
}

type xmlRouter struct {
	ID string `xml:"id,attr"`
}

type xmlLink struct {
	ID        string `xml:"id,attr"`
	Bandwidth string `xml:"bandwidth,attr"`
	Latency   string `xml:"latency,attr"`
	Policy    string `xml:"sharing_policy,attr"`
}

type xmlLinkCtn struct {
	ID        string `xml:"id,attr"`
	Direction string `xml:"direction,attr"`
}

type xmlRoute struct {
	Src         string       `xml:"src,attr"`
	Dst         string       `xml:"dst,attr"`
	Symmetrical string       `xml:"symmetrical,attr"`
	Links       []xmlLinkCtn `xml:"link_ctn"`
}

type xmlASRoute struct {
	Src         string       `xml:"src,attr"`
	Dst         string       `xml:"dst,attr"`
	GwSrc       string       `xml:"gw_src,attr"`
	GwDst       string       `xml:"gw_dst,attr"`
	Symmetrical string       `xml:"symmetrical,attr"`
	Links       []xmlLinkCtn `xml:"link_ctn"`
}

type xmlClusterTp struct {
	Router     string `xml:"router,attr"`
	PrivateBW  string `xml:"private_bw,attr"`
	PrivateLat string `xml:"private_lat,attr"`
	Policy     string `xml:"sharing_policy,attr"`
	Backbone   string `xml:"backbone,attr"` // link id, may be empty
}

// Parse reads a platform description from r.
func Parse(r io.Reader) (*Platform, error) {
	var doc xmlPlatform
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("platform: parsing XML: %w", err)
	}
	rk, err := ParseRoutingKind(doc.AS.Routing)
	if err != nil {
		return nil, err
	}
	p := New(doc.AS.ID, rk)
	if err := fillAS(p.root, &doc.AS); err != nil {
		return nil, err
	}
	return p, nil
}

func fillAS(as *AS, x *xmlAS) error {
	for _, h := range x.Hosts {
		power := 1e9
		if h.Power != "" {
			v, err := strconv.ParseFloat(h.Power, 64)
			if err != nil {
				return fmt.Errorf("platform: host %q power: %w", h.ID, err)
			}
			power = v
		}
		host, err := as.AddHost(h.ID, power)
		if err != nil {
			return err
		}
		for _, pr := range h.Props {
			if host.Props == nil {
				host.Props = make(map[string]string)
			}
			host.Props[pr.ID] = pr.Value
		}
	}
	for _, r := range x.Routers {
		if _, err := as.AddRouter(r.ID); err != nil {
			return err
		}
	}
	for _, l := range x.Links {
		bw, err := strconv.ParseFloat(l.Bandwidth, 64)
		if err != nil {
			return fmt.Errorf("platform: link %q bandwidth: %w", l.ID, err)
		}
		lat := 0.0
		if l.Latency != "" {
			lat, err = strconv.ParseFloat(l.Latency, 64)
			if err != nil {
				return fmt.Errorf("platform: link %q latency: %w", l.ID, err)
			}
		}
		pol, err := ParseSharingPolicy(l.Policy)
		if err != nil {
			return err
		}
		if _, err := as.AddLink(l.ID, bw, lat, pol); err != nil {
			return err
		}
	}
	// Children before routes: ASroutes reference child AS ids, and
	// cluster_topology references hosts declared above.
	for i := range x.Children {
		cx := &x.Children[i]
		rk, err := ParseRoutingKind(cx.Routing)
		if err != nil {
			return err
		}
		child, err := as.AddAS(cx.ID, rk)
		if err != nil {
			return err
		}
		if err := fillAS(child, cx); err != nil {
			return err
		}
	}
	if x.Cluster != nil {
		bw, err := strconv.ParseFloat(x.Cluster.PrivateBW, 64)
		if err != nil {
			return fmt.Errorf("platform: cluster_topology in %q: %w", as.ID, err)
		}
		lat, err := strconv.ParseFloat(x.Cluster.PrivateLat, 64)
		if err != nil {
			return fmt.Errorf("platform: cluster_topology in %q: %w", as.ID, err)
		}
		pol, err := ParseSharingPolicy(x.Cluster.Policy)
		if err != nil {
			return err
		}
		var bb *Link
		if x.Cluster.Backbone != "" {
			bb = as.platform.Link(x.Cluster.Backbone)
			if bb == nil {
				return fmt.Errorf("platform: cluster backbone %q unknown", x.Cluster.Backbone)
			}
		}
		if err := as.SetClusterTopology(x.Cluster.Router, bw, lat, pol, bb); err != nil {
			return err
		}
	}
	resolve := func(links []xmlLinkCtn, where string) ([]LinkUse, error) {
		out := make([]LinkUse, 0, len(links))
		for _, lc := range links {
			l := as.platform.Link(lc.ID)
			if l == nil {
				return nil, fmt.Errorf("platform: %s references unknown link %q", where, lc.ID)
			}
			dir := None
			switch lc.Direction {
			case "UP":
				dir = Up
			case "DOWN":
				dir = Down
			}
			out = append(out, LinkUse{Link: l, Direction: dir})
		}
		return out, nil
	}
	for _, rt := range x.Routes {
		links, err := resolve(rt.Links, fmt.Sprintf("route %s->%s", rt.Src, rt.Dst))
		if err != nil {
			return err
		}
		if err := as.AddRoute(rt.Src, rt.Dst, links, rt.Symmetrical == "YES"); err != nil {
			return err
		}
	}
	for _, rt := range x.ASRoutes {
		links, err := resolve(rt.Links, fmt.Sprintf("ASroute %s->%s", rt.Src, rt.Dst))
		if err != nil {
			return err
		}
		if err := as.AddASRoute(rt.Src, rt.GwSrc, rt.Dst, rt.GwDst, links, rt.Symmetrical == "YES"); err != nil {
			return err
		}
	}
	return nil
}

// WriteXML serializes the platform. Output is deterministic: children and
// declarations appear in insertion order, route tables sorted by key.
func (p *Platform) WriteXML(w io.Writer) error {
	doc := xmlPlatform{Version: "3", AS: dumpAS(p.root)}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("platform: encoding XML: %w", err)
	}
	_, err := io.WriteString(w, "\n")
	return err
}

func dumpAS(as *AS) xmlAS {
	x := xmlAS{ID: as.ID, Routing: as.Routing.String()}
	for _, id := range as.hostIDs {
		h := as.hosts[id]
		xh := xmlHost{ID: id, Power: formatFloat(h.Speed)}
		keys := make([]string, 0, len(h.Props))
		for k := range h.Props {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			xh.Props = append(xh.Props, xmlProp{ID: k, Value: h.Props[k]})
		}
		x.Hosts = append(x.Hosts, xh)
	}
	for _, id := range as.routerID {
		x.Routers = append(x.Routers, xmlRouter{ID: id})
	}
	for _, id := range as.linkIDs {
		l := as.links[id]
		// Implicit cluster private links are re-created by
		// SetClusterTopology at parse time; skip them here.
		if as.Routing == RoutingCluster && as.clusterPrivate[trimSuffix(id, "_link")] == l {
			continue
		}
		x.Links = append(x.Links, xmlLink{
			ID:        id,
			Bandwidth: formatFloat(l.Bandwidth),
			Latency:   formatFloat(l.Latency),
			Policy:    l.Policy.String(),
		})
	}
	// Routes sorted for deterministic output. Symmetry is not
	// reconstructed: both directions serialize explicitly, which is valid
	// (AddRoute with symmetrical=NO for each).
	routeKeys := make([]pairKey, 0, len(as.routes))
	for k := range as.routes {
		routeKeys = append(routeKeys, k)
	}
	sortPairs(routeKeys)
	for _, k := range routeKeys {
		x.Routes = append(x.Routes, dumpRoute(k, as.routes[k]))
	}
	edgeKeys := make([]pairKey, 0, len(as.edges))
	for k := range as.edges {
		edgeKeys = append(edgeKeys, k)
	}
	sortPairs(edgeKeys)
	for _, k := range edgeKeys {
		x.Routes = append(x.Routes, dumpRoute(k, as.edges[k]))
	}
	asKeys := make([]pairKey, 0, len(as.asRoutes))
	for k := range as.asRoutes {
		asKeys = append(asKeys, k)
	}
	sortPairs(asKeys)
	for _, k := range asKeys {
		ar := as.asRoutes[k]
		xr := xmlASRoute{Src: k.src, Dst: k.dst, GwSrc: ar.gwSrc, GwDst: ar.gwDst, Symmetrical: "NO"}
		for _, u := range ar.links {
			xr.Links = append(xr.Links, xmlLinkCtn{ID: u.Link.ID, Direction: dirAttr(u.Direction)})
		}
		x.ASRoutes = append(x.ASRoutes, xr)
	}
	if as.Routing == RoutingCluster && len(as.clusterPrivate) > 0 {
		// All private links share parameters by construction.
		var sample *Link
		for _, l := range as.clusterPrivate {
			sample = l
			break
		}
		ct := &xmlClusterTp{
			Router:     as.clusterRouter,
			PrivateBW:  formatFloat(sample.Bandwidth),
			PrivateLat: formatFloat(sample.Latency),
			Policy:     sample.Policy.String(),
		}
		if as.clusterBB != nil {
			ct.Backbone = as.clusterBB.ID
		}
		x.Cluster = ct
	}
	for _, c := range as.Children() {
		x.Children = append(x.Children, dumpAS(c))
	}
	return x
}

func dumpRoute(k pairKey, r Route) xmlRoute {
	xr := xmlRoute{Src: k.src, Dst: k.dst, Symmetrical: "NO"}
	for _, u := range r.Links {
		xr.Links = append(xr.Links, xmlLinkCtn{ID: u.Link.ID, Direction: dirAttr(u.Direction)})
	}
	return xr
}

func dirAttr(d Direction) string {
	if d == None {
		return ""
	}
	return d.String()
}

func sortPairs(ps []pairKey) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].src != ps[j].src {
			return ps[i].src < ps[j].src
		}
		return ps[i].dst < ps[j].dst
	})
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func trimSuffix(s, suffix string) string {
	if len(s) >= len(suffix) && s[len(s)-len(suffix):] == suffix {
		return s[:len(s)-len(suffix)]
	}
	return s
}
