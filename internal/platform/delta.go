package platform

// Epoch deltas — the dense "what changed" summary between two snapshots of
// the same compiled topology. The differential evaluation path classifies
// every sub-simulation against a delta: a query whose resource footprint
// misses the delta entirely reuses the base answer outright; one that only
// crosses bandwidth changes replays from a pre-run engine checkpoint,
// re-pricing just the changed constraints; anything touching a latency or
// availability change falls back to a cold run.

// EpochDelta lists the dense link/host indices whose state differs between
// a base snapshot and one derived from it, classified by what changed.
// Index slices are sorted ascending and duplicate-free.
type EpochDelta struct {
	// BwLinks: bandwidth differs and the link is up in both epochs.
	BwLinks []int32
	// LatLinks: latency differs.
	LatLinks []int32
	// AvailLinks: the link is down (bandwidth exactly 0) in one epoch only.
	AvailLinks []int32
	// SpeedHosts: speed differs and the host is up in both epochs.
	SpeedHosts []int32
	// AvailHosts: the host is down (speed exactly 0) in one epoch only.
	AvailHosts []int32
}

// Empty reports whether the two epochs are state-identical.
func (d *EpochDelta) Empty() bool {
	return d == nil || (len(d.BwLinks) == 0 && len(d.LatLinks) == 0 &&
		len(d.AvailLinks) == 0 && len(d.SpeedHosts) == 0 && len(d.AvailHosts) == 0)
}

// Size returns the total number of changed resources.
func (d *EpochDelta) Size() int {
	if d == nil {
		return 0
	}
	return len(d.BwLinks) + len(d.LatLinks) + len(d.AvailLinks) + len(d.SpeedHosts) + len(d.AvailHosts)
}

// SameTopology reports whether two snapshots are epochs of one compiled
// topology — same dense indices, routes, and routing policies — which is
// the precondition for diffing them or forking engine state across them.
func SameTopology(a, b *Snapshot) bool {
	return a != nil && b != nil && a.topo == b.topo
}

// diffPages appends to dst the indices (< n) whose values differ between
// two page tables, invoking classify for each. Epochs share untouched
// pages by pointer (copy-on-write), so the scan costs O(changed pages),
// not O(resources).
func diffPages(base, derived []*statePage, n int32, visit func(i int32, b, d float64)) {
	for pi := range base {
		bp, dp := base[pi], derived[pi]
		if bp == dp {
			continue
		}
		lo := int32(pi) << statePageShift
		hi := min(lo+statePageSize, n)
		for i := lo; i < hi; i++ {
			b, d := bp[i&statePageMask], dp[i&statePageMask]
			if b != d {
				visit(i, b, d)
			}
		}
	}
}

// DiffSnapshots computes the dense state delta from base to derived.
// It returns ok=false when the snapshots do not share a topology (no
// meaningful dense diff exists; differential evaluation must go cold).
// Comparison is by exact float equality — the same values the simulation
// reads — so an empty delta guarantees bit-identical simulation results.
func DiffSnapshots(base, derived *Snapshot) (delta *EpochDelta, ok bool) {
	if !SameTopology(base, derived) {
		return nil, false
	}
	d := &EpochDelta{}
	nl, nh := int32(base.NumLinks()), int32(base.NumHosts())
	diffPages(base.bw, derived.bw, nl, func(i int32, b, v float64) {
		if b == 0 || v == 0 {
			d.AvailLinks = append(d.AvailLinks, i)
		} else {
			d.BwLinks = append(d.BwLinks, i)
		}
	})
	diffPages(base.lat, derived.lat, nl, func(i int32, b, v float64) {
		d.LatLinks = append(d.LatLinks, i)
	})
	diffPages(base.speed, derived.speed, nh, func(i int32, b, v float64) {
		if b == 0 || v == 0 {
			d.AvailHosts = append(d.AvailHosts, i)
		} else {
			d.SpeedHosts = append(d.SpeedHosts, i)
		}
	})
	return d, true
}
