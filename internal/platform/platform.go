// Package platform models the simulated computing platform: hosts, network
// links, routers and a hierarchy of autonomous systems (ASes) with
// SimGrid-style hierarchical routing.
//
// The model follows the SimGrid platform description format the paper
// relies on (§IV-A and [16], Bobelin et al., RR-7829): a platform is a tree
// of ASes, each an independent routing unit. Leaf content (hosts, routers,
// links) lives in ASes; routes within an AS connect its netpoints; AS-level
// routes connect sibling ASes through designated gateways. Hierarchical
// routing keeps per-AS route tables small, which is exactly what made
// whole-Grid'5000 simulation tractable for Pilgrim (see
// BenchmarkRoutingHierarchical vs BenchmarkRoutingFlat).
//
// Links carry a nominal bandwidth (bytes/s), a latency (seconds) and a
// sharing policy:
//
//   - Shared: a single half-duplex resource; traffic in both directions
//     competes for the same capacity. This is SimGrid's historical default
//     and what the paper's g5k_test generator emitted for cluster access
//     and aggregation links.
//   - FullDuplex: two independent directed resources (UP and DOWN).
//   - Fatpipe: a rate limit per flow but no sharing between flows
//     (used for over-provisioned backbones in abstracted platforms).
package platform

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// SharingPolicy describes how concurrent flows share one link.
type SharingPolicy int

// Sharing policies, in the order SimGrid defines them.
const (
	Shared SharingPolicy = iota
	FullDuplex
	Fatpipe
)

// String returns the SimGrid XML spelling of the policy.
func (p SharingPolicy) String() string {
	switch p {
	case Shared:
		return "SHARED"
	case FullDuplex:
		return "FULLDUPLEX"
	case Fatpipe:
		return "FATPIPE"
	default:
		return fmt.Sprintf("SharingPolicy(%d)", int(p))
	}
}

// ParseSharingPolicy converts the XML spelling back to a SharingPolicy.
func ParseSharingPolicy(s string) (SharingPolicy, error) {
	switch strings.ToUpper(s) {
	case "SHARED", "":
		return Shared, nil
	case "FULLDUPLEX":
		return FullDuplex, nil
	case "FATPIPE":
		return Fatpipe, nil
	default:
		return Shared, fmt.Errorf("platform: unknown sharing policy %q", s)
	}
}

// Direction selects which directed resource of a FullDuplex link a route
// traverses. It is ignored for Shared and Fatpipe links.
type Direction int

// Link traversal directions.
const (
	Up Direction = iota
	Down
	None
)

// String returns the XML spelling of the direction.
func (d Direction) String() string {
	switch d {
	case Up:
		return "UP"
	case Down:
		return "DOWN"
	default:
		return "NONE"
	}
}

// Reverse returns the opposite direction (None stays None).
func (d Direction) Reverse() Direction {
	switch d {
	case Up:
		return Down
	case Down:
		return Up
	default:
		return None
	}
}

// Link is a network link of the platform.
type Link struct {
	ID        string
	Bandwidth float64 // bytes per second, nominal
	Latency   float64 // seconds, one way
	Policy    SharingPolicy
}

// LinkUse is one traversal of a link by a route, with the direction used
// for FullDuplex links.
type LinkUse struct {
	Link      *Link
	Direction Direction
}

// Reverse returns the traversal used by the reverse route.
func (u LinkUse) Reverse() LinkUse {
	return LinkUse{Link: u.Link, Direction: u.Direction.Reverse()}
}

// Route is a resolved end-to-end path: the ordered links it traverses and
// the sum of their latencies.
type Route struct {
	Links   []LinkUse
	Latency float64
}

// reverse returns the route traversed in the opposite direction.
func (r Route) reverse() Route {
	out := Route{Latency: r.Latency, Links: make([]LinkUse, len(r.Links))}
	for i, u := range r.Links {
		out.Links[len(r.Links)-1-i] = u.Reverse()
	}
	return out
}

// concat returns the concatenation of routes.
func concat(rs ...Route) Route {
	var out Route
	for _, r := range rs {
		out.Links = append(out.Links, r.Links...)
		out.Latency += r.Latency
	}
	return out
}

// PointKind discriminates the entities that can be route endpoints inside
// an AS.
type PointKind int

// Netpoint kinds.
const (
	HostPoint PointKind = iota
	RouterPoint
	ASPoint
)

// Host is a compute node. Speed is in flops and is used by the MSG
// execution model; it plays no role in network sharing.
type Host struct {
	ID    string
	Speed float64
	AS    *AS
	// Props carries free-form metadata (cluster name, site...), mirroring
	// SimGrid's <prop> tags; the experiment layer uses it to group nodes.
	Props map[string]string
}

// Prop returns the property value for key, or "" when absent.
func (h *Host) Prop(key string) string {
	if h.Props == nil {
		return ""
	}
	return h.Props[key]
}

// Router is a pure routing netpoint: it terminates no traffic but anchors
// routes and AS gateways.
type Router struct {
	ID string
	AS *AS
}

// RoutingKind selects the intra-AS routing model.
type RoutingKind int

// Routing models. Full stores explicit per-pair routes. Floyd stores
// one-hop edges and computes all-pairs shortest paths (by latency).
// Cluster computes routes implicitly from per-host private links plus an
// optional backbone — O(hosts) storage instead of O(hosts^2).
const (
	RoutingFull RoutingKind = iota
	RoutingFloyd
	RoutingCluster
)

// String returns the XML spelling of the routing kind.
func (k RoutingKind) String() string {
	switch k {
	case RoutingFull:
		return "Full"
	case RoutingFloyd:
		return "Floyd"
	case RoutingCluster:
		return "Cluster"
	default:
		return fmt.Sprintf("RoutingKind(%d)", int(k))
	}
}

// ParseRoutingKind converts the XML spelling back to a RoutingKind.
func ParseRoutingKind(s string) (RoutingKind, error) {
	switch strings.ToLower(s) {
	case "full", "":
		return RoutingFull, nil
	case "floyd":
		return RoutingFloyd, nil
	case "cluster":
		return RoutingCluster, nil
	default:
		return RoutingFull, fmt.Errorf("platform: unknown routing kind %q", s)
	}
}

type pairKey struct{ src, dst string }

// asRoute is a declared route between two child ASes (or from this AS's
// points to a child AS), with the gateways inside each child.
type asRoute struct {
	gwSrc, gwDst string // netpoint names inside the respective child ASes
	links        []LinkUse
	latency      float64
}

// AS is an autonomous system: an independent routing unit holding
// netpoints (hosts, routers, child ASes) and the routes between them.
type AS struct {
	ID      string
	Routing RoutingKind

	parent   *AS
	children map[string]*AS
	childIDs []string // insertion order, for deterministic serialization

	hosts    map[string]*Host
	hostIDs  []string
	routers  map[string]*Router
	routerID []string
	links    map[string]*Link
	linkIDs  []string

	// point kind registry for everything addressable in this AS.
	points map[string]PointKind

	// Full routing: explicit routes between local netpoint names.
	routes map[pairKey]Route

	// Floyd routing: declared one-hop edges; the all-pairs next-hop table
	// is built lazily on dense indices over the sorted point names
	// (floydNext is the flattened n×n matrix, -1 when unreachable).
	edges      map[pairKey]Route
	floydNames []string
	floydIdx   map[string]int32
	floydNext  []int32
	floydBuilt bool

	// Cluster routing: per-host private link and optional backbone.
	clusterPrivate map[string]*Link
	clusterBB      *Link
	clusterRouter  string

	// AS-level routes between child ASes, keyed by child AS ids.
	asRoutes map[pairKey]asRoute

	platform *Platform
}

// Platform is the root of the model plus global indices. Hosts, routers
// and links have platform-unique names (as on Grid'5000, where node names
// embed their site).
//
// Building a platform is not safe for concurrent use; once built, route
// resolution (RouteBetween) may be called from multiple goroutines — the
// forecast service resolves routes from concurrent HTTP requests. For the
// lock-free read path the forecast layers actually serve from, see
// Snapshot: Compile lowers the platform into an immutable integer-indexed
// form, memoized here and invalidated on mutation.
type Platform struct {
	root    *AS
	hosts   map[string]*Host
	routers map[string]*Router
	links   map[string]*Link

	mu    sync.RWMutex
	cache map[pairKey]Route

	// snap memoizes the compiled base-epoch snapshot (see snapshot.go);
	// builders drop it on every mutation via InvalidateRouteCache.
	snap atomic.Pointer[Snapshot]
}

// New creates a platform whose root AS has the given id and routing kind.
func New(rootID string, routing RoutingKind) *Platform {
	p := &Platform{
		hosts:   make(map[string]*Host),
		routers: make(map[string]*Router),
		links:   make(map[string]*Link),
		cache:   make(map[pairKey]Route),
	}
	p.root = newAS(rootID, routing, nil, p)
	return p
}

func newAS(id string, routing RoutingKind, parent *AS, p *Platform) *AS {
	return &AS{
		ID:             id,
		Routing:        routing,
		parent:         parent,
		children:       make(map[string]*AS),
		hosts:          make(map[string]*Host),
		routers:        make(map[string]*Router),
		links:          make(map[string]*Link),
		points:         make(map[string]PointKind),
		routes:         make(map[pairKey]Route),
		edges:          make(map[pairKey]Route),
		asRoutes:       make(map[pairKey]asRoute),
		clusterPrivate: make(map[string]*Link),
		platform:       p,
	}
}

// Root returns the root AS.
func (p *Platform) Root() *AS { return p.root }

// Host returns the host with the given name, or nil.
func (p *Platform) Host(name string) *Host { return p.hosts[name] }

// Hosts returns all hosts sorted by name.
func (p *Platform) Hosts() []*Host {
	out := make([]*Host, 0, len(p.hosts))
	for _, h := range p.hosts {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// HostsWhere returns hosts whose property key equals value, sorted by name.
func (p *Platform) HostsWhere(key, value string) []*Host {
	var out []*Host
	for _, h := range p.Hosts() {
		if h.Prop(key) == value {
			out = append(out, h)
		}
	}
	return out
}

// Link returns the link with the given id, or nil.
func (p *Platform) Link(id string) *Link { return p.links[id] }

// Links returns all links sorted by id.
func (p *Platform) Links() []*Link {
	out := make([]*Link, 0, len(p.links))
	for _, l := range p.links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// NumHosts returns the number of hosts on the platform.
func (p *Platform) NumHosts() int { return len(p.hosts) }

// NumLinks returns the number of links on the platform.
func (p *Platform) NumLinks() int { return len(p.links) }

// InvalidateRouteCache drops memoized end-to-end routes and the compiled
// snapshot memo. Builders call it automatically; it is exported for tests
// and tooling. Snapshots already handed out are immutable and unaffected.
func (p *Platform) InvalidateRouteCache() {
	p.mu.Lock()
	p.cache = make(map[pairKey]Route)
	p.mu.Unlock()
	p.snap.Store(nil)
}

// AddAS creates a child AS.
func (as *AS) AddAS(id string, routing RoutingKind) (*AS, error) {
	if err := as.checkFresh(id); err != nil {
		return nil, err
	}
	child := newAS(id, routing, as, as.platform)
	as.children[id] = child
	as.childIDs = append(as.childIDs, id)
	as.points[id] = ASPoint
	as.platform.InvalidateRouteCache()
	return child, nil
}

// AddHost creates a host in this AS. Host names are platform-unique and
// speeds must be positive: a speed of exactly 0 is the reserved
// host-failure sentinel of scenario overlays (Snapshot.HostDown) and may
// never enter through the builder.
func (as *AS) AddHost(id string, speed float64) (*Host, error) {
	if speed <= 0 || math.IsNaN(speed) || math.IsInf(speed, 0) {
		return nil, fmt.Errorf("platform: host %q has invalid speed %v", id, speed)
	}
	if err := as.checkFresh(id); err != nil {
		return nil, err
	}
	if _, dup := as.platform.hosts[id]; dup {
		return nil, fmt.Errorf("platform: host %q already exists", id)
	}
	h := &Host{ID: id, Speed: speed, AS: as}
	as.hosts[id] = h
	as.hostIDs = append(as.hostIDs, id)
	as.points[id] = HostPoint
	as.platform.hosts[id] = h
	as.platform.InvalidateRouteCache()
	return h, nil
}

// AddRouter creates a router in this AS. Router names are platform-unique.
func (as *AS) AddRouter(id string) (*Router, error) {
	if err := as.checkFresh(id); err != nil {
		return nil, err
	}
	if _, dup := as.platform.routers[id]; dup {
		return nil, fmt.Errorf("platform: router %q already exists", id)
	}
	r := &Router{ID: id, AS: as}
	as.routers[id] = r
	as.routerID = append(as.routerID, id)
	as.points[id] = RouterPoint
	as.platform.routers[id] = r
	as.platform.InvalidateRouteCache()
	return r, nil
}

// AddLink creates a link owned by this AS. Link ids are platform-unique.
func (as *AS) AddLink(id string, bandwidth, latency float64, policy SharingPolicy) (*Link, error) {
	if bandwidth <= 0 || math.IsNaN(bandwidth) {
		return nil, fmt.Errorf("platform: link %q has invalid bandwidth %v", id, bandwidth)
	}
	if latency < 0 || math.IsNaN(latency) {
		return nil, fmt.Errorf("platform: link %q has invalid latency %v", id, latency)
	}
	if _, dup := as.platform.links[id]; dup {
		return nil, fmt.Errorf("platform: link %q already exists", id)
	}
	l := &Link{ID: id, Bandwidth: bandwidth, Latency: latency, Policy: policy}
	as.links[id] = l
	as.linkIDs = append(as.linkIDs, id)
	as.platform.links[id] = l
	as.platform.InvalidateRouteCache()
	return l, nil
}

func (as *AS) checkFresh(id string) error {
	if id == "" {
		return fmt.Errorf("platform: empty identifier in AS %q", as.ID)
	}
	if _, dup := as.points[id]; dup {
		return fmt.Errorf("platform: %q already defined in AS %q", id, as.ID)
	}
	return nil
}

// Children returns the child ASes in insertion order.
func (as *AS) Children() []*AS {
	out := make([]*AS, 0, len(as.childIDs))
	for _, id := range as.childIDs {
		out = append(out, as.children[id])
	}
	return out
}

// Parent returns the enclosing AS, or nil for the root.
func (as *AS) Parent() *AS { return as.parent }

// AddRoute declares an explicit route between two netpoints of this AS
// (Full routing), or a one-hop edge (Floyd routing). If symmetrical is
// true the reverse route is derived automatically with reversed link order
// and flipped directions.
func (as *AS) AddRoute(src, dst string, links []LinkUse, symmetrical bool) error {
	if as.Routing == RoutingCluster {
		return fmt.Errorf("platform: AS %q uses Cluster routing; routes are implicit", as.ID)
	}
	if _, ok := as.points[src]; !ok {
		return fmt.Errorf("platform: route source %q unknown in AS %q", src, as.ID)
	}
	if _, ok := as.points[dst]; !ok {
		return fmt.Errorf("platform: route destination %q unknown in AS %q", dst, as.ID)
	}
	if src == dst {
		return fmt.Errorf("platform: route from %q to itself in AS %q", src, as.ID)
	}
	r := Route{Links: append([]LinkUse(nil), links...)}
	for _, u := range links {
		if u.Link == nil {
			return fmt.Errorf("platform: nil link in route %s->%s", src, dst)
		}
		r.Latency += u.Link.Latency
	}
	table := as.routes
	if as.Routing == RoutingFloyd {
		table = as.edges
		as.floydBuilt = false
	}
	key := pairKey{src, dst}
	if _, dup := table[key]; dup {
		return fmt.Errorf("platform: duplicate route %s->%s in AS %q", src, dst, as.ID)
	}
	table[key] = r
	if symmetrical {
		rkey := pairKey{dst, src}
		if _, dup := table[rkey]; dup {
			return fmt.Errorf("platform: duplicate reverse route %s->%s in AS %q", dst, src, as.ID)
		}
		table[rkey] = r.reverse()
	}
	as.platform.InvalidateRouteCache()
	return nil
}

// AddASRoute declares a route between two child ASes of this AS, or
// between a child AS and a local netpoint (router or host) of this AS.
// gwSrc and gwDst are netpoints inside srcAS and dstAS; for a local
// endpoint the gateway must be the endpoint itself (or empty).
func (as *AS) AddASRoute(srcAS, gwSrc, dstAS, gwDst string, links []LinkUse, symmetrical bool) error {
	checkEnd := func(end, gw string) error {
		kind, ok := as.points[end]
		if !ok {
			return fmt.Errorf("platform: ASroute endpoint %q unknown in AS %q", end, as.ID)
		}
		if kind != ASPoint && gw != "" && gw != end {
			return fmt.Errorf("platform: local ASroute endpoint %q cannot have distinct gateway %q", end, gw)
		}
		return nil
	}
	if err := checkEnd(srcAS, gwSrc); err != nil {
		return err
	}
	if err := checkEnd(dstAS, gwDst); err != nil {
		return err
	}
	if gwSrc == "" {
		gwSrc = srcAS
	}
	if gwDst == "" {
		gwDst = dstAS
	}
	if srcAS == dstAS {
		return fmt.Errorf("platform: ASroute from %q to itself", srcAS)
	}
	r := asRoute{gwSrc: gwSrc, gwDst: gwDst, links: append([]LinkUse(nil), links...)}
	for _, u := range links {
		r.latency += u.Link.Latency
	}
	key := pairKey{srcAS, dstAS}
	if _, dup := as.asRoutes[key]; dup {
		return fmt.Errorf("platform: duplicate ASroute %s->%s in AS %q", srcAS, dstAS, as.ID)
	}
	as.asRoutes[key] = r
	if symmetrical {
		rev := asRoute{gwSrc: gwDst, gwDst: gwSrc, latency: r.latency}
		rev.links = make([]LinkUse, len(r.links))
		for i, u := range r.links {
			rev.links[len(r.links)-1-i] = u.Reverse()
		}
		rkey := pairKey{dstAS, srcAS}
		if _, dup := as.asRoutes[rkey]; dup {
			return fmt.Errorf("platform: duplicate reverse ASroute %s->%s", dstAS, srcAS)
		}
		as.asRoutes[rkey] = rev
	}
	as.platform.InvalidateRouteCache()
	return nil
}

// SetClusterTopology configures a Cluster-routing AS: every host (and the
// optional gateway router) gets the given private link; backbone may be
// nil for non-blocking switches. Routes become implicit:
//
//	host a -> host b : private(a):UP, [backbone], private(b):DOWN
//	host a -> router : private(a):UP, [backbone]
//
// Private links are created per host with id "<host>_link".
func (as *AS) SetClusterTopology(routerID string, privateBW, privateLat float64, privatePolicy SharingPolicy, backbone *Link) error {
	if as.Routing != RoutingCluster {
		return fmt.Errorf("platform: AS %q is not Cluster routing", as.ID)
	}
	if _, ok := as.routers[routerID]; routerID != "" && !ok {
		return fmt.Errorf("platform: cluster router %q unknown in AS %q", routerID, as.ID)
	}
	as.clusterRouter = routerID
	as.clusterBB = backbone
	for _, id := range as.hostIDs {
		l, err := as.AddLink(id+"_link", privateBW, privateLat, privatePolicy)
		if err != nil {
			return err
		}
		as.clusterPrivate[id] = l
	}
	as.platform.InvalidateRouteCache()
	return nil
}

// ancestry returns the chain of ASes from the root down to as.
func (as *AS) ancestry() []*AS {
	var chain []*AS
	for a := as; a != nil; a = a.parent {
		chain = append(chain, a)
	}
	// reverse to get root-first order
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain
}
