package platform

import (
	"fmt"
	"math"
	"sort"
)

// RouteBetween resolves the end-to-end route between two hosts (or
// routers) anywhere on the platform, walking the AS hierarchy exactly the
// way SimGrid's hierarchical routing does:
//
//  1. find the deepest common ancestor AS of src and dst;
//  2. inside that AS, resolve the local route between the two netpoints
//     representing src and dst (the points themselves if local, their
//     enclosing child ASes otherwise);
//  3. when an endpoint is a child AS, recurse from the endpoint to that
//     AS's gateway for the chosen AS-level route, and splice.
//
// Results are memoized; builders invalidate the cache on mutation. The
// memo is read under a shared lock, so concurrent forecast workers
// resolving warm routes never serialize on each other; only a cache miss
// takes the exclusive lock (which also protects the lazily built Floyd
// tables behind resolve).
func (p *Platform) RouteBetween(src, dst string) (Route, error) {
	if src == dst {
		return Route{}, fmt.Errorf("platform: route from %q to itself", src)
	}
	key := pairKey{src, dst}
	p.mu.RLock()
	r, ok := p.cache[key]
	p.mu.RUnlock()
	if ok {
		return r, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if r, ok := p.cache[key]; ok { // raced with another resolver
		return r, nil
	}
	srcAS, err := p.asOf(src)
	if err != nil {
		return Route{}, err
	}
	dstAS, err := p.asOf(dst)
	if err != nil {
		return Route{}, err
	}
	r, err = p.resolve(src, srcAS, dst, dstAS)
	if err != nil {
		return Route{}, err
	}
	p.cache[key] = r
	return r, nil
}

// asOf returns the AS directly containing the named host or router.
func (p *Platform) asOf(name string) (*AS, error) {
	if h, ok := p.hosts[name]; ok {
		return h.AS, nil
	}
	if r, ok := p.routers[name]; ok {
		return r.AS, nil
	}
	return nil, fmt.Errorf("platform: unknown endpoint %q", name)
}

// resolve computes the route between netpoints located in srcAS and dstAS.
func (p *Platform) resolve(src string, srcAS *AS, dst string, dstAS *AS) (Route, error) {
	if srcAS == dstAS {
		return srcAS.localRoute(src, dst)
	}

	// Find deepest common ancestor and the child branches under it.
	sChain := srcAS.ancestry()
	dChain := dstAS.ancestry()
	common := 0
	for common < len(sChain) && common < len(dChain) && sChain[common] == dChain[common] {
		common++
	}
	if common == 0 {
		return Route{}, fmt.Errorf("platform: %q and %q share no ancestor AS", src, dst)
	}
	ancestor := sChain[common-1]

	// Netpoint names representing src and dst inside the ancestor.
	srcPoint, dstPoint := src, dst
	var srcChild, dstChild *AS
	if common < len(sChain) {
		srcChild = sChain[common]
		srcPoint = srcChild.ID
	}
	if common < len(dChain) {
		dstChild = dChain[common]
		dstPoint = dstChild.ID
	}

	if srcChild == nil && dstChild == nil {
		// Both directly in ancestor — handled by srcAS == dstAS above.
		return ancestor.localRoute(src, dst)
	}

	ar, ok := ancestor.asRoutes[pairKey{srcPoint, dstPoint}]
	if !ok {
		return Route{}, fmt.Errorf("platform: no ASroute %s->%s in AS %q (for %s->%s)",
			srcPoint, dstPoint, ancestor.ID, src, dst)
	}

	middle := Route{Links: ar.links, Latency: ar.latency}

	var head, tail Route
	var err error
	if srcChild != nil && src != ar.gwSrc {
		gwAS, gerr := p.asOf(ar.gwSrc)
		if gerr != nil {
			return Route{}, fmt.Errorf("platform: gateway %q of ASroute %s->%s: %v", ar.gwSrc, srcPoint, dstPoint, gerr)
		}
		head, err = p.resolve(src, srcAS, ar.gwSrc, gwAS)
		if err != nil {
			return Route{}, err
		}
	}
	if dstChild != nil && dst != ar.gwDst {
		gwAS, gerr := p.asOf(ar.gwDst)
		if gerr != nil {
			return Route{}, fmt.Errorf("platform: gateway %q of ASroute %s->%s: %v", ar.gwDst, srcPoint, dstPoint, gerr)
		}
		tail, err = p.resolve(ar.gwDst, gwAS, dst, dstAS)
		if err != nil {
			return Route{}, err
		}
	}
	return concat(head, middle, tail), nil
}

// localRoute resolves a route between two netpoints of this AS according
// to its routing kind.
func (as *AS) localRoute(src, dst string) (Route, error) {
	switch as.Routing {
	case RoutingFull:
		r, ok := as.routes[pairKey{src, dst}]
		if !ok {
			return Route{}, fmt.Errorf("platform: no route %s->%s in Full AS %q", src, dst, as.ID)
		}
		return r, nil
	case RoutingFloyd:
		return as.floydRoute(src, dst)
	case RoutingCluster:
		return as.clusterRoute(src, dst)
	default:
		return Route{}, fmt.Errorf("platform: AS %q has unsupported routing", as.ID)
	}
}

// clusterRoute computes the implicit route of a Cluster AS.
func (as *AS) clusterRoute(src, dst string) (Route, error) {
	var r Route
	up, isHostSrc := as.clusterPrivate[src]
	if isHostSrc {
		r.Links = append(r.Links, LinkUse{Link: up, Direction: Up})
		r.Latency += up.Latency
	} else if src != as.clusterRouter {
		return Route{}, fmt.Errorf("platform: %q not in cluster AS %q", src, as.ID)
	}
	if as.clusterBB != nil {
		r.Links = append(r.Links, LinkUse{Link: as.clusterBB, Direction: None})
		r.Latency += as.clusterBB.Latency
	}
	down, isHostDst := as.clusterPrivate[dst]
	if isHostDst {
		r.Links = append(r.Links, LinkUse{Link: down, Direction: Down})
		r.Latency += down.Latency
	} else if dst != as.clusterRouter {
		return Route{}, fmt.Errorf("platform: %q not in cluster AS %q", dst, as.ID)
	}
	return r, nil
}

// floydRoute computes shortest paths (by latency, then hop count) over the
// declared edges, building the all-pairs table on first use.
func (as *AS) floydRoute(src, dst string) (Route, error) {
	if !as.floydBuilt {
		as.buildFloyd()
	}
	si, ok := as.floydIdx[src]
	if !ok {
		return Route{}, fmt.Errorf("platform: %q unknown in Floyd AS %q", src, as.ID)
	}
	di, ok := as.floydIdx[dst]
	if !ok {
		return Route{}, fmt.Errorf("platform: %q unknown in Floyd AS %q", dst, as.ID)
	}
	// Reconstruct the path from the next-hop matrix.
	n := int32(len(as.floydNames))
	var r Route
	for cur := si; cur != di; {
		next := as.floydNext[cur*n+di]
		if next < 0 {
			return Route{}, fmt.Errorf("platform: no Floyd path %s->%s in AS %q", src, dst, as.ID)
		}
		edge := as.edges[pairKey{as.floydNames[cur], as.floydNames[next]}]
		r.Links = append(r.Links, edge.Links...)
		r.Latency += edge.Latency
		cur = next
	}
	return r, nil
}

// buildFloyd runs Floyd-Warshall over the declared edges on dense index
// matrices: points map to indices over the sorted name list, and distance
// and next-hop live in flat n×n arrays — no map hashing in the O(n³)
// relaxation. Tie-breaking is identical to the historical map-based
// implementation (see TestBuildFloydMatchesMapReference): names are
// visited in sorted order, an unreachable pair behaves as +Inf, and the
// same epsilons apply.
func (as *AS) buildFloyd() {
	names := make([]string, 0, len(as.points))
	for n := range as.points {
		names = append(names, n)
	}
	// Deterministic order for reproducible tie-breaking.
	sort.Strings(names)
	n := len(names)
	idx := make(map[string]int32, n)
	for i, name := range names {
		idx[name] = int32(i)
	}

	dist := make([]float64, n*n)
	next := make([]int32, n*n)
	for i := range dist {
		dist[i] = math.Inf(1)
		next[i] = -1
	}
	for k, e := range as.edges {
		// Edge cost: latency with a small per-hop epsilon so that
		// zero-latency platforms still prefer fewer hops.
		i, j := int(idx[k.src]), int(idx[k.dst])
		c := e.Latency + 1e-12
		if c < dist[i*n+j] {
			dist[i*n+j] = c
			next[i*n+j] = int32(j)
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := dist[i*n+k]
			if math.IsInf(dik, 1) {
				continue
			}
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				dkj := dist[k*n+j]
				if math.IsInf(dkj, 1) {
					continue
				}
				if dik+dkj < dist[i*n+j]-1e-15 {
					dist[i*n+j] = dik + dkj
					next[i*n+j] = next[i*n+k]
				}
			}
		}
	}
	as.floydNames = names
	as.floydIdx = idx
	as.floydNext = next
	as.floydBuilt = true
}

// RouteStats summarizes resolved-route storage, used by the flat-vs-
// hierarchical ablation benches.
type RouteStats struct {
	Pairs     int // resolved pairs
	LinkRefs  int // total link references stored
	AvgLength float64
}

// ResolveAllHostPairs resolves every ordered host pair and reports storage
// statistics. With hierarchical routing this is also a whole-platform
// validation pass (the paper's point: it was impossible on flat
// Grid'5000 before ASes were introduced).
func (p *Platform) ResolveAllHostPairs() (RouteStats, error) {
	hosts := p.Hosts()
	var st RouteStats
	for _, a := range hosts {
		for _, b := range hosts {
			if a == b {
				continue
			}
			r, err := p.RouteBetween(a.ID, b.ID)
			if err != nil {
				return st, err
			}
			st.Pairs++
			st.LinkRefs += len(r.Links)
		}
	}
	if st.Pairs > 0 {
		st.AvgLength = float64(st.LinkRefs) / float64(st.Pairs)
	}
	return st, nil
}

// Validate checks structural invariants: every declared route references
// links known to the platform, link parameters are sane, AS gateways
// exist, and, for every pair among a sample of hosts, a route resolves.
// sampleLimit bounds the number of hosts included in the pairwise check
// (0 means all hosts).
func (p *Platform) Validate(sampleLimit int) error {
	for _, l := range p.links {
		if l.Bandwidth <= 0 || math.IsNaN(l.Bandwidth) || l.Latency < 0 {
			return fmt.Errorf("platform: link %q has invalid parameters", l.ID)
		}
	}
	var walk func(as *AS) error
	walk = func(as *AS) error {
		for key, ar := range as.asRoutes {
			if _, err := p.asOf(ar.gwSrc); err != nil {
				return fmt.Errorf("ASroute %s->%s in %q: bad gw_src: %v", key.src, key.dst, as.ID, err)
			}
			if _, err := p.asOf(ar.gwDst); err != nil {
				return fmt.Errorf("ASroute %s->%s in %q: bad gw_dst: %v", key.src, key.dst, as.ID, err)
			}
		}
		for _, c := range as.Children() {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(p.root); err != nil {
		return err
	}
	hosts := p.Hosts()
	if sampleLimit > 0 && len(hosts) > sampleLimit {
		// Stride-sample across the whole sorted host list. Taking the
		// first N names would land entirely inside one cluster on
		// Grid'5000-style platforms (names sort by cluster), silently
		// skipping every inter-cluster and inter-site route.
		sampled := make([]*Host, 0, sampleLimit)
		for i := 0; i < sampleLimit; i++ {
			sampled = append(sampled, hosts[i*len(hosts)/sampleLimit])
		}
		hosts = sampled
	}
	for _, a := range hosts {
		for _, b := range hosts {
			if a == b {
				continue
			}
			if _, err := p.RouteBetween(a.ID, b.ID); err != nil {
				return err
			}
		}
	}
	return nil
}
