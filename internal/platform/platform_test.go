package platform

import (
	"math"
	"strings"
	"testing"
)

// buildTwoSitePlatform builds a miniature Grid'5000: two sites (ASes),
// each a star of hosts around a gateway router, joined by a backbone.
func buildTwoSitePlatform(t *testing.T) *Platform {
	t.Helper()
	p := New("AS_g5k", RoutingFull)
	root := p.Root()

	lyon, err := root.AddAS("AS_lyon", RoutingFull)
	if err != nil {
		t.Fatal(err)
	}
	nancy, err := root.AddAS("AS_nancy", RoutingFull)
	if err != nil {
		t.Fatal(err)
	}

	for _, site := range []struct {
		as     *AS
		gw     string
		prefix string
	}{
		{lyon, "gw.lyon", "sagittaire"},
		{nancy, "gw.nancy", "graphene"},
	} {
		if _, err := site.as.AddRouter(site.gw); err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 3; i++ {
			name := site.prefix + "-" + string(rune('0'+i))
			if _, err := site.as.AddHost(name, 1e9); err != nil {
				t.Fatal(err)
			}
			l, err := site.as.AddLink(name+"_nic", 125e6, 1e-4, Shared)
			if err != nil {
				t.Fatal(err)
			}
			if err := site.as.AddRoute(name, site.gw, []LinkUse{{Link: l, Direction: Up}}, true); err != nil {
				t.Fatal(err)
			}
		}
		// host<->host routes inside the site via both NICs.
		for i := 1; i <= 3; i++ {
			for j := 1; j <= 3; j++ {
				if i == j {
					continue
				}
				a := site.prefix + "-" + string(rune('0'+i))
				b := site.prefix + "-" + string(rune('0'+j))
				la := p.Link(a + "_nic")
				lb := p.Link(b + "_nic")
				if err := site.as.AddRoute(a, b, []LinkUse{{la, Up}, {lb, Down}}, false); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	bb, err := root.AddLink("bb_lyon_nancy", 1.25e9, 2.25e-3, FullDuplex)
	if err != nil {
		t.Fatal(err)
	}
	if err := root.AddASRoute("AS_lyon", "gw.lyon", "AS_nancy", "gw.nancy",
		[]LinkUse{{bb, Up}}, true); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestIntraSiteRoute(t *testing.T) {
	p := buildTwoSitePlatform(t)
	r, err := p.RouteBetween("sagittaire-1", "sagittaire-2")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Links) != 2 {
		t.Fatalf("route length = %d, want 2", len(r.Links))
	}
	if r.Links[0].Link.ID != "sagittaire-1_nic" || r.Links[1].Link.ID != "sagittaire-2_nic" {
		t.Errorf("unexpected links %v -> %v", r.Links[0].Link.ID, r.Links[1].Link.ID)
	}
	if math.Abs(r.Latency-2e-4) > 1e-12 {
		t.Errorf("latency = %v, want 2e-4", r.Latency)
	}
}

func TestCrossSiteRouteSplicesGateways(t *testing.T) {
	p := buildTwoSitePlatform(t)
	r, err := p.RouteBetween("sagittaire-1", "graphene-2")
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]string, len(r.Links))
	for i, u := range r.Links {
		ids[i] = u.Link.ID
	}
	want := []string{"sagittaire-1_nic", "bb_lyon_nancy", "graphene-2_nic"}
	if strings.Join(ids, ",") != strings.Join(want, ",") {
		t.Errorf("route = %v, want %v", ids, want)
	}
	if math.Abs(r.Latency-(1e-4+2.25e-3+1e-4)) > 1e-12 {
		t.Errorf("latency = %v", r.Latency)
	}
}

func TestReverseRouteFlipsDirections(t *testing.T) {
	p := buildTwoSitePlatform(t)
	fwd, err := p.RouteBetween("sagittaire-1", "graphene-2")
	if err != nil {
		t.Fatal(err)
	}
	rev, err := p.RouteBetween("graphene-2", "sagittaire-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(fwd.Links) != len(rev.Links) {
		t.Fatalf("asymmetric lengths %d vs %d", len(fwd.Links), len(rev.Links))
	}
	for i := range fwd.Links {
		f := fwd.Links[i]
		r := rev.Links[len(rev.Links)-1-i]
		if f.Link != r.Link {
			t.Errorf("link mismatch at %d: %s vs %s", i, f.Link.ID, r.Link.ID)
		}
		if f.Link.Policy == FullDuplex && f.Direction != r.Direction.Reverse() {
			t.Errorf("direction not flipped on %s", f.Link.ID)
		}
	}
}

func TestRouteToSelfFails(t *testing.T) {
	p := buildTwoSitePlatform(t)
	if _, err := p.RouteBetween("sagittaire-1", "sagittaire-1"); err == nil {
		t.Fatal("expected error for self route")
	}
}

func TestUnknownEndpointFails(t *testing.T) {
	p := buildTwoSitePlatform(t)
	if _, err := p.RouteBetween("sagittaire-1", "nonexistent"); err == nil {
		t.Fatal("expected error for unknown endpoint")
	}
}

func TestMissingRouteFails(t *testing.T) {
	p := New("root", RoutingFull)
	a, _ := p.Root().AddHost("a", 1e9)
	b, _ := p.Root().AddHost("b", 1e9)
	_, _ = a, b
	if _, err := p.RouteBetween("a", "b"); err == nil {
		t.Fatal("expected error for missing route")
	}
}

func TestDuplicateNamesRejected(t *testing.T) {
	p := New("root", RoutingFull)
	if _, err := p.Root().AddHost("x", 1e9); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Root().AddHost("x", 1e9); err == nil {
		t.Fatal("duplicate host accepted")
	}
	if _, err := p.Root().AddRouter("x"); err == nil {
		t.Fatal("router with host's name accepted")
	}
	if _, err := p.Root().AddLink("l", 1, 0, Shared); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Root().AddLink("l", 1, 0, Shared); err == nil {
		t.Fatal("duplicate link accepted")
	}
}

func TestInvalidLinkParamsRejected(t *testing.T) {
	p := New("root", RoutingFull)
	if _, err := p.Root().AddLink("bad", -1, 0, Shared); err == nil {
		t.Fatal("negative bandwidth accepted")
	}
	if _, err := p.Root().AddLink("bad2", 1, -1, Shared); err == nil {
		t.Fatal("negative latency accepted")
	}
}

func TestClusterRouting(t *testing.T) {
	p := New("cluster", RoutingCluster)
	as := p.Root()
	if _, err := as.AddRouter("sw"); err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"n1", "n2", "n3"} {
		if _, err := as.AddHost(n, 1e9); err != nil {
			t.Fatal(err)
		}
	}
	bb, err := as.AddLink("bb", 1.25e9, 1e-5, Shared)
	if err != nil {
		t.Fatal(err)
	}
	if err := as.SetClusterTopology("sw", 125e6, 1e-4, Shared, bb); err != nil {
		t.Fatal(err)
	}

	r, err := p.RouteBetween("n1", "n2")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Links) != 3 {
		t.Fatalf("cluster route length = %d, want 3", len(r.Links))
	}
	if r.Links[0].Link.ID != "n1_link" || r.Links[1].Link.ID != "bb" || r.Links[2].Link.ID != "n2_link" {
		t.Errorf("unexpected cluster route %v %v %v",
			r.Links[0].Link.ID, r.Links[1].Link.ID, r.Links[2].Link.ID)
	}
	if r.Links[0].Direction != Up || r.Links[2].Direction != Down {
		t.Errorf("directions wrong: %v, %v", r.Links[0].Direction, r.Links[2].Direction)
	}

	// Host to the cluster router: private link + backbone only.
	r2, err := p.RouteBetween("n3", "sw")
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Links) != 2 {
		t.Fatalf("host->router length = %d, want 2", len(r2.Links))
	}
}

func TestClusterRoutingNoBackbone(t *testing.T) {
	p := New("cluster", RoutingCluster)
	as := p.Root()
	if _, err := as.AddRouter("sw"); err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"a", "b"} {
		if _, err := as.AddHost(n, 1e9); err != nil {
			t.Fatal(err)
		}
	}
	if err := as.SetClusterTopology("sw", 125e6, 1e-4, Shared, nil); err != nil {
		t.Fatal(err)
	}
	r, err := p.RouteBetween("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Links) != 2 {
		t.Fatalf("length = %d, want 2 (no backbone)", len(r.Links))
	}
}

func TestFloydRouting(t *testing.T) {
	// Line topology a - m1 - m2 - b with distinct links; Floyd must chain
	// them.
	p := New("floyd", RoutingFloyd)
	as := p.Root()
	for _, n := range []string{"m1", "m2"} {
		if _, err := as.AddRouter(n); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range []string{"a", "b"} {
		if _, err := as.AddHost(n, 1e9); err != nil {
			t.Fatal(err)
		}
	}
	l1, _ := as.AddLink("l1", 1e8, 1e-4, Shared)
	l2, _ := as.AddLink("l2", 1e8, 1e-4, Shared)
	l3, _ := as.AddLink("l3", 1e8, 1e-4, Shared)
	if err := as.AddRoute("a", "m1", []LinkUse{{l1, Up}}, true); err != nil {
		t.Fatal(err)
	}
	if err := as.AddRoute("m1", "m2", []LinkUse{{l2, Up}}, true); err != nil {
		t.Fatal(err)
	}
	if err := as.AddRoute("m2", "b", []LinkUse{{l3, Up}}, true); err != nil {
		t.Fatal(err)
	}

	r, err := p.RouteBetween("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Links) != 3 {
		t.Fatalf("floyd route length = %d, want 3", len(r.Links))
	}
	if math.Abs(r.Latency-3e-4) > 1e-12 {
		t.Errorf("latency = %v", r.Latency)
	}

	// Reverse direction must also resolve (symmetrical edges).
	rrev, err := p.RouteBetween("b", "a")
	if err != nil {
		t.Fatal(err)
	}
	if len(rrev.Links) != 3 {
		t.Fatalf("reverse length = %d", len(rrev.Links))
	}
	if rrev.Links[0].Link != l3 || rrev.Links[2].Link != l1 {
		t.Error("reverse path not mirrored")
	}
}

func TestFloydPicksShortestPath(t *testing.T) {
	// Triangle: a-b direct (high latency) vs a-r-b (two low-latency hops).
	p := New("floyd", RoutingFloyd)
	as := p.Root()
	if _, err := as.AddRouter("r"); err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"a", "b"} {
		if _, err := as.AddHost(n, 1e9); err != nil {
			t.Fatal(err)
		}
	}
	direct, _ := as.AddLink("direct", 1e8, 5e-3, Shared)
	h1, _ := as.AddLink("h1", 1e8, 1e-4, Shared)
	h2, _ := as.AddLink("h2", 1e8, 1e-4, Shared)
	if err := as.AddRoute("a", "b", []LinkUse{{direct, None}}, true); err != nil {
		t.Fatal(err)
	}
	if err := as.AddRoute("a", "r", []LinkUse{{h1, None}}, true); err != nil {
		t.Fatal(err)
	}
	if err := as.AddRoute("r", "b", []LinkUse{{h2, None}}, true); err != nil {
		t.Fatal(err)
	}
	r, err := p.RouteBetween("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Links) != 2 || r.Links[0].Link != h1 || r.Links[1].Link != h2 {
		ids := []string{}
		for _, u := range r.Links {
			ids = append(ids, u.Link.ID)
		}
		t.Errorf("picked %v, want [h1 h2]", ids)
	}
}

func TestRouteCacheInvalidation(t *testing.T) {
	p := buildTwoSitePlatform(t)
	if _, err := p.RouteBetween("sagittaire-1", "sagittaire-2"); err != nil {
		t.Fatal(err)
	}
	if len(p.cache) == 0 {
		t.Fatal("route not cached")
	}
	if _, err := p.Root().AddLink("new", 1e9, 0, Shared); err != nil {
		t.Fatal(err)
	}
	if len(p.cache) != 0 {
		t.Fatal("cache not invalidated by mutation")
	}
}

func TestHostProps(t *testing.T) {
	p := New("root", RoutingFull)
	h, _ := p.Root().AddHost("n", 1e9)
	h.Props = map[string]string{"cluster": "sagittaire", "site": "lyon"}
	if h.Prop("cluster") != "sagittaire" {
		t.Error("prop lookup failed")
	}
	if h.Prop("absent") != "" {
		t.Error("absent prop should be empty")
	}
	got := p.HostsWhere("site", "lyon")
	if len(got) != 1 || got[0] != h {
		t.Errorf("HostsWhere = %v", got)
	}
}

func TestValidateDetectsBadGateway(t *testing.T) {
	p := New("root", RoutingFull)
	root := p.Root()
	a, _ := root.AddAS("A", RoutingFull)
	b, _ := root.AddAS("B", RoutingFull)
	if _, err := a.AddHost("ha", 1e9); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddHost("hb", 1e9); err != nil {
		t.Fatal(err)
	}
	l, _ := root.AddLink("l", 1e9, 0, Shared)
	// Gateway name that exists nowhere.
	if err := root.AddASRoute("A", "ghost", "B", "hb", []LinkUse{{l, None}}, false); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(0); err == nil {
		t.Fatal("Validate accepted dangling gateway")
	}
}

func TestValidatePasses(t *testing.T) {
	p := buildTwoSitePlatform(t)
	if err := p.Validate(0); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestResolveAllHostPairs(t *testing.T) {
	p := buildTwoSitePlatform(t)
	st, err := p.ResolveAllHostPairs()
	if err != nil {
		t.Fatal(err)
	}
	// 6 hosts -> 30 ordered pairs.
	if st.Pairs != 30 {
		t.Errorf("pairs = %d, want 30", st.Pairs)
	}
	if st.AvgLength < 2 || st.AvgLength > 3 {
		t.Errorf("avg route length = %v, implausible", st.AvgLength)
	}
}

func TestSharingPolicyRoundTrip(t *testing.T) {
	for _, pol := range []SharingPolicy{Shared, FullDuplex, Fatpipe} {
		got, err := ParseSharingPolicy(pol.String())
		if err != nil || got != pol {
			t.Errorf("round trip %v failed: %v %v", pol, got, err)
		}
	}
	if _, err := ParseSharingPolicy("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestRoutingKindRoundTrip(t *testing.T) {
	for _, k := range []RoutingKind{RoutingFull, RoutingFloyd, RoutingCluster} {
		got, err := ParseRoutingKind(k.String())
		if err != nil || got != k {
			t.Errorf("round trip %v failed: %v %v", k, got, err)
		}
	}
	if _, err := ParseRoutingKind("bogus"); err == nil {
		t.Error("bogus routing accepted")
	}
}

func TestDirectionReverse(t *testing.T) {
	if Up.Reverse() != Down || Down.Reverse() != Up || None.Reverse() != None {
		t.Error("Direction.Reverse broken")
	}
}
