package platform

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"testing"
)

// bruteDelta classifies every resource by full scan — the reference for
// DiffSnapshots' page-skipping implementation.
func bruteDelta(base, derived *Snapshot) *EpochDelta {
	d := &EpochDelta{}
	for i := int32(0); i < int32(base.NumLinks()); i++ {
		if b, v := base.LinkBandwidth(i), derived.LinkBandwidth(i); b != v {
			if b == 0 || v == 0 {
				d.AvailLinks = append(d.AvailLinks, i)
			} else {
				d.BwLinks = append(d.BwLinks, i)
			}
		}
		if base.LinkLatency(i) != derived.LinkLatency(i) {
			d.LatLinks = append(d.LatLinks, i)
		}
	}
	for i := int32(0); i < int32(base.NumHosts()); i++ {
		if b, v := base.HostSpeed(i), derived.HostSpeed(i); b != v {
			if b == 0 || v == 0 {
				d.AvailHosts = append(d.AvailHosts, i)
			} else {
				d.SpeedHosts = append(d.SpeedHosts, i)
			}
		}
	}
	return d
}

func requireEqualDelta(t *testing.T, ctx string, got, want *EpochDelta) {
	t.Helper()
	pairs := [][2][]int32{
		{got.BwLinks, want.BwLinks},
		{got.LatLinks, want.LatLinks},
		{got.AvailLinks, want.AvailLinks},
		{got.SpeedHosts, want.SpeedHosts},
		{got.AvailHosts, want.AvailHosts},
	}
	names := []string{"BwLinks", "LatLinks", "AvailLinks", "SpeedHosts", "AvailHosts"}
	for i, p := range pairs {
		if !slices.Equal(p[0], p[1]) {
			t.Fatalf("%s: %s = %v, want %v", ctx, names[i], p[0], p[1])
		}
	}
}

// TestDiffSnapshotsMatchesFullScan drives random overlay chains — value
// changes, failures, revivals, multi-epoch derivations — over a platform
// spanning several state pages and checks the COW page-skipping diff
// against a full scan, in both directions.
func TestDiffSnapshotsMatchesFullScan(t *testing.T) {
	p := New("flat", RoutingFull)
	as := p.Root()
	nHosts, nLinks := statePageSize+9, 2*statePageSize+17
	for i := 0; i < nHosts; i++ {
		if _, err := as.AddHost(fmt.Sprintf("h%03d", i), 1e9); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nLinks; i++ {
		if _, err := as.AddLink(fmt.Sprintf("l%03d", i), 1e8, 1e-4, Shared); err != nil {
			t.Fatal(err)
		}
	}
	base := p.Snapshot()

	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		derived := base
		for step := 0; step < 1+rng.Intn(3); step++ {
			var links []OverlayLink
			var hosts []OverlayHost
			seenL := map[int32]bool{}
			for i := 0; i < 1+rng.Intn(12); i++ {
				li := int32(rng.Intn(nLinks))
				if seenL[li] {
					continue
				}
				seenL[li] = true
				u := OverlayLink{Link: li, Bandwidth: math.NaN(), Latency: math.NaN()}
				switch rng.Intn(4) {
				case 0:
					u.Bandwidth = 0 // fail
				case 1:
					u.Bandwidth = 1e6 + rng.Float64()*2e8
				case 2:
					u.Latency = rng.Float64() * 1e-2
				case 3:
					u.Bandwidth = 1e6 + rng.Float64()*2e8
					u.Latency = rng.Float64() * 1e-2
				}
				links = append(links, u)
			}
			seenH := map[int32]bool{}
			for i := 0; i < rng.Intn(4); i++ {
				hi := int32(rng.Intn(nHosts))
				if seenH[hi] {
					continue
				}
				seenH[hi] = true
				speed := 0.0
				if rng.Intn(2) == 0 {
					speed = 1e8 + rng.Float64()*1e9
				}
				hosts = append(hosts, OverlayHost{Host: hi, Speed: speed})
			}
			next, err := derived.ApplyOverlay(links, hosts, "diff test")
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			derived = next
		}

		got, ok := DiffSnapshots(base, derived)
		if !ok {
			t.Fatalf("seed %d: same-topology snapshots reported incompatible", seed)
		}
		requireEqualDelta(t, fmt.Sprintf("seed %d forward", seed), got, bruteDelta(base, derived))

		back, ok := DiffSnapshots(derived, base)
		if !ok {
			t.Fatalf("seed %d: reverse diff not ok", seed)
		}
		requireEqualDelta(t, fmt.Sprintf("seed %d reverse", seed), back, bruteDelta(derived, base))

		if d, ok := DiffSnapshots(derived, derived); !ok || !d.Empty() {
			t.Fatalf("seed %d: self-diff not empty: %+v", seed, d)
		}
	}
}

func TestDiffSnapshotsRejectsForeignTopology(t *testing.T) {
	a := buildMixedPlatform(t, 2).Snapshot()
	b := buildMixedPlatform(t, 2).Snapshot()
	if SameTopology(a, b) {
		t.Fatal("independent compiles reported same topology")
	}
	if _, ok := DiffSnapshots(a, b); ok {
		t.Fatal("diff across topologies reported ok")
	}
	if !SameTopology(a, a) {
		t.Fatal("snapshot not same-topology with itself")
	}
	if d, ok := DiffSnapshots(a, a); !ok || !d.Empty() || d.Size() != 0 {
		t.Fatal("self-diff should be ok and empty")
	}
}
