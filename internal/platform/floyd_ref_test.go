package platform

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// buildFloydMapRef is the historical map-based Floyd-Warshall, kept
// verbatim as the reference for the dense-matrix rewrite: same sorted
// visit order, same epsilons, same tie-breaking.
func buildFloydMapRef(as *AS) map[pairKey]string {
	names := make([]string, 0, len(as.points))
	for n := range as.points {
		names = append(names, n)
	}
	sort.Strings(names)

	dist := make(map[pairKey]float64, len(as.edges))
	next := make(map[pairKey]string, len(as.edges))
	for k, e := range as.edges {
		c := e.Latency + 1e-12
		if old, ok := dist[k]; !ok || c < old {
			dist[k] = c
			next[k] = k.dst
		}
	}
	for _, k := range names {
		for _, i := range names {
			dik, ok := dist[pairKey{i, k}]
			if !ok {
				continue
			}
			for _, j := range names {
				if i == j {
					continue
				}
				dkj, ok := dist[pairKey{k, j}]
				if !ok {
					continue
				}
				if dij, ok := dist[pairKey{i, j}]; !ok || dik+dkj < dij-1e-15 {
					dist[pairKey{i, j}] = dik + dkj
					next[pairKey{i, j}] = next[pairKey{i, k}]
				}
			}
		}
	}
	return next
}

// TestBuildFloydMatchesMapReference builds random Floyd ASes — including
// zero-latency edges and equal-cost alternatives, the tie-breaking
// hotspots — and asserts the dense next-hop matrix agrees entry-for-entry
// with the historical map implementation.
func TestBuildFloydMatchesMapReference(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := New("root", RoutingFloyd)
		as := p.Root()
		n := 4 + rng.Intn(8)
		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("r%02d", i)
			if _, err := as.AddRouter(names[i]); err != nil {
				t.Fatal(err)
			}
		}
		// Random sparse edge set; latencies drawn from a tiny value pool so
		// equal-cost paths are common.
		lats := []float64{0, 1e-4, 1e-4, 2e-4, 1e-3}
		nl := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() > 0.45 {
					continue
				}
				l, err := as.AddLink(fmt.Sprintf("l%02d", nl), 1e9, lats[rng.Intn(len(lats))], Shared)
				if err != nil {
					t.Fatal(err)
				}
				nl++
				if err := as.AddRoute(names[i], names[j], []LinkUse{{Link: l, Direction: None}}, true); err != nil {
					t.Fatal(err)
				}
			}
		}

		want := buildFloydMapRef(as)
		as.buildFloyd()
		nn := int32(len(as.floydNames))
		got := 0
		for i := int32(0); i < nn; i++ {
			for j := int32(0); j < nn; j++ {
				nx := as.floydNext[i*nn+j]
				key := pairKey{as.floydNames[i], as.floydNames[j]}
				wantNext, ok := want[key]
				if nx < 0 {
					if ok {
						t.Fatalf("seed %d: %v reachable in reference (%s) but not in dense", seed, key, wantNext)
					}
					continue
				}
				if !ok || wantNext != as.floydNames[nx] {
					t.Fatalf("seed %d: next[%v] = %s, reference %s", seed, key, as.floydNames[nx], wantNext)
				}
				got++
			}
		}
		if got != len(want) {
			t.Fatalf("seed %d: dense table has %d entries, reference %d", seed, got, len(want))
		}
	}
}
