package metrology

import (
	"fmt"
	"testing"

	"pilgrim/internal/platform"
	"pilgrim/internal/rrd"
)

type recordedBatch struct {
	t       int64
	source  string
	updates []platform.LinkUpdate
}

// TestIngestorFoldsSamples checks the store→timeline direction: bound
// metrics are drained on their primary step, batches arrive oldest first
// with per-quantity scaling applied, and the cursor prevents replay.
func TestIngestorFoldsSamples(t *testing.T) {
	reg := NewRegistry()
	bwPath := MetricPath{Tool: "iperf", Site: "lyon", Host: "sagittaire-1.lyon.grid5000.fr", Metric: "bw"}
	latPath := MetricPath{Tool: "smokeping", Site: "lyon", Host: "sagittaire-1.lyon.grid5000.fr", Metric: "rtt"}
	// Bandwidth probe reports Mbit/s; latency probe reports RTT ms.
	if err := reg.Register(bwPath, rrd.Gauge, 15, func(ts int64) float64 { return 800 + float64(ts%60) }); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(latPath, rrd.Gauge, 15, func(ts int64) float64 { return 2.0 }); err != nil {
		t.Fatal(err)
	}
	if err := reg.Collect(0, 600); err != nil {
		t.Fatal(err)
	}

	ing := NewIngestor(reg, "metrology")
	if err := ing.Bind(LinkBinding{Metric: bwPath, Link: "sagittaire-1.lyon.grid5000.fr_nic", Quantity: LinkBandwidth, Scale: 1e6 / 8}); err != nil {
		t.Fatal(err)
	}
	if err := ing.Bind(LinkBinding{Metric: latPath, Link: "lyon_router", Quantity: LinkLatency, Scale: 0.5e-3}); err != nil {
		t.Fatal(err)
	}
	// Duplicate (metric, quantity) bindings are rejected.
	if err := ing.Bind(LinkBinding{Metric: bwPath, Link: "other", Quantity: LinkBandwidth}); err == nil {
		t.Fatal("duplicate binding accepted")
	}

	var got []recordedBatch
	sink := func(ts int64, source string, updates []platform.LinkUpdate) error {
		got = append(got, recordedBatch{t: ts, source: source, updates: append([]platform.LinkUpdate(nil), updates...)})
		return nil
	}
	n, err := ing.Ingest(600, sink)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || n != len(got) {
		t.Fatalf("ingested %d batches, recorded %d", n, len(got))
	}
	if c := ing.Cursor(); c != 600 {
		t.Fatalf("cursor = %d, want 600", c)
	}
	for i, b := range got {
		if i > 0 && b.t <= got[i-1].t {
			t.Fatalf("batches out of order: %d after %d", b.t, got[i-1].t)
		}
		if b.source != "metrology" {
			t.Fatalf("source = %q", b.source)
		}
		if len(b.updates) != 2 {
			t.Fatalf("batch at %d has %d updates, want 2 (both metrics sample together)", b.t, len(b.updates))
		}
		// Binding order is preserved within a batch.
		bw, lat := b.updates[0], b.updates[1]
		if bw.Link != "sagittaire-1.lyon.grid5000.fr_nic" || bw.Latency != -1 || bw.Bandwidth <= 0 {
			t.Fatalf("bandwidth update = %+v", bw)
		}
		// Row timestamps are interval starts: the sample taken at T lands
		// in the row covering [T-step, T).
		if want := (800 + float64((b.t+15)%60)) * 1e6 / 8; bw.Bandwidth != want {
			t.Fatalf("batch at %d: bandwidth %v, want %v", b.t, bw.Bandwidth, want)
		}
		if lat.Link != "lyon_router" || lat.Bandwidth != -1 || lat.Latency != 2.0*0.5e-3 {
			t.Fatalf("latency update = %+v", lat)
		}
	}

	// Nothing to replay: the cursor advanced.
	if n, err := ing.Ingest(600, sink); err != nil || n != 0 {
		t.Fatalf("re-ingest: %d batches, err %v", n, err)
	}
	// New collection rounds only deliver the new samples.
	if err := reg.Collect(600, 900); err != nil {
		t.Fatal(err)
	}
	before := len(got)
	if _, err := ing.Ingest(900, sink); err != nil {
		t.Fatal(err)
	}
	for _, b := range got[before:] {
		if b.t <= 600 {
			t.Fatalf("replayed batch at %d", b.t)
		}
	}
}

// TestIngestorErrors checks unbound metrics and failing sinks.
func TestIngestorErrors(t *testing.T) {
	reg := NewRegistry()
	ing := NewIngestor(reg, "")
	ghost := MetricPath{Tool: "t", Site: "s", Host: "h", Metric: "m"}
	if err := ing.Bind(LinkBinding{Metric: ghost, Link: ""}); err == nil {
		t.Fatal("empty link accepted")
	}
	if err := ing.Bind(LinkBinding{Metric: ghost, Link: "l"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ing.Ingest(100, func(int64, string, []platform.LinkUpdate) error { return nil }); err == nil {
		t.Fatal("ingest with unregistered metric must fail")
	}

	if err := reg.Register(ghost, rrd.Gauge, 15, ConstantSource(5)); err != nil {
		t.Fatal(err)
	}
	if err := reg.Collect(0, 300); err != nil {
		t.Fatal(err)
	}
	calls := 0
	_, err := ing.Ingest(300, func(int64, string, []platform.LinkUpdate) error {
		calls++
		if calls == 2 {
			return fmt.Errorf("sink down")
		}
		return nil
	})
	if err == nil {
		t.Fatal("sink error must propagate")
	}
	// The cursor stopped at the delivered batch: retry resumes after it.
	resumed := 0
	if _, err := ing.Ingest(300, func(int64, string, []platform.LinkUpdate) error {
		resumed++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if resumed == 0 {
		t.Fatal("retry after sink failure delivered nothing")
	}
	if ing.Cursor() != 300 {
		t.Fatalf("cursor = %d, want 300", ing.Cursor())
	}
}

// TestIngestorSetCursor: priming the cursor makes earlier samples
// invisible, and the cursor never moves backwards.
func TestIngestorSetCursor(t *testing.T) {
	reg := NewRegistry()
	path := MetricPath{Tool: "iperf", Site: "lyon", Host: "h", Metric: "bw"}
	if err := reg.Register(path, rrd.Gauge, 15, func(ts int64) float64 { return float64(ts) }); err != nil {
		t.Fatal(err)
	}
	if err := reg.Collect(0, 600); err != nil {
		t.Fatal(err)
	}
	ing := NewIngestor(reg, "m")
	if err := ing.Bind(LinkBinding{Metric: path, Link: "h_nic", Quantity: LinkBandwidth}); err != nil {
		t.Fatal(err)
	}
	ing.SetCursor(300)
	if got := ing.Cursor(); got != 300 {
		t.Fatalf("Cursor() = %d after SetCursor(300)", got)
	}
	// Backwards moves are no-ops: the no-replay guarantee holds.
	ing.SetCursor(100)
	if got := ing.Cursor(); got != 300 {
		t.Fatalf("Cursor() = %d after backwards SetCursor", got)
	}
	var batches []recordedBatch
	if _, err := ing.Ingest(600, func(ts int64, source string, updates []platform.LinkUpdate) error {
		batches = append(batches, recordedBatch{t: ts, source: source})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(batches) == 0 {
		t.Fatal("no batches after the primed cursor")
	}
	for _, b := range batches {
		if b.t <= 300 {
			t.Fatalf("delivered batch at %d, before the primed cursor", b.t)
		}
	}
}
