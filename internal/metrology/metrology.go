// Package metrology emulates the sysadmin-side metric collection stack
// (Ganglia/Munin-style, paper §III-A): per-host metric sources sampled on
// a fixed period into a tree of RRD files —
//
//	<root>/<tool>/<site>/<host>/<metric>.rrd
//
// which is exactly the layout the Pilgrim RRD web service fronts
// (§IV-C1: ".../pilgrim/rrd/ganglia/Lyon/sagittaire-1.lyon.grid5000.fr/
// pdu.rrd/?begin=...&end=..."). The collector runs in simulated time so
// campaigns can generate months of history instantly.
package metrology

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"pilgrim/internal/rrd"
)

// MetricPath identifies one RRD in the tree.
type MetricPath struct {
	Tool   string // e.g. "ganglia"
	Site   string // e.g. "lyon"
	Host   string // fully qualified node name
	Metric string // e.g. "pdu" (file stored as pdu.rrd)
}

// String returns the slash form used in service URLs.
func (p MetricPath) String() string {
	return p.Tool + "/" + p.Site + "/" + p.Host + "/" + p.Metric + ".rrd"
}

// ParseMetricPath parses "tool/site/host/metric.rrd".
func ParseMetricPath(s string) (MetricPath, error) {
	parts := strings.Split(strings.Trim(s, "/"), "/")
	if len(parts) != 4 {
		return MetricPath{}, fmt.Errorf("metrology: path %q is not tool/site/host/metric.rrd", s)
	}
	metric := strings.TrimSuffix(parts[3], ".rrd")
	if metric == "" || metric == parts[3] {
		return MetricPath{}, fmt.Errorf("metrology: metric %q must end in .rrd", parts[3])
	}
	for _, p := range parts[:3] {
		if p == "" || p == "." || p == ".." {
			return MetricPath{}, fmt.Errorf("metrology: invalid path component %q", p)
		}
	}
	return MetricPath{Tool: parts[0], Site: parts[1], Host: parts[2], Metric: metric}, nil
}

// Source produces one sample of a metric at a simulated Unix timestamp.
type Source func(ts int64) float64

// series couples a source with its database.
type series struct {
	path MetricPath
	src  Source
	db   *rrd.RRD
}

// Registry holds the metric tree in memory, with optional persistence to
// an on-disk RRD file tree.
type Registry struct {
	mu     sync.RWMutex
	byPath map[MetricPath]*series
	order  []MetricPath
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byPath: make(map[MetricPath]*series)}
}

// DefaultArchives returns the RRA ladder used for host metrics: 15-second
// points for an hour, minute points for a day, and 10-minute points for
// two weeks, each with AVERAGE and MAX.
func DefaultArchives() []rrd.RRA {
	return []rrd.RRA{
		{CF: rrd.Average, PdpPerRow: 1, Rows: 240},
		{CF: rrd.Average, PdpPerRow: 4, Rows: 1440},
		{CF: rrd.Average, PdpPerRow: 40, Rows: 2016},
		{CF: rrd.Max, PdpPerRow: 4, Rows: 1440},
	}
}

// Register adds a metric with its source. kind selects Gauge or Counter
// semantics; step is the sampling period in seconds.
func (r *Registry) Register(path MetricPath, kind rrd.DSKind, step int64, src Source) error {
	db, err := rrd.Create(step,
		[]rrd.DS{{Name: path.Metric, Kind: kind, Heartbeat: 4 * step}},
		DefaultArchives())
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byPath[path]; dup {
		return fmt.Errorf("metrology: metric %s already registered", path)
	}
	r.byPath[path] = &series{path: path, src: src, db: db}
	r.order = append(r.order, path)
	return nil
}

// Collect samples every registered source over simulated time
// (from, to], on each metric's own step, feeding its RRD.
func (r *Registry) Collect(from, to int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, p := range r.order {
		s := r.byPath[p]
		step := s.db.Step()
		start := from - from%step + step
		if last := s.db.LastUpdate(); last >= start {
			start = last + step
		}
		for ts := start; ts <= to; ts += step {
			if err := s.db.Update(ts, []float64{s.src(ts)}); err != nil {
				return fmt.Errorf("metrology: %s: %w", p, err)
			}
		}
	}
	return nil
}

// Database returns the RRD behind a metric path.
func (r *Registry) Database(path MetricPath) (*rrd.RRD, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.byPath[path]
	if !ok {
		return nil, false
	}
	return s.db, true
}

// Paths returns all registered metric paths in registration order.
func (r *Registry) Paths() []MetricPath {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]MetricPath(nil), r.order...)
}

// Sync writes every RRD to the on-disk tree rooted at dir.
func (r *Registry) Sync(dir string) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, p := range r.order {
		s := r.byPath[p]
		path := filepath.Join(dir, p.Tool, p.Site, p.Host, p.Metric+".rrd")
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		if err := s.db.SaveFile(path); err != nil {
			return err
		}
	}
	return nil
}

// LoadTree reads an on-disk tree into a registry with nil sources
// (read-only serving, as the Pilgrim service does).
func LoadTree(dir string) (*Registry, error) {
	reg := NewRegistry()
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() || !strings.HasSuffix(path, ".rrd") {
			return nil
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		mp, err := ParseMetricPath(filepath.ToSlash(rel))
		if err != nil {
			return nil // ignore stray files
		}
		db, err := rrd.LoadFile(path)
		if err != nil {
			return fmt.Errorf("metrology: loading %s: %w", path, err)
		}
		reg.mu.Lock()
		reg.byPath[mp] = &series{path: mp, db: db}
		reg.order = append(reg.order, mp)
		reg.mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(reg.order, func(i, j int) bool {
		return reg.order[i].String() < reg.order[j].String()
	})
	return reg, nil
}
