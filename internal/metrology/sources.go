package metrology

import (
	"math"

	"pilgrim/internal/stats"
)

// This file provides the simulated metric sources feeding the collectors:
// the power-consumption metric of the paper's worked metrology example
// (§IV-C1: sagittaire-1's "pdu" Ganglia custom metric reading ~168.9 W)
// and link/latency sources supporting the latency-measurement future work.

// PowerSource models a compute node's PDU power draw in watts: an idle
// baseline with slow diurnal load swings and sampling noise. The paper's
// example host (sagittaire-1, dual Opteron) idles around 168-169 W.
func PowerSource(baseline, loadSwing float64, seed int64) Source {
	rng := stats.NewRNG(seed)
	return func(ts int64) float64 {
		// Diurnal component: peaks mid-day (86400 s period).
		day := float64(ts%86400) / 86400
		diurnal := loadSwing * 0.5 * (1 - math.Cos(2*math.Pi*day))
		noise := rng.Normal(0, 0.06)
		return baseline + diurnal + noise
	}
}

// LatencySource models a smokeping-style RTT measure in seconds: a floor
// latency with queueing excursions during busy hours.
func LatencySource(floor float64, seed int64) Source {
	rng := stats.NewRNG(seed)
	return func(ts int64) float64 {
		day := float64(ts%86400) / 86400
		busy := 0.5 * (1 - math.Cos(2*math.Pi*day)) // 0..1
		excess := floor * 0.2 * busy * rng.LogNormal(0, 0.3)
		return floor + excess
	}
}

// TrafficCounterSource models an interface byte counter: cumulative bytes
// with a diurnal rate profile around meanRate bytes/s.
func TrafficCounterSource(meanRate float64, seed int64) Source {
	rng := stats.NewRNG(seed)
	total := 0.0
	lastTS := int64(0)
	return func(ts int64) float64 {
		if lastTS == 0 {
			lastTS = ts
			return total
		}
		dt := float64(ts - lastTS)
		lastTS = ts
		day := float64(ts%86400) / 86400
		rate := meanRate * (0.4 + 0.6*0.5*(1-math.Cos(2*math.Pi*day))) * rng.LogNormal(0, 0.2)
		total += rate * dt
		return total
	}
}

// ConstantSource returns a fixed value (useful in tests and as a stub for
// externally fed metrics).
func ConstantSource(v float64) Source {
	return func(int64) float64 { return v }
}
