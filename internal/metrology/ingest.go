package metrology

// This file implements the ingestion layer closing the loop between the
// Ganglia-style RRD store and the platform's link-state timeline: metric
// series are declared as *link bindings* (this RRD feeds that link's
// bandwidth or latency), and an Ingestor periodically drains newly
// collected samples — on each metric's primary (finest) step — into
// timestamped observation batches ordered by time. The sink is typically
// pilgrim's Registry.ObserveLinkState, which appends each batch to the
// platform timeline and feeds the NWS forecaster bank, making the
// metrology store the system of record for link state.

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"pilgrim/internal/platform"
	"pilgrim/internal/rrd"
)

// LinkQuantity selects which link-state quantity a metric feeds.
type LinkQuantity int

const (
	// LinkBandwidth interprets samples as available bandwidth.
	LinkBandwidth LinkQuantity = iota
	// LinkLatency interprets samples as one-way latency.
	LinkLatency
)

// String returns the quantity name.
func (q LinkQuantity) String() string {
	if q == LinkLatency {
		return "latency"
	}
	return "bandwidth"
}

// LinkBinding declares that one RRD metric measures one platform link.
// Scale converts a raw sample into the platform unit (bytes/s for
// bandwidth, seconds for latency); 0 means 1. A smokeping-style RTT in
// milliseconds feeding one-way latency would use Scale = 0.5e-3.
type LinkBinding struct {
	Metric   MetricPath
	Link     string
	Quantity LinkQuantity
	Scale    float64
}

// ObservationSink receives one timestamped observation batch per distinct
// sample time, in non-decreasing time order. Returning an error aborts
// the ingest (the cursor does not advance past the failed batch).
type ObservationSink func(t int64, source string, updates []platform.LinkUpdate) error

// Ingestor folds newly collected samples of bound metrics into
// observation batches. It keeps a cursor so successive Ingest calls never
// replay a sample; bind all metrics before the first Ingest. Safe for
// concurrent use.
type Ingestor struct {
	reg      *Registry
	source   string
	mu       sync.Mutex
	bindings []LinkBinding
	cursor   int64
}

// NewIngestor returns an ingestor draining the given metric registry,
// stamping batches with the given provenance source (e.g. "metrology").
func NewIngestor(reg *Registry, source string) *Ingestor {
	if source == "" {
		source = "metrology"
	}
	return &Ingestor{reg: reg, source: source}
}

// Bind adds a metric→link binding. The metric may be registered in the
// metric registry after Bind but must exist by the first Ingest covering
// its samples.
func (ing *Ingestor) Bind(b LinkBinding) error {
	if b.Link == "" {
		return fmt.Errorf("metrology: binding for %s has no link", b.Metric)
	}
	if b.Scale < 0 || math.IsNaN(b.Scale) || math.IsInf(b.Scale, 0) {
		return fmt.Errorf("metrology: binding for %s has invalid scale %v", b.Metric, b.Scale)
	}
	ing.mu.Lock()
	defer ing.mu.Unlock()
	for _, have := range ing.bindings {
		if have.Metric == b.Metric && have.Quantity == b.Quantity {
			return fmt.Errorf("metrology: %s already bound to %s %s", b.Metric, have.Link, have.Quantity)
		}
	}
	ing.bindings = append(ing.bindings, b)
	return nil
}

// Cursor returns the simulated time up to which samples were folded.
func (ing *Ingestor) Cursor() int64 {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return ing.cursor
}

// SetCursor advances the cursor to t: samples at or before t will never
// be delivered. Call it before the first Ingest when collection starts
// mid-history (e.g. at the current wall-clock time) — the cursor starts
// at 0, and Ingest scans every primary step since the cursor, so an
// un-primed ingestor pays one fetch row per step since the epoch. A t
// at or before the current cursor is a no-op (the cursor never moves
// backwards, preserving the no-replay guarantee).
func (ing *Ingestor) SetCursor(t int64) {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	if t > ing.cursor {
		ing.cursor = t
	}
}

// Ingest drains samples in (Cursor(), to] from every bound metric on its
// primary step, groups them by sample time across bindings, and feeds the
// sink one batch per distinct time, oldest first. Unknown (NaN) samples
// are skipped. On success the cursor advances to to; on a sink error the
// cursor stops at the last successfully delivered batch. Returns the
// number of batches delivered.
func (ing *Ingestor) Ingest(to int64, sink ObservationSink) (int, error) {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	if to <= ing.cursor {
		return 0, nil
	}

	type sample struct {
		binding int
		value   float64
	}
	byTime := make(map[int64][]sample)
	for bi, b := range ing.bindings {
		db, ok := ing.reg.Database(b.Metric)
		if !ok {
			return 0, fmt.Errorf("metrology: bound metric %s not in registry", b.Metric)
		}
		// The finest archive's resolution is the metric's primary step.
		series, err := db.FetchBest(rrd.Average, ing.cursor+1, to+1)
		if err != nil {
			return 0, fmt.Errorf("metrology: fetching %s: %w", b.Metric, err)
		}
		for i, row := range series.Rows {
			ts := series.Start + int64(i)*series.Step
			if ts <= ing.cursor || ts > to || len(row) == 0 || math.IsNaN(row[0]) {
				continue
			}
			byTime[ts] = append(byTime[ts], sample{binding: bi, value: row[0]})
		}
	}

	times := make([]int64, 0, len(byTime))
	for ts := range byTime {
		times = append(times, ts)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })

	batches := 0
	for _, ts := range times {
		samples := byTime[ts]
		// Per-binding order within a batch is fixed by binding order, so a
		// given store content always produces the same epochs.
		sort.Slice(samples, func(i, j int) bool { return samples[i].binding < samples[j].binding })
		updates := make([]platform.LinkUpdate, 0, len(samples))
		for _, s := range samples {
			b := ing.bindings[s.binding]
			scale := b.Scale
			if scale == 0 {
				scale = 1
			}
			u := platform.LinkUpdate{Link: b.Link, Bandwidth: -1, Latency: -1}
			switch b.Quantity {
			case LinkLatency:
				u.Latency = s.value * scale
			default:
				u.Bandwidth = s.value * scale
			}
			updates = append(updates, u)
		}
		if err := sink(ts, ing.source, updates); err != nil {
			return batches, fmt.Errorf("metrology: folding batch at %d: %w", ts, err)
		}
		ing.cursor = ts
		batches++
	}
	ing.cursor = to
	return batches, nil
}
