package metrology

import (
	"math"
	"testing"

	"pilgrim/internal/rrd"
)

func TestMetricPathRoundTrip(t *testing.T) {
	p := MetricPath{Tool: "ganglia", Site: "lyon", Host: "sagittaire-1.lyon.grid5000.fr", Metric: "pdu"}
	s := p.String()
	if s != "ganglia/lyon/sagittaire-1.lyon.grid5000.fr/pdu.rrd" {
		t.Errorf("String = %q", s)
	}
	p2, err := ParseMetricPath(s)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p {
		t.Errorf("round trip: %+v", p2)
	}
}

func TestParseMetricPathErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"a/b/c",
		"a/b/c/d", // no .rrd
		"a/b/c/.rrd",
		"a//c/d.rrd",
		"../b/c/d.rrd",
		"a/b/c/d.rrd/e",
	} {
		if _, err := ParseMetricPath(bad); err == nil {
			t.Errorf("ParseMetricPath(%q) accepted", bad)
		}
	}
}

func TestRegisterAndCollect(t *testing.T) {
	reg := NewRegistry()
	p := MetricPath{Tool: "ganglia", Site: "lyon", Host: "sagittaire-1.lyon.grid5000.fr", Metric: "pdu"}
	if err := reg.Register(p, rrd.Gauge, 15, ConstantSource(168.9)); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(p, rrd.Gauge, 15, ConstantSource(1)); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := reg.Collect(0, 3600); err != nil {
		t.Fatal(err)
	}
	db, ok := reg.Database(p)
	if !ok {
		t.Fatal("database missing")
	}
	s, err := db.FetchBest(rrd.Average, 1800, 3600)
	if err != nil {
		t.Fatal(err)
	}
	known := 0
	for _, row := range s.Rows {
		if !math.IsNaN(row[0]) {
			known++
			if math.Abs(row[0]-168.9) > 1e-9 {
				t.Errorf("value = %v", row[0])
			}
		}
	}
	if known == 0 {
		t.Fatal("no samples collected")
	}
}

func TestCollectIncremental(t *testing.T) {
	reg := NewRegistry()
	p := MetricPath{Tool: "munin", Site: "nancy", Host: "graphene-1.nancy.grid5000.fr", Metric: "load"}
	if err := reg.Register(p, rrd.Gauge, 15, ConstantSource(0.5)); err != nil {
		t.Fatal(err)
	}
	if err := reg.Collect(0, 600); err != nil {
		t.Fatal(err)
	}
	// Second collection overlapping the first must not error (resumes
	// after last update).
	if err := reg.Collect(300, 1200); err != nil {
		t.Fatal(err)
	}
	db, _ := reg.Database(p)
	if db.LastUpdate() != 1200 {
		t.Errorf("last update = %d, want 1200", db.LastUpdate())
	}
}

func TestPaperPowerExample(t *testing.T) {
	// §IV-C1: querying one minute of sagittaire-1's pdu metric yields
	// four 15-second samples around 168-169 W.
	reg := NewRegistry()
	p := MetricPath{Tool: "ganglia", Site: "lyon", Host: "sagittaire-1.lyon.grid5000.fr", Metric: "pdu"}
	if err := reg.Register(p, rrd.Gauge, 15, PowerSource(168.8, 12, 42)); err != nil {
		t.Fatal(err)
	}
	// Collect a simulated morning (the paper queried 08:00).
	const begin = 8 * 3600
	if err := reg.Collect(0, begin+120); err != nil {
		t.Fatal(err)
	}
	db, _ := reg.Database(p)
	s, err := db.FetchBest(rrd.Average, begin, begin+60)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (one minute at 15s)", len(s.Rows))
	}
	for _, row := range s.Rows {
		if math.IsNaN(row[0]) {
			t.Fatal("unknown sample in freshly collected range")
		}
		if row[0] < 160 || row[0] < 0 || row[0] > 190 {
			t.Errorf("implausible power %v W", row[0])
		}
	}
}

func TestSyncAndLoadTree(t *testing.T) {
	reg := NewRegistry()
	paths := []MetricPath{
		{Tool: "ganglia", Site: "lyon", Host: "sagittaire-1.lyon.grid5000.fr", Metric: "pdu"},
		{Tool: "ganglia", Site: "nancy", Host: "graphene-1.nancy.grid5000.fr", Metric: "bytes_in"},
	}
	if err := reg.Register(paths[0], rrd.Gauge, 15, ConstantSource(168.9)); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(paths[1], rrd.Counter, 15, TrafficCounterSource(1e6, 7)); err != nil {
		t.Fatal(err)
	}
	if err := reg.Collect(0, 3600); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := reg.Sync(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTree(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(loaded.Paths()); got != 2 {
		t.Fatalf("loaded %d metrics, want 2", got)
	}
	for _, p := range paths {
		orig, _ := reg.Database(p)
		got, ok := loaded.Database(p)
		if !ok {
			t.Fatalf("metric %s missing after load", p)
		}
		if !orig.Equal(got) {
			t.Errorf("metric %s changed across sync/load", p)
		}
	}
}

func TestSourcesAreDeterministicPerSeed(t *testing.T) {
	a := PowerSource(100, 10, 1)
	b := PowerSource(100, 10, 1)
	for ts := int64(0); ts < 10*900; ts += 900 {
		if a(ts) != b(ts) {
			t.Fatal("PowerSource nondeterministic for same seed")
		}
	}
}

func TestTrafficCounterMonotone(t *testing.T) {
	src := TrafficCounterSource(1e6, 3)
	prev := -1.0
	for ts := int64(0); ts < 86400; ts += 60 {
		v := src(ts)
		if v < prev {
			t.Fatalf("counter decreased: %v -> %v", prev, v)
		}
		prev = v
	}
}

func TestLatencySourcePositive(t *testing.T) {
	src := LatencySource(2.25e-3, 5)
	for ts := int64(0); ts < 86400; ts += 300 {
		v := src(ts)
		if v < 2.25e-3 || v > 10e-3 {
			t.Fatalf("implausible latency %v", v)
		}
	}
}
