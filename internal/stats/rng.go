package stats

import (
	"errors"
	"math"
	"math/rand"
)

// RNG wraps math/rand with the sampling helpers used by the experiment
// campaign (node draws, jitter distributions). Every experiment owns one
// seeded RNG so campaigns are reproducible run-to-run.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic RNG seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0, n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Perm returns a pseudo-random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Normal returns a sample from N(mu, sigma^2).
func (g *RNG) Normal(mu, sigma float64) float64 {
	return mu + sigma*g.r.NormFloat64()
}

// LogNormal returns a sample whose logarithm is N(mu, sigma^2) distributed.
// It is the jitter model used by the testbed: multiplicative noise around
// exp(mu) that can never produce a negative duration.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(g.Normal(mu, sigma))
}

// Jitter returns base scaled by a lognormal factor with median 1 and
// log-space standard deviation sigma. Jitter(d, 0) == d.
func (g *RNG) Jitter(base, sigma float64) float64 {
	if sigma == 0 {
		return base
	}
	return base * g.LogNormal(0, sigma)
}

// Sample draws k distinct indices from [0, n) uniformly at random (a
// partial Fisher-Yates). It panics if k > n or either is negative.
func (g *RNG) Sample(n, k int) []int {
	if k < 0 || n < 0 || k > n {
		panic(errors.New("stats: invalid Sample parameters"))
	}
	idx := g.r.Perm(n)
	out := make([]int, k)
	copy(out, idx[:k])
	return out
}

// SampleWithReplacement draws k indices from [0, n) uniformly with
// replacement. It panics if n <= 0 or k < 0.
func (g *RNG) SampleWithReplacement(n, k int) []int {
	if n <= 0 || k < 0 {
		panic(errors.New("stats: invalid SampleWithReplacement parameters"))
	}
	out := make([]int, k)
	for i := range out {
		out[i] = g.r.Intn(n)
	}
	return out
}

// Shuffle permutes xs in place.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Pick returns a uniformly chosen element index weighted by weights.
// Weights must be non-negative and sum to a positive value.
func (g *RNG) Pick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic(errors.New("stats: negative weight"))
		}
		total += w
	}
	if total <= 0 {
		panic(errors.New("stats: weights sum to zero"))
	}
	x := g.r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
