package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -2, 7, 0.5}
	if got := Min(xs); got != -2 {
		t.Errorf("Min = %v, want -2", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v, want 7", got)
	}
}

func TestMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Min(nil) did not panic")
		}
	}()
	Min(nil)
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n-1 denominator: sum sq dev = 32, /7.
	want := 32.0 / 7.0
	if got := Variance(xs); !almostEqual(got, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(want), 1e-12) {
		t.Errorf("StdDev = %v, want %v", got, math.Sqrt(want))
	}
	if got := Variance([]float64{42}); got != 0 {
		t.Errorf("Variance of single sample = %v, want 0", got)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("Median odd = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("Median even = %v, want 2.5", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Errorf("q25 = %v, want 2", got)
	}
	// Interpolated case.
	if got := Quantile([]float64{1, 2}, 0.75); !almostEqual(got, 1.75, 1e-12) {
		t.Errorf("q75 of {1,2} = %v, want 1.75", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestBoxSummary(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100}
	b := Box(xs)
	if b.N != 10 {
		t.Errorf("N = %d", b.N)
	}
	if b.Median != 5.5 {
		t.Errorf("Median = %v, want 5.5", b.Median)
	}
	if len(b.Outliers) != 1 || b.Outliers[0] != 100 {
		t.Errorf("Outliers = %v, want [100]", b.Outliers)
	}
	if b.WhiskHi != 9 {
		t.Errorf("WhiskHi = %v, want 9", b.WhiskHi)
	}
	if b.WhiskLo != 1 {
		t.Errorf("WhiskLo = %v, want 1", b.WhiskLo)
	}
}

func TestBoxAllEqual(t *testing.T) {
	b := Box([]float64{2, 2, 2})
	if b.Median != 2 || b.Q1 != 2 || b.Q3 != 2 || b.WhiskLo != 2 || b.WhiskHi != 2 {
		t.Errorf("degenerate box wrong: %+v", b)
	}
	if len(b.Outliers) != 0 {
		t.Errorf("unexpected outliers: %v", b.Outliers)
	}
}

func TestGeomSpaceMatchesPaperTicks(t *testing.T) {
	got := GeomSpace(1e5, 1e10, 10)
	want := []float64{1.00e5, 3.59e5, 1.29e6, 4.64e6, 1.67e7, 5.99e7, 2.15e8, 7.74e8, 2.78e9, 1.00e10}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range got {
		// Paper labels are rounded to 3 significant digits.
		if math.Abs(got[i]-want[i])/want[i] > 0.005 {
			t.Errorf("tick %d = %.3e, want %.3e", i, got[i], want[i])
		}
	}
}

func TestGeomSpaceEndpoints(t *testing.T) {
	got := GeomSpace(2, 32, 5)
	if got[0] != 2 || got[len(got)-1] != 32 {
		t.Errorf("endpoints wrong: %v", got)
	}
}

func TestLog2Error(t *testing.T) {
	if got := Log2Error(8, 2); got != 2 {
		t.Errorf("Log2Error(8,2) = %v, want 2", got)
	}
	if got := Log2Error(1, 4); got != -2 {
		t.Errorf("Log2Error(1,4) = %v, want -2", got)
	}
	if got := Log2Error(3, 3); got != 0 {
		t.Errorf("Log2Error equal = %v, want 0", got)
	}
}

func TestFractionBelow(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.6, 0.9}
	if got := FractionBelow(xs, 0.575); got != 0.5 {
		t.Errorf("FractionBelow = %v, want 0.5", got)
	}
	if got := FractionBelow(nil, 1); got != 0 {
		t.Errorf("FractionBelow(nil) = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{-1, 0, 0.4, 0.5, 0.99, 2}
	bins := Histogram(xs, 0, 1, 2)
	if bins[0] != 3 || bins[1] != 3 {
		t.Errorf("Histogram = %v, want [3 3]", bins)
	}
}

// Property: the median is always between min and max, and quantiles are
// monotone in q.
func TestQuantileProperties(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q25 := Quantile(xs, 0.25)
		q50 := Quantile(xs, 0.5)
		q75 := Quantile(xs, 0.75)
		lo, hi := Min(xs), Max(xs)
		return lo <= q25 && q25 <= q50 && q50 <= q75 && q75 <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Box never loses samples — outliers plus in-fence points
// account for all inputs.
func TestBoxConservesSamples(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		b := Box(xs)
		inFence := 0
		for _, x := range xs {
			if x >= b.WhiskLo && x <= b.WhiskHi {
				inFence++
			}
		}
		return inFence+len(b.Outliers) == len(xs) && b.N == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: GeomSpace is strictly increasing with a constant ratio.
func TestGeomSpaceMonotone(t *testing.T) {
	xs := GeomSpace(1, 1e6, 13)
	ratio := xs[1] / xs[0]
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			t.Fatalf("not increasing at %d: %v", i, xs)
		}
		r := xs[i] / xs[i-1]
		if math.Abs(r-ratio)/ratio > 1e-9 {
			t.Fatalf("ratio drift at %d: %v vs %v", i, r, ratio)
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGSampleDistinct(t *testing.T) {
	g := NewRNG(1)
	for trial := 0; trial < 50; trial++ {
		s := g.Sample(20, 10)
		sort.Ints(s)
		for i := 1; i < len(s); i++ {
			if s[i] == s[i-1] {
				t.Fatalf("duplicate in sample: %v", s)
			}
		}
		for _, v := range s {
			if v < 0 || v >= 20 {
				t.Fatalf("out of range: %v", s)
			}
		}
	}
}

func TestRNGSamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(3, 5) did not panic")
		}
	}()
	NewRNG(1).Sample(3, 5)
}

func TestRNGJitter(t *testing.T) {
	g := NewRNG(7)
	if got := g.Jitter(3.5, 0); got != 3.5 {
		t.Errorf("Jitter sigma=0 = %v", got)
	}
	// With small sigma, jitter stays close to base with overwhelming
	// probability; sanity-check positivity and rough scale.
	for i := 0; i < 1000; i++ {
		v := g.Jitter(1.0, 0.05)
		if v <= 0 || v < 0.5 || v > 2.0 {
			t.Fatalf("implausible jitter %v", v)
		}
	}
}

func TestRNGPick(t *testing.T) {
	g := NewRNG(11)
	counts := make([]int, 3)
	w := []float64{0, 1, 3}
	for i := 0; i < 4000; i++ {
		counts[g.Pick(w)]++
	}
	if counts[0] != 0 {
		t.Errorf("picked zero-weight index %d times", counts[0])
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if ratio < 2.4 || ratio > 3.6 {
		t.Errorf("weight ratio off: %v", ratio)
	}
}

func TestRNGSampleWithReplacement(t *testing.T) {
	g := NewRNG(3)
	s := g.SampleWithReplacement(5, 100)
	if len(s) != 100 {
		t.Fatalf("len = %d", len(s))
	}
	for _, v := range s {
		if v < 0 || v >= 5 {
			t.Fatalf("out of range value %d", v)
		}
	}
}

func TestAbs(t *testing.T) {
	got := Abs([]float64{-1, 2, -3})
	want := []float64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Abs[%d] = %v", i, got[i])
		}
	}
}
