// Package stats provides the small statistical toolkit used throughout
// Pilgrim: descriptive statistics (median, quantiles, standard deviation),
// box-plot summaries in the style of the paper's figures, geometric
// parameter sweeps, and log2-error helpers.
//
// All functions are pure and operate on float64 slices. Inputs are never
// mutated: functions that need ordering work on private copies.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by reducers that require at least one sample.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs. It returns 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Min returns the smallest element of xs. It panics on empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs. It panics on empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Variance returns the unbiased sample variance of xs (n-1 denominator).
// It returns 0 when fewer than two samples are given.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	mu := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - mu
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// sortedCopy returns a sorted copy of xs.
func sortedCopy(xs []float64) []float64 {
	c := make([]float64, len(xs))
	copy(c, xs)
	sort.Float64s(c)
	return c
}

// Median returns the median of xs. It panics on empty input.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-th quantile of xs using linear interpolation
// between closest ranks (the same rule as numpy's default). q must be in
// [0, 1]. It panics on empty input or out-of-range q.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		panic(errors.New("stats: quantile out of range"))
	}
	c := sortedCopy(xs)
	if len(c) == 1 {
		return c[0]
	}
	pos := q * float64(len(c)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return c[lo]
	}
	frac := pos - float64(lo)
	return c[lo]*(1-frac) + c[hi]*frac
}

// BoxSummary is the five-number summary drawn as one box in the paper's
// figures: median, first and third quartiles, and whiskers at the most
// extreme data points within 1.5 IQR of the box (Tukey's rule). Outliers
// holds the points beyond the whiskers.
type BoxSummary struct {
	Median   float64
	Q1, Q3   float64
	WhiskLo  float64
	WhiskHi  float64
	Outliers []float64
	N        int
}

// Box computes the BoxSummary of xs. It panics on empty input.
func Box(xs []float64) BoxSummary {
	if len(xs) == 0 {
		panic(ErrEmpty)
	}
	b := BoxSummary{
		Median: Quantile(xs, 0.5),
		Q1:     Quantile(xs, 0.25),
		Q3:     Quantile(xs, 0.75),
		N:      len(xs),
	}
	iqr := b.Q3 - b.Q1
	loFence := b.Q1 - 1.5*iqr
	hiFence := b.Q3 + 1.5*iqr
	b.WhiskLo = math.Inf(1)
	b.WhiskHi = math.Inf(-1)
	for _, x := range xs {
		if x < loFence || x > hiFence {
			b.Outliers = append(b.Outliers, x)
			continue
		}
		if x < b.WhiskLo {
			b.WhiskLo = x
		}
		if x > b.WhiskHi {
			b.WhiskHi = x
		}
	}
	// All points may be outliers by the fence rule only when IQR is zero
	// and values differ; guard by collapsing whiskers onto the box.
	if math.IsInf(b.WhiskLo, 1) {
		b.WhiskLo = b.Q1
	}
	if math.IsInf(b.WhiskHi, -1) {
		b.WhiskHi = b.Q3
	}
	return b
}

// GeomSpace returns n values forming a geometric progression from lo to hi
// inclusive. It panics unless lo > 0, hi > lo and n >= 2.
//
// The paper's transfer-size sweep is GeomSpace(1e5, 1e10, 10), which yields
// 1.00e5, 3.59e5, 1.29e6, 4.64e6, 1.67e7, 5.99e7, 2.15e8, 7.74e8, 2.78e9,
// 1.00e10 — the exact tick labels of Figures 3-11.
func GeomSpace(lo, hi float64, n int) []float64 {
	if lo <= 0 || hi <= lo || n < 2 {
		panic(errors.New("stats: invalid GeomSpace parameters"))
	}
	out := make([]float64, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	v := lo
	for i := range out {
		out[i] = v
		v *= ratio
	}
	out[n-1] = hi
	return out
}

// Log2Error returns the paper's error metric for one transfer:
// log2(prediction) - log2(measure). Positive values mean the prediction was
// too slow (over-predicted duration), negative values mean it was too fast.
// It panics if either argument is not strictly positive.
func Log2Error(prediction, measure float64) float64 {
	if prediction <= 0 || measure <= 0 {
		panic(errors.New("stats: Log2Error requires positive durations"))
	}
	return math.Log2(prediction) - math.Log2(measure)
}

// Abs returns a copy of xs with every element replaced by its absolute value.
func Abs(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = math.Abs(x)
	}
	return out
}

// FractionBelow returns the fraction of xs strictly below threshold.
// It returns 0 for empty input.
func FractionBelow(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x < threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Histogram bins xs into nbins equal-width bins over [lo, hi]. Values
// outside the range are clamped into the first/last bin. It panics if
// nbins < 1 or hi <= lo.
func Histogram(xs []float64, lo, hi float64, nbins int) []int {
	if nbins < 1 || hi <= lo {
		panic(errors.New("stats: invalid histogram parameters"))
	}
	bins := make([]int, nbins)
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= nbins {
			i = nbins - 1
		}
		bins[i]++
	}
	return bins
}
