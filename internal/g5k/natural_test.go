package g5k

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestNaturalLess(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"node-2", "node-10", true},
		{"node-10", "node-2", false},
		{"node-1", "node-1", false},
		{"a-5", "b-1", true},       // different prefixes: lexicographic
		{"plain", "plainer", true}, // no trailing ints
		{"x9", "x10", true},
	}
	for _, c := range cases {
		if got := naturalLess(c.a, c.b); got != c.want {
			t.Errorf("naturalLess(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSplitTrailingInt(t *testing.T) {
	if p, n, ok := splitTrailingInt("graphene-144"); !ok || p != "graphene-" || n != 144 {
		t.Errorf("got %q %d %v", p, n, ok)
	}
	if _, _, ok := splitTrailingInt("nonumber"); ok {
		t.Error("ok for no trailing int")
	}
	if p, n, ok := splitTrailingInt("42"); !ok || p != "" || n != 42 {
		t.Errorf("bare number: %q %d %v", p, n, ok)
	}
}

func TestServerContentType(t *testing.T) {
	srv := httptest.NewServer(NewServer(Mini()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/reference")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
}

func TestGbps(t *testing.T) {
	if Gbps(10) != 10e9 {
		t.Errorf("Gbps(10) = %v", Gbps(10))
	}
}

func TestNumNodes(t *testing.T) {
	if got := Default().NumNodes(); got != 79+56+144+92+26+20+53+46 {
		t.Errorf("NumNodes = %d", got)
	}
}
