// Package g5k models the Grid'5000 Reference API (paper §IV-B/§IV-C2): a
// machine-readable self-description of the platform — sites, clusters,
// nodes, network interfaces, network equipment with linecards and
// backplanes, and backbone links — served over a JSON REST API.
//
// The real API is populated by scripts run on the testbed; here the
// dataset (dataset.go) embeds the topology the paper describes: Lyon
// (sagittaire, capricorne — flat gigabit clusters behind an
// ExtremeNetworks BlackDiamond 8810), Nancy (graphene, griffon — four
// aggregation switches each, 10 Gb/s uplinked to the site router, Fig. 2),
// Lille (three flat clusters and one aggregated), and the 10 Gb/s RENATER
// backbone connecting site gateways through a Paris hub (Fig. 1).
//
// Package platgen converts this description into simulator platforms, the
// same role as the paper's "Grid'5000 to SimGrid wrapper".
package g5k

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Reference is the root of the platform self-description.
type Reference struct {
	// Sites maps site uid (e.g. "lyon") to its description.
	Sites map[string]*Site `json:"sites"`
	// Backbone lists the inter-site links of the national network.
	Backbone []*BackboneLink `json:"backbone"`
	// Hubs lists backbone-only routing points (e.g. "renater.paris").
	Hubs []string `json:"hubs"`
}

// Site is one geographical Grid'5000 site.
type Site struct {
	UID string `json:"uid"`
	// Gateway is the uid of the site's border equipment (e.g. "gw-lyon").
	Gateway string `json:"gateway"`
	// Clusters maps cluster uid to description.
	Clusters map[string]*Cluster `json:"clusters"`
	// Equipment maps equipment uid to description (routers, switches).
	Equipment map[string]*Equipment `json:"network_equipment"`
}

// Cluster is a homogeneous set of compute nodes.
type Cluster struct {
	UID   string `json:"uid"`
	Model string `json:"model"` // CPU model, informational
	// GFlops is the per-node compute speed used by simulation platforms.
	GFlops float64 `json:"gflops"`
	// Nodes maps node uid (e.g. "sagittaire-1") to description.
	Nodes map[string]*Node `json:"nodes"`
	// NodeClass names the testbed latency/overhead profile of the
	// cluster's hardware generation (see internal/testbed).
	NodeClass string `json:"node_class"`
}

// Node is one compute node.
type Node struct {
	UID string `json:"uid"`
	// Interfaces lists the node's network adapters. Experiments use the
	// first one.
	Interfaces []Interface `json:"network_adapters"`
}

// Interface is one network adapter of a node.
type Interface struct {
	Device string `json:"device"` // e.g. "eth0"
	// RateBps is the nominal interface rate in bits per second.
	RateBps float64 `json:"rate"`
	// Switch is the uid of the equipment the interface plugs into.
	Switch string `json:"switch"`
	// Port is the port name on that equipment.
	Port string `json:"port"`
}

// Equipment is one network device (router or switch).
type Equipment struct {
	UID  string `json:"uid"`
	Kind string `json:"kind"` // "router" | "switch"
	// BackplaneBps is the aggregate switching capacity in bits/s
	// (0 = unknown/not limiting).
	BackplaneBps float64 `json:"backplane_bps"`
	// Linecards describe port groups with their own aggregate limits.
	Linecards []Linecard `json:"linecards"`
	// Uplinks are trunk connections towards other equipment of the same
	// site.
	Uplinks []Uplink `json:"uplinks"`
}

// Linecard is a port group of an equipment with an aggregate rate limit.
type Linecard struct {
	RateBps float64 `json:"rate"`
	Ports   int     `json:"ports"`
}

// Uplink is a trunk link between two pieces of equipment in one site.
type Uplink struct {
	To      string  `json:"to"`   // target equipment uid
	RateBps float64 `json:"rate"` // bits per second
}

// BackboneLink is one national backbone segment.
type BackboneLink struct {
	ID      string  `json:"uid"`
	From    string  `json:"from"` // equipment uid or hub name
	To      string  `json:"to"`
	RateBps float64 `json:"rate"`
	// LatencyS is the measured one-way latency of the segment in
	// seconds. The paper's generator ignored it (hardcoding 2.25e-3);
	// keeping the measurement supports the "use automatic link latency
	// measurements" future work.
	LatencyS float64 `json:"latency"`
}

// SiteIDs returns the sorted site uids.
func (r *Reference) SiteIDs() []string {
	out := make([]string, 0, len(r.Sites))
	for id := range r.Sites {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// ClusterIDs returns the sorted cluster uids of a site.
func (s *Site) ClusterIDs() []string {
	out := make([]string, 0, len(s.Clusters))
	for id := range s.Clusters {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// NodeIDs returns the sorted node uids of a cluster, in natural
// (numeric-suffix-aware) order: sagittaire-2 before sagittaire-10.
func (c *Cluster) NodeIDs() []string {
	out := make([]string, 0, len(c.Nodes))
	for id := range c.Nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return naturalLess(out[i], out[j]) })
	return out
}

// naturalLess compares strings with trailing integers numerically.
func naturalLess(a, b string) bool {
	pa, na, oka := splitTrailingInt(a)
	pb, nb, okb := splitTrailingInt(b)
	if oka && okb && pa == pb {
		return na < nb
	}
	return a < b
}

func splitTrailingInt(s string) (prefix string, n int, ok bool) {
	i := len(s)
	for i > 0 && s[i-1] >= '0' && s[i-1] <= '9' {
		i--
	}
	if i == len(s) {
		return s, 0, false
	}
	v := 0
	for _, c := range s[i:] {
		v = v*10 + int(c-'0')
	}
	return s[:i], v, true
}

// Node returns a node by uid, searching all sites, together with its
// cluster and site; ok is false when absent.
func (r *Reference) Node(uid string) (node *Node, cluster *Cluster, site *Site, ok bool) {
	for _, s := range r.Sites {
		for _, c := range s.Clusters {
			if n, found := c.Nodes[uid]; found {
				return n, c, s, true
			}
		}
	}
	return nil, nil, nil, false
}

// Validate checks referential integrity: every interface plugs into known
// equipment, uplinks target known equipment, gateways exist, and backbone
// endpoints resolve to site gateways or hubs.
func (r *Reference) Validate() error {
	hub := make(map[string]bool, len(r.Hubs))
	for _, h := range r.Hubs {
		hub[h] = true
	}
	gateways := make(map[string]bool)
	for sid, s := range r.Sites {
		if s.UID != sid {
			return fmt.Errorf("g5k: site key %q has uid %q", sid, s.UID)
		}
		if _, ok := s.Equipment[s.Gateway]; !ok {
			return fmt.Errorf("g5k: site %q gateway %q not in equipment", sid, s.Gateway)
		}
		gateways[s.Gateway] = true
		for eid, e := range s.Equipment {
			if e.UID != eid {
				return fmt.Errorf("g5k: equipment key %q has uid %q in site %q", eid, e.UID, sid)
			}
			for _, u := range e.Uplinks {
				if _, ok := s.Equipment[u.To]; !ok {
					return fmt.Errorf("g5k: uplink %s->%s targets unknown equipment in site %q", eid, u.To, sid)
				}
				if u.RateBps <= 0 {
					return fmt.Errorf("g5k: uplink %s->%s has invalid rate", eid, u.To)
				}
			}
		}
		for cid, c := range s.Clusters {
			if c.UID != cid {
				return fmt.Errorf("g5k: cluster key %q has uid %q", cid, c.UID)
			}
			for nid, n := range c.Nodes {
				if n.UID != nid {
					return fmt.Errorf("g5k: node key %q has uid %q", nid, n.UID)
				}
				if len(n.Interfaces) == 0 {
					return fmt.Errorf("g5k: node %q has no interface", nid)
				}
				for _, itf := range n.Interfaces {
					if _, ok := s.Equipment[itf.Switch]; !ok {
						return fmt.Errorf("g5k: node %q interface plugs into unknown equipment %q", nid, itf.Switch)
					}
					if itf.RateBps <= 0 {
						return fmt.Errorf("g5k: node %q interface has invalid rate", nid)
					}
				}
			}
		}
	}
	for _, b := range r.Backbone {
		for _, end := range []string{b.From, b.To} {
			if !hub[end] && !gateways[end] {
				return fmt.Errorf("g5k: backbone link %q endpoint %q is neither hub nor gateway", b.ID, end)
			}
		}
		if b.RateBps <= 0 || b.LatencyS < 0 {
			return fmt.Errorf("g5k: backbone link %q has invalid parameters", b.ID)
		}
	}
	return nil
}

// NumNodes returns the total node count.
func (r *Reference) NumNodes() int {
	n := 0
	for _, s := range r.Sites {
		for _, c := range s.Clusters {
			n += len(c.Nodes)
		}
	}
	return n
}

// WriteJSON serializes the reference with stable indentation.
func (r *Reference) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadJSON parses a reference previously produced by WriteJSON.
func ReadJSON(rd io.Reader) (*Reference, error) {
	var r Reference
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("g5k: decoding reference: %w", err)
	}
	return &r, nil
}
