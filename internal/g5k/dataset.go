package g5k

import "fmt"

// This file embeds the topology dataset of the three sites whose network
// description was available to the paper (§V-A: Lille, Lyon, Nancy),
// following the published shapes:
//
//   - Fig. 2 left: sagittaire — 79 nodes, 1 Gb/s each, plugged directly
//     into the Lyon BlackDiamond 8810 router (flat topology);
//   - Fig. 2 right: graphene — 144 nodes in four groups (1-39, 40-74,
//     75-104, 105-144) behind aggregation switches sgraphene1..4, each
//     uplinked at 10 Gb/s to the Nancy router (hierarchical topology);
//   - other clusters of the three sites "are similar" (§V-B2) — we give
//     Lyon a second flat cluster (capricorne, the one used in the paper's
//     worked example), Nancy a second aggregated cluster (griffon, also
//     named in the worked example), and Lille three flat plus one
//     aggregated cluster;
//   - Fig. 1: sites joined by the 10 Gb/s RENATER backbone; we model the
//     national star through a Paris hub.
//
// Backplane and linecard figures are nominal vendor-class numbers; the
// paper's generator did not use them (§V-A) but Pilgrim's
// equipment-limits extension (platgen.Options.EquipmentLimits) does.

// Gbps converts gigabits per second to bits per second.
func Gbps(g float64) float64 { return g * 1e9 }

// Default returns the reference description of the Lille+Lyon+Nancy
// fraction of Grid'5000 used throughout the paper's evaluation.
func Default() *Reference {
	r := &Reference{
		Sites: make(map[string]*Site),
		Hubs:  []string{"renater-paris"},
	}

	lyon := newSite("lyon", "gw-lyon")
	addRouter(lyon, "gw-lyon", 1440e9, []Linecard{{RateBps: Gbps(48), Ports: 48}, {RateBps: Gbps(48), Ports: 48}, {RateBps: Gbps(48), Ports: 48}})
	addFlatCluster(lyon, "sagittaire", "Opteron 250 2.4 GHz", 4.8, "opteron2004", 79, "gw-lyon")
	addFlatCluster(lyon, "capricorne", "Opteron 246 2.0 GHz", 4.0, "opteron2004", 56, "gw-lyon")
	r.Sites["lyon"] = lyon

	nancy := newSite("nancy", "gw-nancy")
	addRouter(nancy, "gw-nancy", 1920e9, []Linecard{{RateBps: Gbps(80), Ports: 8}})
	addGroupedCluster(nancy, "graphene", "Xeon X3440 2.53 GHz", 10.1, "xeon2010",
		[]group{{"sgraphene1", 1, 39}, {"sgraphene2", 40, 74}, {"sgraphene3", 75, 104}, {"sgraphene4", 105, 144}},
		"gw-nancy", Gbps(10))
	addGroupedCluster(nancy, "griffon", "Xeon L5420 2.5 GHz", 8.0, "xeon2009",
		[]group{{"sgriffon1", 1, 29}, {"sgriffon2", 30, 58}, {"sgriffon3", 59, 92}},
		"gw-nancy", Gbps(10))
	r.Sites["nancy"] = nancy

	lille := newSite("lille", "gw-lille")
	addRouter(lille, "gw-lille", 960e9, []Linecard{{RateBps: Gbps(48), Ports: 48}, {RateBps: Gbps(48), Ports: 48}})
	addFlatCluster(lille, "chicon", "Opteron 285 2.6 GHz", 5.2, "opteron2006", 26, "gw-lille")
	addFlatCluster(lille, "chti", "Opteron 252 2.6 GHz", 5.2, "opteron2006", 20, "gw-lille")
	addFlatCluster(lille, "chuque", "Opteron 248 2.2 GHz", 4.4, "opteron2004", 53, "gw-lille")
	addGroupedCluster(lille, "chinqchint", "Xeon E5440 2.83 GHz", 9.0, "xeon2009",
		[]group{{"schinqchint1", 1, 23}, {"schinqchint2", 24, 46}},
		"gw-lille", Gbps(10))
	r.Sites["lille"] = lille

	// RENATER backbone: a 10 Gb/s star through Paris. Latencies are the
	// "measured" one-way values the metrology service would provide; the
	// paper-faithful generator ignores them and hardcodes 2.25e-3 s.
	r.Backbone = []*BackboneLink{
		{ID: "renater-lyon-paris", From: "gw-lyon", To: "renater-paris", RateBps: Gbps(10), LatencyS: 2.4e-3},
		{ID: "renater-nancy-paris", From: "gw-nancy", To: "renater-paris", RateBps: Gbps(10), LatencyS: 1.7e-3},
		{ID: "renater-lille-paris", From: "gw-lille", To: "renater-paris", RateBps: Gbps(10), LatencyS: 1.2e-3},
	}
	return r
}

// Mini returns a compact two-site reference (a flat and a grouped
// cluster) used by fast tests.
func Mini() *Reference {
	r := &Reference{
		Sites: make(map[string]*Site),
		Hubs:  []string{"renater-paris"},
	}
	lyon := newSite("lyon", "gw-lyon")
	addRouter(lyon, "gw-lyon", 1440e9, nil)
	addFlatCluster(lyon, "sagittaire", "Opteron 250", 4.8, "opteron2004", 6, "gw-lyon")
	r.Sites["lyon"] = lyon
	nancy := newSite("nancy", "gw-nancy")
	addRouter(nancy, "gw-nancy", 1920e9, nil)
	addGroupedCluster(nancy, "graphene", "Xeon X3440", 10.1, "xeon2010",
		[]group{{"sgraphene1", 1, 4}, {"sgraphene2", 5, 8}}, "gw-nancy", Gbps(10))
	r.Sites["nancy"] = nancy
	r.Backbone = []*BackboneLink{
		{ID: "renater-lyon-paris", From: "gw-lyon", To: "renater-paris", RateBps: Gbps(10), LatencyS: 2.4e-3},
		{ID: "renater-nancy-paris", From: "gw-nancy", To: "renater-paris", RateBps: Gbps(10), LatencyS: 1.7e-3},
	}
	return r
}

// FQDN returns the fully qualified node name used by Pilgrim requests,
// e.g. FQDN("sagittaire-1", "lyon") = "sagittaire-1.lyon.grid5000.fr".
func FQDN(node, site string) string {
	return node + "." + site + ".grid5000.fr"
}

func newSite(uid, gateway string) *Site {
	return &Site{
		UID:       uid,
		Gateway:   gateway,
		Clusters:  make(map[string]*Cluster),
		Equipment: make(map[string]*Equipment),
	}
}

func addRouter(s *Site, uid string, backplaneBps float64, linecards []Linecard) {
	s.Equipment[uid] = &Equipment{
		UID:          uid,
		Kind:         "router",
		BackplaneBps: backplaneBps,
		Linecards:    linecards,
	}
}

// addFlatCluster plugs n gigabit nodes directly into the given equipment.
func addFlatCluster(s *Site, uid, model string, gflops float64, class string, n int, sw string) {
	c := &Cluster{
		UID:       uid,
		Model:     model,
		GFlops:    gflops,
		NodeClass: class,
		Nodes:     make(map[string]*Node, n),
	}
	for i := 1; i <= n; i++ {
		nid := fmt.Sprintf("%s-%d", uid, i)
		c.Nodes[nid] = &Node{
			UID: nid,
			Interfaces: []Interface{{
				Device:  "eth0",
				RateBps: Gbps(1),
				Switch:  sw,
				Port:    fmt.Sprintf("ge-%s-%d", uid, i),
			}},
		}
	}
	s.Clusters[uid] = c
}

// group describes one aggregation-switch group of a hierarchical cluster:
// nodes numbered From..To plug into switch SW.
type group struct {
	SW       string
	From, To int
}

// addGroupedCluster creates a hierarchical cluster: each group's nodes
// plug into an aggregation switch, itself uplinked to the site router.
func addGroupedCluster(s *Site, uid, model string, gflops float64, class string, groups []group, router string, uplinkBps float64) {
	c := &Cluster{
		UID:       uid,
		Model:     model,
		GFlops:    gflops,
		NodeClass: class,
		Nodes:     make(map[string]*Node),
	}
	for _, g := range groups {
		s.Equipment[g.SW] = &Equipment{
			UID:          g.SW,
			Kind:         "switch",
			BackplaneBps: 176e9,
			Linecards:    []Linecard{{RateBps: Gbps(48), Ports: 48}},
			Uplinks:      []Uplink{{To: router, RateBps: uplinkBps}},
		}
		for i := g.From; i <= g.To; i++ {
			nid := fmt.Sprintf("%s-%d", uid, i)
			c.Nodes[nid] = &Node{
				UID: nid,
				Interfaces: []Interface{{
					Device:  "eth0",
					RateBps: Gbps(1),
					Switch:  g.SW,
					Port:    fmt.Sprintf("ge-%s-%d", uid, i),
				}},
			}
		}
	}
	s.Clusters[uid] = c
}
