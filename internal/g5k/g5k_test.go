package g5k

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestDefaultValidates(t *testing.T) {
	r := Default()
	if err := r.Validate(); err != nil {
		t.Fatalf("Default dataset invalid: %v", err)
	}
}

func TestMiniValidates(t *testing.T) {
	if err := Mini().Validate(); err != nil {
		t.Fatalf("Mini dataset invalid: %v", err)
	}
}

func TestPaperTopologyShapes(t *testing.T) {
	r := Default()
	// Paper §V-B1: sagittaire has 79 nodes, flat on the Lyon router.
	sag := r.Sites["lyon"].Clusters["sagittaire"]
	if len(sag.Nodes) != 79 {
		t.Errorf("sagittaire nodes = %d, want 79", len(sag.Nodes))
	}
	for _, n := range sag.Nodes {
		if n.Interfaces[0].Switch != "gw-lyon" {
			t.Fatalf("sagittaire node %s not flat on gw-lyon", n.UID)
		}
		if n.Interfaces[0].RateBps != 1e9 {
			t.Fatalf("sagittaire node %s rate = %v", n.UID, n.Interfaces[0].RateBps)
		}
	}
	// Paper Fig. 2: graphene has 144 nodes in 4 groups on sgraphene1..4,
	// with the documented boundaries.
	gra := r.Sites["nancy"].Clusters["graphene"]
	if len(gra.Nodes) != 144 {
		t.Errorf("graphene nodes = %d, want 144", len(gra.Nodes))
	}
	wantSwitch := func(idx int) string {
		switch {
		case idx <= 39:
			return "sgraphene1"
		case idx <= 74:
			return "sgraphene2"
		case idx <= 104:
			return "sgraphene3"
		default:
			return "sgraphene4"
		}
	}
	for i := 1; i <= 144; i++ {
		uid := "graphene-" + itoa(i)
		n, ok := gra.Nodes[uid]
		if !ok {
			t.Fatalf("missing node %s", uid)
		}
		if got, want := n.Interfaces[0].Switch, wantSwitch(i); got != want {
			t.Errorf("%s on %s, want %s", uid, got, want)
		}
	}
	// Each aggregation switch uplinks at 10 Gb/s to gw-nancy.
	for _, sw := range []string{"sgraphene1", "sgraphene2", "sgraphene3", "sgraphene4"} {
		eq := r.Sites["nancy"].Equipment[sw]
		if eq == nil {
			t.Fatalf("missing equipment %s", sw)
		}
		if len(eq.Uplinks) != 1 || eq.Uplinks[0].To != "gw-nancy" || eq.Uplinks[0].RateBps != 10e9 {
			t.Errorf("%s uplinks = %+v", sw, eq.Uplinks)
		}
	}
	// Three sites, all gatewayed to the Paris hub at 10 Gb/s.
	if got := r.SiteIDs(); len(got) != 3 || got[0] != "lille" || got[1] != "lyon" || got[2] != "nancy" {
		t.Errorf("sites = %v", got)
	}
	if len(r.Backbone) != 3 {
		t.Errorf("backbone links = %d, want 3", len(r.Backbone))
	}
	for _, b := range r.Backbone {
		if b.RateBps != 10e9 {
			t.Errorf("backbone %s rate = %v, want 10e9", b.ID, b.RateBps)
		}
	}
}

func itoa(i int) string {
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}

func TestNodeLookup(t *testing.T) {
	r := Default()
	n, c, s, ok := r.Node("capricorne-36")
	if !ok {
		t.Fatal("capricorne-36 not found")
	}
	if n.UID != "capricorne-36" || c.UID != "capricorne" || s.UID != "lyon" {
		t.Errorf("lookup = %s/%s/%s", n.UID, c.UID, s.UID)
	}
	if _, _, _, ok := r.Node("ghost-1"); ok {
		t.Error("ghost node found")
	}
}

func TestNodeIDsNaturalOrder(t *testing.T) {
	r := Default()
	ids := r.Sites["lyon"].Clusters["sagittaire"].NodeIDs()
	if ids[0] != "sagittaire-1" || ids[1] != "sagittaire-2" {
		t.Errorf("first ids = %v", ids[:2])
	}
	// sagittaire-10 must come after sagittaire-9, not after sagittaire-1.
	pos := map[string]int{}
	for i, id := range ids {
		pos[id] = i
	}
	if pos["sagittaire-10"] != pos["sagittaire-9"]+1 {
		t.Errorf("natural ordering broken: 9 at %d, 10 at %d", pos["sagittaire-9"], pos["sagittaire-10"])
	}
}

func TestFQDN(t *testing.T) {
	if got := FQDN("sagittaire-1", "lyon"); got != "sagittaire-1.lyon.grid5000.fr" {
		t.Errorf("FQDN = %q", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := Default()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	r2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Validate(); err != nil {
		t.Fatalf("round-tripped reference invalid: %v", err)
	}
	if r2.NumNodes() != r.NumNodes() {
		t.Errorf("node count changed: %d vs %d", r2.NumNodes(), r.NumNodes())
	}
	if len(r2.Backbone) != len(r.Backbone) {
		t.Errorf("backbone changed")
	}
}

func TestValidateCatchesDanglingSwitch(t *testing.T) {
	r := Mini()
	r.Sites["lyon"].Clusters["sagittaire"].Nodes["sagittaire-1"].Interfaces[0].Switch = "ghost"
	if err := r.Validate(); err == nil {
		t.Fatal("dangling switch accepted")
	}
}

func TestValidateCatchesBadBackbone(t *testing.T) {
	r := Mini()
	r.Backbone[0].From = "gw-ghost"
	if err := r.Validate(); err == nil {
		t.Fatal("dangling backbone endpoint accepted")
	}
}

func TestValidateCatchesBadGateway(t *testing.T) {
	r := Mini()
	r.Sites["lyon"].Gateway = "ghost"
	if err := r.Validate(); err == nil {
		t.Fatal("dangling gateway accepted")
	}
}

func TestServerEndpoints(t *testing.T) {
	srv := httptest.NewServer(NewServer(Default()))
	defer srv.Close()

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// /sites
	resp := get("/sites")
	var sites []string
	if err := json.NewDecoder(resp.Body).Decode(&sites); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(sites) != 3 {
		t.Errorf("sites = %v", sites)
	}

	// /sites/lyon/clusters
	resp = get("/sites/lyon/clusters")
	var clusters []string
	if err := json.NewDecoder(resp.Body).Decode(&clusters); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(clusters) != 2 || clusters[0] != "capricorne" || clusters[1] != "sagittaire" {
		t.Errorf("lyon clusters = %v", clusters)
	}

	// /sites/nancy/clusters/graphene/nodes
	resp = get("/sites/nancy/clusters/graphene/nodes")
	var nodes []string
	if err := json.NewDecoder(resp.Body).Decode(&nodes); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(nodes) != 144 || nodes[0] != "graphene-1" {
		t.Errorf("graphene nodes: len=%d first=%v", len(nodes), nodes[0])
	}

	// /backbone
	resp = get("/backbone")
	var bb []*BackboneLink
	if err := json.NewDecoder(resp.Body).Decode(&bb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(bb) != 3 {
		t.Errorf("backbone = %v", bb)
	}

	// 404s
	for _, path := range []string{"/sites/mars", "/sites/lyon/clusters/ghost", "/sites/mars/clusters"} {
		resp := get(path)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s -> %d, want 404", path, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

func TestFetch(t *testing.T) {
	srv := httptest.NewServer(NewServer(Mini()))
	defer srv.Close()
	ref, err := Fetch(nil, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Validate(); err != nil {
		t.Fatal(err)
	}
	if ref.NumNodes() != Mini().NumNodes() {
		t.Errorf("fetched node count = %d", ref.NumNodes())
	}
}

func TestFetchErrors(t *testing.T) {
	// Server that 500s.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	if _, err := Fetch(nil, srv.URL); err == nil {
		t.Fatal("HTTP 500 accepted")
	}
	// Unreachable server.
	if _, err := Fetch(nil, "http://127.0.0.1:1"); err == nil {
		t.Fatal("unreachable server accepted")
	}
}
