package g5k

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// Server exposes a Reference over a JSON REST API shaped like the
// Grid'5000 Reference API. Pilgrim's platform generator can consume either
// the in-process Reference or this HTTP form (the paper's deployment).
type Server struct {
	ref *Reference
	mux *http.ServeMux
}

// NewServer creates a server for the given reference.
func NewServer(ref *Reference) *Server {
	s := &Server{ref: ref, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /reference", s.handleReference)
	s.mux.HandleFunc("GET /sites", s.handleSites)
	s.mux.HandleFunc("GET /sites/{site}", s.handleSite)
	s.mux.HandleFunc("GET /sites/{site}/clusters", s.handleClusters)
	s.mux.HandleFunc("GET /sites/{site}/clusters/{cluster}", s.handleCluster)
	s.mux.HandleFunc("GET /sites/{site}/clusters/{cluster}/nodes", s.handleNodes)
	s.mux.HandleFunc("GET /backbone", s.handleBackbone)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Headers are already out; nothing more to do than log-level
		// reporting, which the library leaves to the caller's middleware.
		return
	}
}

func (s *Server) handleReference(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.ref)
}

func (s *Server) handleSites(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.ref.SiteIDs())
}

func (s *Server) site(w http.ResponseWriter, r *http.Request) (*Site, bool) {
	id := r.PathValue("site")
	site, ok := s.ref.Sites[id]
	if !ok {
		http.Error(w, fmt.Sprintf("unknown site %q", id), http.StatusNotFound)
		return nil, false
	}
	return site, true
}

func (s *Server) handleSite(w http.ResponseWriter, r *http.Request) {
	if site, ok := s.site(w, r); ok {
		writeJSON(w, site)
	}
}

func (s *Server) handleClusters(w http.ResponseWriter, r *http.Request) {
	if site, ok := s.site(w, r); ok {
		writeJSON(w, site.ClusterIDs())
	}
}

func (s *Server) cluster(w http.ResponseWriter, r *http.Request) (*Cluster, bool) {
	site, ok := s.site(w, r)
	if !ok {
		return nil, false
	}
	id := r.PathValue("cluster")
	c, ok := site.Clusters[id]
	if !ok {
		http.Error(w, fmt.Sprintf("unknown cluster %q", id), http.StatusNotFound)
		return nil, false
	}
	return c, true
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if c, ok := s.cluster(w, r); ok {
		writeJSON(w, c)
	}
}

func (s *Server) handleNodes(w http.ResponseWriter, r *http.Request) {
	if c, ok := s.cluster(w, r); ok {
		writeJSON(w, c.NodeIDs())
	}
}

func (s *Server) handleBackbone(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.ref.Backbone)
}

// Fetch retrieves the full reference from a server rooted at baseURL
// (e.g. "http://127.0.0.1:8080").
func Fetch(client *http.Client, baseURL string) (*Reference, error) {
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(baseURL + "/reference")
	if err != nil {
		return nil, fmt.Errorf("g5k: fetching reference: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("g5k: fetching reference: HTTP %d", resp.StatusCode)
	}
	return ReadJSON(resp.Body)
}
