package workflow

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"pilgrim/internal/platform"
	"pilgrim/internal/sim"
)

// testPlatform: two hosts (1 Gflop/s and 2 Gflop/s) joined by a 100 MB/s
// link with zero latency, gamma off for closed-form checks.
func testPlatform(t testing.TB) (*platform.Platform, sim.Config) {
	t.Helper()
	p := platform.New("wf", platform.RoutingFull)
	as := p.Root()
	if _, err := as.AddHost("a", 1e9); err != nil {
		t.Fatal(err)
	}
	if _, err := as.AddHost("b", 2e9); err != nil {
		t.Fatal(err)
	}
	l, err := as.AddLink("l", 100e6/0.92, 0, platform.Shared) // so effective = 100e6
	if err != nil {
		t.Fatal(err)
	}
	if err := as.AddRoute("a", "b", []platform.LinkUse{{Link: l, Direction: platform.None}}, true); err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.TCPGamma = 0
	return p, cfg
}

func TestValidateCatchesProblems(t *testing.T) {
	cases := map[string]*Workflow{
		"empty": {Name: "w"},
		"dup ids": {Name: "w", Tasks: []Task{
			{ID: "t", Kind: Compute, Host: "a", Flops: 1},
			{ID: "t", Kind: Compute, Host: "a", Flops: 1},
		}},
		"no id": {Name: "w", Tasks: []Task{{Kind: Compute, Host: "a", Flops: 1}}},
		"bad compute": {Name: "w", Tasks: []Task{
			{ID: "t", Kind: Compute, Flops: 1}, // no host
		}},
		"bad transfer": {Name: "w", Tasks: []Task{
			{ID: "t", Kind: TransferData, Src: "a", Bytes: 1}, // no dst
		}},
		"unknown dep": {Name: "w", Tasks: []Task{
			{ID: "t", Kind: Compute, Host: "a", Flops: 1, DependsOn: []string{"ghost"}},
		}},
		"self dep": {Name: "w", Tasks: []Task{
			{ID: "t", Kind: Compute, Host: "a", Flops: 1, DependsOn: []string{"t"}},
		}},
		"cycle": {Name: "w", Tasks: []Task{
			{ID: "x", Kind: Compute, Host: "a", Flops: 1, DependsOn: []string{"y"}},
			{ID: "y", Kind: Compute, Host: "a", Flops: 1, DependsOn: []string{"x"}},
		}},
		"bad kind name": {Name: "w", Tasks: []Task{
			{ID: "t", KindName: "teleport", Host: "a", Flops: 1},
		}},
	}
	for name, w := range cases {
		if _, err := w.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestValidateTopologicalOrder(t *testing.T) {
	w := &Workflow{Name: "chain", Tasks: []Task{
		{ID: "c", Kind: Compute, Host: "a", Flops: 1, DependsOn: []string{"b"}},
		{ID: "a", Kind: Compute, Host: "a", Flops: 1},
		{ID: "b", Kind: Compute, Host: "a", Flops: 1, DependsOn: []string{"a"}},
	}}
	order, err := w.Validate()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for rank, idx := range order {
		pos[w.Tasks[idx].ID] = rank
	}
	if !(pos["a"] < pos["b"] && pos["b"] < pos["c"]) {
		t.Errorf("order = %v", order)
	}
}

func TestPredictChain(t *testing.T) {
	// compute 2 Gflop on a (2s) -> transfer 500 MB a->b (5s) ->
	// compute 4 Gflop on b (2s): makespan 9s.
	p, cfg := testPlatform(t)
	w := &Workflow{Name: "chain", Tasks: []Task{
		{ID: "stage-in", Kind: Compute, Host: "a", Flops: 2e9},
		{ID: "move", Kind: TransferData, Src: "a", Dst: "b", Bytes: 500e6, DependsOn: []string{"stage-in"}},
		{ID: "crunch", Kind: Compute, Host: "b", Flops: 4e9, DependsOn: []string{"move"}},
	}}
	f, err := Predict(p.Snapshot(), cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Makespan-9) > 1e-6 {
		t.Errorf("makespan = %v, want 9", f.Makespan)
	}
	byID := map[string]TaskSchedule{}
	for _, s := range f.Tasks {
		byID[s.ID] = s
	}
	if s := byID["move"]; math.Abs(s.Start-2) > 1e-9 || math.Abs(s.Finish-7) > 1e-6 {
		t.Errorf("move schedule = %+v", s)
	}
	if s := byID["crunch"]; math.Abs(s.Start-7) > 1e-6 {
		t.Errorf("crunch start = %v", s.Start)
	}
}

func TestPredictParallelTransfersContend(t *testing.T) {
	// Two independent 250 MB transfers a->b share the 100 MB/s link:
	// both take 5s instead of 2.5s.
	p, cfg := testPlatform(t)
	w := &Workflow{Name: "par", Tasks: []Task{
		{ID: "t1", Kind: TransferData, Src: "a", Dst: "b", Bytes: 250e6},
		{ID: "t2", Kind: TransferData, Src: "a", Dst: "b", Bytes: 250e6},
	}}
	f, err := Predict(p.Snapshot(), cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Makespan-5) > 1e-6 {
		t.Errorf("makespan = %v, want 5 (contention)", f.Makespan)
	}
}

func TestPredictDiamond(t *testing.T) {
	// Diamond: source compute fans out to two branches that join.
	// Branch 1: transfer 100 MB (1s). Branch 2: compute 3 Gflop on b
	// (1.5s). Join on b after max(1, 1.5) + source 1s = 2.5s, then joint
	// compute 1 Gflop on a... keep simple: join is a transfer back.
	p, cfg := testPlatform(t)
	w := &Workflow{Name: "diamond", Tasks: []Task{
		{ID: "src", Kind: Compute, Host: "a", Flops: 1e9},
		{ID: "left", Kind: TransferData, Src: "a", Dst: "b", Bytes: 100e6, DependsOn: []string{"src"}},
		{ID: "right", Kind: Compute, Host: "b", Flops: 3e9, DependsOn: []string{"src"}},
		{ID: "join", Kind: Compute, Host: "b", Flops: 2e9, DependsOn: []string{"left", "right"}},
	}}
	f, err := Predict(p.Snapshot(), cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	// src ends at 1; left ends 2; right ends 2.5; join runs 1s -> 3.5.
	if math.Abs(f.Makespan-3.5) > 1e-6 {
		t.Errorf("makespan = %v, want 3.5", f.Makespan)
	}
}

func TestPredictUnknownHostFails(t *testing.T) {
	p, cfg := testPlatform(t)
	w := &Workflow{Name: "bad", Tasks: []Task{
		{ID: "t", Kind: Compute, Host: "ghost", Flops: 1e9},
	}}
	if _, err := Predict(p.Snapshot(), cfg, w); err == nil {
		t.Fatal("unknown host accepted")
	}
	// Unknown host in a dependent task (started from a callback).
	w2 := &Workflow{Name: "bad2", Tasks: []Task{
		{ID: "ok", Kind: Compute, Host: "a", Flops: 1e9},
		{ID: "t", Kind: TransferData, Src: "a", Dst: "ghost", Bytes: 1, DependsOn: []string{"ok"}},
	}}
	if _, err := Predict(p.Snapshot(), cfg, w2); err == nil {
		t.Fatal("unknown dependent host accepted")
	}
}

// TestPredictOnOverlayEpoch: workflows answer against whatever epoch they
// are handed — a degraded link slows the transfer, a failed host rejects
// the compute task with a precise error.
func TestPredictOnOverlayEpoch(t *testing.T) {
	p, cfg := testPlatform(t)
	base := p.Snapshot()
	w := &Workflow{Name: "chain", Tasks: []Task{
		{ID: "move", Kind: TransferData, Src: "a", Dst: "b", Bytes: 500e6},
		{ID: "crunch", Kind: Compute, Host: "b", Flops: 4e9, DependsOn: []string{"move"}},
	}}
	li, ok := base.LinkIndex("l")
	if !ok {
		t.Fatal("missing link")
	}
	degraded, err := base.ApplyOverlay([]platform.OverlayLink{
		{Link: li, Bandwidth: base.LinkBandwidth(li) / 2, Latency: math.NaN()},
	}, nil, "half bandwidth")
	if err != nil {
		t.Fatal(err)
	}
	fBase, err := Predict(base, cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	fSlow, err := Predict(degraded, cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	// move: 5s -> 10s, crunch unchanged at 2s.
	if math.Abs(fBase.Makespan-7) > 1e-6 || math.Abs(fSlow.Makespan-12) > 1e-6 {
		t.Errorf("makespans = %v (base), %v (degraded); want 7, 12", fBase.Makespan, fSlow.Makespan)
	}

	hi, ok := base.HostIndex("b")
	if !ok {
		t.Fatal("missing host")
	}
	failed, err := base.ApplyOverlay(nil, []platform.OverlayHost{{Host: hi, Speed: 0}}, "fail b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Predict(failed, cfg, w); err == nil || !strings.Contains(err.Error(), "down") {
		t.Errorf("workflow on failed host: err = %v", err)
	}
}

// TestPredictWithBackground: injected cross-traffic halves the transfer's
// share of the link.
func TestPredictWithBackground(t *testing.T) {
	p, cfg := testPlatform(t)
	w := &Workflow{Name: "bg", Tasks: []Task{
		{ID: "move", Kind: TransferData, Src: "a", Dst: "b", Bytes: 500e6},
	}}
	solo, err := Predict(p.Snapshot(), cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	crowded, err := PredictWithBackground(p.Snapshot(), cfg, w, [][2]string{{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(crowded.Makespan-2*solo.Makespan) > 1e-6 {
		t.Errorf("crowded makespan = %v, want 2x solo %v", crowded.Makespan, solo.Makespan)
	}
	if _, err := PredictWithBackground(p.Snapshot(), cfg, w, [][2]string{{"a", "ghost"}}); err == nil {
		t.Error("unknown background endpoint accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	w := &Workflow{Name: "json", Tasks: []Task{
		{ID: "c", Kind: Compute, Host: "a", Flops: 1e9},
		{ID: "t", Kind: TransferData, Src: "a", Dst: "b", Bytes: 5e8, DependsOn: []string{"c"}},
	}}
	if _, err := w.Validate(); err != nil { // fills KindName
		t.Fatal(err)
	}
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"kind":"transfer"`) {
		t.Errorf("kind not serialized: %s", data)
	}
	var w2 Workflow
	if err := json.Unmarshal(data, &w2); err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Validate(); err != nil {
		t.Fatal(err)
	}
	if w2.Tasks[1].Kind != TransferData {
		t.Errorf("kind lost in round trip: %+v", w2.Tasks[1])
	}

	p, cfg := testPlatform(t)
	f1, err := Predict(p.Snapshot(), cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Predict(p.Snapshot(), cfg, &w2)
	if err != nil {
		t.Fatal(err)
	}
	if f1.Makespan != f2.Makespan {
		t.Errorf("makespan changed after JSON round trip: %v vs %v", f1.Makespan, f2.Makespan)
	}
}
