// Package workflow implements the paper's principal future-work feature
// (§VI): forecasting "not only network transfers but also full workflows
// involving computations and network transfers". This is why Pilgrim
// chose a SimGrid-style simulator — "adding the simulation of computation
// will be straightforward" — and with the fluid engine's computation
// activities it is.
//
// A workflow is a DAG of tasks. Compute tasks burn flops on a host;
// transfer tasks move bytes between hosts; a task starts when all its
// dependencies have completed. Predict simulates the whole DAG on a
// platform, with all the network contention between concurrent transfers
// the fluid model captures, and returns per-task schedules plus the
// makespan.
package workflow

import (
	"fmt"
	"sort"

	"pilgrim/internal/platform"
	"pilgrim/internal/sim"
)

// TaskKind discriminates workflow tasks.
type TaskKind int

// Task kinds.
const (
	// Compute burns Flops on Host.
	Compute TaskKind = iota
	// TransferData moves Bytes from Src to Dst.
	TransferData
)

// String returns the JSON spelling of the kind.
func (k TaskKind) String() string {
	switch k {
	case Compute:
		return "compute"
	case TransferData:
		return "transfer"
	default:
		return fmt.Sprintf("TaskKind(%d)", int(k))
	}
}

// Task is one node of the workflow DAG.
type Task struct {
	// ID names the task; unique within the workflow.
	ID string `json:"id"`
	// Kind selects compute vs transfer semantics.
	Kind TaskKind `json:"-"`
	// KindName is the JSON form of Kind ("compute" | "transfer").
	KindName string `json:"kind"`
	// Host and Flops describe a compute task.
	Host  string  `json:"host,omitempty"`
	Flops float64 `json:"flops,omitempty"`
	// Src, Dst and Bytes describe a transfer task.
	Src   string  `json:"src,omitempty"`
	Dst   string  `json:"dst,omitempty"`
	Bytes float64 `json:"bytes,omitempty"`
	// DependsOn lists task IDs that must complete first.
	DependsOn []string `json:"depends_on,omitempty"`
}

// normalize fills Kind from KindName (for JSON-decoded tasks).
func (t *Task) normalize() error {
	switch t.KindName {
	case "compute":
		t.Kind = Compute
	case "transfer":
		t.Kind = TransferData
	case "":
		// Programmatic construction: trust Kind, fill KindName.
		t.KindName = t.Kind.String()
	default:
		return fmt.Errorf("workflow: task %q has unknown kind %q", t.ID, t.KindName)
	}
	return nil
}

// Workflow is a named DAG of tasks.
type Workflow struct {
	Name  string `json:"name"`
	Tasks []Task `json:"tasks"`
}

// Validate checks IDs, parameters and acyclicity, and returns a
// topological order of task indices.
func (w *Workflow) Validate() ([]int, error) {
	if len(w.Tasks) == 0 {
		return nil, fmt.Errorf("workflow: %q has no tasks", w.Name)
	}
	byID := make(map[string]int, len(w.Tasks))
	for i := range w.Tasks {
		t := &w.Tasks[i]
		if err := t.normalize(); err != nil {
			return nil, err
		}
		if t.ID == "" {
			return nil, fmt.Errorf("workflow: task %d has no id", i)
		}
		if _, dup := byID[t.ID]; dup {
			return nil, fmt.Errorf("workflow: duplicate task id %q", t.ID)
		}
		byID[t.ID] = i
		switch t.Kind {
		case Compute:
			if t.Host == "" || t.Flops <= 0 {
				return nil, fmt.Errorf("workflow: compute task %q needs host and positive flops", t.ID)
			}
		case TransferData:
			if t.Src == "" || t.Dst == "" || t.Bytes <= 0 {
				return nil, fmt.Errorf("workflow: transfer task %q needs src, dst and positive bytes", t.ID)
			}
		}
	}
	// Kahn's algorithm for cycle detection + topological order.
	indeg := make([]int, len(w.Tasks))
	succ := make([][]int, len(w.Tasks))
	for i := range w.Tasks {
		for _, dep := range w.Tasks[i].DependsOn {
			j, ok := byID[dep]
			if !ok {
				return nil, fmt.Errorf("workflow: task %q depends on unknown task %q", w.Tasks[i].ID, dep)
			}
			if j == i {
				return nil, fmt.Errorf("workflow: task %q depends on itself", w.Tasks[i].ID)
			}
			succ[j] = append(succ[j], i)
			indeg[i]++
		}
	}
	var queue, order []int
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	sort.Ints(queue) // deterministic order
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		order = append(order, i)
		for _, j := range succ[i] {
			indeg[j]--
			if indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
	}
	if len(order) != len(w.Tasks) {
		return nil, fmt.Errorf("workflow: %q contains a dependency cycle", w.Name)
	}
	return order, nil
}

// TaskSchedule reports the simulated execution window of one task.
type TaskSchedule struct {
	ID     string  `json:"id"`
	Start  float64 `json:"start"`
	Finish float64 `json:"finish"`
}

// Forecast is the simulated outcome of a workflow.
type Forecast struct {
	Name     string         `json:"name"`
	Makespan float64        `json:"makespan"`
	Tasks    []TaskSchedule `json:"tasks"`
}

// Predict simulates the workflow on one compiled platform epoch and
// returns the schedule. Independent tasks run concurrently and contend
// for hosts and links exactly as the fluid model dictates. Taking a
// Snapshot (rather than the builder *platform.Platform of earlier
// versions) lets workflows participate in everything epochs can express:
// at=T timeline/forecast queries, and scenario overlays with degraded or
// failed resources — a task on a failed host, or a transfer routed over a
// failed link, fails the forecast with a precise error.
func Predict(snap *platform.Snapshot, cfg sim.Config, w *Workflow) (*Forecast, error) {
	return PredictWithBackground(snap, cfg, w, nil)
}

// PredictWithBackground is Predict with persistent background flows
// (scenario-injected cross-traffic) contending with the workflow's
// transfers from simulated time 0.
func PredictWithBackground(snap *platform.Snapshot, cfg sim.Config, w *Workflow, background [][2]string) (*Forecast, error) {
	if _, err := w.Validate(); err != nil {
		return nil, err
	}
	// The engine comes from (and returns to) the process-wide pool; a
	// recycled engine is bit-identical to a fresh one.
	engine := sim.AcquireEngineSnapshot(snap, cfg)
	defer sim.ReleaseEngine(engine)
	for _, bg := range background {
		if _, err := engine.AddBackgroundFlow(bg[0], bg[1], 0); err != nil {
			return nil, fmt.Errorf("workflow: background flow %s->%s: %w", bg[0], bg[1], err)
		}
	}

	n := len(w.Tasks)
	byID := make(map[string]int, n)
	for i := range w.Tasks {
		byID[w.Tasks[i].ID] = i
	}
	succ := make([][]int, n)
	pending := make([]int, n) // outstanding dependency count
	for i := range w.Tasks {
		for _, dep := range w.Tasks[i].DependsOn {
			j := byID[dep]
			succ[j] = append(succ[j], i)
			pending[i]++
		}
	}

	schedules := make([]TaskSchedule, n)
	started := make([]bool, n)

	var startTask func(i int, now float64) error
	onDone := func(i int) func(now float64) {
		return func(now float64) {
			schedules[i].Finish = now
			for _, j := range succ[i] {
				pending[j]--
				if pending[j] == 0 && !started[j] {
					// Start dependents at the completion instant.
					if err := startTask(j, now); err != nil {
						// Starting can only fail on invalid hosts, which
						// Validate cannot know; surface via panic and
						// recover in Predict's caller frame below.
						panic(err)
					}
				}
			}
		}
	}
	startTask = func(i int, now float64) error {
		t := &w.Tasks[i]
		started[i] = true
		schedules[i] = TaskSchedule{ID: t.ID, Start: now}
		switch t.Kind {
		case Compute:
			_, err := engine.AddExec(t.Host, t.Flops, now, onDone(i))
			return err
		case TransferData:
			_, err := engine.AddComm(t.Src, t.Dst, t.Bytes, now, onDone(i))
			return err
		default:
			return fmt.Errorf("workflow: task %q has invalid kind", t.ID)
		}
	}

	var runErr error
	func() {
		defer func() {
			if r := recover(); r != nil {
				if err, ok := r.(error); ok {
					runErr = err
					return
				}
				panic(r)
			}
		}()
		for i := range w.Tasks {
			if pending[i] == 0 {
				if err := startTask(i, 0); err != nil {
					runErr = err
					return
				}
			}
		}
		if runErr == nil {
			if _, err := engine.RunToCompletion(); err != nil {
				runErr = err
			}
		}
	}()
	if runErr != nil {
		return nil, runErr
	}

	f := &Forecast{Name: w.Name, Tasks: schedules}
	for i := range schedules {
		if !started[i] {
			return nil, fmt.Errorf("workflow: task %q never became ready", w.Tasks[i].ID)
		}
		if schedules[i].Finish > f.Makespan {
			f.Makespan = schedules[i].Finish
		}
	}
	return f, nil
}
