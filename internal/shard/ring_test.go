package shard

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

func mapOf(names ...string) *Map {
	m := &Map{}
	for i, n := range names {
		m.Workers = append(m.Workers, Worker{Name: n, URL: fmt.Sprintf("http://10.0.0.%d:8080", i+1)})
	}
	return m
}

func ringOf(t testing.TB, names ...string) *Ring {
	t.Helper()
	r, err := NewRing(mapOf(names...))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("platform-%d.site.grid5000.fr", i)
	}
	return out
}

// TestRingDeterministicAcrossBuilds pins the core control-plane
// contract: two rings built from the same membership — in any listing
// order, in any process — route every key identically. The golden
// assignments below additionally freeze the hash itself: if they ever
// change, a rolling fleet upgrade would re-home platforms mid-flight.
func TestRingDeterministicAcrossBuilds(t *testing.T) {
	a := ringOf(t, "w1", "w2", "w3")
	b := ringOf(t, "w3", "w1", "w2") // same members, different listing order
	for _, k := range keys(500) {
		if oa, ob := a.Owner(k), b.Owner(k); oa.Name != ob.Name {
			t.Fatalf("key %q: ring A routes to %s, ring B to %s", k, oa.Name, ob.Name)
		}
	}
	// Golden assignments: the hash is part of the shard-map contract.
	golden := map[string]string{
		"g5k_test":     "w1",
		"g5k_cabinets": "w1",
		"g5k_mini":     "w3",
	}
	for k, want := range golden {
		if got := a.Owner(k).Name; got != want {
			t.Errorf("golden route changed: %s now owned by %s, want %s (hash contract broken)", k, got, want)
		}
	}
}

// TestRingMinimalMovement proves the rendezvous property the WAL warm
// restarts rely on: growing or shrinking the fleet by one worker remaps
// only about n/k platforms — and strictly only those moving to (or off)
// the changed worker.
func TestRingMinimalMovement(t *testing.T) {
	const n = 4000
	ks := keys(n)
	small := ringOf(t, "w1", "w2", "w3")
	big := ringOf(t, "w1", "w2", "w3", "w4")

	moved := 0
	for _, k := range ks {
		before, after := small.Owner(k).Name, big.Owner(k).Name
		if before != after {
			moved++
			if after != "w4" {
				t.Fatalf("key %q moved %s -> %s, but only the new worker w4 may gain keys", k, before, after)
			}
		}
	}
	// Expect ~n/k (= n/4) keys to move; allow generous statistical slack
	// but fail on gross imbalance (a broken mix would move ~0 or ~all).
	want := float64(n) / 4
	if f := float64(moved); f < want*0.7 || f > want*1.3 {
		t.Fatalf("adding a 4th worker moved %d of %d keys, want about %.0f (n/k)", moved, n, want)
	}

	// Removal is the mirror image: only w4's keys move back.
	for _, k := range ks {
		if big.Owner(k).Name != "w4" && small.Owner(k).Name != big.Owner(k).Name {
			t.Fatalf("key %q not owned by w4 changed owner on removal", k)
		}
	}
}

// TestRingBalance checks the load spread: with many keys every worker
// should own roughly 1/k of them.
func TestRingBalance(t *testing.T) {
	r := ringOf(t, "a", "b", "c", "d", "e")
	counts := map[string]int{}
	const n = 10000
	for _, k := range keys(n) {
		counts[r.Owner(k).Name]++
	}
	want := float64(n) / 5
	for _, w := range r.Workers() {
		if c := float64(counts[w.Name]); math.Abs(c-want) > want*0.2 {
			t.Errorf("worker %s owns %d of %d keys, want about %.0f ±20%%", w.Name, counts[w.Name], n, want)
		}
	}
}

// TestTableConcurrentReload races routing against shard-map reloads —
// the SIGHUP path. Run under -race; the invariant is that every Owner
// call sees one coherent ring (one of the memberships ever stored).
func TestTableConcurrentReload(t *testing.T) {
	rings := []*Ring{
		ringOf(t, "w1", "w2"),
		ringOf(t, "w1", "w2", "w3"),
		ringOf(t, "w2", "w3"),
	}
	valid := map[string]bool{"w1": true, "w2": true, "w3": true}
	tab := NewTable(rings[0])

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ks := keys(64)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				w := tab.Owner(ks[i%len(ks)])
				if !valid[w.Name] {
					t.Errorf("routed to unknown worker %q", w.Name)
					return
				}
			}
		}()
	}
	for i := 0; i < 1000; i++ {
		tab.Store(rings[i%len(rings)])
	}
	close(stop)
	wg.Wait()
}

func TestOwns(t *testing.T) {
	r := ringOf(t, "w1", "w2")
	for _, k := range keys(50) {
		o := r.Owner(k)
		if !r.Owns(o.Name, k) {
			t.Fatalf("Owns(%s, %s) = false for the owner", o.Name, k)
		}
		for _, w := range r.Workers() {
			if w.Name != o.Name && r.Owns(w.Name, k) {
				t.Fatalf("Owns(%s, %s) = true for a non-owner", w.Name, k)
			}
		}
	}
}
