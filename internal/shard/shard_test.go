package shard

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseFlag(t *testing.T) {
	m, err := ParseFlag("w1=http://10.0.0.1:8080, w2=http://10.0.0.2:8080/ ,http://10.0.0.3:9090")
	if err != nil {
		t.Fatal(err)
	}
	want := []Worker{
		{Name: "w1", URL: "http://10.0.0.1:8080"},
		{Name: "w2", URL: "http://10.0.0.2:8080"}, // trailing slash trimmed
		{Name: "10.0.0.3:9090", URL: "http://10.0.0.3:9090"},
	}
	if len(m.Workers) != len(want) {
		t.Fatalf("got %d workers, want %d", len(m.Workers), len(want))
	}
	for i, w := range want {
		if m.Workers[i] != w {
			t.Errorf("worker %d = %+v, want %+v", i, m.Workers[i], w)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseFlagRejectsGarbage(t *testing.T) {
	if _, err := ParseFlag("not a url"); err == nil {
		t.Fatal("bare non-URL entry accepted")
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		m    *Map
		want string
	}{
		{"empty", &Map{}, "empty shard map"},
		{"no name", &Map{Workers: []Worker{{URL: "http://h:1"}}}, "has no name"},
		{"dup name", &Map{Workers: []Worker{{Name: "w", URL: "http://h:1"}, {Name: "w", URL: "http://h:2"}}}, "duplicate worker name"},
		{"dup url", &Map{Workers: []Worker{{Name: "a", URL: "http://h:1"}, {Name: "b", URL: "http://h:1"}}}, "duplicate worker URL"},
		{"relative url", &Map{Workers: []Worker{{Name: "a", URL: "/just/a/path"}}}, "not absolute"},
		{"bad scheme", &Map{Workers: []Worker{{Name: "a", URL: "ftp://h:1"}}}, "not absolute http"},
	}
	for _, c := range cases {
		err := c.m.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestLoadFileAndSource(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shards.json")
	doc := `{"shards": [
  {"name": "w2", "url": "http://10.0.0.2:8080/"},
  {"name": "w3", "url": "http://10.0.0.3:8080"}
]}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Source{Flag: "w1=http://10.0.0.1:8080", File: path}.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(m.Names(), ","); got != "w1,w2,w3" {
		t.Fatalf("merged names = %s, want w1,w2,w3", got)
	}
	if w, ok := m.Lookup("w2"); !ok || w.URL != "http://10.0.0.2:8080" {
		t.Fatalf("w2 lookup = %+v, %v (trailing slash should be trimmed)", w, ok)
	}

	// A duplicate between flag and file must be rejected, not shadowed.
	if _, err := (Source{Flag: "w2=http://10.0.0.9:8080", File: path}.Load()); err == nil {
		t.Fatal("duplicate worker across flag and file accepted")
	}
	// A ring from the merged map routes identically to one from an
	// equivalent literal map — membership source does not affect routing.
	r1, err := NewRing(m)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing(mapOf("w3", "w1", "w2"))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys(200) {
		if r1.Owner(k).Name != r2.Owner(k).Name {
			t.Fatalf("key %q routes differently across equivalent maps", k)
		}
	}
}

func TestSourceErrors(t *testing.T) {
	if _, err := (Source{Flag: ""}).Load(); err == nil {
		t.Fatal("empty source accepted")
	}
	if _, err := (Source{File: "/nonexistent/shards.json"}).Load(); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{not json"), 0o644)
	if _, err := (Source{File: bad}).Load(); err == nil {
		t.Fatal("malformed file accepted")
	}
}

func TestMapEqual(t *testing.T) {
	a := mapOf("w1", "w2")
	b := mapOf("w1", "w2")
	c := mapOf("w2", "w1")
	if !a.Equal(b) {
		t.Fatal("identical maps not equal")
	}
	if a.Equal(c) {
		t.Fatal("reordered maps equal (order is part of the listing identity)")
	}
	if a.Equal(nil) {
		t.Fatal("nil map equal")
	}
}
