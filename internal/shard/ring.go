package shard

import (
	"sync/atomic"
)

// Ring assigns platform names to workers by rendezvous (highest-random-
// weight) hashing: every worker scores every key with a seeded hash and
// the highest score owns it. Rendezvous hashing gives the two properties
// the fleet needs with no virtual-node bookkeeping:
//
//   - determinism: ownership is a pure function of (worker names, key),
//     so every process that loads the same shard map routes identically,
//     across restarts and machines;
//   - minimal movement: removing a worker reassigns only the keys it
//     owned (each to its runner-up), and adding one steals only the keys
//     it now scores highest on — about n/k of them.
//
// A Ring is immutable after NewRing; reload by building a new Ring and
// swapping it into a Table.
type Ring struct {
	workers []Worker // sorted by name
	seeds   []uint64 // per-worker hash seed, derived from the name
}

// NewRing builds a ring over the map's workers. The map must validate.
func NewRing(m *Map) (*Ring, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	ws := sortedCopy(m.Workers)
	r := &Ring{workers: ws, seeds: make([]uint64, len(ws))}
	for i, w := range ws {
		r.seeds[i] = fnv64a(w.Name)
	}
	return r, nil
}

// Workers returns the ring's membership in canonical (name) order. The
// slice is shared; callers must not mutate it.
func (r *Ring) Workers() []Worker { return r.workers }

// Len returns the number of workers.
func (r *Ring) Len() int { return len(r.workers) }

// Owner returns the worker that owns the given platform key.
func (r *Ring) Owner(key string) Worker {
	kh := fnv64a(key)
	best, bestScore := 0, mix(r.seeds[0], kh)
	for i := 1; i < len(r.seeds); i++ {
		if s := mix(r.seeds[i], kh); s > bestScore {
			best, bestScore = i, s
		}
	}
	return r.workers[best]
}

// Owns reports whether the named worker owns the key.
func (r *Ring) Owns(worker, key string) bool {
	return r.Owner(key).Name == worker
}

// fnv64a is the 64-bit FNV-1a hash (inlined to keep the ring dependency-
// free and its constants explicit — the on-disk shard map must route the
// same way forever, so the hash is part of the wire format).
func fnv64a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// mix combines a worker seed and a key hash into the rendezvous score
// (a splitmix64-style finalizer: FNV alone correlates too strongly
// between similar worker names to balance the ring).
func mix(seed, key uint64) uint64 {
	x := seed ^ key
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Table is the reloadable ring holder: routing loads the current ring
// with one atomic pointer read, and a SIGHUP reload swaps in a freshly
// built ring without pausing traffic. In-flight requests finish on the
// ring they started with.
type Table struct {
	ring atomic.Pointer[Ring]
}

// NewTable returns a table serving the given ring.
func NewTable(r *Ring) *Table {
	t := &Table{}
	t.ring.Store(r)
	return t
}

// Ring returns the current ring.
func (t *Table) Ring() *Ring { return t.ring.Load() }

// Store swaps the current ring.
func (t *Table) Store(r *Ring) { t.ring.Store(r) }

// Owner routes one key on the current ring.
func (t *Table) Owner(key string) Worker { return t.ring.Load().Owner(key) }
