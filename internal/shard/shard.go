// Package shard maps platform names onto a fleet of pilgrimd workers.
//
// The fleet's control plane is deliberately minimal: a static membership
// list (the -shards flag, optionally extended by a JSON shard-map file
// reloaded on SIGHUP) and a deterministic rendezvous-hash ring over it.
// There is no coordination service and no rebalancing protocol — every
// gateway and every worker that loads the same membership computes the
// same owner for every platform, across processes and restarts. Because
// ownership is a pure function of (membership, platform name), adding or
// removing one worker remaps only the platforms that worker gains or
// loses (~n/k of them), which keeps the per-worker WAL timelines and
// forecast caches warm through membership changes.
package shard

import (
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"sort"
	"strings"
)

// Worker is one pilgrimd node in the fleet: a stable name (the hash
// identity — renaming a worker remaps its platforms) and the base URL
// the gateway proxies to.
type Worker struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// Map is an ordered, validated fleet membership list. The order is
// cosmetic (listings, metrics); ownership depends only on the set of
// worker names.
type Map struct {
	Workers []Worker `json:"shards"`
}

// Validate checks the map: at least one worker, no duplicate names or
// URLs, every URL absolute http(s).
func (m *Map) Validate() error {
	if m == nil || len(m.Workers) == 0 {
		return fmt.Errorf("shard: empty shard map")
	}
	names := make(map[string]bool, len(m.Workers))
	urls := make(map[string]bool, len(m.Workers))
	for i, w := range m.Workers {
		if w.Name == "" {
			return fmt.Errorf("shard: worker %d has no name", i)
		}
		if names[w.Name] {
			return fmt.Errorf("shard: duplicate worker name %q", w.Name)
		}
		names[w.Name] = true
		u, err := url.Parse(w.URL)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return fmt.Errorf("shard: worker %q: URL %q is not absolute http(s)", w.Name, w.URL)
		}
		if urls[w.URL] {
			return fmt.Errorf("shard: duplicate worker URL %q", w.URL)
		}
		urls[w.URL] = true
	}
	return nil
}

// Names returns the worker names in map order.
func (m *Map) Names() []string {
	out := make([]string, len(m.Workers))
	for i, w := range m.Workers {
		out[i] = w.Name
	}
	return out
}

// Lookup returns the named worker.
func (m *Map) Lookup(name string) (Worker, bool) {
	for _, w := range m.Workers {
		if w.Name == name {
			return w, true
		}
	}
	return Worker{}, false
}

// Equal reports whether two maps hold the same workers in the same
// order.
func (m *Map) Equal(o *Map) bool {
	if m == nil || o == nil {
		return m == o
	}
	if len(m.Workers) != len(o.Workers) {
		return false
	}
	for i := range m.Workers {
		if m.Workers[i] != o.Workers[i] {
			return false
		}
	}
	return true
}

// ParseFlag parses the -shards flag: comma-separated workers, each
// either "name=url" or a bare URL (the name defaults to the URL's
// host:port). An empty flag yields an empty map (valid only when a
// shard-map file supplies the workers).
func ParseFlag(s string) (*Map, error) {
	m := &Map{}
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		var w Worker
		if i := strings.Index(field, "="); i >= 0 {
			w = Worker{Name: strings.TrimSpace(field[:i]), URL: strings.TrimSpace(field[i+1:])}
		} else {
			u, err := url.Parse(field)
			if err != nil || u.Host == "" {
				return nil, fmt.Errorf("shard: -shards entry %q is neither name=url nor an absolute URL", field)
			}
			w = Worker{Name: u.Host, URL: field}
		}
		w.URL = strings.TrimRight(w.URL, "/")
		m.Workers = append(m.Workers, w)
	}
	return m, nil
}

// LoadFile reads a JSON shard-map file:
//
//	{"shards": [{"name": "w1", "url": "http://10.0.0.1:8080"}, ...]}
//
// The file is the reloadable half of fleet membership: pilgrimgw (and a
// shard-aware pilgrimd) re-read it on SIGHUP and swap the ring
// atomically.
func LoadFile(path string) (*Map, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}
	var m Map
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("shard: parsing %s: %w", path, err)
	}
	for i := range m.Workers {
		m.Workers[i].URL = strings.TrimRight(m.Workers[i].URL, "/")
	}
	return &m, nil
}

// Source is the two-part membership configuration both binaries share:
// the static -shards flag plus an optional shard-map file. Load merges
// them (flag entries first, file entries appended; duplicate names are
// rejected by Validate) so operators can pin seed workers on the command
// line and grow the fleet by editing the file and sending SIGHUP.
type Source struct {
	Flag string // the -shards flag value
	File string // the -shard-map file path ("" = none)
}

// Load resolves the source into a validated map.
func (s Source) Load() (*Map, error) {
	m, err := ParseFlag(s.Flag)
	if err != nil {
		return nil, err
	}
	if s.File != "" {
		fm, err := LoadFile(s.File)
		if err != nil {
			return nil, err
		}
		m.Workers = append(m.Workers, fm.Workers...)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// sortedCopy returns the workers sorted by name — the canonical order
// the ring hashes in, so a map's listing order never changes ownership.
func sortedCopy(ws []Worker) []Worker {
	out := append([]Worker(nil), ws...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
