package testbed

import (
	"fmt"
	"math"
	"sort"

	"pilgrim/internal/flow"
	"pilgrim/internal/g5k"
	"pilgrim/internal/stats"
)

// Transfer is one TCP transfer to execute on the emulated testbed.
// Src and Dst are fully qualified node names.
type Transfer struct {
	Src  string
	Dst  string
	Size float64 // bytes
}

// Measurement is the observed outcome of one Transfer, as iperf would
// report it: wall-clock from connection initiation to final report.
type Measurement struct {
	Transfer
	// Duration is the measured completion time in seconds.
	Duration float64
	// DataTime is the noiseless time spent moving bytes (diagnostics).
	DataTime float64
	// SetupTime is the connection establishment time (diagnostics).
	SetupTime float64
}

// Testbed emulates concurrent TCP transfers on the physical network
// derived from a Grid'5000 reference description. It is not safe for
// concurrent use: runs reuse one flow system, constraint table and flow
// arena across RunTransfers calls (reset per run, so results are
// bit-identical to fresh state, but steady-state runs allocate little).
type Testbed struct {
	cfg Config
	net *network
	rng *stats.RNG

	sys   *flow.System
	cnsts map[*resource]*flow.Constraint
	flows []*tcpFlow // recycled flow structs, grown to the peak batch size

	nodesCache   []string
	clusterCache map[[2]string][]string
}

// New creates a testbed for the reference with the given configuration.
func New(ref *g5k.Reference, cfg Config) (*Testbed, error) {
	net, err := newNetwork(ref, cfg)
	if err != nil {
		return nil, err
	}
	return &Testbed{
		cfg:   cfg,
		net:   net,
		rng:   stats.NewRNG(cfg.Seed),
		sys:   flow.NewSystem(),
		cnsts: make(map[*resource]*flow.Constraint),
	}, nil
}

// Reseed restarts the random stream; campaigns call it per repetition so
// that a run is a pure function of (workload, seed).
func (tb *Testbed) Reseed(seed int64) { tb.rng = stats.NewRNG(seed) }

// RTT returns the emulated round-trip time between two nodes in seconds.
func (tb *Testbed) RTT(src, dst string) (float64, error) {
	hops, err := tb.net.path(src, dst)
	if err != nil {
		return 0, err
	}
	return 2 * pathLatency(hops), nil
}

// flowState tracks one transfer through the TCP lifecycle.
type flowState int

const (
	fsSetup flowState = iota
	fsSlowStart
	fsSteady
	fsDone
)

type tcpFlow struct {
	idx        int
	hops       []hop
	rtt        float64
	weight     float64
	state      flowState
	activateAt float64 // end of connection setup
	nextTick   float64 // next window doubling (slow start)
	cwnd       float64 // bytes
	remaining  float64
	rate       float64
	doneAt     float64
	overhead   float64 // sampled application overhead
	rateJit    float64 // sampled multiplicative data-phase jitter
	// burst flows fit in network buffers: they ramp at their own pace
	// up to line rate without competing in the fluid sharing.
	burst   bool
	lineCap float64 // min hop capacity, the burst rate ceiling

	fv *flow.Variable // live max-min variable while the flow is active
}

// bound returns the flow's window-imposed rate limit.
func (f *tcpFlow) bound(cfg Config) float64 {
	w := f.cwnd
	if f.state == fsSteady || w > cfg.MaxWindow {
		w = cfg.MaxWindow
	}
	return w / f.rtt
}

// RunTransfers emulates the concurrent execution of the given transfers,
// all initiated at the same instant (the experimental protocol of §V-A:
// iperf clients "simultaneously started"). Results are returned in input
// order.
func (tb *Testbed) RunTransfers(transfers []Transfer) ([]Measurement, error) {
	if len(transfers) == 0 {
		return nil, nil
	}
	for len(tb.flows) < len(transfers) {
		tb.flows = append(tb.flows, new(tcpFlow))
	}
	flows := tb.flows[:len(transfers)]
	for i, tr := range transfers {
		if tr.Size <= 0 || math.IsNaN(tr.Size) || math.IsInf(tr.Size, 0) {
			return nil, fmt.Errorf("testbed: invalid size %v for %s->%s", tr.Size, tr.Src, tr.Dst)
		}
		hops, err := tb.net.path(tr.Src, tr.Dst)
		if err != nil {
			return nil, err
		}
		src, err := tb.net.nodeInfoOf(tr.Src)
		if err != nil {
			return nil, err
		}
		rtt := 2 * pathLatency(hops)
		lineCap := math.Inf(1)
		for _, h := range hops {
			if h.res.capacity < lineCap {
				lineCap = h.res.capacity
			}
		}
		*flows[i] = tcpFlow{
			idx:        i,
			hops:       hops,
			rtt:        rtt,
			weight:     math.Pow(rtt, -tb.cfg.RTTFairness),
			state:      fsSetup,
			activateAt: 1.5 * rtt, // SYN, SYN-ACK, ACK+first segment
			cwnd:       tb.cfg.InitialWindow * tb.cfg.MSS,
			remaining:  tr.Size,
			overhead:   tb.cfg.overhead(src.class, tb.rng),
			rateJit:    tb.rng.Jitter(1, tb.cfg.RateJitterSigma),
			burst:      tr.Size <= tb.cfg.BurstBytes,
			lineCap:    lineCap,
		}
	}

	if err := tb.simulate(flows); err != nil {
		return nil, err
	}

	out := make([]Measurement, len(transfers))
	for i, f := range flows {
		dataTime := f.doneAt - f.activateAt
		measured := f.activateAt + dataTime*f.rateJit + f.overhead
		out[i] = Measurement{
			Transfer:  transfers[i],
			Duration:  measured,
			DataTime:  dataTime,
			SetupTime: f.activateAt,
		}
	}
	return out, nil
}

// simulate runs the event loop: flow activations, slow-start window
// doublings, and completions, re-solving the weighted max-min share after
// every event batch. One flow system lives for the whole run: flows enter
// it on activation, update their window bound in place, and leave it on
// completion, so each re-solve only touches the components an event
// disturbed. The system itself is the Testbed's, reset at entry — its
// serials restart, so a run's results are independent of previous runs
// while its buffers and recycled structs carry over.
func (tb *Testbed) simulate(flows []*tcpFlow) error {
	now := 0.0
	active := 0
	remainingFlows := len(flows)

	s := tb.sys
	s.Reset()
	clear(tb.cnsts)
	cnsts := tb.cnsts

	// effBound is the flow's window bound, capped at line rate for
	// buffered bursts (which ramp independently of the fluid sharing).
	// It is asserted at every point the window or state changes, so the
	// solver re-solves exactly the components those changes disturb.
	effBound := func(f *tcpFlow) float64 {
		bound := f.bound(tb.cfg)
		if f.burst && f.lineCap < bound {
			bound = f.lineCap
		}
		return bound
	}

	activate := func(f *tcpFlow) error {
		v := s.NewVariable("", f.weight, effBound(f))
		v.SetData(f)
		f.fv = v
		if f.burst {
			return nil // bound-only: no shared constraints
		}
		for _, h := range f.hops {
			c, ok := cnsts[h.res]
			if !ok {
				c = s.NewConstraint(h.res.id, h.res.capacity)
				cnsts[h.res] = c
			}
			if err := s.Attach(v, c); err != nil {
				return fmt.Errorf("testbed: %w", err)
			}
		}
		return nil
	}

	reshare := func() error {
		if err := s.Solve(); err != nil {
			return err
		}
		// Only re-solved flows can have a new rate or newly satisfy the
		// slow-start exit condition (an unchanged rate exits only if the
		// bound moved, which dirties the flow too).
		for _, v := range s.Touched() {
			f, ok := v.Data().(*tcpFlow)
			if !ok || (f.state != fsSlowStart && f.state != fsSteady) {
				continue
			}
			f.rate = f.fv.Rate()
			// Slow-start exit: the network, not the window, limits the
			// flow now; congestion avoidance holds it at its share.
			if f.state == fsSlowStart && f.rate < f.bound(tb.cfg)*(1-1e-9) {
				f.state = fsSteady
				s.SetBound(f.fv, effBound(f))
			}
		}
		return nil
	}

	// Event budget: flows tick O(log(maxWindow/initWindow)) times each
	// plus setup and completion, so any run beyond this bound is a bug
	// (a stalled loop), not a big workload.
	maxEvents := 1000 * (len(flows) + 10)
	events := 0

	const eps = 1e-6
	for remainingFlows > 0 {
		events++
		if events > maxEvents {
			var detail []string
			for _, f := range flows {
				if f.state != fsDone {
					detail = append(detail, fmt.Sprintf(
						"flow %d state=%d remaining=%v rate=%v cwnd=%v nextTick=%v rtt=%v",
						f.idx, f.state, f.remaining, f.rate, f.cwnd, f.nextTick, f.rtt))
				}
			}
			return fmt.Errorf("testbed: event budget exhausted at t=%v:\n%s",
				now, joinLines(detail))
		}
		if err := reshare(); err != nil {
			return err
		}
		// Next event time.
		next := math.Inf(1)
		for _, f := range flows {
			switch f.state {
			case fsSetup:
				if f.activateAt < next {
					next = f.activateAt
				}
			case fsSlowStart:
				if f.nextTick < next {
					next = f.nextTick
				}
				if f.rate > 0 {
					if t := now + f.remaining/f.rate; t < next {
						next = t
					}
				}
			case fsSteady:
				if f.rate > 0 {
					if t := now + f.remaining/f.rate; t < next {
						next = t
					}
				} else {
					return fmt.Errorf("testbed: flow %d stalled at zero rate", f.idx)
				}
			}
		}
		if math.IsInf(next, 1) {
			return fmt.Errorf("testbed: no next event with %d flows remaining", remainingFlows)
		}
		dt := next - now
		if dt < 0 {
			return fmt.Errorf("testbed: time went backwards (%v -> %v)", now, next)
		}
		for _, f := range flows {
			if f.state == fsSlowStart || f.state == fsSteady {
				f.remaining -= f.rate * dt
			}
		}
		now = next

		for _, f := range flows {
			switch f.state {
			case fsSetup:
				if f.activateAt <= now+1e-15 {
					f.state = fsSlowStart
					f.nextTick = now + f.rtt
					active++
					if err := activate(f); err != nil {
						return err
					}
				}
			case fsSlowStart, fsSteady:
				// A flow is done when its residue is below the byte
				// epsilon, or when draining it needs less time than the
				// floating-point resolution of `now` can represent —
				// without the second clause, a nearly-done flow at large
				// simulated times yields dt == 0 forever.
				if f.remaining <= eps || f.remaining <= f.rate*now*1e-12 {
					f.remaining = 0
					f.state = fsDone
					f.doneAt = now
					s.RemoveVariable(f.fv) // clears the Data backref
					f.fv = nil
					remainingFlows--
					active--
					continue
				}
				if f.state == fsSlowStart && f.nextTick <= now+1e-15 {
					f.cwnd *= 2
					if f.cwnd >= tb.cfg.MaxWindow {
						f.cwnd = tb.cfg.MaxWindow
						f.state = fsSteady
					}
					f.nextTick = now + f.rtt
					// A burst flow pinned at line rate exits slow start
					// here: its effective bound stops moving once lineCap
					// is the limiter, so the touched-flows check in
					// reshare would never see it again.
					if f.state == fsSlowStart && f.burst && f.cwnd/f.rtt >= f.lineCap*(1-1e-9) {
						f.state = fsSteady
					}
					s.SetBound(f.fv, effBound(f))
				}
			}
		}
	}
	return nil
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n"
		}
		out += "  " + l
	}
	return out
}

// Nodes returns the sorted FQDNs of all emulated nodes. The slice is
// cached and shared; callers must not mutate it.
func (tb *Testbed) Nodes() []string {
	if tb.nodesCache == nil {
		out := make([]string, 0, len(tb.net.nodes))
		for fqdn := range tb.net.nodes {
			out = append(out, fqdn)
		}
		sort.Strings(out)
		tb.nodesCache = out
	}
	return tb.nodesCache
}

// NodesOfCluster returns the sorted FQDNs of one cluster's nodes. The
// slice is cached and shared; callers must not mutate it (campaigns call
// this once per repetition).
func (tb *Testbed) NodesOfCluster(site, cluster string) []string {
	key := [2]string{site, cluster}
	if out, ok := tb.clusterCache[key]; ok {
		return out
	}
	var out []string
	for fqdn, info := range tb.net.nodes {
		if info.site == site && info.cluster == cluster {
			out = append(out, fqdn)
		}
	}
	sort.Strings(out)
	if tb.clusterCache == nil {
		tb.clusterCache = make(map[[2]string][]string)
	}
	tb.clusterCache[key] = out
	return out
}

// Reference returns the underlying reference description.
func (tb *Testbed) Reference() *g5k.Reference { return tb.net.ref }
