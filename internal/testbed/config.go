// Package testbed emulates the *real* Grid'5000 network: it is the ground
// truth that Pilgrim's predictions are compared against, substituting for
// the physical testbed the paper measured with iperf (§V-A).
//
// Where the forecast model (package sim) is a deliberately coarse fluid
// approximation — hardcoded latencies, half-duplex access links, no slow
// start — the testbed simulates the mechanisms real transfers exhibit:
//
//   - full-duplex links everywhere (physical gigabit Ethernet);
//   - per-hop forwarding latencies derived from hardware classes, much
//     lower than the model's hardcoded 1e-4 s;
//   - TCP connection establishment (1.5 RTT) and slow start (CUBIC with
//     HyStart disabled on Linux 2.6.32: initial window 3 segments,
//     doubling per RTT until network-limited), which dominates small
//     transfers — the paper's main source of prediction error (§V-B);
//   - a maximum window of 4 MiB (the kernel tuning of §V-A);
//   - per-node application overhead (iperf process setup, termination
//     handshake, reporting), large on 2004-era Opterons and small on
//     2009/2010-era Xeons — this is what makes the sagittaire error
//     negative and the graphene error positive at small sizes;
//   - multiplicative measurement jitter.
//
// The divergences between this emulator and the fluid model reproduce the
// error structure of Figures 3-11; see DESIGN.md §2 and EXPERIMENTS.md.
package testbed

import "pilgrim/internal/stats"

// NodeClass captures the hardware-generation profile of a cluster's
// nodes.
type NodeClass struct {
	// HostLatency is the one-way NIC+stack latency contribution in
	// seconds.
	HostLatency float64
	// OverheadMean is the mean per-transfer application overhead in
	// seconds (process fork, TCP teardown, iperf reporting).
	OverheadMean float64
	// OverheadSigma is the lognormal sigma of the overhead.
	OverheadSigma float64
}

// Config parameterizes the emulation.
type Config struct {
	// Classes maps node-class names (g5k Cluster.NodeClass) to profiles.
	Classes map[string]NodeClass
	// DefaultClass applies to unknown class names.
	DefaultClass NodeClass
	// SwitchLatency is the one-way forwarding delay of an aggregation
	// switch, in seconds.
	SwitchLatency float64
	// RouterLatency is the one-way forwarding delay of a site router.
	RouterLatency float64
	// Efficiency is the payload fraction of nominal link rates
	// (Ethernet+IP+TCP header overhead: ~0.941 for 1500-byte MTU).
	Efficiency float64
	// MSS is the TCP maximum segment size in bytes.
	MSS float64
	// InitialWindow is the initial congestion window in segments
	// (3 on Linux 2.6.32).
	InitialWindow float64
	// MaxWindow is the maximum TCP window in bytes (4194304 per the
	// paper's sysctl tuning).
	MaxWindow float64
	// RTTFairness is the exponent a in share weight = RTT^-a. Loss-based
	// CUBIC is less RTT-unfair than the 1/RTT fluid model; 0.5 is a
	// reasonable middle ground.
	RTTFairness float64
	// BurstBytes is the transfer size below which a flow rides the
	// switch and NIC buffers at line rate without fluid sharing: a
	// 100 KB transfer fits entirely in 2012-era datacenter switch
	// buffers, so concurrent small flows do not rate-limit each other
	// the way sustained streams do.
	BurstBytes float64
	// RateJitterSigma is the lognormal sigma applied to the data phase
	// of each measured duration (link-level variability).
	RateJitterSigma float64
	// Seed seeds the run's random stream.
	Seed int64
}

// DefaultConfig returns the calibrated Grid'5000 emulation profile.
func DefaultConfig() Config {
	return Config{
		Classes: map[string]NodeClass{
			// 2004-era dual Opteron (sagittaire, capricorne, chuque):
			// slow interrupt path, expensive process management. The
			// tens-of-milliseconds overhead dominates small iperf runs.
			"opteron2004": {HostLatency: 60e-6, OverheadMean: 35e-3, OverheadSigma: 0.45},
			// 2006-era Opteron (chicon, chti).
			"opteron2006": {HostLatency: 45e-6, OverheadMean: 12e-3, OverheadSigma: 0.40},
			// 2009-era Xeon (griffon, chinqchint).
			"xeon2009": {HostLatency: 30e-6, OverheadMean: 0.8e-3, OverheadSigma: 0.35},
			// 2010-era Xeon (graphene): fast end hosts, sub-millisecond
			// overhead.
			"xeon2010": {HostLatency: 25e-6, OverheadMean: 0.4e-3, OverheadSigma: 0.35},
		},
		DefaultClass:    NodeClass{HostLatency: 40e-6, OverheadMean: 5e-3, OverheadSigma: 0.4},
		SwitchLatency:   5e-6,
		RouterLatency:   20e-6,
		Efficiency:      0.941,
		MSS:             1448,
		InitialWindow:   3,
		MaxWindow:       4194304,
		RTTFairness:     0.5,
		BurstBytes:      4e5,
		RateJitterSigma: 0.03,
		Seed:            1,
	}
}

// class returns the profile for a class name.
func (c Config) class(name string) NodeClass {
	if nc, ok := c.Classes[name]; ok {
		return nc
	}
	return c.DefaultClass
}

// overhead samples the application overhead for a node class.
func (c Config) overhead(nc NodeClass, rng *stats.RNG) float64 {
	return rng.Jitter(nc.OverheadMean, nc.OverheadSigma)
}
