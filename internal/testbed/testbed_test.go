package testbed

import (
	"math"
	"testing"

	"pilgrim/internal/g5k"
)

func newTB(t testing.TB, ref *g5k.Reference) *Testbed {
	t.Helper()
	tb, err := New(ref, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

// quiet returns a config without stochastic noise, for closed-form checks.
func quiet() Config {
	cfg := DefaultConfig()
	cfg.RateJitterSigma = 0
	for k, c := range cfg.Classes {
		c.OverheadSigma = 0
		cfg.Classes[k] = c
	}
	return cfg
}

func TestNodesEnumerated(t *testing.T) {
	tb := newTB(t, g5k.Default())
	if got := len(tb.Nodes()); got != g5k.Default().NumNodes() {
		t.Errorf("nodes = %d", got)
	}
	sag := tb.NodesOfCluster("lyon", "sagittaire")
	if len(sag) != 79 {
		t.Errorf("sagittaire = %d", len(sag))
	}
	if sag[0] != "sagittaire-1.lyon.grid5000.fr" {
		t.Errorf("first = %s", sag[0])
	}
}

func TestRTTProfiles(t *testing.T) {
	tb := newTB(t, g5k.Default())
	// Intra-sagittaire (flat, old Opterons): ~2*(60+20+60) us = 280 us.
	rtt, err := tb.RTT("sagittaire-1.lyon.grid5000.fr", "sagittaire-2.lyon.grid5000.fr")
	if err != nil {
		t.Fatal(err)
	}
	if rtt < 200e-6 || rtt > 400e-6 {
		t.Errorf("sagittaire RTT = %v, want ~280us", rtt)
	}
	// Intra-graphene same group (fast Xeons, cut-through switch): well
	// below sagittaire.
	rtt2, err := tb.RTT("graphene-1.nancy.grid5000.fr", "graphene-2.nancy.grid5000.fr")
	if err != nil {
		t.Fatal(err)
	}
	if rtt2 >= rtt {
		t.Errorf("graphene RTT %v should be below sagittaire %v", rtt2, rtt)
	}
	// Cross-group adds two switch stages and the router.
	rtt3, err := tb.RTT("graphene-1.nancy.grid5000.fr", "graphene-144.nancy.grid5000.fr")
	if err != nil {
		t.Fatal(err)
	}
	if rtt3 <= rtt2 {
		t.Errorf("cross-group RTT %v should exceed same-group %v", rtt3, rtt2)
	}
	// Cross-site is millisecond-scale (backbone).
	rtt4, err := tb.RTT("sagittaire-1.lyon.grid5000.fr", "graphene-1.nancy.grid5000.fr")
	if err != nil {
		t.Fatal(err)
	}
	if rtt4 < 7e-3 || rtt4 > 11e-3 {
		t.Errorf("cross-site RTT = %v, want ~8.5ms", rtt4)
	}
}

func TestUnknownNodesRejected(t *testing.T) {
	tb := newTB(t, g5k.Mini())
	if _, err := tb.RTT("ghost.lyon.grid5000.fr", "sagittaire-1.lyon.grid5000.fr"); err == nil {
		t.Error("unknown src accepted")
	}
	if _, err := tb.RunTransfers([]Transfer{{Src: "sagittaire-1.lyon.grid5000.fr", Dst: "sagittaire-1.lyon.grid5000.fr", Size: 1}}); err == nil {
		t.Error("self transfer accepted")
	}
	if _, err := tb.RunTransfers([]Transfer{{Src: "sagittaire-1.lyon.grid5000.fr", Dst: "sagittaire-2.lyon.grid5000.fr", Size: -1}}); err == nil {
		t.Error("negative size accepted")
	}
}

func TestLargeTransferNearLineRate(t *testing.T) {
	tb, err := New(g5k.Default(), quiet())
	if err != nil {
		t.Fatal(err)
	}
	ms, err := tb.RunTransfers([]Transfer{{
		Src: "graphene-1.nancy.grid5000.fr", Dst: "graphene-2.nancy.grid5000.fr", Size: 1e9,
	}})
	if err != nil {
		t.Fatal(err)
	}
	rate := 1e9 / ms[0].Duration
	// Payload line rate = 0.941 * 125e6 = 117.6 MB/s; slow start on a
	// 100us-RTT LAN costs almost nothing at this size.
	if rate < 110e6 || rate > 118e6 {
		t.Errorf("solo gigabit rate = %.3g B/s, want ~117e6", rate)
	}
}

func TestSmallTransferDominatedByOverhead(t *testing.T) {
	tb, err := New(g5k.Default(), quiet())
	if err != nil {
		t.Fatal(err)
	}
	// sagittaire (opteron2004, 25ms overhead): 0.1 MB must take ~25-30ms.
	ms, err := tb.RunTransfers([]Transfer{{
		Src: "sagittaire-1.lyon.grid5000.fr", Dst: "sagittaire-2.lyon.grid5000.fr", Size: 1e5,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if ms[0].Duration < 20e-3 || ms[0].Duration > 40e-3 {
		t.Errorf("sagittaire 0.1MB = %v, want ~25-30ms", ms[0].Duration)
	}
	// graphene (xeon2010, 0.4ms overhead): the same transfer is ~1ms.
	ms2, err := tb.RunTransfers([]Transfer{{
		Src: "graphene-1.nancy.grid5000.fr", Dst: "graphene-2.nancy.grid5000.fr", Size: 1e5,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if ms2[0].Duration > 3e-3 {
		t.Errorf("graphene 0.1MB = %v, want ~1ms", ms2[0].Duration)
	}
	if ms2[0].Duration >= ms[0].Duration {
		t.Error("graphene should be much faster than sagittaire on small transfers")
	}
}

func TestSlowStartVisibleAtMidSizes(t *testing.T) {
	// Effective rate must grow with size (slow start amortization).
	tb, err := New(g5k.Default(), quiet())
	if err != nil {
		t.Fatal(err)
	}
	rateOf := func(size float64) float64 {
		ms, err := tb.RunTransfers([]Transfer{{
			Src: "graphene-1.nancy.grid5000.fr", Dst: "graphene-2.nancy.grid5000.fr", Size: size,
		}})
		if err != nil {
			t.Fatal(err)
		}
		return size / ms[0].Duration
	}
	r1 := rateOf(1e5)
	r2 := rateOf(1e7)
	r3 := rateOf(1e9)
	if !(r1 < r2 && r2 < r3) {
		t.Errorf("rates not increasing with size: %.3g %.3g %.3g", r1, r2, r3)
	}
}

func TestConcurrentSharingOnNIC(t *testing.T) {
	// 4 flows out of one node share its gigabit NIC.
	tb, err := New(g5k.Default(), quiet())
	if err != nil {
		t.Fatal(err)
	}
	var ts []Transfer
	for i := 2; i <= 5; i++ {
		ts = append(ts, Transfer{
			Src:  "graphene-1.nancy.grid5000.fr",
			Dst:  "graphene-" + itoa(i) + ".nancy.grid5000.fr",
			Size: 5e8,
		})
	}
	ms, err := tb.RunTransfers(ts)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		rate := m.Size / m.Duration
		want := 0.941 * 125e6 / 4
		if math.Abs(rate-want)/want > 0.1 {
			t.Errorf("shared rate = %.3g, want ~%.3g", rate, want)
		}
	}
}

func TestFullDuplexUplinksDoNotContend(t *testing.T) {
	// The physical network is full duplex: many flows crossing graphene
	// groups in both directions must all get NIC line rate while the
	// 10G uplinks carry under 10 flows per direction.
	tb, err := New(g5k.Default(), quiet())
	if err != nil {
		t.Fatal(err)
	}
	var ts []Transfer
	// 8 flows group1 -> group2, 8 flows group2 -> group1.
	for i := 0; i < 8; i++ {
		ts = append(ts, Transfer{
			Src:  "graphene-" + itoa(1+i) + ".nancy.grid5000.fr",
			Dst:  "graphene-" + itoa(40+i) + ".nancy.grid5000.fr",
			Size: 5e8,
		})
		ts = append(ts, Transfer{
			Src:  "graphene-" + itoa(50+i) + ".nancy.grid5000.fr",
			Dst:  "graphene-" + itoa(10+i) + ".nancy.grid5000.fr",
			Size: 5e8,
		})
	}
	ms, err := tb.RunTransfers(ts)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		rate := m.Size / m.Duration
		if rate < 0.9*117e6 {
			t.Errorf("full-duplex uplink flow rate = %.3g, want ~117e6", rate)
		}
	}
}

func TestUplinkSaturationWhenOversubscribed(t *testing.T) {
	// 16 one-way flows through a single 10G uplink direction: ~every
	// flow drops to ~1.15 GB/s / 16.
	tb, err := New(g5k.Default(), quiet())
	if err != nil {
		t.Fatal(err)
	}
	var ts []Transfer
	for i := 0; i < 16; i++ {
		ts = append(ts, Transfer{
			Src:  "graphene-" + itoa(1+i) + ".nancy.grid5000.fr", // all in group 1
			Dst:  "graphene-" + itoa(40+i) + ".nancy.grid5000.fr",
			Size: 5e8,
		})
	}
	ms, err := tb.RunTransfers(ts)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.941 * 1.25e9 / 16
	for _, m := range ms {
		rate := m.Size / m.Duration
		if math.Abs(rate-want)/want > 0.15 {
			t.Errorf("oversubscribed uplink rate = %.3g, want ~%.3g", rate, want)
		}
	}
}

func TestCrossSiteTransfer(t *testing.T) {
	tb, err := New(g5k.Default(), quiet())
	if err != nil {
		t.Fatal(err)
	}
	ms, err := tb.RunTransfers([]Transfer{{
		Src: "sagittaire-1.lyon.grid5000.fr", Dst: "graphene-1.nancy.grid5000.fr", Size: 1e9,
	}})
	if err != nil {
		t.Fatal(err)
	}
	rate := 1e9 / ms[0].Duration
	// Single cross-site flow: NIC-bound (the 4MB window over ~8.5ms RTT
	// allows ~490 MB/s, far above the gigabit NIC).
	if rate < 100e6 || rate > 118e6 {
		t.Errorf("cross-site rate = %.3g B/s, want ~115e6", rate)
	}
	if ms[0].SetupTime < 10e-3 {
		t.Errorf("setup = %v, want >= 1.5 cross-site RTTs", ms[0].SetupTime)
	}
}

func TestDeterminismAcrossReseeds(t *testing.T) {
	tb := newTB(t, g5k.Mini())
	ts := []Transfer{
		{Src: "sagittaire-1.lyon.grid5000.fr", Dst: "sagittaire-2.lyon.grid5000.fr", Size: 1e7},
		{Src: "graphene-1.nancy.grid5000.fr", Dst: "graphene-5.nancy.grid5000.fr", Size: 1e7},
	}
	tb.Reseed(42)
	a, err := tb.RunTransfers(ts)
	if err != nil {
		t.Fatal(err)
	}
	tb.Reseed(42)
	b, err := tb.RunTransfers(ts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Duration != b[i].Duration {
			t.Errorf("nondeterministic: %v vs %v", a[i].Duration, b[i].Duration)
		}
	}
	tb.Reseed(43)
	c, err := tb.RunTransfers(ts)
	if err != nil {
		t.Fatal(err)
	}
	if c[0].Duration == a[0].Duration && c[1].Duration == a[1].Duration {
		t.Error("different seed produced identical noise")
	}
}

func TestJitterOnlyAffectsNoise(t *testing.T) {
	// DataTime must be deterministic regardless of seed (noise applies
	// to the reported Duration only).
	tb := newTB(t, g5k.Mini())
	ts := []Transfer{{Src: "sagittaire-1.lyon.grid5000.fr", Dst: "sagittaire-2.lyon.grid5000.fr", Size: 1e8}}
	tb.Reseed(1)
	a, _ := tb.RunTransfers(ts)
	tb.Reseed(99)
	b, _ := tb.RunTransfers(ts)
	if a[0].DataTime != b[0].DataTime {
		t.Errorf("DataTime depends on seed: %v vs %v", a[0].DataTime, b[0].DataTime)
	}
	if a[0].Duration == b[0].Duration {
		t.Error("Duration should carry seed-dependent noise")
	}
}

func itoa(i int) string {
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}

func BenchmarkRun30Transfers(b *testing.B) {
	tb, err := New(g5k.Default(), DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	var ts []Transfer
	for i := 0; i < 30; i++ {
		ts = append(ts, Transfer{
			Src:  "graphene-" + itoa(1+i) + ".nancy.grid5000.fr",
			Dst:  "sagittaire-" + itoa(1+i) + ".lyon.grid5000.fr",
			Size: 1e8,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Reseed(int64(i))
		if _, err := tb.RunTransfers(ts); err != nil {
			b.Fatal(err)
		}
	}
}
