package testbed

import (
	"fmt"
	"sort"
	"strings"

	"pilgrim/internal/g5k"
)

// resource is one directed capacity-limited element of the real network:
// a NIC transmit or receive side, an uplink direction, or a backbone
// segment direction. Real Ethernet is full duplex, so every physical link
// contributes two independent resources.
type resource struct {
	id       string
	capacity float64 // payload bytes/s (nominal × efficiency)
}

// hop is one traversal of a resource with its one-way latency
// contribution.
type hop struct {
	res *resource
	lat float64
}

// network is the resolved physical topology: per-node attachment, per-
// equipment forwarding latency, and path computation between nodes.
// It is not safe for concurrent use (the owning Testbed serializes).
type network struct {
	cfg Config
	ref *g5k.Reference

	resources map[string]*resource

	// per-node info
	nodes map[string]*nodeInfo // key: FQDN

	// paths memoizes resolved node-pair paths, keyed by the packed dense
	// node indices (one int64 hash per lookup instead of a two-string
	// composite); campaigns re-run the same pairs across repetitions and
	// sizes. Cached slices are shared and must not be mutated by callers.
	paths map[uint64][]hop
}

type nodeInfo struct {
	fqdn    string
	idx     int32 // dense node index, assigned in reference order
	site    string
	cluster string
	class   NodeClass
	sw      string // equipment uid
	gw      string // site gateway uid
	nicTx   *resource
	nicRx   *resource
	upTx    *resource // towards gateway, nil if plugged into it
	upRx    *resource
	upLat   float64 // one-way latency of the switch stage (0 if none)
}

// newNetwork indexes the reference into a physical network.
func newNetwork(ref *g5k.Reference, cfg Config) (*network, error) {
	if err := ref.Validate(); err != nil {
		return nil, fmt.Errorf("testbed: invalid reference: %w", err)
	}
	n := &network{
		cfg:       cfg,
		ref:       ref,
		resources: make(map[string]*resource),
		nodes:     make(map[string]*nodeInfo),
	}
	for _, siteID := range ref.SiteIDs() {
		site := ref.Sites[siteID]
		// Uplink resources per aggregation switch.
		for _, eqID := range sortedEqIDs(site) {
			eq := site.Equipment[eqID]
			for _, up := range eq.Uplinks {
				if up.To != site.Gateway {
					continue
				}
				n.getResource("up:"+siteID+":"+eqID+":tx", up.RateBps/8*cfg.Efficiency)
				n.getResource("up:"+siteID+":"+eqID+":rx", up.RateBps/8*cfg.Efficiency)
			}
		}
		for _, cid := range site.ClusterIDs() {
			cluster := site.Clusters[cid]
			class := cfg.class(cluster.NodeClass)
			for _, nid := range cluster.NodeIDs() {
				node := cluster.Nodes[nid]
				itf := node.Interfaces[0]
				fqdn := g5k.FQDN(nid, siteID)
				info := &nodeInfo{
					fqdn:    fqdn,
					idx:     int32(len(n.nodes)),
					site:    siteID,
					cluster: cid,
					class:   class,
					sw:      itf.Switch,
					gw:      site.Gateway,
				}
				cap := itf.RateBps / 8 * cfg.Efficiency
				info.nicTx = n.getResource("nic:"+fqdn+":tx", cap)
				info.nicRx = n.getResource("nic:"+fqdn+":rx", cap)
				if itf.Switch != site.Gateway {
					info.upTx = n.resources["up:"+siteID+":"+itf.Switch+":tx"]
					info.upRx = n.resources["up:"+siteID+":"+itf.Switch+":rx"]
					if info.upTx == nil {
						return nil, fmt.Errorf("testbed: node %s behind %s with no uplink to gateway", fqdn, itf.Switch)
					}
					info.upLat = cfg.SwitchLatency
				}
				n.nodes[fqdn] = info
			}
		}
	}
	// Backbone resources.
	for _, b := range ref.Backbone {
		n.getResource("bb:"+b.ID+":fwd", b.RateBps/8*cfg.Efficiency)
		n.getResource("bb:"+b.ID+":rev", b.RateBps/8*cfg.Efficiency)
	}
	return n, nil
}

func sortedEqIDs(s *g5k.Site) []string {
	out := make([]string, 0, len(s.Equipment))
	for id := range s.Equipment {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

func (n *network) getResource(id string, capacity float64) *resource {
	if r, ok := n.resources[id]; ok {
		return r
	}
	r := &resource{id: id, capacity: capacity}
	n.resources[id] = r
	return r
}

// path computes the physical hop sequence and one-way latency between two
// nodes. The real path mirrors the structural route of the platform model
// but with full-duplex resources and hardware latencies.
func (n *network) path(src, dst string) ([]hop, error) {
	a, ok := n.nodes[src]
	if !ok {
		return nil, fmt.Errorf("testbed: unknown node %q", src)
	}
	b, ok := n.nodes[dst]
	if !ok {
		return nil, fmt.Errorf("testbed: unknown node %q", dst)
	}
	key := uint64(uint32(a.idx))<<32 | uint64(uint32(b.idx))
	if hops, ok := n.paths[key]; ok {
		return hops, nil
	}
	hops, err := n.resolvePath(a, b)
	if err != nil {
		return nil, err
	}
	if n.paths == nil {
		n.paths = make(map[uint64][]hop)
	}
	n.paths[key] = hops
	return hops, nil
}

func (n *network) resolvePath(a, b *nodeInfo) ([]hop, error) {
	if a == b {
		return nil, fmt.Errorf("testbed: transfer from %q to itself", a.fqdn)
	}

	var hops []hop
	// Sender NIC.
	hops = append(hops, hop{res: a.nicTx, lat: a.class.HostLatency})

	if a.site == b.site {
		if a.sw == b.sw {
			// Same switch: one forwarding stage.
			lat := n.cfg.SwitchLatency
			if a.sw == a.gw {
				lat = n.cfg.RouterLatency
			}
			hops = append(hops, hop{res: b.nicRx, lat: lat + b.class.HostLatency})
			return hops, nil
		}
		// Through the site router, possibly via aggregation uplinks.
		if a.upTx != nil {
			hops = append(hops, hop{res: a.upTx, lat: a.upLat})
		}
		if b.upRx != nil {
			hops = append(hops, hop{res: b.upRx, lat: n.cfg.RouterLatency})
			hops = append(hops, hop{res: b.nicRx, lat: b.upLat + b.class.HostLatency})
		} else {
			hops = append(hops, hop{res: b.nicRx, lat: n.cfg.RouterLatency + b.class.HostLatency})
		}
		return hops, nil
	}

	// Cross-site: out through a's site, across the backbone, into b's.
	if a.upTx != nil {
		hops = append(hops, hop{res: a.upTx, lat: a.upLat})
	}
	bbHops, err := n.backbonePath(a.gw, b.gw)
	if err != nil {
		return nil, err
	}
	first := true
	for _, bh := range bbHops {
		lat := bh.lat
		if first {
			lat += n.cfg.RouterLatency // egress through a's site router
			first = false
		}
		hops = append(hops, hop{res: bh.res, lat: lat})
	}
	if b.upRx != nil {
		hops = append(hops, hop{res: b.upRx, lat: n.cfg.RouterLatency})
		hops = append(hops, hop{res: b.nicRx, lat: b.upLat + b.class.HostLatency})
	} else {
		hops = append(hops, hop{res: b.nicRx, lat: n.cfg.RouterLatency + b.class.HostLatency})
	}
	return hops, nil
}

// backbonePath finds the segment path between two gateways (BFS over the
// tiny backbone graph) with real measured latencies.
func (n *network) backbonePath(from, to string) ([]hop, error) {
	type edge struct {
		to  string
		hop hop
	}
	adj := make(map[string][]edge)
	for _, b := range n.ref.Backbone {
		fwd := n.resources["bb:"+b.ID+":fwd"]
		rev := n.resources["bb:"+b.ID+":rev"]
		adj[b.From] = append(adj[b.From], edge{to: b.To, hop: hop{res: fwd, lat: b.LatencyS}})
		adj[b.To] = append(adj[b.To], edge{to: b.From, hop: hop{res: rev, lat: b.LatencyS}})
	}
	type state struct {
		node string
		path []hop
	}
	visited := map[string]bool{from: true}
	queue := []state{{node: from}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.node == to {
			return cur.path, nil
		}
		for _, e := range adj[cur.node] {
			if visited[e.to] {
				continue
			}
			visited[e.to] = true
			next := make([]hop, len(cur.path), len(cur.path)+1)
			copy(next, cur.path)
			next = append(next, e.hop)
			queue = append(queue, state{node: e.to, path: next})
		}
	}
	return nil, fmt.Errorf("testbed: no backbone path %s -> %s", from, to)
}

// pathLatency sums the one-way latency of a hop sequence.
func pathLatency(hops []hop) float64 {
	total := 0.0
	for _, h := range hops {
		total += h.lat
	}
	return total
}

// nodeInfoOf exposes node lookup for the Testbed façade.
func (n *network) nodeInfoOf(fqdn string) (*nodeInfo, error) {
	info, ok := n.nodes[fqdn]
	if !ok {
		// Help users who pass short uids.
		if !strings.Contains(fqdn, ".") {
			return nil, fmt.Errorf("testbed: unknown node %q (use fully qualified names, e.g. %q)",
				fqdn, fqdn+".<site>.grid5000.fr")
		}
		return nil, fmt.Errorf("testbed: unknown node %q", fqdn)
	}
	return info, nil
}
