// Package plot renders the paper's figure style as text: per-transfer-size
// error box plots (median, quartiles, whiskers) with the median measured
// duration overlaid on a logarithmic right axis — the layout of Figures
// 3-11 — plus CSV output for external plotting.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"

	"pilgrim/internal/stats"
)

// Figure is the data of one paper-style figure.
type Figure struct {
	Title string
	// Sizes are the transfer sizes (bytes), one column per entry.
	Sizes []float64
	// Boxes hold the log2-error distribution summary per size.
	Boxes []stats.BoxSummary
	// Durations hold the median measured duration (seconds) per size.
	Durations []float64
}

// Validate checks structural consistency.
func (f *Figure) Validate() error {
	if len(f.Sizes) == 0 {
		return fmt.Errorf("plot: figure %q has no columns", f.Title)
	}
	if len(f.Boxes) != len(f.Sizes) || len(f.Durations) != len(f.Sizes) {
		return fmt.Errorf("plot: figure %q has inconsistent columns", f.Title)
	}
	return nil
}

// WriteCSV emits one row per size with the box summary and duration.
func (f *Figure) WriteCSV(w io.Writer) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "size_bytes,err_median,err_q1,err_q3,err_whisker_lo,err_whisker_hi,n,duration_median_s"); err != nil {
		return err
	}
	for i, size := range f.Sizes {
		b := f.Boxes[i]
		if _, err := fmt.Fprintf(w, "%.3e,%.4f,%.4f,%.4f,%.4f,%.4f,%d,%.6g\n",
			size, b.Median, b.Q1, b.Q3, b.WhiskLo, b.WhiskHi, b.N, f.Durations[i]); err != nil {
			return err
		}
	}
	return nil
}

// RenderASCII draws the figure as a text chart of the given height (rows
// of the error axis; 8 minimum). Each size column shows the error box
// ('#' between quartiles, '|' whiskers, 'M' median) and the duration line
// ('d', right log axis).
func (f *Figure) RenderASCII(height int) string {
	if err := f.Validate(); err != nil {
		return err.Error() + "\n"
	}
	if height < 8 {
		height = 8
	}

	// Error axis bounds, padded.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, b := range f.Boxes {
		lo = math.Min(lo, b.WhiskLo)
		hi = math.Max(hi, b.WhiskHi)
	}
	lo = math.Min(lo, 0) // always show the zero-error line
	hi = math.Max(hi, 0)
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	lo -= span * 0.05
	hi += span * 0.05
	span = hi - lo

	// Duration axis: log10 over observed range.
	dlo, dhi := math.Inf(1), math.Inf(-1)
	for _, d := range f.Durations {
		if d > 0 {
			dlo = math.Min(dlo, math.Log10(d))
			dhi = math.Max(dhi, math.Log10(d))
		}
	}
	if math.IsInf(dlo, 1) {
		dlo, dhi = 0, 1
	}
	if dhi-dlo < 1e-9 {
		dhi = dlo + 1
	}

	rowOf := func(v float64) int {
		r := int(math.Round((hi - v) / span * float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	durRowOf := func(d float64) int {
		if d <= 0 {
			return height - 1
		}
		frac := (dhi - math.Log10(d)) / (dhi - dlo)
		r := int(math.Round(frac * float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}

	const colW = 7
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", colW*len(f.Sizes)))
	}
	// Zero-error line.
	zr := rowOf(0)
	for x := 0; x < colW*len(f.Sizes); x++ {
		grid[zr][x] = '.'
	}

	for i := range f.Sizes {
		b := f.Boxes[i]
		center := i*colW + colW/2
		// Whiskers.
		for r := rowOf(b.WhiskHi); r <= rowOf(b.Q3); r++ {
			grid[r][center] = '|'
		}
		for r := rowOf(b.Q1); r <= rowOf(b.WhiskLo); r++ {
			grid[r][center] = '|'
		}
		// Box body.
		for r := rowOf(b.Q3); r <= rowOf(b.Q1); r++ {
			for dx := -1; dx <= 1; dx++ {
				grid[r][center+dx] = '#'
			}
		}
		// Median mark.
		mr := rowOf(b.Median)
		for dx := -1; dx <= 1; dx++ {
			grid[mr][center+dx] = 'M'
		}
		// Duration point (right axis, log scale).
		dr := durRowOf(f.Durations[i])
		x := center + 2
		if grid[dr][x] == ' ' || grid[dr][x] == '.' {
			grid[dr][x] = 'd'
		}
	}

	var out strings.Builder
	fmt.Fprintf(&out, "%s\n", f.Title)
	fmt.Fprintf(&out, "error log2(prediction)-log2(measure) [left], median duration 'd' [right, log10 %.2g..%.2g s]\n",
		math.Pow(10, dlo), math.Pow(10, dhi))
	for r := 0; r < height; r++ {
		v := hi - float64(r)/float64(height-1)*span
		fmt.Fprintf(&out, "%7.2f %s\n", v, string(grid[r]))
	}
	// X axis labels: one tick per size column.
	out.WriteString("        ")
	for _, s := range f.Sizes {
		out.WriteString(fmt.Sprintf("%-*s", colW, fmt.Sprintf("%.2g", s)))
	}
	out.WriteString("\n        transfer size (bytes)\n")
	return out.String()
}

// Table renders aligned rows of (label, value) pairs — used by the
// summary-statistics outputs.
func Table(title string, rows [][2]string) string {
	var out strings.Builder
	out.WriteString(title + "\n")
	width := 0
	for _, r := range rows {
		if len(r[0]) > width {
			width = len(r[0])
		}
	}
	for _, r := range rows {
		fmt.Fprintf(&out, "  %-*s  %s\n", width, r[0], r[1])
	}
	return out.String()
}
