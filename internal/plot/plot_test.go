package plot

import (
	"strings"
	"testing"

	"pilgrim/internal/stats"
)

func sampleFigure() Figure {
	return Figure{
		Title: "test / topology CLUSTER / 1 source / 10 destinations",
		Sizes: []float64{1e5, 1e7, 1e9},
		Boxes: []stats.BoxSummary{
			stats.Box([]float64{-3.2, -2.8, -3.0, -4.1, -2.2}),
			stats.Box([]float64{-0.6, -0.4, -0.5, -0.9, -0.2}),
			stats.Box([]float64{0.05, -0.1, 0.0, 0.12, -0.02}),
		},
		Durations: []float64{0.03, 0.4, 9.2},
	}
}

func TestValidate(t *testing.T) {
	f := sampleFigure()
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := f
	bad.Durations = bad.Durations[:2]
	if err := bad.Validate(); err == nil {
		t.Error("inconsistent columns accepted")
	}
	empty := Figure{Title: "empty"}
	if err := empty.Validate(); err == nil {
		t.Error("empty figure accepted")
	}
}

func TestWriteCSV(t *testing.T) {
	f := sampleFigure()
	var b strings.Builder
	if err := f.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want header + 3", len(lines))
	}
	if !strings.HasPrefix(lines[0], "size_bytes,err_median") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1.000e+05,") {
		t.Errorf("row = %q", lines[1])
	}
	// Each row has 8 fields.
	for _, line := range lines[1:] {
		if got := len(strings.Split(line, ",")); got != 8 {
			t.Errorf("row %q has %d fields", line, got)
		}
	}
}

func TestRenderASCII(t *testing.T) {
	f := sampleFigure()
	out := f.RenderASCII(14)
	if !strings.Contains(out, f.Title) {
		t.Error("missing title")
	}
	if !strings.Contains(out, "transfer size (bytes)") {
		t.Error("missing x label")
	}
	// Box glyphs present.
	for _, glyph := range []string{"#", "M", "d", "|"} {
		if !strings.Contains(out, glyph) {
			t.Errorf("missing glyph %q in:\n%s", glyph, out)
		}
	}
	// The zero line must be drawn.
	if !strings.Contains(out, ".") {
		t.Error("missing zero-error line")
	}
	// Roughly the requested height plus headers/footers.
	lines := strings.Count(out, "\n")
	if lines < 14 || lines > 20 {
		t.Errorf("rendered %d lines", lines)
	}
}

func TestRenderASCIIDegenerate(t *testing.T) {
	// All-equal errors and a single column must not panic.
	f := Figure{
		Title:     "degenerate",
		Sizes:     []float64{1e6},
		Boxes:     []stats.BoxSummary{stats.Box([]float64{0, 0, 0})},
		Durations: []float64{1},
	}
	out := f.RenderASCII(4) // below minimum; must clamp
	if !strings.Contains(out, "degenerate") {
		t.Errorf("render failed:\n%s", out)
	}
	// Invalid figure renders its error rather than panicking.
	bad := Figure{Title: "bad"}
	if out := bad.RenderASCII(10); !strings.Contains(out, "no columns") {
		t.Errorf("bad render = %q", out)
	}
}

func TestTable(t *testing.T) {
	out := Table("Stats:", [][2]string{
		{"median", "0.149"},
		{"long-label-here", "0.532"},
	})
	if !strings.Contains(out, "Stats:") || !strings.Contains(out, "median") {
		t.Errorf("table = %q", out)
	}
	// Alignment: both value columns start at the same offset.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if strings.Index(lines[1], "0.149") != strings.Index(lines[2], "0.532") {
		t.Error("columns misaligned")
	}
}
