// Package rrd implements a round-robin database for time series, the
// storage format of the sysadmin metrology tools (Ganglia, Munin, Cacti,
// Smokeping) that Pilgrim's metrology service fronts (paper §III-A,
// §IV-C1).
//
// An RRD stores one or more data sources (DS) at a fixed primary step.
// Incoming updates are rate-normalized into primary data points (PDPs);
// each round-robin archive (RRA) consolidates a fixed number of PDPs per
// row with a consolidation function (AVERAGE, MIN, MAX, LAST) into a ring
// of fixed size. Old data is thus kept at progressively coarser
// resolutions in bounded space — and the chore Pilgrim's RRD web service
// hides is exactly the one Fetch/FetchBest solve: picking, for a given
// time window, the most accurate archive(s) available (§IV-C1: "the
// service will answer with all metric values between these bounds,
// automatically gathering the most accurate data from the different
// round-robin archives").
package rrd

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// CF is a consolidation function.
type CF int

// Consolidation functions, rrdtool-compatible.
const (
	Average CF = iota
	Min
	Max
	Last
)

// String returns the rrdtool spelling.
func (c CF) String() string {
	switch c {
	case Average:
		return "AVERAGE"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case Last:
		return "LAST"
	default:
		return fmt.Sprintf("CF(%d)", int(c))
	}
}

// ParseCF converts the rrdtool spelling back to a CF.
func ParseCF(s string) (CF, error) {
	switch s {
	case "AVERAGE", "":
		return Average, nil
	case "MIN":
		return Min, nil
	case "MAX":
		return Max, nil
	case "LAST":
		return Last, nil
	default:
		return Average, fmt.Errorf("rrd: unknown consolidation function %q", s)
	}
}

// DSKind is the data-source kind.
type DSKind int

// Data source kinds: Gauge stores instantaneous values; Counter stores a
// monotonically increasing count and records its rate of change.
const (
	Gauge DSKind = iota
	Counter
)

// DS declares one data source.
type DS struct {
	Name string
	Kind DSKind
	// Heartbeat is the maximum silence in seconds before the source is
	// considered unknown for the uncovered span.
	Heartbeat int64
}

// RRA declares one archive: Rows rows, each consolidating PdpPerRow
// primary data points with CF.
type RRA struct {
	CF        CF
	PdpPerRow int
	Rows      int
}

// resolution returns the archive's seconds-per-row for a given step.
func (a RRA) resolution(step int64) int64 { return step * int64(a.PdpPerRow) }

// rraState is the live ring of one archive.
type rraState struct {
	def RRA
	// ring[i*nDS+d] is row i's value for DS d; NaN = unknown.
	ring []float64
	// head is the index of the next row to write.
	head int
	// written counts total rows ever written (to bound valid history).
	written int64
	// accum holds the in-progress consolidation per DS.
	accum []float64
	// accumKnown counts, per DS, how many known PDPs entered accum.
	accumKnown []int
	// accumN counts PDPs consolidated into accum so far.
	accumN int
}

// RRD is an in-memory round-robin database; see Save/Load for the on-disk
// form.
type RRD struct {
	step int64
	dss  []DS
	rras []*rraState

	// lastUpdate is the timestamp of the last update (0 = none yet).
	lastUpdate int64
	// lastValues holds the previous raw values (for Counter rates).
	lastValues []float64
	// pdpSum/pdpCover accumulate the current step bucket per DS.
	pdpSum   []float64
	pdpCover []float64
	// pdpStart is the start of the current step bucket.
	pdpStart int64
}

// Create builds an empty RRD with the given primary step (seconds), data
// sources and archives.
func Create(step int64, dss []DS, rras []RRA) (*RRD, error) {
	if step <= 0 {
		return nil, errors.New("rrd: step must be positive")
	}
	if len(dss) == 0 {
		return nil, errors.New("rrd: at least one data source required")
	}
	seen := map[string]bool{}
	for _, ds := range dss {
		if ds.Name == "" {
			return nil, errors.New("rrd: empty DS name")
		}
		if seen[ds.Name] {
			return nil, fmt.Errorf("rrd: duplicate DS %q", ds.Name)
		}
		seen[ds.Name] = true
		if ds.Heartbeat <= 0 {
			return nil, fmt.Errorf("rrd: DS %q needs a positive heartbeat", ds.Name)
		}
	}
	if len(rras) == 0 {
		return nil, errors.New("rrd: at least one archive required")
	}
	r := &RRD{
		step:       step,
		dss:        append([]DS(nil), dss...),
		lastValues: make([]float64, len(dss)),
		pdpSum:     make([]float64, len(dss)),
		pdpCover:   make([]float64, len(dss)),
	}
	for _, def := range rras {
		if def.PdpPerRow <= 0 || def.Rows <= 0 {
			return nil, fmt.Errorf("rrd: invalid RRA %+v", def)
		}
		st := &rraState{
			def:        def,
			ring:       make([]float64, def.Rows*len(dss)),
			accum:      make([]float64, len(dss)),
			accumKnown: make([]int, len(dss)),
		}
		for i := range st.ring {
			st.ring[i] = math.NaN()
		}
		resetAccum(st, def.CF, len(dss))
		r.rras = append(r.rras, st)
	}
	return r, nil
}

func resetAccum(st *rraState, cf CF, nDS int) {
	st.accumN = 0
	for d := 0; d < nDS; d++ {
		st.accumKnown[d] = 0
		switch cf {
		case Min:
			st.accum[d] = math.Inf(1)
		case Max:
			st.accum[d] = math.Inf(-1)
		default:
			st.accum[d] = 0
		}
	}
}

// Step returns the primary step in seconds.
func (r *RRD) Step() int64 { return r.step }

// DataSources returns the declared data sources.
func (r *RRD) DataSources() []DS { return r.dss }

// Archives returns the declared archive definitions.
func (r *RRD) Archives() []RRA {
	out := make([]RRA, len(r.rras))
	for i, st := range r.rras {
		out[i] = st.def
	}
	return out
}

// LastUpdate returns the timestamp of the most recent update (0 if none).
func (r *RRD) LastUpdate() int64 { return r.lastUpdate }

// Update records values (one per DS) observed at timestamp ts (Unix
// seconds). Timestamps must be strictly increasing. Use math.NaN for an
// unknown sample.
func (r *RRD) Update(ts int64, values []float64) error {
	if len(values) != len(r.dss) {
		return fmt.Errorf("rrd: got %d values for %d data sources", len(values), len(r.dss))
	}
	if ts <= r.lastUpdate {
		return fmt.Errorf("rrd: timestamp %d not after last update %d", ts, r.lastUpdate)
	}
	if r.lastUpdate == 0 {
		// First update primes the state; rates need a previous sample.
		r.lastUpdate = ts
		copy(r.lastValues, values)
		r.pdpStart = ts - ts%r.step
		return nil
	}

	// Per-DS rate/value over the elapsed interval.
	elapsed := float64(ts - r.lastUpdate)
	rates := make([]float64, len(r.dss))
	for d, ds := range r.dss {
		v := values[d]
		gap := ts - r.lastUpdate
		switch {
		case math.IsNaN(v) || gap > ds.Heartbeat:
			rates[d] = math.NaN()
		case ds.Kind == Counter:
			delta := v - r.lastValues[d]
			if delta < 0 {
				// Counter reset: treat the interval as unknown.
				rates[d] = math.NaN()
			} else {
				rates[d] = delta / elapsed
			}
		default: // Gauge
			rates[d] = v
		}
		if !math.IsNaN(v) {
			r.lastValues[d] = v
		}
	}

	// Distribute the interval [lastUpdate, ts] over step buckets.
	cur := r.lastUpdate
	for cur < ts {
		bucketEnd := r.pdpStart + r.step
		segEnd := bucketEnd
		if ts < segEnd {
			segEnd = ts
		}
		span := float64(segEnd - cur)
		for d := range r.dss {
			if !math.IsNaN(rates[d]) {
				r.pdpSum[d] += rates[d] * span
				r.pdpCover[d] += span
			}
		}
		cur = segEnd
		if cur >= bucketEnd {
			r.finishPDP()
			r.pdpStart = bucketEnd
		}
	}
	r.lastUpdate = ts
	return nil
}

// finishPDP closes the current step bucket and feeds the PDP into every
// archive.
func (r *RRD) finishPDP() {
	pdp := make([]float64, len(r.dss))
	for d := range r.dss {
		// Require at least half the step covered, like rrdtool's
		// xff-at-the-PDP-level simplification.
		if r.pdpCover[d]*2 < float64(r.step) {
			pdp[d] = math.NaN()
		} else {
			pdp[d] = r.pdpSum[d] / r.pdpCover[d]
		}
		r.pdpSum[d] = 0
		r.pdpCover[d] = 0
	}
	for _, st := range r.rras {
		consolidate(st, pdp, len(r.dss))
	}
}

// consolidate merges one PDP into an archive's accumulator, emitting a
// row when full.
func consolidate(st *rraState, pdp []float64, nDS int) {
	for d := 0; d < nDS; d++ {
		v := pdp[d]
		if math.IsNaN(v) {
			// Unknown PDPs are skipped; a row consolidates over the
			// known points only and is unknown when none exist.
			continue
		}
		st.accumKnown[d]++
		switch st.def.CF {
		case Average:
			st.accum[d] += v
		case Min:
			if v < st.accum[d] {
				st.accum[d] = v
			}
		case Max:
			if v > st.accum[d] {
				st.accum[d] = v
			}
		case Last:
			st.accum[d] = v
		}
	}
	st.accumN++
	if st.accumN < st.def.PdpPerRow {
		return
	}
	// Emit the row.
	row := st.head * nDS
	for d := 0; d < nDS; d++ {
		v := st.accum[d]
		if st.accumKnown[d] == 0 {
			v = math.NaN()
		} else if st.def.CF == Average {
			v = v / float64(st.accumKnown[d])
		}
		st.ring[row+d] = v
	}
	st.head = (st.head + 1) % st.def.Rows
	st.written++
	resetAccum(st, st.def.CF, nDS)
}

// Series is a fetched slice of time series data. Row i covers
// [Start + i*Step, Start + (i+1)*Step) and holds one value per DS.
type Series struct {
	Start int64
	Step  int64
	Names []string
	Rows  [][]float64
}

// End returns the end of the covered range.
func (s *Series) End() int64 { return s.Start + int64(len(s.Rows))*s.Step }

// Times returns the start timestamp of every row.
func (s *Series) Times() []int64 {
	out := make([]int64, len(s.Rows))
	for i := range out {
		out[i] = s.Start + int64(i)*s.Step
	}
	return out
}

// rowTime returns the start timestamp of ring row i (0 = oldest valid).
func (r *RRD) rraRange(st *rraState) (first, last int64) {
	res := st.def.resolution(r.step)
	// The archive's most recent complete row ends at the last completed
	// consolidation boundary.
	completedPDPs := (r.pdpStart - 0) / r.step // PDPs fully closed since epoch
	completedRows := completedPDPs / int64(st.def.PdpPerRow)
	lastEnd := completedRows * res
	valid := st.written
	if valid > int64(st.def.Rows) {
		valid = int64(st.def.Rows)
	}
	first = lastEnd - valid*res
	return first, lastEnd
}

// valueAt returns the archive row covering [t, t+res) or NaN.
func (r *RRD) valueAt(st *rraState, t int64, d int) float64 {
	res := st.def.resolution(r.step)
	first, last := r.rraRange(st)
	if t < first || t >= last {
		return math.NaN()
	}
	// Row index counted back from head-1 (most recent).
	back := (last - t) / res // 1 = most recent row
	idx := (st.head - int(back) + st.def.Rows*2) % st.def.Rows
	return st.ring[idx*len(r.dss)+d]
}

// Fetch returns data from the finest archive with the requested CF that
// covers begin. The returned series is aligned to the archive resolution
// and clipped to [begin, end].
func (r *RRD) Fetch(cf CF, begin, end int64) (*Series, error) {
	if end <= begin {
		return nil, fmt.Errorf("rrd: empty fetch range [%d, %d)", begin, end)
	}
	// Candidate archives with the CF, finest first.
	var cands []*rraState
	for _, st := range r.rras {
		if st.def.CF == cf {
			cands = append(cands, st)
		}
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("rrd: no archive with CF %v", cf)
	}
	sort.Slice(cands, func(i, j int) bool {
		return cands[i].def.PdpPerRow < cands[j].def.PdpPerRow
	})
	chosen := cands[len(cands)-1]
	for _, st := range cands {
		first, _ := r.rraRange(st)
		if first <= begin {
			chosen = st
			break
		}
	}
	return r.extract(chosen, begin, end), nil
}

// FetchBest stitches the most accurate data available across all archives
// with the given CF: recent ranges come from fine archives, older ranges
// from coarse ones. This is the Pilgrim metrology service's query
// semantics (§IV-C1).
func (r *RRD) FetchBest(cf CF, begin, end int64) (*Series, error) {
	if end <= begin {
		return nil, fmt.Errorf("rrd: empty fetch range [%d, %d)", begin, end)
	}
	var cands []*rraState
	for _, st := range r.rras {
		if st.def.CF == cf {
			cands = append(cands, st)
		}
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("rrd: no archive with CF %v", cf)
	}
	// Finest first.
	sort.Slice(cands, func(i, j int) bool {
		return cands[i].def.PdpPerRow < cands[j].def.PdpPerRow
	})
	finest := cands[0]
	res := finest.def.resolution(r.step)
	start := begin - mod(begin, res)
	s := &Series{Start: start, Step: res, Names: dsNames(r.dss)}
	for t := start; t < end; t += res {
		row := make([]float64, len(r.dss))
		for d := range r.dss {
			v := math.NaN()
			// Try archives finest to coarsest until one has data.
			for _, st := range cands {
				v = r.valueAt(st, t, d)
				if !math.IsNaN(v) {
					break
				}
			}
			row[d] = v
		}
		s.Rows = append(s.Rows, row)
	}
	return s, nil
}

// extract reads rows [begin, end) from a single archive.
func (r *RRD) extract(st *rraState, begin, end int64) *Series {
	res := st.def.resolution(r.step)
	start := begin - mod(begin, res)
	s := &Series{Start: start, Step: res, Names: dsNames(r.dss)}
	for t := start; t < end; t += res {
		row := make([]float64, len(r.dss))
		for d := range r.dss {
			row[d] = r.valueAt(st, t, d)
		}
		s.Rows = append(s.Rows, row)
	}
	return s
}

func dsNames(dss []DS) []string {
	out := make([]string, len(dss))
	for i, d := range dss {
		out[i] = d.Name
	}
	return out
}

func mod(a, b int64) int64 {
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}
