package rrd

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

// On-disk format ("PRRD1"): a little-endian binary layout mirroring the
// in-memory structure. RRD files are the de-facto exchange format of the
// metrology world (§III-A); keeping ours on disk lets the Pilgrim RRD
// service front a directory tree of files exactly like Ganglia's.
//
//	magic    [5]byte  "PRRD1"
//	step     int64
//	nDS      int32
//	per DS:  nameLen int32, name []byte, kind int32, heartbeat int64
//	nRRA     int32
//	per RRA: cf int32, pdpPerRow int32, rows int32
//	lastUpdate int64
//	pdpStart   int64
//	lastValues [nDS]float64
//	pdpSum     [nDS]float64
//	pdpCover   [nDS]float64
//	per RRA: head int32, written int64, accumN int32,
//	         accum [nDS]float64, accumKnown [nDS]int32,
//	         ring [rows*nDS]float64

var magic = [5]byte{'P', 'R', 'R', 'D', '1'}

// ErrBadFormat reports a malformed or truncated RRD file.
var ErrBadFormat = errors.New("rrd: bad file format")

// Save writes the database to w.
func (r *RRD) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	write := func(v interface{}) error { return binary.Write(bw, binary.LittleEndian, v) }

	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := write(r.step); err != nil {
		return err
	}
	if err := write(int32(len(r.dss))); err != nil {
		return err
	}
	for _, ds := range r.dss {
		if err := write(int32(len(ds.Name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(ds.Name); err != nil {
			return err
		}
		if err := write(int32(ds.Kind)); err != nil {
			return err
		}
		if err := write(ds.Heartbeat); err != nil {
			return err
		}
	}
	if err := write(int32(len(r.rras))); err != nil {
		return err
	}
	for _, st := range r.rras {
		if err := write(int32(st.def.CF)); err != nil {
			return err
		}
		if err := write(int32(st.def.PdpPerRow)); err != nil {
			return err
		}
		if err := write(int32(st.def.Rows)); err != nil {
			return err
		}
	}
	if err := write(r.lastUpdate); err != nil {
		return err
	}
	if err := write(r.pdpStart); err != nil {
		return err
	}
	for _, arr := range [][]float64{r.lastValues, r.pdpSum, r.pdpCover} {
		if err := write(arr); err != nil {
			return err
		}
	}
	for _, st := range r.rras {
		if err := write(int32(st.head)); err != nil {
			return err
		}
		if err := write(st.written); err != nil {
			return err
		}
		if err := write(int32(st.accumN)); err != nil {
			return err
		}
		if err := write(st.accum); err != nil {
			return err
		}
		known := make([]int32, len(st.accumKnown))
		for i, k := range st.accumKnown {
			known[i] = int32(k)
		}
		if err := write(known); err != nil {
			return err
		}
		if err := write(st.ring); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a database previously written by Save.
func Load(rd io.Reader) (*RRD, error) {
	br := bufio.NewReader(rd)
	read := func(v interface{}) error { return binary.Read(br, binary.LittleEndian, v) }

	var m [5]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if m != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, m)
	}
	var step int64
	if err := read(&step); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	var nDS int32
	if err := read(&nDS); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if nDS <= 0 || nDS > 1<<16 {
		return nil, fmt.Errorf("%w: implausible DS count %d", ErrBadFormat, nDS)
	}
	dss := make([]DS, nDS)
	for i := range dss {
		var nameLen int32
		if err := read(&nameLen); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
		if nameLen <= 0 || nameLen > 1<<12 {
			return nil, fmt.Errorf("%w: implausible DS name length %d", ErrBadFormat, nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
		var kind int32
		if err := read(&kind); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
		var hb int64
		if err := read(&hb); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
		dss[i] = DS{Name: string(name), Kind: DSKind(kind), Heartbeat: hb}
	}
	var nRRA int32
	if err := read(&nRRA); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if nRRA <= 0 || nRRA > 1<<12 {
		return nil, fmt.Errorf("%w: implausible RRA count %d", ErrBadFormat, nRRA)
	}
	rras := make([]RRA, nRRA)
	for i := range rras {
		var cf, pdp, rows int32
		if err := read(&cf); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
		if err := read(&pdp); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
		if err := read(&rows); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
		rras[i] = RRA{CF: CF(cf), PdpPerRow: int(pdp), Rows: int(rows)}
	}
	r, err := Create(step, dss, rras)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if err := read(&r.lastUpdate); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if err := read(&r.pdpStart); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	for _, arr := range [][]float64{r.lastValues, r.pdpSum, r.pdpCover} {
		if err := read(arr); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
	}
	for _, st := range r.rras {
		var head, accumN int32
		if err := read(&head); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
		if err := read(&st.written); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
		if err := read(&accumN); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
		if head < 0 || int(head) >= st.def.Rows {
			return nil, fmt.Errorf("%w: ring head out of range", ErrBadFormat)
		}
		st.head = int(head)
		st.accumN = int(accumN)
		if err := read(st.accum); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
		known := make([]int32, len(st.accumKnown))
		if err := read(known); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
		for i, k := range known {
			st.accumKnown[i] = int(k)
		}
		if err := read(st.ring); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
		}
	}
	return r, nil
}

// SaveFile writes the database to path atomically (write + rename).
func (r *RRD) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := r.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a database from path.
func LoadFile(path string) (*RRD, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Equal reports whether two databases have identical structure and
// content (used by round-trip tests).
func (r *RRD) Equal(o *RRD) bool {
	if r.step != o.step || r.lastUpdate != o.lastUpdate || r.pdpStart != o.pdpStart {
		return false
	}
	if len(r.dss) != len(o.dss) || len(r.rras) != len(o.rras) {
		return false
	}
	for i := range r.dss {
		if r.dss[i] != o.dss[i] {
			return false
		}
	}
	eqF := func(a, b []float64) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] && !(math.IsNaN(a[i]) && math.IsNaN(b[i])) {
				return false
			}
		}
		return true
	}
	if !eqF(r.lastValues, o.lastValues) || !eqF(r.pdpSum, o.pdpSum) || !eqF(r.pdpCover, o.pdpCover) {
		return false
	}
	for i := range r.rras {
		a, b := r.rras[i], o.rras[i]
		if a.def != b.def || a.head != b.head || a.written != b.written || a.accumN != b.accumN {
			return false
		}
		if !eqF(a.accum, b.accum) || !eqF(a.ring, b.ring) {
			return false
		}
		for d := range a.accumKnown {
			if a.accumKnown[d] != b.accumKnown[d] {
				return false
			}
		}
	}
	return true
}
