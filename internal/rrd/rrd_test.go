package rrd

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"
	"testing/quick"
)

// newSimple creates a 15s-step RRD with fine and coarse AVERAGE archives,
// like a Ganglia power-metric file.
func newSimple(t testing.TB) *RRD {
	t.Helper()
	r, err := Create(15,
		[]DS{{Name: "pdu", Kind: Gauge, Heartbeat: 60}},
		[]RRA{
			{CF: Average, PdpPerRow: 1, Rows: 20},  // 15s x 20 = 5 min fine
			{CF: Average, PdpPerRow: 4, Rows: 100}, // 1 min x 100 coarse
			{CF: Max, PdpPerRow: 4, Rows: 100},
		})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCreateValidation(t *testing.T) {
	if _, err := Create(0, []DS{{Name: "x", Heartbeat: 1}}, []RRA{{CF: Average, PdpPerRow: 1, Rows: 1}}); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := Create(10, nil, []RRA{{CF: Average, PdpPerRow: 1, Rows: 1}}); err == nil {
		t.Error("no DS accepted")
	}
	if _, err := Create(10, []DS{{Name: "x", Heartbeat: 1}}, nil); err == nil {
		t.Error("no RRA accepted")
	}
	if _, err := Create(10, []DS{{Name: "x", Heartbeat: 1}, {Name: "x", Heartbeat: 1}},
		[]RRA{{CF: Average, PdpPerRow: 1, Rows: 1}}); err == nil {
		t.Error("duplicate DS accepted")
	}
	if _, err := Create(10, []DS{{Name: "x", Heartbeat: 0}},
		[]RRA{{CF: Average, PdpPerRow: 1, Rows: 1}}); err == nil {
		t.Error("zero heartbeat accepted")
	}
	if _, err := Create(10, []DS{{Name: "x", Heartbeat: 5}},
		[]RRA{{CF: Average, PdpPerRow: 0, Rows: 1}}); err == nil {
		t.Error("zero pdpPerRow accepted")
	}
}

func TestUpdateMonotonicTimestamps(t *testing.T) {
	r := newSimple(t)
	if err := r.Update(1000, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := r.Update(1000, []float64{1}); err == nil {
		t.Error("equal timestamp accepted")
	}
	if err := r.Update(999, []float64{1}); err == nil {
		t.Error("past timestamp accepted")
	}
	if err := r.Update(1015, []float64{1, 2}); err == nil {
		t.Error("wrong arity accepted")
	}
}

func TestGaugeFetch(t *testing.T) {
	r := newSimple(t)
	// Steady 170 W samples every 15 s, aligned.
	for ts := int64(1500); ts <= 1500+15*30; ts += 15 {
		if err := r.Update(ts, []float64{170}); err != nil {
			t.Fatal(err)
		}
	}
	// The fine archive holds 20 rows = 5 minutes; after 30 PDPs it
	// covers [1650, 1950). Query inside that window.
	s, err := r.Fetch(Average, 1700, 1900)
	if err != nil {
		t.Fatal(err)
	}
	if s.Step != 15 {
		t.Errorf("step = %d, want 15 (fine archive)", s.Step)
	}
	found := 0
	for _, row := range s.Rows {
		if !math.IsNaN(row[0]) {
			found++
			if math.Abs(row[0]-170) > 1e-9 {
				t.Errorf("value = %v, want 170", row[0])
			}
		}
	}
	if found == 0 {
		t.Fatal("no data points in range")
	}
}

func TestFetchFallsBackToCoarseArchive(t *testing.T) {
	r := newSimple(t)
	// Fill enough data that the fine archive (5 min) wrapped but the
	// coarse one (100 min) still covers the old range.
	for ts := int64(15); ts <= 15*400; ts += 15 {
		if err := r.Update(ts, []float64{float64(ts)}); err != nil {
			t.Fatal(err)
		}
	}
	// Old range: only coarse has it.
	s, err := r.Fetch(Average, 600, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if s.Step != 60 {
		t.Errorf("step = %d, want 60 (coarse archive)", s.Step)
	}
	// Recent range: fine has it.
	s2, err := r.Fetch(Average, 15*395, 15*399)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Step != 15 {
		t.Errorf("step = %d, want 15 (fine archive)", s2.Step)
	}
}

func TestFetchBestStitchesArchives(t *testing.T) {
	r := newSimple(t)
	for ts := int64(15); ts <= 15*400; ts += 15 {
		if err := r.Update(ts, []float64{42}); err != nil {
			t.Fatal(err)
		}
	}
	// A range spanning old (coarse-only) and recent (fine) data.
	s, err := r.FetchBest(Average, 1000, 15*399)
	if err != nil {
		t.Fatal(err)
	}
	if s.Step != 15 {
		t.Errorf("FetchBest step = %d, want finest", s.Step)
	}
	known := 0
	for _, row := range s.Rows {
		if !math.IsNaN(row[0]) {
			known++
			if math.Abs(row[0]-42) > 1e-9 {
				t.Errorf("value = %v", row[0])
			}
		}
	}
	if frac := float64(known) / float64(len(s.Rows)); frac < 0.9 {
		t.Errorf("only %.0f%% of stitched points known", frac*100)
	}
}

func TestCounterRates(t *testing.T) {
	r, err := Create(10,
		[]DS{{Name: "bytes", Kind: Counter, Heartbeat: 60}},
		[]RRA{{CF: Average, PdpPerRow: 1, Rows: 50}})
	if err != nil {
		t.Fatal(err)
	}
	// Counter grows 1000 per 10s: rate 100/s.
	for i := int64(0); i <= 30; i++ {
		if err := r.Update(10+i*10, []float64{float64(i) * 1000}); err != nil {
			t.Fatal(err)
		}
	}
	s, err := r.Fetch(Average, 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range s.Rows {
		if math.IsNaN(row[0]) {
			continue
		}
		if math.Abs(row[0]-100) > 1e-6 {
			t.Errorf("rate = %v, want 100", row[0])
		}
	}
}

func TestCounterResetYieldsUnknown(t *testing.T) {
	r, err := Create(10,
		[]DS{{Name: "c", Kind: Counter, Heartbeat: 60}},
		[]RRA{{CF: Average, PdpPerRow: 1, Rows: 50}})
	if err != nil {
		t.Fatal(err)
	}
	must := func(ts int64, v float64) {
		t.Helper()
		if err := r.Update(ts, []float64{v}); err != nil {
			t.Fatal(err)
		}
	}
	must(10, 1000)
	must(20, 2000)
	must(30, 100) // reset
	must(40, 1100)
	s, err := r.Fetch(Average, 20, 40)
	if err != nil {
		t.Fatal(err)
	}
	sawNaN := false
	for _, row := range s.Rows {
		if math.IsNaN(row[0]) {
			sawNaN = true
		}
	}
	if !sawNaN {
		t.Error("counter reset did not produce an unknown interval")
	}
}

func TestHeartbeatGapUnknown(t *testing.T) {
	r := newSimple(t) // heartbeat 60s
	if err := r.Update(100, []float64{5}); err != nil {
		t.Fatal(err)
	}
	// 500s gap >> heartbeat.
	if err := r.Update(600, []float64{5}); err != nil {
		t.Fatal(err)
	}
	if err := r.Update(615, []float64{5}); err != nil {
		t.Fatal(err)
	}
	s, err := r.Fetch(Average, 100, 600)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range s.Rows {
		if !math.IsNaN(row[0]) {
			t.Fatalf("gap interval has value %v, want unknown", row[0])
		}
	}
}

func TestMinMaxConsolidation(t *testing.T) {
	r, err := Create(10,
		[]DS{{Name: "v", Kind: Gauge, Heartbeat: 100}},
		[]RRA{
			{CF: Min, PdpPerRow: 4, Rows: 10},
			{CF: Max, PdpPerRow: 4, Rows: 10},
		})
	if err != nil {
		t.Fatal(err)
	}
	vals := []float64{5, 1, 9, 3, 7, 2, 8, 4, 6, 1}
	for i, v := range vals {
		if err := r.Update(int64(10+i*10), []float64{v}); err != nil {
			t.Fatal(err)
		}
	}
	smin, err := r.Fetch(Min, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	smax, err := r.Fetch(Max, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	foundMin, foundMax := false, false
	for _, row := range smin.Rows {
		if !math.IsNaN(row[0]) {
			foundMin = true
			if row[0] > 3 {
				t.Errorf("min row = %v, too high", row[0])
			}
		}
	}
	for _, row := range smax.Rows {
		if !math.IsNaN(row[0]) {
			foundMax = true
			if row[0] < 7 {
				t.Errorf("max row = %v, too low", row[0])
			}
		}
	}
	if !foundMin || !foundMax {
		t.Error("no consolidated min/max rows found")
	}
}

func TestFetchUnknownCF(t *testing.T) {
	r := newSimple(t)
	if _, err := r.Fetch(Last, 0, 100); err == nil {
		t.Error("missing CF accepted")
	}
	if _, err := r.Fetch(Average, 100, 100); err == nil {
		t.Error("empty range accepted")
	}
}

func TestRingWrapKeepsLatest(t *testing.T) {
	r, err := Create(10,
		[]DS{{Name: "v", Kind: Gauge, Heartbeat: 100}},
		[]RRA{{CF: Average, PdpPerRow: 1, Rows: 5}}) // tiny ring
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 100; i++ {
		if err := r.Update(int64(i*10), []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Only the last ~5 rows are retained.
	s, err := r.Fetch(Average, 940, 990)
	if err != nil {
		t.Fatal(err)
	}
	known := 0
	for _, row := range s.Rows {
		if !math.IsNaN(row[0]) {
			known++
			if row[0] < 90 {
				t.Errorf("stale value %v survived wrap", row[0])
			}
		}
	}
	if known == 0 {
		t.Fatal("no recent values after wrap")
	}
	// Old data must be gone.
	s2, err := r.Fetch(Average, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range s2.Rows {
		if !math.IsNaN(row[0]) {
			t.Errorf("value %v from overwritten range", row[0])
		}
	}
}

func TestMultiDS(t *testing.T) {
	r, err := Create(10,
		[]DS{
			{Name: "in", Kind: Gauge, Heartbeat: 100},
			{Name: "out", Kind: Gauge, Heartbeat: 100},
		},
		[]RRA{{CF: Average, PdpPerRow: 1, Rows: 50}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		if err := r.Update(int64(i*10), []float64{1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	s, err := r.Fetch(Average, 50, 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Names) != 2 || s.Names[0] != "in" || s.Names[1] != "out" {
		t.Errorf("names = %v", s.Names)
	}
	for _, row := range s.Rows {
		if math.IsNaN(row[0]) {
			continue
		}
		if row[0] != 1 || row[1] != 2 {
			t.Errorf("row = %v", row)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	r := newSimple(t)
	for ts := int64(15); ts <= 15*100; ts += 15 {
		if err := r.Update(ts, []float64{float64(ts % 97)}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	r2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equal(r2) {
		t.Fatal("round trip changed database")
	}
	// Updates continue seamlessly on the loaded copy.
	if err := r2.Update(15*101, []float64{1}); err != nil {
		t.Fatal(err)
	}
}

func TestSaveLoadFile(t *testing.T) {
	r := newSimple(t)
	for ts := int64(15); ts <= 1500; ts += 15 {
		if err := r.Update(ts, []float64{7}); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "test.rrd")
	if err := r.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	r2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equal(r2) {
		t.Fatal("file round trip changed database")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not an rrd"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Truncated valid prefix.
	r := newSimple(t)
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Load(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated file accepted")
	}
}

// Property: for any sequence of positive gauge updates at arbitrary
// increasing times, fetched AVERAGE values lie within [min, max] of the
// inputs.
func TestFetchBoundedByInputs(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 4 {
			return true
		}
		r, err := Create(10,
			[]DS{{Name: "v", Kind: Gauge, Heartbeat: 1000}},
			[]RRA{{CF: Average, PdpPerRow: 1, Rows: 1000}, {CF: Average, PdpPerRow: 7, Rows: 1000}})
		if err != nil {
			return false
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		ts := int64(10)
		for _, b := range raw {
			v := float64(b) + 1
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			if err := r.Update(ts, []float64{v}); err != nil {
				return false
			}
			ts += int64(1 + b%29)
		}
		s, err := r.FetchBest(Average, 0, ts)
		if err != nil {
			return false
		}
		for _, row := range s.Rows {
			if math.IsNaN(row[0]) {
				continue
			}
			if row[0] < lo-1e-9 || row[0] > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Save/Load is the identity for randomized update streams.
func TestSaveLoadIdentityProperty(t *testing.T) {
	f := func(raw []uint8, seed uint8) bool {
		r, err := Create(int64(5+seed%11),
			[]DS{{Name: "a", Kind: Gauge, Heartbeat: 500}, {Name: "b", Kind: Counter, Heartbeat: 500}},
			[]RRA{{CF: Average, PdpPerRow: 2, Rows: 13}, {CF: Max, PdpPerRow: 5, Rows: 7}})
		if err != nil {
			return false
		}
		ts := int64(1)
		acc := 0.0
		for _, b := range raw {
			acc += float64(b)
			if err := r.Update(ts, []float64{float64(b), acc}); err != nil {
				return false
			}
			ts += int64(1 + b%17)
		}
		var buf bytes.Buffer
		if err := r.Save(&buf); err != nil {
			return false
		}
		r2, err := Load(&buf)
		if err != nil {
			return false
		}
		return r.Equal(r2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUpdate(b *testing.B) {
	r, err := Create(15,
		[]DS{{Name: "v", Kind: Gauge, Heartbeat: 60}},
		[]RRA{{CF: Average, PdpPerRow: 1, Rows: 1000}, {CF: Average, PdpPerRow: 20, Rows: 1000}})
	if err != nil {
		b.Fatal(err)
	}
	vals := []float64{42}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Update(int64(15*(i+1)), vals); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFetchBest(b *testing.B) {
	r := newSimple(b)
	for ts := int64(15); ts <= 15*5000; ts += 15 {
		if err := r.Update(ts, []float64{float64(ts)}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.FetchBest(Average, 15*4000, 15*5000); err != nil {
			b.Fatal(err)
		}
	}
}
