package experiments

import (
	"math"

	"pilgrim/internal/plot"
	"pilgrim/internal/stats"
)

// LargeTransferThreshold is the size above which the paper considers the
// fluid TCP model reliable: 1.67e7 bytes (§V-B). The global accuracy
// statistics are computed over transfers strictly larger than this.
const LargeTransferThreshold = 1.67e7

// Summary holds the paper's global accuracy statistics (§V-B, last
// paragraph): over all presented experiments and sizes above the
// threshold, the median absolute error, the standard deviation of the
// errors, and the fraction of absolute errors under 0.575.
type Summary struct {
	N                 int
	MedianAbsError    float64
	StdDevError       float64
	FractionBelow0575 float64
}

// PaperSummary is what the paper reports for the same statistics.
var PaperSummary = Summary{
	MedianAbsError:    0.149,
	StdDevError:       0.532,
	FractionBelow0575: 0.74,
}

// Summarize computes the global statistics over all samples with
// size > LargeTransferThreshold.
func Summarize(results []*Result) Summary {
	var errs []float64
	for _, r := range results {
		for _, c := range r.Cells {
			if c.Size <= LargeTransferThreshold {
				continue
			}
			errs = append(errs, c.Errors()...)
		}
	}
	if len(errs) == 0 {
		return Summary{}
	}
	abs := stats.Abs(errs)
	return Summary{
		N:                 len(errs),
		MedianAbsError:    stats.Median(abs),
		StdDevError:       stats.StdDev(errs),
		FractionBelow0575: stats.FractionBelow(abs, 0.575),
	}
}

// Figure converts a result into a plottable figure.
func (r *Result) Figure() plot.Figure {
	f := plot.Figure{Title: r.Spec.Title}
	for _, c := range r.Cells {
		f.Sizes = append(f.Sizes, c.Size)
		f.Boxes = append(f.Boxes, stats.Box(c.Errors()))
		f.Durations = append(f.Durations, c.MedianMeasured())
	}
	return f
}

// LargeSizeMedianError returns the median error over the result's cells
// above the threshold — the "constant factor" diagnostic the paper
// discusses for graphene (§V-B1: predictions ≈ 1.25x measures at 30x30,
// ≈ 1.7x at 50x50). The returned value is in log2 units; the
// corresponding multiplicative factor is 2^value.
func (r *Result) LargeSizeMedianError() float64 {
	var errs []float64
	for _, c := range r.Cells {
		if c.Size <= LargeTransferThreshold {
			continue
		}
		errs = append(errs, c.Errors()...)
	}
	if len(errs) == 0 {
		return math.NaN()
	}
	return stats.Median(errs)
}

// SmallSizeMedianError returns the median error over the cells at or
// below the threshold (the slow-start-dominated regime).
func (r *Result) SmallSizeMedianError() float64 {
	var errs []float64
	for _, c := range r.Cells {
		if c.Size > LargeTransferThreshold {
			continue
		}
		errs = append(errs, c.Errors()...)
	}
	if len(errs) == 0 {
		return math.NaN()
	}
	return stats.Median(errs)
}
