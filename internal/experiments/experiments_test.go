package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"

	"pilgrim/internal/g5k"
	"pilgrim/internal/pilgrim"
	"pilgrim/internal/platgen"
	"pilgrim/internal/sim"
	"pilgrim/internal/stats"
	"pilgrim/internal/testbed"
)

var (
	runnerOnce sync.Once
	runnerVal  *Runner
	runnerErr  error
)

// sharedRunner builds the full-dataset runner once for the test package.
func sharedRunner(t *testing.T) *Runner {
	t.Helper()
	runnerOnce.Do(func() {
		ref := g5k.Default()
		plat, err := platgen.Generate(ref, platgen.Options{Variant: platgen.G5KTest})
		if err != nil {
			runnerErr = err
			return
		}
		runnerVal, runnerErr = NewRunner(ref, testbed.DefaultConfig(),
			pilgrim.PlatformEntry{Platform: plat, Config: sim.DefaultConfig()})
	})
	if runnerErr != nil {
		t.Fatal(runnerErr)
	}
	return runnerVal
}

func TestFiguresMatchPaperInventory(t *testing.T) {
	figs := Figures()
	if len(figs) != 9 {
		t.Fatalf("figures = %d, want 9 (Figs. 3-11)", len(figs))
	}
	wantIDs := []string{"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11"}
	for i, f := range figs {
		if f.ID != wantIDs[i] {
			t.Errorf("figure %d id = %s", i, f.ID)
		}
	}
	// Paper parameters spot checks.
	f9, ok := FigureByID("fig9")
	if !ok || f9.Cluster != "graphene" || f9.NSources != 50 || f9.NDests != 50 {
		t.Errorf("fig9 = %+v", f9)
	}
	f10, _ := FigureByID("fig10")
	if f10.Topology != GridMulti || f10.NSources != 10 || f10.NDests != 30 {
		t.Errorf("fig10 = %+v", f10)
	}
	if _, ok := FigureByID("fig99"); ok {
		t.Error("bogus figure found")
	}
}

func TestPaperSizesSweep(t *testing.T) {
	sizes := PaperSizes()
	if len(sizes) != 10 || sizes[0] != 1e5 || math.Abs(sizes[9]-1e10) > 1 {
		t.Errorf("sizes = %v", sizes)
	}
}

func TestDrawTransfersCluster(t *testing.T) {
	r := sharedRunner(t)
	spec, _ := FigureByID("fig5") // sagittaire 30x30
	rng := stats.NewRNG(1)
	ts, err := r.drawTransfers(spec, 1e6, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 30 {
		t.Fatalf("transfers = %d, want 30", len(ts))
	}
	for _, tr := range ts {
		if !strings.Contains(tr.Src, "sagittaire-") || !strings.Contains(tr.Dst, "sagittaire-") {
			t.Errorf("transfer outside cluster: %s -> %s", tr.Src, tr.Dst)
		}
		if tr.Src == tr.Dst {
			t.Errorf("self transfer %s", tr.Src)
		}
	}
}

func TestDrawTransfersAsymmetric(t *testing.T) {
	// 10 sources, 30 destinations: 30 transfers, sources reused (§V-A).
	r := sharedRunner(t)
	spec := Spec{ID: "x", Topology: Cluster, Site: "nancy", Cluster: "graphene",
		NSources: 10, NDests: 30, Seed: 1}
	ts, err := r.drawTransfers(spec, 1e6, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 30 {
		t.Fatalf("transfers = %d, want 30", len(ts))
	}
	srcs := map[string]int{}
	for _, tr := range ts {
		srcs[tr.Src]++
	}
	if len(srcs) != 10 {
		t.Errorf("distinct sources = %d, want 10", len(srcs))
	}
	for s, n := range srcs {
		if n != 3 {
			t.Errorf("source %s carries %d transfers, want 3", s, n)
		}
	}
}

func TestDrawTransfersGridMulti(t *testing.T) {
	r := sharedRunner(t)
	spec, _ := FigureByID("fig10")
	ts, err := r.drawTransfers(spec, 1e6, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 30 {
		t.Fatalf("transfers = %d", len(ts))
	}
	for _, tr := range ts {
		if siteOf(tr.Src) == siteOf(tr.Dst) {
			t.Errorf("transfer does not cross sites: %s -> %s", tr.Src, tr.Dst)
		}
	}
}

func TestSiteOf(t *testing.T) {
	if got := siteOf("sagittaire-1.lyon.grid5000.fr"); got != "lyon" {
		t.Errorf("siteOf = %q", got)
	}
	if got := siteOf("nodots"); got != "" {
		t.Errorf("siteOf bare = %q", got)
	}
}

// quickSpec trims a paper spec for test runtime.
func quickSpec(t *testing.T, id string, sizes []float64, reps int) Spec {
	t.Helper()
	spec, ok := FigureByID(id)
	if !ok {
		t.Fatalf("unknown figure %s", id)
	}
	spec.Sizes = sizes
	spec.Reps = reps
	return spec
}

// TestShapeSagittaireSmallSizesUnderPredicted checks Fig. 3's dominant
// feature: on sagittaire, small-transfer durations are strongly
// under-predicted (slow start and per-transfer overhead are absent from
// the fluid model), giving clearly negative log2 errors.
func TestShapeSagittaireSmallSizesUnderPredicted(t *testing.T) {
	r := sharedRunner(t)
	spec := quickSpec(t, "fig3", []float64{1e5}, 3)
	res, err := r.RunFigure(spec)
	if err != nil {
		t.Fatal(err)
	}
	med := stats.Median(res.Cells[0].Errors())
	if med > -1.5 {
		t.Errorf("sagittaire 0.1MB median error = %.2f, want < -1.5 (paper: strongly negative)", med)
	}
}

// TestShapeGrapheneSmallSizesOverPredicted checks Fig. 6's inversion: on
// graphene the model's stacked hardcoded latencies exceed the fast real
// path, so small transfers are over-predicted (positive error).
func TestShapeGrapheneSmallSizesOverPredicted(t *testing.T) {
	r := sharedRunner(t)
	spec := quickSpec(t, "fig6", []float64{1e5}, 3)
	res, err := r.RunFigure(spec)
	if err != nil {
		t.Fatal(err)
	}
	med := stats.Median(res.Cells[0].Errors())
	if med < 0.5 {
		t.Errorf("graphene 0.1MB median error = %.2f, want > 0.5 (paper: +1..+4)", med)
	}
}

// TestShapeLargeTransfersConverge checks the headline accuracy claim: for
// sizes > 1.67e7 on low-concurrency cluster experiments, predictions and
// measures converge (|median error| small).
func TestShapeLargeTransfersConverge(t *testing.T) {
	r := sharedRunner(t)
	for _, id := range []string{"fig3", "fig4", "fig7"} {
		spec := quickSpec(t, id, []float64{7.74e8}, 2)
		res, err := r.RunFigure(spec)
		if err != nil {
			t.Fatal(err)
		}
		med := stats.Median(res.Cells[0].Errors())
		if math.Abs(med) > 0.35 {
			t.Errorf("%s large-size median error = %.3f, want |e| <= 0.35", id, med)
		}
	}
}

// TestShapeGrapheneContentionOverPrediction checks the paper's "most
// annoying result" (§V-B1): at 30x30 on graphene, large-size predictions
// exceed measures by a roughly constant factor ~1.25 (log2 ~ 0.32),
// growing to ~1.7 (log2 ~ 0.77) at 50x50 — here because the model shares
// half-duplex aggregation uplinks that are full-duplex in reality.
func TestShapeGrapheneContentionOverPrediction(t *testing.T) {
	r := sharedRunner(t)

	spec30 := quickSpec(t, "fig8", []float64{7.74e8}, 4)
	res30, err := r.RunFigure(spec30)
	if err != nil {
		t.Fatal(err)
	}
	med30 := stats.Median(res30.Cells[0].Errors())
	if med30 < 0.04 || med30 > 0.8 {
		t.Errorf("graphene 30x30 large-size median error = %.3f, want positive bias (paper ~0.32)", med30)
	}

	spec50 := quickSpec(t, "fig9", []float64{7.74e8}, 4)
	res50, err := r.RunFigure(spec50)
	if err != nil {
		t.Fatal(err)
	}
	med50 := stats.Median(res50.Cells[0].Errors())
	if med50 < med30+0.15 {
		t.Errorf("graphene 50x50 error (%.3f) should clearly exceed 30x30 (%.3f)", med50, med30)
	}
	if med50 < 0.4 || med50 > 1.2 {
		t.Errorf("graphene 50x50 median error = %.3f, want ~0.77 (factor ~1.7)", med50)
	}

	// Control: sagittaire 30x30 (flat topology) does NOT show the bias.
	specSag := quickSpec(t, "fig5", []float64{7.74e8}, 4)
	resSag, err := r.RunFigure(specSag)
	if err != nil {
		t.Fatal(err)
	}
	medSag := stats.Median(resSag.Cells[0].Errors())
	if math.Abs(medSag) > 0.15 {
		t.Errorf("sagittaire 30x30 large-size median error = %.3f, want ~0", medSag)
	}
	if med30 <= medSag {
		t.Errorf("graphene bias (%.3f) should exceed sagittaire (%.3f)", med30, medSag)
	}
}

// TestShapeGridMultiRelevant checks Figs. 10-11: at grid scale the
// forecasts remain relevant — large transfers converge.
func TestShapeGridMultiRelevant(t *testing.T) {
	r := sharedRunner(t)
	spec := quickSpec(t, "fig10", []float64{7.74e8}, 2)
	res, err := r.RunFigure(spec)
	if err != nil {
		t.Fatal(err)
	}
	med := stats.Median(res.Cells[0].Errors())
	if math.Abs(med) > 0.5 {
		t.Errorf("GRID_MULTI 10x30 large-size median error = %.3f, want |e| <= 0.5", med)
	}
}

// TestGlobalErrorStats runs a reduced campaign and checks the global
// statistics land in the paper's neighbourhood: median |error| 0.149,
// sigma 0.532, 74% below 0.575 (§V-B). Bands are generous — the testbed
// is an emulator — but the order of magnitude must hold.
func TestGlobalErrorStats(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign too heavy for -short")
	}
	r := sharedRunner(t)
	sizes := []float64{5.99e7, 7.74e8}
	var results []*Result
	for _, id := range []string{"fig3", "fig4", "fig6", "fig7", "fig8", "fig10"} {
		res, err := r.RunFigure(quickSpec(t, id, sizes, 2))
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	sum := Summarize(results)
	if sum.N == 0 {
		t.Fatal("no samples")
	}
	if sum.MedianAbsError > 0.45 {
		t.Errorf("median |error| = %.3f, paper 0.149; want < 0.45", sum.MedianAbsError)
	}
	if sum.FractionBelow0575 < 0.55 {
		t.Errorf("fraction below 0.575 = %.2f, paper 0.74; want > 0.55", sum.FractionBelow0575)
	}
	if sum.StdDevError > 1.2 {
		t.Errorf("error sigma = %.3f, paper 0.532; want < 1.2", sum.StdDevError)
	}
}

func TestResultFigureAndCSV(t *testing.T) {
	r := sharedRunner(t)
	spec := quickSpec(t, "fig4", []float64{1e5, 7.74e8}, 2)
	res, err := r.RunFigure(spec)
	if err != nil {
		t.Fatal(err)
	}
	fig := res.Figure()
	if err := fig.Validate(); err != nil {
		t.Fatal(err)
	}
	ascii := fig.RenderASCII(16)
	if !strings.Contains(ascii, "sagittaire") || !strings.Contains(ascii, "transfer size") {
		t.Errorf("render missing labels:\n%s", ascii)
	}
	var csv strings.Builder
	if err := fig.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 { // header + 2 sizes
		t.Errorf("csv lines = %d:\n%s", len(lines), csv.String())
	}
}

func TestRunCellDeterminism(t *testing.T) {
	r := sharedRunner(t)
	spec := quickSpec(t, "fig4", nil, 1)
	a, err := r.RunCell(spec, 1e7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.RunCell(spec, 1e7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Samples) != len(b.Samples) {
		t.Fatalf("sample counts differ")
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, a.Samples[i], b.Samples[i])
		}
	}
}
