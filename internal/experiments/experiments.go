// Package experiments implements the paper's evaluation campaign (§V):
// for each figure, draw random sources and destinations according to the
// topology (CLUSTER or GRID_MULTI), execute the concurrent transfers on
// the emulated testbed (the "actual" measurements), query the forecast
// service for the same batch (the predictions), and aggregate the
// per-transfer error log2(prediction) - log2(measure) per transfer size.
package experiments

import (
	"fmt"
	"math"

	"pilgrim/internal/g5k"
	"pilgrim/internal/pilgrim"
	"pilgrim/internal/stats"
	"pilgrim/internal/testbed"
)

// Topology selects the node-draw policy of §V-A.
type Topology int

// Topologies.
const (
	// Cluster draws all sources and destinations from a single cluster.
	Cluster Topology = iota
	// GridMulti draws from all clusters of all sites, with every
	// transfer crossing a site boundary.
	GridMulti
)

// String returns the paper's name for the topology.
func (t Topology) String() string {
	switch t {
	case Cluster:
		return "CLUSTER"
	case GridMulti:
		return "GRID_MULTI"
	default:
		return fmt.Sprintf("Topology(%d)", int(t))
	}
}

// Spec defines one experiment (one figure of the paper).
type Spec struct {
	ID    string // e.g. "fig8"
	Title string
	Topology
	// Site and Cluster select the cluster for Cluster topology.
	Site    string
	Cluster string
	// NSources and NDests are the concurrency parameters. When they
	// differ, some nodes carry more than one transfer (§V-A).
	NSources int
	NDests   int
	// Sizes is the transfer-size sweep; nil means the paper's 10-point
	// geometric progression from 0.1 MB to 10 GB.
	Sizes []float64
	// Reps is the number of repetitions per size; 0 means the paper's 10.
	Reps int
	// Seed makes the experiment reproducible.
	Seed int64
}

// PaperSizes returns the paper's transfer-size sweep.
func PaperSizes() []float64 { return stats.GeomSpace(1e5, 1e10, 10) }

// reps returns the effective repetition count.
func (s Spec) reps() int {
	if s.Reps <= 0 {
		return 10
	}
	return s.Reps
}

// sizes returns the effective size sweep.
func (s Spec) sizes() []float64 {
	if len(s.Sizes) == 0 {
		return PaperSizes()
	}
	return s.Sizes
}

// Figures returns the nine experiments of the paper's result section,
// Figures 3 through 11.
func Figures() []Spec {
	return []Spec{
		{ID: "fig3", Title: "sagittaire / topology CLUSTER / 1 source / 10 destinations",
			Topology: Cluster, Site: "lyon", Cluster: "sagittaire", NSources: 1, NDests: 10, Seed: 3},
		{ID: "fig4", Title: "sagittaire / topology CLUSTER / 10 sources / 10 destinations",
			Topology: Cluster, Site: "lyon", Cluster: "sagittaire", NSources: 10, NDests: 10, Seed: 4},
		{ID: "fig5", Title: "sagittaire / topology CLUSTER / 30 sources / 30 destinations",
			Topology: Cluster, Site: "lyon", Cluster: "sagittaire", NSources: 30, NDests: 30, Seed: 5},
		{ID: "fig6", Title: "graphene / topology CLUSTER / 1 source / 10 destinations",
			Topology: Cluster, Site: "nancy", Cluster: "graphene", NSources: 1, NDests: 10, Seed: 6},
		{ID: "fig7", Title: "graphene / topology CLUSTER / 10 sources / 10 destinations",
			Topology: Cluster, Site: "nancy", Cluster: "graphene", NSources: 10, NDests: 10, Seed: 7},
		{ID: "fig8", Title: "graphene / topology CLUSTER / 30 sources / 30 destinations",
			Topology: Cluster, Site: "nancy", Cluster: "graphene", NSources: 30, NDests: 30, Seed: 8},
		{ID: "fig9", Title: "graphene / topology CLUSTER / 50 sources / 50 destinations",
			Topology: Cluster, Site: "nancy", Cluster: "graphene", NSources: 50, NDests: 50, Seed: 9},
		{ID: "fig10", Title: "topology GRID_MULTI / 10 sources / 30 destinations",
			Topology: GridMulti, NSources: 10, NDests: 30, Seed: 10},
		{ID: "fig11", Title: "topology GRID_MULTI / 60 sources / 60 destinations",
			Topology: GridMulti, NSources: 60, NDests: 60, Seed: 11},
	}
}

// FigureByID returns the paper figure spec with the given id.
func FigureByID(id string) (Spec, bool) {
	for _, s := range Figures() {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}

// Sample is one transfer's outcome: prediction vs measure.
type Sample struct {
	Src        string
	Dst        string
	Size       float64
	Measured   float64
	Predicted  float64
	Log2Error  float64
	Repetition int
}

// Cell aggregates one transfer size of one experiment.
type Cell struct {
	Size    float64
	Samples []Sample
}

// Errors returns the log2 errors of all samples.
func (c *Cell) Errors() []float64 {
	out := make([]float64, len(c.Samples))
	for i, s := range c.Samples {
		out[i] = s.Log2Error
	}
	return out
}

// MedianMeasured returns the median measured duration of the cell.
func (c *Cell) MedianMeasured() float64 {
	ds := make([]float64, len(c.Samples))
	for i, s := range c.Samples {
		ds[i] = s.Measured
	}
	return stats.Median(ds)
}

// Result is one completed experiment.
type Result struct {
	Spec  Spec
	Cells []Cell
}

// AllSamples returns every sample of the experiment.
func (r *Result) AllSamples() []Sample {
	var out []Sample
	for _, c := range r.Cells {
		out = append(out, c.Samples...)
	}
	return out
}

// Runner executes experiments: the testbed provides measures, the
// forecast entry provides predictions. A Runner is not safe for
// concurrent use: draw pools and per-repetition buffers are cached on the
// Runner so a campaign's inner loop allocates little.
type Runner struct {
	Testbed *testbed.Testbed
	Entry   pilgrim.PlatformEntry

	// GridMulti draw pools, built once from the reference.
	gmSites  []string
	gmBySite map[string][]string

	// per-repetition scratch
	transferBuf []testbed.Transfer
	reqBuf      []pilgrim.TransferRequest
	srcBuf      []string
	srcSiteBuf  []string
	dstBuf      []string
}

// NewRunner wires a runner from a reference description, a testbed
// configuration and a forecast platform entry. The entry's compiled
// snapshot is pinned up front: a campaign is one coherent experiment, so
// every cell predicts against the same platform epoch even if the
// platform is refreshed concurrently.
func NewRunner(ref *g5k.Reference, tbCfg testbed.Config, entry pilgrim.PlatformEntry) (*Runner, error) {
	tb, err := testbed.New(ref, tbCfg)
	if err != nil {
		return nil, err
	}
	return &Runner{Testbed: tb, Entry: entry.WithSnapshot()}, nil
}

// drawTransfers picks the experiment's transfers for one repetition.
func (r *Runner) drawTransfers(spec Spec, size float64, rng *stats.RNG) ([]testbed.Transfer, error) {
	n := spec.NSources
	if spec.NDests > n {
		n = spec.NDests
	}
	if n == 0 {
		return nil, fmt.Errorf("experiments: %s has zero transfers", spec.ID)
	}
	switch spec.Topology {
	case Cluster:
		nodes := r.Testbed.NodesOfCluster(spec.Site, spec.Cluster)
		if len(nodes) == 0 {
			return nil, fmt.Errorf("experiments: no nodes in %s/%s", spec.Site, spec.Cluster)
		}
		sources, dests := r.srcBuf[:0], r.dstBuf[:0]
		if spec.NSources+spec.NDests <= len(nodes) {
			// Disjoint draws.
			idx := rng.Sample(len(nodes), spec.NSources+spec.NDests)
			for _, i := range idx[:spec.NSources] {
				sources = append(sources, nodes[i])
			}
			for _, i := range idx[spec.NSources:] {
				dests = append(dests, nodes[i])
			}
		} else {
			for _, i := range rng.Sample(len(nodes), spec.NSources) {
				sources = append(sources, nodes[i])
			}
			for _, i := range rng.Sample(len(nodes), spec.NDests) {
				dests = append(dests, nodes[i])
			}
		}
		r.srcBuf, r.dstBuf = sources, dests
		transfers := r.transferBuf[:0]
		for k := 0; k < n; k++ {
			src := sources[k%len(sources)]
			dst := dests[k%len(dests)]
			if src == dst {
				dst = dests[(k+1)%len(dests)]
			}
			if src == dst {
				return nil, fmt.Errorf("experiments: cannot avoid self transfer in %s", spec.ID)
			}
			transfers = append(transfers, testbed.Transfer{Src: src, Dst: dst, Size: size})
		}
		r.transferBuf = transfers
		return transfers, nil

	case GridMulti:
		if r.gmBySite == nil {
			ref := r.Testbed.Reference()
			r.gmBySite = make(map[string][]string)
			for _, siteID := range ref.SiteIDs() {
				site := ref.Sites[siteID]
				for _, cid := range site.ClusterIDs() {
					for _, nid := range site.Clusters[cid].NodeIDs() {
						r.gmBySite[siteID] = append(r.gmBySite[siteID], g5k.FQDN(nid, siteID))
					}
				}
				r.gmSites = append(r.gmSites, siteID)
			}
		}
		bySite, sites := r.gmBySite, r.gmSites
		if len(sites) < 2 {
			return nil, fmt.Errorf("experiments: GRID_MULTI needs at least 2 sites")
		}
		// Draw source and destination pools from all nodes.
		pick := func() (string, string) {
			si := rng.Intn(len(sites))
			return sites[si], bySite[sites[si]][rng.Intn(len(bySite[sites[si]]))]
		}
		sources := resizeStrings(&r.srcBuf, spec.NSources)
		srcSites := resizeStrings(&r.srcSiteBuf, spec.NSources)
		for i := range sources {
			srcSites[i], sources[i] = pick()
		}
		dests := resizeStrings(&r.dstBuf, spec.NDests)
		for i := range dests {
			// Constraint: all transfers cross site boundaries; destination
			// site differs from the source it will pair with (and any
			// wrap-around pairing below keeps sites distinct because the
			// pools are re-checked per transfer).
			for {
				site, node := pick()
				if site != srcSites[i%len(srcSites)] {
					dests[i] = node
					break
				}
			}
		}
		transfers := r.transferBuf[:0]
		for k := 0; k < n; k++ {
			src := sources[k%len(sources)]
			dst := dests[k%len(dests)]
			if siteOf(src) == siteOf(dst) {
				// Wrap-around pairing broke the constraint; redraw a
				// destination on another site.
				for {
					site, node := pick()
					if site != siteOf(src) {
						dst = node
						break
					}
				}
			}
			transfers = append(transfers, testbed.Transfer{Src: src, Dst: dst, Size: size})
		}
		r.transferBuf = transfers
		return transfers, nil
	default:
		return nil, fmt.Errorf("experiments: unknown topology %v", spec.Topology)
	}
}

// resizeStrings returns *buf resized to n elements, reallocating only on
// capacity growth; the backing array is cached through buf.
func resizeStrings(buf *[]string, n int) []string {
	if cap(*buf) < n {
		*buf = make([]string, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// siteOf extracts the site from an FQDN ("node.site.grid5000.fr").
func siteOf(fqdn string) string {
	dot := -1
	for i := 0; i < len(fqdn); i++ {
		if fqdn[i] == '.' {
			dot = i
			break
		}
	}
	if dot == -1 {
		return ""
	}
	rest := fqdn[dot+1:]
	for i := 0; i < len(rest); i++ {
		if rest[i] == '.' {
			return rest[:i]
		}
	}
	return rest
}

// RunCell executes all repetitions of one (spec, size) cell.
func (r *Runner) RunCell(spec Spec, size float64) (Cell, error) {
	cell := Cell{Size: size}
	for rep := 0; rep < spec.reps(); rep++ {
		seed := spec.Seed*1_000_003 + int64(math.Float64bits(size)%1_000_000) + int64(rep)
		rng := stats.NewRNG(seed)
		transfers, err := r.drawTransfers(spec, size, rng)
		if err != nil {
			return cell, err
		}
		r.Testbed.Reseed(seed ^ 0x5DEECE66D)
		measures, err := r.Testbed.RunTransfers(transfers)
		if err != nil {
			return cell, fmt.Errorf("experiments: %s size %.3g rep %d (measure): %w", spec.ID, size, rep, err)
		}
		reqs := r.reqBuf[:0]
		for _, tr := range transfers {
			reqs = append(reqs, pilgrim.TransferRequest{Src: tr.Src, Dst: tr.Dst, Size: tr.Size})
		}
		r.reqBuf = reqs
		preds, err := pilgrim.PredictTransfers(r.Entry, reqs, nil)
		if err != nil {
			return cell, fmt.Errorf("experiments: %s size %.3g rep %d (predict): %w", spec.ID, size, rep, err)
		}
		for i := range transfers {
			cell.Samples = append(cell.Samples, Sample{
				Src:        transfers[i].Src,
				Dst:        transfers[i].Dst,
				Size:       size,
				Measured:   measures[i].Duration,
				Predicted:  preds[i].Duration,
				Log2Error:  stats.Log2Error(preds[i].Duration, measures[i].Duration),
				Repetition: rep,
			})
		}
	}
	return cell, nil
}

// RunFigure executes one experiment across its full size sweep.
func (r *Runner) RunFigure(spec Spec) (*Result, error) {
	res := &Result{Spec: spec}
	for _, size := range spec.sizes() {
		cell, err := r.RunCell(spec, size)
		if err != nil {
			return nil, err
		}
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}
