package fast

import (
	"math"
	"testing"
	"testing/quick"

	"pilgrim/internal/stats"
)

func TestPolyEval(t *testing.T) {
	p := Poly{1, 2, 3} // 1 + 2x + 3x^2
	if got := p.Eval(0); got != 1 {
		t.Errorf("Eval(0) = %v", got)
	}
	if got := p.Eval(2); got != 1+4+12 {
		t.Errorf("Eval(2) = %v", got)
	}
	if Poly(nil).Degree() != -1 || p.Degree() != 2 {
		t.Error("Degree wrong")
	}
}

func TestPolyFitExactRecovery(t *testing.T) {
	// Samples from 2 - x + 0.5x^2 must be recovered exactly (degree 2).
	truth := Poly{2, -1, 0.5}
	var samples []Sample
	for x := 1.0; x <= 8; x++ {
		samples = append(samples, Sample{Param: x, Time: truth.Eval(x)})
	}
	got, err := PolyFit(samples, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if math.Abs(got[i]-truth[i]) > 1e-8 {
			t.Errorf("coef %d = %v, want %v", i, got[i], truth[i])
		}
	}
}

func TestPolyFitNoisy(t *testing.T) {
	// Cubic cost (matrix multiply): t = 2e-9 n^3, with 2% noise. The
	// degree-3 fit must predict within 5% at an unseen size.
	rng := stats.NewRNG(7)
	var samples []Sample
	for n := 100.0; n <= 1000; n += 100 {
		truth := 2e-9 * n * n * n
		samples = append(samples, Sample{Param: n, Time: truth * rng.Jitter(1, 0.02)})
	}
	f, err := Fit(samples, 3)
	if err != nil {
		t.Fatal(err)
	}
	pred := f.Predict(750)
	truth := 2e-9 * 750 * 750 * 750
	if math.Abs(pred-truth)/truth > 0.05 {
		t.Errorf("Predict(750) = %v, truth %v", pred, truth)
	}
	if f.RMSE <= 0 {
		t.Errorf("RMSE = %v", f.RMSE)
	}
}

func TestCalibrate(t *testing.T) {
	// "Benchmark" a function with quadratic cost.
	calls := 0
	bench := func(p float64) float64 {
		calls++
		return 3 + 0.25*p*p
	}
	f, err := Calibrate(bench, []float64{1, 2, 4, 8, 16, 32}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 6 {
		t.Errorf("benchmark called %d times", calls)
	}
	if got := f.Predict(10); math.Abs(got-(3+25)) > 1e-6 {
		t.Errorf("Predict(10) = %v, want 28", got)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := PolyFit([]Sample{{1, 1}}, 2); err == nil {
		t.Error("underdetermined fit accepted")
	}
	if _, err := PolyFit(nil, -1); err == nil {
		t.Error("negative degree accepted")
	}
	// Degenerate: all benchmarks at the same parameter.
	same := []Sample{{5, 1}, {5, 2}, {5, 3}}
	if _, err := PolyFit(same, 1); err == nil {
		t.Error("singular system accepted")
	}
	if _, err := Calibrate(func(float64) float64 { return 1 }, nil, 1); err == nil {
		t.Error("empty calibration accepted")
	}
	if _, err := FitBasis([]float64{1}, []float64{1, 2}, []func(float64) float64{func(x float64) float64 { return 1 }}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FitBasis([]float64{1}, []float64{1}, nil); err == nil {
		t.Error("empty basis accepted")
	}
}

func TestFitBasisNonPolynomial(t *testing.T) {
	// y = 2 + 3*log(x), fitted with a {1, log} basis.
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2 + 3*math.Log(x)
	}
	coef, err := FitBasis(xs, ys, []func(float64) float64{
		func(float64) float64 { return 1 },
		math.Log,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coef[0]-2) > 1e-8 || math.Abs(coef[1]-3) > 1e-8 {
		t.Errorf("coef = %v", coef)
	}
}

// Property: for exactly-polynomial data, the fit reproduces the samples.
func TestFitInterpolatesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		truth := Poly{rng.Float64() * 10, rng.Float64() * 5, rng.Float64()}
		var samples []Sample
		for i := 0; i < 12; i++ {
			x := 1 + float64(i)
			samples = append(samples, Sample{Param: x, Time: truth.Eval(x)})
		}
		got, err := PolyFit(samples, 2)
		if err != nil {
			return false
		}
		for _, s := range samples {
			if math.Abs(got.Eval(s.Param)-s.Time) > 1e-6*(1+math.Abs(s.Time)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
