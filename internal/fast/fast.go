// Package fast implements the computation-time forecasting approach of
// FAST (Quinson, PMEO-PDS'02), the second related-work system the paper
// discusses (§III-C): functions are benchmarked at install time over a
// representative set of parameters, a polynomial is fitted to the
// measured times, and forecasts for actual parameters come from
// evaluating the fit.
//
// Together with package nws (FAST relied on NWS for resource
// availability) this completes the baseline landscape the paper positions
// Pilgrim against: statistical extrapolation for networks (NWS),
// benchmark-and-fit for computations (FAST), simulation for both
// (Pilgrim + the workflow extension).
package fast

import (
	"errors"
	"fmt"
	"math"
)

// Sample is one benchmark observation: the function ran with Param and
// took Time seconds.
type Sample struct {
	Param float64
	Time  float64
}

// Poly is a polynomial, coefficients from degree 0 upward.
type Poly []float64

// Eval evaluates the polynomial at x (Horner's rule).
func (p Poly) Eval(x float64) float64 {
	out := 0.0
	for i := len(p) - 1; i >= 0; i-- {
		out = out*x + p[i]
	}
	return out
}

// Degree returns the polynomial degree (-1 for an empty polynomial).
func (p Poly) Degree() int { return len(p) - 1 }

// FitBasis solves the least-squares fit ys ≈ Σ c_j basis_j(xs) via the
// normal equations with Gaussian elimination (partial pivoting). It
// returns the coefficients in basis order.
func FitBasis(xs, ys []float64, basis []func(float64) float64) ([]float64, error) {
	n, m := len(xs), len(basis)
	if n != len(ys) {
		return nil, errors.New("fast: xs and ys length mismatch")
	}
	if m == 0 {
		return nil, errors.New("fast: empty basis")
	}
	if n < m {
		return nil, fmt.Errorf("fast: %d samples cannot determine %d coefficients", n, m)
	}
	// Normal equations: (A^T A) c = A^T y.
	ata := make([][]float64, m)
	aty := make([]float64, m)
	for i := range ata {
		ata[i] = make([]float64, m)
	}
	for k := 0; k < n; k++ {
		row := make([]float64, m)
		for j, b := range basis {
			row[j] = b(xs[k])
		}
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				ata[i][j] += row[i] * row[j]
			}
			aty[i] += row[i] * ys[k]
		}
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < m; col++ {
		pivot := col
		for r := col + 1; r < m; r++ {
			if math.Abs(ata[r][col]) > math.Abs(ata[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(ata[pivot][col]) < 1e-12 {
			return nil, errors.New("fast: singular system (degenerate benchmark parameters)")
		}
		ata[col], ata[pivot] = ata[pivot], ata[col]
		aty[col], aty[pivot] = aty[pivot], aty[col]
		inv := 1 / ata[col][col]
		for r := col + 1; r < m; r++ {
			f := ata[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < m; c++ {
				ata[r][c] -= f * ata[col][c]
			}
			aty[r] -= f * aty[col]
		}
	}
	coef := make([]float64, m)
	for i := m - 1; i >= 0; i-- {
		s := aty[i]
		for j := i + 1; j < m; j++ {
			s -= ata[i][j] * coef[j]
		}
		coef[i] = s / ata[i][i]
	}
	return coef, nil
}

// PolyFit fits a polynomial of the given degree to the samples.
func PolyFit(samples []Sample, degree int) (Poly, error) {
	if degree < 0 {
		return nil, errors.New("fast: negative degree")
	}
	xs := make([]float64, len(samples))
	ys := make([]float64, len(samples))
	for i, s := range samples {
		xs[i] = s.Param
		ys[i] = s.Time
	}
	basis := make([]func(float64) float64, degree+1)
	for j := range basis {
		j := j
		basis[j] = func(x float64) float64 { return math.Pow(x, float64(j)) }
	}
	coef, err := FitBasis(xs, ys, basis)
	if err != nil {
		return nil, err
	}
	return Poly(coef), nil
}

// Forecaster predicts computation times for one benchmarked function.
type Forecaster struct {
	poly Poly
	// RMSE is the root-mean-square residual of the fit over the
	// calibration samples, a confidence indicator.
	RMSE float64
}

// Calibrate benchmarks fn at the given parameters (FAST's install-time
// step) and fits a polynomial of the given degree.
func Calibrate(fn func(param float64) float64, params []float64, degree int) (*Forecaster, error) {
	if len(params) == 0 {
		return nil, errors.New("fast: no calibration parameters")
	}
	samples := make([]Sample, len(params))
	for i, p := range params {
		samples[i] = Sample{Param: p, Time: fn(p)}
	}
	return Fit(samples, degree)
}

// Fit builds a forecaster from existing benchmark samples.
func Fit(samples []Sample, degree int) (*Forecaster, error) {
	poly, err := PolyFit(samples, degree)
	if err != nil {
		return nil, err
	}
	sq := 0.0
	for _, s := range samples {
		d := poly.Eval(s.Param) - s.Time
		sq += d * d
	}
	return &Forecaster{poly: poly, RMSE: math.Sqrt(sq / float64(len(samples)))}, nil
}

// Predict forecasts the computation time for the actual parameter.
func (f *Forecaster) Predict(param float64) float64 { return f.poly.Eval(param) }

// Poly returns the fitted polynomial.
func (f *Forecaster) Poly() Poly { return f.poly }
