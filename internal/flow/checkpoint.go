package flow

// Checkpoint/Restore give the simulation layer warm-start forking: a base
// scenario's solver state is captured once and each what-if overlay
// restores it in O(state), then re-solves only the constraints whose
// capacities the overlay actually changed (SetCapacity no-ops on equal
// values, so re-asserting every capacity dirties nothing but the delta).
//
// A checkpoint is a self-contained value copy — ids, weights, bounds,
// capacities, allocated rates, attachment lists (in attachment order),
// creation serials, and the pending dirty sets — everything that feeds
// Solve's arithmetic or its deterministic ordering. Scratch fields (epoch
// marks, per-solve fill levels and work lists) are deliberately excluded:
// they are rebuilt by the next Solve and never influence results. Caller
// backreferences (Variable.Data) are also excluded; Restore returns the
// rebuilt variables and constraints in checkpoint order so the caller can
// re-link its own side.

// cpVar is the captured state of one Variable. Constraint attachments are
// stored as indices into the checkpoint's constraint list.
type cpVar struct {
	id     string
	weight float64
	bound  float64
	value  float64
	fixed  bool
	serial uint64
	cnsts  []int32
	dirty  bool
}

// cpCnst is the captured state of one Constraint. Crossing variables are
// stored as indices into the checkpoint's variable list, in attachment
// order (the order weight summations visit them).
type cpCnst struct {
	id       string
	capacity float64
	used     float64
	serial   uint64
	vars     []int32
	dirty    bool
}

// Checkpoint is a compact, immutable copy of a System's logical state.
// It is independent of the system it was taken from: the source can keep
// mutating (or be Reset) and any number of systems can Restore from it.
type Checkpoint struct {
	serial       uint64
	solved       bool
	allDirty     bool
	solves       int
	lastTouched  int
	totalTouched int
	vars         []cpVar
	cnsts        []cpCnst
}

// NumVariables returns how many variables the checkpoint holds.
func (ck *Checkpoint) NumVariables() int { return len(ck.vars) }

// NumConstraints returns how many constraints the checkpoint holds.
func (ck *Checkpoint) NumConstraints() int { return len(ck.cnsts) }

// Checkpoint captures the system's current logical state. The variable
// (resp. constraint) order of the capture is the order of Variables()
// (resp. Constraints()), so callers can record side mappings by index.
func (s *System) Checkpoint() *Checkpoint {
	ck := &Checkpoint{
		serial:       s.serial,
		solved:       s.solved,
		allDirty:     s.allDirty,
		solves:       s.solves,
		lastTouched:  s.lastTouched,
		totalTouched: s.totalTouched,
		vars:         make([]cpVar, len(s.vars)),
		cnsts:        make([]cpCnst, len(s.cnsts)),
	}
	cidx := make(map[*Constraint]int32, len(s.cnsts))
	for i, c := range s.cnsts {
		cidx[c] = int32(i)
	}
	for i, v := range s.vars {
		cv := &ck.vars[i]
		cv.id, cv.weight, cv.bound, cv.value = v.id, v.weight, v.bound, v.value
		cv.fixed, cv.serial = v.fixed, v.serial
		if len(v.cnsts) > 0 {
			cv.cnsts = make([]int32, len(v.cnsts))
			for j, c := range v.cnsts {
				cv.cnsts[j] = cidx[c]
			}
		}
	}
	for i, c := range s.cnsts {
		cc := &ck.cnsts[i]
		cc.id, cc.capacity, cc.used, cc.serial = c.id, c.capacity, c.used, c.serial
		if len(c.vars) > 0 {
			cc.vars = make([]int32, len(c.vars))
			for j, v := range c.vars {
				cc.vars[j] = int32(v.index)
			}
		}
	}
	// Pending dirty sets: membership flags, deduplicated. Seeds only feed
	// the closure traversal (collected sets are re-sorted by serial), so
	// membership, not order or multiplicity, is what must survive.
	for _, v := range s.dirtyVars {
		if v.sys == s { // skip variables removed after being dirtied
			ck.vars[v.index].dirty = true
		}
	}
	for _, c := range s.dirtyCnsts {
		if i, ok := cidx[c]; ok {
			ck.cnsts[i].dirty = true
		}
	}
	return ck
}

// Restore replaces the system's contents with the checkpointed state.
// Existing variables and constraints are dropped (their structs recycled,
// as in Reset). The rebuilt variables and constraints are returned in
// checkpoint order — the Variables()/Constraints() order at capture time —
// so the caller can re-attach its Data backreferences.
//
// A restored system continues bit-identically to the captured one: same
// serials, same attachment and iteration orders, same pending dirty sets,
// same allocated rates for untouched components.
func (s *System) Restore(ck *Checkpoint) (vars []*Variable, cnsts []*Constraint) {
	s.Reset()
	cnsts = make([]*Constraint, len(ck.cnsts))
	for i := range ck.cnsts {
		cc := &ck.cnsts[i]
		var c *Constraint
		if n := len(s.conFree); n > 0 {
			c = s.conFree[n-1]
			s.conFree[n-1] = nil
			s.conFree = s.conFree[:n-1]
			cv, act := c.vars[:0], c.active[:0]
			*c = Constraint{id: cc.id, capacity: cc.capacity, used: cc.used, serial: cc.serial, vars: cv, active: act}
		} else {
			c = &Constraint{id: cc.id, capacity: cc.capacity, used: cc.used, serial: cc.serial}
		}
		cnsts[i] = c
		s.cnsts = append(s.cnsts, c)
	}
	vars = make([]*Variable, len(ck.vars))
	for i := range ck.vars {
		cv := &ck.vars[i]
		var v *Variable
		if n := len(s.varFree); n > 0 {
			v = s.varFree[n-1]
			s.varFree[n-1] = nil
			s.varFree = s.varFree[:n-1]
			cn := v.cnsts[:0]
			*v = Variable{id: cv.id, weight: cv.weight, bound: cv.bound, value: cv.value, fixed: cv.fixed, cnsts: cn, sys: s, index: i, serial: cv.serial}
		} else {
			v = &Variable{id: cv.id, weight: cv.weight, bound: cv.bound, value: cv.value, fixed: cv.fixed, sys: s, index: i, serial: cv.serial}
		}
		for _, ci := range cv.cnsts {
			v.cnsts = append(v.cnsts, cnsts[ci])
		}
		vars[i] = v
		s.vars = append(s.vars, v)
	}
	for i := range ck.cnsts {
		c := cnsts[i]
		for _, vi := range ck.cnsts[i].vars {
			c.vars = append(c.vars, vars[vi])
		}
	}
	for i := range ck.vars {
		if ck.vars[i].dirty {
			s.dirtyVars = append(s.dirtyVars, vars[i])
		}
	}
	for i := range ck.cnsts {
		if ck.cnsts[i].dirty {
			s.dirtyCnsts = append(s.dirtyCnsts, cnsts[i])
		}
	}
	s.serial = ck.serial
	s.solved = ck.solved
	s.allDirty = ck.allDirty
	s.solves = ck.solves
	s.lastTouched = ck.lastTouched
	s.totalTouched = ck.totalTouched
	s.touched = nil
	return vars, cnsts
}

// Fork returns a new independent System restored from the receiver's
// current state, along with the forked variables and constraints in
// Variables()/Constraints() order. Equivalent to Restore(Checkpoint())
// on a fresh system; the receiver is left untouched.
func (s *System) Fork() (*System, []*Variable, []*Constraint) {
	ns := NewSystem()
	vars, cnsts := ns.Restore(s.Checkpoint())
	return ns, vars, cnsts
}
