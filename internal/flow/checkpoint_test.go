package flow

import (
	"math"
	"testing"

	"pilgrim/internal/stats"
)

// applyScriptedOps applies n random mutations driven by g. Because g is
// deterministic and every choice depends only on the system's live lists
// (which evolve identically on two systems in the same logical state),
// replaying with an equal-seeded RNG applies the identical script.
func applyScriptedOps(t *testing.T, s *System, g *stats.RNG, n int) {
	t.Helper()
	for op := 0; op < n; op++ {
		r := g.Float64()
		switch {
		case r < 0.25 && len(s.Variables()) > 0:
			s.RemoveVariable(s.Variables()[g.Intn(len(s.Variables()))])
		case r < 0.40 && len(s.Variables()) > 0:
			s.SetBound(s.Variables()[g.Intn(len(s.Variables()))], 0.5+g.Float64()*30)
		case r < 0.55 && len(s.Constraints()) > 0:
			s.SetCapacity(s.Constraints()[g.Intn(len(s.Constraints()))], 10+g.Float64()*150)
		case r < 0.65:
			if err := s.Solve(); err != nil {
				t.Fatalf("mid-script solve: %v", err)
			}
		default:
			bound := 0.0
			if g.Float64() < 0.3 {
				bound = 0.5 + g.Float64()*20
			}
			cs := s.Constraints()
			k := 1 + g.Intn(3)
			if k > len(cs) {
				k = len(cs)
			}
			picked := make([]*Constraint, 0, k)
			for _, ci := range g.Sample(len(cs), k) {
				picked = append(picked, cs[ci])
			}
			s.AddVariable("", 0.1+g.Float64()*9.9, bound, picked...)
		}
	}
}

func requireSameState(t *testing.T, a, b *System, ctx string) {
	t.Helper()
	if len(a.Variables()) != len(b.Variables()) || len(a.Constraints()) != len(b.Constraints()) {
		t.Fatalf("%s: shape mismatch: %d/%d vars, %d/%d cnsts", ctx,
			len(a.Variables()), len(b.Variables()), len(a.Constraints()), len(b.Constraints()))
	}
	for i, va := range a.Variables() {
		vb := b.Variables()[i]
		if math.Float64bits(va.Rate()) != math.Float64bits(vb.Rate()) {
			t.Fatalf("%s: var %d (%s): rate %v != %v", ctx, i, va.ID(), va.Rate(), vb.Rate())
		}
		if va.ID() != vb.ID() || math.Float64bits(va.Bound()) != math.Float64bits(vb.Bound()) || va.Weight() != vb.Weight() {
			t.Fatalf("%s: var %d identity mismatch", ctx, i)
		}
		if len(va.Constraints()) != len(vb.Constraints()) {
			t.Fatalf("%s: var %d attachment count mismatch", ctx, i)
		}
	}
	for i, ca := range a.Constraints() {
		cb := b.Constraints()[i]
		if math.Float64bits(ca.Usage()) != math.Float64bits(cb.Usage()) {
			t.Fatalf("%s: cnst %d (%s): usage %v != %v", ctx, i, ca.ID(), ca.Usage(), cb.Usage())
		}
		if ca.Capacity() != cb.Capacity() || len(ca.Variables()) != len(cb.Variables()) {
			t.Fatalf("%s: cnst %d identity mismatch", ctx, i)
		}
	}
}

// TestCheckpointRestoreContinuation forks a randomly evolved system at a
// random point and verifies that the original and the restored copy stay
// bit-identical under an identical continuation script — the property the
// differential evaluation path relies on.
func TestCheckpointRestoreContinuation(t *testing.T) {
	for seed := int64(1); seed <= 45; seed++ {
		g := stats.NewRNG(seed)
		s := NewSystem()
		for i, nc := 0, 3+g.Intn(6); i < nc; i++ {
			s.NewConstraint("", 50+g.Float64()*100)
		}
		applyScriptedOps(t, s, g, 5+g.Intn(25))
		if g.Float64() < 0.7 {
			if err := s.Solve(); err != nil {
				t.Fatalf("seed %d: pre-checkpoint solve: %v", seed, err)
			}
		}

		ck := s.Checkpoint()
		s2 := NewSystem()
		s2.Restore(ck)
		requireSameState(t, s, s2, "seed post-restore")

		// Same continuation on both; equal seeds make equal scripts.
		cont := seed*1009 + 7
		applyScriptedOps(t, s, stats.NewRNG(cont), 25)
		applyScriptedOps(t, s2, stats.NewRNG(cont), 25)
		if err := s.Solve(); err != nil {
			t.Fatalf("seed %d: original solve: %v", seed, err)
		}
		if err := s2.Solve(); err != nil {
			t.Fatalf("seed %d: restored solve: %v", seed, err)
		}
		requireSameState(t, s, s2, "seed post-continuation")
		if s.Solves() != s2.Solves() || s.LastTouched() != s2.LastTouched() {
			t.Fatalf("seed %d: solver stats diverged: %d/%d solves, %d/%d touched",
				seed, s.Solves(), s2.Solves(), s.LastTouched(), s2.LastTouched())
		}

		// A third system restored from the same checkpoint after the
		// original moved on proves checkpoint immutability.
		s3 := NewSystem()
		s3.Restore(ck)
		applyScriptedOps(t, s3, stats.NewRNG(cont), 25)
		if err := s3.Solve(); err != nil {
			t.Fatalf("seed %d: late-restore solve: %v", seed, err)
		}
		requireSameState(t, s, s3, "seed late-restore")
	}
}

// TestSetCapacityDirtiesOnlyChanges pins the SetCapacity contract: equal
// re-assertions leave the system solved, actual changes re-solve only the
// disturbed component.
func TestSetCapacityDirtiesOnlyChanges(t *testing.T) {
	s := NewSystem()
	c1 := s.NewConstraint("c1", 100)
	c2 := s.NewConstraint("c2", 100)
	s.AddVariable("a", 1, 0, c1)
	s.AddVariable("b", 1, 0, c2)
	if err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	if s.SetCapacity(c1, 100) {
		t.Fatal("equal capacity reported as a change")
	}
	if !s.Solved() {
		t.Fatal("equal-capacity re-assert dirtied the system")
	}
	if !s.SetCapacity(c1, 50) {
		t.Fatal("changed capacity not reported")
	}
	if err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	if s.LastTouched() != 1 {
		t.Fatalf("capacity change on c1 touched %d variables, want 1", s.LastTouched())
	}
	if got := s.Variables()[0].Rate(); got != 50 {
		t.Fatalf("rate after capacity change = %v, want 50", got)
	}
	if got := s.Variables()[1].Rate(); got != 100 {
		t.Fatalf("untouched component rate = %v, want 100", got)
	}
}

// TestForkIndependence verifies a fork and its source evolve independently.
func TestForkIndependence(t *testing.T) {
	s := NewSystem()
	c := s.NewConstraint("link", 100)
	s.AddVariable("a", 1, 0, c)
	s.AddVariable("b", 1, 0, c)
	if err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	fork, vars, cnsts := s.Fork()
	if len(vars) != 2 || len(cnsts) != 1 {
		t.Fatalf("fork shape: %d vars, %d cnsts", len(vars), len(cnsts))
	}
	fork.SetCapacity(cnsts[0], 10)
	if err := fork.Solve(); err != nil {
		t.Fatal(err)
	}
	if vars[0].Rate() != 5 || vars[1].Rate() != 5 {
		t.Fatalf("fork rates = %v, %v, want 5, 5", vars[0].Rate(), vars[1].Rate())
	}
	if s.Variables()[0].Rate() != 50 || c.Capacity() != 100 {
		t.Fatal("mutating the fork disturbed the source system")
	}
}
