package flow

import (
	"math"
	"testing"
	"testing/quick"

	"pilgrim/internal/stats"
)

// scratchClone rebuilds the live structure of s as a fresh system, so a
// from-scratch solve can be compared against incremental solving. The
// returned variables are index-aligned with s.Variables().
func scratchClone(s *System) (*System, []*Variable) {
	clone := NewSystem()
	cmap := make(map[*Constraint]*Constraint, len(s.Constraints()))
	for _, c := range s.Constraints() {
		cmap[c] = clone.NewConstraint(c.ID(), c.Capacity())
	}
	vars := make([]*Variable, len(s.Variables()))
	for i, v := range s.Variables() {
		bound := 0.0
		if !math.IsInf(v.Bound(), 1) {
			bound = v.Bound()
		}
		nv := clone.NewVariable(v.ID(), v.Weight(), bound)
		for _, c := range v.Constraints() {
			clone.MustAttach(nv, cmap[c])
		}
		vars[i] = nv
	}
	return clone, vars
}

// mutateRandomly applies n random add/remove/rebound operations to s.
func mutateRandomly(s *System, g *stats.RNG, n int) {
	for op := 0; op < n; op++ {
		switch {
		case g.Float64() < 0.35 && len(s.Variables()) > 0:
			s.RemoveVariable(s.Variables()[g.Intn(len(s.Variables()))])
		case g.Float64() < 0.2 && len(s.Variables()) > 0:
			s.SetBound(s.Variables()[g.Intn(len(s.Variables()))], 0.5+g.Float64()*30)
		default:
			bound := 0.0
			if g.Float64() < 0.3 {
				bound = 0.5 + g.Float64()*20
			}
			cs := s.Constraints()
			k := 1 + g.Intn(3)
			if k > len(cs) {
				k = len(cs)
			}
			picked := make([]*Constraint, 0, k)
			for _, ci := range g.Sample(len(cs), k) {
				picked = append(picked, cs[ci])
			}
			s.AddVariable("v", 0.1+g.Float64()*9.9, bound, picked...)
		}
	}
}

// Property (the tentpole's correctness contract): after any random
// sequence of AddVariable / RemoveVariable / SetBound mutations, the
// incremental Solve produces the same allocation as a from-scratch solve
// of an identically structured fresh system, within 1e-9 relative.
func TestIncrementalMatchesScratch(t *testing.T) {
	f := func(seed int64) bool {
		g := stats.NewRNG(seed)
		s := NewSystem()
		for i := 0; i < 6; i++ {
			s.NewConstraint("c", 1+g.Float64()*99)
		}
		mutateRandomly(s, g, 10)
		if err := s.Solve(); err != nil {
			return false
		}
		// Several rounds of mutation + incremental solve.
		for round := 0; round < 4; round++ {
			mutateRandomly(s, g, 3)
			if err := s.Solve(); err != nil {
				return false
			}
			scratch, svars := scratchClone(s)
			if err := scratch.Solve(); err != nil {
				return false
			}
			for i, v := range s.Variables() {
				want := svars[i].Rate()
				got := v.Rate()
				tol := 1e-9 * math.Max(1, math.Abs(want))
				if math.Abs(got-want) > tol {
					t.Logf("seed %d round %d: var %d incremental %v scratch %v",
						seed, round, i, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Regression: flows in components untouched by a mutation keep their
// previous allocation bit-for-bit (no recomputation noise), and the
// solver reports having touched only the disturbed component.
func TestUntouchedFlowsBitIdentical(t *testing.T) {
	s := NewSystem()
	// Component A: two flows on one link.
	ca := s.NewConstraint("A", 0.92*125e6)
	a1 := s.AddVariable("a1", 1/4.16e-3, 0, ca)
	a2 := s.AddVariable("a2", 1/5.096e-2, 0, ca)
	// Component B: three flows on two links, disjoint from A.
	cb1 := s.NewConstraint("B1", 73.5e6)
	cb2 := s.NewConstraint("B2", 41.2e6)
	b1 := s.AddVariable("b1", 1/0.003, 0, cb1, cb2)
	b2 := s.AddVariable("b2", 1/0.007, 0, cb1)
	b3 := s.AddVariable("b3", 1/0.011, 19.9e6, cb2)
	if err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	before := map[*Variable]float64{b1: b1.Rate(), b2: b2.Rate(), b3: b3.Rate()}
	beforeUse := []float64{cb1.Usage(), cb2.Usage()}

	// Disturb only component A: a new contender plus a removal.
	a3 := s.AddVariable("a3", 1/0.002, 0, ca)
	s.RemoveVariable(a2)
	if err := s.Solve(); err != nil {
		t.Fatal(err)
	}

	if got := s.LastTouched(); got != 2 {
		t.Errorf("LastTouched = %d, want 2 (a1 and a3 only)", got)
	}
	for v, want := range before {
		if got := v.Rate(); got != want {
			t.Errorf("untouched flow %s: rate %v != previous %v (must be bit-identical)",
				v.ID(), got, want)
		}
	}
	if cb1.Usage() != beforeUse[0] || cb2.Usage() != beforeUse[1] {
		t.Errorf("untouched constraint usage drifted: %v,%v != %v,%v",
			cb1.Usage(), cb2.Usage(), beforeUse[0], beforeUse[1])
	}
	// And component A did change: a1 now shares with a3.
	if a1.Rate() >= 0.92*125e6*(1-1e-9) {
		t.Errorf("a1 = %v, should be sharing with a3", a1.Rate())
	}
	if a3.Rate() <= 0 {
		t.Errorf("a3 = %v, want > 0", a3.Rate())
	}
}

// RemoveVariable must return its capacity to the surviving flows.
func TestRemoveVariableFreesCapacity(t *testing.T) {
	s := NewSystem()
	c := s.NewConstraint("link", 100)
	v1 := s.AddVariable("v1", 1, 0, c)
	v2 := s.AddVariable("v2", 1, 0, c)
	if err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(v1.Rate()-50) > 1e-9 {
		t.Fatalf("shared rate = %v, want 50", v1.Rate())
	}
	s.RemoveVariable(v2)
	if err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(v1.Rate()-100) > 1e-9 {
		t.Errorf("solo rate after removal = %v, want 100", v1.Rate())
	}
	if len(s.Variables()) != 1 {
		t.Errorf("system holds %d variables, want 1", len(s.Variables()))
	}
}

// SetBound with an unchanged value must not dirty the system; with a new
// value it must re-solve the component.
func TestSetBoundDirtiesOnlyOnChange(t *testing.T) {
	s := NewSystem()
	c := s.NewConstraint("link", 100)
	v := s.AddVariable("v", 1, 30, c)
	free := s.AddVariable("free", 1, 0, c)
	if err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	solves := s.Solves()
	s.SetBound(v, 30) // no change
	if !s.Solved() {
		t.Error("unchanged SetBound dirtied the system")
	}
	if err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	if s.Solves() != solves {
		t.Error("no-op Solve recomputed")
	}
	s.SetBound(v, 10)
	if s.Solved() {
		t.Error("changed SetBound left the system solved")
	}
	if err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(v.Rate()-10) > 1e-9 || math.Abs(free.Rate()-90) > 1e-9 {
		t.Errorf("rates after rebound = %v, %v, want 10, 90", v.Rate(), free.Rate())
	}
}

// Solver statistics must account variables touched per solve.
func TestSolverStats(t *testing.T) {
	s := NewSystem()
	c1 := s.NewConstraint("c1", 10)
	c2 := s.NewConstraint("c2", 10)
	s.AddVariable("x", 1, 0, c1)
	s.AddVariable("y", 1, 0, c2)
	if err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	if s.Solves() != 1 || s.LastTouched() != 2 || s.TotalTouched() != 2 {
		t.Errorf("after full solve: solves=%d last=%d total=%d",
			s.Solves(), s.LastTouched(), s.TotalTouched())
	}
	s.AddVariable("z", 1, 0, c2)
	if err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	if s.Solves() != 2 || s.LastTouched() != 2 || s.TotalTouched() != 4 {
		t.Errorf("after incremental solve: solves=%d last=%d total=%d (want 2, 2, 4)",
			s.Solves(), s.LastTouched(), s.TotalTouched())
	}
}

// Removing a variable twice (or from the wrong system) must panic loudly
// rather than corrupt membership.
func TestRemoveVariableMisusePanics(t *testing.T) {
	s := NewSystem()
	c := s.NewConstraint("c", 1)
	v := s.AddVariable("v", 1, 0, c)
	s.RemoveVariable(v)
	defer func() {
		if recover() == nil {
			t.Error("double remove did not panic")
		}
	}()
	s.RemoveVariable(v)
}

// An unbounded, unconstrained variable introduced by a mutation must
// still be rejected by the incremental solve path.
func TestIncrementalUnboundedVariableError(t *testing.T) {
	s := NewSystem()
	c := s.NewConstraint("c", 1)
	s.AddVariable("ok", 1, 0, c)
	if err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	s.NewVariable("lonely", 1, 0)
	if err := s.Solve(); err == nil {
		t.Fatal("expected ErrUnboundedVariable from incremental solve")
	}
}

// BenchmarkIncrementalChurn measures the tentpole's hot pattern: a large
// stable population with one flow leaving and one arriving per solve —
// the engine's per-event workload.
func BenchmarkIncrementalChurn(b *testing.B) {
	g := stats.NewRNG(11)
	s := NewSystem()
	cs := make([]*Constraint, 400)
	for i := range cs {
		cs[i] = s.NewConstraint("c", 50+g.Float64()*100)
	}
	pickTwo := func() (*Constraint, *Constraint) {
		i := g.Intn(len(cs))
		j := (i + 1 + g.Intn(len(cs)-1)) % len(cs)
		return cs[i], cs[j]
	}
	for i := 0; i < 800; i++ {
		c1, c2 := pickTwo()
		s.AddVariable("v", 0.1+g.Float64()*9.9, 0, c1, c2)
	}
	if err := s.Solve(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vs := s.Variables()
		s.RemoveVariable(vs[g.Intn(len(vs))])
		c1, c2 := pickTwo()
		s.AddVariable("v", 0.1+g.Float64()*9.9, 0, c1, c2)
		if err := s.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}
