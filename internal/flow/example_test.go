package flow_test

import (
	"fmt"

	"pilgrim/internal/flow"
)

// Two TCP flows with different round-trip times share one link: the
// RTT-aware max-min model gives each a share proportional to 1/RTT.
func ExampleSystem_Solve() {
	s := flow.NewSystem()
	link := s.NewConstraint("bottleneck", 100e6) // 100 MB/s

	near := s.NewVariable("near", 1/0.001, 0) // RTT 1 ms
	far := s.NewVariable("far", 1/0.004, 0)   // RTT 4 ms
	s.MustAttach(near, link)
	s.MustAttach(far, link)

	if err := s.Solve(); err != nil {
		fmt.Println("solve:", err)
		return
	}
	fmt.Printf("near: %.0f MB/s\n", near.Rate()/1e6)
	fmt.Printf("far:  %.0f MB/s\n", far.Rate()/1e6)
	fmt.Printf("link saturated: %v\n", link.Saturated())
	// Output:
	// near: 80 MB/s
	// far:  20 MB/s
	// link saturated: true
}

// The incremental API: one long-lived system where flows come and go.
// Re-solving after a mutation touches only the components the change
// disturbed — here removing a flow from the saturated link re-solves
// that link's flows, while the flow on the other link keeps its
// allocation without being recomputed.
func ExampleSystem_RemoveVariable() {
	s := flow.NewSystem()
	shared := s.NewConstraint("shared", 100e6)
	other := s.NewConstraint("other", 10e6)

	f1 := s.AddVariable("f1", 1, 0, shared)
	f2 := s.AddVariable("f2", 1, 0, shared)
	lone := s.AddVariable("lone", 1, 0, other)
	if err := s.Solve(); err != nil {
		fmt.Println("solve:", err)
		return
	}
	fmt.Printf("f1: %.0f MB/s, lone: %.0f MB/s (touched %d)\n",
		f1.Rate()/1e6, lone.Rate()/1e6, s.LastTouched())

	s.RemoveVariable(f2) // f2 completes: its bandwidth goes back to f1
	if err := s.Solve(); err != nil {
		fmt.Println("solve:", err)
		return
	}
	fmt.Printf("f1: %.0f MB/s, lone: %.0f MB/s (touched %d)\n",
		f1.Rate()/1e6, lone.Rate()/1e6, s.LastTouched())
	// Output:
	// f1: 50 MB/s, lone: 10 MB/s (touched 3)
	// f1: 100 MB/s, lone: 10 MB/s (touched 1)
}
