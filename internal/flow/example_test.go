package flow_test

import (
	"fmt"

	"pilgrim/internal/flow"
)

// Two TCP flows with different round-trip times share one link: the
// RTT-aware max-min model gives each a share proportional to 1/RTT.
func ExampleSystem_Solve() {
	s := flow.NewSystem()
	link := s.NewConstraint("bottleneck", 100e6) // 100 MB/s

	near := s.NewVariable("near", 1/0.001, 0) // RTT 1 ms
	far := s.NewVariable("far", 1/0.004, 0)   // RTT 4 ms
	s.MustAttach(near, link)
	s.MustAttach(far, link)

	if err := s.Solve(); err != nil {
		fmt.Println("solve:", err)
		return
	}
	fmt.Printf("near: %.0f MB/s\n", near.Rate()/1e6)
	fmt.Printf("far:  %.0f MB/s\n", far.Rate()/1e6)
	fmt.Printf("link saturated: %v\n", link.Saturated())
	// Output:
	// near: 80 MB/s
	// far:  20 MB/s
	// link saturated: true
}
