package flow

import (
	"math"
	"testing"
	"testing/quick"

	"pilgrim/internal/stats"
)

func solve(t *testing.T, s *System) {
	t.Helper()
	if err := s.Solve(); err != nil {
		t.Fatalf("Solve: %v", err)
	}
}

func TestSingleLinkEqualWeights(t *testing.T) {
	s := NewSystem()
	c := s.NewConstraint("link", 100)
	var vs []*Variable
	for i := 0; i < 4; i++ {
		v := s.NewVariable("f", 1, 0)
		s.MustAttach(v, c)
		vs = append(vs, v)
	}
	solve(t, s)
	for _, v := range vs {
		if math.Abs(v.Rate()-25) > 1e-9 {
			t.Errorf("rate = %v, want 25", v.Rate())
		}
	}
	if !c.Saturated() {
		t.Error("link should be saturated")
	}
}

func TestSingleLinkWeightedShares(t *testing.T) {
	// RTT-aware sharing: weights 1/RTT. RTTs 1ms and 10ms on a 110 MB/s
	// link must yield a 10:1 split.
	s := NewSystem()
	c := s.NewConstraint("link", 110)
	fast := s.NewVariable("fast", 1/0.001, 0)
	slow := s.NewVariable("slow", 1/0.010, 0)
	s.MustAttach(fast, c)
	s.MustAttach(slow, c)
	solve(t, s)
	if math.Abs(fast.Rate()-100) > 1e-6 {
		t.Errorf("fast = %v, want 100", fast.Rate())
	}
	if math.Abs(slow.Rate()-10) > 1e-6 {
		t.Errorf("slow = %v, want 10", slow.Rate())
	}
}

func TestBoundBeatsShare(t *testing.T) {
	// One flow window-bound at 10, the other takes the rest.
	s := NewSystem()
	c := s.NewConstraint("link", 100)
	bounded := s.NewVariable("b", 1, 10)
	free := s.NewVariable("f", 1, 0)
	s.MustAttach(bounded, c)
	s.MustAttach(free, c)
	solve(t, s)
	if math.Abs(bounded.Rate()-10) > 1e-9 {
		t.Errorf("bounded = %v, want 10", bounded.Rate())
	}
	if math.Abs(free.Rate()-90) > 1e-9 {
		t.Errorf("free = %v, want 90", free.Rate())
	}
}

func TestMultiHopBottleneck(t *testing.T) {
	// f1 crosses A(100)+B(10); f2 crosses A only. f1 is limited to 10 by
	// B, f2 gets the rest of A.
	s := NewSystem()
	a := s.NewConstraint("A", 100)
	b := s.NewConstraint("B", 10)
	f1 := s.NewVariable("f1", 1, 0)
	f2 := s.NewVariable("f2", 1, 0)
	s.MustAttach(f1, a)
	s.MustAttach(f1, b)
	s.MustAttach(f2, a)
	solve(t, s)
	if math.Abs(f1.Rate()-10) > 1e-9 {
		t.Errorf("f1 = %v, want 10", f1.Rate())
	}
	if math.Abs(f2.Rate()-90) > 1e-9 {
		t.Errorf("f2 = %v, want 90", f2.Rate())
	}
}

func TestClassicMaxMinTriangle(t *testing.T) {
	// Canonical example: links L1(1) and L2(1). f0 crosses both, f1 only
	// L1, f2 only L2. Max-min: f0=0.5, f1=0.5, f2=0.5.
	s := NewSystem()
	l1 := s.NewConstraint("L1", 1)
	l2 := s.NewConstraint("L2", 1)
	f0 := s.NewVariable("f0", 1, 0)
	f1 := s.NewVariable("f1", 1, 0)
	f2 := s.NewVariable("f2", 1, 0)
	s.MustAttach(f0, l1)
	s.MustAttach(f0, l2)
	s.MustAttach(f1, l1)
	s.MustAttach(f2, l2)
	solve(t, s)
	for _, v := range []*Variable{f0, f1, f2} {
		if math.Abs(v.Rate()-0.5) > 1e-9 {
			t.Errorf("%s = %v, want 0.5", v.ID(), v.Rate())
		}
	}
}

func TestUnboundedVariableError(t *testing.T) {
	s := NewSystem()
	s.NewVariable("lonely", 1, 0)
	if err := s.Solve(); err == nil {
		t.Fatal("expected ErrUnboundedVariable")
	}
}

func TestVariableWithBoundOnly(t *testing.T) {
	s := NewSystem()
	v := s.NewVariable("v", 1, 42)
	solve(t, s)
	if v.Rate() != 42 {
		t.Errorf("rate = %v, want 42", v.Rate())
	}
}

func TestZeroCapacityConstraint(t *testing.T) {
	s := NewSystem()
	c := s.NewConstraint("dead", 0)
	v := s.NewVariable("v", 1, 0)
	s.MustAttach(v, c)
	solve(t, s)
	if v.Rate() != 0 {
		t.Errorf("rate = %v, want 0", v.Rate())
	}
}

func TestDoubleAttachRejected(t *testing.T) {
	s := NewSystem()
	c := s.NewConstraint("c", 1)
	v := s.NewVariable("v", 1, 0)
	if err := s.Attach(v, c); err != nil {
		t.Fatal(err)
	}
	if err := s.Attach(v, c); err == nil {
		t.Fatal("second attach should fail")
	}
}

func TestResolveAfterMutation(t *testing.T) {
	s := NewSystem()
	c := s.NewConstraint("link", 100)
	v1 := s.NewVariable("v1", 1, 0)
	s.MustAttach(v1, c)
	solve(t, s)
	if v1.Rate() != 100 {
		t.Fatalf("solo rate = %v", v1.Rate())
	}
	v2 := s.NewVariable("v2", 1, 0)
	s.MustAttach(v2, c)
	if s.Solved() {
		t.Error("system should be marked unsolved after mutation")
	}
	solve(t, s)
	if math.Abs(v1.Rate()-50) > 1e-9 || math.Abs(v2.Rate()-50) > 1e-9 {
		t.Errorf("rates = %v, %v, want 50, 50", v1.Rate(), v2.Rate())
	}
}

func TestPaperNICSharingExample(t *testing.T) {
	// The sharing phase of the paper's worked example (§IV-C2): two flows
	// leave capricorne-36's 1 Gb/s NIC; the intra-site flow has RTT
	// 4.16e-3 s, the cross-site one 5.096e-2 s (latencies ×10.4). With
	// capacity 0.92*125e6 B/s the intra flow must get ~106.3 MB/s.
	s := NewSystem()
	nic := s.NewConstraint("capricorne-36.nic", 0.92*125e6)
	intra := s.NewVariable("intra", 1/4.16e-3, 0)
	cross := s.NewVariable("cross", 1/5.096e-2, 0)
	s.MustAttach(intra, nic)
	s.MustAttach(cross, nic)
	solve(t, s)
	if got := intra.Rate(); math.Abs(got-106.3e6)/106.3e6 > 0.01 {
		t.Errorf("intra rate = %.4g, want ~106.3e6", got)
	}
	if got := cross.Rate(); math.Abs(got-8.68e6)/8.68e6 > 0.02 {
		t.Errorf("cross rate = %.4g, want ~8.68e6", got)
	}
}

// buildRandomSystem constructs a random feasible system for property tests.
func buildRandomSystem(seed int64, nC, nV int) (*System, bool) {
	g := stats.NewRNG(seed)
	s := NewSystem()
	cs := make([]*Constraint, nC)
	for i := range cs {
		cs[i] = s.NewConstraint("c", 1+g.Float64()*99)
	}
	for i := 0; i < nV; i++ {
		bound := 0.0
		if g.Float64() < 0.3 {
			bound = 0.5 + g.Float64()*20
		}
		v := s.NewVariable("v", 0.1+g.Float64()*9.9, bound)
		k := 1 + g.Intn(3)
		if k > nC {
			k = nC
		}
		for _, ci := range g.Sample(nC, k) {
			s.MustAttach(v, cs[ci])
		}
	}
	return s, true
}

// Property: allocations never violate capacities.
func TestSolveFeasibility(t *testing.T) {
	f := func(seed int64) bool {
		s, _ := buildRandomSystem(seed, 5, 20)
		if err := s.Solve(); err != nil {
			return false
		}
		for _, c := range s.Constraints() {
			total := 0.0
			for _, v := range c.Variables() {
				total += v.Rate()
			}
			if total > c.Capacity()*(1+1e-9)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: every variable is blocked — at its bound or crossing a
// saturated constraint (max-min optimality certificate).
func TestSolveMaxMinBlocking(t *testing.T) {
	f := func(seed int64) bool {
		s, _ := buildRandomSystem(seed, 4, 15)
		if err := s.Solve(); err != nil {
			return false
		}
		for _, v := range s.Variables() {
			atBound := !math.IsInf(v.Bound(), 1) && v.Rate() >= v.Bound()*(1-1e-9)
			blocked := atBound
			for _, c := range v.Constraints() {
				if c.Saturated() {
					blocked = true
					break
				}
			}
			if !blocked {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: rates are non-negative and deterministic across repeat solves.
func TestSolveDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		s, _ := buildRandomSystem(seed, 3, 12)
		if err := s.Solve(); err != nil {
			return false
		}
		first := make([]float64, len(s.Variables()))
		for i, v := range s.Variables() {
			if v.Rate() < 0 {
				return false
			}
			first[i] = v.Rate()
		}
		if err := s.Solve(); err != nil {
			return false
		}
		for i, v := range s.Variables() {
			if v.Rate() != first[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: adding a flow to a link never increases any existing flow's
// rate on simple single-link systems (monotonicity of contention).
func TestContentionMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		g := stats.NewRNG(seed)
		n := 1 + g.Intn(10)
		cap := 10 + g.Float64()*90

		rates := func(k int) []float64 {
			s := NewSystem()
			c := s.NewConstraint("l", cap)
			vs := make([]*Variable, k)
			for i := range vs {
				vs[i] = s.NewVariable("v", 1, 0)
				s.MustAttach(vs[i], c)
			}
			if err := s.Solve(); err != nil {
				return nil
			}
			out := make([]float64, k)
			for i, v := range vs {
				out[i] = v.Rate()
			}
			return out
		}
		a := rates(n)
		b := rates(n + 1)
		if a == nil || b == nil {
			return false
		}
		for i := range a {
			if b[i] > a[i]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSolveSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, _ := buildRandomSystem(42, 5, 20)
		if err := s.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolve30FlowsGridScale(b *testing.B) {
	// Roughly the size of a 30-concurrent-transfer prediction on
	// Grid'5000: ~30 flows × ~6 links each.
	for i := 0; i < b.N; i++ {
		s, _ := buildRandomSystem(7, 180, 30)
		if err := s.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveLarge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, _ := buildRandomSystem(3, 500, 1000)
		if err := s.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}
