// Package flow implements the weighted Max-Min fairness solver at the heart
// of the SimGrid-style fluid network model (the "LMM" — Linear Max-Min —
// system of SimGrid's surf layer, after Casanova & Marchal, INRIA RR-4596,
// and Velho & Legrand, SIMUTools'09).
//
// A System is a bipartite structure of Variables (network flows, with a
// share weight and an optional rate bound) and Constraints (link
// directions, with a capacity in bytes per second). Solve computes the
// weighted max-min allocation by progressive filling: it repeatedly finds
// the bottleneck — the constraint (or variable bound) that saturates first
// when every unfixed variable's rate grows proportionally to its weight —
// fixes the variables it blocks, and continues on the residual system.
//
// The produced allocation satisfies, for every variable v:
//
//   - feasibility: on each constraint, the sum of allocated rates does not
//     exceed the capacity;
//   - max-min optimality: v is blocked, i.e. it sits at its rate bound or
//     crosses at least one saturated constraint, so no rate can be
//     increased without decreasing that of a variable with an equal or
//     smaller rate-to-weight ratio.
//
// A System is persistent and mutable: variables enter with AddVariable (or
// NewVariable plus Attach) and leave with RemoveVariable, while constraint
// membership survives across solves. Solve is incremental — it tracks
// which variables and constraints changed since the previous solve and
// re-solves only the part of the system reachable from them through
// shared constraints (transitively, i.e. the affected connected
// components). Flows in untouched components keep their previous
// allocation bit-for-bit. This mirrors SimGrid's lazy partial invalidation
// of the max-min system (Casanova et al., arXiv:1309.1630) and is what
// lets the simulation kernel pay per event only for the flows an event
// actually disturbs.
//
// RTT-awareness is achieved by the caller setting each flow's weight to
// 1/RTT: on a shared bottleneck, flows then receive bandwidth inversely
// proportional to their round-trip time, which is the empirically observed
// behaviour of competing TCP streams that the SimGrid model captures.
package flow

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Variable is one entity competing for capacity — in the network model,
// one TCP flow. Its rate after Solve is Rate().
type Variable struct {
	id     string
	weight float64
	bound  float64 // +Inf when unbounded
	value  float64
	cnsts  []*Constraint
	fixed  bool

	sys    *System // owning system, nil once removed
	index  int     // position in sys.vars, for O(1) removal
	serial uint64  // creation order, for deterministic solve order
	mark   uint64  // dirty-closure epoch stamp (scratch)
}

// ID returns the identifier given at creation.
func (v *Variable) ID() string { return v.id }

// Weight returns the share weight (callers use 1/RTT).
func (v *Variable) Weight() float64 { return v.weight }

// Bound returns the rate upper bound, +Inf if none.
func (v *Variable) Bound() float64 { return v.bound }

// Rate returns the allocation computed by the last Solve.
func (v *Variable) Rate() float64 { return v.value }

// Constraints returns the constraints this variable crosses.
func (v *Variable) Constraints() []*Constraint { return v.cnsts }

// Constraint is one capacity-limited resource — in the network model, one
// link direction (or a shared half-duplex link).
type Constraint struct {
	id       string
	capacity float64
	vars     []*Variable
	used     float64

	serial    uint64  // creation order, for deterministic solve order
	mark      uint64  // dirty-closure epoch stamp (scratch)
	remaining float64 // residual capacity during a solve (scratch)
	unfixed   int     // unfixed crossing variables during a solve (scratch)
}

// ID returns the identifier given at creation.
func (c *Constraint) ID() string { return c.id }

// Capacity returns the total capacity in abstract rate units (B/s in the
// network model).
func (c *Constraint) Capacity() float64 { return c.capacity }

// Usage returns the total rate allocated on this constraint by the last
// Solve.
func (c *Constraint) Usage() float64 { return c.used }

// Variables returns the variables crossing this constraint.
func (c *Constraint) Variables() []*Variable { return c.vars }

// Saturated reports whether the last Solve used the full capacity, within
// a relative tolerance.
func (c *Constraint) Saturated() bool {
	return c.used >= c.capacity*(1-1e-9)
}

// System holds variables and constraints and computes allocations.
// The zero value is not usable; use NewSystem.
//
// The system is long-lived: callers mutate it (AddVariable,
// RemoveVariable, Attach) between solves, and each Solve re-solves only
// the components disturbed since the previous one.
type System struct {
	vars   []*Variable
	cnsts  []*Constraint
	solved bool
	epoch  uint64
	serial uint64 // next creation serial

	// Dirty bookkeeping between solves. allDirty forces a full solve
	// (initial state). dirtyVars/dirtyCnsts seed the affected-component
	// closure; they may contain duplicates or removed variables, both
	// filtered during closure.
	allDirty   bool
	dirtyVars  []*Variable
	dirtyCnsts []*Constraint

	// Solver work statistics.
	solves       int
	lastTouched  int
	totalTouched int
	touched      []*Variable // variables re-solved by the last Solve
}

// NewSystem returns an empty system.
func NewSystem() *System { return &System{allDirty: true} }

// NewConstraint adds a resource with the given capacity (must be >= 0).
func (s *System) NewConstraint(id string, capacity float64) *Constraint {
	if capacity < 0 || math.IsNaN(capacity) {
		panic(fmt.Errorf("flow: constraint %q has invalid capacity %v", id, capacity))
	}
	c := &Constraint{id: id, capacity: capacity, serial: s.serial}
	s.serial++
	s.cnsts = append(s.cnsts, c)
	return c
}

// NewVariable adds a flow with the given share weight and rate bound.
// weight must be > 0. bound <= 0 means unbounded.
func (s *System) NewVariable(id string, weight, bound float64) *Variable {
	if weight <= 0 || math.IsNaN(weight) || math.IsInf(weight, 0) {
		panic(fmt.Errorf("flow: variable %q has invalid weight %v", id, weight))
	}
	if bound <= 0 || math.IsNaN(bound) {
		bound = math.Inf(1)
	}
	v := &Variable{id: id, weight: weight, bound: bound, sys: s, index: len(s.vars), serial: s.serial}
	s.serial++
	s.vars = append(s.vars, v)
	s.dirtyVars = append(s.dirtyVars, v)
	s.solved = false
	return v
}

// AddVariable creates a flow and attaches it to the given constraints in
// one call — the entry point of the incremental API. It panics if the
// weight is invalid or if the same constraint is passed twice (which
// would double-count the flow on that resource).
func (s *System) AddVariable(id string, weight, bound float64, cnsts ...*Constraint) *Variable {
	v := s.NewVariable(id, weight, bound)
	for _, c := range cnsts {
		s.MustAttach(v, c)
	}
	return v
}

// RemoveVariable withdraws a flow from the system: it is detached from
// every constraint it crosses, and the capacity it held becomes available
// to the remaining flows at the next Solve. Removing a variable that does
// not belong to this system (or was already removed) panics.
func (s *System) RemoveVariable(v *Variable) {
	if v.sys != s {
		panic(fmt.Errorf("flow: variable %q is not in this system", v.id))
	}
	for _, c := range v.cnsts {
		for i, w := range c.vars {
			if w == v {
				// Ordered removal keeps c.vars in attachment order, so
				// weight summations visit the survivors in the same order
				// a from-scratch build would.
				c.vars = append(c.vars[:i], c.vars[i+1:]...)
				break
			}
		}
		s.dirtyCnsts = append(s.dirtyCnsts, c)
	}
	last := len(s.vars) - 1
	s.vars[v.index] = s.vars[last]
	s.vars[v.index].index = v.index
	s.vars[last] = nil
	s.vars = s.vars[:last]
	v.sys = nil
	v.cnsts = nil
	s.solved = false
}

// SetBound changes the rate bound of a live variable (bound <= 0 means
// unbounded, as in NewVariable). Setting a bound equal to the current one
// is a no-op and does not dirty the variable's component — callers can
// blindly re-assert bounds every event and only actual changes trigger
// re-solving. Panics if the variable is not in this system.
func (s *System) SetBound(v *Variable, bound float64) {
	if v.sys != s {
		panic(fmt.Errorf("flow: variable %q is not in this system", v.id))
	}
	if bound <= 0 || math.IsNaN(bound) {
		bound = math.Inf(1)
	}
	if bound == v.bound {
		return
	}
	v.bound = bound
	s.dirtyVars = append(s.dirtyVars, v)
	s.solved = false
}

// Attach declares that variable v consumes capacity on constraint c.
// Attaching the same pair twice is an error (it would double-count the
// flow on that link).
func (s *System) Attach(v *Variable, c *Constraint) error {
	for _, existing := range v.cnsts {
		if existing == c {
			return fmt.Errorf("flow: variable %q already attached to constraint %q", v.id, c.id)
		}
	}
	v.cnsts = append(v.cnsts, c)
	c.vars = append(c.vars, v)
	s.dirtyVars = append(s.dirtyVars, v)
	s.solved = false
	return nil
}

// MustAttach is Attach but panics on error; convenient for builders that
// guarantee uniqueness.
func (s *System) MustAttach(v *Variable, c *Constraint) {
	if err := s.Attach(v, c); err != nil {
		panic(err)
	}
}

// Variables returns all variables in the system.
func (s *System) Variables() []*Variable { return s.vars }

// Constraints returns all constraints in the system.
func (s *System) Constraints() []*Constraint { return s.cnsts }

// ErrUnboundedVariable is returned by Solve when a variable crosses no
// constraint and has no rate bound: its max-min rate would be infinite.
var ErrUnboundedVariable = errors.New("flow: variable with no constraint and no bound")

// Solve computes the weighted max-min allocation. Solving is incremental:
// only the connected components containing a variable added, attached or
// removed since the previous Solve are recomputed, and every other
// variable keeps its previous rate unchanged. Calling Solve on an
// already-solved system is a no-op.
func (s *System) Solve() error {
	if s.solved {
		return nil
	}
	s.solves++

	// Gather the dirty sub-system: every variable and constraint reachable
	// from a mutation seed through shared constraints. Collection happens
	// during the closure traversal itself (so the cost is proportional to
	// the dirty set, not the whole system) and is then sorted by creation
	// serial so the solve visits resources in a stable order.
	var dirtyV []*Variable
	var dirtyC []*Constraint
	if s.allDirty {
		dirtyV = s.vars
		dirtyC = s.cnsts
	} else {
		s.epoch++
		stack := make([]*Constraint, 0, len(s.dirtyCnsts))
		markC := func(c *Constraint) {
			if c.mark != s.epoch {
				c.mark = s.epoch
				dirtyC = append(dirtyC, c)
				stack = append(stack, c)
			}
		}
		markV := func(v *Variable) {
			if v.mark != s.epoch {
				v.mark = s.epoch
				dirtyV = append(dirtyV, v)
				for _, c := range v.cnsts {
					markC(c)
				}
			}
		}
		for _, v := range s.dirtyVars {
			if v.sys == s { // skip variables removed after being added
				markV(v)
			}
		}
		for _, c := range s.dirtyCnsts {
			markC(c)
		}
		for len(stack) > 0 {
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range c.vars {
				markV(v)
			}
		}
		sort.Slice(dirtyC, func(i, j int) bool { return dirtyC[i].serial < dirtyC[j].serial })
		sort.Slice(dirtyV, func(i, j int) bool { return dirtyV[i].serial < dirtyV[j].serial })
	}

	for _, v := range dirtyV {
		if len(v.cnsts) == 0 && math.IsInf(v.bound, 1) {
			return fmt.Errorf("%w: %q", ErrUnboundedVariable, v.id)
		}
	}

	// Reset the dirty sub-system. By closure, every variable crossing a
	// dirty constraint is itself dirty, so capacities restart from full.
	for _, v := range dirtyV {
		v.fixed = false
		v.value = 0
	}
	for _, c := range dirtyC {
		c.remaining = c.capacity
		c.unfixed = len(c.vars)
		c.used = 0
	}

	unfixed := len(dirtyV)
	for unfixed > 0 {
		// Find the minimal fill level λ* at which something saturates.
		// For constraint c: λ_c = remaining_c / Σ weights of unfixed vars.
		// For a bounded variable v: λ_v = bound_v / weight_v.
		// Weight sums are recomputed fresh each round: maintaining them
		// incrementally accumulates floating-point residue that can make
		// an exhausted constraint look populated and stall the loop.
		lambda := math.Inf(1)
		var satCnst *Constraint
		var satVar *Variable
		for _, c := range dirtyC {
			if c.unfixed == 0 {
				continue // no unfixed variable crosses c
			}
			w := 0.0
			for _, v := range c.vars {
				if !v.fixed {
					w += v.weight
				}
			}
			l := c.remaining / w
			if l < lambda {
				lambda, satCnst, satVar = l, c, nil
			}
		}
		for _, v := range dirtyV {
			if v.fixed || math.IsInf(v.bound, 1) {
				continue
			}
			l := v.bound / v.weight
			if l < lambda {
				lambda, satCnst, satVar = l, nil, v
			}
		}

		if satCnst == nil && satVar == nil {
			// No constraint limits the remaining variables: they are all
			// unbounded through constraints with zero unfixed weight.
			// This cannot happen because every unfixed variable either has
			// a bound (covered above) or crosses a constraint whose
			// unfixed weight includes its own positive weight.
			return errors.New("flow: internal error: no saturating resource found")
		}

		fix := func(v *Variable, rate float64) {
			v.fixed = true
			v.value = rate
			unfixed--
			for _, c := range v.cnsts {
				c.remaining -= rate
				if c.remaining < 0 {
					c.remaining = 0
				}
				c.unfixed--
				c.used += rate
			}
		}

		if satVar != nil {
			fix(satVar, satVar.bound)
			continue
		}
		// Fix every unfixed variable crossing the saturated constraint at
		// weight-proportional share of λ*.
		for _, v := range satCnst.vars {
			if !v.fixed {
				fix(v, v.weight*lambda)
			}
		}
	}

	s.lastTouched = len(dirtyV)
	s.totalTouched += len(dirtyV)
	s.touched = dirtyV
	s.dirtyVars = s.dirtyVars[:0]
	s.dirtyCnsts = s.dirtyCnsts[:0]
	s.allDirty = false
	s.solved = true
	return nil
}

// Touched returns the variables re-solved by the most recent effective
// Solve — the only variables whose Rate may have changed. The slice is
// valid until the next mutation or Solve; callers that update derived
// state (the simulation engines copying rates) iterate it instead of
// every variable.
func (s *System) Touched() []*Variable { return s.touched }

// Solved reports whether the system has been solved since its last
// structural modification.
func (s *System) Solved() bool { return s.solved }

// Solves returns how many times Solve actually recomputed allocations
// (no-op calls on an already-solved system are not counted).
func (s *System) Solves() int { return s.solves }

// LastTouched returns the number of variables re-solved by the most
// recent effective Solve — the size of the disturbed components.
func (s *System) LastTouched() int { return s.lastTouched }

// TotalTouched returns the cumulative number of variables re-solved
// across all effective solves; with a from-scratch solver this would be
// Σ (system size at each solve), so the ratio of the two measures the
// work saved by incrementality.
func (s *System) TotalTouched() int { return s.totalTouched }
