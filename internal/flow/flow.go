// Package flow implements the weighted Max-Min fairness solver at the heart
// of the SimGrid-style fluid network model (the "LMM" — Linear Max-Min —
// system of SimGrid's surf layer, after Casanova & Marchal, INRIA RR-4596,
// and Velho & Legrand, SIMUTools'09).
//
// A System is a bipartite structure of Variables (network flows, with a
// share weight and an optional rate bound) and Constraints (link
// directions, with a capacity in bytes per second). Solve computes the
// weighted max-min allocation by progressive filling: it repeatedly finds
// the bottleneck — the constraint (or variable bound) that saturates first
// when every unfixed variable's rate grows proportionally to its weight —
// fixes the variables it blocks, and continues on the residual system.
//
// The produced allocation satisfies, for every variable v:
//
//   - feasibility: on each constraint, the sum of allocated rates does not
//     exceed the capacity;
//   - max-min optimality: v is blocked, i.e. it sits at its rate bound or
//     crosses at least one saturated constraint, so no rate can be
//     increased without decreasing that of a variable with an equal or
//     smaller rate-to-weight ratio.
//
// A System is persistent and mutable: variables enter with AddVariable (or
// NewVariable plus Attach) and leave with RemoveVariable, while constraint
// membership survives across solves. Solve is incremental — it tracks
// which variables and constraints changed since the previous solve and
// re-solves only the part of the system reachable from them through
// shared constraints (transitively, i.e. the affected connected
// components). Flows in untouched components keep their previous
// allocation bit-for-bit. This mirrors SimGrid's lazy partial invalidation
// of the max-min system (Casanova et al., arXiv:1309.1630) and is what
// lets the simulation kernel pay per event only for the flows an event
// actually disturbs.
//
// RTT-awareness is achieved by the caller setting each flow's weight to
// 1/RTT: on a shared bottleneck, flows then receive bandwidth inversely
// proportional to their round-trip time, which is the empirically observed
// behaviour of competing TCP streams that the SimGrid model captures.
package flow

import (
	"cmp"
	"errors"
	"fmt"
	"math"
	"slices"
	"strconv"
)

// Variable is one entity competing for capacity — in the network model,
// one TCP flow. Its rate after Solve is Rate().
type Variable struct {
	id     string
	weight float64
	bound  float64 // +Inf when unbounded
	value  float64
	cnsts  []*Constraint
	fixed  bool
	data   any // caller backreference (SetData), cleared on removal

	sys    *System // owning system, nil once removed
	index  int     // position in sys.vars, for O(1) removal
	serial uint64  // creation order, for deterministic solve order
	mark   uint64  // dirty-closure epoch stamp (scratch)
	lam    float64 // bound/weight fill level during a solve (scratch)
}

// ID returns the identifier given at creation. Variables created with an
// empty id are named lazily from their creation serial — hot callers (the
// simulation engines, which create one variable per activation) pass ""
// so no name is ever formatted outside error paths.
func (v *Variable) ID() string {
	if v.id == "" {
		return "v" + strconv.FormatUint(v.serial, 10)
	}
	return v.id
}

// SetData attaches an arbitrary caller value to the variable — the
// simulation engines store the owning activity so rate propagation after
// Solve needs no side lookup table. The value is cleared when the
// variable is removed from its system.
func (v *Variable) SetData(d any) { v.data = d }

// Data returns the value stored with SetData, or nil.
func (v *Variable) Data() any { return v.data }

// Weight returns the share weight (callers use 1/RTT).
func (v *Variable) Weight() float64 { return v.weight }

// Bound returns the rate upper bound, +Inf if none.
func (v *Variable) Bound() float64 { return v.bound }

// Rate returns the allocation computed by the last Solve.
func (v *Variable) Rate() float64 { return v.value }

// Constraints returns the constraints this variable crosses.
func (v *Variable) Constraints() []*Constraint { return v.cnsts }

// Constraint is one capacity-limited resource — in the network model, one
// link direction (or a shared half-duplex link).
type Constraint struct {
	id       string
	capacity float64
	vars     []*Variable
	used     float64

	serial    uint64      // creation order, for deterministic solve order
	mark      uint64      // dirty-closure epoch stamp (scratch)
	remaining float64     // residual capacity during a solve (scratch)
	unfixed   int         // unfixed crossing variables during a solve (scratch)
	active    []*Variable // not-yet-fixed crossing variables, compacted per round (scratch)
	wsum      float64     // Σ weight over active, valid while !wstale (scratch)
	wstale    bool        // a crossing variable fixed since wsum was summed (scratch)
}

// ID returns the identifier given at creation. Constraints created with
// an empty id are named lazily from their creation serial — hot callers
// (the simulation engines, which address constraints by dense link/host
// index and recreate them per pooled run) pass "" so no name is ever
// formatted outside error and debug paths.
func (c *Constraint) ID() string {
	if c.id == "" {
		return "c" + strconv.FormatUint(c.serial, 10)
	}
	return c.id
}

// Capacity returns the total capacity in abstract rate units (B/s in the
// network model).
func (c *Constraint) Capacity() float64 { return c.capacity }

// Usage returns the total rate allocated on this constraint by the last
// Solve.
func (c *Constraint) Usage() float64 { return c.used }

// Variables returns the variables crossing this constraint.
func (c *Constraint) Variables() []*Variable { return c.vars }

// Saturated reports whether the last Solve used the full capacity, within
// a relative tolerance.
func (c *Constraint) Saturated() bool {
	return c.used >= c.capacity*(1-1e-9)
}

// System holds variables and constraints and computes allocations.
// The zero value is not usable; use NewSystem.
//
// The system is long-lived: callers mutate it (AddVariable,
// RemoveVariable, Attach) between solves, and each Solve re-solves only
// the components disturbed since the previous one.
type System struct {
	vars   []*Variable
	cnsts  []*Constraint
	solved bool
	epoch  uint64
	serial uint64 // next creation serial

	// Dirty bookkeeping between solves. allDirty forces a full solve
	// (initial state). dirtyVars/dirtyCnsts seed the affected-component
	// closure; they may contain duplicates or removed variables, both
	// filtered during closure.
	allDirty   bool
	dirtyVars  []*Variable
	dirtyCnsts []*Constraint

	// Solver work statistics.
	solves       int
	lastTouched  int
	totalTouched int
	touched      []*Variable // variables re-solved by the last Solve

	// varFree and conFree recycle removed Variable / Reset Constraint
	// structs (including their attachment slices' capacity): simulations
	// churn one variable per activity activation and rebuild constraints
	// per pooled run, and reuse keeps that churn allocation-free at
	// steady state.
	varFree []*Variable
	conFree []*Constraint

	// Per-solve scratch buffers, reused so a solve allocates nothing at
	// steady state. dirtyVBuf doubles as the touched list between solves.
	dirtyVBuf  []*Variable
	dirtyCBuf  []*Constraint
	stackBuf   []*Constraint
	boundedBuf []*Variable
}

// NewSystem returns an empty system.
func NewSystem() *System { return &System{allDirty: true} }

// Reset empties the system — all variables and constraints are dropped
// and the creation serials restart from zero — while retaining every
// internal buffer and recycled struct. A reset system behaves exactly
// like a new one (identical ids, serials, and therefore identical solve
// order and arithmetic) but re-solving a same-shaped workload allocates
// almost nothing. The engine pool uses this to recycle whole simulations.
func (s *System) Reset() {
	for _, v := range s.vars {
		v.sys = nil
		v.data = nil
		v.cnsts = v.cnsts[:0]
		s.varFree = append(s.varFree, v)
	}
	s.vars = s.vars[:0]
	for _, c := range s.cnsts {
		c.vars = c.vars[:0]
		c.active = c.active[:0]
		s.conFree = append(s.conFree, c)
	}
	s.cnsts = s.cnsts[:0]
	s.serial = 0
	s.allDirty = true
	s.solved = false
	s.dirtyVars = s.dirtyVars[:0]
	s.dirtyCnsts = s.dirtyCnsts[:0]
	s.touched = nil
	s.solves = 0
	s.lastTouched = 0
	s.totalTouched = 0
}

// NewConstraint adds a resource with the given capacity (must be >= 0).
// An empty id names the constraint lazily (see ID).
func (s *System) NewConstraint(id string, capacity float64) *Constraint {
	if capacity < 0 || math.IsNaN(capacity) {
		panic(fmt.Errorf("flow: constraint %q has invalid capacity %v", id, capacity))
	}
	var c *Constraint
	if n := len(s.conFree); n > 0 {
		c = s.conFree[n-1]
		s.conFree[n-1] = nil
		s.conFree = s.conFree[:n-1]
		vars, act := c.vars[:0], c.active[:0]
		*c = Constraint{id: id, capacity: capacity, serial: s.serial, vars: vars, active: act}
	} else {
		c = &Constraint{id: id, capacity: capacity, serial: s.serial}
	}
	s.serial++
	s.cnsts = append(s.cnsts, c)
	return c
}

// NewVariable adds a flow with the given share weight and rate bound.
// weight must be > 0. bound <= 0 means unbounded. An empty id names the
// variable lazily (see ID). Removed Variable structs are recycled, so a
// steady add/remove churn allocates nothing.
func (s *System) NewVariable(id string, weight, bound float64) *Variable {
	if weight <= 0 || math.IsNaN(weight) || math.IsInf(weight, 0) {
		panic(fmt.Errorf("flow: variable %q has invalid weight %v", id, weight))
	}
	if bound <= 0 || math.IsNaN(bound) {
		bound = math.Inf(1)
	}
	var v *Variable
	if n := len(s.varFree); n > 0 {
		v = s.varFree[n-1]
		s.varFree[n-1] = nil
		s.varFree = s.varFree[:n-1]
		cn := v.cnsts[:0] // keep the attachment slice's capacity
		*v = Variable{id: id, weight: weight, bound: bound, cnsts: cn, sys: s, index: len(s.vars), serial: s.serial}
	} else {
		v = &Variable{id: id, weight: weight, bound: bound, sys: s, index: len(s.vars), serial: s.serial}
	}
	s.serial++
	s.vars = append(s.vars, v)
	s.dirtyVars = append(s.dirtyVars, v)
	s.solved = false
	return v
}

// AddVariable creates a flow and attaches it to the given constraints in
// one call — the entry point of the incremental API. It panics if the
// weight is invalid or if the same constraint is passed twice (which
// would double-count the flow on that resource).
func (s *System) AddVariable(id string, weight, bound float64, cnsts ...*Constraint) *Variable {
	v := s.NewVariable(id, weight, bound)
	for _, c := range cnsts {
		s.MustAttach(v, c)
	}
	return v
}

// RemoveVariable withdraws a flow from the system: it is detached from
// every constraint it crosses, and the capacity it held becomes available
// to the remaining flows at the next Solve. Removing a variable that does
// not belong to this system (or was already removed) panics.
func (s *System) RemoveVariable(v *Variable) {
	if v.sys != s {
		panic(fmt.Errorf("flow: variable %q is not in this system", v.ID()))
	}
	for _, c := range v.cnsts {
		for i, w := range c.vars {
			if w == v {
				// Ordered removal keeps c.vars in attachment order, so
				// weight summations visit the survivors in the same order
				// a from-scratch build would.
				c.vars = append(c.vars[:i], c.vars[i+1:]...)
				break
			}
		}
		s.dirtyCnsts = append(s.dirtyCnsts, c)
	}
	last := len(s.vars) - 1
	s.vars[v.index] = s.vars[last]
	s.vars[v.index].index = v.index
	s.vars[last] = nil
	s.vars = s.vars[:last]
	v.sys = nil
	v.cnsts = v.cnsts[:0]
	v.data = nil
	s.varFree = append(s.varFree, v)
	s.solved = false
}

// SetBound changes the rate bound of a live variable (bound <= 0 means
// unbounded, as in NewVariable). Setting a bound equal to the current one
// is a no-op and does not dirty the variable's component — callers can
// blindly re-assert bounds every event and only actual changes trigger
// re-solving. Panics if the variable is not in this system.
func (s *System) SetBound(v *Variable, bound float64) {
	if v.sys != s {
		panic(fmt.Errorf("flow: variable %q is not in this system", v.ID()))
	}
	if bound <= 0 || math.IsNaN(bound) {
		bound = math.Inf(1)
	}
	if bound == v.bound {
		return
	}
	v.bound = bound
	s.dirtyVars = append(s.dirtyVars, v)
	s.solved = false
}

// SetCapacity changes the capacity of a constraint (capacity must be
// >= 0, as in NewConstraint). Setting a capacity equal to the current one
// is a no-op and does not dirty the constraint's component — callers can
// blindly re-assert capacities (the differential fork path re-prices every
// restored constraint against its new snapshot) and only actual changes
// trigger re-solving. It reports whether the capacity changed.
func (s *System) SetCapacity(c *Constraint, capacity float64) bool {
	if capacity < 0 || math.IsNaN(capacity) {
		panic(fmt.Errorf("flow: constraint %q set to invalid capacity %v", c.ID(), capacity))
	}
	if capacity == c.capacity {
		return false
	}
	c.capacity = capacity
	s.dirtyCnsts = append(s.dirtyCnsts, c)
	s.solved = false
	return true
}

// Attach declares that variable v consumes capacity on constraint c.
// Attaching the same pair twice is an error (it would double-count the
// flow on that link).
func (s *System) Attach(v *Variable, c *Constraint) error {
	for _, existing := range v.cnsts {
		if existing == c {
			return fmt.Errorf("flow: variable %q already attached to constraint %q", v.ID(), c.ID())
		}
	}
	v.cnsts = append(v.cnsts, c)
	c.vars = append(c.vars, v)
	s.dirtyVars = append(s.dirtyVars, v)
	s.solved = false
	return nil
}

// MustAttach is Attach but panics on error; convenient for builders that
// guarantee uniqueness.
func (s *System) MustAttach(v *Variable, c *Constraint) {
	if err := s.Attach(v, c); err != nil {
		panic(err)
	}
}

// Variables returns all variables in the system.
func (s *System) Variables() []*Variable { return s.vars }

// Constraints returns all constraints in the system.
func (s *System) Constraints() []*Constraint { return s.cnsts }

// ErrUnboundedVariable is returned by Solve when a variable crosses no
// constraint and has no rate bound: its max-min rate would be infinite.
var ErrUnboundedVariable = errors.New("flow: variable with no constraint and no bound")

// Solve computes the weighted max-min allocation. Solving is incremental:
// only the connected components containing a variable added, attached or
// removed since the previous Solve are recomputed, and every other
// variable keeps its previous rate unchanged. Calling Solve on an
// already-solved system is a no-op.
func (s *System) Solve() error {
	if s.solved {
		return nil
	}
	s.solves++

	// Gather the dirty sub-system: every variable and constraint reachable
	// from a mutation seed through shared constraints. Collection happens
	// during the closure traversal itself (so the cost is proportional to
	// the dirty set, not the whole system) and is then sorted by creation
	// serial so the solve visits resources in a stable order. The
	// collection slices are per-system scratch, so steady-state solves
	// allocate nothing.
	var dirtyV []*Variable
	var dirtyC []*Constraint
	if s.allDirty {
		dirtyV = s.vars
		dirtyC = s.cnsts
	} else {
		dirtyV = s.dirtyVBuf[:0]
		dirtyC = s.dirtyCBuf[:0]
		s.epoch++
		stack := s.stackBuf[:0]
		markC := func(c *Constraint) {
			if c.mark != s.epoch {
				c.mark = s.epoch
				dirtyC = append(dirtyC, c)
				stack = append(stack, c)
			}
		}
		markV := func(v *Variable) {
			if v.mark != s.epoch {
				v.mark = s.epoch
				dirtyV = append(dirtyV, v)
				for _, c := range v.cnsts {
					markC(c)
				}
			}
		}
		for _, v := range s.dirtyVars {
			if v.sys == s { // skip variables removed after being added
				markV(v)
			}
		}
		for _, c := range s.dirtyCnsts {
			markC(c)
		}
		for len(stack) > 0 {
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range c.vars {
				markV(v)
			}
		}
		s.dirtyVBuf = dirtyV
		s.dirtyCBuf = dirtyC
		s.stackBuf = stack[:0]
		// Order the dirty constraints by creation serial. s.cnsts is
		// already in that order (constraints are never removed), so when
		// most constraints are dirty a marked sweep is cheaper than a
		// comparison sort; both produce the identical sequence.
		if 4*len(dirtyC) >= len(s.cnsts) {
			dirtyC = dirtyC[:0]
			for _, c := range s.cnsts {
				if c.mark == s.epoch {
					dirtyC = append(dirtyC, c)
				}
			}
			s.dirtyCBuf = dirtyC
		} else {
			slices.SortFunc(dirtyC, func(a, b *Constraint) int { return cmp.Compare(a.serial, b.serial) })
		}
		slices.SortFunc(dirtyV, func(a, b *Variable) int { return cmp.Compare(a.serial, b.serial) })
	}

	for _, v := range dirtyV {
		if len(v.cnsts) == 0 && math.IsInf(v.bound, 1) {
			return fmt.Errorf("%w: %q", ErrUnboundedVariable, v.ID())
		}
	}

	// Reset the dirty sub-system. By closure, every variable crossing a
	// dirty constraint is itself dirty, so capacities restart from full.
	// Three working lists keep the progressive-filling rounds proportional
	// to what is still unfixed rather than to the whole dirty set:
	//
	//   - each constraint snapshots its crossing variables into c.active,
	//     compacted as variables fix (attachment order preserved, so the
	//     per-round weight sums are bit-identical to a full rescan);
	//   - work compacts away constraints whose variables are all fixed
	//     (relative serial order preserved, so λ* tie-breaking between
	//     equal constraints is unchanged);
	//   - bounded holds the rate-bounded variables pre-sorted by their
	//     constant fill level λ_v = bound/weight (stable sort, so equal
	//     levels keep serial order): the first unfixed entry is the
	//     candidate each round, replacing a full rescan.
	for _, v := range dirtyV {
		v.fixed = false
		v.value = 0
	}
	bounded := s.boundedBuf[:0]
	for _, v := range dirtyV {
		if !math.IsInf(v.bound, 1) {
			v.lam = v.bound / v.weight
			bounded = append(bounded, v)
		}
	}
	slices.SortStableFunc(bounded, func(a, b *Variable) int { return cmp.Compare(a.lam, b.lam) })
	boundedHead := 0
	for _, c := range dirtyC {
		c.remaining = c.capacity
		c.unfixed = len(c.vars)
		c.used = 0
		c.active = append(c.active[:0], c.vars...)
		c.wstale = true
	}
	work := dirtyC
	if s.allDirty {
		// dirtyC aliases s.cnsts here; compaction must not reorder it.
		work = append(s.dirtyCBuf[:0], dirtyC...)
		s.dirtyCBuf = work
	}

	unfixed := len(dirtyV)
	fix := func(v *Variable, rate float64) {
		v.fixed = true
		v.value = rate
		unfixed--
		for _, c := range v.cnsts {
			c.remaining -= rate
			if c.remaining < 0 {
				c.remaining = 0
			}
			c.unfixed--
			c.used += rate
			c.wstale = true
		}
	}
	for unfixed > 0 {
		// Find the minimal fill level λ* at which something saturates.
		// For constraint c: λ_c = remaining_c / Σ weights of unfixed vars.
		// For a bounded variable v: λ_v = bound_v / weight_v.
		// Weight sums are recomputed from scratch — never maintained by
		// subtraction, which accumulates floating-point residue that can
		// make an exhausted constraint look populated and stall the loop —
		// but only for constraints a fix actually disturbed (wstale): an
		// undisturbed constraint's sum is the same bits either way.
		lambda := math.Inf(1)
		var satCnst *Constraint
		var satVar *Variable
		m := 0
		for _, c := range work {
			if c.unfixed == 0 {
				continue // no unfixed variable crosses c anymore
			}
			work[m] = c
			m++
			if c.wstale {
				w := 0.0
				act := c.active[:0]
				for _, v := range c.active {
					if !v.fixed {
						w += v.weight
						act = append(act, v)
					}
				}
				c.active = act
				c.wsum = w
				c.wstale = false
			}
			l := c.remaining / c.wsum
			if l < lambda {
				lambda, satCnst, satVar = l, c, nil
			}
		}
		work = work[:m]
		for boundedHead < len(bounded) && bounded[boundedHead].fixed {
			boundedHead++
		}
		if boundedHead < len(bounded) {
			if v := bounded[boundedHead]; v.lam < lambda {
				lambda, satCnst, satVar = v.lam, nil, v
			}
		}

		if satCnst == nil && satVar == nil {
			// No constraint limits the remaining variables: they are all
			// unbounded through constraints with zero unfixed weight.
			// This cannot happen because every unfixed variable either has
			// a bound (covered above) or crosses a constraint whose
			// unfixed weight includes its own positive weight.
			return errors.New("flow: internal error: no saturating resource found")
		}

		if satVar != nil {
			fix(satVar, satVar.bound)
			continue
		}
		// Fix every unfixed variable crossing the saturated constraint at
		// weight-proportional share of λ*.
		for _, v := range satCnst.active {
			if !v.fixed {
				fix(v, v.weight*lambda)
			}
		}
	}
	s.boundedBuf = bounded[:0]

	s.lastTouched = len(dirtyV)
	s.totalTouched += len(dirtyV)
	s.touched = dirtyV
	s.dirtyVars = s.dirtyVars[:0]
	s.dirtyCnsts = s.dirtyCnsts[:0]
	s.allDirty = false
	s.solved = true
	return nil
}

// Touched returns the variables re-solved by the most recent effective
// Solve — the only variables whose Rate may have changed. The slice is
// valid until the next mutation or Solve; callers that update derived
// state (the simulation engines copying rates) iterate it instead of
// every variable.
func (s *System) Touched() []*Variable { return s.touched }

// Solved reports whether the system has been solved since its last
// structural modification.
func (s *System) Solved() bool { return s.solved }

// Solves returns how many times Solve actually recomputed allocations
// (no-op calls on an already-solved system are not counted).
func (s *System) Solves() int { return s.solves }

// LastTouched returns the number of variables re-solved by the most
// recent effective Solve — the size of the disturbed components.
func (s *System) LastTouched() int { return s.lastTouched }

// TotalTouched returns the cumulative number of variables re-solved
// across all effective solves; with a from-scratch solver this would be
// Σ (system size at each solve), so the ratio of the two measures the
// work saved by incrementality.
func (s *System) TotalTouched() int { return s.totalTouched }
