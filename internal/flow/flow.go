// Package flow implements the weighted Max-Min fairness solver at the heart
// of the SimGrid-style fluid network model (the "LMM" — Linear Max-Min —
// system of SimGrid's surf layer, after Casanova & Marchal, INRIA RR-4596,
// and Velho & Legrand, SIMUTools'09).
//
// A System is a bipartite structure of Variables (network flows, with a
// share weight and an optional rate bound) and Constraints (link
// directions, with a capacity in bytes per second). Solve computes the
// weighted max-min allocation by progressive filling: it repeatedly finds
// the bottleneck — the constraint (or variable bound) that saturates first
// when every unfixed variable's rate grows proportionally to its weight —
// fixes the variables it blocks, and continues on the residual system.
//
// The produced allocation satisfies, for every variable v:
//
//   - feasibility: on each constraint, the sum of allocated rates does not
//     exceed the capacity;
//   - max-min optimality: v is blocked, i.e. it sits at its rate bound or
//     crosses at least one saturated constraint, so no rate can be
//     increased without decreasing that of a variable with an equal or
//     smaller rate-to-weight ratio.
//
// RTT-awareness is achieved by the caller setting each flow's weight to
// 1/RTT: on a shared bottleneck, flows then receive bandwidth inversely
// proportional to their round-trip time, which is the empirically observed
// behaviour of competing TCP streams that the SimGrid model captures.
package flow

import (
	"errors"
	"fmt"
	"math"
)

// Variable is one entity competing for capacity — in the network model,
// one TCP flow. Its rate after Solve is Rate().
type Variable struct {
	id     string
	weight float64
	bound  float64 // +Inf when unbounded
	value  float64
	cnsts  []*Constraint
	fixed  bool
}

// ID returns the identifier given at creation.
func (v *Variable) ID() string { return v.id }

// Weight returns the share weight (callers use 1/RTT).
func (v *Variable) Weight() float64 { return v.weight }

// Bound returns the rate upper bound, +Inf if none.
func (v *Variable) Bound() float64 { return v.bound }

// Rate returns the allocation computed by the last Solve.
func (v *Variable) Rate() float64 { return v.value }

// Constraints returns the constraints this variable crosses.
func (v *Variable) Constraints() []*Constraint { return v.cnsts }

// Constraint is one capacity-limited resource — in the network model, one
// link direction (or a shared half-duplex link).
type Constraint struct {
	id       string
	capacity float64
	vars     []*Variable
	used     float64
}

// ID returns the identifier given at creation.
func (c *Constraint) ID() string { return c.id }

// Capacity returns the total capacity in abstract rate units (B/s in the
// network model).
func (c *Constraint) Capacity() float64 { return c.capacity }

// Usage returns the total rate allocated on this constraint by the last
// Solve.
func (c *Constraint) Usage() float64 { return c.used }

// Variables returns the variables crossing this constraint.
func (c *Constraint) Variables() []*Variable { return c.vars }

// Saturated reports whether the last Solve used the full capacity, within
// a relative tolerance.
func (c *Constraint) Saturated() bool {
	return c.used >= c.capacity*(1-1e-9)
}

// System holds variables and constraints and computes allocations.
// The zero value is not usable; use NewSystem.
type System struct {
	vars   []*Variable
	cnsts  []*Constraint
	solved bool
}

// NewSystem returns an empty system.
func NewSystem() *System { return &System{} }

// NewConstraint adds a resource with the given capacity (must be >= 0).
func (s *System) NewConstraint(id string, capacity float64) *Constraint {
	if capacity < 0 || math.IsNaN(capacity) {
		panic(fmt.Errorf("flow: constraint %q has invalid capacity %v", id, capacity))
	}
	c := &Constraint{id: id, capacity: capacity}
	s.cnsts = append(s.cnsts, c)
	s.solved = false
	return c
}

// NewVariable adds a flow with the given share weight and rate bound.
// weight must be > 0. bound <= 0 means unbounded.
func (s *System) NewVariable(id string, weight, bound float64) *Variable {
	if weight <= 0 || math.IsNaN(weight) || math.IsInf(weight, 0) {
		panic(fmt.Errorf("flow: variable %q has invalid weight %v", id, weight))
	}
	if bound <= 0 || math.IsNaN(bound) {
		bound = math.Inf(1)
	}
	v := &Variable{id: id, weight: weight, bound: bound}
	s.vars = append(s.vars, v)
	s.solved = false
	return v
}

// Attach declares that variable v consumes capacity on constraint c.
// Attaching the same pair twice is an error (it would double-count the
// flow on that link).
func (s *System) Attach(v *Variable, c *Constraint) error {
	for _, existing := range v.cnsts {
		if existing == c {
			return fmt.Errorf("flow: variable %q already attached to constraint %q", v.id, c.id)
		}
	}
	v.cnsts = append(v.cnsts, c)
	c.vars = append(c.vars, v)
	s.solved = false
	return nil
}

// MustAttach is Attach but panics on error; convenient for builders that
// guarantee uniqueness.
func (s *System) MustAttach(v *Variable, c *Constraint) {
	if err := s.Attach(v, c); err != nil {
		panic(err)
	}
}

// Variables returns all variables in the system.
func (s *System) Variables() []*Variable { return s.vars }

// Constraints returns all constraints in the system.
func (s *System) Constraints() []*Constraint { return s.cnsts }

// ErrUnboundedVariable is returned by Solve when a variable crosses no
// constraint and has no rate bound: its max-min rate would be infinite.
var ErrUnboundedVariable = errors.New("flow: variable with no constraint and no bound")

// Solve computes the weighted max-min allocation. It may be called again
// after adding variables or constraints; allocations are recomputed from
// scratch (the systems built by the simulator are small enough that
// incremental solving is unnecessary).
func (s *System) Solve() error {
	// Reset state from any previous solve.
	for _, v := range s.vars {
		v.fixed = false
		v.value = 0
	}
	for _, c := range s.cnsts {
		c.used = 0
	}

	remaining := make(map[*Constraint]float64, len(s.cnsts))
	unfixedCount := make(map[*Constraint]int, len(s.cnsts))
	for _, c := range s.cnsts {
		remaining[c] = c.capacity
		unfixedCount[c] = len(c.vars)
	}

	unfixed := 0
	for _, v := range s.vars {
		if len(v.cnsts) == 0 && math.IsInf(v.bound, 1) {
			return fmt.Errorf("%w: %q", ErrUnboundedVariable, v.id)
		}
		unfixed++
	}

	for unfixed > 0 {
		// Find the minimal fill level λ* at which something saturates.
		// For constraint c: λ_c = remaining_c / Σ weights of unfixed vars.
		// For a bounded variable v: λ_v = bound_v / weight_v.
		// Weight sums are recomputed fresh each round: maintaining them
		// incrementally accumulates floating-point residue that can make
		// an exhausted constraint look populated and stall the loop.
		lambda := math.Inf(1)
		var satCnst *Constraint
		var satVar *Variable
		for _, c := range s.cnsts {
			if unfixedCount[c] == 0 {
				continue // no unfixed variable crosses c
			}
			w := 0.0
			for _, v := range c.vars {
				if !v.fixed {
					w += v.weight
				}
			}
			l := remaining[c] / w
			if l < lambda {
				lambda, satCnst, satVar = l, c, nil
			}
		}
		for _, v := range s.vars {
			if v.fixed || math.IsInf(v.bound, 1) {
				continue
			}
			l := v.bound / v.weight
			if l < lambda {
				lambda, satCnst, satVar = l, nil, v
			}
		}

		if satCnst == nil && satVar == nil {
			// No constraint limits the remaining variables: they are all
			// unbounded through constraints with zero unfixed weight.
			// This cannot happen because every unfixed variable either has
			// a bound (covered above) or crosses a constraint whose
			// unfixedWeight includes its own positive weight.
			return errors.New("flow: internal error: no saturating resource found")
		}

		fix := func(v *Variable, rate float64) {
			v.fixed = true
			v.value = rate
			unfixed--
			for _, c := range v.cnsts {
				remaining[c] -= rate
				if remaining[c] < 0 {
					remaining[c] = 0
				}
				unfixedCount[c]--
				c.used += rate
			}
		}

		if satVar != nil {
			fix(satVar, satVar.bound)
			continue
		}
		// Fix every unfixed variable crossing the saturated constraint at
		// weight-proportional share of λ*.
		for _, v := range satCnst.vars {
			if !v.fixed {
				fix(v, v.weight*lambda)
			}
		}
	}
	s.solved = true
	return nil
}

// Solved reports whether the system has been solved since its last
// structural modification.
func (s *System) Solved() bool { return s.solved }
