package bgtraffic_test

import (
	"testing"

	"pilgrim/internal/bgtraffic"
	"pilgrim/internal/g5k"
	"pilgrim/internal/metrology"
	"pilgrim/internal/pilgrim"
	"pilgrim/internal/platgen"
	"pilgrim/internal/rrd"
	"pilgrim/internal/sim"
)

func TestEstimateBasicMatching(t *testing.T) {
	obs := []bgtraffic.Observation{
		{Node: "tx-heavy", TxRate: 90e6},
		{Node: "rx-heavy", RxRate: 90e6},
		{Node: "idle", TxRate: 100}, // below MinRate
	}
	flows, err := bgtraffic.Estimate(obs, bgtraffic.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 3 { // 90e6 / 30e6 = 3 flows
		t.Fatalf("flows = %d, want 3: %v", len(flows), flows)
	}
	for _, f := range flows {
		if f.Src != "tx-heavy" || f.Dst != "rx-heavy" {
			t.Errorf("unexpected flow %v", f)
		}
	}
}

func TestEstimateNeverSelfPairs(t *testing.T) {
	obs := []bgtraffic.Observation{
		{Node: "both", TxRate: 60e6, RxRate: 60e6},
		{Node: "other", RxRate: 30e6},
	}
	flows, err := bgtraffic.Estimate(obs, bgtraffic.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range flows {
		if f.Src == f.Dst {
			t.Errorf("self-paired flow %v", f)
		}
	}
}

func TestEstimateOnlySelfReceiver(t *testing.T) {
	// The only receiver is the sender itself: no flows, no hang.
	obs := []bgtraffic.Observation{{Node: "solo", TxRate: 90e6, RxRate: 90e6}}
	flows, err := bgtraffic.Estimate(obs, bgtraffic.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 0 {
		t.Errorf("flows = %v, want none", flows)
	}
}

func TestEstimateMaxFlowsCap(t *testing.T) {
	obs := []bgtraffic.Observation{
		{Node: "a", TxRate: 300e6},
		{Node: "b", RxRate: 300e6},
	}
	cfg := bgtraffic.DefaultConfig()
	cfg.MaxFlows = 4
	flows, err := bgtraffic.Estimate(obs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 4 {
		t.Errorf("flows = %d, want cap 4", len(flows))
	}
}

func TestEstimateRejectsBadConfig(t *testing.T) {
	if _, err := bgtraffic.Estimate(nil, bgtraffic.Config{}); err == nil {
		t.Error("zero RatePerFlow accepted")
	}
}

func TestEstimateDeterministic(t *testing.T) {
	obs := []bgtraffic.Observation{
		{Node: "n1", TxRate: 60e6},
		{Node: "n2", TxRate: 60e6},
		{Node: "n3", RxRate: 60e6},
		{Node: "n4", RxRate: 60e6},
	}
	a, err := bgtraffic.Estimate(obs, bgtraffic.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := bgtraffic.Estimate(obs, bgtraffic.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("nondeterministic count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("flow %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestFromMetrology(t *testing.T) {
	reg := metrology.NewRegistry()
	host := "sagittaire-1.lyon.grid5000.fr"
	// A counter growing 30e6 bytes/s.
	mustRegister(t, reg, host, "bytes_out", func(ts int64) float64 { return float64(ts) * 30e6 })
	mustRegister(t, reg, host, "bytes_in", func(ts int64) float64 { return float64(ts) * 1e6 })
	// Another tool's metric must be ignored.
	other := metrology.MetricPath{Tool: "munin", Site: "lyon", Host: host, Metric: "bytes_out"}
	if err := reg.Register(other, rrd.Counter, 15, func(ts int64) float64 { return float64(ts) * 999e6 }); err != nil {
		t.Fatal(err)
	}
	if err := reg.Collect(0, 3600); err != nil {
		t.Fatal(err)
	}
	obs, err := bgtraffic.FromMetrology(reg, "ganglia", 600, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 1 {
		t.Fatalf("observations = %d, want 1", len(obs))
	}
	if obs[0].Node != host {
		t.Errorf("node = %s", obs[0].Node)
	}
	if obs[0].TxRate < 25e6 || obs[0].TxRate > 35e6 {
		t.Errorf("tx rate = %.3g, want ~30e6", obs[0].TxRate)
	}
	if obs[0].RxRate < 0.5e6 || obs[0].RxRate > 1.5e6 {
		t.Errorf("rx rate = %.3g, want ~1e6", obs[0].RxRate)
	}
	if _, err := bgtraffic.FromMetrology(reg, "ganglia", 100, 100); err == nil {
		t.Error("empty window accepted")
	}
}

func mustRegister(t *testing.T, reg *metrology.Registry, host, metric string, src metrology.Source) {
	t.Helper()
	p := metrology.MetricPath{Tool: "ganglia", Site: "lyon", Host: host, Metric: metric}
	if err := reg.Register(p, rrd.Counter, 15, src); err != nil {
		t.Fatal(err)
	}
}

// TestEndToEndBackgroundInjection closes the future-work loop: metrology
// counters -> coarse flow model -> slower PNFS forecast.
func TestEndToEndBackgroundInjection(t *testing.T) {
	ref := g5k.Mini()
	plat, err := platgen.Generate(ref, platgen.Options{Variant: platgen.G5KTest})
	if err != nil {
		t.Fatal(err)
	}
	entry := pilgrim.PlatformEntry{Platform: plat, Config: sim.DefaultConfig()}

	// Instrument two graphene nodes exchanging heavy traffic.
	reg := metrology.NewRegistry()
	tx := metrology.MetricPath{Tool: "ganglia", Site: "nancy",
		Host: "graphene-1.nancy.grid5000.fr", Metric: "bytes_out"}
	rx := metrology.MetricPath{Tool: "ganglia", Site: "nancy",
		Host: "graphene-2.nancy.grid5000.fr", Metric: "bytes_in"}
	if err := reg.Register(tx, rrd.Counter, 15, func(ts int64) float64 { return float64(ts) * 60e6 }); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(rx, rrd.Counter, 15, func(ts int64) float64 { return float64(ts) * 60e6 }); err != nil {
		t.Fatal(err)
	}
	if err := reg.Collect(0, 1800); err != nil {
		t.Fatal(err)
	}
	obs, err := bgtraffic.FromMetrology(reg, "ganglia", 300, 1500)
	if err != nil {
		t.Fatal(err)
	}
	flows, err := bgtraffic.Estimate(obs, bgtraffic.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) == 0 {
		t.Fatal("no background flows estimated")
	}

	// The forecast for a transfer sharing graphene-2's access link must
	// slow down once the background model is injected.
	req := []pilgrim.TransferRequest{{
		Src: "graphene-3.nancy.grid5000.fr", Dst: "graphene-2.nancy.grid5000.fr", Size: 5e8,
	}}
	base, err := pilgrim.PredictTransfers(entry, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	var bg [][2]string
	for _, f := range flows {
		bg = append(bg, [2]string{f.Src, f.Dst})
	}
	loaded, err := pilgrim.PredictTransfers(entry, req, bg)
	if err != nil {
		t.Fatal(err)
	}
	if loaded[0].Duration <= base[0].Duration*1.2 {
		t.Errorf("background injection had too little effect: %v vs %v",
			loaded[0].Duration, base[0].Duration)
	}
}
