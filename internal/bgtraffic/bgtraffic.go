// Package bgtraffic implements the paper's background-traffic future work
// (§VI): "model the background traffic of Grid'5000, thanks to the
// ongoing work on this platform's network instrumentation. Of course, we
// will have to find a tradeoff between a very accurate dynamic model of
// the platform involving too much data ... or a coarse model."
//
// This is the coarse model: per-node interface counters (collected by the
// metrology stack into RRDs) are reduced to average transmit/receive
// rates over a recent window, and the heaviest transmitters are matched
// to the heaviest receivers to synthesize a bounded set of persistent
// background flows. Those flows are then injected into forecast
// simulations (Engine.AddBackgroundFlow / the PNFS bg parameter), where
// they contend with the requested transfers like any TCP stream.
package bgtraffic

import (
	"fmt"
	"math"
	"sort"

	"pilgrim/internal/metrology"
	"pilgrim/internal/rrd"
)

// Observation is one node's traffic level over the estimation window.
type Observation struct {
	Node   string // fully qualified node name
	TxRate float64
	RxRate float64
}

// Flow is one synthesized background flow.
type Flow struct {
	Src string
	Dst string
}

// Config bounds the coarse model.
type Config struct {
	// RatePerFlow is the traffic volume one synthesized flow represents,
	// in bytes/s. A node transmitting at 3x this rate contributes up to
	// three flows. Must be > 0.
	RatePerFlow float64
	// MaxFlows caps the model size (the paper's "too much data" side of
	// the tradeoff). 0 means no cap.
	MaxFlows int
	// MinRate ignores nodes below this rate (idle chatter).
	MinRate float64
}

// DefaultConfig models one flow per 30 MB/s of observed traffic, at most
// 64 flows, ignoring nodes under 1 MB/s.
func DefaultConfig() Config {
	return Config{RatePerFlow: 30e6, MaxFlows: 64, MinRate: 1e6}
}

// Estimate reduces per-node observations to a coarse set of background
// flows: transmit demand is matched to receive demand greedily, heaviest
// first, never pairing a node with itself.
func Estimate(obs []Observation, cfg Config) ([]Flow, error) {
	if cfg.RatePerFlow <= 0 {
		return nil, fmt.Errorf("bgtraffic: RatePerFlow must be positive")
	}
	type demand struct {
		node  string
		flows int
	}
	var txs, rxs []demand
	for _, o := range obs {
		if o.TxRate >= cfg.MinRate && o.TxRate > 0 {
			n := int(math.Round(o.TxRate / cfg.RatePerFlow))
			if n == 0 {
				n = 1
			}
			txs = append(txs, demand{node: o.Node, flows: n})
		}
		if o.RxRate >= cfg.MinRate && o.RxRate > 0 {
			n := int(math.Round(o.RxRate / cfg.RatePerFlow))
			if n == 0 {
				n = 1
			}
			rxs = append(rxs, demand{node: o.Node, flows: n})
		}
	}
	// Heaviest first; name-ordered ties for determinism.
	byLoad := func(ds []demand) {
		sort.Slice(ds, func(i, j int) bool {
			if ds[i].flows != ds[j].flows {
				return ds[i].flows > ds[j].flows
			}
			return ds[i].node < ds[j].node
		})
	}
	byLoad(txs)
	byLoad(rxs)

	var flows []Flow
	ri := 0
	for _, tx := range txs {
		for f := 0; f < tx.flows; f++ {
			if cfg.MaxFlows > 0 && len(flows) >= cfg.MaxFlows {
				return flows, nil
			}
			if len(rxs) == 0 {
				return flows, nil
			}
			// Find the next receiver that is not the sender itself.
			tried := 0
			for rxs[ri%len(rxs)].node == tx.node {
				ri++
				tried++
				if tried > len(rxs) {
					// Only the sender receives traffic; cannot pair.
					return flows, nil
				}
			}
			rx := rxs[ri%len(rxs)]
			ri++
			flows = append(flows, Flow{Src: tx.node, Dst: rx.node})
		}
	}
	return flows, nil
}

// FromMetrology builds observations from interface-counter metrics in a
// registry: for every node with "bytes_out"/"bytes_in" Counter metrics
// under the given tool, the average rate over [begin, end) is used.
// Nodes missing a direction default that direction to zero.
func FromMetrology(reg *metrology.Registry, tool string, begin, end int64) ([]Observation, error) {
	if end <= begin {
		return nil, fmt.Errorf("bgtraffic: empty window [%d, %d)", begin, end)
	}
	byNode := make(map[string]*Observation)
	for _, p := range reg.Paths() {
		if p.Tool != tool {
			continue
		}
		var dir *float64
		switch p.Metric {
		case "bytes_out", "bytes_in":
		default:
			continue
		}
		db, ok := reg.Database(p)
		if !ok {
			continue
		}
		series, err := db.FetchBest(rrd.Average, begin, end)
		if err != nil {
			return nil, fmt.Errorf("bgtraffic: %s: %w", p, err)
		}
		sum, n := 0.0, 0
		for _, row := range series.Rows {
			if len(row) > 0 && !math.IsNaN(row[0]) {
				sum += row[0]
				n++
			}
		}
		if n == 0 {
			continue
		}
		o := byNode[p.Host]
		if o == nil {
			o = &Observation{Node: p.Host}
			byNode[p.Host] = o
		}
		if p.Metric == "bytes_out" {
			dir = &o.TxRate
		} else {
			dir = &o.RxRate
		}
		*dir = sum / float64(n)
	}
	nodes := make([]string, 0, len(byNode))
	for n := range byNode {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	out := make([]Observation, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, *byNode[n])
	}
	return out, nil
}
