// Package platgen converts a Grid'5000 reference description (package
// g5k) into a simulator platform (package platform). It is the analogue
// of the paper's "Grid'5000 to SimGrid wrapper" (§IV-C2) and produces the
// two platform flavours evaluated in §V-A:
//
//   - G5KTest ("g5k_test"): built from the detailed network description —
//     one AS per site, every host enumerated with its access link, the
//     aggregation switches and their uplinks modeled explicitly. Less
//     compact, loads slower, but conforms to reality; the paper found all
//     its predictions better on this flavour.
//   - G5KCabinets ("g5k_cabinets"): built from the basic topology
//     information only — clusters abstracted into homogeneous boxes
//     (SimGrid <cluster> style), losing the aggregation structure.
//
// Both flavours hardcode the intra-site (1e-4 s) and backbone (2.25e-3 s)
// latencies, as the paper did. Two extensions implement the paper's
// stated future work: UseMeasuredLatencies takes backbone latencies from
// the reference (i.e. from metrology measurements), and EquipmentLimits
// adds backplane capacity constraints for network equipment.
//
// The Flat option materializes the whole platform in a single AS with a
// complete host-pair route table — the pre-hierarchical-routing situation
// that made whole-Grid'5000 simulation intractable (§IV-C2), kept for the
// ablation benchmarks.
package platgen

import (
	"fmt"
	"sort"

	"pilgrim/internal/g5k"
	"pilgrim/internal/platform"
)

// Variant selects the generated platform flavour.
type Variant int

// Platform flavours (§V-A).
const (
	G5KTest Variant = iota
	G5KCabinets
)

// String returns the platform name used in PNFS URLs.
func (v Variant) String() string {
	switch v {
	case G5KTest:
		return "g5k_test"
	case G5KCabinets:
		return "g5k_cabinets"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Options configures generation. The zero value reproduces the paper's
// g5k_test platform.
type Options struct {
	Variant Variant
	// IntraSiteLatency is the hardcoded one-way latency of intra-site
	// links; 0 means the paper's 1e-4 s.
	IntraSiteLatency float64
	// BackboneLatency is the hardcoded one-way latency of backbone
	// links; 0 means the paper's 2.25e-3 s.
	BackboneLatency float64
	// UseMeasuredLatencies replaces BackboneLatency with each backbone
	// segment's measured latency from the reference (future work §VI).
	UseMeasuredLatencies bool
	// EquipmentLimits inserts backplane capacity constraints for every
	// network equipment (future work §VI). The paper's platforms did not
	// have them (§V-A).
	EquipmentLimits bool
	// Flat disables hierarchical routing: one AS, full route table.
	Flat bool
	// AccessPolicy is the sharing policy of host access and aggregation
	// links. The paper's generator emitted half-duplex SHARED links —
	// the default here; see EXPERIMENTS.md for the role this plays in
	// the graphene over-prediction.
	AccessPolicy platform.SharingPolicy
}

func (o Options) intraLat() float64 {
	if o.IntraSiteLatency == 0 {
		return 1e-4
	}
	return o.IntraSiteLatency
}

func (o Options) bbLat(measured float64) float64 {
	if o.UseMeasuredLatencies && measured > 0 {
		return measured
	}
	if o.BackboneLatency == 0 {
		return 2.25e-3
	}
	return o.BackboneLatency
}

// bytesPerSec converts a reference rate in bits/s to bytes/s.
func bytesPerSec(bps float64) float64 { return bps / 8 }

// Generate builds the platform for the given reference and options.
func Generate(ref *g5k.Reference, opts Options) (*platform.Platform, error) {
	if err := ref.Validate(); err != nil {
		return nil, fmt.Errorf("platgen: invalid reference: %w", err)
	}
	g := &generator{ref: ref, opts: opts}
	if opts.Flat {
		return g.generateFlat()
	}
	switch opts.Variant {
	case G5KTest:
		return g.generateTest()
	case G5KCabinets:
		return g.generateCabinets()
	default:
		return nil, fmt.Errorf("platgen: unknown variant %v", opts.Variant)
	}
}

type generator struct {
	ref  *g5k.Reference
	opts Options
}

// hostInfo collects what route emission needs to know about one node.
type hostInfo struct {
	fqdn    string
	nicLink *platform.Link
	sw      string // equipment uid the NIC plugs into
	site    string
}

// generateTest builds the hierarchical host-level platform.
func (g *generator) generateTest() (*platform.Platform, error) {
	p := platform.New("AS_grid5000", platform.RoutingFull)
	root := p.Root()

	for _, siteID := range g.ref.SiteIDs() {
		site := g.ref.Sites[siteID]
		as, err := root.AddAS("AS_"+siteID, platform.RoutingFull)
		if err != nil {
			return nil, err
		}
		if err := g.fillSiteDetailed(p, as, site); err != nil {
			return nil, err
		}
	}
	if err := g.addBackbone(p, root, func(siteID string) (string, string) {
		return "AS_" + siteID, g.ref.Sites[siteID].Gateway
	}); err != nil {
		return nil, err
	}
	return p, nil
}

// fillSiteDetailed populates one site AS with routers, hosts, access
// links, uplinks, and the full intra-site route table.
func (g *generator) fillSiteDetailed(p *platform.Platform, as *platform.AS, site *g5k.Site) error {
	gw := site.Gateway
	// Equipment become routers; remember uplink links towards the
	// gateway. Multi-hop equipment chains are not present in the dataset
	// (aggregation switches connect straight to the site router), so a
	// single-level uplink map suffices.
	uplink := make(map[string]*platform.Link) // equipment uid -> link to gw
	eqIDs := make([]string, 0, len(site.Equipment))
	for id := range site.Equipment {
		eqIDs = append(eqIDs, id)
	}
	sort.Strings(eqIDs)
	for _, id := range eqIDs {
		if _, err := as.AddRouter(id); err != nil {
			return err
		}
	}
	for _, id := range eqIDs {
		eq := site.Equipment[id]
		for _, up := range eq.Uplinks {
			l, err := as.AddLink(fmt.Sprintf("%s_%s", id, up.To),
				bytesPerSec(up.RateBps), g.opts.intraLat(), g.opts.AccessPolicy)
			if err != nil {
				return err
			}
			if up.To == gw {
				uplink[id] = l
			}
		}
	}
	// Optional backplane constraints.
	backplane := make(map[string]*platform.Link)
	if g.opts.EquipmentLimits {
		for _, id := range eqIDs {
			eq := site.Equipment[id]
			if eq.BackplaneBps <= 0 {
				continue
			}
			l, err := as.AddLink(id+"_backplane", bytesPerSec(eq.BackplaneBps), 0, platform.Shared)
			if err != nil {
				return err
			}
			backplane[id] = l
		}
	}

	var hosts []hostInfo
	for _, cid := range site.ClusterIDs() {
		cluster := site.Clusters[cid]
		for _, nid := range cluster.NodeIDs() {
			node := cluster.Nodes[nid]
			itf := node.Interfaces[0]
			fqdn := g5k.FQDN(nid, site.UID)
			h, err := as.AddHost(fqdn, cluster.GFlops*1e9)
			if err != nil {
				return err
			}
			h.Props = map[string]string{
				"cluster": cid,
				"site":    site.UID,
				"class":   cluster.NodeClass,
				"switch":  itf.Switch,
			}
			nic, err := as.AddLink(fqdn+"_nic", bytesPerSec(itf.RateBps), g.opts.intraLat(), g.opts.AccessPolicy)
			if err != nil {
				return err
			}
			hosts = append(hosts, hostInfo{fqdn: fqdn, nicLink: nic, sw: itf.Switch, site: site.UID})
		}
	}

	// pathToGW returns the uplink chain from a host's switch to the site
	// gateway (empty for hosts plugged straight into the gateway).
	bpOf := func(eq string) []platform.LinkUse {
		if l := backplane[eq]; l != nil {
			return []platform.LinkUse{{Link: l, Direction: platform.None}}
		}
		return nil
	}

	// Routes host -> gateway.
	for _, h := range hosts {
		links := []platform.LinkUse{{Link: h.nicLink, Direction: platform.Up}}
		links = append(links, bpOf(h.sw)...)
		if up := uplink[h.sw]; up != nil {
			links = append(links, platform.LinkUse{Link: up, Direction: platform.Up})
		}
		if h.sw != gw { // gateway backplane, unless already added above
			links = append(links, bpOf(gw)...)
		}
		if err := as.AddRoute(h.fqdn, gw, links, true); err != nil {
			return err
		}
	}
	// Routes host -> host.
	for i, a := range hosts {
		for j, b := range hosts {
			if i >= j {
				continue
			}
			var links []platform.LinkUse
			links = append(links, platform.LinkUse{Link: a.nicLink, Direction: platform.Up})
			if a.sw == b.sw {
				// Same equipment: through its backplane only.
				links = append(links, bpOf(a.sw)...)
			} else {
				links = append(links, bpOf(a.sw)...)
				if up := uplink[a.sw]; up != nil {
					links = append(links, platform.LinkUse{Link: up, Direction: platform.Up})
				}
				// The site gateway is traversed unless it is one of the
				// endpoints' own switches (already accounted above/below).
				if a.sw != gw && b.sw != gw {
					links = append(links, bpOf(gw)...)
				}
				if down := uplink[b.sw]; down != nil {
					links = append(links, platform.LinkUse{Link: down, Direction: platform.Down})
				}
				links = append(links, bpOf(b.sw)...)
			}
			links = append(links, platform.LinkUse{Link: b.nicLink, Direction: platform.Down})
			if err := as.AddRoute(a.fqdn, b.fqdn, links, true); err != nil {
				return err
			}
		}
	}
	return nil
}

// generateCabinets builds the abstracted platform: one Cluster-routing AS
// per cluster, aggregation structure collapsed.
func (g *generator) generateCabinets() (*platform.Platform, error) {
	p := platform.New("AS_grid5000", platform.RoutingFull)
	root := p.Root()

	for _, siteID := range g.ref.SiteIDs() {
		site := g.ref.Sites[siteID]
		as, err := root.AddAS("AS_"+siteID, platform.RoutingFull)
		if err != nil {
			return nil, err
		}
		if _, err := as.AddRouter(site.Gateway); err != nil {
			return nil, err
		}
		for _, cid := range site.ClusterIDs() {
			cluster := site.Clusters[cid]
			cas, err := as.AddAS("AS_"+cid, platform.RoutingCluster)
			if err != nil {
				return nil, err
			}
			gwName := cid + "-gw." + siteID
			if _, err := cas.AddRouter(gwName); err != nil {
				return nil, err
			}
			var rate float64
			for _, nid := range cluster.NodeIDs() {
				node := cluster.Nodes[nid]
				rate = node.Interfaces[0].RateBps
				fqdn := g5k.FQDN(nid, siteID)
				h, err := cas.AddHost(fqdn, cluster.GFlops*1e9)
				if err != nil {
					return nil, err
				}
				h.Props = map[string]string{
					"cluster": cid,
					"site":    siteID,
					"class":   cluster.NodeClass,
				}
			}
			// Aggregate uplink capacity of the cluster's switches (flat
			// clusters plug straight into the router: no backbone link).
			var bb *platform.Link
			total := g.clusterUplinkCapacity(site, cluster)
			if total > 0 {
				bb, err = cas.AddLink(cid+"_bb", bytesPerSec(total), g.opts.intraLat(), g.opts.AccessPolicy)
				if err != nil {
					return nil, err
				}
			}
			if err := cas.SetClusterTopology(gwName, bytesPerSec(rate), g.opts.intraLat(), g.opts.AccessPolicy, bb); err != nil {
				return nil, err
			}
			// Connect the cluster to the site gateway.
			if err := as.AddASRoute("AS_"+cid, gwName, site.Gateway, "", nil, true); err != nil {
				return nil, err
			}
		}
		// Cluster-to-cluster inside the site: through the gateway, no
		// extra links (the router is assumed non-blocking here).
		cids := site.ClusterIDs()
		for i, a := range cids {
			for _, b := range cids[i+1:] {
				if err := as.AddASRoute("AS_"+a, a+"-gw."+siteID, "AS_"+b, b+"-gw."+siteID, nil, true); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := g.addBackbone(p, root, func(siteID string) (string, string) {
		return "AS_" + siteID, g.ref.Sites[siteID].Gateway
	}); err != nil {
		return nil, err
	}
	return p, nil
}

// clusterUplinkCapacity sums the uplink rates of the switches hosting the
// cluster's nodes (0 when nodes plug straight into the site router).
func (g *generator) clusterUplinkCapacity(site *g5k.Site, cluster *g5k.Cluster) float64 {
	seen := make(map[string]bool)
	total := 0.0
	for _, n := range cluster.Nodes {
		sw := n.Interfaces[0].Switch
		if seen[sw] || sw == site.Gateway {
			continue
		}
		seen[sw] = true
		for _, up := range site.Equipment[sw].Uplinks {
			if up.To == site.Gateway {
				total += up.RateBps
			}
		}
	}
	return total
}

// backboneHop is one traversal of a backbone segment.
type backboneHop struct {
	link *platform.Link
	dir  platform.Direction
}

// addBackbone creates backbone links and AS routes between every site
// pair, routing across the backbone graph (hubs + segments).
func (g *generator) addBackbone(p *platform.Platform, root *platform.AS, siteEndpoint func(siteID string) (asID, gw string)) error {
	for _, hub := range g.ref.Hubs {
		if _, err := root.AddRouter(hub); err != nil {
			return err
		}
	}
	links := make(map[string]*platform.Link, len(g.ref.Backbone))
	for _, b := range g.ref.Backbone {
		l, err := root.AddLink(b.ID, bytesPerSec(b.RateBps), g.opts.bbLat(b.LatencyS), platform.FullDuplex)
		if err != nil {
			return err
		}
		links[b.ID] = l
	}
	sites := g.ref.SiteIDs()
	for i, a := range sites {
		for _, b := range sites[i+1:] {
			hops, err := g.backbonePath(g.ref.Sites[a].Gateway, g.ref.Sites[b].Gateway, links)
			if err != nil {
				return err
			}
			uses := make([]platform.LinkUse, len(hops))
			for k, h := range hops {
				uses[k] = platform.LinkUse{Link: h.link, Direction: h.dir}
			}
			asA, gwA := siteEndpoint(a)
			asB, gwB := siteEndpoint(b)
			if err := root.AddASRoute(asA, gwA, asB, gwB, uses, true); err != nil {
				return err
			}
		}
	}
	return nil
}

// backbonePath finds the shortest hop path between two gateway equipments
// over the backbone segments (BFS; the backbone graph is tiny).
func (g *generator) backbonePath(from, to string, links map[string]*platform.Link) ([]backboneHop, error) {
	type edge struct {
		to   string
		link *platform.Link
		dir  platform.Direction
	}
	adj := make(map[string][]edge)
	for _, b := range g.ref.Backbone {
		l := links[b.ID]
		adj[b.From] = append(adj[b.From], edge{to: b.To, link: l, dir: platform.Up})
		adj[b.To] = append(adj[b.To], edge{to: b.From, link: l, dir: platform.Down})
	}
	type state struct {
		node string
		path []backboneHop
	}
	visited := map[string]bool{from: true}
	queue := []state{{node: from}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.node == to {
			return cur.path, nil
		}
		for _, e := range adj[cur.node] {
			if visited[e.to] {
				continue
			}
			visited[e.to] = true
			next := make([]backboneHop, len(cur.path), len(cur.path)+1)
			copy(next, cur.path)
			next = append(next, backboneHop{link: e.link, dir: e.dir})
			queue = append(queue, state{node: e.to, path: next})
		}
	}
	return nil, fmt.Errorf("platgen: no backbone path %s -> %s", from, to)
}

// generateFlat builds the whole platform in a single AS with an explicit
// route for every host pair (the pre-AS situation, for ablation).
func (g *generator) generateFlat() (*platform.Platform, error) {
	p := platform.New("AS_grid5000_flat", platform.RoutingFull)
	root := p.Root()

	type flatHost struct {
		hostInfo
		toGW []platform.LinkUse // path from host up to its site gateway
	}
	var hosts []flatHost
	gwBySite := make(map[string]string)

	for _, siteID := range g.ref.SiteIDs() {
		site := g.ref.Sites[siteID]
		gwBySite[siteID] = site.Gateway
		eqIDs := make([]string, 0, len(site.Equipment))
		for id := range site.Equipment {
			eqIDs = append(eqIDs, id)
		}
		sort.Strings(eqIDs)
		uplink := make(map[string]*platform.Link)
		for _, id := range eqIDs {
			if _, err := root.AddRouter(id); err != nil {
				return nil, err
			}
		}
		for _, id := range eqIDs {
			eq := site.Equipment[id]
			for _, up := range eq.Uplinks {
				l, err := root.AddLink(fmt.Sprintf("%s_%s", id, up.To),
					bytesPerSec(up.RateBps), g.opts.intraLat(), g.opts.AccessPolicy)
				if err != nil {
					return nil, err
				}
				if up.To == site.Gateway {
					uplink[id] = l
				}
			}
		}
		for _, cid := range site.ClusterIDs() {
			cluster := site.Clusters[cid]
			for _, nid := range cluster.NodeIDs() {
				node := cluster.Nodes[nid]
				itf := node.Interfaces[0]
				fqdn := g5k.FQDN(nid, siteID)
				h, err := root.AddHost(fqdn, cluster.GFlops*1e9)
				if err != nil {
					return nil, err
				}
				h.Props = map[string]string{"cluster": cid, "site": siteID, "class": cluster.NodeClass, "switch": itf.Switch}
				nic, err := root.AddLink(fqdn+"_nic", bytesPerSec(itf.RateBps), g.opts.intraLat(), g.opts.AccessPolicy)
				if err != nil {
					return nil, err
				}
				fh := flatHost{hostInfo: hostInfo{fqdn: fqdn, nicLink: nic, sw: itf.Switch, site: siteID}}
				fh.toGW = []platform.LinkUse{{Link: nic, Direction: platform.Up}}
				if up := uplink[itf.Switch]; up != nil {
					fh.toGW = append(fh.toGW, platform.LinkUse{Link: up, Direction: platform.Up})
				}
				hosts = append(hosts, fh)
			}
		}
	}

	// Backbone links and gateway-to-gateway paths.
	for _, hub := range g.ref.Hubs {
		if _, err := root.AddRouter(hub); err != nil {
			return nil, err
		}
	}
	bbLinks := make(map[string]*platform.Link)
	for _, b := range g.ref.Backbone {
		l, err := root.AddLink(b.ID, bytesPerSec(b.RateBps), g.opts.bbLat(b.LatencyS), platform.FullDuplex)
		if err != nil {
			return nil, err
		}
		bbLinks[b.ID] = l
	}
	bbPath := make(map[[2]string][]platform.LinkUse)
	sites := g.ref.SiteIDs()
	for _, a := range sites {
		for _, b := range sites {
			if a == b {
				continue
			}
			hops, err := g.backbonePath(gwBySite[a], gwBySite[b], bbLinks)
			if err != nil {
				return nil, err
			}
			uses := make([]platform.LinkUse, len(hops))
			for k, h := range hops {
				uses[k] = platform.LinkUse{Link: h.link, Direction: h.dir}
			}
			bbPath[[2]string{a, b}] = uses
		}
	}

	reverse := func(us []platform.LinkUse) []platform.LinkUse {
		out := make([]platform.LinkUse, len(us))
		for i, u := range us {
			out[len(us)-1-i] = u.Reverse()
		}
		return out
	}

	// The full O(N^2) route table.
	for i, a := range hosts {
		for j, b := range hosts {
			if i >= j {
				continue
			}
			var links []platform.LinkUse
			if a.site == b.site {
				if a.sw == b.sw {
					links = append(links, platform.LinkUse{Link: a.nicLink, Direction: platform.Up},
						platform.LinkUse{Link: b.nicLink, Direction: platform.Down})
				} else {
					links = append(links, a.toGW...)
					links = append(links, reverse(b.toGW)...)
				}
			} else {
				links = append(links, a.toGW...)
				links = append(links, bbPath[[2]string{a.site, b.site}]...)
				links = append(links, reverse(b.toGW)...)
			}
			if err := root.AddRoute(a.fqdn, b.fqdn, links, true); err != nil {
				return nil, err
			}
		}
	}
	return p, nil
}
