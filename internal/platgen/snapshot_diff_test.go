package platgen

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"pilgrim/internal/g5k"
	"pilgrim/internal/pilgrim"
	"pilgrim/internal/platform"
	"pilgrim/internal/sim"
)

// randomReference synthesizes a valid Grid'5000-style reference: 2-4
// sites, each with a gateway router, optional aggregation switches, 1-3
// clusters of 2-5 nodes, and a backbone chaining the gateways through an
// optional hub.
func randomReference(rng *rand.Rand) *g5k.Reference {
	ref := &g5k.Reference{Sites: map[string]*g5k.Site{}}
	nSites := 2 + rng.Intn(3)
	var gws []string
	for si := 0; si < nSites; si++ {
		sid := fmt.Sprintf("site%d", si)
		gw := "gw-" + sid
		site := &g5k.Site{
			UID:       sid,
			Gateway:   gw,
			Clusters:  map[string]*g5k.Cluster{},
			Equipment: map[string]*g5k.Equipment{gw: {UID: gw, Kind: "router", BackplaneBps: 4e10}},
		}
		// Aggregation switches with uplinks to the gateway.
		var switches []string
		for wi := 0; wi < rng.Intn(3); wi++ {
			sw := fmt.Sprintf("sw%d-%s", wi, sid)
			site.Equipment[sw] = &g5k.Equipment{
				UID: sw, Kind: "switch", BackplaneBps: 2e10,
				Uplinks: []g5k.Uplink{{To: gw, RateBps: 1e10}},
			}
			switches = append(switches, sw)
		}
		nClusters := 1 + rng.Intn(3)
		for ci := 0; ci < nClusters; ci++ {
			cid := fmt.Sprintf("c%d%s", ci, sid)
			cluster := &g5k.Cluster{
				UID: cid, GFlops: 8 + rng.Float64()*8,
				Nodes: map[string]*g5k.Node{}, NodeClass: "default",
			}
			// All nodes of a cluster plug into one equipment.
			attach := site.Gateway
			if len(switches) > 0 && rng.Intn(2) == 0 {
				attach = switches[rng.Intn(len(switches))]
			}
			rate := []float64{1e9, 1e10}[rng.Intn(2)]
			for ni := 0; ni < 2+rng.Intn(4); ni++ {
				nid := fmt.Sprintf("%s-%d", cid, ni+1)
				cluster.Nodes[nid] = &g5k.Node{
					UID: nid,
					Interfaces: []g5k.Interface{{
						Device: "eth0", RateBps: rate, Switch: attach,
					}},
				}
			}
			site.Clusters[cid] = cluster
		}
		ref.Sites[sid] = site
		gws = append(gws, gw)
	}
	// Backbone: either a gateway chain or a star through a hub.
	if rng.Intn(2) == 0 {
		ref.Hubs = []string{"hub0"}
		for i, gw := range gws {
			ref.Backbone = append(ref.Backbone, &g5k.BackboneLink{
				ID: fmt.Sprintf("bb%d", i), From: gw, To: "hub0",
				RateBps: 1e10, LatencyS: 1e-3 + rng.Float64()*4e-3,
			})
		}
	} else {
		for i := 0; i+1 < len(gws); i++ {
			ref.Backbone = append(ref.Backbone, &g5k.BackboneLink{
				ID: fmt.Sprintf("bb%d", i), From: gws[i], To: gws[i+1],
				RateBps: 1e10, LatencyS: 1e-3 + rng.Float64()*4e-3,
			})
		}
	}
	return ref
}

// requireIdenticalRoute asserts builder and compiled resolution agree bit
// for bit: same links, same order, same directions, same latency bits.
func requireIdenticalRoute(t *testing.T, seed int64, s *platform.Snapshot, a, b string, want platform.Route, got *platform.CompiledRoute) {
	t.Helper()
	if len(want.Links) != len(got.Refs) {
		t.Fatalf("seed %d %s->%s: %d links vs %d refs", seed, a, b, len(want.Links), len(got.Refs))
	}
	for i, u := range want.Links {
		ref := got.Refs[i]
		if s.LinkName(ref.LinkIndex()) != u.Link.ID || ref.Direction() != u.Direction {
			t.Fatalf("seed %d %s->%s hop %d: want %s:%v got %s:%v", seed, a, b, i,
				u.Link.ID, u.Direction, s.LinkName(ref.LinkIndex()), ref.Direction())
		}
	}
	if math.Float64bits(want.Latency) != math.Float64bits(s.RouteLatency(got)) {
		t.Fatalf("seed %d %s->%s: latency bits differ: %v vs %v", seed, a, b, want.Latency, s.RouteLatency(got))
	}
}

// TestSnapshotDifferentialRandomPlatforms is the snapshot-equivalence
// property test: over randomized platgen platforms (both flavours), every
// host-pair route resolved through the compiled Snapshot must be
// bit-identical to Platform.RouteBetween, and forecast results must be
// bit-identical across (a) an independent recompilation and (b) a
// WithLinkState round trip back to the original values.
func TestSnapshotDifferentialRandomPlatforms(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ref := randomReference(rng)
		variant := []Variant{G5KTest, G5KCabinets}[seed%2]
		plat, err := Generate(ref, Options{Variant: variant})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		snap := plat.Snapshot()

		hosts := plat.Hosts()
		for _, a := range hosts {
			for _, b := range hosts {
				if a == b {
					continue
				}
				want, errW := plat.RouteBetween(a.ID, b.ID)
				got, errG := snap.Route(a.ID, b.ID)
				if (errW == nil) != (errG == nil) {
					t.Fatalf("seed %d %s->%s: RouteBetween err=%v Snapshot err=%v", seed, a.ID, b.ID, errW, errG)
				}
				if errW != nil {
					continue
				}
				requireIdenticalRoute(t, seed, snap, a.ID, b.ID, want, got)
			}
		}

		// Forecast equivalence: the same workload through the engine on
		// (1) the memoized snapshot, (2) a fresh independent compilation,
		// (3) a WithLinkState round trip — all bit-identical.
		var reqs []pilgrim.TransferRequest
		for k := 0; k < 6 && k < len(hosts)/2; k++ {
			reqs = append(reqs, pilgrim.TransferRequest{
				Src: hosts[rng.Intn(len(hosts))].ID, Dst: hosts[rng.Intn(len(hosts))].ID,
				Size: 1e6 + rng.Float64()*1e9,
			})
		}
		for i := range reqs {
			for reqs[i].Src == reqs[i].Dst {
				reqs[i].Dst = hosts[rng.Intn(len(hosts))].ID
			}
		}
		cfg := sim.DefaultConfig()
		base, err := pilgrim.PredictTransfers(pilgrim.PlatformEntry{Platform: plat, Config: cfg, Snapshot: snap}, reqs, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		recompiled, err := pilgrim.PredictTransfers(pilgrim.PlatformEntry{Platform: plat, Config: cfg, Snapshot: plat.Compile()}, reqs, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Round-trip: revise a few random links, then restore the exact
		// original values.
		var ups, downs []platform.LinkUpdate
		for k := 0; k < 3; k++ {
			li := int32(rng.Intn(snap.NumLinks()))
			name := snap.LinkName(li)
			ups = append(ups, platform.LinkUpdate{Link: name, Bandwidth: 1e6, Latency: 0.05})
			downs = append(downs, platform.LinkUpdate{Link: name, Bandwidth: snap.LinkBandwidth(li), Latency: snap.LinkLatency(li)})
		}
		bumped, err := snap.WithLinkState(ups)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		restored, err := bumped.WithLinkState(downs)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		roundTrip, err := pilgrim.PredictTransfers(pilgrim.PlatformEntry{Platform: plat, Config: cfg, Snapshot: restored}, reqs, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := range base {
			if math.Float64bits(base[i].Duration) != math.Float64bits(recompiled[i].Duration) {
				t.Fatalf("seed %d transfer %d: recompiled duration %v != %v", seed, i, recompiled[i].Duration, base[i].Duration)
			}
			if math.Float64bits(base[i].Duration) != math.Float64bits(roundTrip[i].Duration) {
				t.Fatalf("seed %d transfer %d: round-trip duration %v != %v", seed, i, roundTrip[i].Duration, base[i].Duration)
			}
		}
	}
}
