package platgen

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"pilgrim/internal/pilgrim"
	"pilgrim/internal/platform"
	"pilgrim/internal/sim"
)

// obsBatch is one timestamped observation batch of the differential
// stream.
type obsBatch struct {
	t       int64
	updates []platform.LinkUpdate
}

// epochAt returns the directly chained epoch governing time at, where
// direct[i+1] is the epoch published by stream[i] (direct[0] = base).
func epochAt(stream []obsBatch, direct []*platform.Snapshot, at int64) *platform.Snapshot {
	idx := 0
	for i, o := range stream {
		if o.t <= at {
			idx = i + 1
		}
	}
	return direct[idx]
}

// TestTimelineDifferentialRandomPlatforms is the temporal-equivalence
// property test: over randomized platgen platforms, a stream of
// timestamped observation batches folded through a Timeline must yield —
// at every query time — epochs whose simulations are bit-identical to the
// same epochs built directly by chaining Snapshot.WithLinkState. This
// pins the tentpole claim that the timeline is pure bookkeeping: history
// indexing never perturbs the simulated physics.
func TestTimelineDifferentialRandomPlatforms(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed * 977))
		ref := randomReference(rng)
		variant := []Variant{G5KTest, G5KCabinets}[seed%2]
		plat, err := Generate(ref, Options{Variant: variant})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		snap := plat.Snapshot()
		hosts := plat.Hosts()
		cfg := sim.DefaultConfig()

		// A fixed transfer workload simulated against every epoch.
		var reqs []pilgrim.TransferRequest
		for k := 0; k < 5; k++ {
			reqs = append(reqs, pilgrim.TransferRequest{
				Src: hosts[rng.Intn(len(hosts))].ID, Dst: hosts[rng.Intn(len(hosts))].ID,
				Size: 1e6 + rng.Float64()*1e9,
			})
		}
		for i := range reqs {
			for reqs[i].Src == reqs[i].Dst {
				reqs[i].Dst = hosts[rng.Intn(len(hosts))].ID
			}
		}

		// Random observation stream: increasing timestamps, random link
		// subsets, bandwidth and/or latency revisions.
		var stream []obsBatch
		now := int64(1000)
		for b := 0; b < 9; b++ {
			now += 10 + int64(rng.Intn(300))
			var ups []platform.LinkUpdate
			for k := 0; k < 1+rng.Intn(4); k++ {
				li := int32(rng.Intn(snap.NumLinks()))
				u := platform.LinkUpdate{Link: snap.LinkName(li), Bandwidth: -1, Latency: -1}
				if rng.Intn(3) != 0 {
					u.Bandwidth = 1e7 + rng.Float64()*1e9
				}
				if rng.Intn(3) == 0 {
					u.Latency = 1e-4 + rng.Float64()*1e-2
				}
				ups = append(ups, u)
			}
			stream = append(stream, obsBatch{t: now, updates: ups})
		}

		// Fold the stream through a timeline (bounded wider than the
		// stream) and, independently, chain epochs by hand.
		tl := platform.NewTimeline(snap, 16)
		direct := []*platform.Snapshot{snap}
		for _, o := range stream {
			if _, err := tl.Append(o.t, fmt.Sprintf("seed%d", seed), o.updates); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			next, err := direct[len(direct)-1].WithLinkState(o.updates)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			direct = append(direct, next)
		}

		predict := func(s *platform.Snapshot) []pilgrim.Prediction {
			out, err := pilgrim.PredictTransfers(pilgrim.PlatformEntry{Platform: plat, Config: cfg, Snapshot: s}, reqs, nil)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return out
		}

		// Query at every observation time, between observations, before
		// the first, and after the last: the timeline must answer the
		// exact same simulated physics as the directly chained epoch.
		ats := []int64{stream[0].t - 1, stream[len(stream)-1].t + 1000}
		for _, o := range stream {
			ats = append(ats, o.t, o.t+5)
		}
		for _, at := range ats {
			got := predict(tl.AtTime(at))
			want := predict(epochAt(stream, direct, at))
			for i := range want {
				if math.Float64bits(got[i].Duration) != math.Float64bits(want[i].Duration) {
					t.Fatalf("seed %d at=%d transfer %d: timeline duration %v != direct %v",
						seed, at, i, got[i].Duration, want[i].Duration)
				}
			}
		}
	}
}
