package platgen

import (
	"math"
	"strings"
	"testing"

	"pilgrim/internal/g5k"
	"pilgrim/internal/platform"
	"pilgrim/internal/sim"
)

func genTest(t testing.TB, ref *g5k.Reference, opts Options) *platform.Platform {
	t.Helper()
	p, err := Generate(ref, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGenerateTestVariantMini(t *testing.T) {
	p := genTest(t, g5k.Mini(), Options{Variant: G5KTest})
	if p.NumHosts() != 14 { // 6 sagittaire + 8 graphene
		t.Errorf("hosts = %d, want 14", p.NumHosts())
	}
	if err := p.Validate(0); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestGenerateFullDataset(t *testing.T) {
	ref := g5k.Default()
	p := genTest(t, ref, Options{Variant: G5KTest})
	if p.NumHosts() != ref.NumNodes() {
		t.Errorf("hosts = %d, want %d", p.NumHosts(), ref.NumNodes())
	}
	// Spot-check routes rather than all ~266k pairs.
	if err := p.Validate(40); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestIntraClusterRouteFlat(t *testing.T) {
	// sagittaire is flat: two nodes' route is just the two NICs.
	p := genTest(t, g5k.Mini(), Options{Variant: G5KTest})
	r, err := p.RouteBetween("sagittaire-1.lyon.grid5000.fr", "sagittaire-2.lyon.grid5000.fr")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Links) != 2 {
		ids := routeIDs(r)
		t.Fatalf("flat intra-cluster route = %v, want 2 NICs", ids)
	}
	if math.Abs(r.Latency-2e-4) > 1e-12 {
		t.Errorf("latency = %v, want 2e-4 (hardcoded 1e-4 per link)", r.Latency)
	}
}

func TestIntraClusterRouteGrouped(t *testing.T) {
	// graphene-1 (sgraphene1) to graphene-5 (sgraphene2) in Mini crosses
	// both uplinks: nic, up1, up2, nic = 4 links.
	p := genTest(t, g5k.Mini(), Options{Variant: G5KTest})
	r, err := p.RouteBetween("graphene-1.nancy.grid5000.fr", "graphene-5.nancy.grid5000.fr")
	if err != nil {
		t.Fatal(err)
	}
	ids := routeIDs(r)
	if len(r.Links) != 4 {
		t.Fatalf("cross-group route = %v, want 4 links", ids)
	}
	if !strings.Contains(strings.Join(ids, ","), "sgraphene1_gw-nancy") {
		t.Errorf("route misses uplink: %v", ids)
	}
	// Same group: NICs only (non-blocking switch).
	r2, err := p.RouteBetween("graphene-1.nancy.grid5000.fr", "graphene-2.nancy.grid5000.fr")
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Links) != 2 {
		t.Errorf("same-group route = %v, want 2 links", routeIDs(r2))
	}
}

func TestCrossSiteRoute(t *testing.T) {
	p := genTest(t, g5k.Mini(), Options{Variant: G5KTest})
	r, err := p.RouteBetween("sagittaire-1.lyon.grid5000.fr", "graphene-1.nancy.grid5000.fr")
	if err != nil {
		t.Fatal(err)
	}
	ids := strings.Join(routeIDs(r), ",")
	// nic, two backbone segments via Paris, downlink, nic.
	for _, want := range []string{"sagittaire-1.lyon.grid5000.fr_nic", "renater-lyon-paris", "renater-nancy-paris", "sgraphene1_gw-nancy", "graphene-1.nancy.grid5000.fr_nic"} {
		if !strings.Contains(ids, want) {
			t.Errorf("cross-site route %v misses %s", ids, want)
		}
	}
	// Hardcoded backbone latency: 2 segments * 2.25e-3 + intra legs.
	wantLat := 2*2.25e-3 + 3*1e-4
	if math.Abs(r.Latency-wantLat) > 1e-9 {
		t.Errorf("latency = %v, want %v", r.Latency, wantLat)
	}
}

func TestMeasuredLatenciesOption(t *testing.T) {
	p := genTest(t, g5k.Mini(), Options{Variant: G5KTest, UseMeasuredLatencies: true})
	r, err := p.RouteBetween("sagittaire-1.lyon.grid5000.fr", "graphene-1.nancy.grid5000.fr")
	if err != nil {
		t.Fatal(err)
	}
	// Mini dataset: lyon-paris 2.4e-3, nancy-paris 1.7e-3.
	wantLat := 2.4e-3 + 1.7e-3 + 3*1e-4
	if math.Abs(r.Latency-wantLat) > 1e-9 {
		t.Errorf("latency = %v, want %v", r.Latency, wantLat)
	}
}

func TestAccessLinksAreSharedHalfDuplex(t *testing.T) {
	// The paper's generator emitted SHARED access/aggregation links; the
	// backbone is full-duplex.
	p := genTest(t, g5k.Mini(), Options{Variant: G5KTest})
	nic := p.Link("sagittaire-1.lyon.grid5000.fr_nic")
	if nic == nil || nic.Policy != platform.Shared {
		t.Errorf("NIC policy = %v, want Shared", nic)
	}
	up := p.Link("sgraphene1_gw-nancy")
	if up == nil || up.Policy != platform.Shared {
		t.Errorf("uplink policy = %v, want Shared", up)
	}
	bb := p.Link("renater-lyon-paris")
	if bb == nil || bb.Policy != platform.FullDuplex {
		t.Errorf("backbone policy = %v, want FullDuplex", bb)
	}
	if up.Bandwidth != 10e9/8 {
		t.Errorf("uplink bandwidth = %v B/s, want 1.25e9", up.Bandwidth)
	}
}

func TestEquipmentLimitsOption(t *testing.T) {
	ref := g5k.Mini()
	base := genTest(t, ref, Options{Variant: G5KTest})
	lim := genTest(t, ref, Options{Variant: G5KTest, EquipmentLimits: true})
	if lim.NumLinks() <= base.NumLinks() {
		t.Errorf("EquipmentLimits added no links: %d vs %d", lim.NumLinks(), base.NumLinks())
	}
	if lim.Link("gw-nancy_backplane") == nil {
		t.Error("missing gw-nancy backplane link")
	}
	// A same-group graphene route passes through its switch backplane.
	r, err := lim.RouteBetween("graphene-1.nancy.grid5000.fr", "graphene-2.nancy.grid5000.fr")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(routeIDs(r), ","), "sgraphene1_backplane") {
		t.Errorf("route misses backplane: %v", routeIDs(r))
	}
	// No duplicate link in any sampled route (regression for the
	// gateway-endpoint case).
	hosts := lim.Hosts()
	for _, a := range hosts {
		for _, b := range hosts {
			if a == b {
				continue
			}
			rr, err := lim.RouteBetween(a.ID, b.ID)
			if err != nil {
				t.Fatal(err)
			}
			seen := map[string]bool{}
			for _, u := range rr.Links {
				if seen[u.Link.ID] {
					t.Fatalf("duplicate link %s in route %s->%s: %v", u.Link.ID, a.ID, b.ID, routeIDs(rr))
				}
				seen[u.Link.ID] = true
			}
		}
	}
}

func TestGenerateCabinets(t *testing.T) {
	ref := g5k.Mini()
	p := genTest(t, ref, Options{Variant: G5KCabinets})
	if p.NumHosts() != ref.NumNodes() {
		t.Errorf("hosts = %d, want %d", p.NumHosts(), ref.NumNodes())
	}
	if err := p.Validate(0); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Abstraction: graphene's intra-cluster cross-group route goes
	// through the aggregated cluster backbone, not individual uplinks.
	r, err := p.RouteBetween("graphene-1.nancy.grid5000.fr", "graphene-5.nancy.grid5000.fr")
	if err != nil {
		t.Fatal(err)
	}
	ids := strings.Join(routeIDs(r), ",")
	if !strings.Contains(ids, "graphene_bb") {
		t.Errorf("cabinets route misses cluster backbone: %v", ids)
	}
	if strings.Contains(ids, "sgraphene1") {
		t.Errorf("cabinets route should not model aggregation switches: %v", ids)
	}
}

func TestCabinetsLosesAggregationBottleneck(t *testing.T) {
	// The graphene_bb aggregate (2x10G in Mini) is wider than one uplink:
	// the abstraction underestimates contention. Compare worst-case
	// cross-group capacity.
	ref := g5k.Mini()
	test := genTest(t, ref, Options{Variant: G5KTest})
	cab := genTest(t, ref, Options{Variant: G5KCabinets})
	up := test.Link("sgraphene1_gw-nancy")
	bb := cab.Link("graphene_bb")
	if up == nil || bb == nil {
		t.Fatal("missing links")
	}
	if bb.Bandwidth <= up.Bandwidth {
		t.Errorf("cluster bb %v should exceed single uplink %v", bb.Bandwidth, up.Bandwidth)
	}
}

func TestFlatVariant(t *testing.T) {
	ref := g5k.Mini()
	p := genTest(t, ref, Options{Variant: G5KTest, Flat: true})
	if p.NumHosts() != ref.NumNodes() {
		t.Errorf("hosts = %d", p.NumHosts())
	}
	if len(p.Root().Children()) != 0 {
		t.Error("flat platform should have no child AS")
	}
	if err := p.Validate(0); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Flat and hierarchical must resolve identical link sequences.
	h := genTest(t, ref, Options{Variant: G5KTest})
	for _, pair := range [][2]string{
		{"sagittaire-1.lyon.grid5000.fr", "sagittaire-3.lyon.grid5000.fr"},
		{"graphene-1.nancy.grid5000.fr", "graphene-6.nancy.grid5000.fr"},
		{"sagittaire-2.lyon.grid5000.fr", "graphene-7.nancy.grid5000.fr"},
	} {
		rf, err := p.RouteBetween(pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		rh, err := h.RouteBetween(pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if strings.Join(routeIDs(rf), ",") != strings.Join(routeIDs(rh), ",") {
			t.Errorf("%v: flat %v vs hier %v", pair, routeIDs(rf), routeIDs(rh))
		}
	}
}

func TestHostProperties(t *testing.T) {
	p := genTest(t, g5k.Mini(), Options{Variant: G5KTest})
	h := p.Host("graphene-1.nancy.grid5000.fr")
	if h == nil {
		t.Fatal("missing host")
	}
	if h.Prop("cluster") != "graphene" || h.Prop("site") != "nancy" || h.Prop("class") != "xeon2010" {
		t.Errorf("props = %v", h.Props)
	}
	if h.Prop("switch") != "sgraphene1" {
		t.Errorf("switch prop = %q", h.Prop("switch"))
	}
	if h.Speed != 10.1e9 {
		t.Errorf("speed = %v", h.Speed)
	}
	sag := p.HostsWhere("cluster", "sagittaire")
	if len(sag) != 6 {
		t.Errorf("sagittaire hosts = %d", len(sag))
	}
}

func TestInvalidReferenceRejected(t *testing.T) {
	ref := g5k.Mini()
	ref.Sites["lyon"].Gateway = "ghost"
	if _, err := Generate(ref, Options{}); err == nil {
		t.Fatal("invalid reference accepted")
	}
}

// TestSimulationOnGeneratedPlatform is the cross-package integration
// check: simulate the paper's worked example on the *generated* g5k_test
// platform (capricorne-36 -> griffon-50 and capricorne-1). The absolute
// durations differ from the handcrafted §IV-C2 topology (the generated
// backbone goes through Paris, doubling the hardcoded latency), but the
// qualitative result must hold: the intra-site transfer is much faster.
func TestSimulationOnGeneratedPlatform(t *testing.T) {
	p := genTest(t, g5k.Default(), Options{Variant: G5KTest})
	cfg := sim.DefaultConfig()
	cfg.GammaUsesLatencyFactor = true
	res, err := sim.Predict(p, cfg, []sim.Transfer{
		{Src: "capricorne-36.lyon.grid5000.fr", Dst: "griffon-50.nancy.grid5000.fr", Size: 5e8},
		{Src: "capricorne-36.lyon.grid5000.fr", Dst: "capricorne-1.lyon.grid5000.fr", Size: 5e8},
	})
	if err != nil {
		t.Fatal(err)
	}
	cross, intra := res[0].Duration, res[1].Duration
	if intra >= cross/2 {
		t.Errorf("intra %.3f s should be well below cross %.3f s", intra, cross)
	}
	if intra < 4 || intra > 6 {
		t.Errorf("intra duration %.3f s outside plausible band [4,6]", intra)
	}
}

func routeIDs(r platform.Route) []string {
	out := make([]string, len(r.Links))
	for i, u := range r.Links {
		out[i] = u.Link.ID
	}
	return out
}

func BenchmarkGenerateG5KTest(b *testing.B) {
	ref := g5k.Default()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(ref, Options{Variant: G5KTest}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateG5KCabinets(b *testing.B) {
	ref := g5k.Default()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(ref, Options{Variant: G5KCabinets}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateFlat(b *testing.B) {
	ref := g5k.Default()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(ref, Options{Variant: G5KTest, Flat: true}); err != nil {
			b.Fatal(err)
		}
	}
}
