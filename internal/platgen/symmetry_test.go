package platgen

import (
	"testing"

	"pilgrim/internal/g5k"
	"pilgrim/internal/platform"
)

// TestRouteSymmetryProperty checks, over every host pair of the Mini
// dataset and both variants, that the reverse route mirrors the forward
// route: same links in reverse order, full-duplex directions flipped.
// Asymmetric routes would silently skew the sharing model.
func TestRouteSymmetryProperty(t *testing.T) {
	for _, variant := range []Variant{G5KTest, G5KCabinets} {
		p := genTest(t, g5k.Mini(), Options{Variant: variant})
		hosts := p.Hosts()
		for _, a := range hosts {
			for _, b := range hosts {
				if a == b {
					continue
				}
				fwd, err := p.RouteBetween(a.ID, b.ID)
				if err != nil {
					t.Fatalf("%v %s->%s: %v", variant, a.ID, b.ID, err)
				}
				rev, err := p.RouteBetween(b.ID, a.ID)
				if err != nil {
					t.Fatalf("%v reverse %s->%s: %v", variant, b.ID, a.ID, err)
				}
				if len(fwd.Links) != len(rev.Links) {
					t.Fatalf("%v %s<->%s: lengths %d vs %d",
						variant, a.ID, b.ID, len(fwd.Links), len(rev.Links))
				}
				for i := range fwd.Links {
					f := fwd.Links[i]
					r := rev.Links[len(rev.Links)-1-i]
					if f.Link != r.Link {
						t.Fatalf("%v %s<->%s: link %d mismatch (%s vs %s)",
							variant, a.ID, b.ID, i, f.Link.ID, r.Link.ID)
					}
					if f.Link.Policy == platform.FullDuplex && r.Direction != f.Direction.Reverse() {
						t.Fatalf("%v %s<->%s: direction not mirrored on %s",
							variant, a.ID, b.ID, f.Link.ID)
					}
				}
				if fwd.Latency != rev.Latency {
					t.Fatalf("%v %s<->%s: latency asymmetric (%v vs %v)",
						variant, a.ID, b.ID, fwd.Latency, rev.Latency)
				}
			}
		}
	}
}

// TestGeneratedLatencyTermsAreHardcoded verifies the §IV-C2 behaviour:
// regardless of the reference's measured values, the default generator
// emits 1e-4 s intra-site and 2.25e-3 s backbone latencies.
func TestGeneratedLatencyTermsAreHardcoded(t *testing.T) {
	ref := g5k.Mini()
	// Tamper with the measured latencies; default options must ignore
	// them.
	for _, b := range ref.Backbone {
		b.LatencyS = 99
	}
	p := genTest(t, ref, Options{Variant: G5KTest})
	bb := p.Link("renater-lyon-paris")
	if bb == nil || bb.Latency != 2.25e-3 {
		t.Errorf("backbone latency = %v, want hardcoded 2.25e-3", bb.Latency)
	}
	nic := p.Link("sagittaire-1.lyon.grid5000.fr_nic")
	if nic == nil || nic.Latency != 1e-4 {
		t.Errorf("nic latency = %v, want hardcoded 1e-4", nic.Latency)
	}
}
