package pilgrim

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pilgrim/internal/bgtraffic"
	"pilgrim/internal/metrology"
	"pilgrim/internal/platform"
	"pilgrim/internal/rrd"
	"pilgrim/internal/shard"
	"pilgrim/internal/store"
	"pilgrim/internal/workflow"
)

// DefaultForecastCacheSize is the forecast cache capacity NewServer
// installs; use SetForecastCache to change or disable it.
const DefaultForecastCacheSize = 256

// Server is the Pilgrim HTTP front end: the metrology RRD service and
// PNFS, mounted under /pilgrim/ exactly as in the paper's examples.
type Server struct {
	platforms *Registry
	metrics   *metrology.Registry
	cache     atomic.Pointer[ForecastCache]
	pool      atomic.Pointer[WorkerPool]
	overlays  atomic.Pointer[OverlayCache]
	mux       *http.ServeMux

	// Evaluate limits (0 selects the package defaults).
	maxScenarios atomic.Int64
	maxCells     atomic.Int64

	// differentialOff disables warm-start differential evaluation (the
	// -differential-eval=false escape hatch); the zero value keeps it on.
	differentialOff atomic.Bool

	// legacyJSON routes the hot simulation responses through
	// encoding/json instead of the pooled hand-rolled encoders (the
	// -legacy-json escape hatch); the zero value keeps the hot path on.
	// Output is byte-identical either way.
	legacyJSON atomic.Bool

	// admission bounds the simulation endpoints (nil: unlimited);
	// maxBodyBytes caps request bodies on the body-carrying endpoints
	// (0 selects DefaultMaxBodyBytes).
	admission    atomic.Pointer[Admission]
	maxBodyBytes atomic.Int64

	// shard is the worker's fleet identity (nil: standalone — every
	// platform request is served). When set, platform-scoped requests
	// for platforms the ring assigns elsewhere answer 421 with the
	// owner's address, so a stale client (or a gateway mid-reload)
	// learns where the platform lives instead of silently reading a
	// cold timeline.
	shard       atomic.Pointer[shardIdentity]
	misdirected atomic.Uint64
}

// shardIdentity pairs this worker's name with the fleet's routing table.
type shardIdentity struct {
	self  string
	table *shard.Table
}

// DefaultMaxBodyBytes is the request-body cap applied to update_links,
// evaluate, and predict_workflow (the pilgrimd -max-body-bytes flag).
const DefaultMaxBodyBytes = 16 << 20

// NewServer builds a server over the given platform registry and metric
// registry (either may be empty, disabling the respective service's
// content). Predictions go through a ForecastCache of
// DefaultForecastCacheSize entries.
func NewServer(platforms *Registry, metrics *metrology.Registry) *Server {
	if platforms == nil {
		platforms = NewRegistry()
	}
	if metrics == nil {
		metrics = metrology.NewRegistry()
	}
	s := &Server{
		platforms: platforms,
		metrics:   metrics,
		mux:       http.NewServeMux(),
	}
	s.cache.Store(NewForecastCache(DefaultForecastCacheSize))
	s.pool.Store(NewWorkerPool(DefaultForecastWorkers))
	s.overlays.Store(NewOverlayCache(DefaultOverlayCacheSize))
	s.mux.HandleFunc("GET /pilgrim/platforms", s.handlePlatforms)
	s.mux.HandleFunc("GET /pilgrim/predict_transfers/{platform}", s.handlePredict)
	s.mux.HandleFunc("GET /pilgrim/select_fastest/{platform}", s.handleSelectFastest)
	s.mux.HandleFunc("POST /pilgrim/predict_workflow/{platform}", s.handleWorkflow)
	s.mux.HandleFunc("POST /pilgrim/evaluate/{platform}", s.handleEvaluate)
	s.mux.HandleFunc("GET /pilgrim/bg_estimate/{platform}", s.handleBgEstimateGet)
	s.mux.HandleFunc("POST /pilgrim/bg_estimate/{platform}", s.handleBgEstimatePost)
	s.mux.HandleFunc("POST /pilgrim/update_links/{platform}", s.handleUpdateLinks)
	s.mux.HandleFunc("GET /pilgrim/timeline_stats/{platform}", s.handleTimelineStats)
	s.mux.HandleFunc("GET /pilgrim/cache_stats", s.handleCacheStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /pilgrim/rrd/{tool}/{site}/{host}/{metric}/", s.handleRRD)
	s.mux.HandleFunc("GET /pilgrim/rrd/{tool}/{site}/{host}/{metric}", s.handleRRD)
	return s
}

// SetForecastCache replaces the server's forecast cache with one of the
// given capacity (capacity <= 0 disables caching). Safe to call while
// serving: existing counters and entries are dropped, and concurrent
// in-flight requests keep using the cache they started with.
func (s *Server) SetForecastCache(capacity int) {
	s.cache.Store(NewForecastCache(capacity))
}

// SetForecastWorkers replaces the server's hypothesis worker pool with
// one of the given width (n <= 0 selects DefaultForecastWorkers, 1 gives
// sequential evaluation). Safe to call while serving: counters restart
// and in-flight select_fastest requests finish on the pool they started
// with.
func (s *Server) SetForecastWorkers(n int) {
	s.pool.Store(NewWorkerPool(n))
}

// SetEvaluateLimits bounds evaluate requests: at most maxScenarios
// scenarios and maxCells scenario×query cells per request (either <= 0
// restores the package default).
func (s *Server) SetEvaluateLimits(maxScenarios, maxCells int) {
	s.maxScenarios.Store(int64(maxScenarios))
	s.maxCells.Store(int64(maxCells))
}

// SetOverlayCache replaces the server's scenario-overlay cache with one
// of the given capacity (capacity <= 0 disables cross-request epoch
// reuse).
func (s *Server) SetOverlayCache(capacity int) {
	s.overlays.Store(NewOverlayCache(capacity))
}

// SetAdmission bounds the simulation endpoints (predict_transfers,
// select_fastest, evaluate, predict_workflow): at most maxInflight
// requests at once, at most maxQueue more waiting, the rest shed with
// 429 + Retry-After. maxInflight <= 0 disables admission control. Safe
// to call while serving; in-flight requests finish under the controller
// they were admitted by.
func (s *Server) SetAdmission(maxInflight, maxQueue int, retryAfter time.Duration) {
	s.admission.Store(NewAdmission(maxInflight, maxQueue, retryAfter))
}

// SetMaxBodyBytes caps request bodies on the body-carrying endpoints
// (n <= 0 restores DefaultMaxBodyBytes). Oversized bodies answer a
// structured 413.
func (s *Server) SetMaxBodyBytes(n int64) {
	if n <= 0 {
		n = DefaultMaxBodyBytes
	}
	s.maxBodyBytes.Store(n)
}

// bodyLimit is the configured request-body cap.
func (s *Server) bodyLimit() int64 {
	if n := s.maxBodyBytes.Load(); n > 0 {
		return n
	}
	return DefaultMaxBodyBytes
}

// BodyTooLargeError is the structured 413 body the body-carrying
// endpoints answer when a request exceeds the configured cap.
type BodyTooLargeError struct {
	Error        string `json:"error"`
	MaxBodyBytes int64  `json:"max_body_bytes"`
}

// OverCapacityError is the structured 429 body shed requests receive;
// the Retry-After header carries the same hint in seconds.
type OverCapacityError struct {
	Error             string `json:"error"`
	RetryAfterSeconds int64  `json:"retry_after_seconds"`
}

// admit applies admission control and the optional deadline query
// parameter (seconds, fractional allowed) to a simulation request.
// Returns a context for the work, a cleanup to defer, and ok=false when
// the request was already answered (429 on shed, 504 on a deadline that
// expired while queued, 400 on a malformed deadline). q is the
// request's parsed query — the simulation handlers parse it exactly
// once and share the value (url.Values parsing allocates per call, and
// these are the QPS paths).
func (s *Server) admit(w http.ResponseWriter, r *http.Request, q url.Values) (ctx context.Context, cleanup func(), ok bool) {
	ctx = r.Context()
	cancel := func() {}
	if dl := q.Get("deadline"); dl != "" {
		secs, err := strconv.ParseFloat(dl, 64)
		if err != nil || secs <= 0 || math.IsNaN(secs) || math.IsInf(secs, 0) {
			http.Error(w, fmt.Sprintf("deadline %q is not a positive number of seconds", dl), http.StatusBadRequest)
			return nil, nil, false
		}
		ctx, cancel = context.WithTimeout(ctx, time.Duration(secs*float64(time.Second)))
	}
	adm := s.admission.Load()
	release, err := adm.Acquire(ctx)
	if err != nil {
		cancel()
		if errors.Is(err, ErrShed) {
			retry := int64((adm.RetryAfter() + time.Second - 1) / time.Second)
			w.Header().Set("Retry-After", strconv.FormatInt(retry, 10))
			writeJSONStatus(w, http.StatusTooManyRequests, OverCapacityError{
				Error:             "server over capacity, retry later",
				RetryAfterSeconds: retry,
			})
		} else {
			http.Error(w, "deadline expired while queued for admission", http.StatusGatewayTimeout)
		}
		return nil, nil, false
	}
	return ctx, func() { release(); cancel() }, true
}

// finishCtx maps a context failure from the simulation path onto its
// HTTP answer: 504 for an expired deadline, 499-style client-closed for
// a canceled request. Returns true when it answered.
func finishCtx(w http.ResponseWriter, err error) bool {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, "deadline exceeded before the request finished", http.StatusGatewayTimeout)
		return true
	case errors.Is(err, context.Canceled):
		// Client gone; nothing useful to write.
		http.Error(w, "request canceled", http.StatusServiceUnavailable)
		return true
	}
	return false
}

// SetShardIdentity makes the server fleet-aware: self is this worker's
// name in the shard map and table the fleet's routing table (reloadable;
// the server reads it per request). Platform-scoped requests for
// platforms the ring assigns to another worker are rejected with 421 and
// a redirect hint naming the owner. A nil table restores standalone
// serving.
func (s *Server) SetShardIdentity(self string, table *shard.Table) {
	if table == nil {
		s.shard.Store(nil)
		return
	}
	s.shard.Store(&shardIdentity{self: self, table: table})
}

// MisdirectedError is the structured 421 body a fleet worker answers
// when asked about a platform the shard map assigns elsewhere. OwnerURL
// is the redirect hint: where the gateway (or a shard-aware client)
// should have sent the request.
type MisdirectedError struct {
	Error    string `json:"error"`
	Platform string `json:"platform"`
	Shard    string `json:"shard"`
	Owner    string `json:"owner"`
	OwnerURL string `json:"owner_url"`
}

// ownsPlatform enforces shard ownership on a platform-scoped request;
// reports true when the request may proceed (standalone server, or this
// worker owns the platform) and answers the 421 hint otherwise.
func (s *Server) ownsPlatform(w http.ResponseWriter, r *http.Request) bool {
	id := s.shard.Load()
	if id == nil {
		return true
	}
	name := r.PathValue("platform")
	owner := id.table.Owner(name)
	if owner.Name == id.self {
		return true
	}
	s.misdirected.Add(1)
	writeJSONStatus(w, http.StatusMisdirectedRequest, MisdirectedError{
		Error:    fmt.Sprintf("platform %q is owned by shard %q, not %q", name, owner.Name, id.self),
		Platform: name,
		Shard:    id.self,
		Owner:    owner.Name,
		OwnerURL: owner.URL,
	})
	return false
}

// SetDifferentialEval enables (the default) or disables warm-start
// differential evaluation of derived scenario epochs — the pilgrimd
// -differential-eval flag. Disabling it forces every group to simulate
// cold; results are bit-identical either way.
func (s *Server) SetDifferentialEval(on bool) {
	s.differentialOff.Store(!on)
}

// SetLegacyJSON routes the hot simulation responses (predict_transfers,
// select_fastest, evaluate) through encoding/json instead of the pooled
// hand-rolled encoders — the pilgrimd -legacy-json escape hatch. The
// two paths produce byte-identical output (pinned by the encoder
// differential tests); the flag exists so a suspected encoder bug can
// be ruled out in production without a rebuild.
func (s *Server) SetLegacyJSON(on bool) {
	s.legacyJSON.Store(on)
}

// evaluator assembles the evaluate machinery from the server's live
// configuration.
func (s *Server) evaluator() *Evaluator {
	return &Evaluator{
		Platforms:           s.platforms,
		Cache:               s.cache.Load(),
		Pool:                s.pool.Load(),
		Overlays:            s.overlays.Load(),
		MaxScenarios:        int(s.maxScenarios.Load()),
		MaxCells:            int(s.maxCells.Load()),
		DisableDifferential: s.differentialOff.Load(),
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handlePlatforms(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.platforms.Names())
}

// parseTransferParam parses one "src,dst,size" value. strings.Cut
// instead of Split: no per-transfer slice allocation on the QPS path.
func parseTransferParam(v string) (TransferRequest, error) {
	src, rest, ok := strings.Cut(v, ",")
	if !ok {
		return TransferRequest{}, fmt.Errorf("transfer %q is not src,dst,size", v)
	}
	dst, sizeStr, ok := strings.Cut(rest, ",")
	if !ok || strings.Contains(sizeStr, ",") {
		return TransferRequest{}, fmt.Errorf("transfer %q is not src,dst,size", v)
	}
	size, err := strconv.ParseFloat(sizeStr, 64)
	if err != nil || size <= 0 || math.IsInf(size, 0) || math.IsNaN(size) {
		return TransferRequest{}, fmt.Errorf("transfer %q has invalid size", v)
	}
	return TransferRequest{Src: src, Dst: dst, Size: size}, nil
}

// platformOf resolves the platform of the request, honoring the optional
// at=T parameter (Unix seconds or "2006-01-02 15:04:05" UTC): without it
// the entry is pinned to the newest-observation epoch; with a past T, to
// the timeline epoch in effect at T; with a future T inside the horizon
// cap, to the NWS-extrapolated forecast epoch. Beyond-horizon futures and
// malformed timestamps answer 400, unknown platforms 404.
func (s *Server) platformOf(w http.ResponseWriter, r *http.Request, q url.Values) (PlatformEntry, bool) {
	if !s.ownsPlatform(w, r) {
		return PlatformEntry{}, false
	}
	name := r.PathValue("platform")
	entry, ok := s.platforms.Get(name)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown platform %q", name), http.StatusNotFound)
		return PlatformEntry{}, false
	}
	if atParam := q.Get("at"); atParam != "" {
		at, err := parseTimestamp(atParam)
		if err != nil {
			http.Error(w, fmt.Sprintf("at: %v", err), http.StatusBadRequest)
			return PlatformEntry{}, false
		}
		entry, err = s.platforms.GetAt(name, at)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return PlatformEntry{}, false
		}
	}
	return entry, true
}

// handlePredict implements PNFS (§IV-C2):
//
//	GET /pilgrim/predict_transfers/g5k_test?transfer=src,dst,size&...
//	    [&bg=src,dst]... [&at=T]
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	ctx, cleanup, ok := s.admit(w, r, q)
	if !ok {
		return
	}
	defer cleanup()
	entry, ok := s.platformOf(w, r, q)
	if !ok {
		return
	}
	transfers := make([]TransferRequest, 0, len(q["transfer"]))
	for _, v := range q["transfer"] {
		t, err := parseTransferParam(v)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		transfers = append(transfers, t)
	}
	if len(transfers) == 0 {
		http.Error(w, "at least one transfer parameter required", http.StatusBadRequest)
		return
	}
	var background [][2]string
	for _, v := range q["bg"] {
		src, dst, ok := strings.Cut(v, ",")
		if !ok || strings.Contains(dst, ",") {
			http.Error(w, fmt.Sprintf("bg %q is not src,dst", v), http.StatusBadRequest)
			return
		}
		background = append(background, [2]string{src, dst})
	}
	// One simulation, not interruptible mid-run: honor the deadline by
	// refusing to start once it has passed (it may have expired while the
	// request waited for admission).
	if err := ctx.Err(); err != nil {
		finishCtx(w, err)
		return
	}
	preds, err := s.cache.Load().PredictCtx(ctx, r.PathValue("platform"), entry, transfers, background)
	if err != nil {
		if finishCtx(w, err) {
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.writePredictions(w, preds)
}

// handleCacheStats reports the forecast cache's hit/miss counters, the
// worker pool's telemetry (hypothesis and evaluate fan-out), the
// scenario-overlay cache counters, admission-control accounting, and —
// when the registry is WAL-backed — the durable-store counters:
//
//	GET /pilgrim/cache_stats
func (s *Server) handleCacheStats(w http.ResponseWriter, r *http.Request) {
	var storage *store.WALStats
	if st, ok := s.platforms.StorageStats(); ok {
		storage = &st
	}
	writeJSON(w, struct {
		CacheStats
		Forecast  WorkerStats     `json:"forecast_workers"`
		Overlays  OverlayStats    `json:"scenario_overlays"`
		Admission AdmissionStats  `json:"admission"`
		Storage   *store.WALStats `json:"storage,omitempty"`
	}{s.cache.Load().Stats(), s.pool.Load().Stats(), s.overlays.Load().Stats(),
		s.admission.Load().Stats(), storage})
}

// handleEvaluate implements batched what-if evaluation: POST N scenarios
// (composable epoch mutations) × M queries, receive the full answer grid
// in one round trip.
//
//	POST /pilgrim/evaluate/g5k_test
//	{"scenarios": [{"name": "deg", "mutations": [
//	    {"op": "scale_link", "link": "L", "bandwidth_factor": 0.6}]}],
//	 "queries": [{"kind": "predict_transfers",
//	    "transfers": [{"src": "A", "dst": "B", "size": 5e8}]}]}
//
// Scenarios sharing a network picture share one derived epoch, and
// identical (epoch, config, query) sub-simulations run once (forecast
// cache + in-request dedup). Per-scenario and per-cell failures are
// reported inside the grid; request-shape problems answer 400.
func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	ctx, cleanup, ok := s.admit(w, r, r.URL.Query())
	if !ok {
		return
	}
	defer cleanup()
	if !s.ownsPlatform(w, r) {
		return
	}
	name := r.PathValue("platform")
	if _, ok := s.platforms.Get(name); !ok {
		http.Error(w, fmt.Sprintf("unknown platform %q", name), http.StatusNotFound)
		return
	}
	var req EvaluateRequest
	if !s.decodeJSONBody(w, r, "evaluate request", &req) {
		return
	}
	resp, err := s.evaluator().EvaluateCtx(ctx, name, req)
	if err != nil {
		if finishCtx(w, err) {
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.writeEvaluate(w, resp)
}

// bodyScratch pools the body-read buffers behind decodeJSONBody: the
// evaluate and predict_workflow decode paths read the whole (capped)
// body into a reused buffer and unmarshal from it, instead of paying a
// fresh json.Decoder plus its internal read buffer per request.
var bodyScratch = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledBody bounds the buffer capacity bodyScratch retains; a
// one-off huge body should not pin its backing array forever.
const maxPooledBody = 1 << 20

// decodeJSONBody reads r's JSON body — capped at the configured body
// limit — into a pooled scratch buffer and unmarshals it into v.
// Reports whether it succeeded; on failure the response (413 or 400)
// has been written. json.Unmarshal copies every string it decodes, so
// recycling the scratch after return is safe.
func (s *Server) decodeJSONBody(w http.ResponseWriter, r *http.Request, what string, v any) bool {
	buf := bodyScratch.Get().(*bytes.Buffer)
	buf.Reset()
	defer func() {
		if buf.Cap() <= maxPooledBody {
			bodyScratch.Put(buf)
		}
	}()
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, s.bodyLimit())); err != nil {
		if bodyTooLarge(w, s, err) {
			return false
		}
		http.Error(w, fmt.Sprintf("decoding %s: %v", what, err), http.StatusBadRequest)
		return false
	}
	if err := json.Unmarshal(buf.Bytes(), v); err != nil {
		http.Error(w, fmt.Sprintf("decoding %s: %v", what, err), http.StatusBadRequest)
		return false
	}
	return true
}

// bodyTooLarge answers the structured 413 when err is the MaxBytesReader
// limit; reports whether it did.
func bodyTooLarge(w http.ResponseWriter, s *Server, err error) bool {
	var mbe *http.MaxBytesError
	if !errors.As(err, &mbe) {
		return false
	}
	writeJSONStatus(w, http.StatusRequestEntityTooLarge, BodyTooLargeError{
		Error:        fmt.Sprintf("request body exceeds the %d-byte limit", s.bodyLimit()),
		MaxBodyBytes: s.bodyLimit(),
	})
	return true
}

// BgEstimateResponse reports a platform's registered background-traffic
// estimate.
type BgEstimateResponse struct {
	Platform string      `json:"platform"`
	Source   string      `json:"source,omitempty"`
	Flows    [][2]string `json:"flows"`
}

// handleBgEstimateGet returns the flows bg_estimate scenario mutations
// would inject:
//
//	GET /pilgrim/bg_estimate/g5k_test
func (s *Server) handleBgEstimateGet(w http.ResponseWriter, r *http.Request) {
	if !s.ownsPlatform(w, r) {
		return
	}
	name := r.PathValue("platform")
	if _, ok := s.platforms.Get(name); !ok {
		http.Error(w, fmt.Sprintf("unknown platform %q", name), http.StatusNotFound)
		return
	}
	flows, source, _ := s.platforms.BackgroundEstimate(name)
	if flows == nil {
		flows = [][2]string{}
	}
	writeJSON(w, BgEstimateResponse{Platform: name, Source: source, Flows: flows})
}

// handleBgEstimatePost (re)computes a platform's background-traffic
// estimate from the metrology service's interface counters — the
// bgtraffic.FromMetrology wiring — and registers it, provenance-tagged,
// for bg_estimate scenarios:
//
//	POST /pilgrim/bg_estimate/g5k_test?tool=ganglia&begin=B&end=E
func (s *Server) handleBgEstimatePost(w http.ResponseWriter, r *http.Request) {
	if !s.ownsPlatform(w, r) {
		return
	}
	name := r.PathValue("platform")
	if _, ok := s.platforms.Get(name); !ok {
		http.Error(w, fmt.Sprintf("unknown platform %q", name), http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	tool := q.Get("tool")
	if tool == "" {
		http.Error(w, "tool parameter required", http.StatusBadRequest)
		return
	}
	begin, err := parseTimestamp(q.Get("begin"))
	if err != nil {
		http.Error(w, fmt.Sprintf("begin: %v", err), http.StatusBadRequest)
		return
	}
	end, err := parseTimestamp(q.Get("end"))
	if err != nil {
		http.Error(w, fmt.Sprintf("end: %v", err), http.StatusBadRequest)
		return
	}
	if end <= begin {
		http.Error(w, "end must be after begin", http.StatusBadRequest)
		return
	}
	if _, err := s.platforms.EstimateBackgroundFromMetrology(name, s.metrics, tool, begin, end, bgtraffic.DefaultConfig()); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	flows, source, _ := s.platforms.BackgroundEstimate(name)
	if flows == nil {
		flows = [][2]string{}
	}
	writeJSON(w, BgEstimateResponse{Platform: name, Source: source, Flows: flows})
}

// handleSelectFastest implements the hypothesis-selection extension:
//
//	GET /pilgrim/select_fastest/g5k_test?hypothesis=src,dst,size[;src,dst,size...]&hypothesis=...[&at=T]
func (s *Server) handleSelectFastest(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	ctx, cleanup, ok := s.admit(w, r, q)
	if !ok {
		return
	}
	defer cleanup()
	entry, ok := s.platformOf(w, r, q)
	if !ok {
		return
	}
	var hyps []Hypothesis
	for _, hv := range q["hypothesis"] {
		var h Hypothesis
		for _, tv := range strings.Split(hv, ";") {
			t, err := parseTransferParam(tv)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			h.Transfers = append(h.Transfers, t)
		}
		hyps = append(hyps, h)
	}
	if len(hyps) == 0 {
		http.Error(w, "at least one hypothesis parameter required", http.StatusBadRequest)
		return
	}
	best, results, err := s.pool.Load().SelectFastestCachedCtx(
		ctx, s.cache.Load(), r.PathValue("platform"), entry, hyps)
	if err != nil {
		if finishCtx(w, err) {
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.writeSelectFastest(w, best, results)
}

// handleWorkflow implements the workflow-forecast extension (future work
// §VI): POST a JSON workflow DAG of compute and transfer tasks, receive
// the simulated schedule and makespan.
func (s *Server) handleWorkflow(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	ctx, cleanup, ok := s.admit(w, r, q)
	if !ok {
		return
	}
	defer cleanup()
	entry, ok := s.platformOf(w, r, q)
	if !ok {
		return
	}
	var wf workflow.Workflow
	if !s.decodeJSONBody(w, r, "workflow", &wf) {
		return
	}
	if err := ctx.Err(); err != nil {
		finishCtx(w, err)
		return
	}
	forecast, err := workflow.Predict(entry.snapshot(), entry.Config, &wf)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, forecast)
}

// LinkObservation is one element of the update_links request body.
// Omitted fields keep the link's current value.
type LinkObservation struct {
	Link      string   `json:"link"`
	Bandwidth *float64 `json:"bandwidth,omitempty"` // bytes per second
	Latency   *float64 `json:"latency,omitempty"`   // seconds, one way
}

// UpdateLinksRequest is the timestamped update_links body: when the
// observation was taken (Unix seconds; as sent by clients — the server
// additionally accepts "2006-01-02 15:04:05" strings and defaults to the
// arrival time when omitted) and who measured it.
type UpdateLinksRequest struct {
	Time    int64             `json:"time,omitempty"`
	Source  string            `json:"source,omitempty"`
	Updates []LinkObservation `json:"updates"`
}

// UpdateLinksResponse reports the epoch an observation batch published.
type UpdateLinksResponse struct {
	Platform string `json:"platform"`
	Epoch    uint64 `json:"epoch"`
	Updated  int    `json:"links_updated"`
	Time     int64  `json:"time"`
	Source   string `json:"source"`
	Depth    int    `json:"timeline_depth"`
}

// TimelineStatsResponse is the timeline_stats answer: the platform's
// retained observation history plus the server's horizon cap and the
// count of observation batches rejected for naming unknown links.
type TimelineStatsResponse struct {
	Platform          string `json:"platform"`
	HorizonMaxSeconds int64  `json:"horizon_max_seconds"`
	RejectedUpdates   uint64 `json:"rejected_updates"`
	platform.TimelineStats
}

// UpdateLinksError is the structured 400 body update_links answers when a
// batch names links the platform does not have: the offending names are
// listed explicitly (instead of a silent drop or an opaque first-error
// string) and the rejection is counted in timeline_stats.
type UpdateLinksError struct {
	Platform     string   `json:"platform"`
	Error        string   `json:"error"`
	UnknownLinks []string `json:"unknown_links"`
}

// handleUpdateLinks closes the paper's measure→update→forecast loop: a
// metrology agent POSTs measured link state, the observation is appended
// to the platform's epoch timeline (and feeds its forecaster bank), and
// every subsequent forecast (and cache key) is answered against the
// revised picture.
//
//	POST /pilgrim/update_links/g5k_test
//	{"time": 1336111200, "source": "iperf",
//	 "updates": [{"link": "sagittaire-1.lyon.grid5000.fr_nic", "bandwidth": 9.1e7}]}
//
// time is Unix seconds or "2006-01-02 15:04:05" (UTC), defaulting to the
// arrival time; it must not precede the newest recorded observation.
// source is free provenance text (default "update_links"). Each update
// carries bandwidth in bytes/s and/or latency in seconds; omitted fields
// keep the current value. A bare JSON array of updates (the pre-timeline
// body) is still accepted and stamped with the arrival time. The answer
// reports the published epoch.
func (s *Server) handleUpdateLinks(w http.ResponseWriter, r *http.Request) {
	if !s.ownsPlatform(w, r) {
		return
	}
	name := r.PathValue("platform")
	entry, ok := s.platforms.Get(name)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown platform %q", name), http.StatusNotFound)
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.bodyLimit()))
	if err != nil {
		if bodyTooLarge(w, s, err) {
			return
		}
		http.Error(w, fmt.Sprintf("reading body: %v", err), http.StatusBadRequest)
		return
	}
	when := time.Now().Unix()
	source := "update_links"
	var body []LinkObservation
	if trimmed := strings.TrimLeft(string(raw), " \t\r\n"); strings.HasPrefix(trimmed, "[") {
		// Legacy body: a bare update array, stamped with the arrival time.
		if err := json.Unmarshal(raw, &body); err != nil {
			http.Error(w, fmt.Sprintf("decoding link updates: %v", err), http.StatusBadRequest)
			return
		}
	} else {
		var req struct {
			Time    json.RawMessage   `json:"time"`
			Source  string            `json:"source"`
			Updates []LinkObservation `json:"updates"`
		}
		if err := json.Unmarshal(raw, &req); err != nil {
			http.Error(w, fmt.Sprintf("decoding link updates: %v", err), http.StatusBadRequest)
			return
		}
		if len(req.Time) > 0 {
			ts, err := parseTimestamp(strings.Trim(string(req.Time), `"`))
			if err != nil {
				http.Error(w, fmt.Sprintf("time: %v", err), http.StatusBadRequest)
				return
			}
			when = ts
		}
		if req.Source != "" {
			source = req.Source
		}
		body = req.Updates
	}
	if len(body) == 0 {
		http.Error(w, "at least one link update required", http.StatusBadRequest)
		return
	}
	updates := make([]platform.LinkUpdate, len(body))
	for i, u := range body {
		if u.Link == "" {
			http.Error(w, fmt.Sprintf("update %d: missing link id", i), http.StatusBadRequest)
			return
		}
		if u.Bandwidth == nil && u.Latency == nil {
			http.Error(w, fmt.Sprintf("update %d (%s): bandwidth or latency required", i, u.Link), http.StatusBadRequest)
			return
		}
		upd := platform.LinkUpdate{Link: u.Link, Bandwidth: -1, Latency: -1}
		if u.Bandwidth != nil {
			if *u.Bandwidth <= 0 || math.IsNaN(*u.Bandwidth) || math.IsInf(*u.Bandwidth, 0) {
				http.Error(w, fmt.Sprintf("update %d (%s): invalid bandwidth %v", i, u.Link, *u.Bandwidth), http.StatusBadRequest)
				return
			}
			upd.Bandwidth = *u.Bandwidth
		}
		if u.Latency != nil {
			if *u.Latency < 0 || math.IsNaN(*u.Latency) || math.IsInf(*u.Latency, 0) {
				http.Error(w, fmt.Sprintf("update %d (%s): invalid latency %v", i, u.Link, *u.Latency), http.StatusBadRequest)
				return
			}
			upd.Latency = *u.Latency
		}
		updates[i] = upd
	}
	// Unknown links reject the whole batch with a structured answer
	// naming every offender (both body forms; historically the legacy
	// array body surfaced only an opaque first-mismatch error), and the
	// rejection is counted in timeline_stats.
	snap := entry.snapshot()
	var unknown []string
	for _, u := range updates {
		if _, ok := snap.LinkIndex(u.Link); !ok {
			unknown = append(unknown, u.Link)
		}
	}
	if len(unknown) > 0 {
		s.platforms.RecordUpdateReject(name)
		writeJSONStatus(w, http.StatusBadRequest, UpdateLinksError{
			Platform:     name,
			Error:        fmt.Sprintf("%d of %d updates name unknown links", len(unknown), len(updates)),
			UnknownLinks: unknown,
		})
		return
	}
	snap, err = s.platforms.ObserveLinkState(name, when, source, updates)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	depth, _ := s.platforms.TimelineDepth(name)
	writeJSON(w, UpdateLinksResponse{
		Platform: name, Epoch: snap.Epoch(), Updated: len(updates),
		Time: when, Source: source, Depth: depth,
	})
}

// handleTimelineStats reports the named platform's observation history:
//
//	GET /pilgrim/timeline_stats/g5k_test
//
// The answer lists the retained timestamped epochs (id, provenance,
// links changed), the history bound, eviction counters, and the horizon
// cap applied to at= queries.
func (s *Server) handleTimelineStats(w http.ResponseWriter, r *http.Request) {
	if !s.ownsPlatform(w, r) {
		return
	}
	name := r.PathValue("platform")
	st, ok := s.platforms.TimelineStats(name)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown platform %q", name), http.StatusNotFound)
		return
	}
	writeJSON(w, TimelineStatsResponse{
		Platform:          name,
		HorizonMaxSeconds: int64(s.platforms.ForecastHorizon() / time.Second),
		RejectedUpdates:   s.platforms.UpdateRejects(name),
		TimelineStats:     st,
	})
}

// handleRRD implements the metrology service (§IV-C1):
//
//	GET /pilgrim/rrd/ganglia/lyon/sagittaire-1.lyon.grid5000.fr/pdu.rrd/
//	    ?begin=2012-05-04%2008:00:00&end=2012-05-04%2008:01:00
//
// The answer is a JSON array of [timestamp, value] pairs from the most
// accurate archives available.
func (s *Server) handleRRD(w http.ResponseWriter, r *http.Request) {
	mp, err := metrology.ParseMetricPath(strings.Join([]string{
		r.PathValue("tool"), r.PathValue("site"), r.PathValue("host"), r.PathValue("metric"),
	}, "/"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	db, ok := s.metrics.Database(mp)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown metric %s", mp), http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	begin, err := parseTimestamp(q.Get("begin"))
	if err != nil {
		http.Error(w, fmt.Sprintf("begin: %v", err), http.StatusBadRequest)
		return
	}
	end, err := parseTimestamp(q.Get("end"))
	if err != nil {
		http.Error(w, fmt.Sprintf("end: %v", err), http.StatusBadRequest)
		return
	}
	if end <= begin {
		http.Error(w, "end must be after begin", http.StatusBadRequest)
		return
	}
	series, err := db.FetchBest(rrd.Average, begin, end)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// The paper's answer format: [[ts, value], ...], skipping unknowns.
	out := make([][2]float64, 0, len(series.Rows))
	for i, row := range series.Rows {
		if len(row) == 0 || math.IsNaN(row[0]) {
			continue
		}
		out = append(out, [2]float64{float64(series.Start + int64(i)*series.Step), row[0]})
	}
	writeJSON(w, out)
}

// parseTimestamp accepts Unix seconds or "2006-01-02 15:04:05" (UTC), the
// format of the paper's example query.
func parseTimestamp(s string) (int64, error) {
	if s == "" {
		return 0, fmt.Errorf("missing timestamp")
	}
	if ts, err := strconv.ParseInt(s, 10, 64); err == nil {
		return ts, nil
	}
	t, err := time.Parse("2006-01-02 15:04:05", s)
	if err != nil {
		return 0, fmt.Errorf("timestamp %q is neither Unix seconds nor YYYY-MM-DD HH:MM:SS", s)
	}
	return t.UTC().Unix(), nil
}

func writeJSONStatus(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		// Response already begun; nothing to report to the client.
		return
	}
}
