package pilgrim

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"strconv"
	"sync"
	"unicode/utf8"

	"pilgrim/internal/workflow"
)

// This file is the serving hot path's JSON writer: hand-rolled
// append-style encoders for the three simulation responses
// (predict_transfers, select_fastest, evaluate) over pooled buffers.
// encoding/json costs one reflect walk plus per-field allocations on
// every response; these encoders know the three shapes statically and
// append into a reused buffer instead.
//
// The contract — pinned by TestHotEncodersMatchEncodingJSON and the
// fuzz target — is byte identity with the legacy path:
//
//	enc := json.NewEncoder(w); enc.SetIndent("", " "); enc.Encode(v)
//
// including the one-space indent ladder, the trailing newline, ES6
// float formatting ('f' inside [1e-6, 1e21), 'e' outside, e-09→e-9
// exponent cleanup), HTML-escaped strings (<, >, & as \u00XX),
// � replacement for invalid UTF-8, and  /  escapes.
// Anything these encoders cannot reproduce exactly — a non-finite
// float, a workflow forecast that fails to marshal — flips the
// buffer's fallback flag and the caller re-encodes through
// encoding/json, so the wire format never forks.

// hotEnc is one pooled encode buffer.
type hotEnc struct {
	buf []byte
	// fallback records an input the hot path must not encode (the
	// legacy encoder errors on it, or reproducing it exactly is not
	// worth hand-rolling); the caller falls back to encoding/json.
	fallback bool
}

var encPool = sync.Pool{
	New: func() any { return &hotEnc{buf: make([]byte, 0, 4096)} },
}

func getEnc() *hotEnc {
	e := encPool.Get().(*hotEnc)
	e.buf = e.buf[:0]
	e.fallback = false
	return e
}

// putEnc returns a buffer to the pool. Oversized buffers (one huge
// evaluate grid) are dropped instead of pinning their backing arrays.
func putEnc(e *hotEnc) {
	if cap(e.buf) <= 1<<20 {
		encPool.Put(e)
	}
}

// indentSpaces serves nl(); the response shapes nest at most 8 deep,
// far under its length.
const indentSpaces = "                                                                "

// nl appends the indented-encoder line break: newline plus depth
// spaces (SetIndent prefix "", indent " ").
func (e *hotEnc) nl(depth int) {
	e.buf = append(e.buf, '\n')
	e.buf = append(e.buf, indentSpaces[:depth]...)
}

// raw appends literal bytes (punctuation and pre-escaped keys).
func (e *hotEnc) raw(s string) { e.buf = append(e.buf, s...) }

const hexDigits = "0123456789abcdef"

// str appends a JSON string exactly as encoding/json does with HTML
// escaping on (the Encoder default).
func (e *hotEnc) str(s string) {
	dst := append(e.buf, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				// Control bytes below 0x20 and the HTML trio <, >, &.
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, "\\ufffd"...)
			i += size
			start = i
			continue
		}
		// U+2028/U+2029 break JSONP consumers; encoding/json escapes
		// them unconditionally, so the hot path must too.
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	e.buf = append(dst, '"')
}

// f64 appends a float in ES6 number-to-string form (encoding/json's
// floatEncoder): 'f' format inside [1e-6, 1e21), 'e' outside, with the
// two-digit negative exponent collapsed (e-09 → e-9). Non-finite values
// flip the fallback flag — the legacy encoder rejects them, and the
// caller must reproduce that, not invent a representation.
func (e *hotEnc) f64(f float64) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		e.fallback = true
		e.buf = append(e.buf, '0')
		return
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	e.buf = strconv.AppendFloat(e.buf, f, format, -1, 64)
	if format == 'e' {
		if n := len(e.buf); n >= 4 && e.buf[n-4] == 'e' && e.buf[n-3] == '-' && e.buf[n-2] == '0' {
			e.buf[n-2] = e.buf[n-1]
			e.buf = e.buf[:n-1]
		}
	}
}

func (e *hotEnc) int(n int)       { e.buf = strconv.AppendInt(e.buf, int64(n), 10) }
func (e *hotEnc) uint64(n uint64) { e.buf = strconv.AppendUint(e.buf, n, 10) }

// predictions appends a []Prediction at the given depth. A nil slice is
// null, an empty one [] — exactly encoding/json's distinction.
func (e *hotEnc) predictions(preds []Prediction, depth int) {
	if preds == nil {
		e.raw("null")
		return
	}
	if len(preds) == 0 {
		e.raw("[]")
		return
	}
	e.raw("[")
	for i, p := range preds {
		if i > 0 {
			e.raw(",")
		}
		e.nl(depth + 1)
		e.raw("{")
		e.nl(depth + 2)
		e.raw(`"src": `)
		e.str(p.Src)
		e.raw(",")
		e.nl(depth + 2)
		e.raw(`"dst": `)
		e.str(p.Dst)
		e.raw(",")
		e.nl(depth + 2)
		e.raw(`"size": `)
		e.f64(p.Size)
		e.raw(",")
		e.nl(depth + 2)
		e.raw(`"duration": `)
		e.f64(p.Duration)
		e.nl(depth + 1)
		e.raw("}")
	}
	e.nl(depth)
	e.raw("]")
}

// hypothesisResults appends a []HypothesisResult at the given depth.
func (e *hotEnc) hypothesisResults(results []HypothesisResult, depth int) {
	if results == nil {
		e.raw("null")
		return
	}
	if len(results) == 0 {
		e.raw("[]")
		return
	}
	e.raw("[")
	for i := range results {
		r := &results[i]
		if i > 0 {
			e.raw(",")
		}
		e.nl(depth + 1)
		e.raw("{")
		e.nl(depth + 2)
		e.raw(`"index": `)
		e.int(r.Index)
		e.raw(",")
		e.nl(depth + 2)
		e.raw(`"makespan": `)
		e.f64(r.Makespan)
		e.raw(",")
		e.nl(depth + 2)
		e.raw(`"predictions": `)
		e.predictions(r.Predictions, depth+2)
		e.nl(depth + 1)
		e.raw("}")
	}
	e.nl(depth)
	e.raw("]")
}

// selectFastestResponse appends the whole select_fastest answer plus
// the Encode trailing newline.
func (e *hotEnc) selectFastestResponse(best int, results []HypothesisResult) {
	e.raw("{")
	e.nl(1)
	e.raw(`"best": `)
	e.int(best)
	e.raw(",")
	e.nl(1)
	e.raw(`"results": `)
	e.hypothesisResults(results, 1)
	e.nl(0)
	e.raw("}\n")
}

// field starts one object member at depth, managing the separating
// comma via the caller's first flag.
func (e *hotEnc) field(first *bool, depth int, key string) {
	if !*first {
		e.raw(",")
	}
	*first = false
	e.nl(depth)
	e.raw(key)
}

// forecast appends a *workflow.Forecast through encoding/json — the
// workflow grid is cold (one cell kind, never the QPS path) and its
// schedule shape is owned by the workflow package. json.Indent re-bases
// the compact marshal onto the surrounding ladder: prefix = the
// member's depth, indent = one space, which is exactly how the legacy
// encoder renders a nested value.
func (e *hotEnc) forecast(f *workflow.Forecast, depth int) {
	compact, err := json.Marshal(f)
	if err != nil {
		e.fallback = true
		e.raw("null")
		return
	}
	var out bytes.Buffer
	if err := json.Indent(&out, compact, indentSpaces[:depth], " "); err != nil {
		e.fallback = true
		e.raw("null")
		return
	}
	e.buf = append(e.buf, out.Bytes()...)
}

// evalResult appends one answer-grid cell at the given depth, honoring
// every omitempty in EvalResult.
func (e *hotEnc) evalResult(r *EvalResult, depth int) {
	if r.Error == "" && len(r.Predictions) == 0 && r.Best == nil &&
		len(r.Hypotheses) == 0 && r.Forecast == nil {
		e.raw("{}")
		return
	}
	e.raw("{")
	first := true
	if r.Error != "" {
		e.field(&first, depth+1, `"error": `)
		e.str(r.Error)
	}
	if len(r.Predictions) > 0 {
		e.field(&first, depth+1, `"predictions": `)
		e.predictions(r.Predictions, depth+1)
	}
	if r.Best != nil {
		e.field(&first, depth+1, `"best": `)
		e.int(*r.Best)
	}
	if len(r.Hypotheses) > 0 {
		e.field(&first, depth+1, `"hypotheses": `)
		e.hypothesisResults(r.Hypotheses, depth+1)
	}
	if r.Forecast != nil {
		e.field(&first, depth+1, `"forecast": `)
		e.forecast(r.Forecast, depth+1)
	}
	e.nl(depth)
	e.raw("}")
}

// scenarioResult appends one scenario row at the given depth.
func (e *hotEnc) scenarioResult(sr *ScenarioResult, depth int) {
	e.raw("{")
	first := true
	if sr.Name != "" {
		e.field(&first, depth+1, `"name": `)
		e.str(sr.Name)
	}
	if sr.Epoch != 0 {
		e.field(&first, depth+1, `"epoch": `)
		e.uint64(sr.Epoch)
	}
	if sr.Provenance != "" {
		e.field(&first, depth+1, `"provenance": `)
		e.str(sr.Provenance)
	}
	if sr.BackgroundFlows != 0 {
		e.field(&first, depth+1, `"background_flows": `)
		e.int(sr.BackgroundFlows)
	}
	if sr.Error != "" {
		e.field(&first, depth+1, `"error": `)
		e.str(sr.Error)
	}
	if len(sr.Results) > 0 {
		e.field(&first, depth+1, `"results": `)
		e.raw("[")
		for i := range sr.Results {
			if i > 0 {
				e.raw(",")
			}
			e.nl(depth + 2)
			e.evalResult(&sr.Results[i], depth+2)
		}
		e.nl(depth + 1)
		e.raw("]")
	}
	if first {
		e.raw("}")
		return
	}
	e.nl(depth)
	e.raw("}")
}

// evaluateStats appends the stats block at the given depth.
func (e *hotEnc) evaluateStats(st *EvaluateStats, depth int) {
	e.raw("{")
	first := true
	e.field(&first, depth+1, `"scenarios": `)
	e.int(st.Scenarios)
	e.field(&first, depth+1, `"queries": `)
	e.int(st.Queries)
	e.field(&first, depth+1, `"cells": `)
	e.int(st.Cells)
	e.field(&first, depth+1, `"groups": `)
	e.int(st.Groups)
	e.field(&first, depth+1, `"overlays_reused": `)
	e.int(st.OverlaysReused)
	e.field(&first, depth+1, `"simulations": `)
	e.int(st.Simulations)
	e.field(&first, depth+1, `"cache_hits": `)
	e.int(st.CacheHits)
	if st.BaseGroups != 0 {
		e.field(&first, depth+1, `"base_groups": `)
		e.int(st.BaseGroups)
	}
	if st.ForkReused != 0 {
		e.field(&first, depth+1, `"fork_reused": `)
		e.int(st.ForkReused)
	}
	if st.ForkRuns != 0 {
		e.field(&first, depth+1, `"fork_runs": `)
		e.int(st.ForkRuns)
	}
	if st.ForkCold != 0 {
		e.field(&first, depth+1, `"fork_cold": `)
		e.int(st.ForkCold)
	}
	if st.ForkResolvedConstraints != 0 {
		e.field(&first, depth+1, `"fork_resolved_constraints": `)
		e.int(st.ForkResolvedConstraints)
	}
	e.nl(depth)
	e.raw("}")
}

// evalFlushThreshold is the streaming high-water mark: while encoding
// an evaluate grid, the buffer is flushed to the client whenever a
// completed scenario row leaves it this full, so a huge grid streams
// row by row instead of materializing wholesale.
const evalFlushThreshold = 64 << 10

// writeHotJSON finishes one hot-path response: on a clean encode the
// pooled buffer goes out in one Write; on fallback the legacy encoder
// re-renders v from scratch (headers not yet written, so the two paths
// are indistinguishable on the wire).
func writeHotJSON(w http.ResponseWriter, e *hotEnc, v any) {
	if e.fallback {
		putEnc(e)
		writeJSON(w, v)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(e.buf)
	putEnc(e)
}

// writePredictions answers predict_transfers.
func (s *Server) writePredictions(w http.ResponseWriter, preds []Prediction) {
	if s.legacyJSON.Load() {
		writeJSON(w, preds)
		return
	}
	e := getEnc()
	e.predictions(preds, 0)
	e.raw("\n")
	writeHotJSON(w, e, preds)
}

// writeSelectFastest answers select_fastest.
func (s *Server) writeSelectFastest(w http.ResponseWriter, best int, results []HypothesisResult) {
	if s.legacyJSON.Load() {
		writeJSON(w, selectFastestResponse{Best: best, Results: results})
		return
	}
	e := getEnc()
	e.selectFastestResponse(best, results)
	writeHotJSON(w, e, selectFastestResponse{Best: best, Results: results})
}

// selectFastestResponse is the select_fastest answer shape (shared by
// the hot encoder's fallback and the legacy path).
type selectFastestResponse struct {
	Best    int                `json:"best"`
	Results []HypothesisResult `json:"results"`
}

// writeEvaluate answers evaluate, streaming scenario rows: the grid is
// encoded row by row into the pooled buffer and flushed at
// evalFlushThreshold boundaries, so response memory stays bounded by
// the largest row, not the grid. The fallback decision is made before
// the first flush; a non-finite value appearing in a later row of an
// already-streaming response truncates it (the legacy encoder would
// have sent nothing — but no simulation produces non-finite output, so
// this corner exists only for the flag check below).
func (s *Server) writeEvaluate(w http.ResponseWriter, resp *EvaluateResponse) {
	if s.legacyJSON.Load() {
		writeJSON(w, resp)
		return
	}
	e := getEnc()
	e.raw("{")
	e.nl(1)
	e.raw(`"platform": `)
	e.str(resp.Platform)
	e.raw(",")
	e.nl(1)
	e.raw(`"scenarios": `)
	streaming := false
	flush := func() bool {
		if e.fallback {
			return !streaming
		}
		if len(e.buf) >= evalFlushThreshold {
			if !streaming {
				w.Header().Set("Content-Type", "application/json")
				streaming = true
			}
			_, _ = w.Write(e.buf)
			e.buf = e.buf[:0]
		}
		return false
	}
	switch {
	case resp.Scenarios == nil:
		e.raw("null")
	case len(resp.Scenarios) == 0:
		e.raw("[]")
	default:
		e.raw("[")
		for i := range resp.Scenarios {
			if i > 0 {
				e.raw(",")
			}
			e.nl(2)
			e.scenarioResult(&resp.Scenarios[i], 2)
			if flush() {
				putEnc(e)
				writeJSON(w, resp)
				return
			}
		}
		e.nl(1)
		e.raw("]")
	}
	e.raw(",")
	e.nl(1)
	e.raw(`"stats": `)
	e.evaluateStats(&resp.Stats, 1)
	e.nl(0)
	e.raw("}\n")
	if e.fallback && !streaming {
		putEnc(e)
		writeJSON(w, resp)
		return
	}
	if !streaming {
		w.Header().Set("Content-Type", "application/json")
	}
	if !e.fallback {
		_, _ = w.Write(e.buf)
	}
	putEnc(e)
}
