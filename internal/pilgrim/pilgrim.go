// Package pilgrim implements the Pilgrim metrology and performance
// prediction framework — the paper's primary contribution (§IV-C).
//
// Pilgrim's services are REST-style web services: transport is HTTP,
// requests are HTTP GETs with parameters embedded in the URI, answers are
// JSON documents. Two services are offered:
//
//   - the metrology service (§IV-C1), a remote API over RRD file trees:
//     GET /pilgrim/rrd/{tool}/{site}/{host}/{metric}.rrd/?begin=B&end=E
//     answers [[timestamp, value], ...] with the most accurate data
//     available between the bounds, gathered across round-robin archives;
//
//   - the Pilgrim Network Forecast Service, PNFS (§IV-C2):
//     GET /pilgrim/predict_transfers/{platform}?transfer=src,dst,size&...
//     instantiates a flow-level simulation of the named platform
//     containing all requested transfers concurrently, and answers
//     [{"src":..., "dst":..., "size":..., "duration":...}, ...].
//
// Three extensions implement the paper's stated future work (§VI):
//
//   - GET /pilgrim/select_fastest/{platform}?hypothesis=... simulates n
//     alternative transfer hypotheses and returns the fastest;
//   - the predict_transfers "bg=src,dst" parameter injects known
//     background traffic into the simulation;
//   - POST /pilgrim/update_links/{platform} folds measured link state
//     (NWS/iperf bandwidth, latency) into a new copy-on-write platform
//     epoch, so subsequent forecasts answer against the live network
//     picture — the paper's dynamic measure→update→forecast loop.
//
// Observations are timestamped and attributed: every update appends to a
// bounded per-platform platform.Timeline instead of clobbering a single
// live picture, and feeds a per-link nws.Bank of dynamically selected
// predictors. predict_transfers and select_fastest accept at=T to answer
// against the epoch in effect at any past T (timeline lookup) or an
// NWS-extrapolated forecast epoch for future T within the horizon cap;
// GET /pilgrim/timeline_stats/{platform} exposes the retained history.
//
// PNFS answers are memoized by a bounded LRU ForecastCache keyed by the
// canonicalized (platform epoch, transfers, background) triple, so a
// resource management system polling the same decision repeatedly pays
// for one simulation; GET /pilgrim/cache_stats exposes the hit/miss
// counters.
package pilgrim

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pilgrim/internal/bgtraffic"
	"pilgrim/internal/metrology"
	"pilgrim/internal/nws"
	"pilgrim/internal/platform"
	"pilgrim/internal/sim"
	"pilgrim/internal/store"
)

// PlatformEntry couples a simulated platform with the model configuration
// used to simulate it. Snapshot optionally pins the compiled platform
// epoch predictions are answered against; when nil, the platform's
// current base snapshot is used. Entries handed out by a Registry always
// carry the registry's live epoch.
type PlatformEntry struct {
	Platform *platform.Platform
	Config   sim.Config
	Snapshot *platform.Snapshot
}

// snapshot returns the compiled epoch this entry answers against.
func (e PlatformEntry) snapshot() *platform.Snapshot {
	if e.Snapshot != nil {
		return e.Snapshot
	}
	return e.Platform.Snapshot()
}

// WithSnapshot returns the entry with its epoch pinned (compiling the
// platform's base snapshot if none was set). Callers that must answer a
// coherent batch of queries — a campaign, a benchmark — pin once and
// reuse the entry.
func (e PlatformEntry) WithSnapshot() PlatformEntry {
	e.Snapshot = e.snapshot()
	return e
}

// DefaultTimelineDepth is the per-platform history bound a fresh Registry
// applies (the pilgrimd -timeline-depth flag).
const DefaultTimelineDepth = platform.DefaultTimelineDepth

// DefaultForecastHorizon is how far past the newest observation the
// registry will extrapolate by default (the pilgrimd
// -forecast-horizon-max flag). Queries further out are refused with
// ErrBeyondHorizon rather than answered with a forecast no history
// supports.
const DefaultForecastHorizon = time.Hour

// ErrBeyondHorizon is returned by GetAt for a future time further past
// the newest observation than the configured horizon cap.
var ErrBeyondHorizon = errors.New("pilgrim: requested time beyond the forecast horizon")

// regEntry is one registered platform: the immutable registration, the
// timestamped epoch timeline, and the per-link NWS forecaster bank. The
// forecast hot path reads the live epoch through Timeline.Latest — one
// atomic load, no lock. fmu serializes observations (timeline append +
// bank update) and forecast-epoch materialization.
type regEntry struct {
	plat *platform.Platform
	cfg  sim.Config
	tl   *platform.Timeline

	fmu     sync.Mutex
	bank    *nws.Bank
	scratch []platform.LinkUpdateIdx
	// fsnap memoizes the synthetic forecast epoch derived from the latest
	// observation state (fbase). NWS predictors extrapolate the next value
	// — the forecast is the same for every in-horizon future T — so one
	// epoch per observation generation serves all future queries, and the
	// forecast cache (keyed by epoch id) memoizes their answers.
	fsnap *platform.Snapshot
	fbase uint64

	// rejects counts observation batches refused for naming unknown
	// links (surfaced by timeline_stats as rejected_updates).
	rejects atomic.Uint64

	// Registered background-traffic estimate (guarded by fmu): the
	// coarse flows bgtraffic synthesized from metrology counters, with
	// their provenance, that bg_estimate scenario mutations inject.
	bgFlows  [][2]string
	bgSource string
}

// Registry holds the named platforms a Pilgrim instance can predict on
// (the paper's g5k_test and g5k_cabinets), each with its link-state
// epoch timeline and forecaster bank.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*regEntry
	depth   int
	horizon time.Duration

	// Durability (see storage.go; all nil/zero in memory mode). gate
	// serializes the background compactor (write lock) against mutators
	// (read lock) so compaction snapshots match the log cut exactly.
	gate        sync.RWMutex
	storage     Storage
	recovered   map[string]*store.PlatformRecovery
	compactCh   chan struct{}
	compactQuit chan struct{}
	compactWG   sync.WaitGroup
}

// NewRegistry returns an empty platform registry with
// DefaultTimelineDepth and DefaultForecastHorizon.
func NewRegistry() *Registry {
	return &Registry{
		entries: make(map[string]*regEntry),
		depth:   DefaultTimelineDepth,
		horizon: DefaultForecastHorizon,
	}
}

// SetTimelineDepth bounds the per-platform observation history (n <= 0
// restores the default). It applies to platforms added afterwards.
func (r *Registry) SetTimelineDepth(n int) {
	if n <= 0 {
		n = DefaultTimelineDepth
	}
	r.mu.Lock()
	r.depth = n
	r.mu.Unlock()
}

// SetForecastHorizon caps how far past the newest observation GetAt will
// extrapolate (d <= 0 restores the default). Observation times have
// one-second resolution, so sub-second caps round up to one second.
func (r *Registry) SetForecastHorizon(d time.Duration) {
	if d <= 0 {
		d = DefaultForecastHorizon
	} else if d < time.Second {
		d = time.Second
	}
	r.mu.Lock()
	r.horizon = d
	r.mu.Unlock()
}

// ForecastHorizon returns the configured horizon cap.
func (r *Registry) ForecastHorizon() time.Duration {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.horizon
}

// Add registers a platform under a name. The platform is compiled
// eagerly — the registry always serves a ready snapshot — and its
// timeline starts on the compiled base epoch. With storage attached, a
// platform recovered from the data directory under this name is restored
// warm (timeline, forecaster bank, and accounting exactly as logged);
// otherwise the registration is logged before it takes effect.
func (r *Registry) Add(name string, entry PlatformEntry) error {
	if name == "" || entry.Platform == nil {
		return fmt.Errorf("pilgrim: invalid platform registration %q", name)
	}
	base := entry.snapshot()
	r.gate.RLock()
	defer r.gate.RUnlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[name]; dup {
		return fmt.Errorf("pilgrim: platform %q already registered", name)
	}
	if pr, ok := r.recovered[name]; ok {
		re, err := r.restoreEntry(entry, pr)
		if err != nil {
			return fmt.Errorf("pilgrim: recovering platform %q: %w", name, err)
		}
		delete(r.recovered, name)
		r.entries[name] = re
		return nil
	}
	if r.storage != nil {
		err := r.storage.Append(store.Record{
			Op: store.OpAddPlatform, Platform: name,
			BaseEpoch: base.Epoch(), Links: base.NumLinks(),
		})
		if err != nil {
			return fmt.Errorf("pilgrim: logging registration of %q: %w", name, err)
		}
	}
	r.entries[name] = &regEntry{
		plat: entry.Platform,
		cfg:  entry.Config,
		tl:   platform.NewTimeline(base, r.depth),
		bank: nws.NewBank(base.NumLinks()),
	}
	return nil
}

func (r *Registry) lookup(name string) (*regEntry, bool) {
	r.mu.RLock()
	re, ok := r.entries[name]
	r.mu.RUnlock()
	return re, ok
}

// Get returns the platform registered under name, pinned to its current
// (newest-observation) link-state epoch.
func (r *Registry) Get(name string) (PlatformEntry, bool) {
	re, ok := r.lookup(name)
	if !ok {
		return PlatformEntry{}, false
	}
	return PlatformEntry{Platform: re.plat, Config: re.cfg, Snapshot: re.tl.Latest()}, true
}

// GetAt returns the platform pinned to its link-state epoch at time at
// (Unix seconds): past times resolve through the timeline (times before
// the retained history answer the compiled base epoch), future times
// within the horizon cap answer the NWS-extrapolated forecast epoch, and
// futures beyond the cap fail with ErrBeyondHorizon. Repeated queries
// resolve to the same epoch until new observations arrive, so cached
// forecast answers stay memoized.
func (r *Registry) GetAt(name string, at int64) (PlatformEntry, error) {
	re, ok := r.lookup(name)
	if !ok {
		return PlatformEntry{}, fmt.Errorf("pilgrim: unknown platform %q", name)
	}
	entry := PlatformEntry{Platform: re.plat, Config: re.cfg}
	last, ok := re.tl.LatestTime()
	if !ok {
		// No observation yet: the base epoch is the only known picture,
		// timeless — serve it for any requested time.
		entry.Snapshot = re.tl.Latest()
		return entry, nil
	}
	if at <= last {
		entry.Snapshot = re.tl.AtTime(at)
		return entry, nil
	}
	horizon := int64(r.ForecastHorizon() / time.Second)
	if at-last > horizon {
		return PlatformEntry{}, fmt.Errorf("%w: t=%d is %ds past the last observation (%d), cap %ds",
			ErrBeyondHorizon, at, at-last, last, horizon)
	}
	entry.Snapshot = re.forecastEpoch()
	return entry, nil
}

// forecastEpoch materializes (or reuses) the synthetic epoch holding the
// bank's per-link extrapolations on top of the newest observed state.
func (re *regEntry) forecastEpoch() *platform.Snapshot {
	re.fmu.Lock()
	defer re.fmu.Unlock()
	latest := re.tl.Latest()
	if re.fsnap != nil && re.fbase == latest.Epoch() {
		return re.fsnap
	}
	re.scratch = re.scratch[:0]
	for _, li := range re.bank.Observed() {
		bw, okBW := re.bank.ForecastBandwidth(li)
		lat, okLat := re.bank.ForecastLatency(li)
		if !okBW {
			bw = -1
		}
		if !okLat {
			lat = -1
		}
		if okBW || okLat {
			re.scratch = append(re.scratch, platform.LinkUpdateIdx{Link: li, Bandwidth: bw, Latency: lat})
		}
	}
	if len(re.scratch) == 0 {
		// Nothing to extrapolate: the latest epoch IS the forecast, and
		// reusing it keeps cache keys shared with current-time queries.
		re.fsnap = latest
	} else {
		fs, err := latest.WithLinkStateIdx(re.scratch)
		if err != nil {
			// Bank indices come from this platform's snapshots; out-of-range
			// is impossible. Fall back to the latest epoch defensively.
			fs = latest
		}
		re.fsnap = fs
	}
	re.fbase = latest.Epoch()
	return re.fsnap
}

// ObserveLinkState folds one timestamped, attributed batch of measured
// link revisions into the named platform: the timeline appends a new
// copy-on-write epoch (which becomes the picture current-time forecasts
// answer against), and every measured value feeds the per-link NWS
// forecaster bank. t is Unix seconds and must not precede the newest
// recorded observation; source is free provenance text recorded in the
// timeline. Concurrent in-flight forecasts keep the epoch they loaded.
// Returns the published snapshot.
func (r *Registry) ObserveLinkState(name string, t int64, source string, updates []platform.LinkUpdate) (*platform.Snapshot, error) {
	re, ok := r.lookup(name)
	if !ok {
		return nil, fmt.Errorf("pilgrim: unknown platform %q", name)
	}
	r.gate.RLock()
	defer r.gate.RUnlock()
	re.fmu.Lock()
	defer re.fmu.Unlock()
	// Write-ahead ordering: validate, allocate the epoch id, log, then
	// apply. Validation up front means the apply cannot fail after the
	// record is in the log — so log and registry never diverge.
	if last, ok := re.tl.LatestTime(); ok && t < last {
		return nil, fmt.Errorf("%w: observation at %d, head at %d", platform.ErrOutOfOrder, t, last)
	}
	latest := re.tl.Latest()
	for _, u := range updates {
		if _, ok := latest.LinkIndex(u.Link); !ok {
			return nil, fmt.Errorf("platform: unknown link %q in link-state update", u.Link)
		}
	}
	epoch := platform.AllocateEpoch()
	if s := r.backend(); s != nil {
		err := s.Append(store.Record{
			Op: store.OpObserve, Platform: name,
			Time: t, Source: source, Epoch: epoch, Updates: updates,
		})
		if err != nil {
			return nil, fmt.Errorf("pilgrim: logging observation: %w", err)
		}
	}
	snap, err := re.tl.AppendPinned(t, source, updates, epoch)
	if err != nil {
		return nil, err // unreachable: validated above
	}
	feedBank(re.bank, snap, updates)
	r.maybeCompact()
	return snap, nil
}

// UpdateLinkState folds a batch of measured link revisions into the named
// platform at the current wall-clock time, with generic provenance — the
// pre-timeline API, kept for callers without observation timestamps.
func (r *Registry) UpdateLinkState(name string, updates []platform.LinkUpdate) (*platform.Snapshot, error) {
	return r.ObserveLinkState(name, time.Now().Unix(), "update_links", updates)
}

// RecordUpdateReject counts one refused observation batch (unknown link
// names) against the platform, for timeline_stats accounting. Logged
// like any other mutation so a warm restart reports the same counter.
func (r *Registry) RecordUpdateReject(name string) {
	re, ok := r.lookup(name)
	if !ok {
		return
	}
	r.gate.RLock()
	defer r.gate.RUnlock()
	if s := r.backend(); s != nil {
		if err := s.Append(store.Record{Op: store.OpReject, Platform: name}); err != nil {
			return // refuse the count rather than diverge from the log
		}
	}
	re.rejects.Add(1)
	r.maybeCompact()
}

// UpdateRejects reports how many observation batches the platform has
// refused for naming unknown links.
func (r *Registry) UpdateRejects(name string) uint64 {
	re, ok := r.lookup(name)
	if !ok {
		return 0
	}
	return re.rejects.Load()
}

// SetBackgroundEstimate registers a background-traffic estimate for the
// named platform: the coarse persistent flows that bg_estimate scenario
// mutations inject into what-if evaluations, with free provenance text
// recording where they came from. Replaces any previous estimate; an
// empty flow set clears it.
func (r *Registry) SetBackgroundEstimate(name, source string, flows [][2]string) error {
	re, ok := r.lookup(name)
	if !ok {
		return fmt.Errorf("pilgrim: unknown platform %q", name)
	}
	r.gate.RLock()
	defer r.gate.RUnlock()
	re.fmu.Lock()
	defer re.fmu.Unlock()
	if s := r.backend(); s != nil {
		err := s.Append(store.Record{
			Op: store.OpBgEstimate, Platform: name, Source: source, Flows: flows,
		})
		if err != nil {
			return fmt.Errorf("pilgrim: logging background estimate: %w", err)
		}
	}
	if len(flows) == 0 {
		re.bgFlows, re.bgSource = nil, ""
	} else {
		re.bgFlows = append([][2]string(nil), flows...)
		re.bgSource = source
	}
	r.maybeCompact()
	return nil
}

// BackgroundEstimate returns the platform's registered background-traffic
// estimate and its provenance; ok is false when none is registered.
func (r *Registry) BackgroundEstimate(name string) (flows [][2]string, source string, ok bool) {
	re, found := r.lookup(name)
	if !found {
		return nil, "", false
	}
	re.fmu.Lock()
	defer re.fmu.Unlock()
	if len(re.bgFlows) == 0 {
		return nil, "", false
	}
	return re.bgFlows, re.bgSource, true
}

// EstimateBackgroundFromMetrology wires bgtraffic.FromMetrology into the
// registry as an observation source: interface byte counters collected
// under tool over [begin, end) are reduced to per-node rates, matched
// into coarse persistent flows (bgtraffic.Estimate), and registered —
// provenance-tagged — as the platform's background estimate, so
// background-traffic scenarios seed from real RRD series instead of
// hand-written flows. Returns the number of synthesized flows.
func (r *Registry) EstimateBackgroundFromMetrology(name string, metrics *metrology.Registry, tool string, begin, end int64, cfg bgtraffic.Config) (int, error) {
	if _, ok := r.lookup(name); !ok {
		return 0, fmt.Errorf("pilgrim: unknown platform %q", name)
	}
	obs, err := bgtraffic.FromMetrology(metrics, tool, begin, end)
	if err != nil {
		return 0, err
	}
	flows, err := bgtraffic.Estimate(obs, cfg)
	if err != nil {
		return 0, err
	}
	pairs := make([][2]string, len(flows))
	for i, f := range flows {
		pairs[i] = [2]string{f.Src, f.Dst}
	}
	source := fmt.Sprintf("bgtraffic:%s[%d,%d)", tool, begin, end)
	if err := r.SetBackgroundEstimate(name, source, pairs); err != nil {
		return 0, err
	}
	return len(pairs), nil
}

// TimelineStats reports the named platform's timeline accounting.
func (r *Registry) TimelineStats(name string) (platform.TimelineStats, bool) {
	re, ok := r.lookup(name)
	if !ok {
		return platform.TimelineStats{}, false
	}
	return re.tl.Stats(), true
}

// TimelineDepth reports how many observations the named platform's
// timeline retains — the O(1) accessor the update answer uses (Stats
// materializes the whole entry list).
func (r *Registry) TimelineDepth(name string) (int, bool) {
	re, ok := r.lookup(name)
	if !ok {
		return 0, false
	}
	return re.tl.Depth(), true
}

// Names returns the sorted registered platform names.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.entries))
	for n := range r.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TransferRequest is one requested transfer: (source, destination, size),
// the 3-uple of §IV-C2.
type TransferRequest struct {
	Src  string  `json:"src"`
	Dst  string  `json:"dst"`
	Size float64 `json:"size"`
}

// Prediction is the answered 4-uple: the transfer plus its predicted TCP
// completion time in seconds.
type Prediction struct {
	Src      string  `json:"src"`
	Dst      string  `json:"dst"`
	Size     float64 `json:"size"`
	Duration float64 `json:"duration"`
}

// PredictTransfers answers a PNFS request directly (the in-process path;
// the HTTP server wraps this). Background flows, if any, contend with the
// requested transfers for the whole simulation.
func PredictTransfers(entry PlatformEntry, transfers []TransferRequest, background [][2]string) ([]Prediction, error) {
	if len(transfers) == 0 {
		return nil, fmt.Errorf("pilgrim: no transfers requested")
	}
	s := sim.NewPooledSnapshotSimulation(entry.snapshot(), entry.Config)
	defer s.Release()
	for _, bg := range background {
		s.AddBackgroundFlow(bg[0], bg[1])
	}
	for _, t := range transfers {
		s.AddTransfer(t.Src, t.Dst, t.Size)
	}
	results, err := s.Run()
	if err != nil {
		return nil, err
	}
	out := make([]Prediction, len(results))
	for i, r := range results {
		out[i] = Prediction{Src: r.Src, Dst: r.Dst, Size: r.Size, Duration: r.Duration}
	}
	return out, nil
}

// Hypothesis is one alternative considered by SelectFastest: a set of
// transfers that would be executed together.
type Hypothesis struct {
	Transfers []TransferRequest `json:"transfers"`
}

// HypothesisResult reports the simulated makespan of one hypothesis.
type HypothesisResult struct {
	Index       int          `json:"index"`
	Makespan    float64      `json:"makespan"`
	Predictions []Prediction `json:"predictions"`
}

// SelectFastest simulates each hypothesis independently and returns all
// results plus the index of the hypothesis with the smallest makespan
// (paper §VI: "given n different transfer hypotheses, select the fastest
// one"). Hypotheses are evaluated concurrently over the package's default
// worker pool; use a dedicated NewWorkerPool to control the width.
func SelectFastest(entry PlatformEntry, hyps []Hypothesis) (best int, results []HypothesisResult, err error) {
	return defaultPool().SelectFastest(entry, hyps)
}
