// Package pilgrim implements the Pilgrim metrology and performance
// prediction framework — the paper's primary contribution (§IV-C).
//
// Pilgrim's services are REST-style web services: transport is HTTP,
// requests are HTTP GETs with parameters embedded in the URI, answers are
// JSON documents. Two services are offered:
//
//   - the metrology service (§IV-C1), a remote API over RRD file trees:
//     GET /pilgrim/rrd/{tool}/{site}/{host}/{metric}.rrd/?begin=B&end=E
//     answers [[timestamp, value], ...] with the most accurate data
//     available between the bounds, gathered across round-robin archives;
//
//   - the Pilgrim Network Forecast Service, PNFS (§IV-C2):
//     GET /pilgrim/predict_transfers/{platform}?transfer=src,dst,size&...
//     instantiates a flow-level simulation of the named platform
//     containing all requested transfers concurrently, and answers
//     [{"src":..., "dst":..., "size":..., "duration":...}, ...].
//
// Two extensions implement the paper's stated future work (§VI):
//
//   - GET /pilgrim/select_fastest/{platform}?hypothesis=... simulates n
//     alternative transfer hypotheses and returns the fastest;
//   - the predict_transfers "bg=src,dst" parameter injects known
//     background traffic into the simulation.
//
// PNFS answers are memoized by a bounded LRU ForecastCache keyed by the
// canonicalized (platform, transfers, background) triple, so a resource
// management system polling the same decision repeatedly pays for one
// simulation; GET /pilgrim/cache_stats exposes the hit/miss counters.
package pilgrim

import (
	"fmt"
	"sort"
	"sync"

	"pilgrim/internal/platform"
	"pilgrim/internal/sim"
)

// PlatformEntry couples a simulated platform with the model configuration
// used to simulate it.
type PlatformEntry struct {
	Platform *platform.Platform
	Config   sim.Config
}

// Registry holds the named platforms a Pilgrim instance can predict on
// (the paper's g5k_test and g5k_cabinets).
type Registry struct {
	mu      sync.RWMutex
	entries map[string]PlatformEntry
}

// NewRegistry returns an empty platform registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]PlatformEntry)}
}

// Add registers a platform under a name.
func (r *Registry) Add(name string, entry PlatformEntry) error {
	if name == "" || entry.Platform == nil {
		return fmt.Errorf("pilgrim: invalid platform registration %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[name]; dup {
		return fmt.Errorf("pilgrim: platform %q already registered", name)
	}
	r.entries[name] = entry
	return nil
}

// Get returns the platform registered under name.
func (r *Registry) Get(name string) (PlatformEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	return e, ok
}

// Names returns the sorted registered platform names.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.entries))
	for n := range r.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TransferRequest is one requested transfer: (source, destination, size),
// the 3-uple of §IV-C2.
type TransferRequest struct {
	Src  string  `json:"src"`
	Dst  string  `json:"dst"`
	Size float64 `json:"size"`
}

// Prediction is the answered 4-uple: the transfer plus its predicted TCP
// completion time in seconds.
type Prediction struct {
	Src      string  `json:"src"`
	Dst      string  `json:"dst"`
	Size     float64 `json:"size"`
	Duration float64 `json:"duration"`
}

// PredictTransfers answers a PNFS request directly (the in-process path;
// the HTTP server wraps this). Background flows, if any, contend with the
// requested transfers for the whole simulation.
func PredictTransfers(entry PlatformEntry, transfers []TransferRequest, background [][2]string) ([]Prediction, error) {
	if len(transfers) == 0 {
		return nil, fmt.Errorf("pilgrim: no transfers requested")
	}
	s := sim.NewPooledSimulation(entry.Platform, entry.Config)
	defer s.Release()
	for _, bg := range background {
		s.AddBackgroundFlow(bg[0], bg[1])
	}
	for _, t := range transfers {
		s.AddTransfer(t.Src, t.Dst, t.Size)
	}
	results, err := s.Run()
	if err != nil {
		return nil, err
	}
	out := make([]Prediction, len(results))
	for i, r := range results {
		out[i] = Prediction{Src: r.Src, Dst: r.Dst, Size: r.Size, Duration: r.Duration}
	}
	return out, nil
}

// Hypothesis is one alternative considered by SelectFastest: a set of
// transfers that would be executed together.
type Hypothesis struct {
	Transfers []TransferRequest `json:"transfers"`
}

// HypothesisResult reports the simulated makespan of one hypothesis.
type HypothesisResult struct {
	Index       int          `json:"index"`
	Makespan    float64      `json:"makespan"`
	Predictions []Prediction `json:"predictions"`
}

// SelectFastest simulates each hypothesis independently and returns all
// results plus the index of the hypothesis with the smallest makespan
// (paper §VI: "given n different transfer hypotheses, select the fastest
// one"). Hypotheses are evaluated concurrently over the package's default
// worker pool; use a dedicated NewWorkerPool to control the width.
func SelectFastest(entry PlatformEntry, hyps []Hypothesis) (best int, results []HypothesisResult, err error) {
	return defaultPool().SelectFastest(entry, hyps)
}
