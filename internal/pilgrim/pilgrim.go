// Package pilgrim implements the Pilgrim metrology and performance
// prediction framework — the paper's primary contribution (§IV-C).
//
// Pilgrim's services are REST-style web services: transport is HTTP,
// requests are HTTP GETs with parameters embedded in the URI, answers are
// JSON documents. Two services are offered:
//
//   - the metrology service (§IV-C1), a remote API over RRD file trees:
//     GET /pilgrim/rrd/{tool}/{site}/{host}/{metric}.rrd/?begin=B&end=E
//     answers [[timestamp, value], ...] with the most accurate data
//     available between the bounds, gathered across round-robin archives;
//
//   - the Pilgrim Network Forecast Service, PNFS (§IV-C2):
//     GET /pilgrim/predict_transfers/{platform}?transfer=src,dst,size&...
//     instantiates a flow-level simulation of the named platform
//     containing all requested transfers concurrently, and answers
//     [{"src":..., "dst":..., "size":..., "duration":...}, ...].
//
// Three extensions implement the paper's stated future work (§VI):
//
//   - GET /pilgrim/select_fastest/{platform}?hypothesis=... simulates n
//     alternative transfer hypotheses and returns the fastest;
//   - the predict_transfers "bg=src,dst" parameter injects known
//     background traffic into the simulation;
//   - POST /pilgrim/update_links/{platform} folds measured link state
//     (NWS/iperf bandwidth, latency) into a new copy-on-write platform
//     epoch, so subsequent forecasts answer against the live network
//     picture — the paper's dynamic measure→update→forecast loop.
//
// PNFS answers are memoized by a bounded LRU ForecastCache keyed by the
// canonicalized (platform, transfers, background) triple, so a resource
// management system polling the same decision repeatedly pays for one
// simulation; GET /pilgrim/cache_stats exposes the hit/miss counters.
package pilgrim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"pilgrim/internal/platform"
	"pilgrim/internal/sim"
)

// PlatformEntry couples a simulated platform with the model configuration
// used to simulate it. Snapshot optionally pins the compiled platform
// epoch predictions are answered against; when nil, the platform's
// current base snapshot is used. Entries handed out by a Registry always
// carry the registry's live epoch.
type PlatformEntry struct {
	Platform *platform.Platform
	Config   sim.Config
	Snapshot *platform.Snapshot
}

// snapshot returns the compiled epoch this entry answers against.
func (e PlatformEntry) snapshot() *platform.Snapshot {
	if e.Snapshot != nil {
		return e.Snapshot
	}
	return e.Platform.Snapshot()
}

// WithSnapshot returns the entry with its epoch pinned (compiling the
// platform's base snapshot if none was set). Callers that must answer a
// coherent batch of queries — a campaign, a benchmark — pin once and
// reuse the entry.
func (e PlatformEntry) WithSnapshot() PlatformEntry {
	e.Snapshot = e.snapshot()
	return e
}

// regEntry is one registered platform: the immutable registration plus
// the live compiled epoch. snap is an atomic pointer so the forecast path
// loads the current epoch without any lock, and a measurement batch
// publishes a new epoch with one store.
type regEntry struct {
	plat *platform.Platform
	cfg  sim.Config
	snap atomic.Pointer[platform.Snapshot]
}

// Registry holds the named platforms a Pilgrim instance can predict on
// (the paper's g5k_test and g5k_cabinets), each with its current
// link-state epoch.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*regEntry
}

// NewRegistry returns an empty platform registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*regEntry)}
}

// Add registers a platform under a name. The platform is compiled
// eagerly: the registry always serves a ready snapshot.
func (r *Registry) Add(name string, entry PlatformEntry) error {
	if name == "" || entry.Platform == nil {
		return fmt.Errorf("pilgrim: invalid platform registration %q", name)
	}
	re := &regEntry{plat: entry.Platform, cfg: entry.Config}
	re.snap.Store(entry.snapshot())
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[name]; dup {
		return fmt.Errorf("pilgrim: platform %q already registered", name)
	}
	r.entries[name] = re
	return nil
}

// Get returns the platform registered under name, pinned to its current
// link-state epoch.
func (r *Registry) Get(name string) (PlatformEntry, bool) {
	r.mu.RLock()
	re, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return PlatformEntry{}, false
	}
	return PlatformEntry{Platform: re.plat, Config: re.cfg, Snapshot: re.snap.Load()}, true
}

// UpdateLinkState folds a batch of measured link revisions into the named
// platform: a new epoch is derived by copy-on-write from the current one
// and published atomically. Concurrent in-flight forecasts keep the epoch
// they loaded; subsequent requests (and the forecast cache, which keys by
// epoch) see the new picture. Returns the published snapshot.
func (r *Registry) UpdateLinkState(name string, updates []platform.LinkUpdate) (*platform.Snapshot, error) {
	r.mu.RLock()
	re, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("pilgrim: unknown platform %q", name)
	}
	for {
		cur := re.snap.Load()
		next, err := cur.WithLinkState(updates)
		if err != nil {
			return nil, err
		}
		if re.snap.CompareAndSwap(cur, next) {
			return next, nil
		}
		// Lost a race with a concurrent update; rebase on the new epoch.
	}
}

// Names returns the sorted registered platform names.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.entries))
	for n := range r.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TransferRequest is one requested transfer: (source, destination, size),
// the 3-uple of §IV-C2.
type TransferRequest struct {
	Src  string  `json:"src"`
	Dst  string  `json:"dst"`
	Size float64 `json:"size"`
}

// Prediction is the answered 4-uple: the transfer plus its predicted TCP
// completion time in seconds.
type Prediction struct {
	Src      string  `json:"src"`
	Dst      string  `json:"dst"`
	Size     float64 `json:"size"`
	Duration float64 `json:"duration"`
}

// PredictTransfers answers a PNFS request directly (the in-process path;
// the HTTP server wraps this). Background flows, if any, contend with the
// requested transfers for the whole simulation.
func PredictTransfers(entry PlatformEntry, transfers []TransferRequest, background [][2]string) ([]Prediction, error) {
	if len(transfers) == 0 {
		return nil, fmt.Errorf("pilgrim: no transfers requested")
	}
	s := sim.NewPooledSnapshotSimulation(entry.snapshot(), entry.Config)
	defer s.Release()
	for _, bg := range background {
		s.AddBackgroundFlow(bg[0], bg[1])
	}
	for _, t := range transfers {
		s.AddTransfer(t.Src, t.Dst, t.Size)
	}
	results, err := s.Run()
	if err != nil {
		return nil, err
	}
	out := make([]Prediction, len(results))
	for i, r := range results {
		out[i] = Prediction{Src: r.Src, Dst: r.Dst, Size: r.Size, Duration: r.Duration}
	}
	return out, nil
}

// Hypothesis is one alternative considered by SelectFastest: a set of
// transfers that would be executed together.
type Hypothesis struct {
	Transfers []TransferRequest `json:"transfers"`
}

// HypothesisResult reports the simulated makespan of one hypothesis.
type HypothesisResult struct {
	Index       int          `json:"index"`
	Makespan    float64      `json:"makespan"`
	Predictions []Prediction `json:"predictions"`
}

// SelectFastest simulates each hypothesis independently and returns all
// results plus the index of the hypothesis with the smallest makespan
// (paper §VI: "given n different transfer hypotheses, select the fastest
// one"). Hypotheses are evaluated concurrently over the package's default
// worker pool; use a dedicated NewWorkerPool to control the width.
func SelectFastest(entry PlatformEntry, hyps []Hypothesis) (best int, results []HypothesisResult, err error) {
	return defaultPool().SelectFastest(entry, hyps)
}
