package pilgrim

import (
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// This file is the Prometheus scrape surface. The repo deliberately
// carries no client_golang dependency: the text exposition format
// (version 0.0.4) is a few lines of escaping rules, and every value we
// export is already an atomic counter or a cheap snapshot — a hand-
// rolled writer keeps the server dependency-free and the format under
// test (TestMetricsExpositionContract).

// MetricType is the TYPE annotation of an exposition family.
type MetricType string

// The two types the server exports. (Histograms would need quantile
// state nothing currently tracks; the evaluate latency distribution is
// the obvious future candidate.)
const (
	Counter MetricType = "counter"
	Gauge   MetricType = "gauge"
)

// Label is one exposition label pair.
type Label struct{ Name, Value string }

// Exposition accumulates Prometheus text-format output. Families are
// emitted in first-Add order; HELP/TYPE headers are written once per
// family even when samples with different label sets are added
// interleaved.
type Exposition struct {
	b     strings.Builder
	seen  map[string]bool
	order []string
	rows  map[string][]string
	help  map[string]string
	typ   map[string]MetricType
}

// NewExposition returns an empty exposition document.
func NewExposition() *Exposition {
	return &Exposition{
		seen: make(map[string]bool),
		rows: make(map[string][]string),
		help: make(map[string]string),
		typ:  make(map[string]MetricType),
	}
}

// Add appends one sample to the named family. The first Add of a family
// fixes its HELP text and TYPE.
func (e *Exposition) Add(name, help string, typ MetricType, value float64, labels ...Label) {
	if !e.seen[name] {
		e.seen[name] = true
		e.order = append(e.order, name)
		e.help[name] = help
		e.typ[name] = typ
	}
	var row strings.Builder
	row.WriteString(name)
	if len(labels) > 0 {
		row.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				row.WriteByte(',')
			}
			row.WriteString(l.Name)
			row.WriteString(`="`)
			row.WriteString(escapeLabel(l.Value))
			row.WriteByte('"')
		}
		row.WriteByte('}')
	}
	row.WriteByte(' ')
	row.WriteString(formatValue(value))
	e.rows[name] = append(e.rows[name], row.String())
}

// SortFamily sorts the named family's samples — for callers whose rows
// come from map iteration, so scrapes stay deterministic.
func (e *Exposition) SortFamily(name string) {
	sort.Strings(e.rows[name])
}

// Bytes renders the document.
func (e *Exposition) Bytes() []byte {
	for _, name := range e.order {
		e.b.WriteString("# HELP ")
		e.b.WriteString(name)
		e.b.WriteByte(' ')
		e.b.WriteString(escapeHelp(e.help[name]))
		e.b.WriteString("\n# TYPE ")
		e.b.WriteString(name)
		e.b.WriteByte(' ')
		e.b.WriteString(string(e.typ[name]))
		e.b.WriteByte('\n')
		for _, row := range e.rows[name] {
			e.b.WriteString(row)
			e.b.WriteByte('\n')
		}
	}
	return []byte(e.b.String())
}

// WriteTo serves the document over HTTP with the exposition content
// type.
func (e *Exposition) WriteTo(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(e.Bytes())
}

// formatValue renders a sample value: integral values print without an
// exponent (the common case — counters), everything else in Go's
// shortest float form, which Prometheus parses.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline.
func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes HELP text: backslash and newline.
func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// handleMetrics is the Prometheus scrape endpoint:
//
//	GET /metrics
//
// It exports the same accounting cache_stats serves as JSON —
// forecast-cache hits/misses, worker-pool and evaluate/fork tiers,
// overlay cache, admission control, and (when the registry is
// WAL-backed) durable-store counters — as text-exposition counters and
// gauges, plus the server's shard identity when it runs in a fleet.
// cache_stats remains for compatibility; new scrapers should use this.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	e := NewExposition()
	WriteServerMetrics(e, s)
	e.WriteTo(w)
}

// WriteServerMetrics appends the server's metric families to e. Split
// out of the handler so the gateway can embed a worker's families in
// tests and tooling can snapshot them without HTTP.
func WriteServerMetrics(e *Exposition, s *Server) {
	cs := s.cache.Load().Stats()
	e.Add("pilgrim_forecast_cache_hits_total", "Forecast cache hits.", Counter, float64(cs.Hits))
	e.Add("pilgrim_forecast_cache_misses_total", "Forecast cache misses (each paid one simulation).", Counter, float64(cs.Misses))
	e.Add("pilgrim_forecast_cache_coalesced_hits_total", "Requests answered by another request's in-flight simulation.", Counter, float64(cs.CoalescedHits))
	e.Add("pilgrim_forecast_cache_entries", "Forecast cache entries currently held.", Gauge, float64(cs.Size))
	e.Add("pilgrim_forecast_cache_capacity", "Forecast cache capacity (-forecast-cache).", Gauge, float64(cs.Capacity))

	ws := s.pool.Load().Stats()
	e.Add("pilgrim_workers", "Configured worker-pool width (-forecast-workers).", Gauge, float64(ws.Workers))
	e.Add("pilgrim_workers_busy", "Batch workers running right now.", Gauge, float64(ws.Busy))
	e.Add("pilgrim_workers_queued", "Workers waiting for a free pool slot.", Gauge, float64(ws.Queued))
	e.Add("pilgrim_workers_max_busy", "High-water mark of concurrently running workers.", Gauge, float64(ws.MaxBusy))
	e.Add("pilgrim_hypotheses_total", "Hypothesis simulations completed through the pool.", Counter, float64(ws.Hypotheses))
	e.Add("pilgrim_select_fastest_calls_total", "select_fastest calls served.", Counter, float64(ws.Batches))
	e.Add("pilgrim_evaluate_calls_total", "Evaluate batches fanned over the pool.", Counter, float64(ws.EvaluateCalls))
	e.Add("pilgrim_evaluate_cells_total", "Scenario×query cells requested by evaluate batches.", Counter, float64(ws.EvaluateCells))
	e.Add("pilgrim_evaluate_group_runs_total", "Distinct per-snapshot groups run after dedup.", Counter, float64(ws.EvaluateGroupRuns))
	e.Add("pilgrim_evaluate_simulations_total", "Sub-simulations executed by evaluate groups.", Counter, float64(ws.EvaluateSims))
	e.Add("pilgrim_evaluate_fork_total", "Derived evaluate cells by differential tier.", Counter, float64(ws.EvaluateForkReused), Label{"tier", "reused"})
	e.Add("pilgrim_evaluate_fork_total", "", Counter, float64(ws.EvaluateForkRuns), Label{"tier", "forked"})
	e.Add("pilgrim_evaluate_fork_total", "", Counter, float64(ws.EvaluateForkCold), Label{"tier", "cold"})
	e.Add("pilgrim_evaluate_fork_resolved_constraints_total", "Bandwidth constraints re-priced by checkpoint forks.", Counter, float64(ws.EvaluateForkConstraints))

	os := s.overlays.Load().Stats()
	e.Add("pilgrim_overlay_cache_hits_total", "Scenario-overlay cache hits (derived epochs reused).", Counter, float64(os.Hits))
	e.Add("pilgrim_overlay_cache_misses_total", "Scenario-overlay cache misses (fresh ApplyOverlay).", Counter, float64(os.Misses))
	e.Add("pilgrim_overlay_cache_entries", "Derived epochs currently cached.", Gauge, float64(os.Size))

	as := s.admission.Load().Stats()
	e.Add("pilgrim_admission_enabled", "1 when -max-inflight bounds the simulation endpoints.", Gauge, b2f(as.Enabled))
	e.Add("pilgrim_admission_inflight", "Simulation requests currently admitted.", Gauge, float64(as.Inflight))
	e.Add("pilgrim_admission_waiting", "Simulation requests queued for admission.", Gauge, float64(as.Waiting))
	e.Add("pilgrim_admission_admitted_total", "Requests that got an admission slot.", Counter, float64(as.Admitted))
	e.Add("pilgrim_admission_shed_total", "Requests shed with 429 + Retry-After.", Counter, float64(as.Shed))
	e.Add("pilgrim_admission_expired_total", "Requests whose deadline expired while queued (504).", Counter, float64(as.Expired))

	e.Add("pilgrim_platforms", "Platforms registered on this worker.", Gauge, float64(len(s.platforms.Names())))

	if st, ok := s.platforms.StorageStats(); ok {
		e.Add("pilgrim_store_appends_total", "WAL records appended.", Counter, float64(st.Appends))
		e.Add("pilgrim_store_fsyncs_total", "WAL fsyncs issued (see -fsync policy).", Counter, float64(st.Fsyncs))
		e.Add("pilgrim_store_compactions_total", "WAL snapshot compactions.", Counter, float64(st.Compactions))
		e.Add("pilgrim_store_segment_records", "Records in the live WAL segment.", Gauge, float64(st.SegmentRecords))
	}

	if id := s.shard.Load(); id != nil {
		e.Add("pilgrim_shard_info", "Shard identity of this worker (constant 1).", Gauge, 1,
			Label{"shard", id.self}, Label{"workers", strconv.Itoa(id.table.Ring().Len())})
		e.Add("pilgrim_shard_misdirected_total", "Platform requests rejected with 421 (not this shard's platform).", Counter, float64(s.misdirected.Load()))
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
