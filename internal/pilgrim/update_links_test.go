package pilgrim

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"pilgrim/internal/g5k"
	"pilgrim/internal/platform"
	"pilgrim/internal/platgen"
	"pilgrim/internal/sim"
)

// TestRegistryUpdateLinkState checks the measure→update→forecast loop at
// the registry level: a bandwidth update changes subsequent predictions,
// entries pin their epoch, and a round trip restores the original answer
// bit for bit.
func TestRegistryUpdateLinkState(t *testing.T) {
	plat, err := platgen.Generate(g5k.Mini(), platgen.Options{Variant: platgen.G5KTest})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if err := reg.Add("p", PlatformEntry{Platform: plat, Config: sim.DefaultConfig()}); err != nil {
		t.Fatal(err)
	}
	reqs := []TransferRequest{{Src: "sagittaire-1.lyon.grid5000.fr", Dst: "sagittaire-2.lyon.grid5000.fr", Size: 5e8}}

	e0, _ := reg.Get("p")
	base, err := PredictTransfers(e0, reqs, nil)
	if err != nil {
		t.Fatal(err)
	}

	link := "sagittaire-1.lyon.grid5000.fr_nic"
	origBW := e0.Snapshot.LinkBandwidth(mustLinkIdx(t, e0.Snapshot, link))
	if _, err := reg.UpdateLinkState("p", []platform.LinkUpdate{{Link: link, Bandwidth: origBW / 10, Latency: -1}}); err != nil {
		t.Fatal(err)
	}

	e1, _ := reg.Get("p")
	if e1.Snapshot.Epoch() == e0.Snapshot.Epoch() {
		t.Fatal("update did not publish a new epoch")
	}
	degraded, err := PredictTransfers(e1, reqs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if degraded[0].Duration <= base[0].Duration {
		t.Fatalf("tenfold slower access link must slow the transfer: %v vs %v",
			degraded[0].Duration, base[0].Duration)
	}
	// The entry loaded before the update still answers against its epoch.
	again, err := PredictTransfers(e0, reqs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if again[0].Duration != base[0].Duration {
		t.Fatal("pinned entry must keep answering against its own epoch")
	}

	// Round trip back to the measured original value.
	if _, err := reg.UpdateLinkState("p", []platform.LinkUpdate{{Link: link, Bandwidth: origBW, Latency: -1}}); err != nil {
		t.Fatal(err)
	}
	e2, _ := reg.Get("p")
	restored, err := PredictTransfers(e2, reqs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if restored[0].Duration != base[0].Duration {
		t.Fatalf("round-trip prediction %v != original %v", restored[0].Duration, base[0].Duration)
	}

	if _, err := reg.UpdateLinkState("ghost", nil); err == nil {
		t.Fatal("unknown platform must fail")
	}
	if _, err := reg.UpdateLinkState("p", []platform.LinkUpdate{{Link: "nope", Bandwidth: 1}}); err == nil {
		t.Fatal("unknown link must fail")
	}
}

func mustLinkIdx(t *testing.T, s *platform.Snapshot, name string) int32 {
	t.Helper()
	i, ok := s.LinkIndex(name)
	if !ok {
		t.Fatalf("unknown link %q", name)
	}
	return i
}

// TestForecastCacheEpochKeying checks that cached answers cannot outlive
// the platform state that produced them: the same workload before and
// after a link update maps to different keys (a miss, then fresh
// simulation), and an identical epoch round trip starts a third entry —
// never serving stale bytes.
func TestForecastCacheEpochKeying(t *testing.T) {
	plat, err := platgen.Generate(g5k.Mini(), platgen.Options{Variant: platgen.G5KTest})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if err := reg.Add("p", PlatformEntry{Platform: plat, Config: sim.DefaultConfig()}); err != nil {
		t.Fatal(err)
	}
	fc := NewForecastCache(16)
	reqs := []TransferRequest{{Src: "sagittaire-1.lyon.grid5000.fr", Dst: "sagittaire-2.lyon.grid5000.fr", Size: 5e8}}

	predict := func() []Prediction {
		e, _ := reg.Get("p")
		out, err := fc.Predict("p", e, reqs, nil)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	base := predict()
	predict() // hit
	if st := fc.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("warmup: %+v", st)
	}

	link := "sagittaire-1.lyon.grid5000.fr_nic"
	e, _ := reg.Get("p")
	origBW := e.Snapshot.LinkBandwidth(mustLinkIdx(t, e.Snapshot, link))
	if _, err := reg.UpdateLinkState("p", []platform.LinkUpdate{{Link: link, Bandwidth: origBW / 10, Latency: -1}}); err != nil {
		t.Fatal(err)
	}
	degraded := predict()
	if st := fc.Stats(); st.Misses != 2 {
		t.Fatalf("new epoch must miss: %+v", st)
	}
	if degraded[0].Duration == base[0].Duration {
		t.Fatal("stale answer served after link update")
	}
	if _, err := reg.UpdateLinkState("p", []platform.LinkUpdate{{Link: link, Bandwidth: origBW, Latency: -1}}); err != nil {
		t.Fatal(err)
	}
	restored := predict()
	if st := fc.Stats(); st.Misses != 3 {
		t.Fatalf("restored epoch is a distinct picture and must miss: %+v", st)
	}
	if restored[0].Duration != base[0].Duration {
		t.Fatal("restored epoch must reproduce the original prediction")
	}
}

// TestHTTPUpdateLinks exercises the endpoint end to end: degrade a link
// over HTTP, observe the slower forecast, restore it, observe the
// original forecast again.
func TestHTTPUpdateLinks(t *testing.T) {
	srv, _ := newTestServer(t)

	predictURL := srv.URL + "/pilgrim/predict_transfers/g5k_test?transfer=sagittaire-1.lyon.grid5000.fr,sagittaire-2.lyon.grid5000.fr,500000000"
	predict := func() float64 {
		resp, err := http.Get(predictURL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict status %d", resp.StatusCode)
		}
		var preds []Prediction
		if err := jsonDecode(resp, &preds); err != nil {
			t.Fatal(err)
		}
		return preds[0].Duration
	}
	update := func(body string) (int, map[string]any) {
		resp, err := http.Post(srv.URL+"/pilgrim/update_links/g5k_test", "application/json",
			bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		_ = jsonDecode(resp, &out)
		return resp.StatusCode, out
	}

	base := predict()
	code, out := update(`[{"link": "sagittaire-1.lyon.grid5000.fr_nic", "bandwidth": 12500000}]`)
	if code != http.StatusOK {
		t.Fatalf("update status %d: %v", code, out)
	}
	if out["links_updated"].(float64) != 1 || out["epoch"].(float64) <= 0 {
		t.Fatalf("unexpected answer %v", out)
	}
	if d := predict(); d <= base {
		t.Fatalf("degraded link must slow the forecast: %v vs %v", d, base)
	}
	// Restore the nominal NIC rate (read from an identically generated
	// platform) and check the original forecast comes back exactly.
	ref, err := platgen.Generate(g5k.Mini(), platgen.Options{Variant: platgen.G5KTest})
	if err != nil {
		t.Fatal(err)
	}
	nominal := ref.Link("sagittaire-1.lyon.grid5000.fr_nic").Bandwidth
	code, _ = update(fmt.Sprintf(`[{"link": "sagittaire-1.lyon.grid5000.fr_nic", "bandwidth": %v}]`, nominal))
	if code != http.StatusOK {
		t.Fatalf("restore status %d", code)
	}
	if d := predict(); d != base {
		t.Fatalf("restored forecast %v != original %v", d, base)
	}

	// Error paths.
	for _, bad := range []struct {
		body string
		want int
	}{
		{`not json`, http.StatusBadRequest},
		{`[]`, http.StatusBadRequest},
		{`[{"link": ""}]`, http.StatusBadRequest},
		{`[{"link": "x"}]`, http.StatusBadRequest},
		{`[{"link": "sagittaire-1.lyon.grid5000.fr_nic", "bandwidth": -4}]`, http.StatusBadRequest},
		{`[{"link": "sagittaire-1.lyon.grid5000.fr_nic", "latency": -1}]`, http.StatusBadRequest},
		{`[{"link": "ghost", "bandwidth": 1e6}]`, http.StatusBadRequest},
	} {
		if code, _ := update(bad.body); code != bad.want {
			t.Errorf("body %q: status %d, want %d", bad.body, code, bad.want)
		}
	}
	if resp, err := http.Post(srv.URL+"/pilgrim/update_links/ghost", "application/json",
		bytes.NewBufferString(`[{"link":"x","bandwidth":1}]`)); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown platform: status %d", resp.StatusCode)
		}
	}
}

// TestUpdateLinksStructuredReject pins the structured 400: a batch naming
// unknown links — legacy array body included — answers a JSON document
// listing every offender, and the rejection shows up in timeline_stats as
// rejected_updates.
func TestUpdateLinksStructuredReject(t *testing.T) {
	srv, client := newTestServer(t)

	post := func(body string) (int, UpdateLinksError) {
		resp, err := http.Post(srv.URL+"/pilgrim/update_links/g5k_test", "application/json",
			bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out UpdateLinksError
		_ = jsonDecode(resp, &out)
		return resp.StatusCode, out
	}

	// Legacy array body with two unknown links among a known one.
	code, out := post(`[
		{"link": "ghost-1", "bandwidth": 1e6},
		{"link": "sagittaire-1.lyon.grid5000.fr_nic", "bandwidth": 1e6},
		{"link": "ghost-2", "latency": 0.001}]`)
	if code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", code)
	}
	if out.Platform != "g5k_test" || len(out.UnknownLinks) != 2 ||
		out.UnknownLinks[0] != "ghost-1" || out.UnknownLinks[1] != "ghost-2" {
		t.Fatalf("structured error = %+v", out)
	}
	if !strings.Contains(out.Error, "2 of 3") {
		t.Errorf("error text = %q", out.Error)
	}

	// Timestamped body form rejects identically.
	if code, out = post(`{"source": "iperf", "updates": [{"link": "ghost", "bandwidth": 5}]}`); code != http.StatusBadRequest || len(out.UnknownLinks) != 1 {
		t.Fatalf("timestamped reject: %d %+v", code, out)
	}

	// The rejected batch must not have touched the timeline, and the
	// reject count is surfaced.
	st, err := client.TimelineStats("g5k_test")
	if err != nil {
		t.Fatal(err)
	}
	if st.Depth != 0 {
		t.Errorf("rejected batches reached the timeline: depth %d", st.Depth)
	}
	if st.RejectedUpdates != 2 {
		t.Errorf("rejected_updates = %d, want 2", st.RejectedUpdates)
	}
}
