package pilgrim

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"pilgrim/internal/g5k"
	"pilgrim/internal/metrology"
	"pilgrim/internal/platgen"
	"pilgrim/internal/rrd"
	"pilgrim/internal/sim"
)

// newTestServer builds a Pilgrim server with the Mini platform (as
// g5k_test) and one power metric, like the paper's deployment.
func newTestServer(t testing.TB) (*httptest.Server, *Client) {
	t.Helper()
	plat, err := platgen.Generate(g5k.Mini(), platgen.Options{Variant: platgen.G5KTest})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if err := reg.Add("g5k_test", PlatformEntry{Platform: plat, Config: sim.DefaultConfig()}); err != nil {
		t.Fatal(err)
	}

	metrics := metrology.NewRegistry()
	mp := metrology.MetricPath{Tool: "ganglia", Site: "lyon", Host: "sagittaire-1.lyon.grid5000.fr", Metric: "pdu"}
	if err := metrics.Register(mp, rrd.Gauge, 15, metrology.PowerSource(168.8, 10, 4)); err != nil {
		t.Fatal(err)
	}
	if err := metrics.Collect(0, 9*3600); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(NewServer(reg, metrics))
	t.Cleanup(srv.Close)
	return srv, NewClient(srv.URL)
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	plat, err := platgen.Generate(g5k.Mini(), platgen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	entry := PlatformEntry{Platform: plat, Config: sim.DefaultConfig()}
	if err := reg.Add("p", entry); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add("p", entry); err == nil {
		t.Error("duplicate platform accepted")
	}
	if err := reg.Add("", entry); err == nil {
		t.Error("empty name accepted")
	}
	if err := reg.Add("nilp", PlatformEntry{}); err == nil {
		t.Error("nil platform accepted")
	}
	if _, ok := reg.Get("p"); !ok {
		t.Error("Get failed")
	}
	if _, ok := reg.Get("ghost"); ok {
		t.Error("ghost platform found")
	}
	if names := reg.Names(); len(names) != 1 || names[0] != "p" {
		t.Errorf("Names = %v", names)
	}
}

func TestPredictTransfersInProcess(t *testing.T) {
	plat, err := platgen.Generate(g5k.Mini(), platgen.Options{Variant: platgen.G5KTest})
	if err != nil {
		t.Fatal(err)
	}
	entry := PlatformEntry{Platform: plat, Config: sim.DefaultConfig()}
	preds, err := PredictTransfers(entry, []TransferRequest{
		{Src: "sagittaire-1.lyon.grid5000.fr", Dst: "graphene-1.nancy.grid5000.fr", Size: 5e8},
		{Src: "sagittaire-2.lyon.grid5000.fr", Dst: "sagittaire-3.lyon.grid5000.fr", Size: 5e8},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 2 {
		t.Fatalf("predictions = %d", len(preds))
	}
	if preds[0].Duration <= preds[1].Duration {
		t.Errorf("cross-site %v should exceed intra-cluster %v", preds[0].Duration, preds[1].Duration)
	}
	for _, p := range preds {
		if p.Duration <= 0 || math.IsNaN(p.Duration) {
			t.Errorf("bad duration %v", p.Duration)
		}
	}
	if _, err := PredictTransfers(entry, nil, nil); err == nil {
		t.Error("empty request accepted")
	}
}

func TestHTTPPredictTransfers(t *testing.T) {
	_, client := newTestServer(t)
	preds, err := client.PredictTransfers("g5k_test", []TransferRequest{
		{Src: "sagittaire-1.lyon.grid5000.fr", Dst: "graphene-1.nancy.grid5000.fr", Size: 5e8},
		{Src: "sagittaire-1.lyon.grid5000.fr", Dst: "sagittaire-2.lyon.grid5000.fr", Size: 5e8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 2 {
		t.Fatalf("got %d predictions", len(preds))
	}
	// The paper's worked-example structure: both transfers share the
	// source NIC, and the intra-site one (higher 1/RTT weight) wins
	// clearly.
	if preds[1].Duration >= preds[0].Duration*0.6 {
		t.Errorf("intra %v vs cross %v", preds[1].Duration, preds[0].Duration)
	}
	if preds[0].Src != "sagittaire-1.lyon.grid5000.fr" || preds[0].Size != 5e8 {
		t.Errorf("echo fields wrong: %+v", preds[0])
	}
}

func TestHTTPPredictErrors(t *testing.T) {
	srv, client := newTestServer(t)

	if _, err := client.PredictTransfers("ghost", []TransferRequest{
		{Src: "a", Dst: "b", Size: 1},
	}); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown platform: %v", err)
	}
	if _, err := client.PredictTransfers("g5k_test", []TransferRequest{
		{Src: "ghost.lyon.grid5000.fr", Dst: "sagittaire-1.lyon.grid5000.fr", Size: 1},
	}); err == nil {
		t.Error("unknown host accepted")
	}

	// Raw malformed queries.
	for _, path := range []string{
		"/pilgrim/predict_transfers/g5k_test",                                // no transfer
		"/pilgrim/predict_transfers/g5k_test?transfer=a,b",                   // missing size
		"/pilgrim/predict_transfers/g5k_test?transfer=a,b,notanumber",        // bad size
		"/pilgrim/predict_transfers/g5k_test?transfer=a,b,-5",                // negative
		"/pilgrim/predict_transfers/g5k_test?transfer=a,b,1e6&bg=onlyonearg", // bad bg
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s -> %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestHTTPPlatformsList(t *testing.T) {
	_, client := newTestServer(t)
	names, err := client.Platforms()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "g5k_test" {
		t.Errorf("platforms = %v", names)
	}
}

func TestBackgroundFlowParameter(t *testing.T) {
	srv, client := newTestServer(t)
	// Prediction without background.
	base, err := client.PredictTransfers("g5k_test", []TransferRequest{
		{Src: "sagittaire-1.lyon.grid5000.fr", Dst: "sagittaire-2.lyon.grid5000.fr", Size: 5e8},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Same prediction with an injected background flow on the shared
	// half-duplex NIC of the destination.
	resp, err := http.Get(srv.URL + "/pilgrim/predict_transfers/g5k_test" +
		"?transfer=sagittaire-1.lyon.grid5000.fr,sagittaire-2.lyon.grid5000.fr,5e8" +
		"&bg=sagittaire-2.lyon.grid5000.fr,sagittaire-3.lyon.grid5000.fr")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	var loaded []Prediction
	if err := jsonDecode(resp, &loaded); err != nil {
		t.Fatal(err)
	}
	if loaded[0].Duration <= base[0].Duration {
		t.Errorf("background flow should slow the transfer: %v vs %v",
			loaded[0].Duration, base[0].Duration)
	}
}

func TestSelectFastest(t *testing.T) {
	_, client := newTestServer(t)
	// Hypothesis 0: big transfer cross-site. Hypothesis 1: same size
	// intra-cluster. Intra must win.
	best, results, err := client.SelectFastest("g5k_test", []Hypothesis{
		{Transfers: []TransferRequest{{Src: "sagittaire-1.lyon.grid5000.fr", Dst: "graphene-1.nancy.grid5000.fr", Size: 1e9}}},
		{Transfers: []TransferRequest{{Src: "sagittaire-1.lyon.grid5000.fr", Dst: "sagittaire-2.lyon.grid5000.fr", Size: 1e9}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if best != 1 {
		t.Errorf("best = %d, want 1 (intra-site)", best)
	}
	if len(results) != 2 || results[1].Makespan >= results[0].Makespan {
		t.Errorf("results = %+v", results)
	}
}

func TestMetrologyServiceExample(t *testing.T) {
	// The §IV-C1 example: one minute of sagittaire-1's pdu metric,
	// queried with human-readable timestamps, answered as [[ts, W], ...].
	srv, client := newTestServer(t)

	// Via typed client (Unix timestamps).
	points, err := client.FetchMetric("ganglia", "lyon", "sagittaire-1.lyon.grid5000.fr", "pdu",
		8*3600, 8*3600+60)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d, want 4 (one minute at 15s step)", len(points))
	}
	for _, p := range points {
		if p.Value < 150 || p.Value > 200 {
			t.Errorf("implausible power %v W", p.Value)
		}
	}

	// Via the raw URL form of the paper (date-time strings).
	resp, err := http.Get(srv.URL +
		"/pilgrim/rrd/ganglia/lyon/sagittaire-1.lyon.grid5000.fr/pdu.rrd/" +
		"?begin=1970-01-01%2008:00:00&end=1970-01-01%2008:01:00")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d", resp.StatusCode)
	}
	var raw [][2]float64
	if err := jsonDecode(resp, &raw); err != nil {
		t.Fatal(err)
	}
	if len(raw) != 4 {
		t.Errorf("raw points = %d, want 4", len(raw))
	}
}

func TestMetrologyServiceErrors(t *testing.T) {
	srv, _ := newTestServer(t)
	for path, want := range map[string]int{
		"/pilgrim/rrd/ganglia/lyon/ghost/pdu.rrd/?begin=0&end=60":                                  http.StatusNotFound,
		"/pilgrim/rrd/ganglia/lyon/sagittaire-1.lyon.grid5000.fr/pdu.rrd/?end=60":                  http.StatusBadRequest,
		"/pilgrim/rrd/ganglia/lyon/sagittaire-1.lyon.grid5000.fr/pdu.rrd/?begin=60&end=10":         http.StatusBadRequest,
		"/pilgrim/rrd/ganglia/lyon/sagittaire-1.lyon.grid5000.fr/pdu.rrd/?begin=yesterday&end=60":  http.StatusBadRequest,
		"/pilgrim/rrd/ganglia/lyon/sagittaire-1.lyon.grid5000.fr/pdu.notrrd/?begin=0&end=60":       http.StatusBadRequest,
		"/pilgrim/rrd/ganglia/lyon/sagittaire-1.lyon.grid5000.fr/nosuchmetric.rrd/?begin=0&end=60": http.StatusNotFound,
		"/pilgrim/select_fastest/g5k_test":                                                         http.StatusBadRequest,
		"/pilgrim/select_fastest/g5k_test?hypothesis=a,b":                                          http.StatusBadRequest,
		"/pilgrim/select_fastest/nosuchplatform?hypothesis=a,b,1":                                  http.StatusNotFound,
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s -> %d, want %d", path, resp.StatusCode, want)
		}
	}
}

func TestConcurrentPredictions(t *testing.T) {
	// PNFS must handle concurrent requests over a shared platform (the
	// route cache is mutated during resolution).
	_, client := newTestServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src := "sagittaire-" + string(rune('1'+i%6)) + ".lyon.grid5000.fr"
			dst := "graphene-" + string(rune('1'+(i+1)%8)) + ".nancy.grid5000.fr"
			_, err := client.PredictTransfers("g5k_test", []TransferRequest{
				{Src: src, Dst: dst, Size: 1e8},
			})
			if err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func jsonDecode(resp *http.Response, out interface{}) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}
