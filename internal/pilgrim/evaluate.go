package pilgrim

import (
	"container/list"
	"context"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"

	"pilgrim/internal/platform"
	"pilgrim/internal/scenario"
	"pilgrim/internal/sim"
	"pilgrim/internal/workflow"
)

// This file implements batched what-if evaluation: one request carries N
// scenarios (composable epoch mutations, internal/scenario) × M queries
// (predict_transfers / select_fastest / predict_workflow bodies), and the
// whole cross-product is answered in one round trip. The machinery
// exploits three layers built by earlier PRs:
//
//   - each scenario compiles to one copy-on-write epoch
//     (Snapshot.ApplyOverlay — O(changed resources), one epoch id), and
//     scenarios describing the same hypothetical network share that epoch
//     through the OverlayCache;
//   - scenarios sharing an (epoch, background) picture form one *group*,
//     and groups fan out across the WorkerPool; inside a group every
//     query runs on a single pooled engine (sim.RunPlan);
//   - every sub-simulation — a transfer set, a hypothesis — is a
//     canonical (epoch, config, query) triple deduplicated through the
//     ForecastCache, so overlapping scenarios and repeated requests pay
//     for each distinct simulation once.

// Default evaluate limits (the pilgrimd -max-scenarios and
// -max-evaluate-fanout flags).
const (
	DefaultMaxScenarios     = 64
	DefaultMaxEvaluateCells = 1024
)

// Query kinds accepted by evaluate.
const (
	QueryPredictTransfers = "predict_transfers"
	QuerySelectFastest    = "select_fastest"
	QueryPredictWorkflow  = "predict_workflow"
)

// EvalQuery is one question asked of every scenario in the batch.
type EvalQuery struct {
	// Kind selects the query semantics: predict_transfers (Transfers,
	// optionally Background), select_fastest (Hypotheses), or
	// predict_workflow (Workflow).
	Kind string `json:"kind"`
	// Transfers is the predict_transfers workload.
	Transfers []TransferRequest `json:"transfers,omitempty"`
	// Background adds per-query cross-traffic, on top of whatever the
	// scenario injects.
	Background [][2]string `json:"bg,omitempty"`
	// Hypotheses is the select_fastest alternative set.
	Hypotheses []Hypothesis `json:"hypotheses,omitempty"`
	// Workflow is the predict_workflow DAG.
	Workflow *workflow.Workflow `json:"workflow,omitempty"`
}

// validate checks the query's shape.
func (q *EvalQuery) validate(i int) error {
	switch q.Kind {
	case QueryPredictTransfers:
		if len(q.Transfers) == 0 {
			return fmt.Errorf("pilgrim: query %d: predict_transfers needs transfers", i)
		}
		for _, t := range q.Transfers {
			if t.Src == "" || t.Dst == "" || t.Size <= 0 || math.IsNaN(t.Size) || math.IsInf(t.Size, 0) {
				return fmt.Errorf("pilgrim: query %d: invalid transfer %+v", i, t)
			}
		}
	case QuerySelectFastest:
		if len(q.Hypotheses) == 0 {
			return fmt.Errorf("pilgrim: query %d: select_fastest needs hypotheses", i)
		}
		for hi, h := range q.Hypotheses {
			if len(h.Transfers) == 0 {
				return fmt.Errorf("pilgrim: query %d: hypothesis %d is empty", i, hi)
			}
		}
	case QueryPredictWorkflow:
		if q.Workflow == nil {
			return fmt.Errorf("pilgrim: query %d: predict_workflow needs a workflow", i)
		}
		if _, err := q.Workflow.Validate(); err != nil {
			return fmt.Errorf("pilgrim: query %d: %w", i, err)
		}
	default:
		return fmt.Errorf("pilgrim: query %d: unknown kind %q", i, q.Kind)
	}
	return nil
}

// EvaluateRequest is the evaluate body: N scenarios × M queries. An empty
// scenario list evaluates one implicit baseline scenario (no mutations),
// making evaluate a pure batch-query API.
type EvaluateRequest struct {
	// At evaluates every scenario against the platform's epoch at this
	// Unix time (same semantics as the at= query parameter; 0 = newest
	// observation). A scenario's own at_time mutation overrides it.
	At        int64               `json:"at,omitempty"`
	Scenarios []scenario.Scenario `json:"scenarios,omitempty"`
	Queries   []EvalQuery         `json:"queries"`
}

// EvalResult is one cell of the answer grid: exactly one of the result
// fields is set, or Error when this scenario cannot answer this query
// (e.g. a transfer routed over a failed link). A cell error never fails
// the batch — failure sweeps want the other cells.
type EvalResult struct {
	Error       string             `json:"error,omitempty"`
	Predictions []Prediction       `json:"predictions,omitempty"`
	Best        *int               `json:"best,omitempty"`
	Hypotheses  []HypothesisResult `json:"hypotheses,omitempty"`
	Forecast    *workflow.Forecast `json:"forecast,omitempty"`
}

// ScenarioResult is one scenario's row: the epoch it evaluated against,
// its provenance (the canonical mutation list recorded on the epoch), and
// one EvalResult per request query. Error is set when the scenario itself
// failed to compile (unknown resources, beyond-horizon at_time); its
// Results are then absent.
type ScenarioResult struct {
	Name            string       `json:"name,omitempty"`
	Epoch           uint64       `json:"epoch,omitempty"`
	Provenance      string       `json:"provenance,omitempty"`
	BackgroundFlows int          `json:"background_flows,omitempty"`
	Error           string       `json:"error,omitempty"`
	Results         []EvalResult `json:"results,omitempty"`
}

// EvaluateStats is the per-request dedup accounting.
type EvaluateStats struct {
	// Scenarios and Queries are the request's grid dimensions; Cells
	// their product.
	Scenarios int `json:"scenarios"`
	Queries   int `json:"queries"`
	Cells     int `json:"cells"`
	// Groups is the number of distinct (epoch, background) pictures the
	// scenarios collapsed to — the unit of parallel fan-out, each running
	// its queries on one pooled engine.
	Groups int `json:"groups"`
	// OverlaysReused counts scenarios whose derived epoch came from the
	// overlay cache (or was shared within the request) instead of a fresh
	// ApplyOverlay.
	OverlaysReused int `json:"overlays_reused"`
	// Simulations counts sub-simulations actually executed (base runs,
	// checkpoint forks, cold runs, and workflow forecasts alike); CacheHits
	// counts sub-simulations answered from the forecast cache.
	Simulations int `json:"simulations"`
	CacheHits   int `json:"cache_hits"`
	// BaseGroups is the number of distinct (base epoch, background)
	// supergroups the differential evaluator collapsed the groups into —
	// the unit of warm-start sharing. Zero when differential evaluation is
	// disabled.
	BaseGroups int `json:"base_groups,omitempty"`
	// ForkReused counts derived-epoch cells answered by provably
	// bit-identical reuse of the base answer (no simulation); ForkRuns
	// counts cells answered by replaying the base engine's pre-run
	// checkpoint on the derived epoch; ForkCold counts derived cells that
	// fell back to a full cold run (delta touched schedule-time state).
	ForkReused int `json:"fork_reused,omitempty"`
	ForkRuns   int `json:"fork_runs,omitempty"`
	ForkCold   int `json:"fork_cold,omitempty"`
	// ForkResolvedConstraints totals the bandwidth-changed constraints the
	// forks re-priced — the actual incremental-solver work the warm starts
	// paid instead of full re-simulations.
	ForkResolvedConstraints int `json:"fork_resolved_constraints,omitempty"`
}

// EvaluateResponse is the evaluate answer: one row per scenario, in
// request order, plus the dedup accounting.
type EvaluateResponse struct {
	Platform  string           `json:"platform"`
	Scenarios []ScenarioResult `json:"scenarios"`
	Stats     EvaluateStats    `json:"stats"`
}

// OverlayCache memoizes scenario-derived epochs across requests, keyed by
// (base epoch, canonical overlay): a failure sweep polled by a scheduler
// resolves to the same derived epochs every time, which keeps the
// forecast cache's epoch-keyed entries warm between requests. Bounded
// LRU; evicted snapshots become collectable once no engine pool flavour
// pins them.
type OverlayCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element
	lru      *list.List
	hits     uint64
	misses   uint64
}

type overlayEntry struct {
	key  string
	snap *platform.Snapshot
}

// DefaultOverlayCacheSize is the overlay cache capacity NewServer
// installs.
const DefaultOverlayCacheSize = 128

// NewOverlayCache returns an overlay cache holding up to capacity derived
// epochs (capacity <= 0 disables reuse: every scenario derives afresh).
func NewOverlayCache(capacity int) *OverlayCache {
	return &OverlayCache{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
	}
}

func overlayCacheKey(baseEpoch uint64, key string) string {
	return strconv.FormatUint(baseEpoch, 16) + "\x1c" + key
}

func (oc *OverlayCache) get(baseEpoch uint64, key string) (*platform.Snapshot, bool) {
	if oc == nil {
		return nil, false
	}
	oc.mu.Lock()
	defer oc.mu.Unlock()
	if oc.capacity > 0 {
		if el, ok := oc.entries[overlayCacheKey(baseEpoch, key)]; ok {
			oc.lru.MoveToFront(el)
			oc.hits++
			return el.Value.(*overlayEntry).snap, true
		}
	}
	oc.misses++
	return nil, false
}

func (oc *OverlayCache) put(baseEpoch uint64, key string, snap *platform.Snapshot) {
	if oc == nil || oc.capacity <= 0 {
		return
	}
	oc.mu.Lock()
	defer oc.mu.Unlock()
	k := overlayCacheKey(baseEpoch, key)
	if _, ok := oc.entries[k]; ok {
		return
	}
	oc.entries[k] = oc.lru.PushFront(&overlayEntry{key: k, snap: snap})
	for oc.lru.Len() > oc.capacity {
		oldest := oc.lru.Back()
		oc.lru.Remove(oldest)
		delete(oc.entries, oldest.Value.(*overlayEntry).key)
	}
}

// OverlayStats is the overlay cache accounting surfaced by cache_stats.
type OverlayStats struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Size     int    `json:"size"`
	Capacity int    `json:"capacity"`
}

// Stats returns a snapshot of the overlay cache counters.
func (oc *OverlayCache) Stats() OverlayStats {
	if oc == nil {
		return OverlayStats{}
	}
	oc.mu.Lock()
	defer oc.mu.Unlock()
	return OverlayStats{Hits: oc.hits, Misses: oc.misses, Size: oc.lru.Len(), Capacity: oc.capacity}
}

// Evaluator bundles the moving parts of batched evaluation. The server
// assembles one per request from its live configuration; embedders (the
// examples, the benchmarks) hold one directly.
type Evaluator struct {
	Platforms *Registry
	Cache     *ForecastCache
	Pool      *WorkerPool
	// Overlays may be nil (no cross-request epoch reuse).
	Overlays *OverlayCache
	// MaxScenarios and MaxCells bound a request (<= 0 selects the
	// defaults).
	MaxScenarios int
	MaxCells     int
	// DisableDifferential forces every group to evaluate cold, turning off
	// the warm-start base-run+delta machinery (the pilgrimd
	// -differential-eval=false escape hatch). The zero value — differential
	// evaluation on — is the intended configuration; results are
	// bit-identical either way.
	DisableDifferential bool
}

// evalGroup is one distinct (epoch, background) picture: the scenarios
// that collapsed to it and the per-query results computed once for all of
// them.
type evalGroup struct {
	entry     PlatformEntry        // pinned to the group's derived epoch
	base      PlatformEntry        // pinned to the epoch the scenario derived from
	delta     *platform.EpochDelta // derived-vs-base mutation classes (empty when entry is the base)
	bg        [][2]string          // canonical scenario background
	scenarios []int                // request indices sharing this group
	results   []EvalResult         // one per request query
	sims      int                  // sub-simulations this group executed
	hits      int                  // sub-simulations answered by the cache
	reused    int                  // derived cells answered by base-result reuse
	forked    int                  // derived cells answered by checkpoint-fork replay
	cold      int                  // derived cells that fell back to a cold run
	resolved  int                  // constraints re-priced across this group's forks
}

// Evaluate answers one N×M batch for the named platform. Request-shape
// problems (unknown platform, no queries, limits exceeded) fail the call;
// per-scenario and per-cell problems are reported inside the response.
func (ev *Evaluator) Evaluate(name string, req EvaluateRequest) (*EvaluateResponse, error) {
	return ev.EvaluateCtx(context.Background(), name, req)
}

// EvaluateCtx is Evaluate under a request context: scenario resolution
// checks ctx between scenarios, and the group fan-out stops dispatching
// once ctx is done (running groups finish — a simulation is not
// interruptible). An expired ctx fails the call; the HTTP layer maps
// context.DeadlineExceeded to 504.
func (ev *Evaluator) EvaluateCtx(ctx context.Context, name string, req EvaluateRequest) (*EvaluateResponse, error) {
	reg := ev.Platforms
	if reg == nil {
		return nil, fmt.Errorf("pilgrim: evaluator has no registry")
	}
	if _, ok := reg.Get(name); !ok {
		return nil, fmt.Errorf("pilgrim: unknown platform %q", name)
	}
	maxScen := ev.MaxScenarios
	if maxScen <= 0 {
		maxScen = DefaultMaxScenarios
	}
	maxCells := ev.MaxCells
	if maxCells <= 0 {
		maxCells = DefaultMaxEvaluateCells
	}
	scenarios := req.Scenarios
	if len(scenarios) == 0 {
		scenarios = []scenario.Scenario{{Name: "baseline"}}
	}
	if len(scenarios) > maxScen {
		return nil, fmt.Errorf("pilgrim: %d scenarios exceed the limit of %d", len(scenarios), maxScen)
	}
	if len(req.Queries) == 0 {
		return nil, fmt.Errorf("pilgrim: at least one query required")
	}
	if cells := len(scenarios) * len(req.Queries); cells > maxCells {
		return nil, fmt.Errorf("pilgrim: %d scenario×query cells exceed the fan-out limit of %d",
			cells, maxCells)
	}
	for i := range req.Queries {
		if err := req.Queries[i].validate(i); err != nil {
			return nil, err
		}
	}

	resp := &EvaluateResponse{
		Platform:  name,
		Scenarios: make([]ScenarioResult, len(scenarios)),
		Stats: EvaluateStats{
			Scenarios: len(scenarios),
			Queries:   len(req.Queries),
			Cells:     len(scenarios) * len(req.Queries),
		},
	}

	// Phase 1 (serial): resolve every scenario to its derived epoch and
	// collapse equal (epoch, background) pictures into groups.
	groups := make(map[string]*evalGroup)
	var order []*evalGroup
	for si := range scenarios {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sc := &scenarios[si]
		row := &resp.Scenarios[si]
		row.Name = sc.Name

		entry, err := ev.scenarioBase(name, req.At, sc)
		if err != nil {
			row.Error = err.Error()
			continue
		}
		var bgEst [][2]string
		if sc.WantsBgEstimate() {
			bgEst, _, _ = reg.BackgroundEstimate(name)
		}
		base := entry.snapshot()
		resolved, err := sc.Resolve(base, bgEst)
		if err != nil {
			row.Error = err.Error()
			continue
		}
		snap := base
		if !resolved.Empty() {
			key := resolved.Key()
			cached, ok := ev.Overlays.get(base.Epoch(), key)
			if ok {
				snap = cached
				resp.Stats.OverlaysReused++
			} else {
				snap, err = resolved.Apply(base)
				if err != nil {
					row.Error = err.Error()
					continue
				}
				ev.Overlays.put(base.Epoch(), key, snap)
			}
		}
		baseEntry := entry
		baseEntry.Snapshot = base
		delta := &platform.EpochDelta{}
		if snap != base {
			// O(mutations), no epoch walk: the resolved overlay knows
			// exactly which resources it changed away from base values.
			delta = resolved.Delta(base)
		}
		entry.Snapshot = snap
		row.Epoch = snap.Epoch()
		row.Provenance = snap.Provenance()
		row.BackgroundFlows = len(resolved.Background)

		bg := canonicalBackground(resolved.Background)
		gk := groupKey(snap.Epoch(), bg)
		g := groups[gk]
		if g == nil {
			g = &evalGroup{entry: entry, base: baseEntry, delta: delta, bg: bg}
			groups[gk] = g
			order = append(order, g)
		}
		g.scenarios = append(g.scenarios, si)
	}
	resp.Stats.Groups = len(order)

	// Phase 2 (parallel): run each group's query batch on one pooled
	// engine, deduplicating sub-simulations through the forecast cache.
	// Queries are canonicalized once here — per group only the epoch
	// prefix of each cache key changes.
	templates := buildSubTemplates(req.Queries)
	pool := ev.Pool
	if pool == nil {
		pool = defaultPool()
	}
	pool.evalCalls.Add(1)
	pool.evalCells.Add(uint64(resp.Stats.Cells))
	pool.evalRuns.Add(uint64(len(order)))
	var supers []*superGroup
	if ev.DisableDifferential {
		errs := make([]error, len(order))
		if err := pool.RunCtx(ctx, len(order), func(gi int) {
			g := order[gi]
			g.results, errs[gi] = ev.runGroup(ctx, name, g, req.Queries, templates)
		}); err != nil {
			return nil, err
		}
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	} else {
		// Groups deriving from one base epoch under one background picture
		// share their base answers and fork handles: the supergroup is the
		// unit of fan-out, evaluated serially inside one pool slot.
		supers = buildSuperGroups(order)
		resp.Stats.BaseGroups = len(supers)
		errs := make([]error, len(supers))
		if err := pool.RunCtx(ctx, len(supers), func(si int) {
			errs[si] = ev.runSuperGroup(ctx, name, supers[si], req.Queries, templates)
		}); err != nil {
			return nil, err
		}
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}

	// Phase 3 (serial): fan group results back into the scenario rows.
	for _, sg := range supers {
		resp.Stats.Simulations += sg.baseSims
	}
	for _, g := range order {
		resp.Stats.Simulations += g.sims
		resp.Stats.CacheHits += g.hits
		resp.Stats.ForkReused += g.reused
		resp.Stats.ForkRuns += g.forked
		resp.Stats.ForkCold += g.cold
		resp.Stats.ForkResolvedConstraints += g.resolved
		for _, si := range g.scenarios {
			resp.Scenarios[si].Results = g.results
		}
	}
	pool.evalSims.Add(uint64(resp.Stats.Simulations))
	pool.evalForkReused.Add(uint64(resp.Stats.ForkReused))
	pool.evalForkRuns.Add(uint64(resp.Stats.ForkRuns))
	pool.evalForkCold.Add(uint64(resp.Stats.ForkCold))
	pool.evalForkConstraints.Add(uint64(resp.Stats.ForkResolvedConstraints))
	return resp, nil
}

// scenarioBase resolves the epoch a scenario starts from: its own at_time
// mutation, else the request-level at, else the newest observation.
func (ev *Evaluator) scenarioBase(name string, reqAt int64, sc *scenario.Scenario) (PlatformEntry, error) {
	at, ok := sc.At()
	if !ok {
		at = reqAt
	}
	if at == 0 {
		entry, found := ev.Platforms.Get(name)
		if !found {
			return PlatformEntry{}, fmt.Errorf("pilgrim: unknown platform %q", name)
		}
		return entry, nil
	}
	return ev.Platforms.GetAt(name, at)
}

func groupKey(epoch uint64, bg [][2]string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%x", epoch)
	for _, f := range bg {
		b.WriteByte(0x1d)
		b.WriteString(f[0])
		b.WriteByte(0x1f)
		b.WriteString(f[1])
	}
	return b.String()
}

// subTemplate is the group-independent canonical form of one
// sub-simulation: the transfer multiset sorted once, its key fragment
// prebuilt, the sim-level transfer list ready to plan (read-only, shared
// across groups). Per group, the cache key is the group's entry prefix +
// tKey + the merged background's key.
type subTemplate struct {
	order   []int
	canon   []TransferRequest
	sims    []sim.Transfer
	tKey    string
	extraBg [][2]string // per-query background (canonical)
}

func newSubTemplate(transfers []TransferRequest, extraBg [][2]string) subTemplate {
	order := canonicalize(transfers)
	canon := make([]TransferRequest, len(transfers))
	sims := make([]sim.Transfer, len(transfers))
	for pos, i := range order {
		canon[pos] = transfers[i]
		sims[pos] = sim.Transfer{Src: transfers[i].Src, Dst: transfers[i].Dst, Size: transfers[i].Size}
	}
	return subTemplate{
		order:   order,
		canon:   canon,
		sims:    sims,
		tKey:    transfersKey(transfers, order),
		extraBg: canonicalBackground(extraBg),
	}
}

// buildSubTemplates canonicalizes every query's sub-simulations once per
// request (nil rows for workflow queries, which carry no transfer subs).
func buildSubTemplates(queries []EvalQuery) [][]subTemplate {
	out := make([][]subTemplate, len(queries))
	for qi := range queries {
		q := &queries[qi]
		switch q.Kind {
		case QueryPredictTransfers:
			out[qi] = []subTemplate{newSubTemplate(q.Transfers, q.Background)}
		case QuerySelectFastest:
			subs := make([]subTemplate, len(q.Hypotheses))
			for hi, h := range q.Hypotheses {
				subs[hi] = newSubTemplate(h.Transfers, q.Background)
			}
			out[qi] = subs
		}
	}
	return out
}

// planSub is one cacheable sub-simulation of a group's plan: where its
// answer comes from (the cache, a plan slot shared with identical subs,
// or another request's in-flight flight) and how to fold it back into
// its cell.
type planSub struct {
	tmpl     *subTemplate
	key      string
	bg       [][2]string  // merged background (for the abandoned-flight fallback)
	cached   []Prediction // canonical order, when the cache answered
	err      error        // terminal error delivered by a followed flight
	planSlot int          // index into the RunPlan batch, -1 when cached/followed
	flight   *flightCall  // in-flight answer owned by another request
}

// runGroup answers every request query against one derived epoch. All
// misses across all queries run as a single sim.RunPlan batch on one
// pooled engine; identical sub-simulations — across hypotheses, across
// queries — collapse onto one plan slot, and subs another request is
// already simulating coalesce onto that request's flight. Follows the
// flight deadlock discipline (flight.go): every flight this group leads
// completes before it waits on a followed one. A non-nil error is the
// caller's ctx expiring mid-wait and fails the whole request.
func (ev *Evaluator) runGroup(ctx context.Context, name string, g *evalGroup, queries []EvalQuery, templates [][]subTemplate) ([]EvalResult, error) {
	results := make([]EvalResult, len(queries))
	subs := make([][]planSub, len(queries)) // per query, its sub-simulations (nil for workflow)
	var plan []sim.PlanQuery
	var ledFlights []*flightCall    // parallel to plan
	planIdx := make(map[string]int) // canonical key -> plan slot
	followIdx := make(map[string]*flightCall)
	prefix := cacheKeyPrefix(name, g.entry)

	addSub := func(qi int, tmpl *subTemplate) {
		bg := g.bg
		if len(tmpl.extraBg) > 0 {
			bg = canonicalBackground(append(append([][2]string(nil), g.bg...), tmpl.extraBg...))
		}
		sub := planSub{tmpl: tmpl, key: prefix + tmpl.tKey + backgroundKey(bg), bg: bg, planSlot: -1}
		if slot, ok := planIdx[sub.key]; ok {
			sub.planSlot = slot // identical sub already planned this batch
			g.hits++
		} else if f, ok := followIdx[sub.key]; ok {
			sub.flight = f // identical sub already followed this batch
			g.hits++
		} else if canonical, f, leader := ev.Cache.lead(sub.key); canonical != nil {
			sub.cached = canonical
			g.hits++
		} else if leader {
			sub.planSlot = len(plan)
			planIdx[sub.key] = len(plan)
			plan = append(plan, sim.PlanQuery{Transfers: tmpl.sims, Background: bg})
			ledFlights = append(ledFlights, f)
		} else {
			// Another request is simulating this key right now: wait for
			// its answer after our own plan runs and publishes.
			sub.flight = f
			followIdx[sub.key] = f
			g.hits++
		}
		subs[qi] = append(subs[qi], sub)
	}

	for qi := range queries {
		q := &queries[qi]
		switch q.Kind {
		case QueryPredictTransfers, QuerySelectFastest:
			for ti := range templates[qi] {
				addSub(qi, &templates[qi][ti])
			}
		case QueryPredictWorkflow:
			// Workflows bypass the transfer cache but still share the
			// group's engine-pool flavour and background picture (the
			// scenario's flows plus any per-query ones).
			bg := g.bg
			if len(q.Background) > 0 {
				bg = canonicalBackground(append(append([][2]string(nil), g.bg...), q.Background...))
			}
			f, err := workflow.PredictWithBackground(g.entry.snapshot(), g.entry.Config, q.Workflow, bg)
			g.sims++
			if err != nil {
				results[qi].Error = err.Error()
			} else {
				results[qi].Forecast = f
			}
		}
	}

	ledKeys := invertPlanIndex(planIdx, len(plan))
	// Settle every led flight no matter how this function exits: a
	// panic below must not leave followers waiting forever (abandon is
	// a no-op on flights completed normally).
	defer func() {
		for slot, key := range ledKeys {
			ev.Cache.abandon(key, ledFlights[slot])
		}
	}()

	planResults := sim.RunPlan(g.entry.snapshot(), g.entry.Config, plan)
	g.sims += len(plan)

	// Convert and memoize each successful plan slot once; shared slots
	// and later requests reuse the same canonical slice. The Store
	// precedes the flight completion (flight.go's arrival invariant).
	planPreds := make([][]Prediction, len(plan))
	for slot, key := range ledKeys {
		preds, err := planToPreds(&planResults[slot])
		if err != nil {
			ev.Cache.complete(key, ledFlights[slot], nil, err)
			continue
		}
		planPreds[slot] = preds
		ev.Cache.Store(key, preds)
		ev.Cache.complete(key, ledFlights[slot], preds, nil)
	}

	// Only now — every led flight published — wait for the answers other
	// requests are computing for us.
	for qi := range subs {
		for si := range subs[qi] {
			sub := &subs[qi][si]
			if sub.flight == nil {
				continue
			}
			preds, err := ev.Cache.waitFlight(ctx, sub.key, sub.flight, func() ([]Prediction, error) {
				res := sim.RunPlan(g.entry.snapshot(), g.entry.Config,
					[]sim.PlanQuery{{Transfers: sub.tmpl.sims, Background: sub.bg}})
				g.sims++
				return planToPreds(&res[0])
			})
			if err != nil && ctx.Err() != nil {
				return nil, ctx.Err()
			}
			sub.cached, sub.err = preds, err
		}
	}

	foldSubResults(queries, templates, func(qi, si int) ([]Prediction, error) {
		sub := &subs[qi][si]
		if sub.err != nil {
			return nil, sub.err
		}
		if sub.cached != nil {
			return sub.cached, nil
		}
		if err := planResults[sub.planSlot].Err; err != nil {
			return nil, err
		}
		return planPreds[sub.planSlot], nil
	}, results)
	return results, nil
}

// planToPreds converts one plan result into canonical-order predictions.
func planToPreds(pr *sim.PlanResult) ([]Prediction, error) {
	if pr.Err != nil {
		return nil, pr.Err
	}
	preds := make([]Prediction, len(pr.Results))
	for i, r := range pr.Results {
		preds[i] = Prediction{Src: r.Src, Dst: r.Dst, Size: r.Size, Duration: r.Duration}
	}
	return preds, nil
}

// foldSubResults assembles the predict_transfers and select_fastest cells
// from their resolved canonical sub-answers; resolve returns the canonical
// predictions (or the failure) of the si'th sub-simulation of query qi.
// Workflow cells are untouched — they carry no transfer subs.
func foldSubResults(queries []EvalQuery, templates [][]subTemplate, resolve func(qi, si int) ([]Prediction, error), results []EvalResult) {
	for qi := range queries {
		switch queries[qi].Kind {
		case QueryPredictTransfers:
			canonical, err := resolve(qi, 0)
			if err != nil {
				results[qi].Error = err.Error()
				continue
			}
			results[qi].Predictions = reorder(canonical, templates[qi][0].order)
		case QuerySelectFastest:
			hyps := make([]HypothesisResult, len(templates[qi]))
			failed := false
			for hi := range templates[qi] {
				canonical, err := resolve(qi, hi)
				if err != nil {
					results[qi].Error = fmt.Sprintf("hypothesis %d: %v", hi, err)
					failed = true
					break
				}
				preds := reorder(canonical, templates[qi][hi].order)
				makespan := 0.0
				for _, p := range preds {
					if p.Duration > makespan {
						makespan = p.Duration
					}
				}
				hyps[hi] = HypothesisResult{Index: hi, Makespan: makespan, Predictions: preds}
			}
			if failed {
				continue
			}
			best := 0
			for hi := 1; hi < len(hyps); hi++ {
				if hyps[hi].Makespan < hyps[best].Makespan {
					best = hi
				}
			}
			results[qi].Best = &best
			results[qi].Hypotheses = hyps
		}
	}
}

// invertPlanIndex maps plan slots back to their canonical keys.
func invertPlanIndex(planIdx map[string]int, n int) []string {
	keys := make([]string, n)
	for k, slot := range planIdx {
		keys[slot] = k
	}
	return keys
}

// superGroup is the unit of differential fan-out: every group that derives
// from one base epoch under one scenario-background picture. The member
// epochs differ from that base by small overlays, so the supergroup
// answers its members against one set of base runs: cells whose query
// footprint misses a member's delta reuse the base answer outright,
// bandwidth-only overlaps replay from the base engine's pre-run
// checkpoint, and the rest run cold — all bit-identical to evaluating
// each member in isolation (see internal/sim/diff.go for the soundness
// argument).
type superGroup struct {
	base     PlatformEntry
	bg       [][2]string
	members  []*evalGroup
	baseSims int // base-epoch sub-simulations run on behalf of the members
}

func buildSuperGroups(order []*evalGroup) []*superGroup {
	index := make(map[string]*superGroup)
	var supers []*superGroup
	for _, g := range order {
		k := groupKey(g.base.snapshot().Epoch(), g.bg)
		sg := index[k]
		if sg == nil {
			sg = &superGroup{base: g.base, bg: g.bg}
			index[k] = sg
			supers = append(supers, sg)
		}
		sg.members = append(sg.members, g)
	}
	return supers
}

// diffSub is one distinct sub-simulation of a supergroup. Members share
// one background picture, so every member asks the sub with identical
// transfers and merged background: one base answer — and one fork handle —
// serves the whole member set. Its cache key under any epoch is that
// epoch's prefix plus frag.
type diffSub struct {
	tmpl *subTemplate
	frag string
	plan sim.PlanQuery
	fp   *sim.Footprint // lazy: only computed when some member misses
}

// footprint resolves (once) the sub's resource footprint on the base
// epoch; routes are topology-level, so it is valid for every member.
func (ds *diffSub) footprint(base *platform.Snapshot) *sim.Footprint {
	if ds.fp == nil {
		f := sim.PlanFootprint(base, &ds.plan)
		ds.fp = &f
	}
	return ds.fp
}

// subAnswer is one resolved sub-simulation: canonical predictions or the
// simulation's error.
type subAnswer struct {
	preds []Prediction
	err   error
	have  bool
}

// runSuperGroup answers every member group of one base epoch. Per member
// it first probes the member's own cache keys (exactly like a cold group
// would), classifies the remaining subs against the member's delta, then
// resolves them by base-answer reuse, checkpoint fork, or batched cold
// runs. All counters live on the member groups except baseSims, which
// counts base-epoch work attributable to the supergroup as a whole.
// Member-key misses lead coalescing flights (completed as each answer
// lands) and keys another request is already simulating are followed —
// but only after every led flight has published, per flight.go's
// deadlock discipline. A non-nil error is ctx expiring mid-wait.
func (ev *Evaluator) runSuperGroup(ctx context.Context, name string, sg *superGroup, queries []EvalQuery, templates [][]subTemplate) error {
	// A lone member sitting on its own base epoch has nothing to diff
	// against — the classic path is strictly cheaper.
	if len(sg.members) == 1 && sg.members[0].delta.Empty() {
		g := sg.members[0]
		var err error
		g.results, err = ev.runGroup(ctx, name, g, queries, templates)
		return err
	}

	base := sg.base.snapshot()
	basePrefix := cacheKeyPrefix(name, sg.base)

	// Collect the distinct sub-simulations of the member set and map every
	// (query, sub) instance onto them.
	var dsubs []diffSub
	dedup := make(map[string]int)
	inst := make([][]int, len(queries))
	for qi := range queries {
		if templates[qi] == nil {
			continue
		}
		inst[qi] = make([]int, len(templates[qi]))
		for si := range templates[qi] {
			tmpl := &templates[qi][si]
			bg := sg.bg
			if len(tmpl.extraBg) > 0 {
				bg = canonicalBackground(append(append([][2]string(nil), sg.bg...), tmpl.extraBg...))
			}
			frag := tmpl.tKey + backgroundKey(bg)
			di, ok := dedup[frag]
			if !ok {
				di = len(dsubs)
				dedup[frag] = di
				dsubs = append(dsubs, diffSub{
					tmpl: tmpl,
					frag: frag,
					plan: sim.PlanQuery{Transfers: tmpl.sims, Background: bg},
				})
			}
			inst[qi][si] = di
		}
	}

	// Per member: probe the member's cache keys per instance (preserving
	// the classic path's hit accounting: a repeated instance is an in-plan
	// dedup hit) and classify what is left against the member's delta.
	type memberState struct {
		g        *evalGroup
		prefix   string
		answers  []subAnswer
		need     []int // dsub indices this member still has to resolve
		class    []sim.DeltaClass
		cold     []int                // dsub indices falling back to a cold run
		led      map[int]*flightCall  // flights this member leads, by dsub index
		followed map[int]*flightCall  // flights owned by other requests, by dsub index
	}
	needBase := make([]bool, len(dsubs))
	wantCk := make([]bool, len(dsubs))
	members := make([]*memberState, len(sg.members))
	// Settle every led flight no matter how this function exits: a panic
	// must not leave followers waiting forever (abandon no-ops on
	// flights completed normally below).
	defer func() {
		for _, m := range members {
			if m == nil {
				continue
			}
			for di, f := range m.led {
				ev.Cache.abandon(m.prefix+dsubs[di].frag, f)
			}
		}
	}()
	for mi, g := range sg.members {
		m := &memberState{
			g:        g,
			prefix:   cacheKeyPrefix(name, g.entry),
			answers:  make([]subAnswer, len(dsubs)),
			class:    make([]sim.DeltaClass, len(dsubs)),
			led:      make(map[int]*flightCall),
			followed: make(map[int]*flightCall),
		}
		members[mi] = m
		needed := make([]bool, len(dsubs))
		for qi := range queries {
			for _, di := range inst[qi] {
				if m.answers[di].have {
					g.hits++ // cached answer shared by a repeated instance
					continue
				}
				if needed[di] || m.followed[di] != nil {
					g.hits++ // in-plan dedup: identical sub already pending
					continue
				}
				cached, f, leader := ev.Cache.lead(m.prefix + dsubs[di].frag)
				if cached != nil {
					m.answers[di] = subAnswer{preds: cached, have: true}
					g.hits++
					continue
				}
				if !leader {
					// Another request is simulating this key: collect its
					// answer after every flight we lead has published.
					m.followed[di] = f
					g.hits++
					continue
				}
				if f != nil {
					m.led[di] = f
				}
				needed[di] = true
				m.need = append(m.need, di)
			}
		}
		for _, di := range m.need {
			cls := sim.ClassReuse
			if !g.delta.Empty() {
				cls = dsubs[di].footprint(base).Classify(g.delta)
			}
			m.class[di] = cls
			if cls == sim.ClassReuse || cls == sim.ClassFork {
				needBase[di] = true
				if cls == sim.ClassFork {
					wantCk[di] = true
				}
			}
		}
	}

	// Resolve the base answers the members need: from the forecast cache
	// when an earlier request already paid for them (capturing a fork
	// handle separately costs only the plan setup), else by running the
	// missing base subs as one batch with checkpoints where forks want
	// them.
	// Base keys lead flights too (leadOrRun) so concurrent predict
	// requests against the base epoch can coalesce onto this batch —
	// but this phase never waits on a foreign flight: member answers
	// below depend on the base answers, and parking here could chain
	// into a cross-request cycle. When another request owns the flight,
	// the base sub just runs again (the pre-coalescing race, bounded to
	// this window).
	baseAns := make([]subAnswer, len(dsubs))
	cks := make([]*sim.PlanCheckpoint, len(dsubs))
	baseLed := make([]*flightCall, len(dsubs))
	defer func() {
		for di, f := range baseLed {
			ev.Cache.abandon(basePrefix+dsubs[di].frag, f)
		}
	}()
	var runIdx []int
	for di := range dsubs {
		if !needBase[di] {
			continue
		}
		preds, f, leader := ev.Cache.leadOrRun(basePrefix + dsubs[di].frag)
		if preds != nil {
			baseAns[di] = subAnswer{preds: preds, have: true}
			if wantCk[di] {
				cks[di] = sim.CheckpointPlan(base, sg.base.Config, dsubs[di].plan)
			}
			continue
		}
		if leader {
			baseLed[di] = f
		}
		runIdx = append(runIdx, di)
	}
	if len(runIdx) > 0 {
		plan := make([]sim.PlanQuery, len(runIdx))
		want := make([]bool, len(runIdx))
		for j, di := range runIdx {
			plan[j] = dsubs[di].plan
			want[j] = wantCk[di]
		}
		res, pcs := sim.RunPlanCheckpoints(base, sg.base.Config, plan, want)
		sg.baseSims += len(runIdx)
		for j, di := range runIdx {
			preds, err := planToPreds(&res[j])
			baseAns[di] = subAnswer{preds: preds, err: err, have: true}
			cks[di] = pcs[j]
			if err == nil {
				ev.Cache.Store(basePrefix+dsubs[di].frag, preds)
			}
			ev.Cache.complete(basePrefix+dsubs[di].frag, baseLed[di], preds, err)
		}
	}

	// Answer each member's remaining subs by the cheapest sound strategy,
	// memoizing successes under the member's own keys so the next request
	// short-circuits at the cache probes above. The base-epoch member (if
	// any) resolves everything as reuse against keys it already owns; its
	// reuses are plain dedup, not differential wins, so the fork counters
	// only move for members with a real delta.
	for _, m := range members {
		g := m.g
		derived := g.delta != nil && !g.delta.Empty()
		for _, di := range m.need {
			if m.class[di] == sim.ClassFork {
				if pc := cks[di]; pc != nil {
					if pr, ok := pc.Fork(g.entry.snapshot()); ok {
						preds, err := planToPreds(&pr)
						m.answers[di] = subAnswer{preds: preds, err: err, have: true}
						g.sims++
						g.forked++
						g.resolved += dsubs[di].footprint(base).TouchedBw(g.delta)
						if err == nil {
							ev.Cache.Store(m.prefix+dsubs[di].frag, preds)
						}
						ev.Cache.complete(m.prefix+dsubs[di].frag, m.led[di], preds, err)
						continue
					}
				}
				m.class[di] = sim.ClassCold // no handle (base setup failed) or fork refused
			}
			switch m.class[di] {
			case sim.ClassReuse:
				m.answers[di] = baseAns[di]
				if derived {
					g.reused++
					if baseAns[di].err == nil {
						ev.Cache.Store(m.prefix+dsubs[di].frag, baseAns[di].preds)
					}
				}
				ev.Cache.complete(m.prefix+dsubs[di].frag, m.led[di], baseAns[di].preds, baseAns[di].err)
			case sim.ClassCold:
				m.cold = append(m.cold, di)
			}
		}
		if len(m.cold) > 0 {
			plan := make([]sim.PlanQuery, len(m.cold))
			for j, di := range m.cold {
				plan[j] = dsubs[di].plan
			}
			res := sim.RunPlan(g.entry.snapshot(), g.entry.Config, plan)
			g.sims += len(plan)
			for j, di := range m.cold {
				preds, err := planToPreds(&res[j])
				m.answers[di] = subAnswer{preds: preds, err: err, have: true}
				if derived {
					g.cold++
				}
				if err == nil {
					ev.Cache.Store(m.prefix+dsubs[di].frag, preds)
				}
				ev.Cache.complete(m.prefix+dsubs[di].frag, m.led[di], preds, err)
			}
		}
	}

	// Every flight this supergroup leads has published; only now wait
	// for the answers other requests are computing for us (flight.go's
	// deadlock discipline).
	for _, m := range members {
		for di, f := range m.followed {
			ds := &dsubs[di]
			preds, err := ev.Cache.waitFlight(ctx, m.prefix+ds.frag, f, func() ([]Prediction, error) {
				res := sim.RunPlan(m.g.entry.snapshot(), m.g.entry.Config, []sim.PlanQuery{ds.plan})
				m.g.sims++
				return planToPreds(&res[0])
			})
			if err != nil && ctx.Err() != nil {
				return ctx.Err()
			}
			m.answers[di] = subAnswer{preds: preds, err: err, have: true}
		}
	}

	for _, m := range members {
		g := m.g
		// Workflow cells bypass the transfer machinery entirely, exactly as
		// in the classic path.
		results := make([]EvalResult, len(queries))
		for qi := range queries {
			q := &queries[qi]
			if q.Kind != QueryPredictWorkflow {
				continue
			}
			bg := g.bg
			if len(q.Background) > 0 {
				bg = canonicalBackground(append(append([][2]string(nil), g.bg...), q.Background...))
			}
			f, err := workflow.PredictWithBackground(g.entry.snapshot(), g.entry.Config, q.Workflow, bg)
			g.sims++
			if err != nil {
				results[qi].Error = err.Error()
			} else {
				results[qi].Forecast = f
			}
		}
		foldSubResults(queries, templates, func(qi, si int) ([]Prediction, error) {
			a := &m.answers[inst[qi][si]]
			return a.preds, a.err
		}, results)
		g.results = results
	}
	return nil
}
