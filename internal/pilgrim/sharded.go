package pilgrim

import (
	"net/http"

	"pilgrim/internal/shard"
)

// ShardedClient routes typed client calls straight to the worker that
// owns each platform on the rendezvous ring — the zero-hop alternative
// to pointing a plain Client at pilgrimgw. Both paths compute ownership
// with the same hash, so an embedder can mix them freely; the gateway
// additionally gives fleet-wide reads and a single endpoint to
// configure.
//
// All per-worker clients share one fleet-sized transport, so fanning
// requests across workers reuses pooled connections instead of
// re-handshaking (see NewFleetTransport).
type ShardedClient struct {
	ring    *shard.Ring
	clients map[string]*Client
}

// NewShardedClient builds a sharded client over the given membership.
// retry applies to every per-worker client (zero value: defaults).
func NewShardedClient(m *shard.Map, retry RetryPolicy) (*ShardedClient, error) {
	ring, err := shard.NewRing(m)
	if err != nil {
		return nil, err
	}
	hc := &http.Client{
		Transport: NewFleetTransport(0),
		Timeout:   DefaultClientTimeout,
	}
	sc := &ShardedClient{ring: ring, clients: make(map[string]*Client, ring.Len())}
	for _, w := range ring.Workers() {
		c := NewClient(w.URL)
		c.HTTP = hc
		c.Retry = retry
		sc.clients[w.Name] = c
	}
	return sc, nil
}

// For returns the client of the worker owning platform. The result is
// shared — do not mutate it.
func (sc *ShardedClient) For(platform string) *Client {
	return sc.clients[sc.ring.Owner(platform).Name]
}

// Owner reports which worker owns platform.
func (sc *ShardedClient) Owner(platform string) shard.Worker {
	return sc.ring.Owner(platform)
}

// Workers lists the fleet in ring (name-sorted) order.
func (sc *ShardedClient) Workers() []shard.Worker { return sc.ring.Workers() }
