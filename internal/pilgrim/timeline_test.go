package pilgrim

import (
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"pilgrim/internal/g5k"
	"pilgrim/internal/nws"
	"pilgrim/internal/platform"
	"pilgrim/internal/platgen"
	"pilgrim/internal/sim"
)

const testNIC = "sagittaire-1.lyon.grid5000.fr_nic"

// observe folds one bandwidth observation for the test NIC.
func observe(t *testing.T, reg *Registry, at int64, bw float64) *platform.Snapshot {
	t.Helper()
	snap, err := reg.ObserveLinkState("p", at, "test", []platform.LinkUpdate{
		{Link: testNIC, Bandwidth: bw, Latency: -1}})
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestRegistryGetAt checks temporal resolution end to end: past times
// answer timeline epochs, futures within the cap answer a memoized
// NWS-extrapolated epoch matching an independently fed Selector, and
// futures beyond the cap fail with ErrBeyondHorizon.
func TestRegistryGetAt(t *testing.T) {
	plat, err := platgen.Generate(g5k.Mini(), platgen.Options{Variant: platgen.G5KTest})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	reg.SetForecastHorizon(10 * time.Minute)
	if err := reg.Add("p", PlatformEntry{Platform: plat, Config: sim.DefaultConfig()}); err != nil {
		t.Fatal(err)
	}
	base, _ := reg.Get("p")
	li := mustLinkIdx(t, base.Snapshot, testNIC)
	baseBW := base.Snapshot.LinkBandwidth(li)

	// Before any observation, every time answers the base epoch.
	e, err := reg.GetAt("p", 1<<40)
	if err != nil || e.Snapshot.Epoch() != base.Snapshot.Epoch() {
		t.Fatalf("pre-observation GetAt: epoch %d err %v, want base %d", e.Snapshot.Epoch(), err, base.Snapshot.Epoch())
	}

	series := []float64{1.0e8, 1.4e8, 0.9e8, 1.2e8}
	for i, bw := range series {
		observe(t, reg, int64(1000+100*i), bw)
	}

	for _, c := range []struct {
		at   int64
		want float64
	}{
		{999, baseBW}, {1000, series[0]}, {1150, series[1]}, {1300, series[3]}, {1250, series[2]},
	} {
		e, err := reg.GetAt("p", c.at)
		if err != nil {
			t.Fatal(err)
		}
		if got := e.Snapshot.LinkBandwidth(li); got != c.want {
			t.Errorf("GetAt(%d): bandwidth %v, want %v", c.at, got, c.want)
		}
	}

	// Future within the cap: the NWS-extrapolated epoch, identical to an
	// independently fed selector, memoized across queries and horizons.
	ref := nws.NewSelector()
	for _, bw := range series {
		ref.Update(bw)
	}
	wantBW, ok := ref.Predict()
	if !ok {
		t.Fatal("reference selector has no forecast")
	}
	f1, err := reg.GetAt("p", 1300+60)
	if err != nil {
		t.Fatal(err)
	}
	if got := f1.Snapshot.LinkBandwidth(li); math.Float64bits(got) != math.Float64bits(wantBW) {
		t.Fatalf("forecast bandwidth %v, want selector prediction %v", got, wantBW)
	}
	f2, err := reg.GetAt("p", 1300+599)
	if err != nil {
		t.Fatal(err)
	}
	if f1.Snapshot.Epoch() != f2.Snapshot.Epoch() {
		t.Fatal("future queries against unchanged history must share one forecast epoch")
	}
	// The cap: 600s past the newest observation is out.
	if _, err := reg.GetAt("p", 1300+601); !errors.Is(err, ErrBeyondHorizon) {
		t.Fatalf("beyond-horizon err = %v, want ErrBeyondHorizon", err)
	}
	// A new observation retires the memoized forecast epoch.
	observe(t, reg, 1400, 1.1e8)
	f3, err := reg.GetAt("p", 1500)
	if err != nil {
		t.Fatal(err)
	}
	if f3.Snapshot.Epoch() == f1.Snapshot.Epoch() {
		t.Fatal("forecast epoch must be rebuilt after a new observation")
	}

	if _, err := reg.GetAt("ghost", 0); err == nil {
		t.Fatal("unknown platform must fail")
	}
}

// TestForecastCacheSharesEpochKeys checks that temporal queries stay
// memoized: at=latest resolves to the same epoch as no-at (one cache
// entry), and repeated future queries hit the memoized forecast epoch's
// entry instead of re-simulating.
func TestForecastCacheSharesEpochKeys(t *testing.T) {
	plat, err := platgen.Generate(g5k.Mini(), platgen.Options{Variant: platgen.G5KTest})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if err := reg.Add("p", PlatformEntry{Platform: plat, Config: sim.DefaultConfig()}); err != nil {
		t.Fatal(err)
	}
	observe(t, reg, 1000, 9e7)
	fc := NewForecastCache(16)
	reqs := []TransferRequest{{Src: "sagittaire-1.lyon.grid5000.fr", Dst: "sagittaire-2.lyon.grid5000.fr", Size: 5e8}}

	predictAt := func(at int64) []Prediction {
		e, err := reg.GetAt("p", at)
		if err != nil {
			t.Fatal(err)
		}
		out, err := fc.Predict("p", e, reqs, nil)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	live, _ := reg.Get("p")
	if _, err := fc.Predict("p", live, reqs, nil); err != nil {
		t.Fatal(err)
	}
	predictAt(1000) // at = latest observation: same epoch, cache hit
	if st := fc.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("at=latest must share the live entry: %+v", st)
	}
	predictAt(1500) // future: one miss materializing the forecast epoch...
	predictAt(1700) // ...then hits while history is unchanged
	predictAt(1500)
	if st := fc.Stats(); st.Hits != 3 || st.Misses != 2 {
		t.Fatalf("future queries must memoize on the forecast epoch: %+v", st)
	}
	predictAt(999) // pre-history: the base epoch, a third distinct entry
	if st := fc.Stats(); st.Misses != 3 {
		t.Fatalf("base-epoch query: %+v", st)
	}
}

// TestHTTPTimeline exercises the HTTP surface: timestamped, attributed
// update_links; at= on predict_transfers (past, future, beyond-horizon,
// malformed); byte-identical answers for at-omitted vs at=latest; and
// timeline_stats provenance.
func TestHTTPTimeline(t *testing.T) {
	srv, client := newTestServer(t)

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}
	predictPath := "/pilgrim/predict_transfers/g5k_test?transfer=sagittaire-1.lyon.grid5000.fr,sagittaire-2.lyon.grid5000.fr,500000000"

	// Two timestamped observations from a named source.
	bw := func(v float64) []LinkObservation { return []LinkObservation{{Link: testNIC, Bandwidth: &v}} }
	r1, err := client.UpdateLinks("g5k_test", UpdateLinksRequest{Time: 1336111200, Source: "iperf", Updates: bw(6e7)})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Time != 1336111200 || r1.Source != "iperf" || r1.Depth != 1 || r1.Epoch == 0 {
		t.Fatalf("update answer %+v", r1)
	}
	r2, err := client.UpdateLinks("g5k_test", UpdateLinksRequest{Time: 1336111500, Source: "iperf", Updates: bw(1.2e8)})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Depth != 2 || r2.Epoch <= r1.Epoch {
		t.Fatalf("second update answer %+v", r2)
	}
	// Stale observations are refused.
	if _, err := client.UpdateLinks("g5k_test", UpdateLinksRequest{Time: 1336111400, Updates: bw(1e8)}); err == nil ||
		!strings.Contains(err.Error(), "HTTP 400") {
		t.Fatalf("out-of-order update: err = %v, want HTTP 400", err)
	}

	// Temporal resolution: the degraded past is slower than the restored
	// present, and at=latest is byte-identical to at omitted.
	codeLive, bodyLive := get(predictPath)
	codePast, bodyPast := get(predictPath + "&at=1336111200")
	codeLatest, bodyLatest := get(predictPath + "&at=1336111500")
	if codeLive != 200 || codePast != 200 || codeLatest != 200 {
		t.Fatalf("predict statuses %d/%d/%d", codeLive, codePast, codeLatest)
	}
	if bodyLatest != bodyLive {
		t.Fatalf("at=latest must be byte-identical to the live path:\n%s\nvs\n%s", bodyLatest, bodyLive)
	}
	if bodyPast == bodyLive {
		t.Fatal("the degraded past epoch must answer differently")
	}
	var past, live []Prediction
	mustUnmarshal(t, bodyPast, &past)
	mustUnmarshal(t, bodyLive, &live)
	if past[0].Duration <= live[0].Duration {
		t.Fatalf("past (60 Mbyte/s) must be slower than live (120): %v vs %v", past[0].Duration, live[0].Duration)
	}
	// The datetime form of at is accepted: 2012-05-04 06:02:00 UTC is
	// 1336111320, between the two observations, governed by the first.
	if code, body := get(predictPath + "&at=2012-05-04%2006:02:00"); code != 200 || body != bodyPast {
		t.Fatalf("datetime at: status %d", code)
	}

	// Future within the default 1h horizon; beyond it a 400, not garbage.
	if code, _ := get(predictPath + "&at=1336113000"); code != 200 {
		t.Fatalf("future-within-horizon status %d", code)
	}
	if code, body := get(predictPath + "&at=1336119000"); code != 400 || !strings.Contains(body, "horizon") {
		t.Fatalf("beyond-horizon: status %d body %q", code, body)
	}
	if code, _ := get(predictPath + "&at=yesterdayish"); code != 400 {
		t.Fatalf("malformed at: status %d", code)
	}
	// select_fastest honors at= too.
	if code, _ := get("/pilgrim/select_fastest/g5k_test?hypothesis=sagittaire-1.lyon.grid5000.fr,sagittaire-2.lyon.grid5000.fr,1e8&at=1336111200"); code != 200 {
		t.Fatalf("select_fastest at: status %d", code)
	}
	if code, _ := get("/pilgrim/select_fastest/g5k_test?hypothesis=sagittaire-1.lyon.grid5000.fr,sagittaire-2.lyon.grid5000.fr,1e8&at=1336119000"); code != 400 {
		t.Fatal("select_fastest beyond horizon must 400")
	}

	// timeline_stats: depth, bounds, epoch ids and provenance.
	st, err := client.TimelineStats("g5k_test")
	if err != nil {
		t.Fatal(err)
	}
	if st.Platform != "g5k_test" || st.HorizonMaxSeconds != 3600 {
		t.Fatalf("stats header %+v", st)
	}
	if st.Depth != 2 || st.FirstTime != 1336111200 || st.LastTime != 1336111500 || st.Appends != 2 {
		t.Fatalf("stats accounting %+v", st.TimelineStats)
	}
	if len(st.Entries) != 2 || st.Entries[0].Source != "iperf" || st.Entries[0].Epoch != r1.Epoch ||
		st.Entries[1].Epoch != r2.Epoch || st.Entries[0].Changed != 1 {
		t.Fatalf("stats entries %+v", st.Entries)
	}
	if code, _ := get("/pilgrim/timeline_stats/ghost"); code != 404 {
		t.Fatal("unknown platform timeline_stats must 404")
	}
}

func mustUnmarshal(t *testing.T, body string, v any) {
	t.Helper()
	if err := json.Unmarshal([]byte(body), v); err != nil {
		t.Fatalf("decoding %q: %v", body, err)
	}
}

// TestConcurrentIngestAndForecast is the race test of the satellite
// checklist: observation streams appending to the timeline while readers
// resolve past and future epochs and run forecasts. Run with -race (the
// Makefile race target covers this package).
func TestConcurrentIngestAndForecast(t *testing.T) {
	plat, err := platgen.Generate(g5k.Mini(), platgen.Options{Variant: platgen.G5KTest})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	reg.SetTimelineDepth(16)
	if err := reg.Add("p", PlatformEntry{Platform: plat, Config: sim.DefaultConfig()}); err != nil {
		t.Fatal(err)
	}
	fc := NewForecastCache(32)
	reqs := []TransferRequest{{Src: "sagittaire-1.lyon.grid5000.fr", Dst: "sagittaire-2.lyon.grid5000.fr", Size: 2e8}}

	const iters = 60
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // ingest stream: monotone timestamps through one writer
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := reg.ObserveLinkState("p", int64(1000+i), "race",
				[]platform.LinkUpdate{{Link: testNIC, Bandwidth: 9e7 + float64(i)*1e5, Latency: -1}}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for r := 0; r < 2; r++ {
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				at := int64(990 + (i+r*7)%120) // mixes past, future, pre-history
				e, err := reg.GetAt("p", at)
				if err != nil {
					t.Errorf("GetAt(%d): %v", at, err)
					return
				}
				if i%4 == 0 {
					if _, err := fc.Predict("p", e, reqs, nil); err != nil {
						t.Error(err)
						return
					}
				} else {
					_ = e.Snapshot.LinkBandwidth(0)
				}
				if i%8 == 0 {
					reg.TimelineStats("p")
				}
			}
		}(r)
	}
	wg.Wait()
	if st, _ := reg.TimelineStats("p"); st.Appends != iters || st.Depth != 16 {
		t.Fatalf("post-race stats %+v", st)
	}
}
