package pilgrim

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultForecastWorkers is the worker-pool width NewServer (and the
// package-level SelectFastest) uses: one concurrent hypothesis simulation
// per available CPU.
var DefaultForecastWorkers = runtime.GOMAXPROCS(0)

// WorkerPool bounds the number of hypothesis simulations running
// concurrently. select_fastest requests fan their hypotheses out over the
// pool: each hypothesis is an independent simulation (the engines come
// from the sim package's engine pool, and the platform's route cache is
// read-mostly), so n hypotheses on w workers finish in ~⌈n/w⌉ simulation
// times instead of n. The pool is safe for concurrent use by many
// requests at once; its counters feed /pilgrim/cache_stats.
type WorkerPool struct {
	slots chan struct{}

	busy      atomic.Int64
	maxBusy   atomic.Int64
	queued    atomic.Int64
	evaluated atomic.Uint64
	batches   atomic.Uint64

	// Scenario-evaluation telemetry: evaluate calls fanned over the pool,
	// scenario×query cells requested, distinct cell groups actually run
	// (after overlay/cell dedup), and sub-simulations executed.
	evalCalls atomic.Uint64
	evalCells atomic.Uint64
	evalRuns  atomic.Uint64
	evalSims  atomic.Uint64

	// Differential-evaluation telemetry: derived cells answered by base
	// reuse, by checkpoint-fork replay, by cold fallback, and the
	// constraints the forks re-priced.
	evalForkReused      atomic.Uint64
	evalForkRuns        atomic.Uint64
	evalForkCold        atomic.Uint64
	evalForkConstraints atomic.Uint64
}

// NewWorkerPool returns a pool running up to workers hypothesis
// simulations concurrently. workers <= 0 selects DefaultForecastWorkers;
// 1 gives strictly sequential evaluation.
func NewWorkerPool(workers int) *WorkerPool {
	if workers <= 0 {
		workers = DefaultForecastWorkers
	}
	if workers < 1 {
		workers = 1
	}
	return &WorkerPool{slots: make(chan struct{}, workers)}
}

// Workers returns the pool width.
func (p *WorkerPool) Workers() int { return cap(p.slots) }

func (p *WorkerPool) release() {
	p.busy.Add(-1)
	<-p.slots
}

// WorkerStats is the pool telemetry surfaced by /pilgrim/cache_stats.
type WorkerStats struct {
	// Workers is the configured pool width (-forecast-workers).
	Workers int `json:"workers"`
	// Busy and Queued are instantaneous: batch workers running right now
	// and workers waiting for a free slot (each worker drains many items).
	Busy   int64 `json:"busy"`
	Queued int64 `json:"queued"`
	// MaxBusy is the high-water mark of concurrently running workers.
	MaxBusy int64 `json:"max_busy"`
	// Hypotheses counts hypothesis simulations completed through the
	// pool; Batches counts the select_fastest calls that spawned them.
	Hypotheses uint64 `json:"hypotheses_evaluated"`
	Batches    uint64 `json:"select_fastest_calls"`
	// EvaluateCalls counts evaluate batches fanned over the pool;
	// EvaluateCells the scenario×query cells they requested;
	// EvaluateGroupRuns the distinct per-snapshot groups actually run
	// after dedup; EvaluateSims the sub-simulations those groups executed
	// (cache hits and deduplicated cells pay none).
	EvaluateCalls     uint64 `json:"evaluate_calls"`
	EvaluateCells     uint64 `json:"evaluate_cells"`
	EvaluateGroupRuns uint64 `json:"evaluate_group_runs"`
	EvaluateSims      uint64 `json:"evaluate_simulations"`
	// Differential-evaluation totals: derived cells answered by provable
	// base-answer reuse (no simulation), by checkpoint-fork replay, by
	// cold fallback, and the bandwidth constraints the forks re-priced.
	EvaluateForkReused      uint64 `json:"evaluate_fork_reused"`
	EvaluateForkRuns        uint64 `json:"evaluate_fork_runs"`
	EvaluateForkCold        uint64 `json:"evaluate_fork_cold"`
	EvaluateForkConstraints uint64 `json:"evaluate_fork_resolved_constraints"`
}

// Stats returns a snapshot of the pool counters.
func (p *WorkerPool) Stats() WorkerStats {
	return WorkerStats{
		Workers:           p.Workers(),
		Busy:              p.busy.Load(),
		Queued:            p.queued.Load(),
		MaxBusy:           p.maxBusy.Load(),
		Hypotheses:        p.evaluated.Load(),
		Batches:           p.batches.Load(),
		EvaluateCalls:           p.evalCalls.Load(),
		EvaluateCells:           p.evalCells.Load(),
		EvaluateGroupRuns:       p.evalRuns.Load(),
		EvaluateSims:            p.evalSims.Load(),
		EvaluateForkReused:      p.evalForkReused.Load(),
		EvaluateForkRuns:        p.evalForkRuns.Load(),
		EvaluateForkCold:        p.evalForkCold.Load(),
		EvaluateForkConstraints: p.evalForkConstraints.Load(),
	}
}

// Run executes fn(0..n-1) over the pool and blocks until all calls
// return. Each batch worker occupies one pool slot, so Run composes with
// concurrent select_fastest and evaluate traffic under the same width
// bound.
func (p *WorkerPool) Run(n int, fn func(int)) {
	p.RunCtx(context.Background(), n, fn)
}

// RunCtx is Run with a cancellation point at slot acquisition and between
// items: once ctx is done, items not yet started are skipped (running
// ones finish — a simulation is not interruptible mid-run) and the
// context error is returned. Under a loaded pool this bounds how long a
// deadline-carrying request can wait behind other traffic.
//
// The batch runs on min(pool width, GOMAXPROCS, n) workers, each holding
// one slot and pulling the next index from a shared counter. With one
// worker — always the case on a single-CPU host — the whole batch runs
// inline on the caller under a single slot acquisition: per-item
// goroutine dispatch costs more than a small simulation when there is no
// parallelism to buy. Extra workers beyond GOMAXPROCS would only add
// scheduling overhead for these CPU-bound items, so they are never
// spawned.
func (p *WorkerPool) RunCtx(ctx context.Context, n int, fn func(int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	width := cap(p.slots)
	if w := runtime.GOMAXPROCS(0); w < width {
		width = w
	}
	if n < width {
		width = n
	}
	if width <= 1 {
		if !p.acquireCtx(ctx) {
			return ctx.Err()
		}
		defer p.release()
		for i := 0; i < n && ctx.Err() == nil; i++ {
			fn(i)
		}
		return ctx.Err()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	worker := func() {
		defer wg.Done()
		if !p.acquireCtx(ctx) {
			return
		}
		defer p.release()
		for ctx.Err() == nil {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	wg.Add(width)
	for w := 1; w < width; w++ {
		go worker()
	}
	worker()
	wg.Wait()
	return ctx.Err()
}

// acquireCtx takes a pool slot unless ctx is done first.
func (p *WorkerPool) acquireCtx(ctx context.Context) bool {
	p.queued.Add(1)
	defer p.queued.Add(-1)
	select {
	case p.slots <- struct{}{}:
	case <-ctx.Done():
		return false
	}
	b := p.busy.Add(1)
	for {
		m := p.maxBusy.Load()
		if b <= m || p.maxBusy.CompareAndSwap(m, b) {
			return true
		}
	}
}

// selectFastest ranks hypotheses under any prediction backend, evaluating
// them concurrently over the pool. Results are deterministic and identical
// to a sequential evaluation: results keep request order, the winner is
// the lowest-index hypothesis with the smallest makespan, and on failure
// the lowest failing index's error is returned.
func (p *WorkerPool) selectFastest(hyps []Hypothesis, predict func([]TransferRequest) ([]Prediction, error)) (best int, results []HypothesisResult, err error) {
	return p.selectFastestCtx(context.Background(), hyps, predict)
}

// selectFastestCtx is selectFastest with the pool fan-out bounded by ctx:
// hypotheses not yet running when ctx expires are skipped and the context
// error is returned.
func (p *WorkerPool) selectFastestCtx(ctx context.Context, hyps []Hypothesis, predict func([]TransferRequest) ([]Prediction, error)) (best int, results []HypothesisResult, err error) {
	if len(hyps) == 0 {
		return 0, nil, fmt.Errorf("pilgrim: no hypotheses")
	}
	p.batches.Add(1)
	results = make([]HypothesisResult, len(hyps))
	errs := make([]error, len(hyps))
	ctxErr := p.RunCtx(ctx, len(hyps), func(i int) {
		preds, err := predict(hyps[i].Transfers)
		if err != nil {
			errs[i] = err
			return
		}
		p.evaluated.Add(1)
		makespan := 0.0
		for _, pr := range preds {
			if pr.Duration > makespan {
				makespan = pr.Duration
			}
		}
		results[i] = HypothesisResult{Index: i, Makespan: makespan, Predictions: preds}
	})
	if ctxErr != nil {
		return 0, nil, ctxErr
	}
	for i, e := range errs {
		if e != nil {
			return 0, nil, fmt.Errorf("pilgrim: hypothesis %d: %w", i, e)
		}
	}
	best = 0
	for i := 1; i < len(results); i++ {
		if results[i].Makespan < results[best].Makespan {
			best = i
		}
	}
	return best, results, nil
}

// SelectFastest simulates each hypothesis on the pool directly (no
// forecast cache) and returns all results plus the winning index.
func (p *WorkerPool) SelectFastest(entry PlatformEntry, hyps []Hypothesis) (best int, results []HypothesisResult, err error) {
	return p.selectFastest(hyps, func(transfers []TransferRequest) ([]Prediction, error) {
		return PredictTransfers(entry, transfers, nil)
	})
}

// SelectFastestCached is SelectFastest routed through a forecast cache:
// each hypothesis is one cacheable prediction, so a scheduler polling the
// same alternatives repeatedly pays for each simulation once — and the
// misses simulate concurrently.
func (p *WorkerPool) SelectFastestCached(fc *ForecastCache, platform string, entry PlatformEntry, hyps []Hypothesis) (best int, results []HypothesisResult, err error) {
	return p.SelectFastestCachedCtx(context.Background(), fc, platform, entry, hyps)
}

// SelectFastestCachedCtx is SelectFastestCached under a request context:
// the HTTP deadline path, answering 504 upstream when ctx expires before
// every hypothesis got a worker.
func (p *WorkerPool) SelectFastestCachedCtx(ctx context.Context, fc *ForecastCache, platform string, entry PlatformEntry, hyps []Hypothesis) (best int, results []HypothesisResult, err error) {
	return p.selectFastestCtx(ctx, hyps, func(transfers []TransferRequest) ([]Prediction, error) {
		return fc.PredictCtx(ctx, platform, entry, transfers, nil)
	})
}

// defaultPool serves the package-level SelectFastest entry points.
var defaultPool = sync.OnceValue(func() *WorkerPool { return NewWorkerPool(0) })
