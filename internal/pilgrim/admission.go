package pilgrim

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// ErrShed is returned by Admission.Acquire when both the in-flight bound
// and the wait queue are full: the server answers 429 with a Retry-After
// hint instead of letting latency collapse under overload.
var ErrShed = errors.New("pilgrim: server over capacity")

// DefaultRetryAfter is the Retry-After hint shed responses carry.
const DefaultRetryAfter = time.Second

// Admission bounds the simulation endpoints' concurrency: at most
// maxInflight requests simulate at once, at most maxQueue more wait for
// a slot, and everything beyond that is shed immediately. Bounding the
// queue is the point — an unbounded queue converts overload into
// unbounded latency; a bounded one converts it into fast 429s the
// client's backoff absorbs.
type Admission struct {
	slots      chan struct{}
	maxQueue   int64
	retryAfter time.Duration

	waiting  atomic.Int64
	inflight atomic.Int64
	admitted atomic.Uint64
	shed     atomic.Uint64
	expired  atomic.Uint64
}

// NewAdmission returns a controller admitting maxInflight concurrent
// requests with a wait queue of maxQueue (maxInflight <= 0 returns nil:
// admission disabled, every request proceeds; maxQueue < 0 means an
// unbounded queue).
func NewAdmission(maxInflight, maxQueue int, retryAfter time.Duration) *Admission {
	if maxInflight <= 0 {
		return nil
	}
	if retryAfter <= 0 {
		retryAfter = DefaultRetryAfter
	}
	return &Admission{
		slots:      make(chan struct{}, maxInflight),
		maxQueue:   int64(maxQueue),
		retryAfter: retryAfter,
	}
}

// Acquire admits the request or rejects it: ErrShed when the queue is
// full (answer 429), ctx.Err() when the request's deadline expires while
// queued (answer 504). On success the caller must call the returned
// release exactly once. A nil Admission admits everything.
func (a *Admission) Acquire(ctx context.Context) (release func(), err error) {
	if a == nil {
		return func() {}, nil
	}
	select {
	case a.slots <- struct{}{}:
	default:
		if w := a.waiting.Add(1); a.maxQueue >= 0 && w > a.maxQueue {
			a.waiting.Add(-1)
			a.shed.Add(1)
			return nil, ErrShed
		}
		select {
		case a.slots <- struct{}{}:
			a.waiting.Add(-1)
		case <-ctx.Done():
			a.waiting.Add(-1)
			a.expired.Add(1)
			return nil, ctx.Err()
		}
	}
	a.admitted.Add(1)
	a.inflight.Add(1)
	return func() {
		a.inflight.Add(-1)
		<-a.slots
	}, nil
}

// RetryAfter is the backoff hint shed responses should carry.
func (a *Admission) RetryAfter() time.Duration {
	if a == nil {
		return DefaultRetryAfter
	}
	return a.retryAfter
}

// AdmissionStats is the controller accounting surfaced by cache_stats.
type AdmissionStats struct {
	// Enabled is false when no admission bound is configured (every
	// request proceeds; the remaining fields are zero).
	Enabled bool `json:"enabled"`
	// MaxInflight/MaxQueue are the configured bounds (MaxQueue -1 =
	// unbounded queue).
	MaxInflight int `json:"max_inflight,omitempty"`
	MaxQueue    int `json:"max_queue,omitempty"`
	// Inflight/Waiting are instantaneous.
	Inflight int64 `json:"inflight"`
	Waiting  int64 `json:"waiting"`
	// Admitted counts requests that got a slot; Shed those answered 429;
	// Expired those whose deadline passed while queued (504).
	Admitted uint64 `json:"admitted"`
	Shed     uint64 `json:"shed"`
	Expired  uint64 `json:"expired"`
}

// Stats returns a snapshot of the controller counters.
func (a *Admission) Stats() AdmissionStats {
	if a == nil {
		return AdmissionStats{}
	}
	return AdmissionStats{
		Enabled:     true,
		MaxInflight: cap(a.slots),
		MaxQueue:    int(a.maxQueue),
		Inflight:    a.inflight.Load(),
		Waiting:     a.waiting.Load(),
		Admitted:    a.admitted.Load(),
		Shed:        a.shed.Load(),
		Expired:     a.expired.Load(),
	}
}
