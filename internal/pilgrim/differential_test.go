package pilgrim

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"pilgrim/internal/scenario"
)

// TestEvaluateDifferentialMatchesCold is the evaluate-level bit-identity
// property test of the warm-start tentpole: for random scenario batches —
// bandwidth scales, latency sets, link and host failures, background
// traffic, baselines — over random transfer and hypothesis workloads, a
// differential evaluator (base-run reuse + checkpoint forks, the default)
// must produce responses that marshal byte-identically to a cold
// evaluator's (DisableDifferential, separate caches). Float64 JSON
// round-trips exactly, so byte equality is bit equality of every
// prediction.
func TestEvaluateDifferentialMatchesCold(t *testing.T) {
	base := newEvaluator(t)
	entry, ok := base.Platforms.Get("p")
	if !ok {
		t.Fatal("platform p missing")
	}
	var hosts []string
	for _, h := range entry.Platform.Hosts() {
		hosts = append(hosts, h.ID)
	}
	var links []string
	for _, l := range entry.Platform.Links() {
		links = append(links, l.ID)
	}
	if len(hosts) < 3 || len(links) == 0 {
		t.Fatalf("platform too small: %d hosts, %d links", len(hosts), len(links))
	}

	var totals EvaluateStats
	for seed := int64(1); seed <= 42; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pair := func() (string, string) {
			a := rng.Intn(len(hosts))
			b := rng.Intn(len(hosts) - 1)
			if b >= a {
				b++
			}
			return hosts[a], hosts[b]
		}
		transfers := func() []TransferRequest {
			out := make([]TransferRequest, 1+rng.Intn(4))
			for i := range out {
				src, dst := pair()
				out[i] = TransferRequest{Src: src, Dst: dst, Size: 1e6 + rng.Float64()*1e9}
			}
			return out
		}
		var req EvaluateRequest
		for si := 0; si < 1+rng.Intn(5); si++ {
			sc := scenario.Scenario{Name: "s"}
			for mi := 0; mi < rng.Intn(4); mi++ {
				link := links[rng.Intn(len(links))]
				switch rng.Intn(5) {
				case 0:
					sc.Mutations = append(sc.Mutations, scenario.Mutation{
						Op: scenario.OpScaleLink, Link: link, BandwidthFactor: 0.2 + rng.Float64()})
				case 1:
					sc.Mutations = append(sc.Mutations, scenario.Mutation{
						Op: scenario.OpSetLink, Link: link, Latency: fptr(rng.Float64() * 1e-2)})
				case 2:
					sc.Mutations = append(sc.Mutations, scenario.Mutation{
						Op: scenario.OpFailLink, Link: link})
				case 3:
					sc.Mutations = append(sc.Mutations, scenario.Mutation{
						Op: scenario.OpFailHost, Host: hosts[rng.Intn(len(hosts))]})
				case 4:
					src, dst := pair()
					sc.Mutations = append(sc.Mutations, scenario.Mutation{
						Op: scenario.OpBgTraffic, Src: src, Dst: dst, Flows: 1 + rng.Intn(2)})
				}
			}
			req.Scenarios = append(req.Scenarios, sc)
		}
		for qi := 0; qi < 1+rng.Intn(3); qi++ {
			q := EvalQuery{Kind: QueryPredictTransfers, Transfers: transfers()}
			if rng.Intn(3) == 0 {
				hyps := make([]Hypothesis, 2+rng.Intn(2))
				for hi := range hyps {
					hyps[hi] = Hypothesis{Transfers: transfers()}
				}
				q = EvalQuery{Kind: QuerySelectFastest, Hypotheses: hyps}
			}
			if rng.Intn(4) == 0 {
				src, dst := pair()
				q.Background = [][2]string{{src, dst}}
			}
			req.Queries = append(req.Queries, q)
		}

		// Fresh evaluator pair per seed: no cross-seed cache warmth, and
		// the cold side must never observe the differential side's entries.
		diff := &Evaluator{Platforms: base.Platforms, Cache: NewForecastCache(256),
			Pool: NewWorkerPool(0), Overlays: NewOverlayCache(64)}
		cold := &Evaluator{Platforms: base.Platforms, Cache: NewForecastCache(256),
			Pool: NewWorkerPool(0), Overlays: NewOverlayCache(64), DisableDifferential: true}
		respD, errD := diff.Evaluate("p", req)
		respC, errC := cold.Evaluate("p", req)
		if (errD != nil) != (errC != nil) {
			t.Fatalf("seed %d: differential err %v, cold err %v", seed, errD, errC)
		}
		if errD != nil {
			continue
		}
		// Epoch ids come from a process-global allocation counter, so the
		// two evaluators may number the same derived pictures differently;
		// provenance strings identify the pictures content-wise instead.
		for i := range respD.Scenarios {
			respD.Scenarios[i].Epoch = 0
			respC.Scenarios[i].Epoch = 0
		}
		gotD, err := json.Marshal(respD.Scenarios)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		gotC, err := json.Marshal(respC.Scenarios)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !bytes.Equal(gotD, gotC) {
			t.Fatalf("seed %d: differential response differs from cold:\n%s\n---\n%s", seed, gotD, gotC)
		}
		totals.ForkReused += respD.Stats.ForkReused
		totals.ForkRuns += respD.Stats.ForkRuns
		totals.ForkCold += respD.Stats.ForkCold
		totals.ForkResolvedConstraints += respD.Stats.ForkResolvedConstraints
	}
	// The sweep must exercise reuse, fork, and cold fallback, or the test
	// proves less than it claims.
	if totals.ForkReused == 0 || totals.ForkRuns == 0 || totals.ForkCold == 0 {
		t.Fatalf("strategy coverage hole: %+v", totals)
	}
	if totals.ForkResolvedConstraints == 0 {
		t.Fatalf("forks re-priced no constraints: %+v", totals)
	}
}
