package pilgrim

import (
	"context"
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

// TestServeListenerDrains cancels the serve context while a request is
// in flight and checks the drain semantics: the in-flight request
// finishes with its full answer, Serve returns nil (clean drain), and
// new connections are refused afterward.
func TestServeListenerDrains(t *testing.T) {
	started := make(chan struct{})
	unblock := make(chan struct{})
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-unblock
		io.WriteString(w, "drained ok")
	})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() {
		serveDone <- ServeListener(ctx, l, handler, ServeOptions{DrainTimeout: 5 * time.Second})
	}()

	reqDone := make(chan string, 1)
	go func() {
		resp, err := http.Get("http://" + addr + "/")
		if err != nil {
			reqDone <- "error: " + err.Error()
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		reqDone <- string(body)
	}()

	<-started
	cancel() // SIGTERM equivalent: drain begins with the request in flight
	// Shutdown has closed the listener (possibly after a beat); poll until
	// new connections are refused.
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr, 100*time.Millisecond)
		if err != nil {
			break
		}
		conn.Close()
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting long after shutdown began")
		}
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case err := <-serveDone:
		t.Fatalf("serve returned %v before the in-flight request finished", err)
	default:
	}

	close(unblock)
	if got := <-reqDone; got != "drained ok" {
		t.Fatalf("in-flight request got %q, want full answer", got)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("clean drain returned %v", err)
	}
}

// TestServeListenerDrainTimeout checks a request outliving the grace
// period causes Serve to report the shutdown error instead of hanging.
func TestServeListenerDrainTimeout(t *testing.T) {
	unblock := make(chan struct{})
	defer close(unblock)
	started := make(chan struct{})
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(started)
		select {
		case <-unblock:
		case <-r.Context().Done():
		}
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() {
		serveDone <- ServeListener(ctx, l, handler, ServeOptions{DrainTimeout: 50 * time.Millisecond})
	}()
	go http.Get("http://" + l.Addr().String() + "/")
	<-started
	cancel()
	select {
	case err := <-serveDone:
		if err == nil {
			t.Fatal("expired drain reported a clean shutdown")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not return after the drain deadline")
	}
}
