package pilgrim

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pilgrim/internal/g5k"
	"pilgrim/internal/platgen"
	"pilgrim/internal/sim"
)

// newRobustnessServer builds a server exposing its *Server handle so
// tests can reach the admission controller and saturate it
// deterministically.
func newRobustnessServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	plat, err := platgen.Generate(g5k.Mini(), platgen.Options{Variant: platgen.G5KTest})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if err := reg.Add("g5k_test", PlatformEntry{Platform: plat, Config: sim.DefaultConfig()}); err != nil {
		t.Fatal(err)
	}
	s := NewServer(reg, nil)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return s, srv
}

const predictPath = "/pilgrim/predict_transfers/g5k_test?transfer=" +
	"sagittaire-1.lyon.grid5000.fr,sagittaire-2.lyon.grid5000.fr,1e8"

// TestAdmissionShed429 saturates a width-1, queue-0 admission controller
// and checks the next request is shed with 429, a Retry-After header, and
// the structured body — then succeeds once the slot frees up.
func TestAdmissionShed429(t *testing.T) {
	s, srv := newRobustnessServer(t)
	s.SetAdmission(1, 0, 2*time.Second)

	// Occupy the single slot out-of-band so the HTTP request finds the
	// controller full.
	release, err := s.admission.Load().Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + predictPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After %q, want \"2\"", got)
	}
	var body OverCapacityError
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.RetryAfterSeconds != 2 || body.Error == "" {
		t.Fatalf("shed body %+v", body)
	}

	release()
	resp2, err := http.Get(srv.URL + predictPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-release status %d, want 200", resp2.StatusCode)
	}
	if st := s.admission.Load().Stats(); st.Shed != 1 || st.Admitted != 2 {
		t.Fatalf("admission stats %+v, want 1 shed / 2 admitted", st)
	}
}

// TestDeadlineExpiredWhileQueued parks a deadline-carrying request in the
// admission queue behind a held slot and checks it answers 504.
func TestDeadlineExpiredWhileQueued(t *testing.T) {
	s, srv := newRobustnessServer(t)
	s.SetAdmission(1, 1, time.Second)

	release, err := s.admission.Load().Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	resp, err := http.Get(srv.URL + predictPath + "&deadline=0.05")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if st := s.admission.Load().Stats(); st.Expired != 1 {
		t.Fatalf("admission stats %+v, want 1 expired", st)
	}
}

// TestDeadlineParam checks the deadline query parameter: malformed values
// answer 400, a generous deadline lets the request through, and an
// already-expired one answers 504 before any simulation starts.
func TestDeadlineParam(t *testing.T) {
	_, srv := newRobustnessServer(t)
	for _, bad := range []string{"abc", "-1", "0", "NaN", "+Inf"} {
		resp, err := http.Get(srv.URL + predictPath + "&deadline=" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("deadline=%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + predictPath + "&deadline=30")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deadline=30: status %d, want 200", resp.StatusCode)
	}
	// A nanosecond deadline expires during admit(); the handler's
	// pre-simulation check turns it into 504 rather than burning a sim.
	resp, err = http.Get(srv.URL + predictPath + "&deadline=0.000000001")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline: status %d, want 504", resp.StatusCode)
	}
}

// TestBodyTooLarge413 checks the mutating endpoints reject oversized
// bodies with the structured 413.
func TestBodyTooLarge413(t *testing.T) {
	s, srv := newRobustnessServer(t)
	s.SetMaxBodyBytes(128)

	big := fmt.Sprintf(`{"source": %q, "updates": [{"link": "x", "bandwidth": 1}]}`,
		strings.Repeat("a", 4096))
	for _, path := range []string{
		"/pilgrim/update_links/g5k_test",
		"/pilgrim/evaluate/g5k_test",
		"/pilgrim/predict_workflow/g5k_test",
	} {
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(big))
		if err != nil {
			t.Fatal(err)
		}
		var body BodyTooLargeError
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s: status %d, want 413", path, resp.StatusCode)
		}
		if err != nil || body.MaxBodyBytes != 128 {
			t.Fatalf("%s: 413 body %+v (err %v)", path, body, err)
		}
	}

	// A small body on the same endpoint still works.
	ok := `{"updates": [{"link": "` + testNIC + `", "bandwidth": 1.1e8}]}`
	resp, err := http.Post(srv.URL+"/pilgrim/update_links/g5k_test", "application/json", strings.NewReader(ok))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small body: status %d, want 200", resp.StatusCode)
	}
}

// TestCacheStatsReportsAdmission checks the admission accounting is
// surfaced through cache_stats.
func TestCacheStatsReportsAdmission(t *testing.T) {
	s, srv := newRobustnessServer(t)
	s.SetAdmission(4, 16, time.Second)
	resp, err := http.Get(srv.URL + "/pilgrim/cache_stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Admission AdmissionStats `json:"admission"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if !stats.Admission.Enabled || stats.Admission.MaxInflight != 4 || stats.Admission.MaxQueue != 16 {
		t.Fatalf("cache_stats admission %+v", stats.Admission)
	}
}

// TestEvaluateHonorsDeadline checks an evaluate batch with an expired
// deadline answers 504 instead of a partial grid.
func TestEvaluateHonorsDeadline(t *testing.T) {
	_, srv := newRobustnessServer(t)
	body := `{"scenarios": [{"name": "base"}],
	 "queries": [{"kind": "predict_transfers",
	  "transfers": [{"src": "sagittaire-1.lyon.grid5000.fr", "dst": "sagittaire-2.lyon.grid5000.fr", "size": 1e8}]}]}`
	resp, err := http.Post(srv.URL+"/pilgrim/evaluate/g5k_test?deadline=0.000000001",
		"application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
}
