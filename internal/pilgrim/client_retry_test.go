package pilgrim

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// scriptedServer answers each request with the next status in script
// (the final entry repeats), recording the attempt count.
func scriptedServer(t *testing.T, script []int, body string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(calls.Add(1)) - 1
		if n >= len(script) {
			n = len(script) - 1
		}
		status := script[n]
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "0")
		}
		w.WriteHeader(status)
		if status == http.StatusOK {
			w.Write([]byte(body))
		}
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

// fastRetry keeps test backoffs in the microsecond range.
var fastRetry = RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond}

// TestClientRetriesShedding checks a 429/503-then-200 sequence succeeds
// transparently: the backoff absorbs the transient answers.
func TestClientRetriesShedding(t *testing.T) {
	srv, calls := scriptedServer(t, []int{429, 503, 200}, `["g5k_test"]`)
	c := NewClient(srv.URL)
	c.Retry = fastRetry
	names, err := c.Platforms()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "g5k_test" {
		t.Fatalf("platforms %v", names)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("%d attempts, want 3", got)
	}
}

// TestClientGivesUpAfterMaxAttempts checks a persistently overloaded
// server exhausts the budget and surfaces the last HTTP error.
func TestClientGivesUpAfterMaxAttempts(t *testing.T) {
	srv, calls := scriptedServer(t, []int{429}, "")
	c := NewClient(srv.URL)
	c.Retry = fastRetry
	_, err := c.Platforms()
	if err == nil || !strings.Contains(err.Error(), "HTTP 429") {
		t.Fatalf("err = %v, want HTTP 429", err)
	}
	if got := calls.Load(); got != 4 {
		t.Fatalf("%d attempts, want 4 (MaxAttempts)", got)
	}
}

// TestClientDoesNotRetryPermanentErrors checks 4xx request-shape answers
// return immediately: retrying a 400 cannot help.
func TestClientDoesNotRetryPermanentErrors(t *testing.T) {
	srv, calls := scriptedServer(t, []int{400}, "")
	c := NewClient(srv.URL)
	c.Retry = fastRetry
	if _, err := c.Platforms(); err == nil {
		t.Fatal("400 answered nil error")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("%d attempts on a 400, want 1", got)
	}
}

// TestClientRetriesPostWithBody checks the request body is replayed on
// each attempt — the shed-then-succeed path for mutating calls.
func TestClientRetriesPostWithBody(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req UpdateLinksRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.Updates) != 1 {
			t.Errorf("attempt %d: body not replayed: %v %+v", calls.Load(), err, req)
		}
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		json.NewEncoder(w).Encode(UpdateLinksResponse{Platform: "p", Epoch: 7, Updated: 1})
	}))
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL)
	c.Retry = fastRetry
	bw := 1.0e8
	resp, err := c.UpdateLinks("p", UpdateLinksRequest{
		Updates: []LinkObservation{{Link: "l", Bandwidth: &bw}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Epoch != 7 || calls.Load() != 2 {
		t.Fatalf("epoch %d after %d attempts, want 7 after 2", resp.Epoch, calls.Load())
	}
}

// TestClientRetriesConnectionErrors points the client at a closed port
// and checks every attempt is spent before the transport error surfaces.
func TestClientRetriesConnectionErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := srv.URL
	srv.Close() // nothing listens here anymore
	c := NewClient(url)
	c.Retry = RetryPolicy{MaxAttempts: 2, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond}
	if _, err := c.Platforms(); err == nil {
		t.Fatal("closed port answered nil error")
	}
}

// TestClientBackoffAgainstLiveAdmission drives a width-1 zero-queue
// server from several goroutines: some requests are shed with 429, and
// every client call still succeeds because the backoff absorbs them.
func TestClientBackoffAgainstLiveAdmission(t *testing.T) {
	s, srv := newRobustnessServer(t)
	s.SetAdmission(1, 0, time.Second)
	c := NewClient(srv.URL)
	c.Retry = RetryPolicy{MaxAttempts: 20, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond}
	transfers := []TransferRequest{{Src: "sagittaire-1.lyon.grid5000.fr", Dst: "sagittaire-2.lyon.grid5000.fr", Size: 1e8}}
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			_, err := c.PredictTransfers("g5k_test", transfers)
			errs <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestRetryPolicyBackoffDelay pins the jitter window: delays stay inside
// [d/2, d] for the exponential schedule and honor a larger Retry-After.
func TestRetryPolicyBackoffDelay(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}
	for attempt, want := range map[int]time.Duration{1: 100 * time.Millisecond, 2: 200 * time.Millisecond, 5: time.Second, 30: time.Second} {
		for i := 0; i < 50; i++ {
			d := p.backoffDelay(attempt, 0)
			if d < want/2 || d > want {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, want/2, want)
			}
		}
	}
	if d := p.backoffDelay(1, 3*time.Second); d < 1500*time.Millisecond || d > 3*time.Second {
		t.Fatalf("Retry-After ignored: %v", d)
	}
}
