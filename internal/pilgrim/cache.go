package pilgrim

import (
	"container/list"
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"pilgrim/internal/sim"
)

// ForecastCache memoizes PNFS predictions behind a bounded LRU. A
// prediction is a pure function of (platform epoch, transfer multiset,
// background-flow multiset): transfers all depart at simulated time 0, so
// two requests that differ only in parameter order are the same
// simulation. The cache canonicalizes requests before keying, runs the
// simulation in canonical order on a miss, and permutes cached answers
// back to request order on a hit — repeated scheduler queries (the
// paper's RMS polling pattern) skip simulation entirely.
type ForecastCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element
	lru      *list.List // front = most recently used
	// flights is the in-flight coalescing table (flight.go): one entry
	// per canonical key currently being simulated, so concurrent
	// identical requests share one computation instead of racing to
	// fill the LRU. Active even when capacity <= 0 disables the LRU.
	flights   map[string]*flightCall
	hits      uint64
	misses    uint64
	coalesced uint64
}

// cacheEntry is one memoized answer, predictions in canonical order. The
// key embeds the snapshot epoch the answer was simulated against; epochs
// are process-unique and never reused, so an entry can neither alias nor
// outlive the network picture that produced it — no pointers need
// pinning.
type cacheEntry struct {
	key   string
	preds []Prediction
}

// NewForecastCache returns a cache holding up to capacity distinct
// queries. A capacity <= 0 disables caching: every Predict simulates and
// counts as a miss.
func NewForecastCache(capacity int) *ForecastCache {
	return &ForecastCache{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
		flights:  make(map[string]*flightCall),
	}
}

// CacheStats is the hit/miss accounting surfaced by the server.
// CoalescedHits counts requests answered by waiting on another
// request's in-flight simulation — neither an LRU hit nor a paid miss.
type CacheStats struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	CoalescedHits uint64 `json:"coalesced_hits"`
	Size          int    `json:"size"`
	Capacity      int    `json:"capacity"`
}

// Stats returns a snapshot of the cache counters.
func (fc *ForecastCache) Stats() CacheStats {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return CacheStats{Hits: fc.hits, Misses: fc.misses, CoalescedHits: fc.coalesced, Size: fc.lru.Len(), Capacity: fc.capacity}
}

// canonicalize returns the indices of transfers sorted by (Src, Dst,
// Size) — the canonical simulation order.
func canonicalize(transfers []TransferRequest) []int {
	order := make([]int, len(transfers))
	for i := range order {
		order[i] = i
	}
	less := func(a, b int) bool {
		ta, tb := transfers[a], transfers[b]
		if ta.Src != tb.Src {
			return ta.Src < tb.Src
		}
		if ta.Dst != tb.Dst {
			return ta.Dst < tb.Dst
		}
		return ta.Size < tb.Size
	}
	if len(order) > 64 {
		sort.SliceStable(order, func(a, b int) bool { return less(order[a], order[b]) })
		return order
	}
	// Insertion sort for request-sized inputs: stable by construction and
	// allocation-free, where sort.SliceStable pays a reflect-based swapper
	// on every call of the QPS path.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && less(order[j], order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}

// The canonical lookup key has three parts: an entry prefix (platform
// name, snapshot epoch, model config), the transfer multiset in canonical
// order with sizes keyed by exact bit pattern, and the sorted background
// multiset. Epochs are globally unique per network picture, so a
// link-state update (or a platform rebuild) naturally retires every
// cached answer computed against the old state, and two entries
// registered under the same name with different model configurations
// never share answers. The split lets the evaluate layer canonicalize a
// query once and re-key it per scenario epoch with one concatenation.

// prefixMemoKey identifies one cacheKeyPrefix result. sim.Config is all
// scalars, so the struct is comparable and map-keyable without boxing.
type prefixMemoKey struct {
	platform string
	epoch    uint64
	config   sim.Config
}

// prefixMemo caches cacheKeyPrefix renderings: the prefix is pure in
// (platform, epoch, config), and its "%+v" formatting reflects over the
// config struct — around ten allocations that would otherwise be paid
// per request on the QPS path. Bounded by wholesale reset; entries are
// tiny and epochs retire as platforms observe new link state.
var prefixMemo struct {
	sync.RWMutex
	m map[prefixMemoKey]string
}

const prefixMemoCap = 1024

// cacheKeyPrefix keys the (platform, epoch, config) the answer is valid
// for.
func cacheKeyPrefix(platform string, entry PlatformEntry) string {
	k := prefixMemoKey{platform: platform, epoch: entry.snapshot().Epoch(), config: entry.Config}
	prefixMemo.RLock()
	p, ok := prefixMemo.m[k]
	prefixMemo.RUnlock()
	if ok {
		return p
	}
	p = fmt.Sprintf("%s\x1c%d\x1c%+v", k.platform, k.epoch, k.config)
	prefixMemo.Lock()
	if prefixMemo.m == nil || len(prefixMemo.m) >= prefixMemoCap {
		prefixMemo.m = make(map[prefixMemoKey]string)
	}
	prefixMemo.m[k] = p
	prefixMemo.Unlock()
	return p
}

// transfersKey keys the transfer multiset (in the canonical order given).
func transfersKey(transfers []TransferRequest, order []int) string {
	var b strings.Builder
	for _, i := range order {
		t := transfers[i]
		b.WriteByte(0x1e)
		b.WriteString(t.Src)
		b.WriteByte(0x1f)
		b.WriteString(t.Dst)
		b.WriteByte(0x1f)
		b.WriteString(strconv.FormatUint(math.Float64bits(t.Size), 16))
	}
	return b.String()
}

// backgroundKey keys a background multiset already in canonical (sorted)
// order.
func backgroundKey(background [][2]string) string {
	if len(background) == 0 {
		return ""
	}
	var b strings.Builder
	for _, p := range background {
		b.WriteByte(0x1d)
		b.WriteString(p[0])
		b.WriteByte(0x1f)
		b.WriteString(p[1])
	}
	return b.String()
}

// keyScratch pools cacheKey build buffers: the key is assembled
// append-style into a reused buffer and materialized with one final
// string allocation, instead of one allocation per size fragment plus
// builder growth (this runs once per predict/select hypothesis — the
// QPS path).
var keyScratch = sync.Pool{
	New: func() any { b := make([]byte, 0, 512); return &b },
}

// cacheKey builds the full canonical lookup key; background must already
// be in canonical order.
func cacheKey(platform string, entry PlatformEntry, transfers []TransferRequest, order []int, background [][2]string) string {
	bp := keyScratch.Get().(*[]byte)
	b := (*bp)[:0]
	b = append(b, cacheKeyPrefix(platform, entry)...)
	for _, i := range order {
		t := transfers[i]
		b = append(b, 0x1e)
		b = append(b, t.Src...)
		b = append(b, 0x1f)
		b = append(b, t.Dst...)
		b = append(b, 0x1f)
		b = strconv.AppendUint(b, math.Float64bits(t.Size), 16)
	}
	for _, p := range background {
		b = append(b, 0x1d)
		b = append(b, p[0]...)
		b = append(b, 0x1f)
		b = append(b, p[1]...)
	}
	key := string(b)
	*bp = b
	keyScratch.Put(bp)
	return key
}

// canonicalBackground returns the background multiset in canonical
// (sorted) order. Background flows are part of the canonical workload:
// simulating them in sorted order means the answer for a logical workload
// does not depend on which bg parameter ordering happened to arrive
// first.
func canonicalBackground(background [][2]string) [][2]string {
	if len(background) > 1 {
		background = append([][2]string(nil), background...)
		sort.Slice(background, func(i, j int) bool {
			if background[i][0] != background[j][0] {
				return background[i][0] < background[j][0]
			}
			return background[i][1] < background[j][1]
		})
	}
	return background
}

// canonicalQuery is one prediction workload in canonical form: the cache
// key, the transfers in canonical simulation order, the sorted background
// flows, and the permutation mapping canonical results back to request
// order. It is the unit the evaluate layer deduplicates: two sub-
// simulations with equal keys are the same (epoch, config, query) triple
// and pay for one simulation between them.
type canonicalQuery struct {
	key        string
	transfers  []TransferRequest
	background [][2]string
	order      []int
}

// canonicalizeQuery lowers one request into canonical form. The entry
// must already be pinned (WithSnapshot) so the key and the simulation see
// the same epoch.
func canonicalizeQuery(platform string, entry PlatformEntry, transfers []TransferRequest, background [][2]string) canonicalQuery {
	order := canonicalize(transfers)
	background = canonicalBackground(background)
	canonicalReq := make([]TransferRequest, len(transfers))
	for pos, i := range order {
		canonicalReq[pos] = transfers[i]
	}
	return canonicalQuery{
		key:        cacheKey(platform, entry, transfers, order, background),
		transfers:  canonicalReq,
		background: background,
		order:      order,
	}
}

// Lookup probes the cache for a canonical key, counting a hit or miss.
// The returned predictions are in canonical order and shared — callers
// reorder via the query's permutation, never mutate.
func (fc *ForecastCache) Lookup(key string) ([]Prediction, bool) {
	if fc == nil {
		return nil, false
	}
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if fc.capacity > 0 {
		if el, ok := fc.entries[key]; ok {
			fc.lru.MoveToFront(el)
			fc.hits++
			return el.Value.(*cacheEntry).preds, true
		}
	}
	fc.misses++
	return nil, false
}

// Store memoizes a canonical-order answer under its key (no-op when
// caching is disabled; a concurrent filler's entry wins).
func (fc *ForecastCache) Store(key string, canonical []Prediction) {
	if fc == nil || fc.capacity <= 0 {
		return
	}
	fc.mu.Lock()
	defer fc.mu.Unlock()
	if _, ok := fc.entries[key]; ok { // concurrent request filled it
		return
	}
	fc.entries[key] = fc.lru.PushFront(&cacheEntry{key: key, preds: canonical})
	for fc.lru.Len() > fc.capacity {
		oldest := fc.lru.Back()
		fc.lru.Remove(oldest)
		delete(fc.entries, oldest.Value.(*cacheEntry).key)
	}
}

// Predict answers a PNFS request through the cache: platform names the
// entry (it is the cache key namespace), and the remaining arguments
// mirror PredictTransfers. Predictions are returned in request order.
func (fc *ForecastCache) Predict(platform string, entry PlatformEntry, transfers []TransferRequest, background [][2]string) ([]Prediction, error) {
	return fc.PredictCtx(context.Background(), platform, entry, transfers, background)
}

// PredictCtx is Predict under a request context. Concurrent identical
// requests coalesce onto one in-flight simulation (flight.go): the
// first requester simulates, duplicates wait for its answer — but give
// up when their own ctx expires, even if the leader runs on.
func (fc *ForecastCache) PredictCtx(ctx context.Context, platform string, entry PlatformEntry, transfers []TransferRequest, background [][2]string) ([]Prediction, error) {
	if len(transfers) == 0 {
		return nil, fmt.Errorf("pilgrim: no transfers requested")
	}
	// Pin the epoch once: the cache key and the simulation below must see
	// the same snapshot even if the platform is recompiled mid-request.
	entry = entry.WithSnapshot()
	q := canonicalizeQuery(platform, entry, transfers, background)
	// Simulate in canonical order so a given logical workload always
	// produces a bit-identical answer regardless of parameter order.
	canonical, err := fc.predictCanonical(ctx, q.key, func() ([]Prediction, error) {
		return PredictTransfers(entry, q.transfers, q.background)
	})
	if err != nil {
		return nil, err
	}
	return reorder(canonical, q.order), nil
}

// SelectFastest is SelectFastest routed through the cache: each
// hypothesis is one cacheable prediction, so a scheduler polling the
// same alternatives repeatedly pays for each simulation once. Cache
// misses simulate concurrently over the package's default worker pool.
func (fc *ForecastCache) SelectFastest(platform string, entry PlatformEntry, hyps []Hypothesis) (best int, results []HypothesisResult, err error) {
	return defaultPool().SelectFastestCached(fc, platform, entry, hyps)
}

// reorder maps canonical-order predictions back to request order:
// canonical[pos] answers the transfer that request index order[pos] asked
// for.
func reorder(canonical []Prediction, order []int) []Prediction {
	out := make([]Prediction, len(canonical))
	for pos, i := range order {
		out[i] = canonical[pos]
	}
	return out
}
