package pilgrim

import (
	"net/http"
	"strings"
	"testing"

	"pilgrim/internal/workflow"
)

func TestHTTPPredictWorkflow(t *testing.T) {
	_, client := newTestServer(t)
	wf := &workflow.Workflow{
		Name: "stage-and-crunch",
		Tasks: []workflow.Task{
			{ID: "ship", Kind: workflow.TransferData,
				Src: "sagittaire-1.lyon.grid5000.fr", Dst: "graphene-1.nancy.grid5000.fr",
				Bytes: 1e9},
			{ID: "crunch", Kind: workflow.Compute,
				Host: "graphene-1.nancy.grid5000.fr", Flops: 20e9,
				DependsOn: []string{"ship"}},
		},
	}
	if _, err := wf.Validate(); err != nil {
		t.Fatal(err)
	}
	forecast, err := client.PredictWorkflow("g5k_test", wf)
	if err != nil {
		t.Fatal(err)
	}
	if forecast.Name != "stage-and-crunch" {
		t.Errorf("name = %q", forecast.Name)
	}
	if len(forecast.Tasks) != 2 {
		t.Fatalf("tasks = %d", len(forecast.Tasks))
	}
	var ship, crunch workflow.TaskSchedule
	for _, ts := range forecast.Tasks {
		switch ts.ID {
		case "ship":
			ship = ts
		case "crunch":
			crunch = ts
		}
	}
	if ship.Finish <= ship.Start {
		t.Errorf("ship schedule = %+v", ship)
	}
	if crunch.Start < ship.Finish {
		t.Errorf("crunch started before its dependency finished: %+v vs %+v", crunch, ship)
	}
	// graphene-1 runs at 10.1 Gflop/s: the 20 Gflop crunch takes ~1.98s.
	dur := crunch.Finish - crunch.Start
	if dur < 1.9 || dur > 2.1 {
		t.Errorf("crunch duration = %v, want ~1.98", dur)
	}
	if forecast.Makespan != crunch.Finish {
		t.Errorf("makespan %v != last finish %v", forecast.Makespan, crunch.Finish)
	}
}

func TestHTTPPredictWorkflowErrors(t *testing.T) {
	srv, client := newTestServer(t)

	// Cyclic workflow rejected with 400.
	cyclic := &workflow.Workflow{
		Name: "cycle",
		Tasks: []workflow.Task{
			{ID: "a", Kind: workflow.Compute, Host: "sagittaire-1.lyon.grid5000.fr", Flops: 1, DependsOn: []string{"b"}},
			{ID: "b", Kind: workflow.Compute, Host: "sagittaire-1.lyon.grid5000.fr", Flops: 1, DependsOn: []string{"a"}},
		},
	}
	if _, err := client.PredictWorkflow("g5k_test", cyclic); err == nil ||
		!strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle error = %v", err)
	}

	// Unknown platform -> 404.
	ok := &workflow.Workflow{
		Name:  "ok",
		Tasks: []workflow.Task{{ID: "t", Kind: workflow.Compute, Host: "sagittaire-1.lyon.grid5000.fr", Flops: 1}},
	}
	if _, err := client.PredictWorkflow("ghost", ok); err == nil ||
		!strings.Contains(err.Error(), "404") {
		t.Errorf("unknown platform error = %v", err)
	}

	// Malformed JSON body -> 400.
	resp, err := http.Post(srv.URL+"/pilgrim/predict_workflow/g5k_test",
		"application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body -> %d, want 400", resp.StatusCode)
	}

	// GET on the POST endpoint is rejected.
	resp, err = http.Get(srv.URL + "/pilgrim/predict_workflow/g5k_test")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("GET on predict_workflow succeeded")
	}
}
