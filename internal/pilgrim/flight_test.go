package pilgrim

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pilgrim/internal/scenario"
)

// TestCoalescingOneSimulationPerKey is the coalescing contract under
// -race: 64 concurrent requests over 8 distinct keys must pay exactly
// one simulation per distinct key — every duplicate either coalesces
// onto the in-flight leader or hits the LRU the leader filled.
func TestCoalescingOneSimulationPerKey(t *testing.T) {
	const distinct, dup = 8, 8
	fc := NewForecastCache(64)
	var sims [distinct]atomic.Int64
	want := make([][]Prediction, distinct)
	for k := range want {
		want[k] = []Prediction{{Src: "a", Dst: "b", Size: float64(k), Duration: float64(k) * 2}}
	}

	var start, done sync.WaitGroup
	start.Add(1)
	errs := make(chan error, distinct*dup)
	for k := 0; k < distinct; k++ {
		for d := 0; d < dup; d++ {
			done.Add(1)
			go func(k int) {
				defer done.Done()
				start.Wait()
				preds, err := fc.predictCanonical(context.Background(), fmt.Sprintf("key-%d", k), func() ([]Prediction, error) {
					sims[k].Add(1)
					time.Sleep(time.Millisecond) // widen the in-flight window
					return want[k], nil
				})
				if err != nil {
					errs <- err
					return
				}
				if len(preds) != 1 || preds[0] != want[k][0] {
					errs <- fmt.Errorf("key %d: got %+v", k, preds)
				}
			}(k)
		}
	}
	start.Done()
	done.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	for k := range sims {
		if n := sims[k].Load(); n != 1 {
			t.Errorf("key %d simulated %d times, want exactly 1", k, n)
		}
	}
	st := fc.Stats()
	if st.Misses != distinct {
		t.Errorf("misses = %d, want %d (one per distinct key)", st.Misses, distinct)
	}
	if st.Hits+st.CoalescedHits != distinct*(dup-1) {
		t.Errorf("hits(%d) + coalesced(%d) = %d, want %d",
			st.Hits, st.CoalescedHits, st.Hits+st.CoalescedHits, distinct*(dup-1))
	}
}

// TestCoalescingEndToEndPredict drives the same contract through the
// real PredictCtx path on a real platform: concurrent identical and
// distinct predict requests, one simulation per distinct workload.
func TestCoalescingEndToEndPredict(t *testing.T) {
	entry := miniEntry(t)
	fc := NewForecastCache(64)
	const distinct, dup = 4, 16
	var start, done sync.WaitGroup
	start.Add(1)
	errs := make(chan error, distinct*dup)
	for k := 0; k < distinct; k++ {
		reqs := []TransferRequest{{
			Src:  "sagittaire-1.lyon.grid5000.fr",
			Dst:  "sagittaire-2.lyon.grid5000.fr",
			Size: 1e8 * float64(k+1),
		}}
		for d := 0; d < dup; d++ {
			done.Add(1)
			go func() {
				defer done.Done()
				start.Wait()
				if _, err := fc.PredictCtx(context.Background(), "g5k_test", entry, reqs, nil); err != nil {
					errs <- err
				}
			}()
		}
	}
	start.Done()
	done.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := fc.Stats()
	if st.Misses != distinct {
		t.Errorf("misses = %d, want %d (one simulation per distinct workload)", st.Misses, distinct)
	}
	if st.Hits+st.CoalescedHits != distinct*(dup-1) {
		t.Errorf("hits(%d) + coalesced(%d) = %d, want %d",
			st.Hits, st.CoalescedHits, st.Hits+st.CoalescedHits, distinct*(dup-1))
	}
}

// TestCoalescedFollowerHonorsDeadline pins the waiter contract: a
// follower's own ctx bounds its wait even while the leader runs on.
func TestCoalescedFollowerHonorsDeadline(t *testing.T) {
	fc := NewForecastCache(8)
	block := make(chan struct{})
	leaderIn := make(chan struct{})
	leaderOut := make(chan error, 1)
	go func() {
		_, err := fc.predictCanonical(context.Background(), "slow", func() ([]Prediction, error) {
			close(leaderIn)
			<-block
			return []Prediction{{Src: "a", Dst: "b"}}, nil
		})
		leaderOut <- err
	}()
	<-leaderIn

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := fc.predictCanonical(ctx, "slow", func() ([]Prediction, error) {
		t.Error("follower must not simulate while the leader is in flight")
		return nil, nil
	}); err != context.DeadlineExceeded {
		t.Errorf("follower err = %v, want DeadlineExceeded", err)
	}

	close(block)
	if err := <-leaderOut; err != nil {
		t.Fatalf("leader: %v", err)
	}
	if st := fc.Stats(); st.CoalescedHits != 1 {
		t.Errorf("coalesced = %d, want 1 (the expired follower)", st.CoalescedHits)
	}
}

// TestAbandonedFlightRetries pins the panic path: when a leader unwinds
// without an answer, a waiting follower re-enters the protocol and
// simulates instead of hanging or inheriting a zero answer.
func TestAbandonedFlightRetries(t *testing.T) {
	fc := NewForecastCache(8)
	leaderIn := make(chan struct{})
	followerIn := make(chan struct{})
	go func() {
		defer func() { recover() }()
		_, _ = fc.predictCanonical(context.Background(), "k", func() ([]Prediction, error) {
			close(leaderIn)
			<-followerIn
			panic("simulated engine panic")
		})
	}()
	<-leaderIn

	want := []Prediction{{Src: "a", Dst: "b", Duration: 1}}
	done := make(chan struct{})
	var got []Prediction
	var err error
	go func() {
		defer close(done)
		got, err = fc.predictCanonical(context.Background(), "k", func() ([]Prediction, error) {
			return want, nil
		})
	}()
	// The follower is parked on the leader's flight (coalesced counts
	// it); release the leader into its panic.
	for fc.Stats().CoalescedHits == 0 {
		time.Sleep(time.Millisecond)
	}
	close(followerIn)
	<-done
	if err != nil || len(got) != 1 || got[0] != want[0] {
		t.Fatalf("follower after abandon: got %+v, %v", got, err)
	}
}

// TestCoalescingConcurrentEvaluate races identical and distinct
// evaluate batches (the runGroup/runSuperGroup lead-complete-wait
// paths) under -race and checks every cell still answers correctly.
func TestCoalescingConcurrentEvaluate(t *testing.T) {
	entry := miniEntry(t)
	reg := NewRegistry()
	if err := reg.Add("g5k_test", entry); err != nil {
		t.Fatal(err)
	}
	ev := &Evaluator{
		Platforms: reg,
		Cache:     NewForecastCache(256),
		Pool:      NewWorkerPool(4),
		Overlays:  NewOverlayCache(32),
	}
	req := EvaluateRequest{
		Scenarios: []scenario.Scenario{
			{Name: "baseline"},
			{Name: "deg", Mutations: []scenario.Mutation{{
				Op: scenario.OpScaleLink, Link: testNIC, BandwidthFactor: 0.5,
			}}},
		},
		Queries: []EvalQuery{{
			Kind: QueryPredictTransfers,
			Transfers: []TransferRequest{{
				Src: "sagittaire-1.lyon.grid5000.fr", Dst: "sagittaire-2.lyon.grid5000.fr", Size: 5e8,
			}},
		}},
	}
	ref, err := ev.Evaluate("g5k_test", req)
	if err != nil {
		t.Fatal(err)
	}

	var start, done sync.WaitGroup
	start.Add(1)
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		done.Add(1)
		go func() {
			defer done.Done()
			start.Wait()
			resp, err := ev.EvaluateCtx(context.Background(), "g5k_test", req)
			if err != nil {
				errs <- err
				return
			}
			for si := range resp.Scenarios {
				a, b := resp.Scenarios[si], ref.Scenarios[si]
				if a.Error != b.Error || len(a.Results) != len(b.Results) {
					errs <- fmt.Errorf("scenario %d diverged: %+v vs %+v", si, a, b)
					return
				}
				for qi := range a.Results {
					ap, bp := a.Results[qi].Predictions, b.Results[qi].Predictions
					if len(ap) != len(bp) {
						errs <- fmt.Errorf("scenario %d cell %d: %d vs %d predictions", si, qi, len(ap), len(bp))
						return
					}
					for pi := range ap {
						if ap[pi] != bp[pi] {
							errs <- fmt.Errorf("scenario %d cell %d pred %d: %+v vs %+v", si, qi, pi, ap[pi], bp[pi])
							return
						}
					}
				}
			}
		}()
	}
	start.Done()
	done.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
