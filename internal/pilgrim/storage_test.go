package pilgrim

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	"pilgrim/internal/g5k"
	"pilgrim/internal/platform"
	"pilgrim/internal/platgen"
	"pilgrim/internal/sim"
	"pilgrim/internal/store"
)

// walRegistry builds a WAL-backed registry over dir, registering the
// g5k_test mini platform under "p".
func walRegistry(t *testing.T, dir string, opts store.Options) *Registry {
	t.Helper()
	opts.Dir = dir
	w, rec, err := store.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	plat, err := platgen.Generate(g5k.Mini(), platgen.Options{Variant: platgen.G5KTest})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	reg.SetTimelineDepth(3)
	if err := reg.SetStorage(w, rec); err != nil {
		t.Fatal(err)
	}
	if err := reg.Add("p", PlatformEntry{Platform: plat, Config: sim.DefaultConfig()}); err != nil {
		t.Fatal(err)
	}
	return reg
}

// statsJSON marshals the platform's timeline_stats — the byte-identical
// recovery contract is stated over this serialization.
func statsJSON(t *testing.T, reg *Registry) string {
	t.Helper()
	st, ok := reg.TimelineStats("p")
	if !ok {
		t.Fatal("platform missing")
	}
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestRegistryWarmRestart is the tentpole invariant: observe, estimate,
// reject, restart from the data directory — and timeline stats, epochs,
// forecasts, background estimate, and reject accounting all come back
// byte-identical.
func TestRegistryWarmRestart(t *testing.T) {
	dir := t.TempDir()
	reg := walRegistry(t, dir, store.Options{Fsync: store.FsyncAlways})

	// Overflow the depth-3 timeline so recovery must restore eviction
	// accounting, not just retained entries.
	series := []float64{1.0e8, 1.4e8, 0.9e8, 1.2e8, 1.1e8}
	for i, bw := range series {
		observe(t, reg, int64(1000+100*i), bw)
	}
	if err := reg.SetBackgroundEstimate("p", "drill", [][2]string{{"a", "b"}, {"c", "d"}}); err != nil {
		t.Fatal(err)
	}
	reg.RecordUpdateReject("p")
	reg.RecordUpdateReject("p")

	// Interleaved queries allocate epoch ids (forecast materialization)
	// that never reach the log — recovery must cope with the gaps.
	if _, err := reg.GetAt("p", 1700); err != nil {
		t.Fatal(err)
	}

	wantStats := statsJSON(t, reg)
	fut, err := reg.GetAt("p", 1500+600)
	if err != nil {
		t.Fatal(err)
	}
	li := mustLinkIdx(t, fut.Snapshot, testNIC)
	wantFutBW := fut.Snapshot.LinkBandwidth(li)
	past, err := reg.GetAt("p", 1250)
	if err != nil {
		t.Fatal(err)
	}
	wantPastEpoch, wantPastBW := past.Snapshot.Epoch(), past.Snapshot.LinkBandwidth(li)
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	reg2 := walRegistry(t, dir, store.Options{Fsync: store.FsyncAlways})
	defer reg2.Close()
	if got := statsJSON(t, reg2); got != wantStats {
		t.Fatalf("restored timeline_stats diverge:\n  orig:     %s\n  restored: %s", wantStats, got)
	}
	past2, err := reg2.GetAt("p", 1250)
	if err != nil {
		t.Fatal(err)
	}
	if past2.Snapshot.Epoch() != wantPastEpoch || past2.Snapshot.LinkBandwidth(li) != wantPastBW {
		t.Fatalf("past answer diverges: epoch %d bw %v, want %d %v",
			past2.Snapshot.Epoch(), past2.Snapshot.LinkBandwidth(li), wantPastEpoch, wantPastBW)
	}
	fut2, err := reg2.GetAt("p", 1500+600)
	if err != nil {
		t.Fatal(err)
	}
	if got := fut2.Snapshot.LinkBandwidth(li); got != wantFutBW {
		t.Fatalf("forecast diverges after restart: %v, want %v", got, wantFutBW)
	}
	flows, source, ok := reg2.BackgroundEstimate("p")
	if !ok || source != "drill" || len(flows) != 2 || flows[1] != [2]string{"c", "d"} {
		t.Fatalf("background estimate lost: %v %q %v", flows, source, ok)
	}
	if got := reg2.UpdateRejects("p"); got != 2 {
		t.Fatalf("rejects restored as %d, want 2", got)
	}

	// New observations must take epochs beyond everything restored.
	snap := observe(t, reg2, 2000, 1.3e8)
	if snap.Epoch() <= wantPastEpoch {
		t.Fatalf("post-restart epoch %d aliases a restored id", snap.Epoch())
	}
}

// TestRegistryWarmRestartAcrossCompaction drives enough observations to
// trigger background snapshot compaction, keeps going (log tail on top
// of the snapshot), and checks the restart is still byte-identical.
func TestRegistryWarmRestartAcrossCompaction(t *testing.T) {
	dir := t.TempDir()
	reg := walRegistry(t, dir, store.Options{Fsync: store.FsyncAlways, CompactEvery: 5})
	for i := 0; i < 9; i++ {
		observe(t, reg, int64(1000+10*i), 1e8+float64(i)*1e6)
	}
	// The compactor runs off the request path; wait for it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st, ok := reg.StorageStats(); ok && st.Compactions > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("compaction never ran")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i := 9; i < 12; i++ {
		observe(t, reg, int64(1000+10*i), 1e8+float64(i)*1e6)
	}
	wantStats := statsJSON(t, reg)
	fut, err := reg.GetAt("p", 1110+60)
	if err != nil {
		t.Fatal(err)
	}
	li := mustLinkIdx(t, fut.Snapshot, testNIC)
	wantFutBW := fut.Snapshot.LinkBandwidth(li)
	reg.Close()

	reg2 := walRegistry(t, dir, store.Options{Fsync: store.FsyncAlways, CompactEvery: 5})
	defer reg2.Close()
	if got := statsJSON(t, reg2); got != wantStats {
		t.Fatalf("post-compaction restore diverges:\n  orig:     %s\n  restored: %s", wantStats, got)
	}
	fut2, err := reg2.GetAt("p", 1110+60)
	if err != nil {
		t.Fatal(err)
	}
	if got := fut2.Snapshot.LinkBandwidth(li); got != wantFutBW {
		t.Fatalf("forecast diverges after compacted restart: %v, want %v", got, wantFutBW)
	}
}

// TestRegistryRecoveryWithoutClose simulates a kill: the first registry
// is never closed, yet (records hit the file on append) a second open of
// the same directory recovers every acknowledged observation.
func TestRegistryRecoveryWithoutClose(t *testing.T) {
	dir := t.TempDir()
	reg := walRegistry(t, dir, store.Options{Fsync: store.FsyncAlways})
	for i := 0; i < 4; i++ {
		observe(t, reg, int64(1000+10*i), 1e8+float64(i)*1e6)
	}
	wantStats := statsJSON(t, reg)
	// No Close: the process "dies" here.

	reg2 := walRegistry(t, dir, store.Options{Fsync: store.FsyncAlways})
	defer reg2.Close()
	if got := statsJSON(t, reg2); got != wantStats {
		t.Fatalf("kill recovery diverges:\n  orig:     %s\n  restored: %s", wantStats, got)
	}
}

// TestRegistryRefusesForeignDataDir checks Add fails loudly when the
// data directory's recovered state belongs to a different platform
// (link-count mismatch) instead of replaying onto the wrong topology.
func TestRegistryRefusesForeignDataDir(t *testing.T) {
	dir := t.TempDir()
	reg := walRegistry(t, dir, store.Options{Fsync: store.FsyncAlways})
	observe(t, reg, 1000, 1e8)
	reg.Close()

	w, rec, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	other, err := platgen.Generate(g5k.Mini(), platgen.Options{Variant: platgen.G5KCabinets})
	if err != nil {
		t.Fatal(err)
	}
	if other.Snapshot().NumLinks() == mustNumLinks(t) {
		t.Skip("variants share a link count; mismatch not expressible")
	}
	reg2 := NewRegistry()
	if err := reg2.SetStorage(w, rec); err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	if err := reg2.Add("p", PlatformEntry{Platform: other, Config: sim.DefaultConfig()}); err == nil {
		t.Fatal("foreign data directory accepted")
	}
}

func mustNumLinks(t *testing.T) int {
	t.Helper()
	plat, err := platgen.Generate(g5k.Mini(), platgen.Options{Variant: platgen.G5KTest})
	if err != nil {
		t.Fatal(err)
	}
	return plat.Snapshot().NumLinks()
}

// TestRegistryConcurrentIngestAndCompaction races observations, estimate
// registrations, rejects, and readers against a compaction threshold low
// enough to fire constantly — the -race target for the ingest gate.
func TestRegistryConcurrentIngestAndCompaction(t *testing.T) {
	dir := t.TempDir()
	reg := walRegistry(t, dir, store.Options{Fsync: store.FsyncNever, CompactEvery: 4})

	const observations = 300
	var wg sync.WaitGroup
	wg.Add(4)
	go func() {
		defer wg.Done()
		for i := 0; i < observations; i++ {
			if _, err := reg.ObserveLinkState("p", int64(1000+i), "race", []platform.LinkUpdate{
				{Link: testNIC, Bandwidth: 1e8 + float64(i), Latency: -1}}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			reg.SetBackgroundEstimate("p", "race", [][2]string{{"a", "b"}})
			reg.RecordUpdateReject("p")
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			reg.TimelineStats("p")
			reg.Get("p")
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			reg.GetAt("p", int64(900+i))
		}
	}()
	wg.Wait()
	wantStats := statsJSON(t, reg)
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	reg2 := walRegistry(t, dir, store.Options{Fsync: store.FsyncNever, CompactEvery: 4})
	defer reg2.Close()
	if got := statsJSON(t, reg2); got != wantStats {
		t.Fatalf("recovery after concurrent ingest diverges:\n  orig:     %s\n  restored: %s", wantStats, got)
	}
	st, ok := reg2.TimelineStats("p")
	if !ok || st.Appends != observations {
		t.Fatalf("recovered %d appends, want %d", st.Appends, observations)
	}
	if got := reg2.UpdateRejects("p"); got != 100 {
		t.Fatalf("recovered %d rejects, want 100", got)
	}
}
