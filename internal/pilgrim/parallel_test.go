package pilgrim

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"pilgrim/internal/platform"
	"pilgrim/internal/sim"
)

// buildParallelEntry creates a small star platform entry for concurrency
// tests: enough hosts for distinct hypothesis pairs, cold route cache.
func buildParallelEntry(t *testing.T) PlatformEntry {
	t.Helper()
	p := platform.New("root", platform.RoutingFull)
	as := p.Root()
	bb, err := as.AddLink("bb", 1e9, 1e-4, platform.Shared)
	if err != nil {
		t.Fatal(err)
	}
	const hosts = 8
	for i := 0; i < hosts; i++ {
		if _, err := as.AddHost(fmt.Sprintf("h%d", i), 1e9); err != nil {
			t.Fatal(err)
		}
	}
	links := make([]*platform.Link, hosts)
	for i := 0; i < hosts; i++ {
		links[i], err = as.AddLink(fmt.Sprintf("l%d", i), 1e8, 1e-4, platform.FullDuplex)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < hosts; i++ {
		for j := 0; j < hosts; j++ {
			if i == j {
				continue
			}
			route := []platform.LinkUse{
				{Link: links[i], Direction: platform.Up},
				{Link: bb, Direction: platform.None},
				{Link: links[j], Direction: platform.Down},
			}
			if err := as.AddRoute(fmt.Sprintf("h%d", i), fmt.Sprintf("h%d", j), route, false); err != nil {
				t.Fatal(err)
			}
		}
	}
	return PlatformEntry{Platform: p, Config: sim.DefaultConfig()}
}

func testHypotheses(n int) []Hypothesis {
	hyps := make([]Hypothesis, n)
	for i := range hyps {
		hyps[i] = Hypothesis{Transfers: []TransferRequest{
			{Src: fmt.Sprintf("h%d", i%7), Dst: fmt.Sprintf("h%d", (i+1)%7+1), Size: 1e8 + float64(i)*1e6},
			{Src: fmt.Sprintf("h%d", (i+2)%8), Dst: fmt.Sprintf("h%d", (i+5)%8), Size: 2e8},
		}}
	}
	return hyps
}

// TestSelectFastestParallelMatchesSequential checks that a wide pool
// returns exactly what a sequential (1-worker) evaluation returns.
func TestSelectFastestParallelMatchesSequential(t *testing.T) {
	entry := buildParallelEntry(t)
	hyps := testHypotheses(9)

	seqBest, seqResults, err := NewWorkerPool(1).SelectFastest(entry, hyps)
	if err != nil {
		t.Fatal(err)
	}
	parBest, parResults, err := NewWorkerPool(8).SelectFastest(entry, hyps)
	if err != nil {
		t.Fatal(err)
	}
	if seqBest != parBest {
		t.Fatalf("best: sequential %d, parallel %d", seqBest, parBest)
	}
	for i := range seqResults {
		if seqResults[i].Makespan != parResults[i].Makespan {
			t.Errorf("hypothesis %d makespan: sequential %v, parallel %v",
				i, seqResults[i].Makespan, parResults[i].Makespan)
		}
	}
}

// TestSelectFastestConcurrentRequests hammers one server-shaped stack —
// shared platform (route cache), shared forecast cache, shared worker
// pool — with concurrent select_fastest calls. Run under -race this is
// the concurrency safety net for the parallel forecast layer.
func TestSelectFastestConcurrentRequests(t *testing.T) {
	entry := buildParallelEntry(t)
	pool := NewWorkerPool(4)
	cache := NewForecastCache(32)
	hyps := testHypotheses(6)

	wantBest, wantResults, err := pool.SelectFastestCached(cache, "p", entry, hyps)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			best, results, err := pool.SelectFastestCached(cache, "p", entry, hyps)
			if err != nil {
				errs[g] = err
				return
			}
			if best != wantBest {
				errs[g] = fmt.Errorf("best %d, want %d", best, wantBest)
				return
			}
			for i := range results {
				if results[i].Makespan != wantResults[i].Makespan {
					errs[g] = fmt.Errorf("hypothesis %d makespan %v, want %v",
						i, results[i].Makespan, wantResults[i].Makespan)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", g, err)
		}
	}
	if st := pool.Stats(); st.Hypotheses == 0 || st.Batches != 17 {
		t.Errorf("unexpected pool stats %+v", st)
	}
}

// TestCacheStatsIncludesWorkerMetrics checks the extended cache_stats
// payload: legacy cache counters stay top-level, pool telemetry appears
// under forecast_workers.
func TestCacheStatsIncludesWorkerMetrics(t *testing.T) {
	entry := buildParallelEntry(t)
	reg := NewRegistry()
	if err := reg.Add("star", entry); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reg, nil)
	srv.SetForecastWorkers(3)

	req := httptest.NewRequest("GET",
		"/pilgrim/select_fastest/star?hypothesis=h0,h1,1e8&hypothesis=h2,h3,2e8%3Bh4,h5,1e8", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("select_fastest: %d %s", rec.Code, rec.Body)
	}

	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/pilgrim/cache_stats", nil))
	if rec.Code != 200 {
		t.Fatalf("cache_stats: %d %s", rec.Code, rec.Body)
	}
	var got struct {
		Hits     *uint64      `json:"hits"`
		Misses   *uint64      `json:"misses"`
		Capacity *int         `json:"capacity"`
		Forecast *WorkerStats `json:"forecast_workers"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("decoding %s: %v", rec.Body, err)
	}
	if got.Hits == nil || got.Misses == nil || got.Capacity == nil {
		t.Fatalf("legacy cache fields missing in %s", rec.Body)
	}
	if got.Forecast == nil || got.Forecast.Workers != 3 {
		t.Fatalf("forecast_workers missing or wrong in %s", rec.Body)
	}
	if got.Forecast.Batches != 1 || got.Forecast.Hypotheses != 2 {
		t.Errorf("pool counters %+v, want 1 batch / 2 hypotheses", *got.Forecast)
	}
}
